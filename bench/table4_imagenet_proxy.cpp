// Reproduces paper Table 4 (ViL vs Pixelfly top-1 on ImageNet-1K):
// published numbers plus a vision-structured fidelity proxy comparing the
// ViL-style mixing (window + global attention over a 2-D patch grid)
// against Pixelfly-style fixed butterfly/FFT mixing.
#include <iostream>

#include "attention/fidelity.hpp"
#include "eval/experiments.hpp"
#include "eval/table.hpp"

int main() {
  using swat::eval::Table;
  using namespace swat::attn;

  std::cout << "=== Paper Table 4 (published): ImageNet-1K top-1 ===\n\n";
  Table pub({"Model", "Params (M)", "Top-1"});
  for (const auto& r : swat::eval::table4_published()) {
    pub.add_row({r.model, Table::num(r.params_m, 1),
                 Table::num(r.top1, 1) + "%"});
  }
  pub.print(std::cout);

  std::cout << "\n=== Vision fidelity proxy (this reproduction) ===\n"
               "32x32 patch grid (1024 tokens), 2-D locally correlated "
               "features; mean row-cosine vs an all-dense stack.\n\n";

  FidelityConfig cfg;
  cfg.seq_len = 1024;  // 32 x 32 grid
  cfg.dim = 64;
  cfg.window_radius = 96;  // covers ~3 grid rows of vertical context
  cfg.bigbird_random = 0;
  cfg.bigbird_global = 16;  // ViL's global tokens
  cfg.corr_len = 6.0;
  cfg.structure = InputStructure::kVision2d;

  struct Method {
    const char* name;
    LayerSchedule schedule;
  };
  const Method methods[] = {
      {"ViL-style (window+global attention)",
       schedule_uniform(MixerKind::kBigBird, 4)},
      {"Pure window attention", schedule_uniform(MixerKind::kWindow, 4)},
      {"Pixelfly-style (fixed FFT mixing)",
       schedule_uniform(MixerKind::kFnet, 4)},
  };
  Table t({"Method", "fidelity (row cosine)", "rel. error"});
  for (const auto& m : methods) {
    const auto r = mixing_fidelity(m.schedule, cfg);
    t.add_row({m.name, Table::num(r.mean_cosine, 3),
               Table::num(r.rel_error, 3)});
  }
  t.print(std::cout);

  std::cout << "\nPaper shape check: the data-dependent windowed mixers track\n"
               "full attention far better than the fixed FFT mixing at equal\n"
               "budget — mirroring ViL's top-1 lead over Pixelfly at similar\n"
               "parameter counts.\n";
  return 0;
}
