// Reproduces paper Table 1: pipeline stage timing (cycles) of the SWAT
// design (H = 64, 2w = 512), plus the §4.1 BigBird LOAD-stage variant and
// the §5.4 FP32 pipeline, cross-checked against the cycle-level simulator.
#include <iostream>

#include "eval/experiments.hpp"
#include "eval/table.hpp"
#include "swat/timing_sim.hpp"

namespace {

void print_config(const swat::SwatConfig& cfg, const char* title) {
  using swat::eval::Table;
  std::cout << "-- " << title << " --\n" << cfg.summary() << "\n";
  Table t({"stage", "cycles"});
  for (const auto& e : swat::eval::table1_stages(cfg)) {
    t.add_row({e.stage, std::to_string(e.cycles.count)});
  }
  t.print(std::cout);
  const auto res = swat::TimingSimulator(cfg).run(4096);
  std::cout << "pipeline II (cycle-level sim, steady state): "
            << res.row_interval.count << " cycles; fill: " << res.fill.count
            << " cycles\n\n";
}

}  // namespace

int main() {
  std::cout << "=== Paper Table 1: pipeline stage timing ===\n\n";
  print_config(swat::SwatConfig::longformer_512(),
               "FP16, pure window (paper Table 1)");
  print_config(swat::SwatConfig::bigbird_512(),
               "FP16, BigBird (LOAD 66 -> 195, II unchanged; paper §4.1)");
  print_config(swat::SwatConfig::longformer_512(swat::Dtype::kFp32),
               "FP32 (264-cycle pipeline; paper §5.4)");
  std::cout << "Paper anchors: LOAD 66, QK 201, SV 197, ZRED1 195, ZRED2 66,\n"
               "ROWSUM1 195, ROWSUM2 27, DIV&OUT 179; II = 201 (FP16) and\n"
               "264 (FP32); BigBird LOAD 195 without II impact.\n";
  return 0;
}
