// Ablation bench: quantifies each dataflow design choice DESIGN.md calls
// out (not a paper figure — supporting evidence for §3's claims).
//
//   1. Kernel fusion: off-chip traffic of the fused row-wise kernel vs the
//      unfused three-step implementation (tile-wise S/S' spills).
//   2. FIFO reuse: K/V bytes loaded with the replacement FIFO vs reloading
//      the full band per row (no reuse).
//   3. Sliding chunks: executed vs useful MACs (the redundancy SWAT
//      eliminates).
//   4. Z-reduction split: stage latency with the two-phase reduction vs a
//      single flat accumulation over 2w cores.
#include <cstdint>
#include <iostream>

#include "attention/sliding_chunks.hpp"
#include "eval/calibration.hpp"
#include "eval/experiments.hpp"
#include "eval/table.hpp"
#include "swat/analytic.hpp"
#include "swat/stage_latency.hpp"

int main() {
  using swat::eval::Table;
  const std::int64_t h = 64;
  const std::int64_t band = 512;

  std::cout << "=== Ablation 1: kernel fusion vs unfused off-chip traffic "
               "(per head, FP16) ===\n\n";
  Table t1({"N", "fused (SWAT)", "unfused 3-step", "reduction"});
  for (std::int64_t n : swat::eval::fig_lengths()) {
    const double fused = 4.0 * static_cast<double>(n) * h * 2.0;
    // Unfused: Q,K,V in + Z out, plus the S tile written+read and the S'
    // tile written+read (banded, fp16).
    const double score = static_cast<double>(n) * band * 2.0;
    const double unfused = fused + 4.0 * score;
    t1.add_row({std::to_string(n), Table::mb(fused), Table::mb(unfused),
                Table::times(unfused / fused)});
  }
  t1.print(std::cout);

  std::cout << "\n=== Ablation 2: FIFO data reuse vs reload-per-row ===\n\n";
  Table t2({"N", "FIFO (loaded once)", "no reuse (band per row)",
            "reduction"});
  for (std::int64_t n : swat::eval::fig_lengths()) {
    const double fifo = 2.0 * static_cast<double>(n) * h * 2.0;  // K+V once
    const double reload = 2.0 * static_cast<double>(n) *
                          static_cast<double>(band) * h * 2.0;
    t2.add_row({std::to_string(n), Table::mb(fifo), Table::mb(reload),
                Table::times(reload / fifo)});
  }
  t2.print(std::cout);

  std::cout << "\n=== Ablation 3: sliding-chunks redundancy vs SWAT's exact "
               "band (w = 16, measured) ===\n\n";
  Table t3({"N", "chunks executed MACs", "useful MACs", "wasted"});
  swat::Rng rng(1);
  for (std::int64_t n : {256, 512, 1024}) {
    const auto in = swat::attn::random_head_input(n, 16, rng);
    const auto res = swat::attn::sliding_chunks_attention(in, 16);
    t3.add_row({std::to_string(n), std::to_string(res.dense_mul_adds),
                std::to_string(res.useful_mul_adds),
                Table::pct(res.measured_redundancy())});
  }
  t3.print(std::cout);

  std::cout << "\n=== Ablation 4: two-phase Z-reduction vs flat reduction "
               "===\n\n";
  const auto cfg = swat::SwatConfig::longformer_512();
  const auto lat = swat::stage_latencies(cfg);
  // Flat: H channels accumulating all 2w slices sequentially at II=3.
  const std::uint64_t flat = 3ull * 512ull + 3ull;
  Table t4({"design", "reduction latency (cycles)", "pipeline II"});
  t4.add_row({"two-phase (ZRED1+ZRED2, SWAT)",
              std::to_string(lat.zred1.count + lat.zred2.count),
              std::to_string(swat::row_interval(cfg).count)});
  t4.add_row({"flat 2w-input reduction", std::to_string(flat),
              std::to_string(std::max<std::uint64_t>(flat, 201))});
  t4.print(std::cout);
  std::cout << "\nPaper §4: a flat reduction over 2w slices would take ~3*2w\n"
               "cycles (8x the QK stage) and become the pipeline bottleneck;\n"
               "the two-phase split keeps the II at the QK stage's 201.\n";
  return 0;
}
