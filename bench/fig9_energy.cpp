// Reproduces paper Fig. 9: energy efficiency of SWAT against the Butterfly
// accelerator (BTF-1/BTF-2) and the MI210 GPU (dense / sliding-chunks), in
// FP16 and FP32.
#include <iostream>

#include "baselines/butterfly.hpp"
#include "eval/experiments.hpp"
#include "eval/table.hpp"
#include "swat/power_model.hpp"

int main() {
  using swat::eval::Table;
  std::cout << "=== Paper Fig. 9: energy efficiency of SWAT ===\n\n";
  std::cout << "Modelled average power: SWAT FP16 "
            << Table::num(
                   swat::swat_power(swat::SwatConfig::longformer_512()).value,
                   1)
            << " W, SWAT FP32 "
            << Table::num(swat::swat_power(swat::SwatConfig::longformer_512(
                                               swat::Dtype::kFp32))
                              .value,
                          1)
            << " W, Butterfly "
            << Table::num(swat::baselines::ButterflyModel(
                              swat::baselines::ButterflyConfig::btf(1))
                              .power()
                              .value,
                          1)
            << " W, MI210 300 W (paper's figure).\n\n";

  Table t({"N", "FP16 vs BTF-1", "FP16 vs BTF-2", "FP16 vs GPU dense",
           "FP16 vs GPU chunks", "FP32 vs GPU dense", "FP32 vs GPU chunks"});
  for (const auto& r : swat::eval::fig9_energy_efficiency()) {
    t.add_row({std::to_string(r.seq_len), Table::times(r.fp16_vs_btf1),
               Table::times(r.fp16_vs_btf2),
               Table::times(r.fp16_vs_gpu_dense),
               Table::times(r.fp16_vs_gpu_chunks),
               Table::times(r.fp32_vs_gpu_dense),
               Table::times(r.fp32_vs_gpu_chunks)});
  }
  t.print(std::cout);

  std::cout << "\nPaper anchors: 11.4x / 21.9x over BTF-1 / BTF-2 at 16k;\n"
               "FP32 vs dense GPU ~20x at 1k, minimum ~4.2x at 8k, ~8.4x at\n"
               "16k (the U-shaped curve).\n";
  return 0;
}
