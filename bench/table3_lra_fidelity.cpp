// Reproduces paper Table 3 (accuracy gain of window-attention models over
// full-FFT Butterfly on LRA) in two parts:
//   1. the published numbers, reprinted for reference;
//   2. our *fidelity proxy* (DESIGN.md §2): how closely each mixing scheme
//      tracks an all-dense-attention stack on synthetic text-like (1-D) and
//      vision-like (2-D) inputs. Training LRA models is out of scope for a
//      dataset-free C++ repository; the proxy reproduces the orderings the
//      paper's table rests on.
#include <iostream>

#include "attention/fidelity.hpp"
#include "attention/recall_task.hpp"
#include "eval/experiments.hpp"
#include "eval/table.hpp"

int main() {
  using swat::eval::Table;
  using namespace swat::attn;

  std::cout << "=== Paper Table 3 (published): accuracy gain over full-FFT "
               "Butterfly, LRA ===\n\n";
  Table pub({"Model", "Image", "PathFinder", "Text", "ListOps", "AVG"});
  for (const auto& r : swat::eval::table3_published()) {
    pub.add_row({r.model, "+" + Table::num(r.image) + "%",
                 "+" + Table::num(r.pathfinder) + "%",
                 "+" + Table::num(r.text) + "%",
                 "+" + Table::num(r.listops) + "%",
                 "+" + Table::num(r.avg) + "%"});
  }
  pub.print(std::cout);

  std::cout << "\n=== Fidelity proxy (this reproduction) ===\n"
               "teacher-forced per-layer fidelity vs dense attention "
               "(4 layers, seq 1024; mean row-cosine, higher = closer)\n"
               "text-like: 1-D correlation over ~32 tokens (discourse "
               "spans);\nvision-like: 2-D correlation over ~4 patches "
               "(local structure)\n\n";

  FidelityConfig cfg;
  cfg.seq_len = 1024;
  cfg.dim = 64;
  cfg.window_radius = 48;
  cfg.bigbird_random = 32;
  cfg.bigbird_global = 16;

  struct Method {
    const char* name;
    LayerSchedule schedule;
  };
  const Method methods[] = {
      {"Longformer (window)", schedule_uniform(MixerKind::kWindow, 4)},
      {"BigBird (window+global+random)",
       schedule_uniform(MixerKind::kBigBird, 4)},
      {"BTF-1 (FFT + 1 softmax layer)", schedule_btf(4, 1)},
      {"BTF-2 (FFT + 2 softmax layers)", schedule_btf(4, 2)},
      {"Butterfly full-FFT", schedule_uniform(MixerKind::kFnet, 4)},
  };

  Table t({"Method", "text-like (1-D)", "vision-like (2-D)",
           "gain over full-FFT (text)", "gain over full-FFT (vision)"});
  double fft_text = 0.0, fft_vis = 0.0;
  std::vector<std::pair<double, double>> scores;
  for (const auto& m : methods) {
    FidelityConfig text_cfg = cfg;
    text_cfg.structure = InputStructure::kText1d;
    text_cfg.corr_len = 32.0;
    FidelityConfig vis_cfg = cfg;
    vis_cfg.structure = InputStructure::kVision2d;
    vis_cfg.corr_len = 4.0;
    const double ct = mixing_fidelity(m.schedule, text_cfg).mean_cosine;
    const double cv = mixing_fidelity(m.schedule, vis_cfg).mean_cosine;
    scores.push_back({ct, cv});
    if (std::string(m.name) == "Butterfly full-FFT") {
      fft_text = ct;
      fft_vis = cv;
    }
  }
  for (std::size_t i = 0; i < std::size(methods); ++i) {
    t.add_row({methods[i].name, Table::num(scores[i].first, 3),
               Table::num(scores[i].second, 3),
               "+" + Table::num(scores[i].first - fft_text, 3),
               "+" + Table::num(scores[i].second - fft_vis, 3)});
  }
  t.print(std::cout);

  std::cout << "\nPaper shape check: window-based methods > softmax-hybrid\n"
               "Butterfly > full-FFT, with the window advantage largest on\n"
               "vision-structured inputs (Table 3's Image column).\n";

  // -------------------------------------------------------------------
  // Executable task proxy: associative recall over distance bands — where
  // each static pattern's accuracy cliff sits (the long-range dependency
  // story behind BigBird's PathFinder/Text advantage in Table 3).
  // -------------------------------------------------------------------
  std::cout << "\n=== Associative-recall accuracy by target distance "
               "(seq 4096, window radius 128) ===\n\n";
  Table rt({"target distance", "dense", "window (Longformer)",
            "BigBird (+128 random)", "dilated window (x4)"});
  const AttentionPattern window(PatternSpec::longformer(4096, 128));
  const AttentionPattern bigbird(PatternSpec::bigbird(4096, 128, 128, 16));
  PatternSpec dil_spec = PatternSpec::longformer(4096, 128);
  dil_spec.window_dilation = 4;
  const AttentionPattern dilated(dil_spec);
  for (std::int64_t dist : {64, 256, 1024, 3072}) {
    RecallTaskConfig tc;
    tc.seq_len = 4096;
    tc.num_queries = 128;
    tc.min_distance = std::max<std::int64_t>(1, dist / 2);
    tc.max_distance = dist;
    rt.add_row({std::to_string(dist),
                Table::pct(recall_accuracy_dense(tc).accuracy, 0),
                Table::pct(recall_accuracy(window, tc).accuracy, 0),
                Table::pct(recall_accuracy(bigbird, tc).accuracy, 0),
                Table::pct(recall_accuracy(dilated, tc).accuracy, 0)});
  }
  rt.print(std::cout);
  std::cout << "\nTakeaway: the window pattern is exact inside its band and\n"
               "blind beyond it; random tokens buy probabilistic long-range\n"
               "retrieval and dilation trades local density for reach —\n"
               "exactly the accuracy trade-offs Table 3 aggregates.\n";
  return 0;
}
