// Microbenchmark of the blocked/parallel kernel backend against the seed
// scalar kernels. Emits BENCH_kernels.json (GFLOP/s + speedups) for CI
// tracking and the README table.
//
// Measured pairs (baseline vs the kernel under test; each row's "baseline"
// field names what the speedup is against):
//   * GEMM           C = A * B        (matmul_naive   vs matmul)
//   * GEMM-NT        C = A * B^T      (matmul_nt_naive vs matmul_nt)
//   * sliding-chunks forward           (seed per-element dot() phase 1 vs
//                                       the blocked tile-GEMM path)
//   * gemm_packed    proj + FFN shapes (the blocked bias GEMM the Linear
//                                       layer used to run per batch vs the
//                                       pre-packed panel microkernel)
//   * fused-attention                  (the per-head slice/band/scatter
//                                       serving path vs the fused streaming
//                                       batch kernel)
//
// Usage: kernels_microbench [--smoke] [--out <path>]
//   --smoke   small shapes / fewer reps (CI)
//   default   acceptance shapes: 512^3 GEMM, sliding chunks n=4096 w=128
//             h=64, packed GEMM on the Longformer-base projection/FFN
//             shapes, fused attention at n=2048 w=256; each timed
//             single-thread and with the pool enabled.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <limits>
#include <string>
#include <vector>

#include "attention/fused.hpp"
#include "attention/reference.hpp"
#include "attention/sliding_chunks.hpp"
#include "attention/window.hpp"
#include "common/thread_pool.hpp"
#include "tensor/kernels.hpp"

namespace {

using swat::MatrixF;

double now_seconds() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch())
      .count();
}

/// Best-of-N wall time of `fn` in seconds. One untimed warm-up run first,
/// so the pair measured earlier doesn't pay the cold-cache/page-fault cost
/// its competitor then skips — without it the later-timed variant shows a
/// spurious ~10-50% advantage.
template <typename Fn>
double best_time(int reps, Fn&& fn) {
  fn();
  double best = std::numeric_limits<double>::infinity();
  for (int r = 0; r < reps; ++r) {
    const double t0 = now_seconds();
    fn();
    best = std::min(best, now_seconds() - t0);
  }
  return best;
}

/// The seed repository's sliding-chunks phase-1/phase-2 implementation,
/// frozen verbatim as the benchmark baseline (kernel logic only; the op
/// counters are not re-measured here).
MatrixF seed_sliding_chunks(const swat::attn::HeadInput& in, std::int64_t w) {
  const std::int64_t n = in.seq_len();
  const std::int64_t h = in.head_dim();
  const std::int64_t num_tiles = n / w - 1;
  struct ChunkScores {
    std::int64_t base = 0;
    MatrixF s;
  };
  std::vector<ChunkScores> chunks(static_cast<std::size_t>(num_tiles));
  for (std::int64_t c = 0; c < num_tiles; ++c) {
    auto& ch = chunks[static_cast<std::size_t>(c)];
    ch.base = c * w;
    ch.s = MatrixF(2 * w, 2 * w);
    for (std::int64_t qi = 0; qi < 2 * w; ++qi) {
      for (std::int64_t kj = 0; kj < 2 * w; ++kj) {
        ch.s(qi, kj) =
            swat::dot(in.q.row(ch.base + qi), in.k.row(ch.base + kj));
      }
    }
  }
  MatrixF z(n, h, 0.0f);
  std::vector<float> band(static_cast<std::size_t>(2 * w + 1));
  for (std::int64_t i = 0; i < n; ++i) {
    const std::int64_t lo = std::max<std::int64_t>(0, i - w);
    const std::int64_t hi = std::min<std::int64_t>(n - 1, i + w);
    const std::size_t count = static_cast<std::size_t>(hi - lo + 1);
    const std::int64_t c_hi = std::min<std::int64_t>(i / w, num_tiles - 1);
    const std::int64_t c_lo = std::max<std::int64_t>(0, c_hi - 1);
    float mx = -std::numeric_limits<float>::infinity();
    for (std::int64_t j = lo; j <= hi; ++j) {
      const ChunkScores& ch =
          (j >= chunks[static_cast<std::size_t>(c_hi)].base &&
           j < chunks[static_cast<std::size_t>(c_hi)].base + 2 * w)
              ? chunks[static_cast<std::size_t>(c_hi)]
              : chunks[static_cast<std::size_t>(c_lo)];
      const float v = ch.s(i - ch.base, j - ch.base);
      band[static_cast<std::size_t>(j - lo)] = v;
      mx = std::max(mx, v);
    }
    float sum = 0.0f;
    for (std::size_t t = 0; t < count; ++t) {
      band[t] = std::exp(band[t] - mx);
      sum += band[t];
    }
    auto zrow = z.row(i);
    for (std::size_t t = 0; t < count; ++t) {
      swat::axpy(band[t] / sum, in.v.row(lo + static_cast<std::int64_t>(t)),
                 zrow);
    }
  }
  return z;
}

struct BenchRow {
  std::string name;
  std::string baseline = "naive_seed";  // what speedup_* is measured against
  double flops = 0;       // per invocation
  double naive_s = 0;     // baseline implementation
  double blocked_1t_s = 0;
  double blocked_mt_s = 0;
  float max_abs_diff = 0;  // kernel vs oracle
  /// Packed-weight bytes streamed per invocation (0 for kernels with no
  /// resident pack). Lets the summary derive the effective weight-stream
  /// GB/s — the bandwidth the pack dtype halves.
  double weight_bytes = 0;
  /// K/V band-tile bytes streamed per invocation (0 for non-attention
  /// kernels): fused_window_kv_stream_bytes at the arm's stream dtype, so
  /// the fp16 arm reports half the fp32 arm's bytes for the same shape.
  double kv_bytes = 0;
  /// The same band priced at fp32 width regardless of stream dtype — the
  /// logical K/V elements the kernel delivers. kv_gbps_1t divides THIS by
  /// time (the standard effective-bandwidth convention: compressing the
  /// stream shows up as a higher effective rate only when it buys time),
  /// so fp16/fp32 kv_gbps_1t is exactly the wall-time ratio the acceptance
  /// gate reads.
  double kv_eff_bytes = 0;

  double gflops(double s) const { return flops / s / 1e9; }
  double weight_gbps(double s) const {
    return s > 0 ? weight_bytes / s / 1e9 : 0;
  }
  double kv_gbps(double s) const { return s > 0 ? kv_eff_bytes / s / 1e9 : 0; }
};

bool emit_json(const std::vector<BenchRow>& rows, const std::string& path,
               int threads) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "error: cannot open " << path << " for writing\n";
    return false;
  }
  out << "{\n  \"threads\": " << threads << ",\n  \"kernels\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const BenchRow& r = rows[i];
    out << "    {\"name\": \"" << r.name << "\", "
        << "\"baseline\": \"" << r.baseline << "\", "
        << "\"gflops_baseline\": " << r.gflops(r.naive_s) << ", "
        << "\"gflops_kernel_1t\": " << r.gflops(r.blocked_1t_s) << ", "
        << "\"gflops_kernel_mt\": " << r.gflops(r.blocked_mt_s) << ", "
        << "\"speedup_1t\": " << r.naive_s / r.blocked_1t_s << ", "
        << "\"speedup_mt\": " << r.naive_s / r.blocked_mt_s << ", "
        << "\"weight_bytes\": " << r.weight_bytes << ", "
        << "\"weight_gbps_1t\": " << r.weight_gbps(r.blocked_1t_s) << ", "
        << "\"kv_bytes\": " << r.kv_bytes << ", "
        << "\"kv_gbps_1t\": " << r.kv_gbps(r.blocked_1t_s) << ", "
        << "\"max_abs_diff\": " << r.max_abs_diff << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  return static_cast<bool>(out);
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_kernels.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    }
  }

  const int pool_threads = swat::num_threads();
  const std::int64_t gemm_n = smoke ? 192 : 512;
  const std::int64_t sc_n = smoke ? 1024 : 4096;
  const std::int64_t sc_w = smoke ? 64 : 128;
  const std::int64_t sc_h = 64;
  const int reps = smoke ? 2 : 3;

  swat::Rng rng(42);
  std::vector<BenchRow> rows;

  // ---- GEMM: C = A * B -------------------------------------------------
  {
    const MatrixF a = swat::random_normal(gemm_n, gemm_n, rng);
    const MatrixF b = swat::random_normal(gemm_n, gemm_n, rng);
    BenchRow r;
    r.name = "gemm_" + std::to_string(gemm_n) + "x" +
             std::to_string(gemm_n) + "x" + std::to_string(gemm_n);
    r.flops = 2.0 * gemm_n * gemm_n * gemm_n;
    MatrixF c_naive, c_blocked;
    r.naive_s = best_time(reps, [&] { c_naive = swat::matmul_naive(a, b); });
    swat::set_num_threads(1);
    r.blocked_1t_s = best_time(reps, [&] { c_blocked = swat::matmul(a, b); });
    swat::set_num_threads(pool_threads);
    r.blocked_mt_s = best_time(reps, [&] { c_blocked = swat::matmul(a, b); });
    r.max_abs_diff = swat::max_abs_diff(c_blocked, c_naive);
    rows.push_back(r);
  }

  // ---- GEMM-NT: C = A * B^T -------------------------------------------
  {
    const MatrixF a = swat::random_normal(gemm_n, gemm_n, rng);
    const MatrixF b = swat::random_normal(gemm_n, gemm_n, rng);
    BenchRow r;
    r.name = "gemm_nt_" + std::to_string(gemm_n) + "x" +
             std::to_string(gemm_n) + "x" + std::to_string(gemm_n);
    r.flops = 2.0 * gemm_n * gemm_n * gemm_n;
    MatrixF c_naive, c_blocked;
    r.naive_s =
        best_time(reps, [&] { c_naive = swat::matmul_nt_naive(a, b); });
    swat::set_num_threads(1);
    r.blocked_1t_s =
        best_time(reps, [&] { c_blocked = swat::matmul_nt(a, b); });
    swat::set_num_threads(pool_threads);
    r.blocked_mt_s =
        best_time(reps, [&] { c_blocked = swat::matmul_nt(a, b); });
    r.max_abs_diff = swat::max_abs_diff(c_blocked, c_naive);
    rows.push_back(r);
  }

  // ---- sliding-chunks forward -----------------------------------------
  {
    const auto in = swat::attn::random_head_input(sc_n, sc_h, rng);
    BenchRow r;
    r.name = "sliding_chunks_n" + std::to_string(sc_n) + "_w" +
             std::to_string(sc_w) + "_h" + std::to_string(sc_h);
    // Dense QK tile MACs + banded SV MACs (what both paths execute).
    const std::int64_t tiles = sc_n / sc_w - 1;
    r.flops = 2.0 * tiles * (2 * sc_w) * (2 * sc_w) * sc_h +
              2.0 * sc_n * (2 * sc_w + 1) * sc_h;
    MatrixF z_seed, z_blocked;
    r.naive_s = best_time(reps, [&] { z_seed = seed_sliding_chunks(in, sc_w); });
    swat::set_num_threads(1);
    r.blocked_1t_s = best_time(reps, [&] {
      z_blocked = swat::attn::sliding_chunks_attention(in, sc_w).z;
    });
    swat::set_num_threads(pool_threads);
    r.blocked_mt_s = best_time(reps, [&] {
      z_blocked = swat::attn::sliding_chunks_attention(in, sc_w).z;
    });
    // Accuracy against the exact banded oracle, not just the seed path.
    const MatrixF oracle = swat::attn::window_attention(in, sc_w);
    r.max_abs_diff = swat::max_abs_diff(z_blocked, oracle);
    rows.push_back(r);
  }

  // ---- packed-weight GEMM on the encoder's serving shapes ---------------
  // Baseline is the blocked bias GEMM the Linear layer ran per batch until
  // this PR (weights pre-transposed outside the timed region, exactly like
  // the old cached-W^T path); the kernel under test streams the pre-packed
  // panels. Both are timed on Longformer-base's projection (768 -> 768) and
  // FFN-expand (768 -> 3072) shapes.
  {
    struct PackedShape {
      const char* tag;
      std::int64_t m, k, n;
    };
    const std::int64_t pm = smoke ? 128 : 512;
    const PackedShape shapes[] = {
        {"proj", pm, smoke ? 256 : 768, smoke ? 256 : 768},
        {"ffn", pm, smoke ? 256 : 768, smoke ? 512 : 3072},
    };
    for (const PackedShape& sh : shapes) {
      swat::MatrixF a = swat::random_normal(sh.m, sh.k, rng);
      swat::MatrixF w = swat::random_normal(sh.n, sh.k, rng);
      std::vector<float> bias(static_cast<std::size_t>(sh.n));
      for (float& b : bias) b = static_cast<float>(rng.uniform(-1.0, 1.0));
      BenchRow r;
      r.name = std::string("gemm_packed_") + sh.tag + "_" +
               std::to_string(sh.m) + "x" + std::to_string(sh.k) + "x" +
               std::to_string(sh.n);
      r.baseline = "blocked_bias_gemm";
      r.flops = 2.0 * sh.m * sh.k * sh.n;
      const swat::MatrixF wt = swat::transpose(w);  // the old cached W^T
      swat::PackedWeight packed;
      swat::pack_weight_nt(w, packed);  // packed once, as Engine::compile does
      swat::MatrixF c_base(sh.m, sh.n), c_packed(sh.m, sh.n);
      // Baseline timed single-threaded like every other arm's baseline,
      // so speedup_1t compares one thread against one thread.
      swat::set_num_threads(1);
      r.naive_s = best_time(reps, [&] {
        swat::detail::gemm(a.data(), sh.k, wt.data(), sh.n, c_base.data(),
                           sh.n, sh.m, sh.n, sh.k, bias.data(),
                           /*parallel=*/true);
      });
      r.blocked_1t_s = best_time(reps, [&] {
        swat::gemm_packed_into(a, packed, bias, c_packed);
      });
      swat::set_num_threads(pool_threads);
      r.blocked_mt_s = best_time(reps, [&] {
        swat::gemm_packed_into(a, packed, bias, c_packed);
      });
      r.max_abs_diff = swat::max_abs_diff(c_packed, c_base);
      r.weight_bytes = static_cast<double>(packed.bytes());
      rows.push_back(r);

      // The half-precision pack on the same shape, against the fp32 pack
      // it replaces (explicitly named baseline): half the streamed weight
      // bytes, fp32 accumulation throughout, and FMA contraction in the
      // widened tile — the acceptance gate wants >= 1.2x on the FFN shape.
      swat::PackedWeight packed_f16;
      swat::pack_weight_nt(w, packed_f16, swat::Dtype::kFp16);
      swat::MatrixF c_f16(sh.m, sh.n);
      BenchRow h;
      h.name = std::string("gemm_packed_f16_") + sh.tag + "_" +
               std::to_string(sh.m) + "x" + std::to_string(sh.k) + "x" +
               std::to_string(sh.n);
      h.baseline = "gemm_packed_f32";
      h.flops = r.flops;
      h.weight_bytes = static_cast<double>(packed_f16.bytes());
      swat::set_num_threads(1);
      h.naive_s = best_time(reps, [&] {
        swat::gemm_packed_into(a, packed, bias, c_packed);
      });
      h.blocked_1t_s = best_time(reps, [&] {
        swat::gemm_packed_into(a, packed_f16, bias, c_f16);
      });
      swat::set_num_threads(pool_threads);
      h.blocked_mt_s = best_time(reps, [&] {
        swat::gemm_packed_into(a, packed_f16, bias, c_f16);
      });
      // fp16 rounds each weight once; the diff against the fp32 pack is
      // the fidelity-budgeted rounding, not an implementation bug.
      h.max_abs_diff = swat::max_abs_diff(c_f16, c_packed);
      rows.push_back(h);
    }
  }

  // ---- fused streaming attention (the serving kernel) -------------------
  // Baseline replicates the per-(sequence, head) serving path this PR
  // replaced: slice the head's Q/K/V (folding in the logit scale), run the
  // banded stable-softmax attention into a staging matrix, scatter back
  // into the packed concat buffer. The fused kernel streams Eq. 1 in place.
  {
    const std::int64_t fa_n = smoke ? 512 : 2048;
    const std::int64_t fa_heads = 12;
    const std::int64_t fa_h = 64;
    const std::int64_t fa_d = fa_heads * fa_h;
    const std::int64_t before = smoke ? 64 : 256;
    const std::int64_t after = before - 1;  // SWAT's 2w-core band
    const float scale = 1.0f / std::sqrt(static_cast<float>(fa_h));
    const swat::MatrixF q = swat::random_normal(fa_n, fa_d, rng, 0.3);
    const swat::MatrixF k = swat::random_normal(fa_n, fa_d, rng, 0.3);
    const swat::MatrixF v = swat::random_normal(fa_n, fa_d, rng);
    const std::int64_t offsets[2] = {0, fa_n};

    BenchRow r;
    r.name = "fused_attention_n" + std::to_string(fa_n) + "_w" +
             std::to_string(before) + "_h" + std::to_string(fa_h);
    r.baseline = "band_slice_scatter";
    // QK + SV multiply-accumulates over the clipped band, all heads.
    double band_rows = 0;
    for (std::int64_t i = 0; i < fa_n; ++i) {
      band_rows += static_cast<double>(
          std::min<std::int64_t>(fa_n - 1, i + after) -
          std::max<std::int64_t>(0, i - before) + 1);
    }
    r.flops = 2.0 * 2.0 * fa_heads * band_rows * fa_h;

    swat::MatrixF concat_base(fa_n, fa_d), concat_fused(fa_n, fa_d);
    const auto baseline = [&] {
      swat::attn::HeadInput in;
      swat::MatrixF z;
      for (std::int64_t head = 0; head < fa_heads; ++head) {
        const std::int64_t base = head * fa_h;
        in.q.reshape(fa_n, fa_h);
        in.k.reshape(fa_n, fa_h);
        in.v.reshape(fa_n, fa_h);
        for (std::int64_t i = 0; i < fa_n; ++i) {
          for (std::int64_t d = 0; d < fa_h; ++d) {
            in.q(i, d) = q(i, base + d) * scale;
            in.k(i, d) = k(i, base + d);
            in.v(i, d) = v(i, base + d);
          }
        }
        swat::attn::band_attention_into(in, before, after, z);
        for (std::int64_t i = 0; i < fa_n; ++i) {
          for (std::int64_t d = 0; d < fa_h; ++d) {
            concat_base(i, base + d) = z(i, d);
          }
        }
      }
    };
    const auto fused = [&] {
      swat::attn::fused_window_attention_batch_into(
          q, k, v, offsets, fa_heads, before, after, scale, concat_fused);
    };
    r.naive_s = best_time(reps, baseline);
    swat::set_num_threads(1);
    r.blocked_1t_s = best_time(reps, fused);
    swat::set_num_threads(pool_threads);
    r.blocked_mt_s = best_time(reps, fused);
    // Eq. 1 defers the division and skips the max subtraction, so the
    // fused kernel is numerically close to, not bitwise equal to, the
    // stable-softmax baseline.
    r.max_abs_diff = swat::max_abs_diff(concat_fused, concat_base);
    r.kv_bytes = static_cast<double>(swat::attn::fused_window_kv_stream_bytes(
        fa_n, fa_heads, fa_h, before, after, swat::Dtype::kFp32));
    r.kv_eff_bytes = r.kv_bytes;
    rows.push_back(r);

    // The half-precision streamed tiles on the same shape, against the
    // fp32 stream they replace (explicitly named baseline): half the K/V
    // tile bytes, fp32 scores/accumulation throughout. The acceptance
    // gate wants >= 1.2x effective K/V bandwidth at one thread — both
    // arms' kv_gbps_1t price the band at fp32 width, so the gate is
    // exactly speedup_1t (the fp32/fp16 wall-time ratio) >= 1.2x; on the
    // native build the fp16 worker earns it with in-register vcvtph2ps
    // widening and libmvec's vectorized exp pass.
    swat::MatrixF concat_f16(fa_n, fa_d);
    BenchRow h;
    h.name = "fused_attention_f16stream_n" + std::to_string(fa_n) + "_w" +
             std::to_string(before) + "_h" + std::to_string(fa_h);
    h.baseline = "fused_attention_f32stream";
    h.flops = r.flops;
    h.kv_bytes = static_cast<double>(swat::attn::fused_window_kv_stream_bytes(
        fa_n, fa_heads, fa_h, before, after, swat::Dtype::kFp16));
    h.kv_eff_bytes = r.kv_eff_bytes;
    const auto fused_f16 = [&] {
      swat::attn::fused_window_attention_batch_into(
          q, k, v, offsets, fa_heads, before, after, scale, concat_f16,
          swat::Dtype::kFp16);
    };
    swat::set_num_threads(1);
    h.naive_s = best_time(reps, fused);
    h.blocked_1t_s = best_time(reps, fused_f16);
    swat::set_num_threads(pool_threads);
    h.blocked_mt_s = best_time(reps, fused_f16);
    // fp16 rounds each K/V tile element once; the diff against the fp32
    // stream is the fidelity-budgeted rounding, not an implementation bug.
    h.max_abs_diff = swat::max_abs_diff(concat_f16, concat_fused);
    rows.push_back(h);
  }

  const bool json_ok = emit_json(rows, out_path, pool_threads);

  std::cout << "kernel                          baseline kernel(1t) kernel("
            << pool_threads << "t)  speedup(1t)\n";
  for (const BenchRow& r : rows) {
    std::printf("%-30s %7.2f %10.2f %11.2f %9.2fx   (max|diff| %.2e)\n",
                r.name.c_str(), r.gflops(r.naive_s), r.gflops(r.blocked_1t_s),
                r.gflops(r.blocked_mt_s), r.naive_s / r.blocked_1t_s,
                static_cast<double>(r.max_abs_diff));
  }
  if (json_ok) std::cout << "wrote " << out_path << "\n";
  return json_ok ? 0 : 1;
}
