// Microbenchmark of the blocked/parallel kernel backend against the seed
// scalar kernels. Emits BENCH_kernels.json (GFLOP/s + speedups) for CI
// tracking and the README table.
//
// Measured pairs (naive = the seed implementation, frozen below / kept in
// kernels.cpp as the reference oracle):
//   * GEMM           C = A * B        (matmul_naive   vs matmul)
//   * GEMM-NT        C = A * B^T      (matmul_nt_naive vs matmul_nt)
//   * sliding-chunks forward           (seed per-element dot() phase 1 vs
//                                       the blocked tile-GEMM path)
//
// Usage: kernels_microbench [--smoke] [--out <path>]
//   --smoke   small shapes / fewer reps (CI)
//   default   acceptance shapes: 512^3 GEMM, sliding chunks n=4096 w=128
//             h=64; each timed single-thread and with the pool enabled.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <limits>
#include <string>
#include <vector>

#include "attention/reference.hpp"
#include "attention/sliding_chunks.hpp"
#include "attention/window.hpp"
#include "common/thread_pool.hpp"
#include "tensor/kernels.hpp"

namespace {

using swat::MatrixF;

double now_seconds() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch())
      .count();
}

/// Best-of-N wall time of `fn` in seconds. One untimed warm-up run first,
/// so the pair measured earlier doesn't pay the cold-cache/page-fault cost
/// its competitor then skips — without it the later-timed variant shows a
/// spurious ~10-50% advantage.
template <typename Fn>
double best_time(int reps, Fn&& fn) {
  fn();
  double best = std::numeric_limits<double>::infinity();
  for (int r = 0; r < reps; ++r) {
    const double t0 = now_seconds();
    fn();
    best = std::min(best, now_seconds() - t0);
  }
  return best;
}

/// The seed repository's sliding-chunks phase-1/phase-2 implementation,
/// frozen verbatim as the benchmark baseline (kernel logic only; the op
/// counters are not re-measured here).
MatrixF seed_sliding_chunks(const swat::attn::HeadInput& in, std::int64_t w) {
  const std::int64_t n = in.seq_len();
  const std::int64_t h = in.head_dim();
  const std::int64_t num_tiles = n / w - 1;
  struct ChunkScores {
    std::int64_t base = 0;
    MatrixF s;
  };
  std::vector<ChunkScores> chunks(static_cast<std::size_t>(num_tiles));
  for (std::int64_t c = 0; c < num_tiles; ++c) {
    auto& ch = chunks[static_cast<std::size_t>(c)];
    ch.base = c * w;
    ch.s = MatrixF(2 * w, 2 * w);
    for (std::int64_t qi = 0; qi < 2 * w; ++qi) {
      for (std::int64_t kj = 0; kj < 2 * w; ++kj) {
        ch.s(qi, kj) =
            swat::dot(in.q.row(ch.base + qi), in.k.row(ch.base + kj));
      }
    }
  }
  MatrixF z(n, h, 0.0f);
  std::vector<float> band(static_cast<std::size_t>(2 * w + 1));
  for (std::int64_t i = 0; i < n; ++i) {
    const std::int64_t lo = std::max<std::int64_t>(0, i - w);
    const std::int64_t hi = std::min<std::int64_t>(n - 1, i + w);
    const std::size_t count = static_cast<std::size_t>(hi - lo + 1);
    const std::int64_t c_hi = std::min<std::int64_t>(i / w, num_tiles - 1);
    const std::int64_t c_lo = std::max<std::int64_t>(0, c_hi - 1);
    float mx = -std::numeric_limits<float>::infinity();
    for (std::int64_t j = lo; j <= hi; ++j) {
      const ChunkScores& ch =
          (j >= chunks[static_cast<std::size_t>(c_hi)].base &&
           j < chunks[static_cast<std::size_t>(c_hi)].base + 2 * w)
              ? chunks[static_cast<std::size_t>(c_hi)]
              : chunks[static_cast<std::size_t>(c_lo)];
      const float v = ch.s(i - ch.base, j - ch.base);
      band[static_cast<std::size_t>(j - lo)] = v;
      mx = std::max(mx, v);
    }
    float sum = 0.0f;
    for (std::size_t t = 0; t < count; ++t) {
      band[t] = std::exp(band[t] - mx);
      sum += band[t];
    }
    auto zrow = z.row(i);
    for (std::size_t t = 0; t < count; ++t) {
      swat::axpy(band[t] / sum, in.v.row(lo + static_cast<std::int64_t>(t)),
                 zrow);
    }
  }
  return z;
}

struct BenchRow {
  std::string name;
  double flops = 0;       // per invocation
  double naive_s = 0;     // seed kernel
  double blocked_1t_s = 0;
  double blocked_mt_s = 0;
  float max_abs_diff = 0;  // blocked vs oracle

  double gflops(double s) const { return flops / s / 1e9; }
};

bool emit_json(const std::vector<BenchRow>& rows, const std::string& path,
               int threads) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "error: cannot open " << path << " for writing\n";
    return false;
  }
  out << "{\n  \"threads\": " << threads << ",\n  \"kernels\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const BenchRow& r = rows[i];
    out << "    {\"name\": \"" << r.name << "\", "
        << "\"gflops_naive\": " << r.gflops(r.naive_s) << ", "
        << "\"gflops_blocked_1t\": " << r.gflops(r.blocked_1t_s) << ", "
        << "\"gflops_blocked_mt\": " << r.gflops(r.blocked_mt_s) << ", "
        << "\"speedup_1t\": " << r.naive_s / r.blocked_1t_s << ", "
        << "\"speedup_mt\": " << r.naive_s / r.blocked_mt_s << ", "
        << "\"max_abs_diff\": " << r.max_abs_diff << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  return static_cast<bool>(out);
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_kernels.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    }
  }

  const int pool_threads = swat::num_threads();
  const std::int64_t gemm_n = smoke ? 192 : 512;
  const std::int64_t sc_n = smoke ? 1024 : 4096;
  const std::int64_t sc_w = smoke ? 64 : 128;
  const std::int64_t sc_h = 64;
  const int reps = smoke ? 2 : 3;

  swat::Rng rng(42);
  std::vector<BenchRow> rows;

  // ---- GEMM: C = A * B -------------------------------------------------
  {
    const MatrixF a = swat::random_normal(gemm_n, gemm_n, rng);
    const MatrixF b = swat::random_normal(gemm_n, gemm_n, rng);
    BenchRow r;
    r.name = "gemm_" + std::to_string(gemm_n) + "x" +
             std::to_string(gemm_n) + "x" + std::to_string(gemm_n);
    r.flops = 2.0 * gemm_n * gemm_n * gemm_n;
    MatrixF c_naive, c_blocked;
    r.naive_s = best_time(reps, [&] { c_naive = swat::matmul_naive(a, b); });
    swat::set_num_threads(1);
    r.blocked_1t_s = best_time(reps, [&] { c_blocked = swat::matmul(a, b); });
    swat::set_num_threads(pool_threads);
    r.blocked_mt_s = best_time(reps, [&] { c_blocked = swat::matmul(a, b); });
    r.max_abs_diff = swat::max_abs_diff(c_blocked, c_naive);
    rows.push_back(r);
  }

  // ---- GEMM-NT: C = A * B^T -------------------------------------------
  {
    const MatrixF a = swat::random_normal(gemm_n, gemm_n, rng);
    const MatrixF b = swat::random_normal(gemm_n, gemm_n, rng);
    BenchRow r;
    r.name = "gemm_nt_" + std::to_string(gemm_n) + "x" +
             std::to_string(gemm_n) + "x" + std::to_string(gemm_n);
    r.flops = 2.0 * gemm_n * gemm_n * gemm_n;
    MatrixF c_naive, c_blocked;
    r.naive_s =
        best_time(reps, [&] { c_naive = swat::matmul_nt_naive(a, b); });
    swat::set_num_threads(1);
    r.blocked_1t_s =
        best_time(reps, [&] { c_blocked = swat::matmul_nt(a, b); });
    swat::set_num_threads(pool_threads);
    r.blocked_mt_s =
        best_time(reps, [&] { c_blocked = swat::matmul_nt(a, b); });
    r.max_abs_diff = swat::max_abs_diff(c_blocked, c_naive);
    rows.push_back(r);
  }

  // ---- sliding-chunks forward -----------------------------------------
  {
    const auto in = swat::attn::random_head_input(sc_n, sc_h, rng);
    BenchRow r;
    r.name = "sliding_chunks_n" + std::to_string(sc_n) + "_w" +
             std::to_string(sc_w) + "_h" + std::to_string(sc_h);
    // Dense QK tile MACs + banded SV MACs (what both paths execute).
    const std::int64_t tiles = sc_n / sc_w - 1;
    r.flops = 2.0 * tiles * (2 * sc_w) * (2 * sc_w) * sc_h +
              2.0 * sc_n * (2 * sc_w + 1) * sc_h;
    MatrixF z_seed, z_blocked;
    r.naive_s = best_time(reps, [&] { z_seed = seed_sliding_chunks(in, sc_w); });
    swat::set_num_threads(1);
    r.blocked_1t_s = best_time(reps, [&] {
      z_blocked = swat::attn::sliding_chunks_attention(in, sc_w).z;
    });
    swat::set_num_threads(pool_threads);
    r.blocked_mt_s = best_time(reps, [&] {
      z_blocked = swat::attn::sliding_chunks_attention(in, sc_w).z;
    });
    // Accuracy against the exact banded oracle, not just the seed path.
    const MatrixF oracle = swat::attn::window_attention(in, sc_w);
    r.max_abs_diff = swat::max_abs_diff(z_blocked, oracle);
    rows.push_back(r);
  }

  const bool json_ok = emit_json(rows, out_path, pool_threads);

  std::cout << "kernel                          naive    blocked(1t) blocked("
            << pool_threads << "t)  speedup(1t)\n";
  for (const BenchRow& r : rows) {
    std::printf("%-30s %7.2f %10.2f %11.2f %9.2fx   (max|diff| %.2e)\n",
                r.name.c_str(), r.gflops(r.naive_s), r.gflops(r.blocked_1t_s),
                r.gflops(r.blocked_mt_s), r.naive_s / r.blocked_1t_s,
                static_cast<double>(r.max_abs_diff));
  }
  if (json_ok) std::cout << "wrote " << out_path << "\n";
  return json_ok ? 0 : 1;
}
