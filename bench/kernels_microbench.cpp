// google-benchmark microbenchmarks of the host-side kernels (the
// reference/oracle implementations — useful when scaling the test suite
// and for documenting the C++ model's own costs).
#include <benchmark/benchmark.h>

#include "attention/fused.hpp"
#include "attention/sliding_chunks.hpp"
#include "attention/window.hpp"
#include "swat/functional_sim.hpp"
#include "tensor/kernels.hpp"

namespace {

swat::attn::HeadInput make_input(std::int64_t n, std::int64_t h) {
  swat::Rng rng(42);
  return swat::attn::random_head_input(n, h, rng);
}

void BM_DenseAttention(benchmark::State& state) {
  const auto in = make_input(state.range(0), 64);
  for (auto _ : state) {
    benchmark::DoNotOptimize(swat::attn::dense_attention(in));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_DenseAttention)->Arg(256)->Arg(512)->Arg(1024)->Complexity();

void BM_WindowAttention(benchmark::State& state) {
  const auto in = make_input(state.range(0), 64);
  for (auto _ : state) {
    benchmark::DoNotOptimize(swat::attn::window_attention(in, 64));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_WindowAttention)
    ->Arg(256)
    ->Arg(1024)
    ->Arg(4096)
    ->Complexity();

void BM_SlidingChunks(benchmark::State& state) {
  const auto in = make_input(state.range(0), 64);
  for (auto _ : state) {
    benchmark::DoNotOptimize(swat::attn::sliding_chunks_attention(in, 64));
  }
}
BENCHMARK(BM_SlidingChunks)->Arg(512)->Arg(1024)->Arg(2048);

void BM_FusedWindowFp16(benchmark::State& state) {
  const auto in = make_input(state.range(0), 64);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        swat::attn::fused_window_attention_fp16(in, 32));
  }
}
BENCHMARK(BM_FusedWindowFp16)->Arg(256)->Arg(512);

void BM_FunctionalSimulator(benchmark::State& state) {
  swat::SwatConfig cfg;
  cfg.head_dim = 64;
  cfg.window_cores = 64;
  const auto in = make_input(state.range(0), 64);
  const swat::FunctionalSimulator sim(cfg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.run(in));
  }
}
BENCHMARK(BM_FunctionalSimulator)->Arg(256)->Arg(512);

void BM_Softmax(benchmark::State& state) {
  swat::Rng rng(1);
  swat::MatrixF m = swat::random_normal(state.range(0), 512, rng);
  for (auto _ : state) {
    swat::MatrixF copy = m;
    swat::row_softmax_stable(copy);
    benchmark::DoNotOptimize(copy);
  }
}
BENCHMARK(BM_Softmax)->Arg(128)->Arg(1024);

}  // namespace

BENCHMARK_MAIN();
