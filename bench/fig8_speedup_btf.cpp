// Reproduces paper Fig. 8: normalized speedup of SWAT over the Butterfly
// accelerator in BTF-1 and BTF-2 configurations, N = 1024 .. 16384.
#include <iostream>

#include "baselines/butterfly.hpp"
#include "eval/calibration.hpp"
#include "eval/experiments.hpp"
#include "eval/table.hpp"

int main() {
  using swat::eval::Table;
  std::cout << "=== Paper Fig. 8: SWAT speedup over Butterfly ===\n"
            << "(model: " << swat::calib::kModelLayers << " layers x "
            << swat::calib::kModelHeads
            << " heads; Butterfly projected at its optimal FFT/ATTN engine "
               "resource split)\n\n";

  Table t({"N", "SWAT vs BTF-1", "SWAT vs BTF-2", "BTF-1 ATTN fabric r*"});
  const swat::baselines::ButterflyModel btf1(
      swat::baselines::ButterflyConfig::btf(1));
  for (const auto& r : swat::eval::fig8_speedups()) {
    t.add_row({std::to_string(r.seq_len), Table::times(r.speedup_vs_btf1),
               Table::times(r.speedup_vs_btf2),
               Table::pct(btf1.project(r.seq_len).attn_fraction)});
  }
  t.print(std::cout);

  std::cout << "\nPaper anchors: 6.7x (BTF-1) and 12.2x (BTF-2) at N=4096;\n"
               "~22x / ~40x at N=16384; monotone growth with N.\n";
  return 0;
}
