// Ablation bench: accuracy cost of shrinking the EXP unit to a
// piecewise-linear LUT (design-space support for the attention-core EXP
// stage; not a paper figure).
#include <iostream>

#include "attention/fused.hpp"
#include "attention/window.hpp"
#include "eval/table.hpp"
#include "swat/functional_sim.hpp"
#include "tensor/kernels.hpp"

int main() {
  using swat::eval::Table;
  swat::Rng rng(7);
  const std::int64_t n = 512;
  const std::int64_t h = 64;
  const auto in = swat::attn::random_head_input(n, h, rng);
  const swat::MatrixF oracle = swat::attn::band_attention(in, 256, 255);

  const swat::SwatConfig cfg = swat::SwatConfig::longformer_512();

  std::cout << "=== Ablation: EXP unit implementation (512-core FP16 design, "
               "N = 512) ===\n\n";
  Table t({"EXP unit", "max |err| vs fp32 oracle", "rel. Frobenius err"});

  const auto run = [&](int segments) {
    swat::FunctionalOptions opt;
    opt.exp_lut_segments = segments;
    return swat::FunctionalSimulator(cfg, opt).run(in).z;
  };

  const swat::MatrixF exact = run(0);
  t.add_row({"correctly-rounded fp16 exp (SWAT)",
             Table::num(swat::max_abs_diff(exact, oracle), 5),
             Table::num(swat::relative_error(exact, oracle), 5)});
  for (int segments : {1024, 256, 64, 16}) {
    const swat::MatrixF z = run(segments);
    t.add_row({"PWL LUT, " + std::to_string(segments) + " segments",
               Table::num(swat::max_abs_diff(z, oracle), 5),
               Table::num(swat::relative_error(z, oracle), 5)});
  }
  t.print(std::cout);

  std::cout << "\nTakeaway: a 256-segment PWL exp LUT matches the full exp\n"
               "unit to within fp16 noise; 16 segments visibly degrades the\n"
               "attention output.\n";
  return 0;
}
