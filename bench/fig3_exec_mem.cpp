// Reproduces paper Fig. 3: execution time and memory usage per attention
// (one head) — GPU dense, GPU sliding-chunks, SWAT FP16, SWAT FP32 — plus
// the sliding-chunks redundancy accounting of Fig. 2b / §1.
#include <iostream>

#include "attention/sliding_chunks.hpp"
#include "eval/experiments.hpp"
#include "eval/table.hpp"

int main() {
  using swat::eval::Table;
  std::cout << "=== Paper Fig. 3: execution time per attention ===\n\n";

  Table t({"N", "GPU dense", "GPU chunks", "SWAT FP16", "SWAT FP32"});
  const auto rows = swat::eval::fig3_exec_mem();
  for (const auto& r : rows) {
    t.add_row({std::to_string(r.seq_len), Table::ms(r.gpu_dense.value),
               Table::ms(r.gpu_chunks.value), Table::ms(r.swat_fp16.value),
               Table::ms(r.swat_fp32.value)});
  }
  t.print(std::cout);

  std::cout << "\n=== Paper Fig. 3 (right): memory usage per attention ===\n\n";
  Table m({"N", "GPU dense", "GPU chunks", "SWAT FP16", "SWAT FP32"});
  for (const auto& r : rows) {
    m.add_row({std::to_string(r.seq_len),
               Table::mb(static_cast<double>(r.mem_gpu_dense.count)),
               Table::mb(static_cast<double>(r.mem_gpu_chunks.count)),
               Table::mb(static_cast<double>(r.mem_swat_fp16.count)),
               Table::mb(static_cast<double>(r.mem_swat_fp32.count))});
  }
  m.print(std::cout);

  std::cout << "\n=== Fig. 2b / §1: sliding-chunks redundant computation ===\n"
               "(measured on the C++ sliding-chunks kernel, w = 16)\n\n";
  Table red({"N", "|chunks|", "measured redundancy",
             "paper formula 1/2 - 1/(4c)"});
  swat::Rng rng(1);
  for (std::int64_t n : {128, 256, 512, 1024, 2048}) {
    const auto in = swat::attn::random_head_input(n, 16, rng);
    const auto res = swat::attn::sliding_chunks_attention(in, 16);
    red.add_row({std::to_string(n), std::to_string(res.num_chunks),
                 Table::pct(res.measured_redundancy()),
                 Table::pct(swat::attn::sliding_chunks_redundancy_ratio(
                     res.num_chunks))});
  }
  red.print(std::cout);
  std::cout << "\nPaper shape check: GPU flat below ~4k then rising sharply\n"
               "(dense quadratic, chunks tracking it); SWAT linear in N and\n"
               "linear in memory; redundancy approaching 50%.\n";
  return 0;
}
