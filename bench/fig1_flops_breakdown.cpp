// Reproduces paper Fig. 1: FLOPs and MOPs breakdown (Linear / Attention /
// FFN) of one transformer encoder layer for input lengths 128 .. 16384.
#include <iostream>

#include "eval/experiments.hpp"
#include "eval/table.hpp"

int main() {
  using swat::eval::Table;
  std::cout << "=== Paper Fig. 1: FLOPs / MOPs breakdown vs input length ===\n"
            << "Layer: d_model=768, 12 heads, FFN x4 (Longformer-base)\n\n";

  for (const auto variant : {swat::attn::AttentionVariant::kDense,
                             swat::attn::AttentionVariant::kWindow}) {
    const bool dense = variant == swat::attn::AttentionVariant::kDense;
    std::cout << (dense ? "-- Dense attention (the paper's Fig. 1) --\n"
                        : "-- Window attention (2w = 512; the fix) --\n");
    Table t({"N", "FLOPs:Linear", "FLOPs:Attn", "FLOPs:FFN", "MOPs:Linear",
             "MOPs:Attn", "MOPs:FFN"});
    for (const auto& r :
         swat::eval::fig1_breakdown(swat::attn::LayerShape{}, variant)) {
      t.add_row({std::to_string(r.seq_len), Table::pct(r.linear_flops_share),
                 Table::pct(r.attention_flops_share),
                 Table::pct(r.ffn_flops_share), Table::pct(r.linear_mops_share),
                 Table::pct(r.attention_mops_share),
                 Table::pct(r.ffn_mops_share)});
    }
    t.print(std::cout);
    std::cout << "\n";
  }
  std::cout << "Paper shape check: with dense attention the attention share\n"
               "of both FLOPs and MOPs grows toward dominance by 16k tokens;\n"
               "with window attention it is capped.\n";
  return 0;
}
