// Reproduces paper Table 2: post-synthesis resource usage on the U55C for
// the four SWAT configurations, with the published Butterfly row for
// comparison, plus the structural breakdown behind each row.
#include <iostream>

#include "eval/table.hpp"
#include "swat/resource_model.hpp"

namespace {

std::string pct(int v) { return std::to_string(v) + "%"; }

}  // namespace

int main() {
  using swat::eval::Table;
  std::cout << "=== Paper Table 2: resource usage on U55C/VCU128 ===\n\n";

  struct Row {
    const char* name;
    swat::SwatConfig cfg;
  };
  const Row rows[] = {
      {"FP16 (512 attn)", swat::SwatConfig::longformer_512()},
      {"FP16 (BigBird 512 attn)", swat::SwatConfig::bigbird_512()},
      {"FP16 (BigBird 2 x 512 attn)", swat::SwatConfig::bigbird_dual_512()},
      {"FP32 (512 attn)",
       swat::SwatConfig::longformer_512(swat::Dtype::kFp32)},
  };

  Table t({"Design", "DSP", "LUT", "FF", "BRAM"});
  for (const auto& r : rows) {
    const auto u = swat::table2_utilization(r.cfg);
    t.add_row({r.name, pct(u.dsp_pct), pct(u.lut_pct), pct(u.ff_pct),
               pct(u.bram_pct)});
  }
  const auto b = swat::butterfly_published_utilization();
  t.add_row({"Butterfly (FP16, 120-BE) [published]", pct(b.dsp_pct),
             pct(b.lut_pct), pct(b.ff_pct), pct(b.bram_pct)});
  t.print(std::cout);

  std::cout << "\n-- structural breakdown (FP16, 512 attn) --\n";
  const auto bd = swat::estimate_resources(swat::SwatConfig::longformer_512());
  Table d({"section", "DSP", "LUT", "FF", "BRAM"});
  const auto add = [&](const char* name, const swat::hw::ResourceVector& v) {
    d.add_row({name, std::to_string(v.dsp), std::to_string(v.lut),
               std::to_string(v.ff), std::to_string(v.bram)});
  };
  add("attention cores", bd.cores);
  add("reduction trees", bd.reduction);
  add("divider bank", bd.dividers);
  add("control + AXI", bd.control);
  add("total", bd.total());
  d.print(std::cout);

  std::cout << "\nPaper anchors: 19/38/11/25, 19/33/11/25, 38/66/22/50,\n"
               "49/67/23/25 (percent, truncated) for the four SWAT rows.\n";
  return 0;
}
