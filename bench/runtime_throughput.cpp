// Throughput benchmark of the batched serving runtime (src/runtime/)
// against the sequential per-request path. Emits BENCH_runtime.json.
//
// All arms serve the same requests (same total tokens) on the ambient
// thread pool ("default threads": SWAT_THREADS if set, otherwise hardware
// concurrency):
//   * sequential — the pre-runtime entry point: Encoder::forward on one
//     request at a time. A single request exposes only num_heads attention
//     tasks and ceil(len/64) GEMM row blocks, so it cannot fill a wide
//     machine.
//   * batched    — Runtime::run with batches of `--batch` (default 8)
//     requests: projections/FFN run as GEMMs over all packed rows and
//     attention fans out over (request, head) tasks.
//   * planned    — the compiled execution path in isolation: batches are
//     packed once up front, then Engine::run executes each through a
//     pre-bound ExecutionPlan arena. Relative to batched this strips the
//     per-call pack/unpack memcpy and the per-request result allocations,
//     so it bounds what the serving wrapper costs on top of pure compute.
//
// The batched and planned arms' outputs are checked bit-identical to the
// sequential arm's before any timing is reported — the speedup is never
// bought with a different numerical path. On a single-core host all arms
// are compute-bound on the same kernels, so the expected speedup is ~1x;
// the batched win grows with core count (see the "threads" sweep in the
// JSON).
//
// Usage: runtime_throughput [--smoke] [--batch <n>] [--out <path>]
#include <algorithm>
#include <array>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <limits>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/thread_pool.hpp"
#include "runtime/runtime.hpp"

namespace {

using swat::Engine;
using swat::ExecutionPlan;
using swat::InferenceRequest;
using swat::MatrixF;
using swat::RequestResult;
using swat::Runtime;

double now_seconds() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch())
      .count();
}

/// Best-of-N for three competing arms, interleaving A, B and C each rep so
/// slow drift on a shared host (the container's core is not exclusively
/// ours) biases no side. One untimed warmup each first.
template <typename FnA, typename FnB, typename FnC>
std::array<double, 3> best_time_interleaved(int reps, FnA&& a, FnB&& b,
                                            FnC&& c) {
  a();
  b();
  c();
  std::array<double, 3> best;
  best.fill(std::numeric_limits<double>::infinity());
  for (int r = 0; r < reps; ++r) {
    double t0 = now_seconds();
    a();
    best[0] = std::min(best[0], now_seconds() - t0);
    t0 = now_seconds();
    b();
    best[1] = std::min(best[1], now_seconds() - t0);
    t0 = now_seconds();
    c();
    best[2] = std::min(best[2], now_seconds() - t0);
  }
  return best;
}

struct Arm {
  int threads = 1;
  double sequential_tps = 0.0;
  double batched_tps = 0.0;
  double planned_tps = 0.0;
  double speedup() const { return batched_tps / sequential_tps; }
  double planned_speedup() const { return planned_tps / sequential_tps; }
  double planned_vs_batched() const { return planned_tps / batched_tps; }
};

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::int64_t batch = 8;
  std::string out_path = "BENCH_runtime.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--batch") == 0 && i + 1 < argc) {
      batch = std::atoll(argv[++i]);
    }
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    }
  }
  if (batch < 1) {
    std::cerr << "error: --batch must be >= 1 (got " << batch << ")\n";
    return 1;
  }

  // A serving-sized encoder: big enough that the kernels dominate, small
  // enough that the bench finishes in seconds.
  swat::model::EncoderConfig cfg;
  cfg.d_model = smoke ? 128 : 256;
  cfg.num_heads = smoke ? 2 : 4;
  cfg.ffn_mult = 4;
  cfg.layers = smoke ? 2 : 4;
  // The fused streaming serving kernel (Eq. 1 in place over the packed
  // projections) — the backend the serving engine runs in production.
  cfg.backend = swat::model::AttentionBackend::kFusedStreaming;
  cfg.swat = swat::SwatConfig();
  cfg.swat.head_dim = 64;
  cfg.swat.window_cores = 64;
  cfg.weight_seed = 17;

  // Ragged request lengths, deterministic: cycle through a spread that
  // crosses bucket boundaries. Same requests for both arms.
  const std::int64_t num_requests = smoke ? batch : 4 * batch;
  const std::vector<std::int64_t> length_cycle =
      smoke ? std::vector<std::int64_t>{48, 64, 96, 33}
            : std::vector<std::int64_t>{96, 128, 192, 256, 112, 160, 224, 144};
  swat::Rng rng(2025);
  std::vector<InferenceRequest> requests;
  std::int64_t total_tokens = 0;
  for (std::int64_t i = 0; i < num_requests; ++i) {
    InferenceRequest req;
    req.id = static_cast<std::uint64_t>(i);
    const std::int64_t len =
        length_cycle[static_cast<std::size_t>(i) % length_cycle.size()];
    req.input = swat::random_normal(len, cfg.d_model, rng);
    total_tokens += len;
    requests.push_back(std::move(req));
  }

  const int default_threads = swat::num_threads();
  const int reps = smoke ? 2 : 5;

  swat::BatchingOptions bopt;
  bopt.max_batch_requests = batch;

  const swat::model::Encoder encoder(cfg);
  Runtime runtime(cfg, bopt);

  // The planned arm: pack every batch once up front (offsets + packed
  // matrix), compile one engine plan at the high-water batch shape, and
  // execute Engine::run per batch. This is what the serving loop does per
  // call, minus the per-call pack/unpack and result allocations.
  std::vector<std::int64_t> lengths;
  for (const InferenceRequest& req : requests) {
    lengths.push_back(req.input.rows());
  }
  const std::vector<swat::BatchPlanEntry> batch_plan =
      swat::plan_batches(lengths, bopt);
  std::vector<MatrixF> packed_batches;
  std::int64_t high_water_rows = 0;
  for (const swat::BatchPlanEntry& b : batch_plan) {
    MatrixF packed(b.rows(), cfg.d_model);
    for (std::int64_t i = 0; i < b.requests(); ++i) {
      const MatrixF& in =
          requests[b.request_indices[static_cast<std::size_t>(i)]].input;
      std::memcpy(packed.row(b.offsets[static_cast<std::size_t>(i)]).data(),
                  in.data(), static_cast<std::size_t>(in.size()) *
                                 sizeof(float));
    }
    high_water_rows = std::max(high_water_rows, b.rows());
    packed_batches.push_back(std::move(packed));
  }
  Engine planned_engine = Engine::compile(cfg, high_water_rows);

  // Correctness gate: batched and planned outputs must be bit-identical to
  // the sequential path before any throughput number is believed.
  {
    const std::vector<RequestResult> got = runtime.run(requests);
    for (std::size_t i = 0; i < requests.size(); ++i) {
      const MatrixF oracle = encoder.forward(requests[i].input);
      if (!(got[i].output == oracle)) {
        std::cerr << "FATAL: batched output diverges from sequential oracle "
                     "for request "
                  << i << "\n";
        return 1;
      }
    }
    for (std::size_t b = 0; b < batch_plan.size(); ++b) {
      const MatrixF& out =
          planned_engine.run(packed_batches[b], batch_plan[b].offsets);
      for (std::int64_t i = 0; i < batch_plan[b].requests(); ++i) {
        const std::size_t ri =
            batch_plan[b].request_indices[static_cast<std::size_t>(i)];
        const std::int64_t row0 =
            batch_plan[b].offsets[static_cast<std::size_t>(i)];
        if (std::memcmp(out.row(row0).data(), got[ri].output.data(),
                        static_cast<std::size_t>(got[ri].output.size()) *
                            sizeof(float)) != 0) {
          std::cerr << "FATAL: planned output diverges from batched for "
                       "request "
                    << ri << "\n";
          return 1;
        }
      }
    }
  }

  // Thread sweep: 1 thread isolates the packing effect; the ambient default
  // is the headline number the acceptance criterion reads.
  std::vector<int> thread_counts = {1};
  if (default_threads != 1) thread_counts.push_back(default_threads);

  std::vector<Arm> arms;
  for (const int t : thread_counts) {
    swat::set_num_threads(t);
    Arm arm;
    arm.threads = t;
    const std::array<double, 3> best = best_time_interleaved(
        reps,
        [&] {
          for (const InferenceRequest& req : requests) {
            const MatrixF y = encoder.forward(req.input);
            (void)y;
          }
        },
        [&] { (void)runtime.run(requests); },
        [&] {
          for (std::size_t b = 0; b < packed_batches.size(); ++b) {
            const MatrixF& out =
                planned_engine.run(packed_batches[b], batch_plan[b].offsets);
            (void)out;
          }
        });
    arm.sequential_tps = static_cast<double>(total_tokens) / best[0];
    arm.batched_tps = static_cast<double>(total_tokens) / best[1];
    arm.planned_tps = static_cast<double>(total_tokens) / best[2];
    arms.push_back(arm);
  }
  swat::set_num_threads(default_threads);

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "error: cannot open " << out_path << " for writing\n";
    return 1;
  }
  out << "{\n"
      << "  \"default_threads\": " << default_threads << ",\n"
      << "  \"hardware_concurrency\": " << std::thread::hardware_concurrency()
      << ",\n"
      << "  \"batch_size\": " << batch << ",\n"
      << "  \"requests\": " << num_requests << ",\n"
      << "  \"total_tokens\": " << total_tokens << ",\n"
      << "  \"config\": {\"d_model\": " << cfg.d_model
      << ", \"num_heads\": " << cfg.num_heads << ", \"layers\": " << cfg.layers
      << ", \"window_tokens\": " << cfg.swat.window_cores << "},\n"
      << "  \"arms\": [\n";
  for (std::size_t i = 0; i < arms.size(); ++i) {
    const Arm& a = arms[i];
    out << "    {\"threads\": " << a.threads
        << ", \"sequential_tokens_per_s\": " << a.sequential_tps
        << ", \"batched_tokens_per_s\": " << a.batched_tps
        << ", \"planned_tokens_per_s\": " << a.planned_tps
        << ", \"speedup\": " << a.speedup()
        << ", \"planned_speedup\": " << a.planned_speedup()
        << ", \"planned_vs_batched\": " << a.planned_vs_batched() << "}"
        << (i + 1 < arms.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";

  std::printf("runtime throughput (batch %lld, %lld requests, %lld tokens)\n",
              static_cast<long long>(batch),
              static_cast<long long>(num_requests),
              static_cast<long long>(total_tokens));
  std::printf("%-10s %18s %18s %18s %10s %10s\n", "threads",
              "sequential tok/s", "batched tok/s", "planned tok/s", "speedup",
              "pln/bat");
  for (const Arm& a : arms) {
    std::printf("%-10d %18.0f %18.0f %18.0f %9.2fx %9.2fx\n", a.threads,
                a.sequential_tps, a.batched_tps, a.planned_tps, a.speedup(),
                a.planned_vs_batched());
  }
  std::cout << "wrote " << out_path << "\n";
  return out ? 0 : 1;
}
