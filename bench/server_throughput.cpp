// Open-loop serving benchmark: the asynchronous continuous-batching
// swat::Server against the synchronous swat::Runtime gather-loop, under
// Poisson request arrivals. Emits BENCH_server.json.
//
// Arrivals are OPEN-LOOP: request i is submitted at a pre-drawn absolute
// time regardless of how far the server has fallen behind — the regime
// where queue latency actually exists. The arrival process is Poisson
// (exponential inter-arrival gaps) from a deterministic seed, so the same
// machine replays the same schedule run to run. Arrival intensity is
// calibrated against the measured sequential service rate: arms run at
// 0.5x (underloaded — latency dominated by batch-formation waits) and 2.0x
// (overloaded — latency dominated by queueing) of what one synchronous
// stream can absorb.
//
//   * sync  — the pre-server serving loop: a dispatcher wakes when the
//     next request arrives, gathers everything that has arrived so far,
//     and blocks in Runtime::run until the batch is done. Requests that
//     arrive mid-run wait for the whole run to finish.
//   * async — swat::Server: submit() returns immediately, the scheduler
//     thread cuts batches continuously (caps + predicted-latency budget
//     from the paper's stage-latency model) and overlaps batch formation
//     with request arrival.
//
// Queue latency is the time a request spends admitted-but-unserved before
// its batch starts executing (server-stamped for the async arm, measured
// at the gather point for the sync arm); the table reports p50/p99 per
// arm plus end-to-end tokens/s over the makespan. Async outputs are
// checked bit-identical to the sequential oracle before any timing is
// believed.
//
// The OVERLOAD sweep then pushes the async server from 0.5x to 4x offered
// load with a 50/50 interactive/bulk mix under the production overload
// shape: kShedBulk admission (bulk shed at the queue watermark,
// interactive reserved headroom) plus a deadline on every interactive
// request, so hopeless interactive work is shed before compute instead of
// being served uselessly late. Per class and intensity it reports goodput
// (served requests/s), shed rate, deadline sheds/misses, and p50/p99
// TURNAROUND (admission to completion) of the requests actually served —
// the numbers that show interactive latency holding its budget at 4x
// while bulk absorbs the shedding.
//
// The REPLICA-SCALING sweep reruns the same open-loop overload shape with
// the server's engine-replica pool at 1/2/4 replicas (one shared
// read-only weight pack, replica_queue_depth=1 so dispatch pipelines and
// stealing is live), reporting aggregate goodput, goodput speedup vs one
// replica at the same offered load, and per-class p50/p99 turnaround —
// the goodput-vs-replicas scaling column is the headline.
//
// Usage: server_throughput [--smoke] [--out <path>]
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.hpp"
#include "runtime/runtime.hpp"
#include "runtime/server.hpp"

namespace {

using swat::InferenceRequest;
using swat::MatrixF;
using swat::RequestResult;
using swat::Runtime;
using swat::Server;

using Clock = std::chrono::steady_clock;

double percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double rank = p * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

struct ArmResult {
  std::string mode;
  double intensity_rel = 0.0;  ///< arrival rate / sequential service rate
  double intensity_rps = 0.0;
  double p50_queue_ms = 0.0;
  double p99_queue_ms = 0.0;
  double tokens_per_s = 0.0;
  std::int64_t batches = 0;
};

/// One (placement, replica count, offered load) cell of the
/// replica-scaling sweep.
struct ReplicaSweepResult {
  std::string placement;  ///< "shared" or "partitioned"
  std::size_t replicas = 1;
  double intensity_rel = 0.0;
  std::int64_t served = 0;
  double goodput_per_s = 0.0;   ///< aggregate served requests / makespan
  double goodput_speedup = 0.0; ///< vs the 1-replica cell at this load
  double interactive_p50_ms = 0.0;
  double interactive_p99_ms = 0.0;
  double bulk_p50_ms = 0.0;
  double bulk_p99_ms = 0.0;
};

/// One (shared_pack_placement, stream_dtype) cell of the placement-split
/// sweep: partitioned replicas sharing one logical pack, so the far
/// replica's remote-read cost — and each placement's answer to it — shows
/// up directly in goodput, with the pack footprint alongside.
struct PackSplitResult {
  std::string pack_placement;  ///< "first_touch", "interleaved", "replicated"
  std::string stream_dtype;    ///< "fp32" or "fp16"
  std::int64_t served = 0;
  double goodput_per_s = 0.0;
  double packed_mib = 0.0;  ///< Server::packed_weight_bytes
  double interactive_p99_ms = 0.0;
};

/// One (offered load, SLO class) cell of the overload sweep.
struct OverloadResult {
  double intensity_rel = 0.0;
  std::string slo_class;
  std::int64_t submitted = 0;
  std::int64_t served = 0;
  std::int64_t shed = 0;
  std::int64_t deadline_shed = 0;
  std::int64_t deadline_missed = 0;
  double shed_rate = 0.0;  ///< (shed + deadline_shed) / submitted
  double goodput_per_s = 0.0;
  double p50_turnaround_ms = 0.0;
  double p99_turnaround_ms = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_server.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    }
  }

  // The serving-sized encoder the runtime bench standardizes on.
  swat::model::EncoderConfig cfg;
  cfg.d_model = smoke ? 128 : 256;
  cfg.num_heads = smoke ? 2 : 4;
  cfg.ffn_mult = 4;
  cfg.layers = smoke ? 2 : 4;
  cfg.backend = swat::model::AttentionBackend::kFusedStreaming;
  cfg.swat = swat::SwatConfig();
  cfg.swat.head_dim = 64;
  cfg.swat.window_cores = 64;
  cfg.weight_seed = 17;

  const std::int64_t num_requests = smoke ? 16 : 64;
  const std::vector<std::int64_t> length_cycle =
      smoke ? std::vector<std::int64_t>{48, 64, 96, 33}
            : std::vector<std::int64_t>{96, 128, 192, 256, 112, 160, 224, 144};
  swat::Rng rng(2025);
  std::vector<InferenceRequest> requests;
  std::int64_t total_tokens = 0;
  for (std::int64_t i = 0; i < num_requests; ++i) {
    InferenceRequest req;
    req.id = static_cast<std::uint64_t>(i);
    const std::int64_t len =
        length_cycle[static_cast<std::size_t>(i) % length_cycle.size()];
    req.input = swat::random_normal(len, cfg.d_model, rng);
    total_tokens += len;
    requests.push_back(std::move(req));
  }

  // Correctness gate + service-rate calibration in one pass: the async
  // server must reproduce the sequential oracle bit for bit, and the
  // timed oracle loop measures the sequential service rate the arrival
  // intensities are expressed against.
  const swat::model::Encoder encoder(cfg);
  std::vector<MatrixF> oracle;
  const auto calib_start = Clock::now();
  for (const InferenceRequest& req : requests) {
    oracle.push_back(encoder.forward(req.input));
  }
  const double sequential_seconds =
      std::chrono::duration<double>(Clock::now() - calib_start).count();
  const double service_rps =
      static_cast<double>(num_requests) / sequential_seconds;
  {
    Server server(cfg);
    std::vector<Server::Ticket> tickets;
    for (const InferenceRequest& req : requests) {
      tickets.push_back(server.submit(req));  // submit copies its argument
    }
    for (std::size_t i = 0; i < tickets.size(); ++i) {
      const RequestResult got = tickets[i].get();
      if (!(got.output == oracle[i])) {
        std::cerr << "FATAL: async output diverges from sequential oracle "
                     "for request "
                  << i << "\n";
        return 1;
      }
    }
  }

  const std::vector<double> intensities = {0.5, 2.0};
  std::vector<ArmResult> arms;

  for (const double rel : intensities) {
    const double rps = rel * service_rps;
    // Deterministic Poisson arrival schedule (absolute offsets, seconds).
    swat::Rng arrival_rng(
        777 + static_cast<std::uint64_t>(rel * 1000.0));
    std::vector<double> arrival(requests.size());
    double t = 0.0;
    for (double& a : arrival) {
      t += -std::log(1.0 - arrival_rng.uniform(0.0, 1.0)) / rps;
      a = t;
    }

    // ---- sync arm: arrive, gather, block in Runtime::run.
    {
      Runtime runtime(cfg);
      std::vector<double> queue_ms(requests.size(), 0.0);
      const auto start = Clock::now();
      std::size_t next = 0;
      double last_done = 0.0;
      while (next < requests.size()) {
        const auto due = start + std::chrono::duration_cast<Clock::duration>(
                                     std::chrono::duration<double>(
                                         arrival[next]));
        std::this_thread::sleep_until(due);
        const double now =
            std::chrono::duration<double>(Clock::now() - start).count();
        std::vector<InferenceRequest> burst;
        std::vector<std::size_t> burst_ids;
        while (next < requests.size() && arrival[next] <= now) {
          burst.push_back(requests[next]);
          burst_ids.push_back(next);
          ++next;
        }
        const double run_start =
            std::chrono::duration<double>(Clock::now() - start).count();
        for (const std::size_t i : burst_ids) {
          queue_ms[i] = (run_start - arrival[i]) * 1e3;
        }
        (void)runtime.run(burst);
        last_done =
            std::chrono::duration<double>(Clock::now() - start).count();
      }
      ArmResult arm;
      arm.mode = "sync";
      arm.intensity_rel = rel;
      arm.intensity_rps = rps;
      arm.p50_queue_ms = percentile(queue_ms, 0.5);
      arm.p99_queue_ms = percentile(queue_ms, 0.99);
      arm.tokens_per_s = static_cast<double>(total_tokens) / last_done;
      arm.batches = runtime.totals().batches;
      arms.push_back(arm);
    }

    // ---- async arm: open-loop submit, scheduler batches continuously.
    {
      swat::ServerOptions opt;
      // Let the stage-latency model cap batches at ~4 mid-length requests
      // of predicted work, so the budget (not just the caps) shapes cuts.
      opt.batching.max_batch_latency = swat::Seconds{
          swat::BatchCostModel(cfg)
              .request_seconds(length_cycle[1])
              .value *
          4.0};
      Server server(cfg, opt);
      std::vector<Server::Ticket> tickets(requests.size());
      const auto start = Clock::now();
      for (std::size_t i = 0; i < requests.size(); ++i) {
        const auto due = start + std::chrono::duration_cast<Clock::duration>(
                                     std::chrono::duration<double>(
                                         arrival[i]));
        std::this_thread::sleep_until(due);
        tickets[i] = server.submit(requests[i]);
      }
      std::vector<double> queue_ms;
      queue_ms.reserve(requests.size());
      for (Server::Ticket& ticket : tickets) {
        queue_ms.push_back(ticket.get().counters.queue_delay.value * 1e3);
      }
      const double makespan =
          std::chrono::duration<double>(Clock::now() - start).count();
      ArmResult arm;
      arm.mode = "async";
      arm.intensity_rel = rel;
      arm.intensity_rps = rps;
      arm.p50_queue_ms = percentile(queue_ms, 0.5);
      arm.p99_queue_ms = percentile(queue_ms, 0.99);
      arm.tokens_per_s = static_cast<double>(total_tokens) / makespan;
      arm.batches = server.totals().batches;
      arms.push_back(arm);
    }
  }

  // ---- overload sweep: 0.5x..4x offered load, 50/50 interactive/bulk,
  // kShedBulk admission + interactive deadlines. Bulk is expected to shed
  // as load crosses 1x; interactive turnaround must hold its budget.
  const std::vector<double> overload_intensities =
      smoke ? std::vector<double>{0.5, 4.0}
            : std::vector<double>{0.5, 1.0, 2.0, 4.0};
  // The interactive latency budget: the wall time of ~8 sequential
  // requests, floored at 100 ms — generous when idle, binding at 4x.
  const double interactive_deadline_s =
      std::max(0.1, 8.0 / service_rps);
  std::vector<OverloadResult> overload;
  for (const double rel : overload_intensities) {
    const double rps = rel * service_rps;
    swat::Rng arrival_rng(1234 + static_cast<std::uint64_t>(rel * 1000.0));
    std::vector<double> arrival(requests.size());
    double t = 0.0;
    for (double& a : arrival) {
      t += -std::log(1.0 - arrival_rng.uniform(0.0, 1.0)) / rps;
      a = t;
    }

    swat::ServerOptions opt;
    opt.batching.max_batch_latency = swat::Seconds{
        swat::BatchCostModel(cfg).request_seconds(length_cycle[1]).value *
        4.0};
    opt.admission = swat::OverflowPolicy::kShedBulk;
    opt.queue_capacity = 16;
    opt.shed_watermark = 0.75;  // bulk sheds at 12 queued
    Server server(cfg, opt);

    std::vector<Server::Ticket> tickets(requests.size());
    const auto start = Clock::now();
    for (std::size_t i = 0; i < requests.size(); ++i) {
      const auto due = start + std::chrono::duration_cast<Clock::duration>(
                                   std::chrono::duration<double>(arrival[i]));
      std::this_thread::sleep_until(due);
      InferenceRequest req = requests[i];  // copy: the pool is reused
      req.priority = (i % 2 == 0) ? swat::Priority::kInteractive
                                  : swat::Priority::kBulk;
      if (req.priority == swat::Priority::kInteractive) {
        req.deadline = swat::Seconds{interactive_deadline_s};
      }
      tickets[i] = server.submit(std::move(req));
    }
    std::vector<double> turnaround_ms[2];
    for (std::size_t i = 0; i < tickets.size(); ++i) {
      try {
        const RequestResult res = tickets[i].get();
        turnaround_ms[i % 2].push_back(res.counters.turnaround.value * 1e3);
      } catch (const std::exception&) {
        // shed at admission or by deadline — ledgered in server.stats()
      }
    }
    const double makespan =
        std::chrono::duration<double>(Clock::now() - start).count();
    server.drain();
    const swat::ServerStats stats = server.stats();
    for (const swat::Priority cls :
         {swat::Priority::kInteractive, swat::Priority::kBulk}) {
      const swat::ClassStats& cs = stats.of(cls);
      OverloadResult row;
      row.intensity_rel = rel;
      row.slo_class = swat::to_string(cls);
      row.submitted = cs.submitted;
      row.served = cs.served;
      row.shed = cs.shed;
      row.deadline_shed = cs.deadline_shed;
      row.deadline_missed = cs.deadline_missed;
      row.shed_rate = cs.submitted == 0
                          ? 0.0
                          : static_cast<double>(cs.shed + cs.deadline_shed) /
                                static_cast<double>(cs.submitted);
      row.goodput_per_s = static_cast<double>(cs.served) / makespan;
      const std::size_t lane = cls == swat::Priority::kInteractive ? 0 : 1;
      row.p50_turnaround_ms = percentile(turnaround_ms[lane], 0.5);
      row.p99_turnaround_ms = percentile(turnaround_ms[lane], 0.99);
      overload.push_back(row);
    }
  }

  // ---- replica-scaling sweep: the open-loop overload shape, served by
  // 1/2/4 engine replicas behind one admission queue. The workload is its
  // own: MANY SHORT requests, the saturation regime the pool exists for —
  // per-request service is small, so one engine's batch-at-a-time cadence
  // (claim, execute, retire, wake the dispatcher) is the bottleneck and
  // concurrent replicas pipeline past it; short requests also spawn few
  // fork-join tasks each, so on multi-core hosts a single replica
  // underfills the thread pool and the replica count decides utilization.
  // Replicas share one read-only weight pack (memory stays 1x) and the
  // dispatcher may claim ahead two batches per replica
  // (replica_queue_depth=2) so batch formation pipelines with execution
  // and work stealing is live. The column that matters is aggregate
  // goodput vs replica count at saturating load.
  const std::int64_t sweep_count = smoke ? 32 : 96;
  const std::vector<std::int64_t> sweep_lengths = {8, 16, 24, 12};
  swat::Rng sweep_rng(3030);
  std::vector<InferenceRequest> sweep_requests;
  for (std::int64_t i = 0; i < sweep_count; ++i) {
    InferenceRequest req;
    req.id = static_cast<std::uint64_t>(10000 + i);
    const std::int64_t len =
        sweep_lengths[static_cast<std::size_t>(i) % sweep_lengths.size()];
    req.input = swat::random_normal(len, cfg.d_model, sweep_rng);
    sweep_requests.push_back(std::move(req));
  }
  // Calibrate the sweep's own sequential service rate (short requests
  // serve much faster than the main pool's).
  const auto sweep_calib_start = Clock::now();
  for (const InferenceRequest& req : sweep_requests) {
    (void)encoder.forward(req.input);
  }
  const double sweep_service_rps =
      static_cast<double>(sweep_count) /
      std::chrono::duration<double>(Clock::now() - sweep_calib_start).count();
  const double sweep_deadline_s = std::max(0.1, 8.0 / sweep_service_rps);

  // Shared vs partitioned placement, head to head at every (load,
  // replicas) cell. goodput_speedup is normalized within each placement
  // (vs its own 1-replica cell at that load), so the column answers "how
  // well does THIS placement scale with replicas" — the partitioned-vs-
  // shared goodput_per_s gap at 4 replicas is the locality win itself.
  std::vector<ReplicaSweepResult> replica_sweep;
  for (const swat::PlacementPolicy placement :
       {swat::PlacementPolicy::kShared, swat::PlacementPolicy::kPartitioned}) {
    const char* placement_name =
        placement == swat::PlacementPolicy::kShared ? "shared" : "partitioned";
    for (const double rel : overload_intensities) {
      double base_goodput = 0.0;
      for (const std::size_t replicas : {1u, 2u, 4u}) {
      swat::Rng arrival_rng(4321 + static_cast<std::uint64_t>(rel * 1000.0));
      std::vector<double> arrival(sweep_requests.size());
      double t = 0.0;
      for (double& a : arrival) {
        t += -std::log(1.0 - arrival_rng.uniform(0.0, 1.0)) /
             (rel * sweep_service_rps);
        a = t;
      }

      swat::ServerOptions opt;
      // Singleton batches: each batch spawns only `heads` fork-join tasks,
      // so a single replica underfills a multi-core pool and the replica
      // count — not the batch width — decides machine utilization. This is
      // the regime the pool exists for; on hosts with fewer cores than
      // SWAT_THREADS the speedup column honestly reads ~1x.
      opt.batching.max_batch_requests = 1;
      opt.admission = swat::OverflowPolicy::kShedBulk;
      opt.queue_capacity = 16;
      opt.shed_watermark = 0.75;
      opt.num_replicas = replicas;
      opt.share_weight_pack = replicas > 1;
      opt.replica_queue_depth = 2;
      opt.placement = placement;
      Server server(cfg, opt);

      std::vector<Server::Ticket> tickets(sweep_requests.size());
      const auto start = Clock::now();
      for (std::size_t i = 0; i < sweep_requests.size(); ++i) {
        const auto due = start + std::chrono::duration_cast<Clock::duration>(
                                     std::chrono::duration<double>(arrival[i]));
        std::this_thread::sleep_until(due);
        InferenceRequest req = sweep_requests[i];  // copy: the pool is reused
        req.priority = (i % 2 == 0) ? swat::Priority::kInteractive
                                    : swat::Priority::kBulk;
        if (req.priority == swat::Priority::kInteractive) {
          req.deadline = swat::Seconds{sweep_deadline_s};
        }
        tickets[i] = server.submit(std::move(req));
      }
      std::vector<double> turnaround_ms[2];
      std::int64_t served = 0;
      for (std::size_t i = 0; i < tickets.size(); ++i) {
        try {
          const RequestResult res = tickets[i].get();
          turnaround_ms[i % 2].push_back(res.counters.turnaround.value * 1e3);
          ++served;
        } catch (const std::exception&) {
          // shed at admission or by deadline — ledgered in server.stats()
        }
      }
      const double makespan =
          std::chrono::duration<double>(Clock::now() - start).count();
      server.drain();

      ReplicaSweepResult row;
      row.placement = placement_name;
      row.replicas = replicas;
      row.intensity_rel = rel;
      row.served = served;
      row.goodput_per_s = static_cast<double>(served) / makespan;
      if (replicas == 1) base_goodput = row.goodput_per_s;
      row.goodput_speedup =
          base_goodput > 0.0 ? row.goodput_per_s / base_goodput : 0.0;
      row.interactive_p50_ms = percentile(turnaround_ms[0], 0.5);
      row.interactive_p99_ms = percentile(turnaround_ms[0], 0.99);
      row.bulk_p50_ms = percentile(turnaround_ms[1], 0.5);
      row.bulk_p99_ms = percentile(turnaround_ms[1], 0.99);
      replica_sweep.push_back(row);
      }
    }
  }

  // ---- placement-split sweep: 2 partitioned replicas sharing one logical
  // pack at saturating load, crossed over every shared_pack_placement
  // policy x stream dtype. On a multi-node host the first-touch arm makes
  // the far replica pay remote reads for every panel, interleaved splits
  // the cost and replicated-per-node removes it (at N_nodes x the
  // footprint, reported in the packed_mib column); fp16 streaming then
  // halves the K/V bytes on top. Single-node hosts downgrade the
  // non-default policies with a one-time warning and the arms honestly
  // read ~equal.
  std::vector<PackSplitResult> pack_split;
  {
    const double rel = overload_intensities.back();
    for (const swat::SharedPackPlacement pack_placement :
         {swat::SharedPackPlacement::kFirstTouch,
          swat::SharedPackPlacement::kInterleaved,
          swat::SharedPackPlacement::kReplicatedPerNode}) {
      for (const swat::Dtype stream : {swat::Dtype::kFp32, swat::Dtype::kFp16}) {
        swat::Rng arrival_rng(5151);
        std::vector<double> arrival(sweep_requests.size());
        double t = 0.0;
        for (double& a : arrival) {
          t += -std::log(1.0 - arrival_rng.uniform(0.0, 1.0)) /
               (rel * sweep_service_rps);
          a = t;
        }

        swat::ServerOptions opt;
        opt.batching.max_batch_requests = 1;
        opt.admission = swat::OverflowPolicy::kShedBulk;
        opt.queue_capacity = 16;
        opt.shed_watermark = 0.75;
        opt.num_replicas = 2;
        opt.share_weight_pack = true;
        opt.replica_queue_depth = 2;
        opt.placement = swat::PlacementPolicy::kPartitioned;
        opt.shared_pack_placement = pack_placement;
        opt.stream_dtype = stream;
        Server server(cfg, opt);

        std::vector<Server::Ticket> tickets(sweep_requests.size());
        const auto start = Clock::now();
        for (std::size_t i = 0; i < sweep_requests.size(); ++i) {
          const auto due =
              start + std::chrono::duration_cast<Clock::duration>(
                          std::chrono::duration<double>(arrival[i]));
          std::this_thread::sleep_until(due);
          InferenceRequest req = sweep_requests[i];
          req.priority = (i % 2 == 0) ? swat::Priority::kInteractive
                                      : swat::Priority::kBulk;
          if (req.priority == swat::Priority::kInteractive) {
            req.deadline = swat::Seconds{sweep_deadline_s};
          }
          tickets[i] = server.submit(std::move(req));
        }
        std::vector<double> interactive_ms;
        std::int64_t served = 0;
        for (std::size_t i = 0; i < tickets.size(); ++i) {
          try {
            const RequestResult res = tickets[i].get();
            if (i % 2 == 0) {
              interactive_ms.push_back(res.counters.turnaround.value * 1e3);
            }
            ++served;
          } catch (const std::exception&) {
            // shed at admission or by deadline — ledgered in server.stats()
          }
        }
        const double makespan =
            std::chrono::duration<double>(Clock::now() - start).count();
        const double packed_mib =
            static_cast<double>(server.packed_weight_bytes()) / (1024.0 * 1024.0);
        server.drain();

        PackSplitResult row;
        row.pack_placement =
            pack_placement == swat::SharedPackPlacement::kFirstTouch
                ? "first_touch"
                : (pack_placement == swat::SharedPackPlacement::kInterleaved
                       ? "interleaved"
                       : "replicated");
        row.stream_dtype = stream == swat::Dtype::kFp16 ? "fp16" : "fp32";
        row.served = served;
        row.goodput_per_s = static_cast<double>(served) / makespan;
        row.packed_mib = packed_mib;
        row.interactive_p99_ms = percentile(interactive_ms, 0.99);
        pack_split.push_back(row);
      }
    }
  }

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "error: cannot open " << out_path << " for writing\n";
    return 1;
  }
  out << "{\n"
      << "  \"default_threads\": " << swat::num_threads() << ",\n"
      << "  \"requests\": " << num_requests << ",\n"
      << "  \"total_tokens\": " << total_tokens << ",\n"
      << "  \"sequential_service_rps\": " << service_rps << ",\n"
      << "  \"config\": {\"d_model\": " << cfg.d_model
      << ", \"num_heads\": " << cfg.num_heads << ", \"layers\": " << cfg.layers
      << ", \"window_tokens\": " << cfg.swat.window_cores << "},\n"
      << "  \"arms\": [\n";
  for (std::size_t i = 0; i < arms.size(); ++i) {
    const ArmResult& a = arms[i];
    out << "    {\"mode\": \"" << a.mode
        << "\", \"intensity_rel\": " << a.intensity_rel
        << ", \"intensity_rps\": " << a.intensity_rps
        << ", \"p50_queue_ms\": " << a.p50_queue_ms
        << ", \"p99_queue_ms\": " << a.p99_queue_ms
        << ", \"tokens_per_s\": " << a.tokens_per_s
        << ", \"batches\": " << a.batches << "}"
        << (i + 1 < arms.size() ? "," : "") << "\n";
  }
  out << "  ],\n"
      << "  \"interactive_deadline_ms\": " << interactive_deadline_s * 1e3
      << ",\n"
      << "  \"overload\": [\n";
  for (std::size_t i = 0; i < overload.size(); ++i) {
    const OverloadResult& o = overload[i];
    out << "    {\"intensity_rel\": " << o.intensity_rel
        << ", \"class\": \"" << o.slo_class
        << "\", \"submitted\": " << o.submitted
        << ", \"served\": " << o.served << ", \"shed\": " << o.shed
        << ", \"deadline_shed\": " << o.deadline_shed
        << ", \"deadline_missed\": " << o.deadline_missed
        << ", \"shed_rate\": " << o.shed_rate
        << ", \"goodput_per_s\": " << o.goodput_per_s
        << ", \"p50_turnaround_ms\": " << o.p50_turnaround_ms
        << ", \"p99_turnaround_ms\": " << o.p99_turnaround_ms << "}"
        << (i + 1 < overload.size() ? "," : "") << "\n";
  }
  out << "  ],\n"
      << "  \"replica_sweep_requests\": " << sweep_count << ",\n"
      << "  \"replica_sweep_service_rps\": " << sweep_service_rps << ",\n"
      << "  \"replica_sweep\": [\n";
  for (std::size_t i = 0; i < replica_sweep.size(); ++i) {
    const ReplicaSweepResult& r = replica_sweep[i];
    out << "    {\"placement\": \"" << r.placement
        << "\", \"replicas\": " << r.replicas
        << ", \"intensity_rel\": " << r.intensity_rel
        << ", \"served\": " << r.served
        << ", \"goodput_per_s\": " << r.goodput_per_s
        << ", \"goodput_speedup\": " << r.goodput_speedup
        << ", \"interactive_p50_ms\": " << r.interactive_p50_ms
        << ", \"interactive_p99_ms\": " << r.interactive_p99_ms
        << ", \"bulk_p50_ms\": " << r.bulk_p50_ms
        << ", \"bulk_p99_ms\": " << r.bulk_p99_ms << "}"
        << (i + 1 < replica_sweep.size() ? "," : "") << "\n";
  }
  out << "  ],\n"
      << "  \"pack_split\": [\n";
  for (std::size_t i = 0; i < pack_split.size(); ++i) {
    const PackSplitResult& p = pack_split[i];
    out << "    {\"pack_placement\": \"" << p.pack_placement
        << "\", \"stream_dtype\": \"" << p.stream_dtype
        << "\", \"served\": " << p.served
        << ", \"goodput_per_s\": " << p.goodput_per_s
        << ", \"packed_mib\": " << p.packed_mib
        << ", \"interactive_p99_ms\": " << p.interactive_p99_ms << "}"
        << (i + 1 < pack_split.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";

  std::printf(
      "server throughput (%lld requests, %lld tokens, seq service %.1f "
      "req/s)\n",
      static_cast<long long>(num_requests),
      static_cast<long long>(total_tokens), service_rps);
  std::printf("%-8s %10s %12s %14s %14s %14s %8s\n", "mode", "load",
              "arrive r/s", "p50 queue ms", "p99 queue ms", "tokens/s",
              "batches");
  for (const ArmResult& a : arms) {
    std::printf("%-8s %9.1fx %12.1f %14.2f %14.2f %14.0f %8lld\n",
                a.mode.c_str(), a.intensity_rel, a.intensity_rps,
                a.p50_queue_ms, a.p99_queue_ms, a.tokens_per_s,
                static_cast<long long>(a.batches));
  }
  std::printf(
      "\noverload sweep (kShedBulk, interactive deadline %.0f ms)\n",
      interactive_deadline_s * 1e3);
  std::printf("%6s %-12s %6s %6s %6s %7s %7s %10s %9s %9s\n", "load",
              "class", "subm", "served", "shed", "dl-shed", "dl-miss",
              "goodput/s", "p50 ms", "p99 ms");
  for (const OverloadResult& o : overload) {
    std::printf(
        "%5.1fx %-12s %6lld %6lld %6lld %7lld %7lld %10.1f %9.2f %9.2f\n",
        o.intensity_rel, o.slo_class.c_str(),
        static_cast<long long>(o.submitted),
        static_cast<long long>(o.served), static_cast<long long>(o.shed),
        static_cast<long long>(o.deadline_shed),
        static_cast<long long>(o.deadline_missed), o.goodput_per_s,
        o.p50_turnaround_ms, o.p99_turnaround_ms);
  }
  std::printf(
      "\nreplica-scaling sweep (%lld short requests, seq service %.1f "
      "req/s; kShedBulk, shared weight pack, singleton batches, "
      "queue_depth 2; speedup normalized within placement)\n",
      static_cast<long long>(sweep_count), sweep_service_rps);
  std::printf("%-12s %6s %9s %6s %10s %8s %9s %9s %9s %9s\n", "placement",
              "load", "replicas", "served", "goodput/s", "speedup",
              "int p50", "int p99", "bulk p50", "bulk p99");
  for (const ReplicaSweepResult& r : replica_sweep) {
    std::printf(
        "%-12s %5.1fx %9zu %6lld %10.1f %7.2fx %9.2f %9.2f %9.2f %9.2f\n",
        r.placement.c_str(), r.intensity_rel, r.replicas,
        static_cast<long long>(r.served), r.goodput_per_s, r.goodput_speedup,
        r.interactive_p50_ms, r.interactive_p99_ms, r.bulk_p50_ms,
        r.bulk_p99_ms);
  }
  std::printf(
      "\nplacement-split sweep (2 partitioned replicas, shared pack, "
      "%.1fx load; pack policy x stream dtype)\n",
      overload_intensities.back());
  std::printf("%-12s %6s %6s %10s %10s %9s\n", "pack", "dtype", "served",
              "goodput/s", "pack MiB", "int p99");
  for (const PackSplitResult& p : pack_split) {
    std::printf("%-12s %6s %6lld %10.1f %10.2f %9.2f\n",
                p.pack_placement.c_str(), p.stream_dtype.c_str(),
                static_cast<long long>(p.served), p.goodput_per_s,
                p.packed_mib, p.interactive_p99_ms);
  }
  std::cout << "wrote " << out_path << "\n";
  return out ? 0 : 1;
}
