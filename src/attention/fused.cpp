#include "attention/fused.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "common/thread_pool.hpp"
#include "tensor/kernels.hpp"

#if defined(__F16C__)
#include <immintrin.h>
#endif

#if defined(SWAT_HAVE_MVEC) && defined(__AVX512F__)
// glibc libmvec's 16-lane expf (<= 4 ulp): the fp16 streamed path's exp
// stage, which is free of the fp32 path's oracle-bit-parity pin.
extern "C" __m512 _ZGVeN16v_expf(__m512 x);
#elif defined(SWAT_HAVE_MVEC) && defined(__AVX2__)
extern "C" __m256 _ZGVdN8v_expf(__m256 x);
#endif

namespace swat::attn {

namespace {

#if defined(__F16C__)
// Inline scalar widen for the <8-lane loop tails: one vcvtph2ps, same bits
// as the batch converter (exact widening), no out-of-line call per element.
inline float f16_tail_to_f32(std::uint16_t bits) { return _cvtsh_ss(bits); }
#endif

// Defined below; the serial workers the batch entry point fans out.
SWAT_NO_FP_CONTRACT
void fused_window_tasks(ConstMatrixView q, ConstMatrixView k,
                        ConstMatrixView v,
                        std::span<const std::int64_t> offsets,
                        std::int64_t num_heads, std::int64_t window_before,
                        std::int64_t window_after, float scale, MatrixView out,
                        std::int64_t t0, std::int64_t t1);

void fused_window_tasks_f16(ConstMatrixView q, ConstMatrixView k,
                            ConstMatrixView v,
                            std::span<const std::int64_t> offsets,
                            std::int64_t num_heads, std::int64_t window_before,
                            std::int64_t window_after, float scale,
                            MatrixView out, std::int64_t t0, std::int64_t t1);

}  // namespace

void fused_window_attention_batch_into(ConstMatrixView q, ConstMatrixView k,
                                       ConstMatrixView v,
                                       std::span<const std::int64_t> offsets,
                                       std::int64_t num_heads,
                                       std::int64_t window_before,
                                       std::int64_t window_after, float scale,
                                       MatrixView out, Dtype stream_dtype) {
  SWAT_EXPECTS(stream_dtype == Dtype::kFp32 || stream_dtype == Dtype::kFp16);
  SWAT_EXPECTS(num_heads >= 1);
  SWAT_EXPECTS(window_before >= 0 && window_after >= 0);
  const std::int64_t rows = q.rows();
  const std::int64_t d_model = q.cols();
  SWAT_EXPECTS(d_model % num_heads == 0);
  SWAT_EXPECTS(k.rows() == rows && k.cols() == d_model);
  SWAT_EXPECTS(v.rows() == rows && v.cols() == d_model);
  SWAT_EXPECTS(out.rows() == rows && out.cols() == d_model);
  SWAT_EXPECTS(offsets.size() >= 2);
  SWAT_EXPECTS(offsets.front() == 0 && offsets.back() == rows);
  const std::int64_t nseq = static_cast<std::int64_t>(offsets.size()) - 1;
  for (std::int64_t s = 0; s < nseq; ++s) {
    SWAT_EXPECTS(offsets[static_cast<std::size_t>(s)] <
                 offsets[static_cast<std::size_t>(s + 1)]);
  }

  // (sequence, head) tasks fan out over the pool; rows within a task run
  // serially in index order, so every output element's reduction order is
  // fixed regardless of the partition.
  parallel_for(0, nseq * num_heads, 1, [&](std::int64_t t0, std::int64_t t1) {
    if (stream_dtype == Dtype::kFp16) {
      fused_window_tasks_f16(q, k, v, offsets, num_heads, window_before,
                             window_after, scale, out, t0, t1);
    } else {
      fused_window_tasks(q, k, v, offsets, num_heads, window_before,
                         window_after, scale, out, t0, t1);
    }
  });
}

std::int64_t fused_window_kv_stream_bytes(std::int64_t seq_len,
                                          std::int64_t num_heads,
                                          std::int64_t head_dim,
                                          std::int64_t window_before,
                                          std::int64_t window_after,
                                          Dtype stream_dtype) {
  SWAT_EXPECTS(seq_len >= 1 && num_heads >= 1 && head_dim >= 1);
  SWAT_EXPECTS(window_before >= 0 && window_after >= 0);
  // sum_i (hi_i - lo_i + 1) with hi = min(n-1, i+wa), lo = max(0, i-wb),
  // in closed form: n + sum min(n-1, i+wa) - sum max(0, i-wb).
  const std::int64_t n = seq_len;
  const std::int64_t unclipped_hi = std::max<std::int64_t>(0, n - window_after);
  const std::int64_t sum_hi = unclipped_hi * window_after +
                              unclipped_hi * (unclipped_hi - 1) / 2 +
                              (n - unclipped_hi) * (n - 1);
  const std::int64_t past_lo = n - 1 - window_before;
  const std::int64_t sum_lo = past_lo > 0 ? past_lo * (past_lo + 1) / 2 : 0;
  const std::int64_t band_sum = n + sum_hi - sum_lo;
  // Each band element is read from both the K tile and the V band.
  return 2 * num_heads * head_dim * band_sum *
         static_cast<std::int64_t>(dtype_bytes(stream_dtype));
}

namespace {

// Query rows are processed in tiles: for each tile the K head slice its
// band can touch (tile rows + window reach, independent of the sequence
// length) is transposed once into per-thread scratch, so the score stage
// streams K^T unit-stride and vectorizes across score columns while each
// score element keeps dot()'s exact ascending-d reduction order. The
// transpose is O(h) per tile row and amortizes over the whole tile.
// SWAT_NO_FP_CONTRACT pins the multiply-then-add rounding of the score
// and S'V loops to dot()/axpy()'s, so outputs are bit-identical to the
// per-head kernel on every ISA.
SWAT_NO_FP_CONTRACT
void fused_window_tasks(ConstMatrixView q, ConstMatrixView k,
                        ConstMatrixView v,
                        std::span<const std::int64_t> offsets,
                        std::int64_t num_heads, std::int64_t window_before,
                        std::int64_t window_after, float scale, MatrixView out,
                        std::int64_t t0, std::int64_t t1) {
  SWAT_NO_FP_CONTRACT_BODY
  const std::int64_t h = q.cols() / num_heads;
  constexpr std::int64_t kQueryTile = 64;
  {
    // The only per-thread scratch, leased from the thread's Workspace
    // arena (steady state is allocation-free): one scaled query row, one
    // row's score band, one transposed K tile, one output-row accumulator
    // — O(window x head_dim), never (rows x window).
    const std::int64_t band = window_before + window_after + 1;
    const std::int64_t tile_cols = kQueryTile + band - 1;
    WorkspaceLease qs_lease(tls_workspace(), static_cast<std::size_t>(h));
    WorkspaceLease s_lease(tls_workspace(), static_cast<std::size_t>(band));
    WorkspaceLease kt_lease(tls_workspace(),
                            static_cast<std::size_t>(tile_cols * h));
    WorkspaceLease z_lease(tls_workspace(), static_cast<std::size_t>(h));
    float* const qs = qs_lease.data();
    float* const sp = s_lease.data();
    float* const kt = kt_lease.data();
    float* const zacc = z_lease.data();
    for (std::int64_t t = t0; t < t1; ++t) {
      const std::int64_t s = t / num_heads;
      const std::int64_t base = (t % num_heads) * h;
      const std::int64_t row0 = offsets[static_cast<std::size_t>(s)];
      const std::int64_t n = offsets[static_cast<std::size_t>(s + 1)] - row0;
      for (std::int64_t i0 = 0; i0 < n; i0 += kQueryTile) {
        const std::int64_t i1 = std::min(i0 + kQueryTile, n);
        // K columns any row of this tile can attend: [tk0, tk1].
        const std::int64_t tk0 = std::max<std::int64_t>(0, i0 - window_before);
        const std::int64_t tk1 =
            std::min<std::int64_t>(n - 1, i1 - 1 + window_after);
        const std::int64_t tk = tk1 - tk0 + 1;
        // kt[d * tk + (j - tk0)] = K[row0 + j][base + d]: the transposed
        // tile the score loops stream unit-stride.
        for (std::int64_t j = tk0; j <= tk1; ++j) {
          const float* krow = k.row(row0 + j).data() + base;
          for (std::int64_t d = 0; d < h; ++d) {
            kt[d * tk + (j - tk0)] = krow[d];
          }
        }
        for (std::int64_t i = i0; i < i1; ++i) {
          const float* qrow = q.row(row0 + i).data() + base;
          for (std::int64_t d = 0; d < h; ++d) qs[d] = qrow[d] * scale;
          const std::int64_t lo =
              std::max<std::int64_t>(0, i - window_before);
          const std::int64_t hi =
              std::min<std::int64_t>(n - 1, i + window_after);
          const std::int64_t count = hi - lo + 1;
          // Exactly Eq. 1's operation order per element — QK dot, exp
          // with no max subtraction, S'V accumulation, one deferred
          // division — scheduled as one pass per stage over the row's
          // score band so each tight loop pipelines. Element-wise the
          // arithmetic and its order match fused_window_attention exactly
          // (d and j ascending everywhere), so per-head outputs are
          // bit-identical to the per-head kernel.
          float* const __restrict sb = sp;
          std::fill(sb, sb + count, 0.0f);
          for (std::int64_t d = 0; d < h; ++d) {
            const float qd = qs[d];
            const float* const __restrict ktd = kt + d * tk + (lo - tk0);
            for (std::int64_t c = 0; c < count; ++c) sb[c] += qd * ktd[c];
          }
          float denom = 0.0f;
          for (std::int64_t c = 0; c < count; ++c) {
            sb[c] = std::exp(sb[c]);
            denom += sb[c];
          }
          float* const __restrict za = zacc;
          std::fill(za, za + h, 0.0f);
          for (std::int64_t c = 0; c < count; ++c) {
            const float* const __restrict vr =
                v.row(row0 + lo + c).data() + base;
            const float e = sb[c];
            for (std::int64_t d = 0; d < h; ++d) za[d] += e * vr[d];
          }
          SWAT_ENSURES(denom > 0.0f);
          float* const zrow = out.row(row0 + i).data() + base;
          for (std::int64_t d = 0; d < h; ++d) zrow[d] = za[d] / denom;
        }
      }
    }
  }
}

// fp16 streamed-tile twin of fused_window_tasks. The transposed K tile and
// the row-major V band are narrowed to binary16 once per (sequence, head,
// tile) with the RNE SIMD converter, so the score and S'V stages stream 2
// bytes per K/V element instead of 4. On F16C hosts the hot loops widen
// lanes in-register (vcvtph2ps feeding the FMA directly — the streamed
// bytes really halve); elsewhere the fp16 tiles are widened once per tile
// into fp32 twins, amortizing the scalar conversion over every query row
// that reuses the tile. Scores, the exp/denominator pass and the Z
// accumulator stay fp32 with the same per-element ascending reduction
// order as the fp32 worker (scores ascend d, Z ascends c), so outputs are
// bit-identical across thread counts, arrival orders, replica counts and
// batch compositions. Unlike the fp32 worker this one carries no
// SWAT_NO_FP_CONTRACT pin: the tile rounding already broke oracle
// bit-parity, so contraction is allowed (like gemm_packed's fp16 tile) and
// accuracy is budgeted by eval/stream_fidelity instead.
void fused_window_tasks_f16(ConstMatrixView q, ConstMatrixView k,
                            ConstMatrixView v,
                            std::span<const std::int64_t> offsets,
                            std::int64_t num_heads, std::int64_t window_before,
                            std::int64_t window_after, float scale,
                            MatrixView out, std::int64_t t0, std::int64_t t1) {
  const std::int64_t h = q.cols() / num_heads;
  constexpr std::int64_t kQueryTile = 64;
  {
    // Same O(window x head_dim) scratch shape as the fp32 worker plus the
    // two fp16 tiles (and, off-F16C, their fp32 twins); u16 storage leases
    // ceil(n/2) floats from the same thread-local arena, so the path stays
    // allocation-free after warmup.
    const std::int64_t band = window_before + window_after + 1;
    const std::int64_t tile_cols = kQueryTile + band - 1;
    const auto u16_floats = [](std::int64_t n) {
      return static_cast<std::size_t>((n + 1) / 2);
    };
    WorkspaceLease qs_lease(tls_workspace(), static_cast<std::size_t>(h));
    WorkspaceLease s_lease(tls_workspace(), static_cast<std::size_t>(band));
    WorkspaceLease z_lease(tls_workspace(), static_cast<std::size_t>(h));
    WorkspaceLease row16_lease(tls_workspace(), u16_floats(h));
    WorkspaceLease kt16_lease(tls_workspace(), u16_floats(tile_cols * h));
    WorkspaceLease vb16_lease(tls_workspace(), u16_floats(tile_cols * h));
    float* const qs = qs_lease.data();
    float* const sp = s_lease.data();
    float* const zacc = z_lease.data();
    auto* const row16 = reinterpret_cast<std::uint16_t*>(row16_lease.data());
    auto* const kt16 = reinterpret_cast<std::uint16_t*>(kt16_lease.data());
    auto* const vb16 = reinterpret_cast<std::uint16_t*>(vb16_lease.data());
#if !defined(__F16C__)
    WorkspaceLease kt32_lease(tls_workspace(),
                              static_cast<std::size_t>(tile_cols * h));
    WorkspaceLease vb32_lease(tls_workspace(),
                              static_cast<std::size_t>(tile_cols * h));
    float* const kt32 = kt32_lease.data();
    float* const vb32 = vb32_lease.data();
#endif
    for (std::int64_t t = t0; t < t1; ++t) {
      const std::int64_t s = t / num_heads;
      const std::int64_t base = (t % num_heads) * h;
      const std::int64_t row0 = offsets[static_cast<std::size_t>(s)];
      const std::int64_t n = offsets[static_cast<std::size_t>(s + 1)] - row0;
      for (std::int64_t i0 = 0; i0 < n; i0 += kQueryTile) {
        const std::int64_t i1 = std::min(i0 + kQueryTile, n);
        const std::int64_t tk0 = std::max<std::int64_t>(0, i0 - window_before);
        const std::int64_t tk1 =
            std::min<std::int64_t>(n - 1, i1 - 1 + window_after);
        const std::int64_t tk = tk1 - tk0 + 1;
        // kt16[d * tk + (j - tk0)] = fp16(K[row0 + j][base + d]): each K
        // head row is narrowed contiguously (one SIMD batch convert) then
        // scattered into the transposed tile. The V band keeps the row
        // layout S'V consumes (vb16[(j - tk0) * h + d]), so it narrows
        // straight into place with no scatter.
        for (std::int64_t j = tk0; j <= tk1; ++j) {
          f32_to_f16_bits_batch(k.row(row0 + j).data() + base, row16,
                                static_cast<std::size_t>(h));
          for (std::int64_t d = 0; d < h; ++d) {
            kt16[d * tk + (j - tk0)] = row16[d];
          }
          f32_to_f16_bits_batch(v.row(row0 + j).data() + base,
                                vb16 + (j - tk0) * h,
                                static_cast<std::size_t>(h));
        }
#if !defined(__F16C__)
        // No in-register widen on this host: round-trip the whole tile to
        // fp32 once (two contiguous batch converts, amortized over all
        // kQueryTile rows) and let the hot loops below run pure fp32.
        f16_bits_to_f32_batch(kt16, kt32, static_cast<std::size_t>(tk * h));
        f16_bits_to_f32_batch(vb16, vb32, static_cast<std::size_t>(tk * h));
#endif
        for (std::int64_t i = i0; i < i1; ++i) {
          const float* qrow = q.row(row0 + i).data() + base;
          for (std::int64_t d = 0; d < h; ++d) qs[d] = qrow[d] * scale;
          const std::int64_t lo =
              std::max<std::int64_t>(0, i - window_before);
          const std::int64_t hi =
              std::min<std::int64_t>(n - 1, i + window_after);
          const std::int64_t count = hi - lo + 1;
          const std::int64_t loff = lo - tk0;
          // Score stage: d-major over the K tile; every score column
          // accumulates its d-sum in ascending order (lanes never split a
          // single element's reduction), exactly like the fp32 worker.
          float* const __restrict sb = sp;
          std::fill(sb, sb + count, 0.0f);
          for (std::int64_t d = 0; d < h; ++d) {
            const float qd = qs[d];
#if defined(__F16C__)
            const std::uint16_t* const __restrict ktd = kt16 + d * tk + loff;
            std::int64_t c = 0;
#if defined(__AVX512F__)
            // 32 fp16 bytes feed a full 64-byte zmm FMA — the halved
            // stream doubles the lanes one load port cycle can supply.
            const __m512 qd16 = _mm512_set1_ps(qd);
            for (; c + 16 <= count; c += 16) {
              const __m512 kw = _mm512_cvtph_ps(_mm256_loadu_si256(
                  reinterpret_cast<const __m256i*>(ktd + c)));
              _mm512_storeu_ps(
                  sb + c,
                  _mm512_fmadd_ps(qd16, kw, _mm512_loadu_ps(sb + c)));
            }
#endif
            const __m256 qd8 = _mm256_set1_ps(qd);
            for (; c + 8 <= count; c += 8) {
              const __m256 kw = _mm256_cvtph_ps(_mm_loadu_si128(
                  reinterpret_cast<const __m128i*>(ktd + c)));
              _mm256_storeu_ps(
                  sb + c,
                  _mm256_fmadd_ps(qd8, kw, _mm256_loadu_ps(sb + c)));
            }
            for (; c < count; ++c) sb[c] += qd * f16_tail_to_f32(ktd[c]);
#else
            const float* const __restrict ktd = kt32 + d * tk + loff;
            for (std::int64_t c = 0; c < count; ++c) sb[c] += qd * ktd[c];
#endif
          }
          // Exp pass: the fp16 stream trades oracle bit-parity for speed
          // under the fidelity budget, so it may use libmvec's vectorized
          // expf (<= 4 ulp — orders of magnitude inside the binary16
          // budget) where the fp32 worker pins scalar std::exp. The
          // denominator still sums in a separate ascending pass, so its
          // reduction order never depends on the lane width.
          {
            std::int64_t c = 0;
#if defined(SWAT_HAVE_MVEC) && defined(__AVX512F__)
            for (; c + 16 <= count; c += 16) {
              _mm512_storeu_ps(sb + c,
                               _ZGVeN16v_expf(_mm512_loadu_ps(sb + c)));
            }
#elif defined(SWAT_HAVE_MVEC) && defined(__AVX2__)
            for (; c + 8 <= count; c += 8) {
              _mm256_storeu_ps(sb + c,
                               _ZGVdN8v_expf(_mm256_loadu_ps(sb + c)));
            }
#endif
            for (; c < count; ++c) sb[c] = std::exp(sb[c]);
          }
          float denom = 0.0f;
          for (std::int64_t c = 0; c < count; ++c) denom += sb[c];
          // S'V stage: c-major axpy over the row-layout V band — za[d]
          // sums its band in the fp32 worker's ascending-c order, just
          // from half-precision rows.
          float* const __restrict za = zacc;
          std::fill(za, za + h, 0.0f);
          for (std::int64_t c = 0; c < count; ++c) {
            const float e = sb[c];
#if defined(__F16C__)
            const std::uint16_t* const __restrict vr =
                vb16 + (loff + c) * h;
            std::int64_t d = 0;
#if defined(__AVX512F__)
            const __m512 e16 = _mm512_set1_ps(e);
            for (; d + 16 <= h; d += 16) {
              const __m512 vw = _mm512_cvtph_ps(_mm256_loadu_si256(
                  reinterpret_cast<const __m256i*>(vr + d)));
              _mm512_storeu_ps(
                  za + d,
                  _mm512_fmadd_ps(e16, vw, _mm512_loadu_ps(za + d)));
            }
#endif
            const __m256 e8 = _mm256_set1_ps(e);
            for (; d + 8 <= h; d += 8) {
              const __m256 vw = _mm256_cvtph_ps(_mm_loadu_si128(
                  reinterpret_cast<const __m128i*>(vr + d)));
              _mm256_storeu_ps(
                  za + d,
                  _mm256_fmadd_ps(e8, vw, _mm256_loadu_ps(za + d)));
            }
            for (; d < h; ++d) za[d] += e * f16_tail_to_f32(vr[d]);
#else
            const float* const __restrict vr = vb32 + (loff + c) * h;
            for (std::int64_t d = 0; d < h; ++d) za[d] += e * vr[d];
#endif
          }
          SWAT_ENSURES(denom > 0.0f);
          float* const zrow = out.row(row0 + i).data() + base;
          for (std::int64_t d = 0; d < h; ++d) zrow[d] = za[d] / denom;
        }
      }
    }
  }
}

}  // namespace

MatrixF fused_window_attention(const HeadInput& in,
                               std::int64_t window_radius) {
  SWAT_EXPECTS(window_radius >= 0);
  const std::int64_t n = in.seq_len();
  const std::int64_t h = in.head_dim();
  MatrixF z(n, h, 0.0f);
  for (std::int64_t i = 0; i < n; ++i) {
    const std::int64_t lo = std::max<std::int64_t>(0, i - window_radius);
    const std::int64_t hi = std::min<std::int64_t>(n - 1, i + window_radius);
    float denom = 0.0f;
    auto zrow = z.row(i);
    // One pass: numerator accumulates exp(S) * V, denominator accumulates
    // exp(S). Exactly Eq. 1 — note no max subtraction.
    for (std::int64_t j = lo; j <= hi; ++j) {
      const float e = std::exp(dot(in.q.row(i), in.k.row(j)));
      denom += e;
      axpy(e, in.v.row(j), zrow);
    }
    SWAT_ENSURES(denom > 0.0f);
    for (float& v : zrow) v /= denom;
  }
  return z;
}

MatrixF fused_window_attention_online(const HeadInput& in,
                                      std::int64_t window_radius) {
  SWAT_EXPECTS(window_radius >= 0);
  const std::int64_t n = in.seq_len();
  const std::int64_t h = in.head_dim();
  MatrixF z(n, h, 0.0f);
  for (std::int64_t i = 0; i < n; ++i) {
    const std::int64_t lo = std::max<std::int64_t>(0, i - window_radius);
    const std::int64_t hi = std::min<std::int64_t>(n - 1, i + window_radius);
    float running_max = -std::numeric_limits<float>::infinity();
    float denom = 0.0f;
    auto zrow = z.row(i);
    for (std::int64_t j = lo; j <= hi; ++j) {
      const float s = dot(in.q.row(i), in.k.row(j));
      if (s > running_max) {
        // Rescale previous accumulation to the new max.
        const float scale =
            (denom == 0.0f) ? 0.0f : std::exp(running_max - s);
        denom *= scale;
        for (float& v : zrow) v *= scale;
        running_max = s;
      }
      const float e = std::exp(s - running_max);
      denom += e;
      axpy(e, in.v.row(j), zrow);
    }
    SWAT_ENSURES(denom > 0.0f);
    for (float& v : zrow) v /= denom;
  }
  return z;
}

namespace {

Half exp_unit(Half x, const Fp16KernelOptions& opt) {
  return opt.exp_lut_segments > 0 ? half_exp_lut(x, opt.exp_lut_segments)
                                  : half_exp(x);
}

/// fp16 dot product with per-step rounding (non-fused MAC, as the HLS
/// pipeline rounds after the multiplier and after the adder).
Half dot_fp16(std::span<const Half> a, std::span<const Half> b,
              const Fp16KernelOptions& opt) {
  SWAT_EXPECTS(a.size() == b.size());
  if (opt.fp16_accumulate) {
    Half acc = Half::zero();
    for (std::size_t d = 0; d < a.size(); ++d) {
      acc = acc + a[d] * b[d];
    }
    return acc;
  }
  float acc = 0.0f;
  for (std::size_t d = 0; d < a.size(); ++d) {
    acc += (a[d] * b[d]).to_float();  // product still rounds to fp16
  }
  return Half(acc);
}

}  // namespace

MatrixF fused_window_attention_fp16(const HeadInput& in,
                                    std::int64_t window_radius,
                                    const Fp16KernelOptions& opt) {
  SWAT_EXPECTS(window_radius >= 1);
  const std::int64_t n = in.seq_len();
  const std::int64_t h = in.head_dim();
  const std::int64_t num_cores = 2 * window_radius;

  // Round the operand tensors once (they are stored in HBM as fp16).
  const auto to_half_matrix = [](const MatrixF& m) {
    Matrix<Half> out(m.rows(), m.cols());
    for (std::int64_t r = 0; r < m.rows(); ++r)
      for (std::int64_t c = 0; c < m.cols(); ++c)
        out(r, c) = Half(m(r, c));
    return out;
  };
  const Matrix<Half> q = to_half_matrix(in.q);
  const Matrix<Half> k = to_half_matrix(in.k);
  const Matrix<Half> v = to_half_matrix(in.v);

  MatrixF z(n, h, 0.0f);
  // Per-core slices for one query row, indexed by *physical core* (j mod
  // num_cores) — the reduction trees sum in physical-core order, which is
  // what makes this function bit-compatible with the attention-core
  // functional simulator.
  std::vector<std::vector<Half>> zslice(
      static_cast<std::size_t>(num_cores),
      std::vector<Half>(static_cast<std::size_t>(h), Half::zero()));
  std::vector<Half> sprime(static_cast<std::size_t>(num_cores), Half::zero());
  std::vector<bool> valid(static_cast<std::size_t>(num_cores), false);

  for (std::int64_t i = 0; i < n; ++i) {
    // SWAT's band: [i - w, i + w - 1], exactly 2w tokens interior.
    const std::int64_t lo = std::max<std::int64_t>(0, i - window_radius);
    const std::int64_t hi =
        std::min<std::int64_t>(n - 1, i + window_radius - 1);
    std::fill(valid.begin(), valid.end(), false);

    for (std::int64_t j = lo; j <= hi; ++j) {
      const auto core = static_cast<std::size_t>(j % num_cores);
      SWAT_ENSURES(!valid[core]);
      // QK stage: local dot product.
      const Half s = dot_fp16(q.row(i), k.row(j), opt);
      // SV stage: exp then scale the V row.
      const Half e = exp_unit(s, opt);
      sprime[core] = e;
      for (std::int64_t d = 0; d < h; ++d) {
        zslice[core][static_cast<std::size_t>(d)] = e * v(j, d);
      }
      valid[core] = true;
    }

    // Z reduction + row sum, grouped by head-dim-sized blocks of physical
    // cores (ZRED1/ROWSUM1 accumulate sequentially within each group of H
    // cores, ZRED2/ROWSUM2 combine the group partials in order).
    const std::int64_t group = h;
    std::vector<Half> znum(static_cast<std::size_t>(h), Half::zero());
    Half denom = Half::zero();
    for (std::int64_t gbase = 0; gbase < num_cores; gbase += group) {
      std::vector<Half> gz(static_cast<std::size_t>(h), Half::zero());
      Half gsum = Half::zero();
      const std::int64_t gend = std::min(gbase + group, num_cores);
      for (std::int64_t c = gbase; c < gend; ++c) {
        const auto ci = static_cast<std::size_t>(c);
        if (!valid[ci]) continue;
        gsum = gsum + sprime[ci];
        for (std::int64_t d = 0; d < h; ++d) {
          const auto di = static_cast<std::size_t>(d);
          gz[di] = gz[di] + zslice[ci][di];
        }
      }
      denom = denom + gsum;
      for (std::int64_t d = 0; d < h; ++d) {
        const auto di = static_cast<std::size_t>(d);
        znum[di] = znum[di] + gz[di];
      }
    }

    // DIV & OUT stage.
    SWAT_ENSURES(denom.to_float() > 0.0f);
    auto zrow = z.row(i);
    for (std::int64_t d = 0; d < h; ++d) {
      zrow[static_cast<std::size_t>(d)] =
          (znum[static_cast<std::size_t>(d)] / denom).to_float();
    }
  }
  return z;
}

}  // namespace swat::attn
