#include "attention/fused.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "tensor/kernels.hpp"

namespace swat::attn {

MatrixF fused_window_attention(const HeadInput& in,
                               std::int64_t window_radius) {
  SWAT_EXPECTS(window_radius >= 0);
  const std::int64_t n = in.seq_len();
  const std::int64_t h = in.head_dim();
  MatrixF z(n, h, 0.0f);
  for (std::int64_t i = 0; i < n; ++i) {
    const std::int64_t lo = std::max<std::int64_t>(0, i - window_radius);
    const std::int64_t hi = std::min<std::int64_t>(n - 1, i + window_radius);
    float denom = 0.0f;
    auto zrow = z.row(i);
    // One pass: numerator accumulates exp(S) * V, denominator accumulates
    // exp(S). Exactly Eq. 1 — note no max subtraction.
    for (std::int64_t j = lo; j <= hi; ++j) {
      const float e = std::exp(dot(in.q.row(i), in.k.row(j)));
      denom += e;
      axpy(e, in.v.row(j), zrow);
    }
    SWAT_ENSURES(denom > 0.0f);
    for (float& v : zrow) v /= denom;
  }
  return z;
}

MatrixF fused_window_attention_online(const HeadInput& in,
                                      std::int64_t window_radius) {
  SWAT_EXPECTS(window_radius >= 0);
  const std::int64_t n = in.seq_len();
  const std::int64_t h = in.head_dim();
  MatrixF z(n, h, 0.0f);
  for (std::int64_t i = 0; i < n; ++i) {
    const std::int64_t lo = std::max<std::int64_t>(0, i - window_radius);
    const std::int64_t hi = std::min<std::int64_t>(n - 1, i + window_radius);
    float running_max = -std::numeric_limits<float>::infinity();
    float denom = 0.0f;
    auto zrow = z.row(i);
    for (std::int64_t j = lo; j <= hi; ++j) {
      const float s = dot(in.q.row(i), in.k.row(j));
      if (s > running_max) {
        // Rescale previous accumulation to the new max.
        const float scale =
            (denom == 0.0f) ? 0.0f : std::exp(running_max - s);
        denom *= scale;
        for (float& v : zrow) v *= scale;
        running_max = s;
      }
      const float e = std::exp(s - running_max);
      denom += e;
      axpy(e, in.v.row(j), zrow);
    }
    SWAT_ENSURES(denom > 0.0f);
    for (float& v : zrow) v /= denom;
  }
  return z;
}

namespace {

Half exp_unit(Half x, const Fp16KernelOptions& opt) {
  return opt.exp_lut_segments > 0 ? half_exp_lut(x, opt.exp_lut_segments)
                                  : half_exp(x);
}

/// fp16 dot product with per-step rounding (non-fused MAC, as the HLS
/// pipeline rounds after the multiplier and after the adder).
Half dot_fp16(std::span<const Half> a, std::span<const Half> b,
              const Fp16KernelOptions& opt) {
  SWAT_EXPECTS(a.size() == b.size());
  if (opt.fp16_accumulate) {
    Half acc = Half::zero();
    for (std::size_t d = 0; d < a.size(); ++d) {
      acc = acc + a[d] * b[d];
    }
    return acc;
  }
  float acc = 0.0f;
  for (std::size_t d = 0; d < a.size(); ++d) {
    acc += (a[d] * b[d]).to_float();  // product still rounds to fp16
  }
  return Half(acc);
}

}  // namespace

MatrixF fused_window_attention_fp16(const HeadInput& in,
                                    std::int64_t window_radius,
                                    const Fp16KernelOptions& opt) {
  SWAT_EXPECTS(window_radius >= 1);
  const std::int64_t n = in.seq_len();
  const std::int64_t h = in.head_dim();
  const std::int64_t num_cores = 2 * window_radius;

  // Round the operand tensors once (they are stored in HBM as fp16).
  const auto to_half_matrix = [](const MatrixF& m) {
    Matrix<Half> out(m.rows(), m.cols());
    for (std::int64_t r = 0; r < m.rows(); ++r)
      for (std::int64_t c = 0; c < m.cols(); ++c)
        out(r, c) = Half(m(r, c));
    return out;
  };
  const Matrix<Half> q = to_half_matrix(in.q);
  const Matrix<Half> k = to_half_matrix(in.k);
  const Matrix<Half> v = to_half_matrix(in.v);

  MatrixF z(n, h, 0.0f);
  // Per-core slices for one query row, indexed by *physical core* (j mod
  // num_cores) — the reduction trees sum in physical-core order, which is
  // what makes this function bit-compatible with the attention-core
  // functional simulator.
  std::vector<std::vector<Half>> zslice(
      static_cast<std::size_t>(num_cores),
      std::vector<Half>(static_cast<std::size_t>(h), Half::zero()));
  std::vector<Half> sprime(static_cast<std::size_t>(num_cores), Half::zero());
  std::vector<bool> valid(static_cast<std::size_t>(num_cores), false);

  for (std::int64_t i = 0; i < n; ++i) {
    // SWAT's band: [i - w, i + w - 1], exactly 2w tokens interior.
    const std::int64_t lo = std::max<std::int64_t>(0, i - window_radius);
    const std::int64_t hi =
        std::min<std::int64_t>(n - 1, i + window_radius - 1);
    std::fill(valid.begin(), valid.end(), false);

    for (std::int64_t j = lo; j <= hi; ++j) {
      const auto core = static_cast<std::size_t>(j % num_cores);
      SWAT_ENSURES(!valid[core]);
      // QK stage: local dot product.
      const Half s = dot_fp16(q.row(i), k.row(j), opt);
      // SV stage: exp then scale the V row.
      const Half e = exp_unit(s, opt);
      sprime[core] = e;
      for (std::int64_t d = 0; d < h; ++d) {
        zslice[core][static_cast<std::size_t>(d)] = e * v(j, d);
      }
      valid[core] = true;
    }

    // Z reduction + row sum, grouped by head-dim-sized blocks of physical
    // cores (ZRED1/ROWSUM1 accumulate sequentially within each group of H
    // cores, ZRED2/ROWSUM2 combine the group partials in order).
    const std::int64_t group = h;
    std::vector<Half> znum(static_cast<std::size_t>(h), Half::zero());
    Half denom = Half::zero();
    for (std::int64_t gbase = 0; gbase < num_cores; gbase += group) {
      std::vector<Half> gz(static_cast<std::size_t>(h), Half::zero());
      Half gsum = Half::zero();
      const std::int64_t gend = std::min(gbase + group, num_cores);
      for (std::int64_t c = gbase; c < gend; ++c) {
        const auto ci = static_cast<std::size_t>(c);
        if (!valid[ci]) continue;
        gsum = gsum + sprime[ci];
        for (std::int64_t d = 0; d < h; ++d) {
          const auto di = static_cast<std::size_t>(d);
          gz[di] = gz[di] + zslice[ci][di];
        }
      }
      denom = denom + gsum;
      for (std::int64_t d = 0; d < h; ++d) {
        const auto di = static_cast<std::size_t>(d);
        znum[di] = znum[di] + gz[di];
      }
    }

    // DIV & OUT stage.
    SWAT_ENSURES(denom.to_float() > 0.0f);
    auto zrow = z.row(i);
    for (std::int64_t d = 0; d < h; ++d) {
      zrow[static_cast<std::size_t>(d)] =
          (znum[static_cast<std::size_t>(d)] / denom).to_float();
    }
  }
  return z;
}

}  // namespace swat::attn
