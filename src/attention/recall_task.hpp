// Associative-recall task: an *executable accuracy* proxy for the paper's
// LRA comparison (Table 3), complementing the mixing-fidelity proxy.
//
// The task: the sequence stores (key, value) items at random positions; a
// set of query tokens each repeats the key of one stored item and must
// retrieve it through one attention layer. A retrieval is correct when the
// attention pattern (a) contains the target position at all and (b) ranks
// it first among the attended positions (with well-separated random keys,
// a dense softmax attention always does).
//
// The pattern-dependent failure modes mirror the paper's accuracy story
// directly: pure window attention misses any target beyond the band,
// BigBird's static random tokens recover a fraction of the distant targets
// and its global tokens none (globals are fixed positions, not
// content-addressed), while dense attention retrieves everything. Sweeping
// the target distance shows where each pattern's accuracy cliff sits.
#pragma once

#include "attention/mask.hpp"
#include "common/rng.hpp"

namespace swat::attn {

struct RecallTaskConfig {
  std::int64_t seq_len = 1024;
  std::int64_t key_dim = 32;      ///< key embedding width
  std::int64_t num_queries = 64;  ///< query tokens appended at the end
  /// Targets are placed uniformly in [min_distance, max_distance] tokens
  /// before their query; clamped to the sequence start.
  std::int64_t min_distance = 1;
  std::int64_t max_distance = 1 << 20;
  std::uint64_t seed = 1;
};

struct RecallResult {
  double accuracy = 0.0;           ///< fraction of queries retrieved
  double reachable_fraction = 0.0; ///< fraction whose target is attended
  std::int64_t queries = 0;
};

/// Run the task through a given static pattern. The pattern's seq_len must
/// equal cfg.seq_len.
RecallResult recall_accuracy(const AttentionPattern& pattern,
                             const RecallTaskConfig& cfg);

/// Dense-attention upper bound for the same task instance (no pattern
/// restriction); ~1.0 for reasonable key dimensions.
RecallResult recall_accuracy_dense(const RecallTaskConfig& cfg);

}  // namespace swat::attn
