#include "attention/fidelity.hpp"

#include <cmath>

#include "attention/fft_mixing.hpp"
#include "attention/reference.hpp"
#include "attention/window.hpp"
#include "tensor/kernels.hpp"

namespace swat::attn {

std::string mixer_name(MixerKind k) {
  switch (k) {
    case MixerKind::kDense:
      return "dense-softmax";
    case MixerKind::kWindow:
      return "window";
    case MixerKind::kBigBird:
      return "bigbird";
    case MixerKind::kFnet:
      return "full-fft";
  }
  return "?";
}

LayerSchedule schedule_uniform(MixerKind k, int layers) {
  SWAT_EXPECTS(layers >= 1);
  return LayerSchedule(static_cast<std::size_t>(layers), k);
}

LayerSchedule schedule_btf(int layers, int softmax_layers) {
  SWAT_EXPECTS(layers >= 1);
  SWAT_EXPECTS(softmax_layers >= 0 && softmax_layers <= layers);
  LayerSchedule s(static_cast<std::size_t>(layers), MixerKind::kFnet);
  for (int i = layers - softmax_layers; i < layers; ++i) {
    s[static_cast<std::size_t>(i)] = MixerKind::kDense;
  }
  return s;
}

namespace {

/// Row layer-norm without affine parameters.
void layer_norm_rows(MatrixF& m) {
  for (std::int64_t i = 0; i < m.rows(); ++i) {
    auto r = m.row(i);
    double mean = 0.0;
    for (float v : r) mean += v;
    mean /= static_cast<double>(r.size());
    double var = 0.0;
    for (float v : r) {
      const double d = v - mean;
      var += d * d;
    }
    var /= static_cast<double>(r.size());
    const double inv = 1.0 / std::sqrt(var + 1e-6);
    for (float& v : r) v = static_cast<float>((v - mean) * inv);
  }
}

/// Self-attention with Q = K = V = X and the usual 1/sqrt(d) folded into Q.
HeadInput self_attention_input(const MatrixF& x) {
  HeadInput in;
  in.q = x;
  const float scale =
      1.0f / std::sqrt(static_cast<float>(x.cols()));
  for (float& v : in.q.flat()) v *= scale;
  in.k = x;
  in.v = x;
  return in;
}

MatrixF mix(const MatrixF& x, MixerKind kind, const FidelityConfig& cfg) {
  switch (kind) {
    case MixerKind::kDense:
      return dense_attention(self_attention_input(x));
    case MixerKind::kWindow:
      return window_attention(self_attention_input(x), cfg.window_radius);
    case MixerKind::kBigBird: {
      const AttentionPattern pattern(PatternSpec::bigbird(
          x.rows(), cfg.window_radius, cfg.bigbird_random,
          cfg.bigbird_global));
      return masked_attention(self_attention_input(x), pattern);
    }
    case MixerKind::kFnet:
      return fnet_mixing(x);
  }
  SWAT_ENSURES(false);
  return {};
}

}  // namespace

MatrixF apply_mixing_layer(const MatrixF& x, MixerKind kind,
                           const FidelityConfig& cfg) {
  MatrixF y = mix(x, kind, cfg);
  SWAT_ENSURES(y.rows() == x.rows() && y.cols() == x.cols());
  auto fy = y.flat();
  auto fx = x.flat();
  for (std::size_t i = 0; i < fy.size(); ++i) fy[i] += fx[i];  // residual
  layer_norm_rows(y);
  return y;
}

FidelityResult mixing_fidelity(const LayerSchedule& schedule,
                               const FidelityConfig& cfg) {
  SWAT_EXPECTS(!schedule.empty());
  Rng rng(cfg.seed);
  const MatrixF x0 =
      cfg.structure == InputStructure::kText1d
          ? random_locally_correlated_1d(cfg.seq_len, cfg.dim, rng,
                                         cfg.corr_len)
          : random_locally_correlated_2d(cfg.seq_len, cfg.dim, rng,
                                         cfg.corr_len);

  // Teacher-forced evaluation: walk the reference (all-dense) trajectory;
  // at each layer, apply the method's mixer to the *reference* state and
  // score it against the dense layer's output.
  MatrixF ref = x0;
  FidelityResult r;
  for (MixerKind k : schedule) {
    const MatrixF ref_out = apply_mixing_layer(ref, MixerKind::kDense, cfg);
    if (k == MixerKind::kDense) {
      r.mean_cosine += 1.0;
    } else {
      const MatrixF method_out = apply_mixing_layer(ref, k, cfg);
      r.mean_cosine += mean_row_cosine(method_out, ref_out);
      r.rel_error += relative_error(method_out, ref_out);
    }
    ref = ref_out;
  }
  const double layers = static_cast<double>(schedule.size());
  r.mean_cosine /= layers;
  r.rel_error /= layers;
  return r;
}

}  // namespace swat::attn
