#include "attention/flops.hpp"

#include <algorithm>

#include "common/contracts.hpp"

namespace swat::attn {

LayerCost analyze_layer(const LayerShape& shape, AttentionVariant variant,
                        std::int64_t window_tokens) {
  SWAT_EXPECTS(shape.seq_len > 0 && shape.d_model > 0 && shape.num_heads > 0);
  SWAT_EXPECTS(shape.d_model % shape.num_heads == 0);
  SWAT_EXPECTS(window_tokens > 0);

  const double n = static_cast<double>(shape.seq_len);
  const double d = static_cast<double>(shape.d_model);
  const double b = static_cast<double>(shape.bytes_per_elem);
  const double ffn = static_cast<double>(shape.ffn_mult) * d;

  LayerCost c;

  // ---- Linear projections: Q, K, V and output, each n x d times d x d.
  c.linear_flops = 4.0 * (2.0 * n * d * d);
  // Weights streamed once + input read + output written, per projection.
  c.linear_mops = 4.0 * (d * d + 2.0 * n * d) * b;

  // ---- Attention core (per head, summed over heads; head_dim = d/heads
  // so the sum over heads collapses to the formulas below).
  // Attended positions per query row:
  const double attended =
      variant == AttentionVariant::kDense
          ? n
          : std::min(n, static_cast<double>(window_tokens));
  // QK^T: n rows x attended cols x head_dim MACs (2 flops each), all heads.
  const double qk = 2.0 * n * attended * d;
  // softmax: exp + add + div ~ 5 flops per score, all heads.
  const double sm = 5.0 * n * attended * static_cast<double>(shape.num_heads);
  // S'V: same MAC volume as QK^T.
  const double sv = 2.0 * n * attended * d;
  c.attention_flops = qk + sm + sv;
  // Unfused three-step memory traffic: write S, read S (softmax), write S',
  // read S' (SV) — the intermediate score matrix dominates at long n.
  const double score_elems =
      n * attended * static_cast<double>(shape.num_heads);
  c.attention_mops =
      (4.0 * score_elems + /*Q,K,V read + Z write*/ 4.0 * n * d) * b;

  // ---- FFN: two linear layers with expansion ffn_mult.
  c.ffn_flops = 2.0 * (2.0 * n * d * ffn);
  c.ffn_mops = (2.0 * d * ffn + 2.0 * n * (d + ffn)) * b;

  return c;
}

}  // namespace swat::attn
