// The "sliding chunks" implementation of window attention — the GPU
// state-of-the-art the paper compares against (§1, Fig. 2b; HuggingFace's
// Longformer kernel).
//
// The sequence is split into chunks of 2w tokens with stride w; each chunk
// of queries performs a *dense* (2w x 2w at interior; the two halves overlap
// neighbouring chunks) matmul against the keys of its surrounding window,
// and positions outside the true band are masked before the softmax. This
// converts the banded sparse computation into dense GEMMs that map onto
// tensor cores, at the cost of redundant work in the overlapping/corner
// regions (the grey/dashed areas of Fig. 2b).
//
// This implementation follows the published algorithm: chunk q-rows
// [c*w, c*w + 2w) attend k-rows [(c-1)*w, (c+1)*w + w)... concretely each
// query chunk of size 2w computes scores against a key span of 3w centred
// on it, then masks to the exact [i-w, i+w] band. The op-count accounting
// exposes the redundancy ratio the paper derives: 1/2 - 1/(4|chunks|).
#pragma once

#include "attention/reference.hpp"

namespace swat::attn {

struct SlidingChunksResult {
  MatrixF z;                      ///< attention output (exact, post-masking)
  std::int64_t dense_mul_adds = 0;  ///< MACs actually executed (dense tiles)
  std::int64_t useful_mul_adds = 0; ///< MACs inside the true band
  std::int64_t num_chunks = 0;  ///< paper's |chunks| = seq_len / (2w)
  std::int64_t num_tiles = 0;   ///< overlapping dense tiles executed (n/w - 1)
  std::int64_t peak_score_elems = 0;  ///< max live S-matrix elements

  /// Fraction of executed MACs that fall outside the true attention band.
  double measured_redundancy() const {
    return 1.0 - static_cast<double>(useful_mul_adds) /
                     static_cast<double>(dense_mul_adds);
  }
};

/// Run sliding-chunks window attention. `window_radius` is the paper's w;
/// chunks have 2w query rows each and seq_len must be a positive multiple
/// of w and at least 2w (the aligned fast path the GPU kernel runs).
SlidingChunksResult sliding_chunks_attention(const HeadInput& in,
                                             std::int64_t window_radius);

/// Alignment-free wrapper: pads the sequence to the chunk grid with zero
/// rows exactly as the published kernel does (padded keys are masked out of
/// every real row's band, so the result equals the exact window attention
/// of the unpadded input), runs the aligned kernel, and slices the padding
/// off. The op counts include the padded tiles — that is what the GPU
/// executes.
SlidingChunksResult sliding_chunks_attention_padded(
    const HeadInput& in, std::int64_t window_radius);

/// The redundant-computation ratio of the sliding-chunks scheme as derived
/// in the paper: 1/2 - 1/(4 |chunks|). Exposed so tests can check our
/// measured dense-vs-useful MAC counts against the closed form.
double sliding_chunks_redundancy_ratio(std::int64_t num_chunks);

}  // namespace swat::attn
