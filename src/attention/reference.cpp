#include "attention/reference.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "tensor/kernels.hpp"

namespace swat::attn {

HeadInput random_head_input(std::int64_t seq_len, std::int64_t head_dim,
                            Rng& rng) {
  SWAT_EXPECTS(seq_len > 0 && head_dim > 0);
  const double scale = 1.0 / std::sqrt(static_cast<double>(head_dim));
  HeadInput in;
  in.q = random_normal(seq_len, head_dim, rng, scale);
  in.k = random_normal(seq_len, head_dim, rng, 1.0);
  in.v = random_normal(seq_len, head_dim, rng, 1.0);
  return in;
}

namespace {

void dense_attention_impl(const HeadInput& in, MatrixF& scores, MatrixF& z) {
  scores.reshape(in.seq_len(), in.seq_len());
  matmul_nt_into(in.q, in.k, scores);
  row_softmax_stable(scores);
  z.reshape(in.seq_len(), in.head_dim());
  matmul_into(scores, in.v, z);
}

}  // namespace

MatrixF dense_attention(const HeadInput& in) {
  // Local score staging: the allocating entry point is the oracle path
  // (fidelity sweeps, tests) and may see huge one-off seq_lens, which must
  // not stay pinned in a thread_local for the thread's lifetime.
  MatrixF scores;
  MatrixF z;
  dense_attention_impl(in, scores, z);
  return z;
}

void dense_attention_into(const HeadInput& in, MatrixF& z) {
  // The n x n score matrix is the one large intermediate of the dense
  // oracle; staging it thread-locally (reshape retains capacity) keeps
  // repeated planned runs allocation-free. Each (sequence, head) task runs
  // entirely on one thread, so per-thread staging cannot be shared
  // mid-computation.
  thread_local MatrixF scores;
  dense_attention_impl(in, scores, z);
}

MatrixF masked_attention(const HeadInput& in,
                         const AttentionPattern& pattern) {
  MatrixF z;
  masked_attention_into(in, pattern, z);
  return z;
}

void masked_attention_into(const HeadInput& in,
                           const AttentionPattern& pattern, MatrixF& z) {
  SWAT_EXPECTS(pattern.seq_len() == in.seq_len());
  const std::int64_t n = in.seq_len();
  const std::int64_t h = in.head_dim();
  z.reshape(n, h);
  std::fill(z.flat().begin(), z.flat().end(), 0.0f);
  std::size_t max_attended = 0;
  for (std::int64_t i = 0; i < n; ++i) {
    max_attended = std::max(max_attended, pattern.row(i).size());
  }
  WorkspaceLease lease(tls_workspace(), max_attended);
  for (std::int64_t i = 0; i < n; ++i) {
    const auto& attended = pattern.row(i);
    SWAT_EXPECTS(!attended.empty());
    // Scores restricted to the attended set.
    const std::span<float> s = lease.span().subspan(0, attended.size());
    float mx = -std::numeric_limits<float>::infinity();
    for (std::size_t t = 0; t < attended.size(); ++t) {
      s[t] = dot(in.q.row(i), in.k.row(attended[t].col));
      mx = std::max(mx, s[t]);
    }
    float sum = 0.0f;
    for (float& v : s) {
      v = std::exp(v - mx);
      sum += v;
    }
    SWAT_ENSURES(sum > 0.0f);
    auto zrow = z.row(i);
    for (std::size_t t = 0; t < attended.size(); ++t) {
      axpy(s[t] / sum, in.v.row(attended[t].col), zrow);
    }
  }
}

}  // namespace swat::attn
