#include "attention/reference.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "tensor/kernels.hpp"

namespace swat::attn {

HeadInput random_head_input(std::int64_t seq_len, std::int64_t head_dim,
                            Rng& rng) {
  SWAT_EXPECTS(seq_len > 0 && head_dim > 0);
  const double scale = 1.0 / std::sqrt(static_cast<double>(head_dim));
  HeadInput in;
  in.q = random_normal(seq_len, head_dim, rng, scale);
  in.k = random_normal(seq_len, head_dim, rng, 1.0);
  in.v = random_normal(seq_len, head_dim, rng, 1.0);
  return in;
}

MatrixF dense_attention(const HeadInput& in) {
  MatrixF s = matmul_nt(in.q, in.k);
  row_softmax_stable(s);
  return matmul(s, in.v);
}

MatrixF masked_attention(const HeadInput& in,
                         const AttentionPattern& pattern) {
  SWAT_EXPECTS(pattern.seq_len() == in.seq_len());
  const std::int64_t n = in.seq_len();
  const std::int64_t h = in.head_dim();
  MatrixF z(n, h, 0.0f);
  for (std::int64_t i = 0; i < n; ++i) {
    const auto& attended = pattern.row(i);
    SWAT_EXPECTS(!attended.empty());
    // Scores restricted to the attended set.
    std::vector<float> s(attended.size());
    float mx = -std::numeric_limits<float>::infinity();
    for (std::size_t t = 0; t < attended.size(); ++t) {
      s[t] = dot(in.q.row(i), in.k.row(attended[t].col));
      mx = std::max(mx, s[t]);
    }
    float sum = 0.0f;
    for (float& v : s) {
      v = std::exp(v - mx);
      sum += v;
    }
    SWAT_ENSURES(sum > 0.0f);
    auto zrow = z.row(i);
    for (std::size_t t = 0; t < attended.size(); ++t) {
      axpy(s[t] / sum, in.v.row(attended[t].col), zrow);
    }
  }
  return z;
}

}  // namespace swat::attn
