#include "attention/sliding_chunks.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "tensor/kernels.hpp"

namespace swat::attn {

namespace {

/// Score storage for one chunk: a dense (2w x 2w) tile between query rows
/// [base, base + 2w) and key rows [base, base + 2w).
struct ChunkScores {
  std::int64_t base = 0;
  MatrixF s;  // 2w x 2w
};

}  // namespace

namespace {

/// Core aligned implementation; `valid_rows` marks the real (unpadded)
/// prefix — only those rows produce output and only their columns enter
/// any softmax band.
SlidingChunksResult sliding_chunks_aligned(const HeadInput& in,
                                           std::int64_t window_radius,
                                           std::int64_t valid_rows);

}  // namespace

SlidingChunksResult sliding_chunks_attention(const HeadInput& in,
                                             std::int64_t window_radius) {
  return sliding_chunks_aligned(in, window_radius, in.seq_len());
}

SlidingChunksResult sliding_chunks_attention_padded(
    const HeadInput& in, std::int64_t window_radius) {
  const std::int64_t w = window_radius;
  SWAT_EXPECTS(w > 0);
  const std::int64_t n = in.seq_len();
  SWAT_EXPECTS(n > 0);
  const std::int64_t aligned = std::max<std::int64_t>(
      2 * w, (n + w - 1) / w * w);
  if (aligned == n) return sliding_chunks_aligned(in, w, n);

  HeadInput padded;
  padded.q = MatrixF(aligned, in.head_dim(), 0.0f);
  padded.k = MatrixF(aligned, in.head_dim(), 0.0f);
  padded.v = MatrixF(aligned, in.head_dim(), 0.0f);
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t d = 0; d < in.head_dim(); ++d) {
      padded.q(i, d) = in.q(i, d);
      padded.k(i, d) = in.k(i, d);
      padded.v(i, d) = in.v(i, d);
    }
  }
  SlidingChunksResult res = sliding_chunks_aligned(padded, w, n);
  MatrixF z(n, in.head_dim());
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t d = 0; d < in.head_dim(); ++d) {
      z(i, d) = res.z(i, d);
    }
  }
  res.z = std::move(z);
  return res;
}

namespace {

SlidingChunksResult sliding_chunks_aligned(const HeadInput& in,
                                           std::int64_t window_radius,
                                           std::int64_t valid_rows) {
  const std::int64_t n = in.seq_len();
  const std::int64_t h = in.head_dim();
  const std::int64_t w = window_radius;
  SWAT_EXPECTS(w > 0);
  SWAT_EXPECTS(n % w == 0);
  SWAT_EXPECTS(n >= 2 * w);
  SWAT_EXPECTS(valid_rows >= 1 && valid_rows <= n);

  // Overlapping tiles of 2w rows with stride w (HuggingFace scheme):
  // tile c covers query and key rows [c*w, c*w + 2w).
  const std::int64_t num_tiles = n / w - 1;
  SWAT_ENSURES(num_tiles >= 1);

  SlidingChunksResult out;
  out.num_tiles = num_tiles;
  out.num_chunks = n / (2 * w);  // the paper's chunk count (width 2w)
  out.z = MatrixF(n, h, 0.0f);

  // Phase 1: dense QK tiles, every element computed (this is the whole
  // point of the scheme — the tile is a plain GEMM).
  std::vector<ChunkScores> chunks(static_cast<std::size_t>(num_tiles));
  for (std::int64_t c = 0; c < num_tiles; ++c) {
    auto& ch = chunks[static_cast<std::size_t>(c)];
    ch.base = c * w;
    ch.s = MatrixF(2 * w, 2 * w);
    for (std::int64_t qi = 0; qi < 2 * w; ++qi) {
      for (std::int64_t kj = 0; kj < 2 * w; ++kj) {
        ch.s(qi, kj) = dot(in.q.row(ch.base + qi), in.k.row(ch.base + kj));
      }
    }
  }
  // Dense MACs: QK tiles plus the SV tiles of the same shape (the masked
  // S' tile multiplies the V chunk densely; masked entries are zeros but
  // the GEMM still executes them).
  out.dense_mul_adds = 2 * num_tiles * (2 * w) * (2 * w) * h;

  // Phase 2: per-row masked softmax over the exact band, gathering scores
  // from the owning tiles, then the SV product. Mathematically identical to
  // masking the tiles and summing the two overlapping tile contributions.
  std::vector<float> band(static_cast<std::size_t>(2 * w + 1));
  for (std::int64_t i = 0; i < valid_rows; ++i) {
    const std::int64_t lo = std::max<std::int64_t>(0, i - w);
    const std::int64_t hi = std::min<std::int64_t>(valid_rows - 1, i + w);
    const std::size_t count = static_cast<std::size_t>(hi - lo + 1);
    out.useful_mul_adds += 2 * static_cast<std::int64_t>(count) * h;

    // The chunk that owns row i's full right half plus the left overlap:
    // c0 = clamp(floor(i/w) - ...) — row i lies in chunk floor(i/w) (and
    // floor(i/w)-1 when it exists); between them they cover [i-w, i+w].
    const std::int64_t c_hi =
        std::min<std::int64_t>(i / w, num_tiles - 1);
    const std::int64_t c_lo = std::max<std::int64_t>(0, c_hi - 1);

    float mx = -std::numeric_limits<float>::infinity();
    for (std::int64_t j = lo; j <= hi; ++j) {
      // Prefer the higher chunk (covers columns >= c_hi*w); fall back to
      // the lower one for columns before that.
      const ChunkScores& ch =
          (j >= chunks[static_cast<std::size_t>(c_hi)].base &&
           j < chunks[static_cast<std::size_t>(c_hi)].base + 2 * w)
              ? chunks[static_cast<std::size_t>(c_hi)]
              : chunks[static_cast<std::size_t>(c_lo)];
      SWAT_ENSURES(j >= ch.base && j < ch.base + 2 * w);
      SWAT_ENSURES(i >= ch.base && i < ch.base + 2 * w);
      const float v = ch.s(i - ch.base, j - ch.base);
      band[static_cast<std::size_t>(j - lo)] = v;
      mx = std::max(mx, v);
    }
    float sum = 0.0f;
    for (std::size_t t = 0; t < count; ++t) {
      band[t] = std::exp(band[t] - mx);
      sum += band[t];
    }
    SWAT_ENSURES(sum > 0.0f);
    auto zrow = out.z.row(i);
    for (std::size_t t = 0; t < count; ++t) {
      axpy(band[t] / sum, in.v.row(lo + static_cast<std::int64_t>(t)), zrow);
    }
  }

  // All tiles are live simultaneously in the GPU kernel.
  out.peak_score_elems = num_tiles * (2 * w) * (2 * w);
  return out;
}

}  // namespace

double sliding_chunks_redundancy_ratio(std::int64_t num_chunks) {
  SWAT_EXPECTS(num_chunks > 0);
  return 0.5 - 1.0 / (4.0 * static_cast<double>(num_chunks));
}

}  // namespace swat::attn
