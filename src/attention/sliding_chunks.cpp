#include "attention/sliding_chunks.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <vector>

#include "common/thread_pool.hpp"
#include "tensor/kernels.hpp"

namespace swat::attn {

namespace {

/// Core aligned implementation; `valid_rows` marks the real (unpadded)
/// prefix — only those rows produce output and only their columns enter
/// any softmax band.
SlidingChunksResult sliding_chunks_aligned(const HeadInput& in,
                                           std::int64_t window_radius,
                                           std::int64_t valid_rows);

}  // namespace

SlidingChunksResult sliding_chunks_attention(const HeadInput& in,
                                             std::int64_t window_radius) {
  return sliding_chunks_aligned(in, window_radius, in.seq_len());
}

SlidingChunksResult sliding_chunks_attention_padded(
    const HeadInput& in, std::int64_t window_radius) {
  const std::int64_t w = window_radius;
  SWAT_EXPECTS(w > 0);
  const std::int64_t n = in.seq_len();
  SWAT_EXPECTS(n > 0);
  const std::int64_t aligned = std::max<std::int64_t>(
      2 * w, (n + w - 1) / w * w);
  if (aligned == n) return sliding_chunks_aligned(in, w, n);

  HeadInput padded;
  padded.q = MatrixF(aligned, in.head_dim(), 0.0f);
  padded.k = MatrixF(aligned, in.head_dim(), 0.0f);
  padded.v = MatrixF(aligned, in.head_dim(), 0.0f);
  for (std::int64_t i = 0; i < n; ++i) {
    auto copy_row = [i](const MatrixF& src, MatrixF& dst) {
      auto s = src.row(i);
      auto d = dst.row(i);
      std::copy(s.begin(), s.end(), d.begin());
    };
    copy_row(in.q, padded.q);
    copy_row(in.k, padded.k);
    copy_row(in.v, padded.v);
  }
  SlidingChunksResult res = sliding_chunks_aligned(padded, w, n);
  MatrixF z(n, in.head_dim());
  for (std::int64_t i = 0; i < n; ++i) {
    auto s = res.z.row(i);
    auto d = z.row(i);
    std::copy(s.begin(), s.end(), d.begin());
  }
  res.z = std::move(z);
  return res;
}

namespace {

SlidingChunksResult sliding_chunks_aligned(const HeadInput& in,
                                           std::int64_t window_radius,
                                           std::int64_t valid_rows) {
  const std::int64_t n = in.seq_len();
  const std::int64_t h = in.head_dim();
  const std::int64_t w = window_radius;
  SWAT_EXPECTS(w > 0);
  SWAT_EXPECTS(n % w == 0);
  SWAT_EXPECTS(n >= 2 * w);
  SWAT_EXPECTS(valid_rows >= 1 && valid_rows <= n);

  // Overlapping tiles of 2w rows with stride w (HuggingFace scheme):
  // tile c covers query and key rows [c*w, c*w + 2w).
  const std::int64_t num_tiles = n / w - 1;
  SWAT_ENSURES(num_tiles >= 1);

  SlidingChunksResult out;
  out.num_tiles = num_tiles;
  out.num_chunks = n / (2 * w);  // the paper's chunk count (width 2w)
  out.z = MatrixF(n, h, 0.0f);

  // Phase 1: dense QK tiles, every element computed (this is the whole
  // point of the scheme — the tile is a plain GEMM). All tile scores live
  // in one arena (num_tiles contiguous 2w x 2w slabs) instead of per-tile
  // allocations; K^T is materialized once so every tile GEMM streams
  // unit-stride. Tiles are independent, so the loop fans out over the pool.
  const std::int64_t tile_elems = (2 * w) * (2 * w);
  WorkspaceLease scores(tls_workspace(),
                        static_cast<std::size_t>(num_tiles * tile_elems));
  WorkspaceLease kt(tls_workspace(), static_cast<std::size_t>(n * h));
  detail::transpose_raw(in.k.data(), h, kt.data(), n, n, h);
  const float* q = in.q.data();
  parallel_for(0, num_tiles, 1, [&](std::int64_t c0, std::int64_t c1) {
    for (std::int64_t c = c0; c < c1; ++c) {
      const std::int64_t base = c * w;
      // S_tile = Q[base : base+2w, :] * K^T[:, base : base+2w].
      detail::gemm(q + base * h, h, kt.data() + base, n,
                   scores.data() + c * tile_elems, 2 * w, 2 * w, 2 * w, h,
                   nullptr, /*parallel=*/false);
    }
  });
  // Dense MACs: QK tiles plus the SV tiles of the same shape (the masked
  // S' tile multiplies the V chunk densely; masked entries are zeros but
  // the GEMM still executes them).
  out.dense_mul_adds = 2 * num_tiles * (2 * w) * (2 * w) * h;

  // Phase 2: per-row masked softmax over the exact band, gathering scores
  // from the owning tiles, then the SV product. Mathematically identical to
  // masking the tiles and summing the two overlapping tile contributions.
  // Rows are independent (each writes only its own z row); the useful-MAC
  // counter reduces over integers, so any partition yields identical
  // results and statistics.
  std::atomic<std::int64_t> useful_mul_adds{0};
  parallel_for(0, valid_rows, 64, [&](std::int64_t r0, std::int64_t r1) {
    std::vector<float> band(static_cast<std::size_t>(2 * w + 1));
    std::int64_t local_useful = 0;
    for (std::int64_t i = r0; i < r1; ++i) {
      const std::int64_t lo = std::max<std::int64_t>(0, i - w);
      const std::int64_t hi = std::min<std::int64_t>(valid_rows - 1, i + w);
      const std::size_t count = static_cast<std::size_t>(hi - lo + 1);
      local_useful += 2 * static_cast<std::int64_t>(count) * h;

      // The chunk that owns row i's full right half plus the left overlap:
      // c0 = clamp(floor(i/w) - ...) — row i lies in chunk floor(i/w) (and
      // floor(i/w)-1 when it exists); between them they cover [i-w, i+w].
      const std::int64_t c_hi =
          std::min<std::int64_t>(i / w, num_tiles - 1);
      const std::int64_t c_lo = std::max<std::int64_t>(0, c_hi - 1);

      float mx = -std::numeric_limits<float>::infinity();
      for (std::int64_t j = lo; j <= hi; ++j) {
        // Prefer the higher chunk (covers columns >= c_hi*w); fall back to
        // the lower one for columns before that.
        const std::int64_t c =
            (j >= c_hi * w && j < c_hi * w + 2 * w) ? c_hi : c_lo;
        const std::int64_t base = c * w;
        SWAT_ENSURES(j >= base && j < base + 2 * w);
        SWAT_ENSURES(i >= base && i < base + 2 * w);
        const float v =
            scores[static_cast<std::size_t>(c * tile_elems +
                                            (i - base) * 2 * w + (j - base))];
        band[static_cast<std::size_t>(j - lo)] = v;
        mx = std::max(mx, v);
      }
      float sum = 0.0f;
      for (std::size_t t = 0; t < count; ++t) {
        band[t] = std::exp(band[t] - mx);
        sum += band[t];
      }
      SWAT_ENSURES(sum > 0.0f);
      auto zrow = out.z.row(i);
      for (std::size_t t = 0; t < count; ++t) {
        axpy(band[t] / sum, in.v.row(lo + static_cast<std::int64_t>(t)),
             zrow);
      }
    }
    useful_mul_adds.fetch_add(local_useful, std::memory_order_relaxed);
  });
  out.useful_mul_adds = useful_mul_adds.load();

  // All tiles are live simultaneously in the GPU kernel.
  out.peak_score_elems = num_tiles * (2 * w) * (2 * w);
  return out;
}

}  // namespace

double sliding_chunks_redundancy_ratio(std::int64_t num_chunks) {
  SWAT_EXPECTS(num_chunks > 0);
  return 0.5 - 1.0 / (4.0 * static_cast<double>(num_chunks));
}

}  // namespace swat::attn
