// Static sparse attention patterns.
//
// The paper's parameterized design (§4.1, Fig. 7) composes three static
// pattern components, fixed at synthesis time:
//   * window  — each token attends to a fixed band of neighbours
//               (Longformer's sliding window, the diagonal band of Fig. 2a);
//   * global  — designated tokens are attended by *all* tokens and attend to
//               all tokens (Longformer / ViL global tokens);
//   * random  — each token additionally attends to a static random token set
//               (BigBird).
//
// The band is parameterized asymmetrically (window_before / window_after)
// because the SWAT hardware allocates exactly 2w attention cores and hence
// holds a band of exactly 2w tokens ([i-w, i+w-1] including self), while the
// textbook sliding window of radius w spans 2w+1 tokens. Both are instances
// of the same band pattern.
//
// An AttentionPattern holds the composed per-row attended-column sets plus
// enough structure for the hardware models to assign attention cores per
// component (window cores, global cores, random cores).
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "tensor/matrix.hpp"

namespace swat::attn {

/// Which pattern component caused a (row, col) pair to be attended.
enum class PatternComponent : std::uint8_t { kWindow, kGlobal, kRandom };

/// Pattern construction parameters. Row i's window component attends
/// columns i + j * window_dilation for j in [-window_before, window_after],
/// clipped to the sequence. With dilation 1 (the default) this is the
/// contiguous band [i - window_before, i + window_after]; dilation d > 1 is
/// Longformer's dilated sliding window, widening the receptive field d-fold
/// at the same attended-token budget.
struct PatternSpec {
  std::int64_t seq_len = 0;
  std::int64_t window_before = 0;  ///< band extent below the diagonal (steps)
  std::int64_t window_after = 0;   ///< band extent above the diagonal (steps)
  std::int64_t window_dilation = 1;
  std::int64_t num_global_tokens = 0;   ///< leading tokens marked global
  std::int64_t num_random_tokens = 0;   ///< per-row static random tokens
  std::uint64_t random_seed = 0x5747u;  ///< BigBird random pattern seed
  /// Longformer's global attention is symmetric: global tokens are attended
  /// by all rows *and* attend to all columns. The second half needs O(n)
  /// attended columns for a global row, which SWAT's fixed 2w-core array
  /// cannot host in one pass — the hardware realizes only the
  /// attended-by-all direction, so hardware-facing specs set this false
  /// (the accelerator's oracle then matches what the silicon computes).
  bool symmetric_global = true;

  std::int64_t band_tokens() const { return window_before + window_after + 1; }

  /// Longformer: symmetric sliding window of radius w (band 2w+1),
  /// optionally with global tokens.
  static PatternSpec longformer(std::int64_t seq_len, std::int64_t w,
                                std::int64_t n_global = 0);

  /// The band SWAT's attention cores realize: exactly `tokens` positions,
  /// [i - ceil((tokens-1)/2), i + floor((tokens-1)/2)] — e.g. tokens = 512
  /// gives [i-256, i+255].
  static PatternSpec swat_band(std::int64_t seq_len, std::int64_t tokens);

  /// BigBird-style mix over a symmetric radius-w band; the paper's config is
  /// 192 window + 192 random + 128 global = 512 attended tokens per row.
  static PatternSpec bigbird(std::int64_t seq_len, std::int64_t w,
                             std::int64_t n_random, std::int64_t n_global);

  /// BigBird with an exact window-token budget (band = `tokens` positions).
  static PatternSpec bigbird_tokens(std::int64_t seq_len, std::int64_t tokens,
                                    std::int64_t n_random,
                                    std::int64_t n_global);
};

/// One attended (column) entry for a given query row.
struct AttendedToken {
  std::int64_t col = 0;
  PatternComponent component = PatternComponent::kWindow;

  friend bool operator==(const AttendedToken&, const AttendedToken&) = default;
};

/// Fully materialized static pattern: for every query row, the sorted,
/// de-duplicated list of attended columns.
class AttentionPattern {
 public:
  explicit AttentionPattern(const PatternSpec& spec);

  const PatternSpec& spec() const { return spec_; }
  std::int64_t seq_len() const { return spec_.seq_len; }

  /// Attended columns of query row i, sorted by column index.
  const std::vector<AttendedToken>& row(std::int64_t i) const {
    SWAT_EXPECTS(i >= 0 && i < seq_len());
    return rows_[static_cast<std::size_t>(i)];
  }

  /// True iff query row i attends to column j.
  bool attends(std::int64_t i, std::int64_t j) const;

  /// Total number of attended (i, j) pairs = nonzeros of the S mask.
  std::int64_t nnz() const { return nnz_; }

  /// nnz / (seq_len^2): the density of the attention mask.
  double density() const;

  /// Global token indices (ascending).
  const std::vector<std::int64_t>& global_tokens() const { return globals_; }

  /// Dense 0/1 mask (for oracle comparisons against masked dense attention).
  Matrix<std::uint8_t> dense_mask() const;

 private:
  PatternSpec spec_;
  std::vector<std::vector<AttendedToken>> rows_;
  std::vector<std::int64_t> globals_;
  std::int64_t nnz_ = 0;
};

}  // namespace swat::attn
