// Exact sliding-window attention on the host (no chunking, no redundancy).
//
// This is the algorithmic ideal SWAT implements in hardware: for each query
// row i, scores are computed only against columns [i-w, i+w], softmax runs
// over exactly those entries, and the weighted sum of V rows is produced.
// Complexity O(n * (2w+1) * h) — the linear-in-n curve of paper Figs. 1/3.
#pragma once

#include "attention/reference.hpp"

namespace swat::attn {

/// Exact windowed attention (stable softmax); oracle for SWAT's output and
/// for the sliding-chunks implementation.
MatrixF window_attention(const HeadInput& in, std::int64_t window_radius);

/// Exact banded attention with an asymmetric band: row i attends columns
/// [i - before, i + after] clipped to the sequence. window_attention(in, w)
/// equals band_attention(in, w, w); SWAT's 2w-core hardware realizes
/// band_attention(in, w, w-1).
MatrixF band_attention(const HeadInput& in, std::int64_t before,
                       std::int64_t after);

/// Allocation-free variant for the compiled execution plan's hot path:
/// `z` is reshaped to seq_len x head_dim (Matrix::reshape retains backing
/// capacity) and the per-row score scratch comes from the calling thread's
/// Workspace arena, so after warmup repeated calls at or below the
/// high-water shape perform no heap allocation. Bit-identical to
/// band_attention.
void band_attention_into(const HeadInput& in, std::int64_t before,
                         std::int64_t after, MatrixF& z);

/// Operation counts for one head of exact windowed attention; used by the
/// FLOPs analyzer and to compute the redundancy of sliding-chunks.
struct WindowOpCount {
  std::int64_t mul_adds = 0;   ///< QK + SV multiply-accumulates
  std::int64_t exps = 0;       ///< exponentials
  std::int64_t divisions = 0;  ///< final scaling divisions
};

WindowOpCount window_attention_ops(std::int64_t seq_len,
                                   std::int64_t window_radius,
                                   std::int64_t head_dim);

}  // namespace swat::attn
