// FLOPs / MOPs analyzer for transformer layers (paper Fig. 1).
//
// The paper motivates window attention by showing the attention share of
// both floating-point operations and memory operations growing with input
// length (Fig. 1, breakdown into Linear / Attention / FFN for N = 128 ..
// 16384). This analyzer computes those counts from first principles for a
// standard encoder layer and for the windowed variant.
#pragma once

#include <cstdint>

namespace swat::attn {

/// Transformer layer hyperparameters. Defaults follow the Longformer-base
/// configuration the paper evaluates (d_model = 768, 12 heads of dim 64,
/// FFN expansion 4x).
struct LayerShape {
  std::int64_t seq_len = 4096;
  std::int64_t d_model = 768;
  std::int64_t num_heads = 12;
  std::int64_t ffn_mult = 4;
  std::int64_t bytes_per_elem = 2;  ///< fp16 activations/weights

  std::int64_t head_dim() const { return d_model / num_heads; }
};

/// Attention-computation variant for the attention component.
enum class AttentionVariant {
  kDense,    ///< full O(N^2) softmax attention
  kWindow,   ///< sliding-window attention with the given band
};

/// FLOPs (multiply and add each count as one op) and MOPs (bytes moved
/// to/from main memory, unfused three-step implementation) per component.
struct LayerCost {
  double linear_flops = 0.0;     ///< QKV + output projections
  double attention_flops = 0.0;  ///< QK^T, softmax, S'V
  double ffn_flops = 0.0;

  double linear_mops = 0.0;
  double attention_mops = 0.0;
  double ffn_mops = 0.0;

  double total_flops() const {
    return linear_flops + attention_flops + ffn_flops;
  }
  double total_mops() const {
    return linear_mops + attention_mops + ffn_mops;
  }
  double attention_flops_share() const {
    return attention_flops / total_flops();
  }
  double attention_mops_share() const { return attention_mops / total_mops(); }
};

/// Analyze one encoder layer. `window_tokens` (the band width, 2w) is used
/// only for the kWindow variant.
LayerCost analyze_layer(const LayerShape& shape, AttentionVariant variant,
                        std::int64_t window_tokens = 512);

}  // namespace swat::attn
