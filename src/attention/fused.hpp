// Kernel-fused window attention — the algorithmic core of the paper (§3.1).
//
// The softmax denominator is factored out of the S'V product (paper Eq. 1):
//
//   Z_i = (1 / sum_l exp(S_il)) * sum_n exp(S_in) * V_n
//
// so QK, exp and SV fuse into a single row-wise pass and only the scalar
// row sum is applied afterwards. Three host implementations are provided:
//
//  * fused_window_attention        — float32, exactly the paper's operation
//                                    order (no max subtraction);
//  * fused_window_attention_online — float32, FlashAttention-style running
//                                    max (the numerically-safe extension;
//                                    used by the ablation bench);
//  * fused_window_attention_fp16   — bit-faithful binary16 emulation of the
//                                    SWAT datapath (non-fused MAC rounding,
//                                    fp16 exp, fp16 accumulation trees).
//                                    This is the independent oracle that the
//                                    attention-core functional simulator
//                                    must match *bit-exactly*.
#pragma once

#include "attention/reference.hpp"
#include "common/dtype.hpp"
#include "common/fp16.hpp"

namespace swat::attn {

MatrixF fused_window_attention(const HeadInput& in,
                               std::int64_t window_radius);

/// Batched, allocation-free fused window attention — the serving engine's
/// attention kernel. `q`/`k`/`v` are the packed Q/K/V projections (rows x
/// d_model, sequence s occupying rows [offsets[s], offsets[s+1])); each
/// (sequence, head) task streams the paper's QK -> exp -> SV pass (Eq. 1,
/// no max subtraction, exactly fused_window_attention's operation order)
/// directly over its contiguous head slice and writes the head output in
/// place into `out`'s matching slice (the concat staging). Row i attends
/// columns [i - window_before, i + window_after] clipped to its own
/// sequence; `scale` (the 1/sqrt(h) logit scaling) is folded into each
/// query row as it is staged.
///
/// No (rows x window) score matrix is ever materialized: the per-thread
/// scratch is one scaled query row plus one row's O(window) score tile
/// (both from the thread's Workspace arena), so the path performs zero
/// heap allocations after warmup. Per-head outputs are bit-identical to
/// fused_window_attention on the sliced head (when window_before ==
/// window_after), for any thread count and batch composition.
///
/// Numeric envelope: this is the paper's form — exp WITHOUT max
/// subtraction — and it inherits Eq. 1's float range: a scaled logit
/// above ~88.7 overflows exp to inf (NaN output after the division), and
/// a row whose whole band sits below ~-87.3 underflows every term (the
/// denom > 0 invariant throws). With the 1/sqrt(h) scaling folded into Q
/// (as the model layer does), trained-model-like logits are comfortably
/// inside that range; for adversarial magnitudes use the
/// kWindowExact backend (stable softmax) or fused_window_attention_online
/// (running max) instead.
///
/// `stream_dtype` selects the streamed-tile precision (the paper's
/// datapath is natively fp16, §4 / Table 2):
///   * Dtype::kFp32 (default) — byte-identical to the historical path;
///   * Dtype::kFp16 — the per-thread transposed K tile and V band are
///     narrowed to binary16 once per (sequence, head, tile) via the SIMD
///     RNE converters, halving the K/V bytes the score and S'V stages
///     stream; scores, exp/denominator and the Z accumulator stay fp32 in
///     ascending index order, so outputs remain bit-identical across
///     thread counts, arrival orders and replica counts — but differ from
///     the fp32 oracle by the tile rounding, which eval/stream_fidelity
///     budgets and tests/test_stream_precision gates.
void fused_window_attention_batch_into(ConstMatrixView q, ConstMatrixView k,
                                       ConstMatrixView v,
                                       std::span<const std::int64_t> offsets,
                                       std::int64_t num_heads,
                                       std::int64_t window_before,
                                       std::int64_t window_after, float scale,
                                       MatrixView out,
                                       Dtype stream_dtype = Dtype::kFp32);

/// Bytes of K/V tile data the fused kernel's score + S'V stages stream for
/// one sequence of `seq_len` rows: every row reads its clipped band
/// ([i - window_before, i + window_after] ∩ [0, n)) from both the K tile
/// and the V band, head_dim elements each, per head, at
/// dtype_bytes(stream_dtype) per element. Closed form (no O(n) loop), used
/// by BatchCostModel to price the activation stream next to the weight
/// stream and by the microbench to report effective K/V bandwidth.
std::int64_t fused_window_kv_stream_bytes(std::int64_t seq_len,
                                          std::int64_t num_heads,
                                          std::int64_t head_dim,
                                          std::int64_t window_before,
                                          std::int64_t window_after,
                                          Dtype stream_dtype);

MatrixF fused_window_attention_online(const HeadInput& in,
                                      std::int64_t window_radius);

/// Emulation parameters for the fp16 datapath.
struct Fp16KernelOptions {
  /// Segments of the piecewise-linear exp LUT; 0 selects the full-precision
  /// (correctly rounded) exp unit the default SWAT design uses.
  int exp_lut_segments = 0;
  /// Accumulate the QK dot product and reductions in fp16 (the BRAM-local
  /// accumulator registers are 16-bit in the FP16 build). When false, a
  /// float32 accumulator models a wider accumulator variant (ablation).
  bool fp16_accumulate = true;
};

/// Bit-faithful fp16 fused window attention. Inputs are rounded to fp16 on
/// load (modelling the HBM-resident fp16 tensors); every arithmetic step
/// rounds to binary16 as the hardware would. Returns float32 holding
/// exactly-representable fp16 values.
MatrixF fused_window_attention_fp16(const HeadInput& in,
                                    std::int64_t window_radius,
                                    const Fp16KernelOptions& opt = {});

}  // namespace swat::attn
