// Kernel-fused window attention — the algorithmic core of the paper (§3.1).
//
// The softmax denominator is factored out of the S'V product (paper Eq. 1):
//
//   Z_i = (1 / sum_l exp(S_il)) * sum_n exp(S_in) * V_n
//
// so QK, exp and SV fuse into a single row-wise pass and only the scalar
// row sum is applied afterwards. Three host implementations are provided:
//
//  * fused_window_attention        — float32, exactly the paper's operation
//                                    order (no max subtraction);
//  * fused_window_attention_online — float32, FlashAttention-style running
//                                    max (the numerically-safe extension;
//                                    used by the ablation bench);
//  * fused_window_attention_fp16   — bit-faithful binary16 emulation of the
//                                    SWAT datapath (non-fused MAC rounding,
//                                    fp16 exp, fp16 accumulation trees).
//                                    This is the independent oracle that the
//                                    attention-core functional simulator
//                                    must match *bit-exactly*.
#pragma once

#include "attention/reference.hpp"
#include "common/fp16.hpp"

namespace swat::attn {

MatrixF fused_window_attention(const HeadInput& in,
                               std::int64_t window_radius);

MatrixF fused_window_attention_online(const HeadInput& in,
                                      std::int64_t window_radius);

/// Emulation parameters for the fp16 datapath.
struct Fp16KernelOptions {
  /// Segments of the piecewise-linear exp LUT; 0 selects the full-precision
  /// (correctly rounded) exp unit the default SWAT design uses.
  int exp_lut_segments = 0;
  /// Accumulate the QK dot product and reductions in fp16 (the BRAM-local
  /// accumulator registers are 16-bit in the FP16 build). When false, a
  /// float32 accumulator models a wider accumulator variant (ablation).
  bool fp16_accumulate = true;
};

/// Bit-faithful fp16 fused window attention. Inputs are rounded to fp16 on
/// load (modelling the HBM-resident fp16 tensors); every arithmetic step
/// rounds to binary16 as the hardware would. Returns float32 holding
/// exactly-representable fp16 values.
MatrixF fused_window_attention_fp16(const HeadInput& in,
                                    std::int64_t window_radius,
                                    const Fp16KernelOptions& opt = {});

}  // namespace swat::attn
