// FFT-based token mixing — the attention substitute used by the Butterfly
// accelerator's FFT-BTF engine (paper §2.3, §5.1; FNet / butterfly-factor
// literature).
//
// The Butterfly accelerator approximates the softmax attention layer by a
// Fourier transform over the token axis (the butterfly sparsity pattern is
// exactly an FFT dataflow). We implement:
//   * a radix-2 iterative complex FFT (the substrate — no external FFT
//     library is used anywhere in this repository);
//   * `fnet_mixing`: Re(FFT_token(FFT_feature(X))), FNet's mixing layer,
//     which is what "full-FFT" Butterfly computes per layer;
//   * operation counts for the performance model (N log N per channel).
#pragma once

#include <complex>
#include <vector>

#include "tensor/matrix.hpp"

namespace swat::attn {

/// In-place iterative radix-2 Cooley-Tukey FFT. `data.size()` must be a
/// power of two. `inverse` selects the inverse transform (scaled by 1/N).
void fft_radix2(std::vector<std::complex<double>>& data, bool inverse);

/// True iff v is a positive power of two.
bool is_pow2(std::int64_t v);

/// FNet mixing: Y = Re( FFT_rows( FFT_cols(X) ) ), where FFT_rows acts along
/// the token (sequence) axis and FFT_cols along the feature axis. Axis sizes
/// must be powers of two.
MatrixF fnet_mixing(const MatrixF& x);

/// Like fnet_mixing but only along the token axis (cheaper variant used by
/// ablations; still a data-independent mixing).
MatrixF fft_token_mixing(const MatrixF& x);

/// Complex multiply-add count of one length-n radix-2 FFT: (n/2) log2 n
/// butterflies, each one complex mul + two complex adds.
std::int64_t fft_butterfly_count(std::int64_t n);

}  // namespace swat::attn
