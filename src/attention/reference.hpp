// Reference attention implementations (float32, numerically stable).
// These are the correctness oracles for everything else in the repository.
#pragma once

#include "attention/mask.hpp"
#include "tensor/matrix.hpp"

namespace swat::attn {

/// Inputs to one attention head: Q, K, V are seq_len x head_dim.
struct HeadInput {
  MatrixF q;
  MatrixF k;
  MatrixF v;

  std::int64_t seq_len() const { return q.rows(); }
  std::int64_t head_dim() const { return q.cols(); }
};

/// Generate a random head input with iid normal entries scaled by
/// 1/sqrt(head_dim) so that Q.K dot products are O(1) — keeps fp16 exp in
/// range exactly like trained-model logits with the usual 1/sqrt(d) scaling.
HeadInput random_head_input(std::int64_t seq_len, std::int64_t head_dim,
                            Rng& rng);

/// Z = softmax(Q K^T) V with stable softmax over the full dense score
/// matrix. NOTE: following the paper's formulation the 1/sqrt(d) scaling is
/// assumed to be folded into Q by the caller.
MatrixF dense_attention(const HeadInput& in);

/// Allocation-conscious variant for the compiled execution plan: `z` and a
/// thread-local n x n score staging matrix are reshaped in place (capacity
/// retained), so repeated calls at or below the high-water seq_len perform
/// no heap allocation after warmup. Bit-identical to dense_attention.
void dense_attention_into(const HeadInput& in, MatrixF& z);

/// Dense attention with an arbitrary static mask: scores outside the mask
/// are excluded from the softmax (i.e. set to -inf). With a window-band
/// mask this is the *exact* semantics of sliding-window attention and the
/// oracle for SWAT's output.
MatrixF masked_attention(const HeadInput& in, const AttentionPattern& pattern);

/// In-place-output variant of masked_attention (score scratch from the
/// calling thread's Workspace arena). Bit-identical to masked_attention.
/// Note the *pattern* still has to exist — pattern construction is the
/// allocating step for the pattern-augmented configs, which is why the
/// strict zero-allocation guarantee covers the pure-window configs only.
void masked_attention_into(const HeadInput& in,
                           const AttentionPattern& pattern, MatrixF& z);

}  // namespace swat::attn
