#include "attention/recall_task.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "tensor/kernels.hpp"
#include "tensor/matrix.hpp"

namespace swat::attn {

namespace {

struct TaskInstance {
  MatrixF keys;                        // seq_len x key_dim
  std::vector<std::int64_t> query_pos; // query token positions
  std::vector<std::int64_t> target_pos;
};

TaskInstance build_instance(const RecallTaskConfig& cfg) {
  SWAT_EXPECTS(cfg.seq_len > 1 && cfg.key_dim > 0);
  SWAT_EXPECTS(cfg.num_queries >= 1 &&
               cfg.num_queries < cfg.seq_len / 2);
  SWAT_EXPECTS(cfg.min_distance >= 1 &&
               cfg.min_distance <= cfg.max_distance);

  Rng rng(cfg.seed);
  TaskInstance inst;
  // Every position holds a random unit-ish key embedding.
  inst.keys = random_normal(cfg.seq_len, cfg.key_dim, rng,
                            1.0 / std::sqrt(static_cast<double>(cfg.key_dim)));

  // Queries occupy the tail of the sequence; each copies the key of a
  // target placed min..max tokens earlier (clamped to >= 0, and never on
  // another query token).
  const std::int64_t first_query = cfg.seq_len - cfg.num_queries;
  for (std::int64_t qi = 0; qi < cfg.num_queries; ++qi) {
    const std::int64_t qpos = first_query + qi;
    const std::int64_t hi = std::min<std::int64_t>(qpos - cfg.min_distance,
                                                   first_query - 1);
    SWAT_EXPECTS(hi >= 0);
    // Targets live in the stored-item region; when the requested distance
    // band falls inside the query block, clamp to the nearest stored item.
    const std::int64_t lo =
        std::min(hi, std::max<std::int64_t>(0, qpos - cfg.max_distance));
    const std::int64_t target = rng.integer(lo, hi);
    // Copy the target's key into the query row so the dot product peaks at
    // the target.
    for (std::int64_t d = 0; d < cfg.key_dim; ++d) {
      inst.keys(qpos, d) = inst.keys(target, d);
    }
    inst.query_pos.push_back(qpos);
    inst.target_pos.push_back(target);
  }
  return inst;
}

RecallResult score(const TaskInstance& inst, const RecallTaskConfig& cfg,
                   const AttentionPattern* pattern) {
  RecallResult res;
  res.queries = static_cast<std::int64_t>(inst.query_pos.size());
  for (std::size_t qi = 0; qi < inst.query_pos.size(); ++qi) {
    const std::int64_t qpos = inst.query_pos[qi];
    const std::int64_t target = inst.target_pos[qi];
    auto qrow = inst.keys.row(qpos);

    bool reachable = false;
    float best = -std::numeric_limits<float>::infinity();
    std::int64_t best_col = -1;
    const auto consider = [&](std::int64_t col) {
      if (col == qpos) return;  // the query token itself is not an answer
      if (col == target) reachable = true;
      const float s = dot(qrow, inst.keys.row(col));
      if (s > best) {
        best = s;
        best_col = col;
      }
    };
    if (pattern != nullptr) {
      for (const AttendedToken& t : pattern->row(qpos)) consider(t.col);
    } else {
      for (std::int64_t col = 0; col < cfg.seq_len; ++col) consider(col);
    }
    if (reachable) res.reachable_fraction += 1.0;
    if (best_col == target) res.accuracy += 1.0;
  }
  res.accuracy /= static_cast<double>(res.queries);
  res.reachable_fraction /= static_cast<double>(res.queries);
  return res;
}

}  // namespace

RecallResult recall_accuracy(const AttentionPattern& pattern,
                             const RecallTaskConfig& cfg) {
  SWAT_EXPECTS(pattern.seq_len() == cfg.seq_len);
  const TaskInstance inst = build_instance(cfg);
  return score(inst, cfg, &pattern);
}

RecallResult recall_accuracy_dense(const RecallTaskConfig& cfg) {
  const TaskInstance inst = build_instance(cfg);
  return score(inst, cfg, nullptr);
}

}  // namespace swat::attn
