#include "attention/mask.hpp"

#include <algorithm>

namespace swat::attn {

PatternSpec PatternSpec::longformer(std::int64_t seq_len, std::int64_t w,
                                    std::int64_t n_global) {
  PatternSpec s;
  s.seq_len = seq_len;
  s.window_before = w;
  s.window_after = w;
  s.num_global_tokens = n_global;
  s.num_random_tokens = 0;
  return s;
}

PatternSpec PatternSpec::swat_band(std::int64_t seq_len, std::int64_t tokens) {
  SWAT_EXPECTS(tokens >= 1);
  PatternSpec s;
  s.seq_len = seq_len;
  s.window_before = tokens / 2;
  s.window_after = tokens - tokens / 2 - 1;
  return s;
}

PatternSpec PatternSpec::bigbird(std::int64_t seq_len, std::int64_t w,
                                 std::int64_t n_random,
                                 std::int64_t n_global) {
  PatternSpec s;
  s.seq_len = seq_len;
  s.window_before = w;
  s.window_after = w;
  s.num_global_tokens = n_global;
  s.num_random_tokens = n_random;
  return s;
}

PatternSpec PatternSpec::bigbird_tokens(std::int64_t seq_len,
                                        std::int64_t tokens,
                                        std::int64_t n_random,
                                        std::int64_t n_global) {
  PatternSpec s = swat_band(seq_len, tokens);
  s.num_global_tokens = n_global;
  s.num_random_tokens = n_random;
  return s;
}

AttentionPattern::AttentionPattern(const PatternSpec& spec) : spec_(spec) {
  SWAT_EXPECTS(spec.seq_len > 0);
  SWAT_EXPECTS(spec.window_before >= 0 && spec.window_after >= 0);
  SWAT_EXPECTS(spec.num_global_tokens >= 0 &&
               spec.num_global_tokens <= spec.seq_len);
  SWAT_EXPECTS(spec.num_random_tokens >= 0 &&
               spec.num_random_tokens <= spec.seq_len);

  SWAT_EXPECTS(spec.window_dilation >= 1);

  const std::int64_t n = spec.seq_len;
  rows_.resize(static_cast<std::size_t>(n));

  globals_.resize(static_cast<std::size_t>(spec.num_global_tokens));
  for (std::int64_t g = 0; g < spec.num_global_tokens; ++g) {
    globals_[static_cast<std::size_t>(g)] = g;
  }

  Rng rng(spec.random_seed);
  for (std::int64_t i = 0; i < n; ++i) {
    auto& row = rows_[static_cast<std::size_t>(i)];

    // Window band, clipped at the sequence boundary (always contains self
    // at step j = 0, so each softmax row is non-empty).
    const std::int64_t d = spec.window_dilation;
    for (std::int64_t step = -spec.window_before; step <= spec.window_after;
         ++step) {
      const std::int64_t col = i + step * d;
      if (col < 0 || col >= n) continue;
      row.push_back({col, PatternComponent::kWindow});
    }

    // Global tokens: attended by everyone.
    for (std::int64_t g : globals_) {
      row.push_back({g, PatternComponent::kGlobal});
    }

    // Random tokens: a fresh static draw per row (BigBird).
    if (spec.num_random_tokens > 0) {
      for (std::int64_t r :
           rng.sample_without_replacement(n, spec.num_random_tokens)) {
        row.push_back({r, PatternComponent::kRandom});
      }
    }

    // Global rows attend to everything (symmetric global attention).
    if (spec.symmetric_global && i < spec.num_global_tokens) {
      row.clear();
      for (std::int64_t j = 0; j < n; ++j) {
        row.push_back({j, PatternComponent::kGlobal});
      }
    }

    // Sort by column and de-duplicate, keeping the first occurrence; the
    // push order above (window, global, random) makes the window component
    // win when a column is covered by several components.
    std::stable_sort(row.begin(), row.end(),
                     [](const AttendedToken& a, const AttendedToken& b) {
                       return a.col < b.col;
                     });
    row.erase(std::unique(row.begin(), row.end(),
                          [](const AttendedToken& a, const AttendedToken& b) {
                            return a.col == b.col;
                          }),
              row.end());
    nnz_ += static_cast<std::int64_t>(row.size());
  }
}

bool AttentionPattern::attends(std::int64_t i, std::int64_t j) const {
  SWAT_EXPECTS(j >= 0 && j < seq_len());
  const auto& r = row(i);
  auto it = std::lower_bound(r.begin(), r.end(), j,
                             [](const AttendedToken& t, std::int64_t col) {
                               return t.col < col;
                             });
  return it != r.end() && it->col == j;
}

double AttentionPattern::density() const {
  const double n = static_cast<double>(seq_len());
  return static_cast<double>(nnz_) / (n * n);
}

Matrix<std::uint8_t> AttentionPattern::dense_mask() const {
  Matrix<std::uint8_t> m(seq_len(), seq_len(), 0);
  for (std::int64_t i = 0; i < seq_len(); ++i) {
    for (const AttendedToken& t : row(i)) m(i, t.col) = 1;
  }
  return m;
}

}  // namespace swat::attn
