#include "attention/window.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "tensor/kernels.hpp"

namespace swat::attn {

MatrixF window_attention(const HeadInput& in, std::int64_t window_radius) {
  return band_attention(in, window_radius, window_radius);
}

MatrixF band_attention(const HeadInput& in, std::int64_t before,
                       std::int64_t after) {
  MatrixF z;
  band_attention_into(in, before, after, z);
  return z;
}

void band_attention_into(const HeadInput& in, std::int64_t before,
                         std::int64_t after, MatrixF& z) {
  SWAT_EXPECTS(before >= 0 && after >= 0);
  const std::int64_t n = in.seq_len();
  const std::int64_t h = in.head_dim();
  z.reshape(n, h);
  std::fill(z.flat().begin(), z.flat().end(), 0.0f);
  WorkspaceLease lease(tls_workspace(),
                       static_cast<std::size_t>(before + after + 1));
  const std::span<float> s = lease.span();
  for (std::int64_t i = 0; i < n; ++i) {
    const std::int64_t lo = std::max<std::int64_t>(0, i - before);
    const std::int64_t hi = std::min<std::int64_t>(n - 1, i + after);
    const std::size_t count = static_cast<std::size_t>(hi - lo + 1);
    float mx = -std::numeric_limits<float>::infinity();
    for (std::size_t t = 0; t < count; ++t) {
      s[t] = dot(in.q.row(i), in.k.row(lo + static_cast<std::int64_t>(t)));
      mx = std::max(mx, s[t]);
    }
    float sum = 0.0f;
    for (std::size_t t = 0; t < count; ++t) {
      s[t] = std::exp(s[t] - mx);
      sum += s[t];
    }
    SWAT_ENSURES(sum > 0.0f);
    auto zrow = z.row(i);
    for (std::size_t t = 0; t < count; ++t) {
      axpy(s[t] / sum, in.v.row(lo + static_cast<std::int64_t>(t)), zrow);
    }
  }
}

WindowOpCount window_attention_ops(std::int64_t seq_len,
                                   std::int64_t window_radius,
                                   std::int64_t head_dim) {
  SWAT_EXPECTS(seq_len > 0 && window_radius >= 0 && head_dim > 0);
  WindowOpCount ops;
  for (std::int64_t i = 0; i < seq_len; ++i) {
    const std::int64_t lo = std::max<std::int64_t>(0, i - window_radius);
    const std::int64_t hi =
        std::min<std::int64_t>(seq_len - 1, i + window_radius);
    const std::int64_t band = hi - lo + 1;
    ops.mul_adds += band * head_dim * 2;  // QK dot + SV scale-accumulate
    ops.exps += band;
    ops.divisions += head_dim;  // final Z scaling per output element
  }
  return ops;
}

}  // namespace swat::attn
