#include "attention/fft_mixing.hpp"

#include <cmath>
#include <numbers>

namespace swat::attn {

bool is_pow2(std::int64_t v) { return v > 0 && (v & (v - 1)) == 0; }

void fft_radix2(std::vector<std::complex<double>>& data, bool inverse) {
  const std::size_t n = data.size();
  SWAT_EXPECTS(is_pow2(static_cast<std::int64_t>(n)));

  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }

  // Butterfly passes.
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double ang =
        (inverse ? 2.0 : -2.0) * std::numbers::pi / static_cast<double>(len);
    const std::complex<double> wl(std::cos(ang), std::sin(ang));
    for (std::size_t i = 0; i < n; i += len) {
      std::complex<double> w(1.0, 0.0);
      for (std::size_t j = 0; j < len / 2; ++j) {
        const std::complex<double> u = data[i + j];
        const std::complex<double> v = data[i + j + len / 2] * w;
        data[i + j] = u + v;
        data[i + j + len / 2] = u - v;
        w *= wl;
      }
    }
  }

  if (inverse) {
    const double inv_n = 1.0 / static_cast<double>(n);
    for (auto& c : data) c *= inv_n;
  }
}

namespace {

/// FFT along each column (token axis): treats column c of x as a length-rows
/// signal. Returns the full complex spectrum.
std::vector<std::vector<std::complex<double>>> fft_columns(const MatrixF& x) {
  const std::int64_t rows = x.rows();
  const std::int64_t cols = x.cols();
  std::vector<std::vector<std::complex<double>>> out(
      static_cast<std::size_t>(cols));
  for (std::int64_t c = 0; c < cols; ++c) {
    auto& sig = out[static_cast<std::size_t>(c)];
    sig.resize(static_cast<std::size_t>(rows));
    for (std::int64_t r = 0; r < rows; ++r) {
      sig[static_cast<std::size_t>(r)] = {static_cast<double>(x(r, c)), 0.0};
    }
    fft_radix2(sig, /*inverse=*/false);
  }
  return out;
}

}  // namespace

MatrixF fnet_mixing(const MatrixF& x) {
  SWAT_EXPECTS(is_pow2(x.rows()) && is_pow2(x.cols()));
  // First transform along the feature axis.
  const std::int64_t rows = x.rows();
  const std::int64_t cols = x.cols();
  Matrix<std::complex<double>> stage(rows, cols);
  std::vector<std::complex<double>> buf(static_cast<std::size_t>(cols));
  for (std::int64_t r = 0; r < rows; ++r) {
    for (std::int64_t c = 0; c < cols; ++c) {
      buf[static_cast<std::size_t>(c)] = {static_cast<double>(x(r, c)), 0.0};
    }
    fft_radix2(buf, /*inverse=*/false);
    for (std::int64_t c = 0; c < cols; ++c) {
      stage(r, c) = buf[static_cast<std::size_t>(c)];
    }
  }
  // Then along the token axis; take the real part.
  MatrixF y(rows, cols);
  std::vector<std::complex<double>> col(static_cast<std::size_t>(rows));
  for (std::int64_t c = 0; c < cols; ++c) {
    for (std::int64_t r = 0; r < rows; ++r) {
      col[static_cast<std::size_t>(r)] = stage(r, c);
    }
    fft_radix2(col, /*inverse=*/false);
    for (std::int64_t r = 0; r < rows; ++r) {
      y(r, c) = static_cast<float>(col[static_cast<std::size_t>(r)].real());
    }
  }
  return y;
}

MatrixF fft_token_mixing(const MatrixF& x) {
  SWAT_EXPECTS(is_pow2(x.rows()));
  const auto spectra = fft_columns(x);
  MatrixF y(x.rows(), x.cols());
  for (std::int64_t c = 0; c < x.cols(); ++c) {
    const auto& sig = spectra[static_cast<std::size_t>(c)];
    for (std::int64_t r = 0; r < x.rows(); ++r) {
      y(r, c) = static_cast<float>(sig[static_cast<std::size_t>(r)].real());
    }
  }
  return y;
}

std::int64_t fft_butterfly_count(std::int64_t n) {
  SWAT_EXPECTS(is_pow2(n));
  std::int64_t log2n = 0;
  for (std::int64_t v = n; v > 1; v >>= 1) ++log2n;
  return (n / 2) * log2n;
}

}  // namespace swat::attn
