// Mixing-fidelity proxy for the paper's accuracy comparisons (Tables 3/4).
//
// The paper evaluates trained Longformer / BigBird / Butterfly models on LRA
// and ImageNet. Training those models is outside the scope of a C++ systems
// repository with no datasets, so we substitute a *fidelity* experiment
// (documented in DESIGN.md): stack L mixing layers, run the same input
// through (a) a reference stack whose every layer is dense softmax
// attention, and (b) a method stack (window / BigBird / full-FFT / BTF-k
// hybrid), and measure how closely the method stack tracks the reference.
//
// Fidelity is *teacher-forced*: every layer's mixer is evaluated on the
// reference (all-dense) trajectory, and the score is the mean over layers
// of the cosine between the method layer's output and the dense layer's
// output. Teacher forcing is essential for an untrained stack: free-running
// divergence compounds layer over layer and swamps the per-layer quality
// signal that trained models (which adapt around earlier layers) actually
// expose. With it, the proxy preserves exactly the property the paper's
// Tables 3/4 rest on: data-dependent local attention tracks full attention
// far better than data-independent FFT mixing, hybrids sit in between
// (monotonically in the number of softmax layers), and the gap widens on
// vision-structured (2-D locally correlated) inputs.
#pragma once

#include <string>
#include <vector>

#include "attention/mask.hpp"
#include "tensor/matrix.hpp"

namespace swat::attn {

/// Token-mixing operator used for one layer of the proxy stack.
enum class MixerKind {
  kDense,     ///< full softmax attention (the reference mixer)
  kWindow,    ///< sliding-window attention (Longformer layer)
  kBigBird,   ///< window + global + random attention
  kFnet,      ///< full-FFT mixing (Butterfly's FFT-BTF layer)
};

std::string mixer_name(MixerKind k);

/// Input-structure regimes mirroring the paper's dataset split.
enum class InputStructure {
  kText1d,    ///< 1-D locally correlated token stream (Text/ListOps/...)
  kVision2d,  ///< 2-D locally correlated patch grid (Image/PathFinder)
};

struct FidelityConfig {
  std::int64_t seq_len = 1024;   ///< power of two; perfect square for 2-D
  std::int64_t dim = 64;         ///< feature dimension (power of two)
  std::int64_t window_radius = 64;
  std::int64_t bigbird_random = 32;
  std::int64_t bigbird_global = 16;
  /// Input correlation length (tokens). Text streams correlate over long
  /// spans (discourse-level dependencies); image patches over short local
  /// neighbourhoods — pick accordingly (e.g. ~24 for text, ~4 for vision).
  double corr_len = 8.0;
  std::uint64_t seed = 7;
  InputStructure structure = InputStructure::kText1d;
};

/// A stack is a sequence of per-layer mixers, applied with residual
/// connection and row layer-norm: X <- LN(X + Mix(X)).
using LayerSchedule = std::vector<MixerKind>;

/// Standard schedules from the paper's evaluation.
LayerSchedule schedule_uniform(MixerKind k, int layers);
/// Butterfly hybrid: all-FFT except the last `softmax_layers` layers, which
/// are dense softmax attention (BTF-1, BTF-2 in the paper).
LayerSchedule schedule_btf(int layers, int softmax_layers);

struct FidelityResult {
  /// Mean over layers of the row-cosine between the method layer output and
  /// the dense layer output, both evaluated on the reference trajectory.
  double mean_cosine = 0.0;
  /// Mean over layers of the Frobenius relative error, same convention.
  double rel_error = 0.0;
};

/// Run the teacher-forced proxy: each layer of `schedule` is compared
/// against a dense layer on the all-dense reference trajectory.
FidelityResult mixing_fidelity(const LayerSchedule& schedule,
                               const FidelityConfig& cfg);

/// One mixing layer (exposed for unit tests): Y = LN(X + Mix(X)).
MatrixF apply_mixing_layer(const MatrixF& x, MixerKind kind,
                           const FidelityConfig& cfg);

}  // namespace swat::attn
