#include "swat/analytic.hpp"

namespace swat {

AnalyticModel::AnalyticModel(SwatConfig cfg)
    : cfg_(std::move(cfg)), pipeline_(make_pipeline(cfg_)) {
  cfg_.validate();
}

Cycles AnalyticModel::head_cycles(std::int64_t seq_len) const {
  SWAT_EXPECTS(seq_len > 0);
  // Symmetric-global rows occupy multiple pipeline slots (chunked passes).
  return pipeline_.total_cycles(cfg_.row_slots(seq_len));
}

Seconds AnalyticModel::head_time(std::int64_t seq_len) const {
  return to_seconds(head_cycles(seq_len), cfg_.clock);
}

Seconds AnalyticModel::model_time(std::int64_t seq_len, int heads,
                                  int layers) const {
  SWAT_EXPECTS(heads >= 1 && layers >= 1);
  const auto total_heads = static_cast<double>(heads) * layers;
  const double per_pipeline = total_heads / static_cast<double>(cfg_.pipelines);
  return head_time(seq_len) * per_pipeline;
}

Bytes AnalyticModel::head_traffic(std::int64_t seq_len) const {
  SWAT_EXPECTS(seq_len > 0);
  const auto n = static_cast<std::uint64_t>(seq_len);
  const auto h = static_cast<std::uint64_t>(cfg_.head_dim);
  const auto b = static_cast<std::uint64_t>(dtype_bytes(cfg_.dtype));
  // Q, K, V read once each; Z written once; random cores re-read K/V rows
  // for every query row.
  const std::uint64_t once = 4 * n * h * b;
  const std::uint64_t random_rereads =
      2 * n * static_cast<std::uint64_t>(cfg_.random_cores) * h * b;
  return Bytes{once + random_rereads};
}

double AnalyticModel::achieved_gbps(std::int64_t seq_len) const {
  const double bytes = static_cast<double>(head_traffic(seq_len).count);
  return bytes / head_time(seq_len).value / 1e9;
}

Bytes AnalyticModel::onchip_working_set() const {
  const auto cores = static_cast<std::uint64_t>(cfg_.cores_per_pipeline());
  const auto h = static_cast<std::uint64_t>(cfg_.head_dim);
  const auto b = static_cast<std::uint64_t>(dtype_bytes(cfg_.dtype));
  return Bytes{cores * 2 * h * b * static_cast<std::uint64_t>(cfg_.pipelines)};
}

}  // namespace swat
