#include "swat/decode_sim.hpp"

#include "swat/stage_latency.hpp"

namespace swat {

DecodeSimulator::DecodeSimulator(SwatConfig cfg) : cfg_(std::move(cfg)) {
  cfg_.validate();
  SWAT_EXPECTS(cfg_.band_split == BandSplit::kCausal);
  SWAT_EXPECTS(!cfg_.symmetric_global);
}

DecodeResult DecodeSimulator::run(const attn::HeadInput& in) const {
  const std::int64_t n = in.seq_len();
  SWAT_EXPECTS(n > 0);

  DecodeResult res;
  // Values: identical to the batch causal run — the FIFO state after
  // pushing rows 0..t equals the decode-time cache at step t, so row t of
  // the batch simulation *is* the decode output for token t.
  const FunctionalSimulator sim(cfg_);
  res.z = sim.run(in).z;

  // Timing: the serial dependency means every token pays the full
  // longest-path latency (fill), not the steady-state II.
  const auto pipeline = make_pipeline(cfg_);
  res.per_token = pipeline.fill_latency();
  res.total = res.per_token * static_cast<std::uint64_t>(n);
  res.tokens_per_second =
      cfg_.clock.hz / static_cast<double>(res.per_token.count);

  // Traffic: only the new token's K and V rows cross HBM; the rest of the
  // window is BRAM-resident (this is the decode win — a GPU with an
  // off-chip KV cache re-reads the whole window every step).
  const std::uint64_t b = dtype_bytes(cfg_.dtype);
  res.kv_bytes_per_token =
      Bytes{2 * static_cast<std::uint64_t>(cfg_.head_dim) * b};
  res.cache_bytes = Bytes{static_cast<std::uint64_t>(cfg_.window_cores) * 2 *
                          static_cast<std::uint64_t>(cfg_.head_dim) * b};
  return res;
}

}  // namespace swat
