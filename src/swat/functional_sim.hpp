// Functional simulator of the SWAT accelerator.
//
// Simulates one attention head through the full microarchitecture of paper
// Fig. 6 at value level:
//   * the attention-core array (window / global / random partitions, paper
//     Fig. 7), with window cores managed by the fixed-length replacement
//     FIFO of Fig. 4b;
//   * datapath arithmetic rounded to the configured precision at every step
//     (see AttentionCore / DtypeOps);
//   * the two-phase Z-reduction and row-sum trees, accumulating in physical
//     core order grouped by H — the exact association order of the silicon;
//   * the fused-division output stage (paper Eq. 1);
//   * off-chip traffic accounting through an HbmChannel, so the "each datum
//     loaded exactly once" property is measured, not assumed.
//
// Cross-validation (tests/test_functional_sim):
//   * pure-window FP16 output is *bit-exact* against the independent host
//     kernel attn::fused_window_attention_fp16;
//   * output matches the fp32 masked-attention oracle within fp16 tolerance;
//   * off-chip reads equal one load per used input element.
#pragma once

#include <span>
#include <vector>

#include "attention/reference.hpp"
#include "hw/hbm.hpp"
#include "swat/attention_core.hpp"
#include "swat/config.hpp"

namespace swat {

struct FunctionalOptions {
  /// Piecewise-linear exp LUT segments; 0 = correctly-rounded exp unit.
  int exp_lut_segments = 0;
};

struct FunctionalResult {
  MatrixF z;  ///< attention output (values exactly representable in dtype)

  // Off-chip traffic (per head).
  Bytes q_bytes_read;
  Bytes kv_bytes_read;
  Bytes z_bytes_written;

  // Buffer behaviour.
  std::int64_t window_core_loads = 0;  ///< K/V refreshes of window cores
  std::int64_t global_core_loads = 0;  ///< pre-loads of global cores
  std::int64_t random_core_loads = 0;  ///< per-row refreshes of random cores
  std::int64_t fifo_evictions = 0;
  /// Chunked passes executed for symmetric-global rows (0 unless
  /// SwatConfig::symmetric_global is set).
  std::int64_t symmetric_global_passes = 0;

  /// Number of (row, attended-column) pairs actually computed.
  std::int64_t attended_pairs = 0;

  Bytes total_read() const { return q_bytes_read + kv_bytes_read; }
};

class FunctionalSimulator {
 public:
  explicit FunctionalSimulator(SwatConfig cfg, FunctionalOptions opt = {});

  /// Run one attention head end to end.
  FunctionalResult run(const attn::HeadInput& in) const;

  /// Run a batch of heads. Heads are independent (run() touches no mutable
  /// simulator state), so they fan out over the thread pool — the host-side
  /// analogue of instantiating one accelerator pipeline per head. Results
  /// are returned in input order and are identical to serial run() calls.
  std::vector<FunctionalResult> run_heads(
      std::span<const attn::HeadInput> heads) const;

  /// Same fan-out, writing into caller-provided storage (out.size() must
  /// equal heads.size()) so callers control the result buffer's lifetime —
  /// the batched attention path sizes one buffer for all
  /// (sequence, head) tasks of a batch and reads results back in a fixed
  /// reduction order.
  void run_heads_into(std::span<const attn::HeadInput> heads,
                      std::span<FunctionalResult> out) const;

  const SwatConfig& config() const { return cfg_; }

 private:
  SwatConfig cfg_;
  FunctionalOptions opt_;
};

}  // namespace swat
