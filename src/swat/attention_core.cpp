#include "swat/attention_core.hpp"

#include <cmath>

namespace swat {

float DtypeOps::exp(float x) const {
  if (dtype_ == Dtype::kFp32) return std::exp(x);
  if (exp_lut_segments_ > 0) {
    return half_exp_lut(Half(x), exp_lut_segments_).to_float();
  }
  return half_exp(Half(x)).to_float();
}

void AttentionCore::load(std::int64_t row, std::span<const float> k,
                         std::span<const float> v, const DtypeOps& ops) {
  SWAT_EXPECTS(row >= 0);
  SWAT_EXPECTS(k.size() == k_.size() && v.size() == v_.size());
  for (std::size_t d = 0; d < k.size(); ++d) {
    k_[d] = ops.round(k[d]);
    v_[d] = ops.round(v[d]);
  }
  row_ = row;
  ++loads_;
}

float AttentionCore::compute(std::span<const float> q, const DtypeOps& ops,
                             std::span<float> z_slice) const {
  SWAT_EXPECTS(valid());
  SWAT_EXPECTS(q.size() == k_.size());
  SWAT_EXPECTS(z_slice.size() == v_.size());
  // QK stage: sequential multiply-accumulate; the HLS MAC rounds the
  // product and the running sum separately (non-fused).
  float acc = 0.0f;
  for (std::size_t d = 0; d < q.size(); ++d) {
    acc = ops.add(acc, ops.mul(q[d], k_[d]));
  }
  // SV stage: exponential, then scale the resident V row.
  const float s_prime = ops.exp(acc);
  for (std::size_t d = 0; d < v_.size(); ++d) {
    z_slice[d] = ops.mul(s_prime, v_[d]);
  }
  return s_prime;
}

}  // namespace swat
