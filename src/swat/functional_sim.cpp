#include "swat/functional_sim.hpp"

#include <algorithm>
#include <vector>

#include "common/thread_pool.hpp"

namespace swat {

FunctionalSimulator::FunctionalSimulator(SwatConfig cfg, FunctionalOptions opt)
    : cfg_(std::move(cfg)), opt_(opt) {
  cfg_.validate();
}

std::vector<FunctionalResult> FunctionalSimulator::run_heads(
    std::span<const attn::HeadInput> heads) const {
  std::vector<FunctionalResult> results(heads.size());
  run_heads_into(heads, results);
  return results;
}

void FunctionalSimulator::run_heads_into(
    std::span<const attn::HeadInput> heads,
    std::span<FunctionalResult> out) const {
  SWAT_EXPECTS(out.size() == heads.size());
  parallel_for(0, static_cast<std::int64_t>(heads.size()), 1,
               [&](std::int64_t h0, std::int64_t h1) {
                 for (std::int64_t i = h0; i < h1; ++i) {
                   out[static_cast<std::size_t>(i)] =
                       run(heads[static_cast<std::size_t>(i)]);
                 }
               });
}

FunctionalResult FunctionalSimulator::run(const attn::HeadInput& in) const {
  const std::int64_t n = in.seq_len();
  const std::int64_t h = in.head_dim();
  SWAT_EXPECTS(h == cfg_.head_dim);
  SWAT_EXPECTS(n > 0);

  const DtypeOps ops(cfg_.dtype, opt_.exp_lut_segments);
  const std::uint64_t elem_bytes = dtype_bytes(cfg_.dtype);
  const std::int64_t ww = cfg_.window_cores;
  const std::int64_t ng = std::min(cfg_.global_cores, n);
  const std::int64_t nr = cfg_.random_cores;
  const std::int64_t total_cores = cfg_.cores_per_pipeline();

  // Physical core array: [0, ww) window, [ww, ww+ng') global, rest random.
  // (If the sequence is shorter than the global-core count, the surplus
  // global cores stay invalid.)
  std::vector<AttentionCore> cores;
  cores.reserve(static_cast<std::size_t>(total_cores));
  for (std::int64_t c = 0; c < ww; ++c) {
    cores.emplace_back(h, CoreKind::kWindow);
  }
  for (std::int64_t c = 0; c < cfg_.global_cores; ++c) {
    cores.emplace_back(h, CoreKind::kGlobal);
  }
  for (std::int64_t c = 0; c < nr; ++c) {
    cores.emplace_back(h, CoreKind::kRandom);
  }

  FunctionalResult res;
  res.z = MatrixF(n, h, 0.0f);

  // Pre-load global cores: their K/V buffers are fixed for the whole run
  // (paper §4.1: "pre-loaded prior to the attention computation").
  for (std::int64_t g = 0; g < ng; ++g) {
    cores[static_cast<std::size_t>(ww + g)].load(g, in.k.row(g), in.v.row(g),
                                                 ops);
    res.kv_bytes_read += Bytes{2 * static_cast<std::uint64_t>(h) * elem_bytes};
    ++res.global_core_loads;
  }

  const attn::AttentionPattern pattern(cfg_.pattern_spec(n));

  std::vector<float> q(static_cast<std::size_t>(h));
  const auto read_q_row = [&](std::int64_t i) {
    for (std::int64_t d = 0; d < h; ++d) {
      q[static_cast<std::size_t>(d)] = ops.round(in.q(i, d));
    }
    res.q_bytes_read += Bytes{static_cast<std::uint64_t>(h) * elem_bytes};
  };

  // ---- Symmetric-global pre-pass (SwatConfig::symmetric_global): each
  // global row runs as a chunked dense row over all N columns, the core
  // array re-purposed per pass and K/V streamed again for every pass.
  const std::int64_t ng_sym = cfg_.symmetric_global ? ng : 0;
  for (std::int64_t i = 0; i < ng_sym; ++i) {
    read_q_row(i);
    std::vector<float> znum(static_cast<std::size_t>(h), 0.0f);
    float denom = 0.0f;
    for (std::int64_t base = 0; base < n; base += total_cores) {
      const std::int64_t chunk_end = std::min(base + total_cores, n);
      ++res.symmetric_global_passes;
      res.kv_bytes_read += Bytes{2 * static_cast<std::uint64_t>(h) *
                                 elem_bytes *
                                 static_cast<std::uint64_t>(chunk_end - base)};
      // Same grouped reduction order as the streaming pass.
      for (std::int64_t gbase = base; gbase < chunk_end; gbase += h) {
        std::vector<float> gz(static_cast<std::size_t>(h), 0.0f);
        float gsum = 0.0f;
        const std::int64_t gend = std::min(gbase + h, chunk_end);
        for (std::int64_t col = gbase; col < gend; ++col) {
          float acc = 0.0f;
          for (std::int64_t d = 0; d < h; ++d) {
            acc = ops.add(acc, ops.mul(q[static_cast<std::size_t>(d)],
                                       ops.round(in.k(col, d))));
          }
          const float e = ops.exp(acc);
          gsum = ops.add(gsum, e);
          for (std::int64_t d = 0; d < h; ++d) {
            const auto di = static_cast<std::size_t>(d);
            gz[di] = ops.add(gz[di], ops.mul(e, ops.round(in.v(col, d))));
          }
          ++res.attended_pairs;
        }
        denom = ops.add(denom, gsum);
        for (std::int64_t d = 0; d < h; ++d) {
          const auto di = static_cast<std::size_t>(d);
          znum[di] = ops.add(znum[di], gz[di]);
        }
      }
    }
    SWAT_ENSURES(denom > 0.0f);
    for (std::int64_t d = 0; d < h; ++d) {
      res.z(i, d) = ops.div(znum[static_cast<std::size_t>(d)], denom);
    }
    res.z_bytes_written += Bytes{static_cast<std::uint64_t>(h) * elem_bytes};
  }

  // Window FIFO state: rows are pushed in sequence order. With dilation 1,
  // row r lives in window core r % ww while resident — exactly the paper's
  // "row index modulo the window size" selection (§4 LOAD stage). With
  // dilation d, the core array splits into d residue classes of ww/d cores
  // and row r lives in its class's ring slot.
  const std::int64_t dil = cfg_.window_dilation;
  const std::int64_t class_cores = ww / dil;
  const auto window_core_of = [dil, class_cores](std::int64_t row) {
    return (row % dil) * class_cores + (row / dil) % class_cores;
  };
  std::int64_t next_load = 0;

  std::vector<float> sprime(static_cast<std::size_t>(total_cores), 0.0f);
  std::vector<std::vector<float>> zslice(
      static_cast<std::size_t>(total_cores),
      std::vector<float>(static_cast<std::size_t>(h), 0.0f));
  std::vector<bool> active(static_cast<std::size_t>(total_cores), false);

  for (std::int64_t i = ng_sym; i < n; ++i) {
    const std::int64_t hi =
        std::min<std::int64_t>(n - 1, i + cfg_.window_after() * dil);

    // LOAD stage: slide the window FIFO forward. Each sequence row enters a
    // window core exactly once over the whole run.
    for (; next_load <= hi; ++next_load) {
      auto& core = cores[static_cast<std::size_t>(window_core_of(next_load))];
      if (core.valid()) ++res.fifo_evictions;
      core.load(next_load, in.k.row(next_load), in.v.row(next_load), ops);
      res.kv_bytes_read +=
          Bytes{2 * static_cast<std::uint64_t>(h) * elem_bytes};
      ++res.window_core_loads;
    }

    // Fetch and round the Q row (distributed to all cores).
    read_q_row(i);

    // QK + SV stages on the attended set. The pattern de-duplicates columns
    // covered by several components; each attended column is computed by
    // exactly one core (window wins inside the band, then global).
    std::fill(active.begin(), active.end(), false);
    std::int64_t next_random_core = ww + cfg_.global_cores;
    for (const attn::AttendedToken& t : pattern.row(i)) {
      std::int64_t core_idx = -1;
      switch (t.component) {
        case attn::PatternComponent::kWindow:
          core_idx = window_core_of(t.col);
          break;
        case attn::PatternComponent::kGlobal:
          core_idx = ww + t.col;  // global token g sits in global core g
          break;
        case attn::PatternComponent::kRandom: {
          // Random cores refresh their K/V buffers for every row (§4.1).
          SWAT_ENSURES(next_random_core < total_cores);
          core_idx = next_random_core++;
          auto& core = cores[static_cast<std::size_t>(core_idx)];
          core.load(t.col, in.k.row(t.col), in.v.row(t.col), ops);
          res.kv_bytes_read +=
              Bytes{2 * static_cast<std::uint64_t>(h) * elem_bytes};
          ++res.random_core_loads;
          break;
        }
      }
      auto& core = cores[static_cast<std::size_t>(core_idx)];
      SWAT_ENSURES(core.valid() && core.row() == t.col);
      const auto ci = static_cast<std::size_t>(core_idx);
      SWAT_ENSURES(!active[ci]);
      sprime[ci] = core.compute(q, ops, zslice[ci]);
      active[ci] = true;
      ++res.attended_pairs;
    }

    // Z-reduction and row-sum: accumulate in physical core order, grouped
    // by H cores (ZRED1/ROWSUM1 within groups, ZRED2/ROWSUM2 across).
    std::vector<float> znum(static_cast<std::size_t>(h), 0.0f);
    float denom = 0.0f;
    for (std::int64_t gbase = 0; gbase < total_cores; gbase += h) {
      std::vector<float> gz(static_cast<std::size_t>(h), 0.0f);
      float gsum = 0.0f;
      const std::int64_t gend = std::min(gbase + h, total_cores);
      for (std::int64_t c = gbase; c < gend; ++c) {
        const auto ci = static_cast<std::size_t>(c);
        if (!active[ci]) continue;
        gsum = ops.add(gsum, sprime[ci]);
        for (std::int64_t d = 0; d < h; ++d) {
          const auto di = static_cast<std::size_t>(d);
          gz[di] = ops.add(gz[di], zslice[ci][di]);
        }
      }
      denom = ops.add(denom, gsum);
      for (std::int64_t d = 0; d < h; ++d) {
        const auto di = static_cast<std::size_t>(d);
        znum[di] = ops.add(znum[di], gz[di]);
      }
    }

    // DIV & OUT stage.
    SWAT_ENSURES(denom > 0.0f);
    for (std::int64_t d = 0; d < h; ++d) {
      res.z(i, d) = ops.div(znum[static_cast<std::size_t>(d)], denom);
    }
    res.z_bytes_written += Bytes{static_cast<std::uint64_t>(h) * elem_bytes};
  }

  return res;
}

}  // namespace swat
