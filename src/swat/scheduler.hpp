// Head scheduler: maps a whole transformer attention workload (layers x
// heads x batch) onto SWAT's parallel pipelines.
//
// The paper exploits that FPGA latencies are data-independent: "Total
// attention time is proportional to the execution time of a single head"
// (§5.3). The scheduler makes that concrete, and models one refinement the
// hardware gets for free: because the row pipeline's stages are independent
// of *which* head a row belongs to, consecutive heads can stream
// back-to-back without draining the pipeline between them — the fill
// latency is paid once per pipeline, not once per head.
#pragma once

#include <cstdint>
#include <vector>

#include "common/units.hpp"
#include "swat/config.hpp"

namespace swat {

struct Workload {
  std::int64_t seq_len = 0;
  int heads = 12;
  int layers = 8;
  int batch = 1;

  std::int64_t total_heads() const {
    return static_cast<std::int64_t>(heads) * layers * batch;
  }
};

enum class HeadScheduling {
  kSerialDrain,  ///< drain the pipeline after every head (fill per head)
  kBackToBack,   ///< stream heads continuously (fill once per pipeline)
};

/// One head's residency on a pipeline.
struct HeadSlot {
  int layer = 0;
  int head = 0;
  int batch = 0;
  Cycles start;  ///< cycle its first row enters the pipeline
  Cycles end;    ///< cycle its last row leaves
};

struct PipelineTimeline {
  std::vector<HeadSlot> slots;
  Cycles finish;  ///< completion cycle of the pipeline's last head
};

struct ScheduleResult {
  std::vector<PipelineTimeline> pipelines;
  Cycles makespan;  ///< max pipeline finish time
  /// Fraction of makespan cycles during which the QK stage (the pipeline
  /// bottleneck) is doing useful work, averaged over pipelines.
  double bottleneck_utilization = 0.0;

  Seconds wall_time(Hertz clock) const { return to_seconds(makespan, clock); }
};

class HeadScheduler {
 public:
  explicit HeadScheduler(SwatConfig cfg);

  /// Distribute the workload's heads over the configured pipelines
  /// (balanced round-robin; all heads are identical in cost, so round-robin
  /// is optimal) and compute the timeline.
  ScheduleResult schedule(const Workload& w, HeadScheduling mode) const;

  /// Cycles one pipeline needs for `k` heads under `mode`.
  Cycles pipeline_cycles(std::int64_t k, std::int64_t seq_len,
                         HeadScheduling mode) const;

  const SwatConfig& config() const { return cfg_; }

 private:
  SwatConfig cfg_;
  Cycles fill_;
  Cycles ii_;
};

}  // namespace swat
