// Cycle-level timing simulator of the SWAT pipeline.
//
// Advances the coarse-grained row pipeline (paper Fig. 6) transaction by
// transaction: row r occupies stage s for that stage's latency; a stage
// accepts row r only after it released row r-1 and after row r finished the
// upstream stage (parallel reduction branches join before DIV&OUT). This is
// the same level of abstraction at which the paper's own latency numbers
// are produced (HLS report stage latencies), and it is cross-validated
// against the closed-form AnalyticModel in the tests.
//
// The simulator also checks the LOAD stage against HBM bandwidth: a row's
// LOAD cannot start before the memory system has delivered its K/V/Q data.
// At SWAT's per-row traffic (~3 rows x H elements per 201 cycles) HBM is
// never the bottleneck — asserted, not assumed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hw/hbm.hpp"
#include "swat/config.hpp"
#include "swat/stage_latency.hpp"

namespace swat {

struct TimingResult {
  Cycles total;                 ///< cycles to drain the whole sequence
  Cycles row_interval;          ///< measured steady-state II between rows
  Cycles fill;                  ///< cycles until the first row completes
  std::vector<std::string> stage_names;
  std::vector<Cycles> stage_busy;  ///< total busy cycles per stage
  std::int64_t rows = 0;
  bool hbm_limited = false;     ///< true if any LOAD waited on memory

  Seconds wall_time(Hertz clock) const { return to_seconds(total, clock); }

  /// Utilization of stage s: busy cycles / total cycles.
  double utilization(std::size_t s) const {
    SWAT_EXPECTS(s < stage_busy.size());
    return static_cast<double>(stage_busy[s].count) /
           static_cast<double>(total.count);
  }
};

class TimingSimulator {
 public:
  explicit TimingSimulator(SwatConfig cfg, hw::HbmSpec hbm = {});

  /// Simulate one head over `seq_len` rows.
  TimingResult run(std::int64_t seq_len) const;

  const SwatConfig& config() const { return cfg_; }

 private:
  SwatConfig cfg_;
  hw::HbmSpec hbm_;
};

}  // namespace swat
