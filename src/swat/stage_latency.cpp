#include "swat/stage_latency.hpp"

#include <algorithm>

#include "eval/calibration.hpp"

namespace swat {

StageLatencies stage_latencies(const SwatConfig& cfg) {
  cfg.validate();
  const auto h = static_cast<std::uint64_t>(cfg.head_dim);
  const std::uint64_t ii = mac_initiation_interval(cfg.dtype);
  const std::uint64_t groups =
      static_cast<std::uint64_t>(cfg.cores_per_pipeline()) / h;

  StageLatencies s;
  // LOAD: window cores stream the next K/V row in order (burst, II = 1);
  // random cores gather scattered rows at II = 3 (paper §4.1: 66 -> 195).
  const Cycles load_window{h + calib::kLoadDepth};
  const Cycles load_random{3 * h + calib::kLoadRandomDepth};
  s.load = cfg.random_cores > 0 ? std::max(load_window, load_random)
                                : load_window;

  const std::uint64_t qk_depth = cfg.dtype == Dtype::kFp16
                                     ? calib::kQkDepthFp16
                                     : calib::kQkDepthFp32;
  s.qk = Cycles{ii * h + qk_depth};
  s.sv = Cycles{ii * h + calib::kSvDepth};
  s.zred1 = Cycles{ii * h + calib::kRedDepth};
  s.zred2 = Cycles{h + calib::kZred2Depth};
  s.rowsum1 = Cycles{ii * h + calib::kRedDepth};
  s.rowsum2 = Cycles{ii * groups + calib::kRedDepth};
  s.div_out = Cycles{calib::kDivInitiationInterval * h + calib::kDivDepth};
  return s;
}

hw::PipelineModel make_pipeline(const SwatConfig& cfg) {
  const StageLatencies s = stage_latencies(cfg);
  // Z-reduction (ZRED1 -> ZRED2) and row-sum (ROWSUM1 -> ROWSUM2) proceed
  // in parallel between SV and DIV&OUT; model each parallel pair depth by
  // depth (group 0: ZRED1 || ROWSUM1, group 1: ZRED2 || ROWSUM2).
  return hw::PipelineModel({
      {"LOAD", s.load, -1},
      {"QK", s.qk, -1},
      {"SV", s.sv, -1},
      {"ZRED1", s.zred1, 0},
      {"ROWSUM1", s.rowsum1, 0},
      {"ZRED2", s.zred2, 1},
      {"ROWSUM2", s.rowsum2, 1},
      {"DIV&OUT", s.div_out, -1},
  });
}

Cycles row_interval(const SwatConfig& cfg) {
  return make_pipeline(cfg).row_initiation_interval();
}

}  // namespace swat
