#include "swat/timing_sim.hpp"

#include <algorithm>
#include <cmath>

namespace swat {

TimingSimulator::TimingSimulator(SwatConfig cfg, hw::HbmSpec hbm)
    : cfg_(std::move(cfg)), hbm_(hbm) {
  cfg_.validate();
}

TimingResult TimingSimulator::run(std::int64_t seq_len) const {
  SWAT_EXPECTS(seq_len > 0);
  const StageLatencies lat = stage_latencies(cfg_);

  // Linear stage chain with the two reduction branches joined before the
  // divider: LOAD -> QK -> SV -> {ZRED1->ZRED2 || ROWSUM1->ROWSUM2} -> DIV.
  struct Stage {
    std::string name;
    std::uint64_t latency;
    std::uint64_t free_at = 0;   // cycle when the stage can accept a new row
    std::uint64_t busy = 0;
  };
  std::vector<Stage> stages = {
      {"LOAD", lat.load.count},       {"QK", lat.qk.count},
      {"SV", lat.sv.count},           {"ZRED1", lat.zred1.count},
      {"ZRED2", lat.zred2.count},     {"ROWSUM1", lat.rowsum1.count},
      {"ROWSUM2", lat.rowsum2.count}, {"DIV&OUT", lat.div_out.count},
  };
  constexpr std::size_t kLoad = 0, kQk = 1, kSv = 2, kZred1 = 3, kZred2 = 4,
                        kRowsum1 = 5, kRowsum2 = 6, kDiv = 7;

  // HBM delivery model: each row's LOAD consumes one K row + one V row
  // (+ the Q row) from memory; the channel streams bytes at full bandwidth.
  const double bytes_per_row =
      3.0 * static_cast<double>(cfg_.head_dim) *
          static_cast<double>(dtype_bytes(cfg_.dtype)) +
      2.0 * static_cast<double>(cfg_.head_dim) *
          static_cast<double>(dtype_bytes(cfg_.dtype)) *
          static_cast<double>(cfg_.random_cores);
  const double cycles_per_byte =
      cfg_.clock.hz / (hbm_.bandwidth_gbps * 1e9);
  const double hbm_cycles_per_row = bytes_per_row * cycles_per_byte;

  TimingResult res;
  res.rows = cfg_.row_slots(seq_len);
  double hbm_ready = 0.0;  // cycle when the memory data for a row is ready
  std::uint64_t first_done = 0;
  std::uint64_t prev_done = 0;
  std::uint64_t last_interval = 0;

  auto occupy = [&stages](std::size_t s, std::uint64_t earliest)
      -> std::uint64_t {
    Stage& st = stages[s];
    const std::uint64_t start = std::max(earliest, st.free_at);
    st.free_at = start + st.latency;
    st.busy += st.latency;
    return st.free_at;  // completion cycle of this row in this stage
  };

  for (std::int64_t r = 0; r < res.rows; ++r) {
    // The LOAD stage consumes the row's K/V/Q data as it streams in, so a
    // row may start loading once all *earlier* rows' data has drained.
    const auto mem_ready = static_cast<std::uint64_t>(std::ceil(hbm_ready));
    hbm_ready += hbm_cycles_per_row;
    if (mem_ready > stages[kLoad].free_at) res.hbm_limited = true;

    const std::uint64_t t_load = occupy(kLoad, mem_ready);
    const std::uint64_t t_qk = occupy(kQk, t_load);
    const std::uint64_t t_sv = occupy(kSv, t_qk);
    const std::uint64_t t_zred1 = occupy(kZred1, t_sv);
    const std::uint64_t t_zred2 = occupy(kZred2, t_zred1);
    const std::uint64_t t_rowsum1 = occupy(kRowsum1, t_sv);
    const std::uint64_t t_rowsum2 = occupy(kRowsum2, t_rowsum1);
    const std::uint64_t t_div = occupy(kDiv, std::max(t_zred2, t_rowsum2));

    if (r == 0) first_done = t_div;
    if (r > 0) last_interval = t_div - prev_done;
    prev_done = t_div;
  }

  res.total = Cycles{prev_done};
  res.fill = Cycles{first_done};
  res.row_interval = Cycles{seq_len > 1 ? last_interval : first_done};
  for (const Stage& s : stages) {
    res.stage_names.push_back(s.name);
    res.stage_busy.push_back(Cycles{s.busy});
  }
  return res;
}

}  // namespace swat
