// Attention Core — the paper's "minimal computational unit" (§3.3, Fig. 5):
// a buffer holding one row of K and one row of V, with the QK dot product,
// the exp, and the S'V scaling performed locally next to the buffer
// (input-stationary dataflow).
//
// The functional core reproduces the datapath arithmetic exactly for the
// configured precision: every multiply, add, exp and divide rounds to the
// datapath format (binary16 for the FP16 build), so the simulator's output
// is the bit pattern the FPGA would produce, not an idealized float result.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/contracts.hpp"
#include "common/dtype.hpp"
#include "common/fp16.hpp"

namespace swat {

/// Scalar arithmetic that rounds to the configured datapath precision after
/// every operation. Values are carried in float (binary32 holds every
/// binary16 exactly, and is itself the FP32 datapath format).
class DtypeOps {
 public:
  explicit DtypeOps(Dtype dtype, int exp_lut_segments = 0)
      : dtype_(dtype), exp_lut_segments_(exp_lut_segments) {}

  Dtype dtype() const { return dtype_; }

  float round(float x) const {
    return dtype_ == Dtype::kFp32 ? x : Half(x).to_float();
  }
  float add(float a, float b) const { return round(a + b); }
  float mul(float a, float b) const { return round(a * b); }
  float div(float a, float b) const { return round(a / b); }
  float exp(float x) const;

 private:
  Dtype dtype_;
  int exp_lut_segments_;
};

/// The kind of token a core is wired for (paper Fig. 7).
enum class CoreKind : std::uint8_t { kWindow, kGlobal, kRandom };

class AttentionCore {
 public:
  AttentionCore(std::int64_t head_dim, CoreKind kind)
      : kind_(kind), k_(static_cast<std::size_t>(head_dim), 0.0f),
        v_(static_cast<std::size_t>(head_dim), 0.0f) {
    SWAT_EXPECTS(head_dim > 0);
  }

  CoreKind kind() const { return kind_; }
  bool valid() const { return row_ >= 0; }
  std::int64_t row() const { return row_; }
  std::int64_t loads() const { return loads_; }

  /// LOAD stage: refresh the K/V buffer with sequence row `row`. Values are
  /// rounded on write (the buffers store datapath-format words).
  void load(std::int64_t row, std::span<const float> k,
            std::span<const float> v, const DtypeOps& ops);

  /// Invalidate the buffer (used at sequence start / config changes).
  void invalidate() { row_ = -1; }

  /// QK + SV stages for one query row (already datapath-rounded):
  /// S = Q . K (sequential MAC, rounding per step), S' = exp(S),
  /// z_slice[d] = S' * V[d]. Returns S'; writes the slice into `z_slice`.
  float compute(std::span<const float> q, const DtypeOps& ops,
                std::span<float> z_slice) const;

 private:
  CoreKind kind_;
  std::int64_t row_ = -1;
  std::int64_t loads_ = 0;
  std::vector<float> k_;
  std::vector<float> v_;
};

}  // namespace swat
