#include "swat/config.hpp"

#include <sstream>

#include "eval/calibration.hpp"

namespace swat {

SwatConfig::SwatConfig() : clock(calib::kSwatClock) {}

SwatConfig SwatConfig::longformer_512(Dtype dtype) {
  SwatConfig c;
  c.dtype = dtype;
  c.head_dim = 64;
  c.window_cores = 512;
  return c;
}

SwatConfig SwatConfig::bigbird_512(Dtype dtype) {
  SwatConfig c;
  c.dtype = dtype;
  c.head_dim = 64;
  c.window_cores = 192;
  c.random_cores = 192;
  c.global_cores = 128;
  return c;
}

SwatConfig SwatConfig::bigbird_dual_512() {
  SwatConfig c = bigbird_512(Dtype::kFp16);
  c.pipelines = 2;
  return c;
}

SwatConfig SwatConfig::causal_512(Dtype dtype) {
  SwatConfig c = longformer_512(dtype);
  c.band_split = BandSplit::kCausal;
  return c;
}

attn::PatternSpec SwatConfig::pattern_spec(std::int64_t seq_len) const {
  validate();
  attn::PatternSpec spec;
  spec.seq_len = seq_len;
  spec.window_before = window_before();
  spec.window_after = window_after();
  spec.window_dilation = window_dilation;
  spec.num_global_tokens = std::min(global_cores, seq_len);
  spec.num_random_tokens = std::min(random_cores, seq_len);
  spec.random_seed = random_seed;
  // By default the core array realizes only the attended-by-all direction
  // of global attention; the two-pass extension restores the symmetric
  // semantics (see SwatConfig::symmetric_global).
  spec.symmetric_global = symmetric_global;
  return spec;
}

std::int64_t SwatConfig::row_slots(std::int64_t seq_len) const {
  SWAT_EXPECTS(seq_len > 0);
  const std::int64_t ng =
      symmetric_global ? std::min(global_cores, seq_len) : 0;
  const std::int64_t cores = cores_per_pipeline();
  const std::int64_t passes_per_global = (seq_len + cores - 1) / cores;
  return (seq_len - ng) + ng * passes_per_global;
}

std::string SwatConfig::summary() const {
  std::ostringstream os;
  os << "SWAT[" << dtype_name(dtype) << ", H=" << head_dim << ", cores="
     << cores_per_pipeline() << " (w:" << window_cores << " g:" << global_cores
     << " r:" << random_cores << "), pipelines=" << pipelines << ", "
     << clock.hz / 1e6 << " MHz]";
  return os.str();
}

void SwatConfig::validate() const {
  SWAT_EXPECTS(head_dim > 0);
  // Every SWAT variant keeps a sliding-window component (it is the basis
  // pattern of the paper's parameterized design, Fig. 7).
  SWAT_EXPECTS(window_cores >= 1);
  SWAT_EXPECTS(global_cores >= 0 && random_cores >= 0);
  SWAT_EXPECTS(cores_per_pipeline() > 0);
  SWAT_EXPECTS(pipelines >= 1);
  SWAT_EXPECTS(clock.hz > 0.0);
  // Dilation partitions the window cores into equal residue classes.
  SWAT_EXPECTS(window_dilation >= 1);
  SWAT_EXPECTS(window_cores % window_dilation == 0);
  // The reduction tree groups cores by head_dim-sized blocks; the design
  // (paper §4, Z Reduction) assumes the core count is a multiple of H.
  SWAT_EXPECTS(cores_per_pipeline() % head_dim == 0);
}

}  // namespace swat
