// Stage-latency model of the SWAT pipeline (reproduces paper Table 1).
//
// Each stage's latency has the HLS form II * trip_count + depth:
//
//   LOAD     : one K/V buffer refresh (H elements streamed) + Q broadcast;
//              window cores refresh sequentially from the HBM stream
//              (H + 2 cycles); random-attention cores gather from scattered
//              addresses at II = 3 (3H + 3 = 195 cycles, §4.1).
//   QK       : H-element MAC at II = 3 (FP16) / 4 (FP32) -> 201 / 264.
//   SV       : exp + H-element vector scale at the MAC II     -> 197.
//   ZRED1    : within each group of H cores, H accumulation channels sum
//              H slices at II = 3                              -> 195.
//   ZRED2    : stream the H output elements through the group adder tree
//                                                              -> 66.
//   ROWSUM1  : per-group scalar accumulation of H S' values    -> 195.
//   ROWSUM2  : accumulate the (cores/H) group sums at II = 3   -> 27.
//   DIV&OUT  : H divisions at II = 2 plus divider depth        -> 179.
//
// The row pipeline II is the max stage latency: 201 (FP16) / 264 (FP32).
#pragma once

#include "common/dtype.hpp"
#include "common/units.hpp"
#include "hw/pipeline.hpp"
#include "swat/config.hpp"

namespace swat {

struct StageLatencies {
  Cycles load;      ///< effective LOAD latency for this configuration
  Cycles qk;
  Cycles sv;
  Cycles zred1;
  Cycles zred2;
  Cycles rowsum1;
  Cycles rowsum2;
  Cycles div_out;
};

/// Compute the per-stage latencies for a configuration.
StageLatencies stage_latencies(const SwatConfig& cfg);

/// Assemble the pipeline DAG (Z-reduction and row-sum run in parallel,
/// paper Fig. 6) for closed-form II / fill-latency queries.
hw::PipelineModel make_pipeline(const SwatConfig& cfg);

/// Row initiation interval of the full pipeline: 201 cycles for the default
/// FP16 design, 264 for FP32 (paper Table 1 / §5.4).
Cycles row_interval(const SwatConfig& cfg);

}  // namespace swat
