// Autoregressive decode model: SWAT's K/V FIFO as a rolling KV cache.
//
// The paper evaluates encoder-style (whole-sequence) attention, but the
// same microarchitecture serves token-by-token generation with a causal
// sliding window (Mistral-style local attention): each newly generated
// token's K/V row is pushed into the FIFO — which *is* the rolling KV
// cache, resident in BRAM — and one pipeline beat produces the attention
// output for that token. Unlike the encoder case, consecutive tokens are
// sequentially dependent (token t+1's Q/K/V exist only after token t is
// complete), so decode pays the full pipeline fill per token instead of
// the steady-state II.
//
// The functional behaviour is exactly the causal FunctionalSimulator
// (token t's output equals the batch causal run's row t — tested); what
// this class adds is the decode-specific timing/traffic analysis.
#pragma once

#include "attention/reference.hpp"
#include "swat/config.hpp"
#include "swat/functional_sim.hpp"

namespace swat {

struct DecodeResult {
  MatrixF z;                 ///< per-token attention outputs
  Cycles per_token;          ///< pipeline cycles from Q ready to Z written
  Cycles total;              ///< per_token x tokens (serial dependency)
  double tokens_per_second = 0.0;
  Bytes kv_bytes_per_token;  ///< one K row + one V row (the new token only)
  Bytes cache_bytes;         ///< on-chip rolling cache footprint
};

class DecodeSimulator {
 public:
  /// The configuration must be causal (a decoder cannot attend forward).
  explicit DecodeSimulator(SwatConfig cfg);

  /// Decode `in.seq_len()` tokens whose Q/K/V projections are given (the
  /// projections of the tokens the model would have generated).
  DecodeResult run(const attn::HeadInput& in) const;

  const SwatConfig& config() const { return cfg_; }

 private:
  SwatConfig cfg_;
};

}  // namespace swat
