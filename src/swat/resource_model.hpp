// Post-synthesis resource model of SWAT on the Alveo U55C (paper Table 2).
//
// Costs are per-unit characterization data in the style of an HLS resource
// report, aggregated structurally:
//   * per attention core: the QK MAC, the EXP unit, the SV multiplier and
//     the K/V BRAM buffer (one 36 Kb block holds both rows, which
//     tests/test_resource_model verifies against BramBlock capacity);
//   * the ZRED1 accumulation channels (one per core), the ZRED2 tree
//     (H channels), the row-sum accumulators (cores/H + 1);
//   * the divider bank (H dividers at II = 2);
//   * per-pipeline control/interconnect overhead.
// Global cores drop the FIFO replacement logic, random cores the in-order
// streaming address path, which is why the BigBird build uses *fewer* LUTs
// than the pure-window build at the same core count (Table 2 rows 1-2).
//
// Anchor: the four SWAT rows of Table 2 — the tests assert the modelled
// percentages equal the published ones after the paper's integer truncation.
#pragma once

#include "hw/resource.hpp"
#include "swat/config.hpp"

namespace swat {

struct ResourceBreakdown {
  hw::ResourceVector cores;
  hw::ResourceVector reduction;  ///< ZRED1/2 + ROWSUM1/2
  hw::ResourceVector dividers;
  hw::ResourceVector control;

  hw::ResourceVector total() const {
    return cores + reduction + dividers + control;
  }
};

/// Structural resource estimate for a configuration (all pipelines).
ResourceBreakdown estimate_resources(const SwatConfig& cfg);

/// Utilization on the U55C, matching Table 2's percentage convention
/// (truncation toward zero).
struct TableUtilization {
  int dsp_pct = 0;
  int lut_pct = 0;
  int ff_pct = 0;
  int bram_pct = 0;
};
TableUtilization table2_utilization(const SwatConfig& cfg);

/// Published Butterfly row of Table 2 (FP16, 120 butterfly engines on the
/// VCU128) for side-by-side printing.
TableUtilization butterfly_published_utilization();

}  // namespace swat
