#include "swat/resource_model.hpp"

#include <cmath>

#include "hw/bram.hpp"

namespace swat {

namespace {

/// Per-unit resource characterization (Vitis HLS operator library style).
struct UnitCosts {
  // One attention core: QK MAC + EXP + SV multiplier + local control.
  hw::ResourceVector core_window;
  hw::ResourceVector core_global;  ///< no FIFO replacement logic
  hw::ResourceVector core_random;  ///< gather address path, no comparator
  // One reduction accumulation channel (ZRED1 per core, ZRED2 per H,
  // ROWSUM per group).
  hw::ResourceVector red_channel;
  // One divider (DIV&OUT bank has H of them).
  hw::ResourceVector divider;
  // Per-pipeline control, AXI/HBM interface, scheduling counters.
  hw::ResourceVector control;
};

UnitCosts costs_for(Dtype dtype) {
  if (dtype == Dtype::kFp16) {
    return UnitCosts{
        .core_window = {.dsp = 3, .lut = 500, .ff = 330, .bram = 1},
        .core_global = {.dsp = 3, .lut = 250, .ff = 290, .bram = 1},
        .core_random = {.dsp = 3, .lut = 320, .ff = 330, .bram = 1},
        .red_channel = {.dsp = 0, .lut = 280, .ff = 140, .bram = 0},
        .divider = {.dsp = 1, .lut = 750, .ff = 400, .bram = 0},
        .control = {.dsp = 115, .lut = 30000, .ff = 20000, .bram = 0},
    };
  }
  return UnitCosts{
      .core_window = {.dsp = 8, .lut = 1024, .ff = 840, .bram = 1},
      .core_global = {.dsp = 8, .lut = 700, .ff = 780, .bram = 1},
      .core_random = {.dsp = 8, .lut = 850, .ff = 840, .bram = 1},
      .red_channel = {.dsp = 0, .lut = 400, .ff = 200, .bram = 0},
      .divider = {.dsp = 4, .lut = 1400, .ff = 600, .bram = 0},
      .control = {.dsp = 115, .lut = 30000, .ff = 20000, .bram = 0},
  };
}

}  // namespace

ResourceBreakdown estimate_resources(const SwatConfig& cfg) {
  cfg.validate();
  const UnitCosts u = costs_for(cfg.dtype);
  const std::int64_t h = cfg.head_dim;
  const std::int64_t cores = cfg.cores_per_pipeline();
  const std::int64_t groups = cores / h;

  // One BRAM block must hold a K row and a V row; verify it does.
  const std::int64_t kv_bits =
      2 * h * 8 * static_cast<std::int64_t>(dtype_bytes(cfg.dtype));
  SWAT_ENSURES(hw::brams_for_buffer(1, kv_bits) == 1);

  ResourceBreakdown b;
  b.cores = u.core_window * cfg.window_cores +
            u.core_global * cfg.global_cores +
            u.core_random * cfg.random_cores;
  // ZRED1: one channel per core; ZRED2: H channels; ROWSUM1: one channel
  // per group; ROWSUM2: one channel.
  b.reduction = u.red_channel * (cores + h + groups + 1);
  b.dividers = u.divider * h;
  b.control = u.control;

  const auto p = static_cast<std::int64_t>(cfg.pipelines);
  b.cores = b.cores * p;
  b.reduction = b.reduction * p;
  b.dividers = b.dividers * p;
  b.control = b.control * p;
  return b;
}

TableUtilization table2_utilization(const SwatConfig& cfg) {
  const hw::ResourceVector used = estimate_resources(cfg).total();
  const hw::Utilization u = hw::DeviceCatalog::u55c().utilization(used);
  // The paper's table truncates to whole percent.
  TableUtilization t;
  t.dsp_pct = static_cast<int>(u.dsp * 100.0);
  t.lut_pct = static_cast<int>(u.lut * 100.0);
  t.ff_pct = static_cast<int>(u.ff * 100.0);
  t.bram_pct = static_cast<int>(u.bram * 100.0);
  return t;
}

TableUtilization butterfly_published_utilization() {
  // Table 2, "Butterfly (FP16, 120-BE)" row, as published in [Fan et al.,
  // MICRO-55] and quoted by the SWAT paper.
  return TableUtilization{.dsp_pct = 32, .lut_pct = 79, .ff_pct = 63,
                          .bram_pct = 49};
}

}  // namespace swat
