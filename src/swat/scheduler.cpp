#include "swat/scheduler.hpp"

#include "swat/stage_latency.hpp"

namespace swat {

HeadScheduler::HeadScheduler(SwatConfig cfg) : cfg_(std::move(cfg)) {
  cfg_.validate();
  const auto pipeline = make_pipeline(cfg_);
  fill_ = pipeline.fill_latency();
  ii_ = pipeline.row_initiation_interval();
}

Cycles HeadScheduler::pipeline_cycles(std::int64_t k, std::int64_t seq_len,
                                      HeadScheduling mode) const {
  SWAT_EXPECTS(k >= 0 && seq_len > 0);
  if (k == 0) return Cycles{0};
  const auto n = static_cast<std::uint64_t>(seq_len);
  const auto kk = static_cast<std::uint64_t>(k);
  if (mode == HeadScheduling::kSerialDrain) {
    // Each head: fill + (n-1) * II, then the pipeline drains.
    return Cycles{kk * (fill_.count + (n - 1) * ii_.count)};
  }
  // Back-to-back: rows of consecutive heads stream without a bubble.
  return Cycles{fill_.count + (kk * n - 1) * ii_.count};
}

ScheduleResult HeadScheduler::schedule(const Workload& w,
                                       HeadScheduling mode) const {
  SWAT_EXPECTS(w.seq_len > 0);
  SWAT_EXPECTS(w.heads >= 1 && w.layers >= 1 && w.batch >= 1);

  const int p = cfg_.pipelines;
  ScheduleResult res;
  res.pipelines.resize(static_cast<std::size_t>(p));

  // Round-robin assignment: head index h goes to pipeline h % p. All heads
  // cost the same, so this is makespan-optimal.
  std::vector<std::int64_t> count(static_cast<std::size_t>(p), 0);
  std::int64_t h = 0;
  for (int b = 0; b < w.batch; ++b) {
    for (int l = 0; l < w.layers; ++l) {
      for (int head = 0; head < w.heads; ++head, ++h) {
        const auto pipe = static_cast<std::size_t>(h % p);
        const std::int64_t slot_idx = count[pipe]++;
        HeadSlot slot;
        slot.layer = l;
        slot.head = head;
        slot.batch = b;
        // Timing of the k-th head on a pipeline.
        const auto n = static_cast<std::uint64_t>(w.seq_len);
        if (mode == HeadScheduling::kSerialDrain) {
          const std::uint64_t per = fill_.count + (n - 1) * ii_.count;
          slot.start = Cycles{static_cast<std::uint64_t>(slot_idx) * per};
          slot.end = Cycles{slot.start.count + per};
        } else {
          slot.start =
              Cycles{static_cast<std::uint64_t>(slot_idx) * n * ii_.count};
          slot.end = Cycles{fill_.count +
                            ((static_cast<std::uint64_t>(slot_idx) + 1) * n -
                             1) *
                                ii_.count};
        }
        res.pipelines[pipe].slots.push_back(slot);
      }
    }
  }

  res.makespan = Cycles{0};
  double util_sum = 0.0;
  int active = 0;
  for (std::size_t pipe = 0; pipe < res.pipelines.size(); ++pipe) {
    auto& tl = res.pipelines[pipe];
    tl.finish = pipeline_cycles(count[pipe], w.seq_len, mode);
    SWAT_ENSURES(tl.slots.empty() || tl.finish == tl.slots.back().end);
    res.makespan = std::max(res.makespan, tl.finish);
    if (count[pipe] > 0) {
      ++active;
      // The QK stage is busy II cycles per row.
      const double busy = static_cast<double>(count[pipe]) *
                          static_cast<double>(w.seq_len) *
                          static_cast<double>(ii_.count);
      util_sum += busy / static_cast<double>(res.makespan.count);
    }
  }
  res.bottleneck_utilization = active > 0 ? util_sum / active : 0.0;
  return res;
}

}  // namespace swat
