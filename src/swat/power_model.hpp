// SWAT power/energy model (Xilinx Power Estimator methodology, paper §5.3).
//
// Board power = static + per-resource dynamic power at the busy-pipeline
// toggle rates (eval/calibration.hpp) + HBM interface power for the achieved
// bandwidth. The resource counts come from the structural resource model
// (Table 2), so the FP32 build is automatically more power-hungry than FP16
// and the dual-pipeline build more than the single one.
#pragma once

#include "common/units.hpp"
#include "swat/config.hpp"

namespace swat {

/// Average board power while a head streams through the pipeline.
Watts swat_power(const SwatConfig& cfg);

/// Energy for one attention head of length `seq_len`.
Joules swat_head_energy(const SwatConfig& cfg, std::int64_t seq_len);

/// Energy for a full model (heads x layers, divided over pipelines).
Joules swat_model_energy(const SwatConfig& cfg, std::int64_t seq_len,
                         int heads, int layers);

}  // namespace swat
