// SWAT accelerator configuration (the design-time parameters of paper
// Fig. 7): precision, head dimension, and the allocation of attention cores
// to window / global / random pattern components.
#pragma once

#include <cstdint>
#include <string>

#include "attention/mask.hpp"
#include "common/dtype.hpp"
#include "common/units.hpp"

namespace swat {

/// How the window band sits around the diagonal.
enum class BandSplit : std::uint8_t {
  kCentered,  ///< encoder style: ~half the band before, half after
  kCausal,    ///< decoder style: the whole band at or before the diagonal
};

struct SwatConfig {
  Dtype dtype = Dtype::kFp16;
  std::int64_t head_dim = 64;      ///< H
  std::int64_t window_cores = 512; ///< sliding-window attention cores (2w)
  std::int64_t global_cores = 0;   ///< cores with fixed (pre-loaded) K/V
  std::int64_t random_cores = 0;   ///< cores re-loaded per row (BigBird)
  /// Longformer-style window dilation: the band attends every d-th token,
  /// widening the receptive field d-fold at the same core budget. The core
  /// array partitions into d residue classes of window_cores/d cores; each
  /// query row engages exactly its own class (utilization 1/d — the
  /// documented cost of dilation on this microarchitecture).
  std::int64_t window_dilation = 1;
  BandSplit band_split = BandSplit::kCentered;
  /// Longformer's global attention is symmetric: global tokens are also
  /// supposed to attend *all* columns. A global query row needs N attended
  /// columns, which the fixed core array cannot host in one pass; when this
  /// flag is set the accelerator runs each global row as a chunked
  /// multi-pass dense row (ceil(N / cores) pipeline slots per global row,
  /// K/V streamed again per pass) before the sliding pass. Off by default —
  /// the paper's design computes only the attended-by-all direction.
  bool symmetric_global = false;
  int pipelines = 1;               ///< parallel head pipelines (Table 2 row 3)
  Hertz clock;                     ///< kernel clock (default: calibration)
  std::uint64_t random_seed = 0x5747u;

  SwatConfig();

  /// Total attention cores per pipeline.
  std::int64_t cores_per_pipeline() const {
    return window_cores + global_cores + random_cores;
  }

  /// The paper's standard Longformer setup: pure window attention,
  /// 512 cores, FP16.
  static SwatConfig longformer_512(Dtype dtype = Dtype::kFp16);

  /// The paper's BigBird setup: 192 window + 192 random + 128 global cores.
  static SwatConfig bigbird_512(Dtype dtype = Dtype::kFp16);

  /// BigBird with two parallel pipelines (Table 2 third row).
  static SwatConfig bigbird_dual_512();

  /// Decoder-style causal sliding window (Mistral-style local attention):
  /// each token attends the previous `window_cores` tokens including
  /// itself.
  static SwatConfig causal_512(Dtype dtype = Dtype::kFp16);

  /// The sparse pattern this configuration realizes for a given sequence
  /// length: a band of exactly `window_cores` tokens, plus `global_cores`
  /// leading global tokens and `random_cores` static random tokens per row.
  attn::PatternSpec pattern_spec(std::int64_t seq_len) const;

  /// Attended window positions per row (= active window cores per row).
  std::int64_t window_steps() const { return window_cores / window_dilation; }

  /// Window reach below/above the diagonal for the window component, in
  /// *dilation steps*: row i attends i + j * dilation for
  /// j in [-window_before, window_after].
  std::int64_t window_before() const {
    const std::int64_t steps = window_steps();
    return band_split == BandSplit::kCausal ? steps - 1 : steps / 2;
  }
  std::int64_t window_after() const {
    const std::int64_t steps = window_steps();
    return band_split == BandSplit::kCausal ? 0 : steps - steps / 2 - 1;
  }

  /// Pipeline row-slots needed for a sequence: one per regular row, plus
  /// ceil(seq_len / cores) per symmetric-global row (see symmetric_global).
  std::int64_t row_slots(std::int64_t seq_len) const;

  std::string summary() const;

  void validate() const;
};

}  // namespace swat
