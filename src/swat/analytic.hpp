// Closed-form performance model of SWAT.
//
// Latency: the row pipeline admits one query row per II cycles (201 FP16 /
// 264 FP32 at H = 64, 2w = 512) after a fixed fill, so one head of length N
// costs fill + (N-1) * II cycles — the linear scaling of paper Figs. 3/8.
// "For FPGA implementations ... consistent operation latencies regardless
// of the concrete values of input data, number of heads, layers, and
// batches. Total attention time is proportional to the execution time of a
// single head" (§5.3): multi-head / multi-layer time is the single-head
// time scaled by head x layer count and divided by the pipeline count.
//
// The closed forms here are cross-validated against the cycle-level
// TimingSimulator over a parameter sweep in tests/test_analytic.
#pragma once

#include "common/units.hpp"
#include "swat/config.hpp"
#include "swat/stage_latency.hpp"

namespace swat {

class AnalyticModel {
 public:
  explicit AnalyticModel(SwatConfig cfg);

  const SwatConfig& config() const { return cfg_; }

  /// Cycles for one attention head over `seq_len` query rows.
  Cycles head_cycles(std::int64_t seq_len) const;

  /// Wall-clock time for one head.
  Seconds head_time(std::int64_t seq_len) const;

  /// Wall-clock time for a model with `heads` heads per layer and `layers`
  /// attention layers, using the configured number of parallel pipelines.
  Seconds model_time(std::int64_t seq_len, int heads, int layers) const;

  /// Off-chip traffic for one head: Q, K, V each read once (plus random-core
  /// re-reads), Z written once.
  Bytes head_traffic(std::int64_t seq_len) const;

  /// Achieved off-chip bandwidth while a head streams.
  double achieved_gbps(std::int64_t seq_len) const;

  /// Peak on-chip memory required for one head's working set (K/V buffers),
  /// independent of sequence length — the flat memory line of Fig. 3.
  Bytes onchip_working_set() const;

 private:
  SwatConfig cfg_;
  hw::PipelineModel pipeline_;
};

}  // namespace swat
