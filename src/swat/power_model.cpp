#include "swat/power_model.hpp"

#include "eval/calibration.hpp"
#include "hw/power.hpp"
#include "swat/analytic.hpp"
#include "swat/resource_model.hpp"

namespace swat {

Watts swat_power(const SwatConfig& cfg) {
  const hw::ResourceVector used = estimate_resources(cfg).total();

  hw::PowerCoefficients coeff;
  coeff.static_power = Watts{calib::kStaticWatts};
  coeff.reference_clock = calib::kSwatClock;
  coeff.dsp_mw = calib::kDspMilliwatts;
  coeff.lut_mw = calib::kLutMilliwatts;
  coeff.ff_mw = calib::kFfMilliwatts;
  coeff.bram_mw = calib::kBramMilliwatts;
  coeff.hbm_w_per_gbps = calib::kHbmWattsPerGbps;

  hw::Activity act;
  act.dsp_toggle = calib::kSwatDspToggle;
  act.lut_toggle = calib::kSwatLutToggle;
  act.ff_toggle = calib::kSwatFfToggle;
  act.bram_toggle = calib::kSwatBramToggle;
  // Streaming bandwidth is sequence-length independent (bytes/row over a
  // fixed row interval); evaluate at a representative length.
  act.hbm_gbps = AnalyticModel(cfg).achieved_gbps(4096) *
                 static_cast<double>(cfg.pipelines);

  return hw::estimate_power(coeff, used, cfg.clock, act);
}

Joules swat_head_energy(const SwatConfig& cfg, std::int64_t seq_len) {
  return energy(swat_power(cfg), AnalyticModel(cfg).head_time(seq_len));
}

Joules swat_model_energy(const SwatConfig& cfg, std::int64_t seq_len,
                         int heads, int layers) {
  return energy(swat_power(cfg),
                AnalyticModel(cfg).model_time(seq_len, heads, layers));
}

}  // namespace swat
