// An allocator adaptor that default-initializes instead of
// value-initializing (src/common/uninit_allocator).
//
// `std::vector<T>::resize` value-initializes new elements — for
// trivial T that is a memset over the whole allocation, and on Linux
// that write is the *first touch* that binds each page to the NUMA
// node of whichever thread performed it. The packed-weight buffers
// want the opposite: allocate without touching, then let the
// parallel pack loop perform the first write of every element on the
// thread (and therefore the node) that will later read it. Wrapping
// the element type's allocator with DefaultInitAllocator makes
// resize() default-initialize, which for trivial types is a no-op —
// pages stay untouched until the pack fill writes them.
//
// The pack loop writes every element of the buffer exactly once
// (values and padding both), so skipping the zero-fill does not leak
// indeterminate values into results.
#pragma once

#include <memory>
#include <utility>

namespace swat {

template <typename T, typename A = std::allocator<T>>
class DefaultInitAllocator : public A {
  using traits = std::allocator_traits<A>;

 public:
  template <typename U>
  struct rebind {
    using other =
        DefaultInitAllocator<U, typename traits::template rebind_alloc<U>>;
  };

  using A::A;

  // Plain `new (p) U` instead of the base allocator's
  // value-initializing `new (p) U()`: trivial types are left
  // uninitialized (and their pages untouched).
  template <typename U>
  void construct(U* ptr) noexcept(
      std::is_nothrow_default_constructible_v<U>) {
    ::new (static_cast<void*>(ptr)) U;
  }

  // Constructions with arguments keep the base allocator's behavior.
  template <typename U, typename... Args>
  void construct(U* ptr, Args&&... args) {
    traits::construct(static_cast<A&>(*this), ptr,
                      std::forward<Args>(args)...);
  }
};

}  // namespace swat
