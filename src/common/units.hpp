// Strong unit types for the quantities the performance models trade in.
//
// The models convert between cycles, seconds, joules and bytes constantly;
// a bare `double` interface invites unit mistakes (P.1 "express ideas
// directly in code", I.4 "make interfaces precisely and strongly typed").
// Each wrapper is a trivially-copyable value type with explicit conversion
// helpers; arithmetic is restricted to operations that make dimensional
// sense.
#pragma once

#include <compare>
#include <cstdint>

#include "common/contracts.hpp"

namespace swat {

/// A count of clock cycles on some clock domain.
struct Cycles {
  std::uint64_t count = 0;

  constexpr Cycles() = default;
  constexpr explicit Cycles(std::uint64_t c) : count(c) {}

  friend constexpr Cycles operator+(Cycles a, Cycles b) {
    return Cycles{a.count + b.count};
  }
  friend constexpr Cycles operator*(Cycles a, std::uint64_t k) {
    return Cycles{a.count * k};
  }
  friend constexpr Cycles operator*(std::uint64_t k, Cycles a) {
    return a * k;
  }
  constexpr Cycles& operator+=(Cycles o) {
    count += o.count;
    return *this;
  }
  friend constexpr auto operator<=>(Cycles, Cycles) = default;
};

/// Clock frequency in hertz.
struct Hertz {
  double hz = 0.0;

  constexpr Hertz() = default;
  constexpr explicit Hertz(double v) : hz(v) {}
  static constexpr Hertz mega(double mhz) { return Hertz{mhz * 1e6}; }
  friend constexpr auto operator<=>(Hertz, Hertz) = default;
};

/// Wall-clock duration in seconds.
struct Seconds {
  double value = 0.0;

  constexpr Seconds() = default;
  constexpr explicit Seconds(double v) : value(v) {}
  static constexpr Seconds milli(double ms) { return Seconds{ms * 1e-3}; }
  static constexpr Seconds micro(double us) { return Seconds{us * 1e-6}; }

  constexpr double milliseconds() const { return value * 1e3; }
  constexpr double microseconds() const { return value * 1e6; }

  friend constexpr Seconds operator+(Seconds a, Seconds b) {
    return Seconds{a.value + b.value};
  }
  friend constexpr Seconds operator*(Seconds a, double k) {
    return Seconds{a.value * k};
  }
  friend constexpr Seconds operator*(double k, Seconds a) { return a * k; }
  friend constexpr double operator/(Seconds a, Seconds b) {
    return a.value / b.value;
  }
  constexpr Seconds& operator+=(Seconds o) {
    value += o.value;
    return *this;
  }
  friend constexpr auto operator<=>(Seconds, Seconds) = default;
};

/// Electrical power in watts.
struct Watts {
  double value = 0.0;

  constexpr Watts() = default;
  constexpr explicit Watts(double v) : value(v) {}
  friend constexpr Watts operator+(Watts a, Watts b) {
    return Watts{a.value + b.value};
  }
  constexpr Watts& operator+=(Watts o) {
    value += o.value;
    return *this;
  }
  friend constexpr auto operator<=>(Watts, Watts) = default;
};

/// Energy in joules.
struct Joules {
  double value = 0.0;

  constexpr Joules() = default;
  constexpr explicit Joules(double v) : value(v) {}
  constexpr double millijoules() const { return value * 1e3; }
  friend constexpr Joules operator+(Joules a, Joules b) {
    return Joules{a.value + b.value};
  }
  friend constexpr double operator/(Joules a, Joules b) {
    return a.value / b.value;
  }
  friend constexpr auto operator<=>(Joules, Joules) = default;
};

/// Memory size / traffic volume in bytes.
struct Bytes {
  std::uint64_t count = 0;

  constexpr Bytes() = default;
  constexpr explicit Bytes(std::uint64_t c) : count(c) {}
  static constexpr Bytes kibi(std::uint64_t k) { return Bytes{k << 10}; }
  static constexpr Bytes mebi(std::uint64_t m) { return Bytes{m << 20}; }

  constexpr double mebibytes() const {
    return static_cast<double>(count) / (1024.0 * 1024.0);
  }

  friend constexpr Bytes operator+(Bytes a, Bytes b) {
    return Bytes{a.count + b.count};
  }
  friend constexpr Bytes operator*(Bytes a, std::uint64_t k) {
    return Bytes{a.count * k};
  }
  friend constexpr Bytes operator*(std::uint64_t k, Bytes a) { return a * k; }
  constexpr Bytes& operator+=(Bytes o) {
    count += o.count;
    return *this;
  }
  friend constexpr auto operator<=>(Bytes, Bytes) = default;
};

/// Convert a cycle count at a given frequency to wall-clock time.
constexpr Seconds to_seconds(Cycles c, Hertz f) {
  return Seconds{static_cast<double>(c.count) / f.hz};
}

/// Energy = average power * duration.
constexpr Joules energy(Watts p, Seconds t) {
  return Joules{p.value * t.value};
}

}  // namespace swat
