// A small fork-join thread pool with a `parallel_for` primitive, used to
// parallelize the host-side kernel hot paths (GEMM row blocks, sliding-chunk
// tiles, per-head attention, per-row softmax/SV phases).
//
// Design constraints, in order:
//  1. Determinism: parallel_for only partitions an index range; every index
//     is processed exactly once by exactly one thread, and the per-index
//     computation must not depend on the partition. All kernels in this
//     repository obey that, so results are bit-identical for any thread
//     count — a property the tests assert for thread counts {1, 4}.
//  2. Re-entrancy: a parallel_for issued from inside a worker (e.g. a
//     parallel GEMM called from a parallel per-head loop) degrades to a
//     serial inline call instead of deadlocking the pool.
//  3. Zero cost when disabled: with one thread (the default when
//     `SWAT_THREADS=1` or the machine has one core) the body runs inline
//     with no synchronization at all.
//
// Thread count resolution: `SWAT_THREADS` environment variable if set
// (hardened parse — see parse_thread_count), otherwise
// std::thread::hardware_concurrency(); override at runtime with
// set_num_threads().
//
// Placement: pools are also instantiable directly (the process-wide
// instance() stays the default) with an optional CpuSet — workers pin
// themselves to it via pthread_setaffinity_np (a documented no-op off
// Linux). The serving pool's partitioned placement builds one pinned
// pool per engine replica and routes that replica's kernel fan-outs
// through it with a ScopedPoolBinding: the free parallel_for /
// parallel_for_2d templates dispatch to the thread's bound pool when
// one is active, so no kernel call site changes and the bit-exactness
// contract (results independent of thread count AND of which pool ran
// the partition) is untouched.
#pragma once

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/contracts.hpp"
#include "common/topology.hpp"

namespace swat {

class ThreadPool {
 public:
  /// The process-wide pool. Lazily constructed on first use.
  static ThreadPool& instance();

  /// A standalone pool of `n` threads (workers + the caller; n >= 1).
  /// When `affinity` is non-empty every worker pins itself to it at
  /// startup (group-level pinning: each worker may run on any CPU of
  /// the set — the set, typically one replica's core group, is the
  /// locality unit, not individual CPUs). Pinning failures are counted,
  /// not fatal: pinned_workers() reports how many stuck.
  explicit ThreadPool(int n, CpuSet affinity = {});

  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// The CpuSet the workers pin to (empty = unpinned).
  const CpuSet& affinity() const { return affinity_; }

  /// Workers whose set-affinity call succeeded (0 on non-Linux hosts or
  /// for unpinned pools; at most num_threads() - 1 — the caller thread
  /// is not the pool's to pin).
  int pinned_workers() const {
    return pinned_workers_.load(std::memory_order_relaxed);
  }

  /// Total number of threads that execute work (workers + the caller).
  int num_threads() const {
    return num_threads_.load(std::memory_order_relaxed);
  }

  /// Resize the pool. `n >= 1`; n == 1 means "everything inline"; the
  /// pool's affinity set is retained across resizes. CONTRACT: must not
  /// be called while a parallel_for is in flight on this pool from any
  /// thread — the worker set is torn down and rebuilt, which would
  /// strand the in-flight caller. The misuse is enforced, not just
  /// documented: the active-job check under the pool mutex throws
  /// std::invalid_argument (SWAT_EXPECTS) before any teardown happens,
  /// so a racing resize fails loudly and the running parallel_for
  /// completes untouched (regression-tested in tests/test_thread_pool
  /// .cpp, SetNumThreadsDuringParallelForIsRejected).
  void set_num_threads(int n);

  /// Invoke `fn(ctx, chunk_begin, chunk_end)` over a partition of
  /// [begin, end). `grain` is the minimum number of indices per chunk;
  /// ranges not longer than `grain` (or with one thread, or issued from
  /// inside a worker) run inline on the calling thread. Blocks until the
  /// whole range is done. The callable is a raw (fn, ctx) pair rather than
  /// a std::function — the free-function `parallel_for` template routes
  /// here so a dispatched fork-join costs exactly one Job allocation (the
  /// shared_ptr that keeps stragglers safe) and nothing for the callable,
  /// and an inline run performs zero heap allocations.
  void parallel_for_raw(std::int64_t begin, std::int64_t end,
                        std::int64_t grain,
                        void (*fn)(void*, std::int64_t, std::int64_t),
                        void* ctx);

 private:
  void start_workers(int n);
  void stop_workers();
  void worker_loop();

  // One fork-join job: chunks are claimed via an atomic cursor so faster
  // threads steal more of the range; `done` counts completed chunks. The
  // first exception thrown by any chunk is captured and rethrown on the
  // calling thread (remaining chunks are skipped, not aborted mid-flight).
  // The callable is a raw (fn, ctx) pair — the caller blocks until the job
  // completes, so the context outlives every chunk by construction.
  struct Job {
    std::int64_t begin = 0;
    std::int64_t chunk = 1;
    std::int64_t num_chunks = 0;
    std::int64_t end = 0;
    void (*fn)(void*, std::int64_t, std::int64_t) = nullptr;
    void* ctx = nullptr;
    std::atomic<std::int64_t> next{0};
    std::atomic<std::int64_t> done{0};
    std::mutex error_mutex;
    std::exception_ptr error;
  };

  void run_chunks(Job& job);

  std::atomic<int> num_threads_{1};
  CpuSet affinity_;  ///< immutable after construction
  std::atomic<int> pinned_workers_{0};
  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::shared_ptr<Job> job_;       // current job, guarded by mutex_
  std::uint64_t job_epoch_ = 0;    // bumped per job so sleeping workers skip
  bool stopping_ = false;
};

/// Convenience wrappers over ThreadPool::instance().
int num_threads();
void set_num_threads(int n);

/// Hardened SWAT_THREADS parsing (unit-tested in tests/test_placement
/// .cpp). Returns `fallback` when `text` is null; otherwise the parsed
/// count with out-of-contract values clamped instead of flowing through
/// unchecked: non-numeric / empty / trailing-junk input falls back,
/// zero and negatives clamp to 1, and overflow (or anything above the
/// 1024-thread rail) clamps to 1024. Every clamp/fallback writes a
/// message into *warning (cleared otherwise) — the pool's first
/// construction prints it to stderr exactly once.
int parse_thread_count(const char* text, int fallback,
                       std::string* warning = nullptr);

/// The pool the free parallel_for/parallel_for_2d templates dispatch
/// to: the calling thread's bound pool while a ScopedPoolBinding is
/// active, else ThreadPool::instance(). Kernels never call this
/// directly — it exists so per-replica pinned pools reach every kernel
/// fan-out without touching any kernel call site.
ThreadPool& current_pool();

/// RAII thread-local pool binding: for its scope, the calling thread's
/// parallel_for/parallel_for_2d calls dispatch to `pool` instead of the
/// process-wide instance (nullptr = no-op, keep the current routing).
/// Bindings nest and restore the previous binding on destruction. Only
/// the constructing thread is affected — the binding is how Engine::run
/// routes one replica's kernels onto that replica's pinned pool.
class ScopedPoolBinding {
 public:
  explicit ScopedPoolBinding(ThreadPool* pool);
  ~ScopedPoolBinding();
  ScopedPoolBinding(const ScopedPoolBinding&) = delete;
  ScopedPoolBinding& operator=(const ScopedPoolBinding&) = delete;

 private:
  ThreadPool* prev_ = nullptr;
  bool active_ = false;
};

/// Fork-join over [begin, end) on an explicit pool. Accepts any
/// callable `body(chunk_begin, chunk_end)` without erasing it into a
/// std::function: ranges that run inline (one thread, range <= grain, or a
/// nested call from pool work) invoke the body directly and perform zero
/// heap allocations — the property the compiled execution plan's
/// steady-state guarantee (tests/test_runtime.cpp) stands on. Dispatched
/// ranges cost one Job allocation regardless of the body's capture size.
template <typename Body>
void parallel_for(ThreadPool& pool, std::int64_t begin, std::int64_t end,
                  std::int64_t grain, const Body& body) {
  // The inline-vs-dispatch decision (one thread, range <= grain, nested in
  // pool work) lives in parallel_for_raw; the thunk is a capture-less
  // lambda, so this call never boxes the body into a std::function and the
  // inline path performs zero heap allocations.
  pool.parallel_for_raw(
      begin, end, grain,
      [](void* ctx, std::int64_t b, std::int64_t e) {
        (*static_cast<const Body*>(ctx))(b, e);
      },
      const_cast<void*>(static_cast<const void*>(&body)));
}

/// Fork-join over [begin, end) on the calling thread's current pool —
/// the process-wide instance, or the bound per-replica pool while a
/// ScopedPoolBinding is active. Same contract as the explicit-pool
/// overload above; this is the form every kernel call site uses.
template <typename Body>
void parallel_for(std::int64_t begin, std::int64_t end, std::int64_t grain,
                  const Body& body) {
  parallel_for(current_pool(), begin, end, grain, body);
}

/// Fork-join over a 2D tile grid: [0, rows) x [0, cols) cut into tiles of
/// at most row_grain x col_grain, each tile visited exactly once as
/// `body(row_begin, row_end, col_begin, col_end)`. The grid is flattened
/// row-tile-major onto parallel_for, so it inherits the pool's properties:
/// deterministic for any thread count (the partition of tiles over threads
/// varies, the tiles themselves do not), inline (and allocation-free) for
/// single-tile grids or nested calls, one Job allocation otherwise. This is
/// the fan-out of the packed-weight GEMM, whose output tiles are disjoint
/// (row panel x column panel) rectangles. Explicit-pool overload first;
/// the pool-less form routes through current_pool() like parallel_for.
template <typename Body>
void parallel_for_2d(ThreadPool& pool, std::int64_t rows,
                     std::int64_t row_grain, std::int64_t cols,
                     std::int64_t col_grain, const Body& body) {
  SWAT_EXPECTS(row_grain >= 1 && col_grain >= 1);
  if (rows <= 0 || cols <= 0) return;
  const std::int64_t row_tiles = (rows + row_grain - 1) / row_grain;
  const std::int64_t col_tiles = (cols + col_grain - 1) / col_grain;
  parallel_for(pool, 0, row_tiles * col_tiles, 1,
               [&](std::int64_t t0, std::int64_t t1) {
                 for (std::int64_t t = t0; t < t1; ++t) {
                   const std::int64_t rt = t / col_tiles;
                   const std::int64_t ct = t % col_tiles;
                   const std::int64_t r0 = rt * row_grain;
                   const std::int64_t c0 = ct * col_grain;
                   body(r0, std::min(r0 + row_grain, rows), c0,
                        std::min(c0 + col_grain, cols));
                 }
               });
}

template <typename Body>
void parallel_for_2d(std::int64_t rows, std::int64_t row_grain,
                     std::int64_t cols, std::int64_t col_grain,
                     const Body& body) {
  parallel_for_2d(current_pool(), rows, row_grain, cols, col_grain, body);
}

}  // namespace swat
