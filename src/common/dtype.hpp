// Numeric-format descriptors shared by the functional simulator and the
// performance/resource models.
//
// SWAT is synthesized in two precisions (paper Table 2 / §5.4): FP16 for the
// main design and FP32 for the apples-to-apples GPU comparison. The choice
// changes (a) arithmetic rounding in the functional model, (b) the MAC
// initiation interval and hence the pipeline II (201 vs 264 cycles), and
// (c) per-operator resource costs.
#pragma once

#include <cstdint>
#include <string_view>

#include "common/contracts.hpp"

namespace swat {

enum class Dtype : std::uint8_t {
  kFp16,  ///< IEEE-754 binary16 (the paper's default datapath)
  kFp32,  ///< IEEE-754 binary32 (comparison configuration, §5.4)
};

/// Size of one element in bytes; determines off-chip traffic volume.
constexpr std::uint32_t dtype_bytes(Dtype d) {
  return d == Dtype::kFp16 ? 2u : 4u;
}

/// Initiation interval of the pipelined MAC for this datatype on the U55C
/// fabric (paper §4: FP16 MAC pipelined at II = 3; the FP32 configuration's
/// 264-cycle pipeline for H = 64 implies II = 4).
constexpr std::uint32_t mac_initiation_interval(Dtype d) {
  return d == Dtype::kFp16 ? 3u : 4u;
}

constexpr std::string_view dtype_name(Dtype d) {
  return d == Dtype::kFp16 ? "fp16" : "fp32";
}

}  // namespace swat
