#include "common/rng.hpp"

#include <algorithm>
#include <unordered_set>

#include "common/contracts.hpp"

namespace swat {

std::vector<std::int64_t> Rng::sample_without_replacement(std::int64_t n,
                                                          std::int64_t k) {
  SWAT_EXPECTS(n >= 0 && k >= 0 && k <= n);
  std::vector<std::int64_t> out;
  out.reserve(static_cast<std::size_t>(k));
  if (k == 0) return out;

  if (k * 3 >= n) {
    // Dense case: partial Fisher-Yates over the full index range.
    std::vector<std::int64_t> idx(static_cast<std::size_t>(n));
    for (std::int64_t i = 0; i < n; ++i) idx[static_cast<std::size_t>(i)] = i;
    for (std::int64_t i = 0; i < k; ++i) {
      const std::int64_t j = integer(i, n - 1);
      std::swap(idx[static_cast<std::size_t>(i)],
                idx[static_cast<std::size_t>(j)]);
    }
    out.assign(idx.begin(), idx.begin() + static_cast<std::ptrdiff_t>(k));
  } else {
    // Sparse case: rejection sampling.
    std::unordered_set<std::int64_t> seen;
    while (static_cast<std::int64_t>(out.size()) < k) {
      const std::int64_t v = integer(0, n - 1);
      if (seen.insert(v).second) out.push_back(v);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace swat
