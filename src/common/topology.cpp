#include "common/topology.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <thread>

#include "common/contracts.hpp"

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace swat {

namespace fs = std::filesystem;

namespace {

/// Strict non-negative integer parse for cpulist items; -1 on junk.
int parse_cpu_id(const std::string& text) {
  if (text.empty()) return -1;
  int value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return -1;
    value = value * 10 + (c - '0');
    if (value >= CpuSet::kMaxCpus) return -1;
  }
  return value;
}

std::string trimmed(const std::string& text) {
  const auto begin = text.find_first_not_of(" \t\r\n");
  if (begin == std::string::npos) return "";
  const auto end = text.find_last_not_of(" \t\r\n");
  return text.substr(begin, end - begin + 1);
}

/// First line of a file, or empty when unreadable.
std::string read_line(const fs::path& path) {
  std::ifstream in(path);
  if (!in) return "";
  std::string line;
  std::getline(in, line);
  return trimmed(line);
}

/// "cpu12" -> 12; -1 for anything else.
int cpu_dir_id(const std::string& name) {
  if (name.size() < 4 || name.compare(0, 3, "cpu") != 0) return -1;
  return parse_cpu_id(name.substr(3));
}

/// "node3" -> 3; -1 for anything else.
int node_dir_id(const std::string& name) {
  if (name.size() < 5 || name.compare(0, 4, "node") != 0) return -1;
  return parse_cpu_id(name.substr(4));
}

}  // namespace

CpuSet CpuSet::parse(const std::string& text) {
  CpuSet set;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t comma = std::min(text.find(',', pos), text.size());
    const std::string item = trimmed(text.substr(pos, comma - pos));
    if (item.empty()) {
      throw std::invalid_argument(
          "CpuSet::parse: empty item in cpulist \"" + text +
          "\" — expected a comma/range list like \"0-3,8\"");
    }
    const std::size_t dash = item.find('-');
    if (dash == std::string::npos) {
      const int cpu = parse_cpu_id(item);
      if (cpu < 0) {
        throw std::invalid_argument(
            "CpuSet::parse: bad cpu id \"" + item + "\" in cpulist \"" +
            text + "\" (ids are integers in [0, " +
            std::to_string(kMaxCpus) + "))");
      }
      set.add(cpu);
    } else {
      const int lo = parse_cpu_id(trimmed(item.substr(0, dash)));
      const int hi = parse_cpu_id(trimmed(item.substr(dash + 1)));
      if (lo < 0 || hi < 0 || hi < lo) {
        throw std::invalid_argument(
            "CpuSet::parse: bad range \"" + item + "\" in cpulist \"" +
            text + "\" (want lo-hi with 0 <= lo <= hi < " +
            std::to_string(kMaxCpus) + ")");
      }
      for (int cpu = lo; cpu <= hi; ++cpu) set.add(cpu);
    }
    pos = comma + 1;
    if (comma == text.size()) break;
  }
  return set;
}

void CpuSet::add(int cpu) {
  SWAT_EXPECTS(cpu >= 0 && cpu < kMaxCpus);
  const auto it = std::lower_bound(cpus_.begin(), cpus_.end(), cpu);
  if (it == cpus_.end() || *it != cpu) cpus_.insert(it, cpu);
}

bool CpuSet::contains(int cpu) const {
  return std::binary_search(cpus_.begin(), cpus_.end(), cpu);
}

std::string CpuSet::to_string() const {
  std::string out;
  std::size_t i = 0;
  while (i < cpus_.size()) {
    std::size_t j = i;
    while (j + 1 < cpus_.size() && cpus_[j + 1] == cpus_[j] + 1) ++j;
    if (!out.empty()) out += ',';
    out += std::to_string(cpus_[i]);
    if (j > i) out += '-' + std::to_string(cpus_[j]);
    i = j + 1;
  }
  return out;
}

CpuSet CpuSet::intersect(const CpuSet& other) const {
  CpuSet out;
  std::set_intersection(cpus_.begin(), cpus_.end(), other.cpus_.begin(),
                        other.cpus_.end(), std::back_inserter(out.cpus_));
  return out;
}

int Topology::core_count() const {
  std::vector<std::pair<int, int>> cores;
  cores.reserve(cpus.size());
  for (const TopologyCpu& c : cpus) cores.emplace_back(c.node, c.core);
  std::sort(cores.begin(), cores.end());
  cores.erase(std::unique(cores.begin(), cores.end()), cores.end());
  return static_cast<int>(cores.size());
}

CpuSet Topology::node_cpus(int node) const {
  CpuSet out;
  for (const TopologyCpu& c : cpus) {
    if (c.node == node) out.add(c.cpu);
  }
  return out;
}

int Topology::node_of(int cpu) const {
  for (const TopologyCpu& c : cpus) {
    if (c.cpu == cpu) return c.node;
  }
  return -1;
}

std::vector<CpuSet> Topology::partition(std::size_t groups) const {
  SWAT_EXPECTS(groups >= 1);
  const std::size_t total = cpus.size();
  if (groups > total) return {};  // caller falls back to shared placement
  std::vector<CpuSet> out(groups);
  const std::size_t base = total / groups;
  const std::size_t extra = total % groups;  // first `extra` groups get +1
  std::size_t next = 0;
  for (std::size_t g = 0; g < groups; ++g) {
    const std::size_t width = base + (g < extra ? 1 : 0);
    for (std::size_t i = 0; i < width; ++i) out[g].add(cpus[next++].cpu);
  }
  SWAT_ENSURES(next == total);
  return out;
}

Topology discover_topology_at(const std::string& sysfs_cpu_root,
                              int fallback_cpus,
                              const char* cpuset_override) {
  const fs::path root(sysfs_cpu_root);
  std::error_code ec;

  // Online CPUs: the `online` cpulist file when present, else every cpuN
  // directory, else the flat fallback.
  CpuSet online;
  const std::string online_text = read_line(root / "online");
  if (!online_text.empty()) {
    try {
      online = CpuSet::parse(online_text);
    } catch (const std::invalid_argument&) {
      // A garbled online file is treated like a missing one.
    }
  }
  if (online.empty() && fs::is_directory(root, ec)) {
    for (const fs::directory_entry& entry : fs::directory_iterator(root, ec)) {
      const int cpu = cpu_dir_id(entry.path().filename().string());
      if (cpu >= 0) online.add(cpu);
    }
  }
  if (online.empty()) {
    for (int cpu = 0; cpu < std::max(1, fallback_cpus); ++cpu) {
      online.add(cpu);
    }
  }

  // SWAT_CPUSET: most restrictive wins, but never restrict to nothing —
  // a malformed or disjoint override is ignored (with a warning), not
  // allowed to make serving impossible.
  CpuSet allowed = online;
  if (cpuset_override != nullptr && *cpuset_override != '\0') {
    try {
      const CpuSet narrowed = allowed.intersect(CpuSet::parse(cpuset_override));
      if (narrowed.empty()) {
        std::fprintf(stderr,
                     "swat: warning: SWAT_CPUSET=\"%s\" excludes every "
                     "available cpu (%s) — override ignored\n",
                     cpuset_override, allowed.to_string().c_str());
      } else {
        allowed = narrowed;
      }
    } catch (const std::invalid_argument& err) {
      std::fprintf(stderr, "swat: warning: %s — SWAT_CPUSET ignored\n",
                   err.what());
    }
  }

  Topology topo;
  topo.allowed = allowed;
  topo.cpus.reserve(static_cast<std::size_t>(allowed.count()));
  int max_node = 0;
  for (const int cpu : allowed.cpus()) {
    TopologyCpu entry;
    entry.cpu = cpu;
    entry.core = cpu;  // fallback: every cpu its own core
    entry.node = 0;
    const fs::path cpu_dir = root / ("cpu" + std::to_string(cpu));
    const int core = parse_cpu_id(read_line(cpu_dir / "topology" / "core_id"));
    if (core >= 0) entry.core = core;
    if (fs::is_directory(cpu_dir, ec)) {
      for (const fs::directory_entry& sub :
           fs::directory_iterator(cpu_dir, ec)) {
        const int node = node_dir_id(sub.path().filename().string());
        if (node >= 0) {
          entry.node = node;
          break;
        }
      }
    }
    max_node = std::max(max_node, entry.node);
    topo.cpus.push_back(entry);
  }
  topo.node_count = max_node + 1;
  // Locality order: node-major, core-major, so SMT siblings are adjacent
  // and contiguous partition slices stay within as few nodes as possible.
  std::stable_sort(topo.cpus.begin(), topo.cpus.end(),
                   [](const TopologyCpu& a, const TopologyCpu& b) {
                     if (a.node != b.node) return a.node < b.node;
                     if (a.core != b.core) return a.core < b.core;
                     return a.cpu < b.cpu;
                   });
  return topo;
}

Topology discover_topology() {
  const unsigned hc = std::thread::hardware_concurrency();
  Topology topo = discover_topology_at(
      "/sys/devices/system/cpu", hc == 0 ? 1 : static_cast<int>(hc),
      std::getenv("SWAT_CPUSET"));
  // Respect an external restriction (taskset, a container cpuset): the
  // partitioner may only hand out CPUs this process is allowed to run on.
  const CpuSet mask = current_thread_affinity();
  if (!mask.empty()) {
    const CpuSet narrowed = topo.allowed.intersect(mask);
    if (!narrowed.empty() && narrowed.count() < topo.allowed.count()) {
      topo.allowed = narrowed;
      std::erase_if(topo.cpus, [&](const TopologyCpu& c) {
        return !narrowed.contains(c.cpu);
      });
    }
  }
  return topo;
}

bool pin_current_thread(const CpuSet& cpus) {
  if (cpus.empty()) return false;
#if defined(__linux__)
  cpu_set_t mask;
  CPU_ZERO(&mask);
  for (const int cpu : cpus.cpus()) {
    if (cpu < CPU_SETSIZE) CPU_SET(cpu, &mask);
  }
  return pthread_setaffinity_np(pthread_self(), sizeof(mask), &mask) == 0;
#else
  return false;  // pinning is a documented no-op off Linux
#endif
}

CpuSet current_thread_affinity() {
  CpuSet set;
#if defined(__linux__)
  cpu_set_t mask;
  CPU_ZERO(&mask);
  if (pthread_getaffinity_np(pthread_self(), sizeof(mask), &mask) == 0) {
    for (int cpu = 0; cpu < CPU_SETSIZE; ++cpu) {
      if (CPU_ISSET(cpu, &mask)) set.add(cpu);
    }
  }
#endif
  return set;
}

}  // namespace swat
