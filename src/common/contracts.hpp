// Contract-checking macros in the spirit of the C++ Core Guidelines
// (I.5/I.6 "state preconditions", I.7/I.8 "state postconditions").
//
// SWAT_EXPECTS(cond)      - precondition; throws std::invalid_argument.
// SWAT_ENSURES(cond)      - postcondition / internal invariant; throws
//                           std::logic_error (a violated ENSURES is a bug in
//                           the library, not in the caller).
// SWAT_CHECK_BOUNDS(cond) - per-element bounds contract on the hot accessor
//                           paths (Matrix::operator(), Matrix::row). Active
//                           in debug builds and whenever SWAT_CHECKED is
//                           defined; compiles to nothing in plain Release
//                           builds so the checked accessors stop taxing the
//                           kernel inner loops.
//
// The throwing macros stringify the condition and prepend file:line so that
// a failed contract in a deep simulation loop is directly actionable.
//
// SWAT_CHECKED must be configured uniformly for a whole build tree (the
// CMake option applies it globally): Matrix's accessors are inline, and
// mixing checked/unchecked instantiations across TUs would violate the ODR.
#pragma once

#include <stdexcept>
#include <string>

// SWAT_NO_FP_CONTRACT / SWAT_NO_FP_CONTRACT_BODY — pin a kernel's
// floating-point semantics to "round every multiply, then add" regardless
// of the target ISA. Compilers with -ffp-contract=fast (GCC's default)
// otherwise fuse a*b+c into an FMA wherever the ISA has one, which changes
// the low bits between -march=native and portable builds. The kernels that
// promise bit-identical results against a scalar oracle (the packed GEMM
// microkernel, `dot`, `axpy`, the fused streaming attention) carry these
// markers so their outputs are identical on every ISA, thread count, and
// tile partition. Apply SWAT_NO_FP_CONTRACT to the function declaration
// (GCC honors the attribute) and SWAT_NO_FP_CONTRACT_BODY as the first
// statement of the body (Clang honors the pragma).
#if defined(__clang__)
#define SWAT_NO_FP_CONTRACT
#define SWAT_NO_FP_CONTRACT_BODY _Pragma("clang fp contract(off)")
#elif defined(__GNUC__)
#define SWAT_NO_FP_CONTRACT __attribute__((optimize("fp-contract=off")))
#define SWAT_NO_FP_CONTRACT_BODY
#else
#define SWAT_NO_FP_CONTRACT
#define SWAT_NO_FP_CONTRACT_BODY
#endif

namespace swat::detail {

[[noreturn]] inline void contract_violation_expects(const char* cond,
                                                    const char* file,
                                                    int line) {
  throw std::invalid_argument(std::string("precondition failed: ") + cond +
                              " at " + file + ":" + std::to_string(line));
}

[[noreturn]] inline void contract_violation_ensures(const char* cond,
                                                    const char* file,
                                                    int line) {
  throw std::logic_error(std::string("invariant failed: ") + cond + " at " +
                         file + ":" + std::to_string(line));
}

}  // namespace swat::detail

#define SWAT_EXPECTS(cond)                                              \
  do {                                                                  \
    if (!(cond))                                                        \
      ::swat::detail::contract_violation_expects(#cond, __FILE__,       \
                                                 __LINE__);             \
  } while (false)

#define SWAT_ENSURES(cond)                                              \
  do {                                                                  \
    if (!(cond))                                                        \
      ::swat::detail::contract_violation_ensures(#cond, __FILE__,       \
                                                 __LINE__);             \
  } while (false)

#if defined(SWAT_CHECKED) || !defined(NDEBUG)
#define SWAT_BOUNDS_CHECKED 1
#define SWAT_CHECK_BOUNDS(cond) SWAT_EXPECTS(cond)
#else
#define SWAT_BOUNDS_CHECKED 0
#define SWAT_CHECK_BOUNDS(cond) \
  do {                          \
  } while (false)
#endif
