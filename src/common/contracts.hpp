// Contract-checking macros in the spirit of the C++ Core Guidelines
// (I.5/I.6 "state preconditions", I.7/I.8 "state postconditions").
//
// SWAT_EXPECTS(cond)  - precondition; throws std::invalid_argument.
// SWAT_ENSURES(cond)  - postcondition / internal invariant; throws
//                       std::logic_error (a violated ENSURES is a bug in the
//                       library, not in the caller).
//
// Both macros stringify the condition and prepend file:line so that a failed
// contract in a deep simulation loop is directly actionable.
#pragma once

#include <stdexcept>
#include <string>

namespace swat::detail {

[[noreturn]] inline void contract_violation_expects(const char* cond,
                                                    const char* file,
                                                    int line) {
  throw std::invalid_argument(std::string("precondition failed: ") + cond +
                              " at " + file + ":" + std::to_string(line));
}

[[noreturn]] inline void contract_violation_ensures(const char* cond,
                                                    const char* file,
                                                    int line) {
  throw std::logic_error(std::string("invariant failed: ") + cond + " at " +
                         file + ":" + std::to_string(line));
}

}  // namespace swat::detail

#define SWAT_EXPECTS(cond)                                              \
  do {                                                                  \
    if (!(cond))                                                        \
      ::swat::detail::contract_violation_expects(#cond, __FILE__,       \
                                                 __LINE__);             \
  } while (false)

#define SWAT_ENSURES(cond)                                              \
  do {                                                                  \
    if (!(cond))                                                        \
      ::swat::detail::contract_violation_ensures(#cond, __FILE__,       \
                                                 __LINE__);             \
  } while (false)
