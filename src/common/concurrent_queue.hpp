// Bounded MPMC hand-off primitives between request submitters and the
// serving scheduler thread (src/runtime/server.hpp):
//
//   * ConcurrentQueue   — the single-lane FIFO with condition-variable
//     backpressure;
//   * AdmissionQueue    — the class-aware form the server admits through:
//     one lane per SLO class, interactive drained first with aging so the
//     low-priority lane is never starved, and an overload policy
//     (kShedBulk) that sheds the bulk lane at a high-watermark while
//     interactive keeps admitting.
//
// Design constraints, in order:
//  1. Bounded: the queue holds at most `capacity` items, so a burst of
//     submitters cannot grow memory without limit. What happens at the
//     bound is the admission policy: kBlock parks the producer on a
//     condition variable until space frees (backpressure), kReject returns
//     false immediately (load shedding — the caller fails the request),
//     kShedBulk (AdmissionQueue only) rejects the bulk lane at the shed
//     watermark and the interactive lane only at full capacity — nothing
//     ever blocks, the production overload shape.
//  2. Clean shutdown: close() wakes every parked producer and consumer.
//     After close(), push() always fails, while pop() keeps draining the
//     items already admitted and only then reports exhaustion — nothing
//     admitted is ever silently dropped. discard() (AdmissionQueue) is the
//     failure path: take everything immediately so the caller can reject
//     each item's ticket cleanly instead of leaving it hung.
//  3. Simplicity over peak throughput: one mutex and two condition
//     variables. Items are whole inference requests (matrices), so the
//     per-item critical section is trivially cheap next to the payload;
//     a lock-free ring would buy nothing here.
//
// Fault points (common/fault_injection.hpp): "queue.push" and "queue.pop"
// cross at the AdmissionQueue entry points — latency injection models a
// slow admission path, kWake delivers a genuine spurious wakeup through
// poke() (every CV notified, no state changed), which the predicate-form
// waits must absorb.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "common/contracts.hpp"
#include "common/fault_injection.hpp"

namespace swat {

/// What push() does when the queue is at capacity.
enum class OverflowPolicy : std::uint8_t {
  kBlock,   ///< wait for a consumer to free a slot (backpressure)
  kReject,  ///< fail the push immediately (load shedding)
  /// AdmissionQueue only: shed the bulk lane at the watermark, the
  /// interactive lane at full capacity; never block a submitter.
  kShedBulk,
};

template <typename T>
class ConcurrentQueue {
 public:
  explicit ConcurrentQueue(std::size_t capacity,
                           OverflowPolicy policy = OverflowPolicy::kBlock)
      : capacity_(capacity), policy_(policy) {
    SWAT_EXPECTS(capacity >= 1);
    // kShedBulk is a class-aware policy; a single-lane queue has no bulk
    // lane to shed. Use AdmissionQueue.
    SWAT_EXPECTS(policy != OverflowPolicy::kShedBulk);
  }

  ConcurrentQueue(const ConcurrentQueue&) = delete;
  ConcurrentQueue& operator=(const ConcurrentQueue&) = delete;

  /// Enqueue one item. Returns false if the queue is closed, or full under
  /// kReject; under kBlock a full queue parks the caller until space frees
  /// or the queue closes. The item is moved from only on success.
  bool push(T& value) {
    std::unique_lock lock(mutex_);
    if (policy_ == OverflowPolicy::kBlock) {
      not_full_.wait(lock, [&] {
        return closed_ || items_.size() < capacity_;
      });
    }
    if (closed_ || items_.size() >= capacity_) return false;
    items_.push_back(std::move(value));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }
  bool push(T&& value) { return push(value); }

  /// Dequeue one item, blocking while the queue is empty and open.
  /// Returns nullopt only once the queue is closed AND drained.
  std::optional<T> pop() {
    std::unique_lock lock(mutex_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    return take(lock);
  }

  /// Dequeue one item if immediately available; never blocks.
  std::optional<T> try_pop() {
    std::unique_lock lock(mutex_);
    return take(lock);
  }

  /// Stop admission. Idempotent. Parked producers fail their push; parked
  /// consumers drain the remaining items and then see exhaustion.
  void close() {
    {
      std::lock_guard lock(mutex_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  bool closed() const {
    std::lock_guard lock(mutex_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard lock(mutex_);
    return items_.size();
  }

  std::size_t capacity() const { return capacity_; }
  OverflowPolicy policy() const { return policy_; }

 private:
  std::optional<T> take(std::unique_lock<std::mutex>& lock) {
    if (items_.empty()) return std::nullopt;
    std::optional<T> value(std::move(items_.front()));
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return value;
  }

  const std::size_t capacity_;
  const OverflowPolicy policy_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
};

/// Class-aware bounded MPMC admission structure: `Lanes` FIFO lanes under
/// one shared capacity, popped lane-0-first (the interactive SLO class)
/// with counter aging so lower lanes are never starved — after
/// `aging_interval` consecutive lane-0 pops while a lower lane waited, one
/// item from the oldest waiting lower lane is served.
///
/// Overflow policy, measured against the TOTAL occupancy:
///   kBlock    — any lane parks the producer until space frees;
///   kReject   — any lane fails at capacity;
///   kShedBulk — lanes > 0 fail once occupancy reaches `shed_watermark`
///               (reserving the remaining headroom for lane 0), lane 0
///               fails only at full capacity; nothing ever blocks.
template <typename T, std::size_t Lanes = 2>
class AdmissionQueue {
 public:
  static_assert(Lanes >= 1);

  /// Why a push was refused (kAdmitted means it was not).
  enum class Admission : std::uint8_t {
    kAdmitted,  ///< enqueued; the value was moved from
    kFull,      ///< at capacity (kReject, or lane 0 under kShedBulk)
    kShed,      ///< over the shed watermark (kShedBulk, lanes > 0)
    kClosed,    ///< the queue no longer admits
  };

  AdmissionQueue(std::size_t capacity, OverflowPolicy policy,
                 std::size_t shed_watermark, std::size_t aging_interval)
      : capacity_(capacity),
        policy_(policy),
        shed_watermark_(shed_watermark),
        aging_interval_(aging_interval) {
    SWAT_EXPECTS(capacity >= 1);
    SWAT_EXPECTS(shed_watermark >= 1 && shed_watermark <= capacity);
    SWAT_EXPECTS(aging_interval >= 1);
  }

  AdmissionQueue(const AdmissionQueue&) = delete;
  AdmissionQueue& operator=(const AdmissionQueue&) = delete;

  /// Enqueue into `lane`. The value is moved from only on kAdmitted.
  Admission push(T& value, std::size_t lane) {
    SWAT_EXPECTS(lane < Lanes);
    SWAT_FAULT_POINT_WAKE("queue.push", &AdmissionQueue::poke_raw, this);
    std::unique_lock lock(mutex_);
    if (policy_ == OverflowPolicy::kBlock) {
      not_full_.wait(lock, [&] { return closed_ || size_ < capacity_; });
    }
    if (closed_) return Admission::kClosed;
    if (policy_ == OverflowPolicy::kShedBulk && lane > 0 &&
        size_ >= shed_watermark_) {
      return Admission::kShed;
    }
    if (size_ >= capacity_) return Admission::kFull;
    lanes_[lane].push_back(std::move(value));
    ++size_;
    lock.unlock();
    not_empty_.notify_one();
    return Admission::kAdmitted;
  }

  /// Dequeue (item, lane), blocking while the queue is empty and open.
  /// Returns nullopt only once the queue is closed AND drained.
  std::optional<std::pair<T, std::size_t>> pop() {
    SWAT_FAULT_POINT_WAKE("queue.pop", &AdmissionQueue::poke_raw, this);
    std::unique_lock lock(mutex_);
    not_empty_.wait(lock, [&] { return closed_ || size_ > 0; });
    return take(lock);
  }

  /// Dequeue if immediately available; never blocks.
  std::optional<std::pair<T, std::size_t>> try_pop() {
    SWAT_FAULT_POINT_WAKE("queue.pop", &AdmissionQueue::poke_raw, this);
    std::unique_lock lock(mutex_);
    return take(lock);
  }

  /// Take everything still queued, immediately — the failure path: the
  /// caller rejects each item's ticket cleanly instead of leaving it to
  /// hang behind a scheduler that will never pop again. Items are returned
  /// in lane order (lane 0 first), FIFO within a lane.
  std::vector<std::pair<T, std::size_t>> discard() {
    std::vector<std::pair<T, std::size_t>> out;
    {
      std::lock_guard lock(mutex_);
      out.reserve(size_);
      for (std::size_t lane = 0; lane < Lanes; ++lane) {
        for (T& item : lanes_[lane]) out.emplace_back(std::move(item), lane);
        lanes_[lane].clear();
      }
      size_ = 0;
    }
    not_full_.notify_all();
    return out;
  }

  /// Stop admission. Idempotent. Parked producers fail their push; parked
  /// consumers drain the remaining items and then see exhaustion.
  void close() {
    {
      std::lock_guard lock(mutex_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  /// A spurious wakeup on demand: notify every condition variable without
  /// changing any state. Every wait here is predicate-form, so a poke can
  /// never change an outcome — which is exactly what the kWake fault
  /// injection proves.
  void poke() {
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  bool closed() const {
    std::lock_guard lock(mutex_);
    return closed_;
  }
  std::size_t size() const {
    std::lock_guard lock(mutex_);
    return size_;
  }
  std::size_t size(std::size_t lane) const {
    SWAT_EXPECTS(lane < Lanes);
    std::lock_guard lock(mutex_);
    return lanes_[lane].size();
  }
  std::size_t capacity() const { return capacity_; }
  OverflowPolicy policy() const { return policy_; }

 private:
  static void poke_raw(void* self) {
    static_cast<AdmissionQueue*>(self)->poke();
  }

  std::optional<std::pair<T, std::size_t>> take(
      std::unique_lock<std::mutex>& lock) {
    if (size_ == 0) return std::nullopt;
    const std::size_t lane = pick_lane();
    std::optional<std::pair<T, std::size_t>> value(
        std::in_place, std::move(lanes_[lane].front()), lane);
    lanes_[lane].pop_front();
    --size_;
    lock.unlock();
    not_full_.notify_one();
    return value;
  }

  /// Lane 0 first; aging serves one waiting lower-lane item after
  /// `aging_interval` consecutive lane-0 pops made while a lower lane had
  /// work. Requires size_ > 0.
  std::size_t pick_lane() {
    std::size_t lower = Lanes;  // oldest non-empty lane below interactive
    for (std::size_t lane = 1; lane < Lanes; ++lane) {
      if (!lanes_[lane].empty()) {
        lower = lane;
        break;
      }
    }
    if (lower == Lanes) {  // only lane 0 has work: no starvation possible
      lane0_streak_ = 0;
      return 0;
    }
    if (lanes_[0].empty() || lane0_streak_ >= aging_interval_) {
      lane0_streak_ = 0;
      return lower;
    }
    ++lane0_streak_;
    return 0;
  }

  const std::size_t capacity_;
  const OverflowPolicy policy_;
  const std::size_t shed_watermark_;
  const std::size_t aging_interval_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> lanes_[Lanes];
  std::size_t size_ = 0;          ///< total occupancy across lanes
  std::size_t lane0_streak_ = 0;  ///< consecutive lane-0 pops while lower waited
  bool closed_ = false;
};

}  // namespace swat
