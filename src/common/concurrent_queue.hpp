// A small bounded MPMC queue with condition-variable backpressure — the
// hand-off primitive between request submitters and the serving scheduler
// thread (src/runtime/server.hpp).
//
// Design constraints, in order:
//  1. Bounded: the queue holds at most `capacity` items, so a burst of
//     submitters cannot grow memory without limit. What happens at the
//     bound is the admission policy: kBlock parks the producer on a
//     condition variable until space frees (backpressure), kReject returns
//     false immediately (load shedding — the caller fails the request).
//  2. Clean shutdown: close() wakes every parked producer and consumer.
//     After close(), push() always fails, while pop() keeps draining the
//     items already admitted and only then reports exhaustion — nothing
//     admitted is ever silently dropped.
//  3. Simplicity over peak throughput: one mutex and two condition
//     variables. Items are whole inference requests (matrices), so the
//     per-item critical section is trivially cheap next to the payload;
//     a lock-free ring would buy nothing here.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

#include "common/contracts.hpp"

namespace swat {

/// What push() does when the queue is at capacity.
enum class OverflowPolicy : std::uint8_t {
  kBlock,   ///< wait for a consumer to free a slot (backpressure)
  kReject,  ///< fail the push immediately (load shedding)
};

template <typename T>
class ConcurrentQueue {
 public:
  explicit ConcurrentQueue(std::size_t capacity,
                           OverflowPolicy policy = OverflowPolicy::kBlock)
      : capacity_(capacity), policy_(policy) {
    SWAT_EXPECTS(capacity >= 1);
  }

  ConcurrentQueue(const ConcurrentQueue&) = delete;
  ConcurrentQueue& operator=(const ConcurrentQueue&) = delete;

  /// Enqueue one item. Returns false if the queue is closed, or full under
  /// kReject; under kBlock a full queue parks the caller until space frees
  /// or the queue closes. The item is moved from only on success.
  bool push(T& value) {
    std::unique_lock lock(mutex_);
    if (policy_ == OverflowPolicy::kBlock) {
      not_full_.wait(lock, [&] {
        return closed_ || items_.size() < capacity_;
      });
    }
    if (closed_ || items_.size() >= capacity_) return false;
    items_.push_back(std::move(value));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }
  bool push(T&& value) { return push(value); }

  /// Dequeue one item, blocking while the queue is empty and open.
  /// Returns nullopt only once the queue is closed AND drained.
  std::optional<T> pop() {
    std::unique_lock lock(mutex_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    return take(lock);
  }

  /// Dequeue one item if immediately available; never blocks.
  std::optional<T> try_pop() {
    std::unique_lock lock(mutex_);
    return take(lock);
  }

  /// Stop admission. Idempotent. Parked producers fail their push; parked
  /// consumers drain the remaining items and then see exhaustion.
  void close() {
    {
      std::lock_guard lock(mutex_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  bool closed() const {
    std::lock_guard lock(mutex_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard lock(mutex_);
    return items_.size();
  }

  std::size_t capacity() const { return capacity_; }
  OverflowPolicy policy() const { return policy_; }

 private:
  std::optional<T> take(std::unique_lock<std::mutex>& lock) {
    if (items_.empty()) return std::nullopt;
    std::optional<T> value(std::move(items_.front()));
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return value;
  }

  const std::size_t capacity_;
  const OverflowPolicy policy_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace swat
