#include "common/fp16.hpp"

#include <bit>
#include <cmath>
#include <cstring>

#if defined(__F16C__)
#include <immintrin.h>
#endif

#include "common/contracts.hpp"

namespace swat {

namespace {

std::uint32_t float_bits(float f) { return std::bit_cast<std::uint32_t>(f); }
float bits_float(std::uint32_t u) { return std::bit_cast<float>(u); }

}  // namespace

std::uint16_t f32_to_f16_bits(float f) {
  const std::uint32_t x = float_bits(f);
  const std::uint32_t sign = (x >> 16) & 0x8000u;
  const std::uint32_t abs = x & 0x7fffffffu;

  // NaN / infinity.
  if (abs >= 0x7f800000u) {
    if (abs > 0x7f800000u) {
      // NaN: keep it quiet, preserve a payload bit so it stays a NaN.
      return static_cast<std::uint16_t>(sign | 0x7e00u);
    }
    return static_cast<std::uint16_t>(sign | 0x7c00u);
  }

  // Overflow to half infinity: anything >= 65520 rounds to inf.
  // 65520 = 0x477ff000 in binary32? Compare via exponent/mantissa bound:
  // largest finite half is 65504; the rounding boundary is 65520.
  if (abs >= 0x47800000u) {  // 65536.0f
    return static_cast<std::uint16_t>(sign | 0x7c00u);
  }

  const std::int32_t exp32 = static_cast<std::int32_t>(abs >> 23) - 127;

  if (exp32 >= -14) {
    // Normal half range (possibly rounding up to inf at the top).
    // Round mantissa from 23 bits to 10 bits, RNE.
    std::uint32_t mant = abs & 0x007fffffu;
    std::uint32_t half = ((static_cast<std::uint32_t>(exp32 + 15) << 10) |
                          (mant >> 13));
    const std::uint32_t round_bits = mant & 0x1fffu;  // 13 discarded bits
    if (round_bits > 0x1000u || (round_bits == 0x1000u && (half & 1u))) {
      ++half;  // carries propagate correctly into the exponent, incl. to inf
    }
    return static_cast<std::uint16_t>(sign | half);
  }

  // Subnormal half or underflow to zero.
  if (exp32 < -25) {
    // Smaller than half of the smallest subnormal: rounds to zero
    // (exp == -25 with a zero mantissa ties to even, also zero, but that
    // case flows through the general path below and rounds correctly).
    return static_cast<std::uint16_t>(sign);
  }

  // Build the subnormal: implicit leading 1 becomes explicit.
  // value = mant * 2^(exp32-23); the half subnormal unit is 2^-24, so
  // half_mant = RNE(mant * 2^(exp32+1)), i.e. shift right by -(exp32+1)+23.
  const std::uint32_t mant = (abs & 0x007fffffu) | 0x00800000u;
  const int rshift = 23 - (exp32 + 24);  // number of bits shifted out
  SWAT_ENSURES(rshift >= 1 && rshift <= 24);
  const std::uint32_t half_mant = mant >> rshift;
  const std::uint32_t rem = mant & ((1u << rshift) - 1u);
  const std::uint32_t halfway = 1u << (rshift - 1);
  std::uint32_t result = half_mant;
  if (rem > halfway || (rem == halfway && (result & 1u))) ++result;
  // result may have carried into the exponent field (becoming min normal);
  // that is exactly the right encoding.
  return static_cast<std::uint16_t>(sign | result);
}

float f16_bits_to_f32(std::uint16_t h) {
  const std::uint32_t sign = (static_cast<std::uint32_t>(h) & 0x8000u) << 16;
  const std::uint32_t exp = (h >> 10) & 0x1fu;
  const std::uint32_t mant = h & 0x03ffu;

  if (exp == 0) {
    if (mant == 0) return bits_float(sign);  // +-0
    // Subnormal: normalize.
    int e = -1;
    std::uint32_t m = mant;
    do {
      ++e;
      m <<= 1;
    } while ((m & 0x0400u) == 0);
    const std::uint32_t exp32 = static_cast<std::uint32_t>(127 - 15 - e);
    const std::uint32_t mant32 = (m & 0x03ffu) << 13;
    return bits_float(sign | (exp32 << 23) | mant32);
  }
  if (exp == 0x1f) {
    // Inf / NaN.
    return bits_float(sign | 0x7f800000u | (mant << 13));
  }
  const std::uint32_t exp32 = exp + (127 - 15);
  return bits_float(sign | (exp32 << 23) | (mant << 13));
}

void f16_bits_to_f32_batch(const std::uint16_t* src, float* dst,
                           std::size_t n) {
  std::size_t i = 0;
#if defined(__F16C__)
  // vcvtph2ps is exact (every binary16 is representable in binary32) and
  // matches the scalar routine on all patterns except signalling NaNs,
  // which the hardware quiets. Detect NaN inputs with an integer compare
  // ((h & 0x7fff) > 0x7c00) and redo just those lanes through the scalar
  // path so the batch is bit-identical to f16_bits_to_f32 on the full
  // 16-bit domain (the exhaustive-sweep test relies on this).
  const __m128i abs_mask = _mm_set1_epi16(0x7fff);
  const __m128i inf_bits = _mm_set1_epi16(0x7c00);
  for (; i + 8 <= n; i += 8) {
    const __m128i h =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    _mm256_storeu_ps(dst + i, _mm256_cvtph_ps(h));
    const __m128i nan_lanes =
        _mm_cmpgt_epi16(_mm_and_si128(h, abs_mask), inf_bits);
    if (_mm_movemask_epi8(nan_lanes) != 0) {
      for (std::size_t l = 0; l < 8; ++l) dst[i + l] = f16_bits_to_f32(src[i + l]);
    }
  }
#endif
  for (; i < n; ++i) dst[i] = f16_bits_to_f32(src[i]);
}

void f32_to_f16_bits_batch(const float* src, std::uint16_t* dst,
                           std::size_t n) {
  std::size_t i = 0;
#if defined(__F16C__)
  // vcvtps2ph with RNE matches the scalar routine (subnormals, overflow to
  // inf, ties) except for NaN payloads; patch NaN lanes to the canonical
  // scalar encoding. Pack time only — never on the inference hot path.
  for (; i + 8 <= n; i += 8) {
    const __m256 f = _mm256_loadu_ps(src + i);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i),
                     _mm256_cvtps_ph(f, _MM_FROUND_TO_NEAREST_INT));
    const __m256 nan_lanes = _mm256_cmp_ps(f, f, _CMP_UNORD_Q);
    if (_mm256_movemask_ps(nan_lanes) != 0) {
      for (std::size_t l = 0; l < 8; ++l) dst[i + l] = f32_to_f16_bits(src[i + l]);
    }
  }
#endif
  for (; i < n; ++i) dst[i] = f32_to_f16_bits(src[i]);
}

Half half_exp(Half x) { return Half(std::exp(x.to_float())); }

Half half_exp_lut(Half x, int segments, float max_mag) {
  SWAT_EXPECTS(segments >= 2);
  SWAT_EXPECTS(max_mag > 0.0f);
  float v = x.to_float();
  if (std::isnan(v)) return Half::quiet_nan();
  if (v <= -max_mag) return Half(std::exp(-max_mag));
  if (v >= max_mag) return Half(std::exp(max_mag));
  // Piecewise-linear interpolation between table knots.
  const float span = 2.0f * max_mag;
  const float t = (v + max_mag) / span * static_cast<float>(segments);
  int idx = static_cast<int>(t);
  if (idx >= segments) idx = segments - 1;
  const float x0 = -max_mag + span * static_cast<float>(idx) /
                                  static_cast<float>(segments);
  const float x1 = -max_mag + span * static_cast<float>(idx + 1) /
                                  static_cast<float>(segments);
  const float y0 = std::exp(x0);
  const float y1 = std::exp(x1);
  const float w = (v - x0) / (x1 - x0);
  // The LUT output register is binary16, so round the interpolant.
  return Half(y0 + w * (y1 - y0));
}

}  // namespace swat
