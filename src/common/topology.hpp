// CPU topology discovery and execution placement (src/common/topology).
//
// The placement layer's model of the host: which logical CPUs this
// process may use, how they group into physical cores (SMT siblings),
// and which NUMA node each belongs to. The serving pool's partitioned
// placement (ServerOptions::placement = kPartitioned) carves the allowed
// set into one contiguous, locality-ordered core group per engine
// replica; each replica then runs on a ThreadPool pinned to its group,
// and packs its weights there so first-touch page placement puts each
// PackedWeight on the replica's NUMA node.
//
// Discovery reads /sys/devices/system/cpu (Linux). Everything degrades
// gracefully: a missing sysfs tree (non-Linux, containers without /sys)
// falls back to a flat single-node topology over
// hardware_concurrency() CPUs, and discover_topology_at() takes the
// sysfs root / fallback width / cpuset override as explicit parameters
// so tests drive it with a synthetic fixture tree instead of the real
// host.
//
// The allowed set is the intersection of three masks, most restrictive
// wins: CPUs online per sysfs, the calling thread's current affinity
// mask (so a `taskset`-restricted process never partitions onto CPUs it
// was told not to use), and the SWAT_CPUSET environment override (a
// comma/range list like "0-3,8"). A malformed or disjoint SWAT_CPUSET
// is ignored with a one-time warning rather than crashing serving.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace swat {

/// An ordered set of logical CPU ids. Stored sorted and deduplicated;
/// parse/to_string round-trip the canonical "0-3,8" comma/range form
/// (the SWAT_CPUSET and cpulist-sysfs format).
class CpuSet {
 public:
  CpuSet() = default;

  /// Parse a comma/range cpulist ("0-3,8", "2", "0,4-7"). Throws
  /// std::invalid_argument on malformed input: empty items, non-numeric
  /// text, reversed ranges, negative ids, or ids >= kMaxCpus.
  static CpuSet parse(const std::string& text);

  void add(int cpu);
  bool contains(int cpu) const;
  int count() const { return static_cast<int>(cpus_.size()); }
  bool empty() const { return cpus_.empty(); }
  /// The members, ascending.
  const std::vector<int>& cpus() const { return cpus_; }
  /// Canonical cpulist form ("0-3,8"); empty string for the empty set.
  std::string to_string() const;
  CpuSet intersect(const CpuSet& other) const;
  bool operator==(const CpuSet& other) const = default;

  /// Upper bound on representable cpu ids — a sanity rail against
  /// garbage cpulists, far above any host this serves.
  static constexpr int kMaxCpus = 4096;

 private:
  std::vector<int> cpus_;  // sorted ascending, unique
};

/// One logical CPU's place in the machine: its physical core (SMT
/// siblings share a core id within a node) and NUMA node.
struct TopologyCpu {
  int cpu = 0;   ///< logical cpu id (the affinity-mask bit)
  int core = 0;  ///< physical core id within its node
  int node = 0;  ///< NUMA node id
};

/// The discovered host topology, restricted to the allowed CPU set.
/// `cpus` is locality-ordered — node-major, then core-major, so SMT
/// siblings sit adjacent and a contiguous slice of the list is the most
/// local group of its size. partition() builds on that order.
struct Topology {
  std::vector<TopologyCpu> cpus;  ///< locality-ordered allowed CPUs
  CpuSet allowed;                 ///< the same CPUs as a set
  int node_count = 1;             ///< distinct NUMA nodes among `cpus`

  /// Distinct physical cores among the allowed CPUs.
  int core_count() const;

  /// The allowed CPUs on NUMA node `node`, as a set. Empty when the node
  /// has no allowed CPUs. The shared-pack placement policies use the
  /// per-node sets to stripe (or replicate) pack pages across nodes.
  CpuSet node_cpus(int node) const;

  /// NUMA node of `cpu` among the allowed CPUs, or -1 when `cpu` is not
  /// in the topology — how a replica's core group is attributed to the
  /// node its first-touch pages land on.
  int node_of(int cpu) const;

  /// Carve the allowed CPUs into `groups` contiguous slices of the
  /// locality order — floor(C/groups) CPUs each, the first C%groups
  /// groups taking one extra — so each group stays within as few nodes
  /// as possible and SMT siblings stay together. Returns an EMPTY
  /// vector when groups exceeds the allowed CPU count (each group must
  /// hold at least one CPU): the caller's signal to fall back to shared
  /// placement rather than oversubscribe.
  std::vector<CpuSet> partition(std::size_t groups) const;
};

/// Discover the real host: sysfs at /sys/devices/system/cpu,
/// hardware_concurrency() fallback width, allowed set further
/// intersected with the calling thread's affinity mask and the
/// SWAT_CPUSET environment override.
Topology discover_topology();

/// The testable core of discovery: read the sysfs-shaped tree at
/// `sysfs_cpu_root` (an `online` cpulist file, `cpuN/topology/core_id`
/// files, and `cpuN/nodeK` entries; each layer optional, with per-cpu
/// fallbacks of core=cpu and node=0). When the tree yields no CPUs at
/// all, fall back to a flat single-node topology of
/// max(1, fallback_cpus) CPUs. `cpuset_override` is the SWAT_CPUSET
/// value (nullptr/empty = none); malformed or fully disjoint overrides
/// are ignored with a warning on stderr. Unlike discover_topology(),
/// no process-affinity intersection is applied — fixtures describe
/// exactly the machine the test wants.
Topology discover_topology_at(const std::string& sysfs_cpu_root,
                              int fallback_cpus,
                              const char* cpuset_override);

/// Pin the calling thread to `cpus` via pthread_setaffinity_np.
/// Returns true on success; false for an empty set, on failure, or on
/// non-Linux hosts (where pinning is a documented no-op).
bool pin_current_thread(const CpuSet& cpus);

/// The calling thread's current affinity mask. Empty when unavailable
/// (non-Linux). Used to save/restore affinity around first-touch
/// packing, and to keep discovery inside a taskset restriction.
CpuSet current_thread_affinity();

}  // namespace swat
