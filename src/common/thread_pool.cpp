#include "common/thread_pool.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>

#include "common/contracts.hpp"

namespace swat {

namespace {

// True while the current thread is executing pool work; nested parallel_for
// calls detect this and run inline instead of waiting on the pool.
thread_local bool t_in_pool_work = false;

// The thread's bound pool (ScopedPoolBinding); null = process-wide pool.
thread_local ThreadPool* t_bound_pool = nullptr;

// Rail for SWAT_THREADS: far above any sane host, low enough that an
// overflowed or garbage value cannot ask the OS for a million threads.
constexpr int kMaxThreadCount = 1024;

int default_num_threads() {
  const unsigned hc = std::thread::hardware_concurrency();
  const int fallback = hc == 0 ? 1 : static_cast<int>(hc);
  std::string warning;
  const int n =
      parse_thread_count(std::getenv("SWAT_THREADS"), fallback, &warning);
  // instance() constructs exactly once, so a bad SWAT_THREADS warns
  // exactly once per process instead of per parallel_for.
  if (!warning.empty()) {
    std::fprintf(stderr, "swat: warning: %s\n", warning.c_str());
  }
  return n;
}

}  // namespace

int parse_thread_count(const char* text, int fallback,
                       std::string* warning) {
  if (warning != nullptr) warning->clear();
  if (text == nullptr) return fallback;
  errno = 0;
  char* end = nullptr;
  const long value = std::strtol(text, &end, 10);
  const char* rest = end;
  while (*rest == ' ' || *rest == '\t') ++rest;
  if (end == text || *rest != '\0') {
    if (warning != nullptr) {
      *warning = "SWAT_THREADS=\"" + std::string(text) +
                 "\" is not a thread count — using " +
                 std::to_string(fallback);
    }
    return fallback;
  }
  if (errno == ERANGE || value > kMaxThreadCount) {
    if (warning != nullptr) {
      *warning = "SWAT_THREADS=\"" + std::string(text) +
                 "\" exceeds the " + std::to_string(kMaxThreadCount) +
                 "-thread rail — clamped to " +
                 std::to_string(kMaxThreadCount);
    }
    return kMaxThreadCount;
  }
  if (value < 1) {
    if (warning != nullptr) {
      *warning = "SWAT_THREADS=\"" + std::string(text) +
                 "\" must be >= 1 — clamped to 1 (everything inline)";
    }
    return 1;
  }
  return static_cast<int>(value);
}

ThreadPool& ThreadPool::instance() {
  static ThreadPool pool(default_num_threads());
  return pool;
}

ThreadPool& current_pool() {
  return t_bound_pool != nullptr ? *t_bound_pool : ThreadPool::instance();
}

ScopedPoolBinding::ScopedPoolBinding(ThreadPool* pool) {
  if (pool == nullptr) return;  // no-op binding: keep the current routing
  prev_ = t_bound_pool;
  t_bound_pool = pool;
  active_ = true;
}

ScopedPoolBinding::~ScopedPoolBinding() {
  if (active_) t_bound_pool = prev_;
}

ThreadPool::ThreadPool(int n, CpuSet affinity)
    : affinity_(std::move(affinity)) {
  start_workers(n);
}

ThreadPool::~ThreadPool() { stop_workers(); }

void ThreadPool::start_workers(int n) {
  SWAT_EXPECTS(n >= 1);
  num_threads_ = n;
  stopping_ = false;
  pinned_workers_.store(0, std::memory_order_relaxed);
  workers_.reserve(static_cast<std::size_t>(n - 1));
  for (int i = 0; i < n - 1; ++i) {
    workers_.emplace_back([this] {
      // Group-level pinning: every worker may run on any CPU of the
      // pool's set — the set (one replica's core group) is the locality
      // unit. Failures are counted, never fatal.
      if (pin_current_thread(affinity_)) {
        pinned_workers_.fetch_add(1, std::memory_order_relaxed);
      }
      worker_loop();
    });
  }
}

void ThreadPool::stop_workers() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
  workers_.clear();
}

void ThreadPool::set_num_threads(int n) {
  SWAT_EXPECTS(n >= 1);
  {
    // Reconfiguring tears the worker set down; doing that under an
    // in-flight parallel_for would strand its caller.
    std::lock_guard<std::mutex> lock(mutex_);
    SWAT_EXPECTS(job_ == nullptr &&
                 "set_num_threads called during an active parallel_for");
  }
  if (n == num_threads_) return;
  stop_workers();
  start_workers(n);
}

void ThreadPool::run_chunks(Job& job) {
  t_in_pool_work = true;
  std::int64_t completed = 0;
  for (;;) {
    const std::int64_t c = job.next.fetch_add(1, std::memory_order_relaxed);
    if (c >= job.num_chunks) break;
    const std::int64_t b = job.begin + c * job.chunk;
    const std::int64_t e = std::min(b + job.chunk, job.end);
    if (b >= e) {
      // Ceil-division chunking can overshoot the range; such chunks are
      // empty but must still count toward completion.
      ++completed;
      continue;
    }
    bool failed;
    {
      std::lock_guard<std::mutex> lock(job.error_mutex);
      failed = job.error != nullptr;
    }
    if (!failed) {
      try {
        job.fn(job.ctx, b, e);
      } catch (...) {
        std::lock_guard<std::mutex> lock(job.error_mutex);
        if (!job.error) job.error = std::current_exception();
      }
    }
    ++completed;
  }
  t_in_pool_work = false;
  if (completed > 0 &&
      job.done.fetch_add(completed, std::memory_order_acq_rel) + completed ==
          job.num_chunks) {
    // Empty lock/unlock: without it the notify could race into the window
    // between the waiter's predicate check and its sleep and be lost.
    { std::lock_guard<std::mutex> lock(mutex_); }
    done_cv_.notify_all();
  }
}

void ThreadPool::worker_loop() {
  std::uint64_t seen_epoch = 0;
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] {
        return stopping_ || (job_ != nullptr && job_epoch_ != seen_epoch);
      });
      if (stopping_) return;
      seen_epoch = job_epoch_;
      job = job_;
    }
    run_chunks(*job);
  }
}

void ThreadPool::parallel_for_raw(std::int64_t begin, std::int64_t end,
                                  std::int64_t grain,
                                  void (*fn)(void*, std::int64_t,
                                             std::int64_t),
                                  void* ctx) {
  SWAT_EXPECTS(grain >= 1);
  SWAT_EXPECTS(fn != nullptr);
  if (end <= begin) return;
  const std::int64_t count = end - begin;
  if (num_threads_ == 1 || count <= grain || t_in_pool_work) {
    fn(ctx, begin, end);
    return;
  }

  // Partition into at most threads * 8 chunks of at least `grain` indices
  // each; the atomic cursor in run_chunks load-balances uneven chunks.
  const std::int64_t max_chunks =
      static_cast<std::int64_t>(num_threads_) * 8;
  const std::int64_t by_grain = (count + grain - 1) / grain;
  const std::int64_t num_chunks = std::clamp<std::int64_t>(
      std::min(by_grain, max_chunks), 1, count);
  auto job = std::make_shared<Job>();
  job->begin = begin;
  job->end = end;
  job->num_chunks = num_chunks;
  job->chunk = (count + num_chunks - 1) / num_chunks;
  job->fn = fn;
  job->ctx = ctx;

  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_ = job;
    ++job_epoch_;
  }
  work_cv_.notify_all();

  // The caller participates, then waits for stragglers.
  run_chunks(*job);
  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] {
      return job->done.load(std::memory_order_acquire) == job->num_chunks;
    });
    // Only clear our own job: another caller may have published a newer
    // one, and wiping it would strand that caller's workers asleep.
    if (job_ == job) job_ = nullptr;
  }
  if (job->error) std::rethrow_exception(job->error);
}

int num_threads() { return ThreadPool::instance().num_threads(); }

void set_num_threads(int n) { ThreadPool::instance().set_num_threads(n); }

}  // namespace swat
