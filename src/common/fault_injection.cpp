#include "common/fault_injection.hpp"

#include <chrono>
#include <thread>

namespace swat {

FaultInjector& FaultInjector::global() {
  static FaultInjector injector;
  return injector;
}

void FaultInjector::arm(const std::string& point, FaultAction action) {
  std::lock_guard lock(mutex_);
  Point& p = points_[point];
  if (!p.armed) armed_points_.fetch_add(1, std::memory_order_relaxed);
  p.armed = true;
  p.action = action;
}

void FaultInjector::disarm(const std::string& point) {
  std::lock_guard lock(mutex_);
  const auto it = points_.find(point);
  if (it == points_.end() || !it->second.armed) return;
  it->second.armed = false;
  armed_points_.fetch_sub(1, std::memory_order_relaxed);
}

void FaultInjector::reset() {
  std::lock_guard lock(mutex_);
  points_.clear();
  armed_points_.store(0, std::memory_order_relaxed);
}

std::uint64_t FaultInjector::crossings(const std::string& point) const {
  std::lock_guard lock(mutex_);
  const auto it = points_.find(point);
  return it == points_.end() ? 0 : it->second.crossings;
}

std::uint64_t FaultInjector::fires(const std::string& point) const {
  std::lock_guard lock(mutex_);
  const auto it = points_.find(point);
  return it == points_.end() ? 0 : it->second.fires;
}

void FaultInjector::crossing_slow(const char* point, Waker waker, void* ctx) {
  FaultKind kind;
  Seconds delay;
  {
    std::lock_guard lock(mutex_);
    const auto it = points_.find(point);
    if (it == points_.end() || !it->second.armed) return;
    Point& p = it->second;
    ++p.crossings;
    if (p.action.skip > 0) {
      --p.action.skip;
      return;
    }
    ++p.fires;
    kind = p.action.kind;
    delay = p.action.delay;
    if (p.action.count > 0 && --p.action.count == 0) {
      p.armed = false;
      armed_points_.fetch_sub(1, std::memory_order_relaxed);
    }
  }
  // Act outside the lock: a sleeping or throwing crossing must never hold
  // the registry hostage (other points keep working while this one fires).
  switch (kind) {
    case FaultKind::kThrow:
      throw FaultInjectedError(point);
    case FaultKind::kDelay:
      std::this_thread::sleep_for(std::chrono::duration<double>(delay.value));
      break;
    case FaultKind::kWake:
      if (waker != nullptr) waker(ctx);
      break;
  }
}

}  // namespace swat
