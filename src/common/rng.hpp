// Deterministic random number generation for workload synthesis.
//
// Every experiment in the repository is seeded, so benches and tests are
// reproducible run-to-run. A thin wrapper over std::mt19937_64 keeps the
// distribution code in one place and gives the attention workload
// generators an explicit, single-purpose interface.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace swat {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) {
    std::uniform_real_distribution<double> d(lo, hi);
    return d(engine_);
  }

  /// Standard normal scaled by `stddev`.
  double normal(double mean = 0.0, double stddev = 1.0) {
    std::normal_distribution<double> d(mean, stddev);
    return d(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t integer(std::int64_t lo, std::int64_t hi) {
    std::uniform_int_distribution<std::int64_t> d(lo, hi);
    return d(engine_);
  }

  /// `k` distinct integers sampled uniformly from [0, n), sorted ascending.
  /// Used for BigBird random-attention token selection (static per design,
  /// paper §4.1: "randomly (but statically) selected").
  std::vector<std::int64_t> sample_without_replacement(std::int64_t n,
                                                       std::int64_t k);

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace swat
