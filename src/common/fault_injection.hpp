// swat::FaultInjector — named, armable fault-injection points for the
// serving layer's resilience tests.
//
// A production-shaped server must be able to PROVE its failure semantics:
// that an executor throw fails only that batch's tickets, that a stalled
// scheduler trips the watchdog, that a slow admission queue delays but
// never loses work. Those proofs need faults on demand, at exact points,
// in the real code path — not in a mock. The injector is therefore
// compiled in always and is a no-op unless a test arms it:
//
//   SWAT_FAULT_POINT("executor.execute");            // the crossing site
//   FaultInjector::global().arm(                     // the test
//       "executor.execute", {FaultKind::kThrow});
//
// Disarmed cost: one relaxed atomic load per crossing (the points sit on
// per-request / per-batch paths, never inside kernel loops). Armed
// crossings take a mutex, match the point by name, and perform the action:
//
//   kThrow — throw FaultInjectedError naming the point; the component's
//            normal exception path must turn it into clean per-ticket
//            rejection, never a hang.
//   kDelay — sleep for `delay`; models a wedged executor or a slow queue,
//            what the server watchdog and the age cut are armored against.
//   kWake  — invoke the crossing's registered waker (e.g. the admission
//            queue notifies its condition variables without any state
//            change): a genuine spurious wakeup, proving every wait loop
//            re-checks its predicate.
//
// Actions fire after `skip` crossings, `count` times (then auto-disarm;
// count < 0 = unlimited). Crossing/fire counters are kept per point so
// tests can assert a fault actually happened; counters are only tracked
// while the point is (or was) armed — the disarmed fast path counts
// nothing, by design.
//
// The registry is process-global (tests run serially per process;
// concurrent servers in one test share the points — also by design: the
// points name code sites, not instances). reset() restores the pristine
// no-op state between tests.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <stdexcept>
#include <string>

#include "common/units.hpp"

namespace swat {

/// The exception an armed kThrow crossing raises. Carries the point name
/// so a test can assert WHICH fault a ticket died of.
class FaultInjectedError : public std::runtime_error {
 public:
  explicit FaultInjectedError(const std::string& point)
      : std::runtime_error("injected fault at point '" + point + "'"),
        point_(point) {}
  const std::string& point() const { return point_; }

 private:
  std::string point_;
};

enum class FaultKind : std::uint8_t {
  kThrow,  ///< throw FaultInjectedError at the crossing
  kDelay,  ///< sleep `delay` at the crossing (stall / latency injection)
  kWake,   ///< invoke the crossing's waker (spurious wakeup injection)
};

struct FaultAction {
  FaultKind kind = FaultKind::kThrow;
  Seconds delay{};  ///< kDelay only: how long the crossing sleeps
  int skip = 0;     ///< crossings to let pass unharmed before firing
  int count = 1;    ///< times to fire, then auto-disarm; < 0 = unlimited
};

class FaultInjector {
 public:
  /// The process-global registry every SWAT_FAULT_POINT consults.
  static FaultInjector& global();

  /// Arm `point` with `action`. Re-arming replaces the previous action
  /// (counters persist). Thread-safe, like every method here.
  void arm(const std::string& point, FaultAction action);
  /// Disarm one point; its counters remain readable until reset().
  void disarm(const std::string& point);
  /// Disarm everything and zero all counters — the pristine no-op state.
  void reset();

  /// Times the point was crossed while armed (skip included).
  std::uint64_t crossings(const std::string& point) const;
  /// Times the point actually fired its action.
  std::uint64_t fires(const std::string& point) const;
  /// True when any point is armed (the fast-path gate, for tests).
  bool armed() const {
    return armed_points_.load(std::memory_order_relaxed) != 0;
  }

  /// A crossing's spurious-wakeup hook: called only for kWake actions.
  using Waker = void (*)(void*);

  /// The injection point. No-op (one relaxed load) unless something is
  /// armed. kThrow actions throw FaultInjectedError out of this call.
  void crossing(const char* point, Waker waker = nullptr,
                void* ctx = nullptr) {
    if (armed_points_.load(std::memory_order_relaxed) == 0) return;
    crossing_slow(point, waker, ctx);
  }

 private:
  struct Point {
    FaultAction action;
    bool armed = false;
    std::uint64_t crossings = 0;
    std::uint64_t fires = 0;
  };

  void crossing_slow(const char* point, Waker waker, void* ctx);

  std::atomic<int> armed_points_{0};
  mutable std::mutex mutex_;
  std::map<std::string, Point> points_;
};

/// The crossing macro components place on their failure-relevant paths.
#define SWAT_FAULT_POINT(name) ::swat::FaultInjector::global().crossing(name)
#define SWAT_FAULT_POINT_WAKE(name, waker, ctx) \
  ::swat::FaultInjector::global().crossing(name, waker, ctx)

}  // namespace swat
