// Software emulation of IEEE-754 binary16 ("half") arithmetic.
//
// SWAT's datapath is FP16 (paper §4: "The design uses half-precision 16-bit
// floating-point data"). The functional simulator must therefore round every
// intermediate value exactly as the FPGA datapath would: multiply, add and
// exponential all produce binary16 results. We emulate this by storing the
// 16-bit pattern and performing each primitive in float (binary32, which is
// exact for any single binary16 x binary16 product and any binary16 + binary16
// sum up to rounding) followed by a correctly-rounded (round-to-nearest-even)
// conversion back to binary16.
//
// The conversion routines handle subnormals, infinities and NaN explicitly
// and are themselves unit-tested against an exhaustive 16-bit sweep.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>

namespace swat {

/// Convert a binary32 float to the nearest binary16 bit pattern
/// (round-to-nearest-even, as FPGA floating point IP and IEEE default).
std::uint16_t f32_to_f16_bits(float f);

/// Convert a binary16 bit pattern to the exactly-representable binary32.
float f16_bits_to_f32(std::uint16_t h);

/// Widen `n` binary16 bit patterns to binary32, element-identical to calling
/// the scalar `f16_bits_to_f32` on every element (including NaN payloads —
/// the hardware F16C path quiets signalling NaNs, so those lanes are patched
/// back to the scalar result). This is the panel-decode primitive of the
/// half-precision packed-weight path; on F16C hosts it runs 8 lanes per
/// `vcvtph2ps`, elsewhere it falls back to the scalar routine.
void f16_bits_to_f32_batch(const std::uint16_t* src, float* dst,
                           std::size_t n);

/// Narrow `n` binary32 values to binary16 bit patterns, element-identical to
/// the scalar `f32_to_f16_bits` (RNE everywhere; NaN lanes are patched so the
/// canonical scalar payload is produced rather than the hardware one). Used
/// once per weight matrix at pack time.
void f32_to_f16_bits_batch(const float* src, std::uint16_t* dst,
                           std::size_t n);

/// Value type wrapping one binary16 number.
///
/// All arithmetic operators round the binary32 intermediate back to binary16,
/// so `a * b + c` performed as `(a * b) + c` models a *non-fused* multiply-add
/// with two roundings, while `Half::fma` models a fused one with a single
/// rounding. SWAT's HLS MAC (II = 3) rounds after the multiply and after the
/// add, i.e. the non-fused behaviour; `AttentionCore` uses operator* and
/// operator+ accordingly.
class Half {
 public:
  constexpr Half() = default;

  /// Construct from float with correct rounding.
  explicit Half(float f) : bits_(f32_to_f16_bits(f)) {}
  explicit Half(double d) : Half(static_cast<float>(d)) {}

  /// Reinterpret a raw bit pattern as a Half.
  static constexpr Half from_bits(std::uint16_t b) {
    Half h;
    h.bits_ = b;
    return h;
  }

  constexpr std::uint16_t bits() const { return bits_; }
  float to_float() const { return f16_bits_to_f32(bits_); }

  bool is_nan() const {
    return (bits_ & 0x7c00u) == 0x7c00u && (bits_ & 0x03ffu) != 0;
  }
  bool is_inf() const { return (bits_ & 0x7fffu) == 0x7c00u; }
  bool is_zero() const { return (bits_ & 0x7fffu) == 0; }
  bool signbit() const { return (bits_ & 0x8000u) != 0; }

  friend Half operator+(Half a, Half b) {
    return Half(a.to_float() + b.to_float());
  }
  friend Half operator-(Half a, Half b) {
    return Half(a.to_float() - b.to_float());
  }
  friend Half operator*(Half a, Half b) {
    return Half(a.to_float() * b.to_float());
  }
  friend Half operator/(Half a, Half b) {
    return Half(a.to_float() / b.to_float());
  }
  friend Half operator-(Half a) {
    return Half::from_bits(static_cast<std::uint16_t>(a.bits() ^ 0x8000u));
  }

  Half& operator+=(Half o) { return *this = *this + o; }
  Half& operator-=(Half o) { return *this = *this - o; }
  Half& operator*=(Half o) { return *this = *this * o; }
  Half& operator/=(Half o) { return *this = *this / o; }

  /// Fused multiply-add with a single binary16 rounding at the end.
  /// binary32 is wide enough to hold the exact product of two binary16
  /// values and the subsequent sum incurs at most the final rounding we
  /// want to model, so float arithmetic suffices.
  static Half fma(Half a, Half b, Half c) {
    return Half(a.to_float() * b.to_float() + c.to_float());
  }

  /// Comparison via the float values (NaN compares false, as IEEE requires).
  friend bool operator==(Half a, Half b) {
    return a.to_float() == b.to_float();
  }
  friend bool operator<(Half a, Half b) { return a.to_float() < b.to_float(); }
  friend bool operator>(Half a, Half b) { return b < a; }
  friend bool operator<=(Half a, Half b) { return !(b < a); }
  friend bool operator>=(Half a, Half b) { return !(a < b); }

  static constexpr Half infinity() { return from_bits(0x7c00u); }
  static constexpr Half quiet_nan() { return from_bits(0x7e00u); }
  static constexpr Half max() { return from_bits(0x7bffu); }  // 65504
  static constexpr Half lowest() { return from_bits(0xfbffu); }
  static constexpr Half min_normal() { return from_bits(0x0400u); }
  static constexpr Half denorm_min() { return from_bits(0x0001u); }
  static constexpr Half zero() { return from_bits(0x0000u); }
  static constexpr Half one() { return from_bits(0x3c00u); }

 private:
  std::uint16_t bits_ = 0;
};

/// exp() rounded to binary16, modelling SWAT's EXP unit evaluated at full
/// precision. The FPGA implementation uses a pipelined floating-point exp
/// core; the reference behaviour is a correctly rounded exponential.
Half half_exp(Half x);

/// exp() via a piecewise-linear lookup table with `segments` entries over
/// the clamped domain [-max_mag, +max_mag]. This models a cheaper LUT-based
/// EXP unit; used by the ablation bench to quantify the accuracy cost of
/// shrinking the exp hardware.
Half half_exp_lut(Half x, int segments, float max_mag = 16.0f);

}  // namespace swat
