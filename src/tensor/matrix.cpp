#include "tensor/matrix.hpp"

#include <cmath>

namespace swat {

MatrixF random_normal(std::int64_t rows, std::int64_t cols, Rng& rng,
                      double stddev) {
  MatrixF m(rows, cols);
  for (float& v : m.flat()) v = static_cast<float>(rng.normal(0.0, stddev));
  return m;
}

MatrixF random_locally_correlated_1d(std::int64_t rows, std::int64_t cols,
                                     Rng& rng, double corr_len) {
  SWAT_EXPECTS(corr_len > 0.0);
  // AR(1) process down the row (token) axis: x_i = rho * x_{i-1} + e_i,
  // giving corr(x_i, x_j) = rho^{|i-j|} = exp(-|i-j| / corr_len).
  const double rho = std::exp(-1.0 / corr_len);
  const double noise = std::sqrt(1.0 - rho * rho);
  MatrixF m(rows, cols);
  for (std::int64_t c = 0; c < cols; ++c) {
    double x = rng.normal();
    for (std::int64_t r = 0; r < rows; ++r) {
      if (r > 0) x = rho * x + noise * rng.normal();
      m(r, c) = static_cast<float>(x);
    }
  }
  return m;
}

MatrixF random_locally_correlated_2d(std::int64_t rows, std::int64_t cols,
                                     Rng& rng, double corr_len) {
  const auto side = static_cast<std::int64_t>(std::llround(
      std::sqrt(static_cast<double>(rows))));
  SWAT_EXPECTS(side * side == rows);
  SWAT_EXPECTS(corr_len > 0.0);
  // Separable 2-D AR(1): generate iid noise on the grid, then run one AR
  // sweep along grid rows and one along grid columns. Tokens are the
  // row-major flattening of the grid, matching how ViT-style models
  // sequence image patches.
  const double rho = std::exp(-1.0 / corr_len);
  const double noise = std::sqrt(1.0 - rho * rho);
  MatrixF m(rows, cols);
  for (float& v : m.flat()) v = static_cast<float>(rng.normal());
  for (std::int64_t c = 0; c < cols; ++c) {
    // Horizontal sweep within each grid row.
    for (std::int64_t gr = 0; gr < side; ++gr) {
      for (std::int64_t gc = 1; gc < side; ++gc) {
        const std::int64_t i = gr * side + gc;
        m(i, c) = static_cast<float>(rho * m(i - 1, c) + noise * m(i, c));
      }
    }
    // Vertical sweep across grid rows.
    for (std::int64_t gc = 0; gc < side; ++gc) {
      for (std::int64_t gr = 1; gr < side; ++gr) {
        const std::int64_t i = gr * side + gc;
        m(i, c) =
            static_cast<float>(rho * m(i - side, c) + noise * m(i, c));
      }
    }
  }
  return m;
}

}  // namespace swat
