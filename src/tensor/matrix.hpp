// Minimal dense row-major matrix used throughout the functional models.
//
// Design notes (per the C++ Core Guidelines):
//  - Concrete regular value type (C.10/C.11): copyable, movable, comparable.
//  - Bounds are checked via contracts on every accessor; the simulator code
//    is index-heavy and an out-of-window index is the most likely bug class.
//  - Rows are exposed as std::span (I.13 "do not pass an array as a single
//    pointer"), which is what the attention kernels iterate over.
#pragma once

#include <cstdint>
#include <span>
#include <type_traits>
#include <vector>

#include "common/contracts.hpp"
#include "common/rng.hpp"

namespace swat {

template <typename T>
class Matrix {
 public:
  using value_type = T;

  Matrix() = default;

  Matrix(std::int64_t rows, std::int64_t cols, T fill = T{})
      : rows_(rows), cols_(cols),
        data_(static_cast<std::size_t>(rows * cols), fill) {
    SWAT_EXPECTS(rows >= 0 && cols >= 0);
  }

  /// Re-shape in place to rows x cols; contents become unspecified (newly
  /// grown capacity is value-initialized, retained capacity keeps stale
  /// values) — callers are expected to overwrite every element. The backing
  /// vector's capacity is retained, so a matrix cycled through shapes at or
  /// below its high-water size never reallocates — the property the
  /// batching runtime relies on to keep its packed-activation buffers
  /// allocation-free across run() calls.
  void reshape(std::int64_t rows, std::int64_t cols) {
    SWAT_EXPECTS(rows >= 0 && cols >= 0);
    rows_ = rows;
    cols_ = cols;
    data_.resize(static_cast<std::size_t>(rows * cols));
  }

  std::int64_t rows() const { return rows_; }
  std::int64_t cols() const { return cols_; }
  std::int64_t size() const { return rows_ * cols_; }
  bool empty() const { return data_.empty(); }

  T& operator()(std::int64_t r, std::int64_t c) {
    SWAT_CHECK_BOUNDS(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<std::size_t>(r * cols_ + c)];
  }
  const T& operator()(std::int64_t r, std::int64_t c) const {
    SWAT_CHECK_BOUNDS(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<std::size_t>(r * cols_ + c)];
  }

  std::span<T> row(std::int64_t r) {
    SWAT_CHECK_BOUNDS(r >= 0 && r < rows_);
    return {data_.data() + r * cols_, static_cast<std::size_t>(cols_)};
  }
  std::span<const T> row(std::int64_t r) const {
    SWAT_CHECK_BOUNDS(r >= 0 && r < rows_);
    return {data_.data() + r * cols_, static_cast<std::size_t>(cols_)};
  }

  std::span<T> flat() { return {data_.data(), data_.size()}; }
  std::span<const T> flat() const { return {data_.data(), data_.size()}; }

  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }

  friend bool operator==(const Matrix& a, const Matrix& b) {
    return a.rows_ == b.rows_ && a.cols_ == b.cols_ && a.data_ == b.data_;
  }

 private:
  std::int64_t rows_ = 0;
  std::int64_t cols_ = 0;
  std::vector<T> data_;
};

using MatrixF = Matrix<float>;
using MatrixD = Matrix<double>;

/// Non-owning view of a dense row-major matrix (or a row-aligned slice of
/// one): pointer + rows/cols + a row stride. This is the currency of the
/// compiled execution plan — arena-backed kernels (`layer_norm_into`,
/// `gelu_into`, `add_rows_into`) read and write through views so the same
/// code runs over whole matrices and over sub-ranges of a packed batch
/// without copying or taking ownership. A view is valid only while the
/// viewed storage is: never outlive the Matrix (or arena buffer) behind it,
/// and remember that Matrix::reshape may reallocate and invalidate views.
template <typename T>
class MatrixViewT {
 public:
  using value_type = std::remove_const_t<T>;

  MatrixViewT() = default;

  MatrixViewT(T* data, std::int64_t rows, std::int64_t cols,
              std::int64_t stride)
      : data_(data), rows_(rows), cols_(cols), stride_(stride) {
    SWAT_EXPECTS(rows >= 0 && cols >= 0 && stride >= cols);
  }

  /// Whole-matrix views; implicit so kernels taking views accept a Matrix
  /// directly.
  MatrixViewT(Matrix<value_type>& m)  // NOLINT(google-explicit-constructor)
      : data_(m.data()), rows_(m.rows()), cols_(m.cols()), stride_(m.cols()) {}
  MatrixViewT(const Matrix<value_type>& m)  // NOLINT(google-explicit-constructor)
    requires std::is_const_v<T>
      : data_(m.data()), rows_(m.rows()), cols_(m.cols()), stride_(m.cols()) {}

  /// A mutable view converts to a const view, mirroring T* -> const T*.
  operator MatrixViewT<const value_type>() const  // NOLINT
    requires(!std::is_const_v<T>)
  {
    return {data_, rows_, cols_, stride_};
  }

  std::int64_t rows() const { return rows_; }
  std::int64_t cols() const { return cols_; }
  std::int64_t stride() const { return stride_; }
  std::int64_t size() const { return rows_ * cols_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }
  /// True when rows are adjacent in memory, i.e. the view can be walked as
  /// one flat range of size() elements.
  bool contiguous() const { return stride_ == cols_; }

  T& operator()(std::int64_t r, std::int64_t c) const {
    SWAT_CHECK_BOUNDS(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<std::size_t>(r * stride_ + c)];
  }

  std::span<T> row(std::int64_t r) const {
    SWAT_CHECK_BOUNDS(r >= 0 && r < rows_);
    return {data_ + r * stride_, static_cast<std::size_t>(cols_)};
  }

  /// Rows [r0, r0 + n) as a view sharing this view's storage.
  MatrixViewT row_range(std::int64_t r0, std::int64_t n) const {
    SWAT_CHECK_BOUNDS(r0 >= 0 && n >= 0 && r0 + n <= rows_);
    return {data_ + r0 * stride_, n, cols_, stride_};
  }

  T* data() const { return data_; }

 private:
  T* data_ = nullptr;
  std::int64_t rows_ = 0;
  std::int64_t cols_ = 0;
  std::int64_t stride_ = 0;
};

using MatrixView = MatrixViewT<float>;
using ConstMatrixView = MatrixViewT<const float>;

/// Fill with iid normal(0, stddev) values; the standard synthetic stand-in
/// for Q/K/V projections of token embeddings.
MatrixF random_normal(std::int64_t rows, std::int64_t cols, Rng& rng,
                      double stddev = 1.0);

/// Fill with values whose covariance decays with 1-D index distance
/// (corr ~ exp(-|i-j|/corr_len) across rows). Models "text-like" token
/// streams where local context dominates — the regime window attention is
/// designed for (paper §2.2 cites the impact of local context).
MatrixF random_locally_correlated_1d(std::int64_t rows, std::int64_t cols,
                                     Rng& rng, double corr_len);

/// Fill with values correlated over a 2-D grid of side sqrt(rows)
/// (image-like structure for the vision tasks in paper Tables 3/4; rows must
/// be a perfect square).
MatrixF random_locally_correlated_2d(std::int64_t rows, std::int64_t cols,
                                     Rng& rng, double corr_len);

}  // namespace swat
