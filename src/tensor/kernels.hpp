// Host-side dense linear-algebra kernels used by the reference attention
// implementations and the baseline models. Deliberately simple and obviously
// correct: these are the oracles the hardware models are validated against.
#pragma once

#include <span>

#include "tensor/matrix.hpp"

namespace swat {

/// C = A * B  (A: m x k, B: k x n).
MatrixF matmul(const MatrixF& a, const MatrixF& b);

/// C = A * B^T (A: m x k, B: n x k). Attention computes S = Q * K^T; keeping
/// the transpose inside the kernel avoids materializing K^T.
MatrixF matmul_nt(const MatrixF& a, const MatrixF& b);

MatrixF transpose(const MatrixF& a);

/// Numerically-stable row softmax: subtracts the row max before
/// exponentiation. This is the reference semantics for all accuracy
/// comparisons.
void row_softmax_stable(MatrixF& m);

/// "Naive" row softmax exactly as written in the paper's Eq. 1: exp without
/// max subtraction, then divide by the row sum of exponentials. SWAT's fused
/// datapath implements this form; keeping both lets the tests quantify when
/// the two diverge (large positive scores overflow fp16 exp).
void row_softmax_naive(MatrixF& m);

/// Dot product of two equal-length spans in float.
float dot(std::span<const float> a, std::span<const float> b);

/// y += alpha * x.
void axpy(float alpha, std::span<const float> x, std::span<float> y);

/// Max absolute difference between two same-shaped matrices.
float max_abs_diff(const MatrixF& a, const MatrixF& b);

/// Frobenius-norm relative error ||a-b||_F / ||b||_F (b is the reference).
double relative_error(const MatrixF& a, const MatrixF& b);

/// Mean cosine similarity between corresponding rows of a and b.
double mean_row_cosine(const MatrixF& a, const MatrixF& b);

}  // namespace swat
