// Host-side dense linear-algebra kernels used by the reference attention
// implementations and the baseline models.
//
// Two tiers:
//  * `*_naive` — the original scalar triple-loops, deliberately simple and
//    obviously correct. These are the oracles the blocked kernels (and the
//    hardware models) are validated against, and the baseline the
//    microbenchmarks measure speedups over.
//  * `matmul` / `matmul_nt` / `transpose` and their allocation-free
//    `*_into` variants — cache-blocked, SIMD-friendly, parallelized over
//    row blocks via the shared ThreadPool. Deterministic for any thread
//    count (the reduction order per output element is fixed; only the
//    partition of rows over threads varies).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/dtype.hpp"
#include "common/topology.hpp"
#include "common/uninit_allocator.hpp"
#include "tensor/matrix.hpp"

namespace swat {

/// A reusable scratch-memory arena. `take(n)` hands out a float span of
/// length n, reusing a previously released slab when one is large enough;
/// `release` returns a span to the arena. Slabs are stable: taking a new
/// span never invalidates live ones. Intended use is the thread-local
/// instance below, which makes the hot paths allocation-free after warmup.
class Workspace {
 public:
  std::span<float> take(std::size_t n);
  void release(std::span<float> s);

  /// Slabs currently allocated (live + free) — exposed for tests.
  std::size_t slab_count() const { return slabs_.size(); }

  /// Total floats held by the arena (live + free slabs). Stable across
  /// repeated identical workloads once warmed up — the batching runtime's
  /// tests assert this to prove the hot path stops allocating.
  std::size_t capacity_floats() const;

 private:
  struct Slab {
    std::unique_ptr<float[]> data;
    std::size_t capacity = 0;
    bool in_use = false;
  };
  std::vector<Slab> slabs_;
};

/// RAII lease of a Workspace span: releases on scope exit, so a throwing
/// kernel body (e.g. a contract violation rethrown out of parallel_for)
/// cannot permanently pin a slab. Movable (moved-from leases release
/// nothing) so leases can be held in containers and handed across scopes
/// instead of being confined to one block.
class WorkspaceLease {
 public:
  WorkspaceLease(Workspace& ws, std::size_t n) : ws_(&ws), span_(ws.take(n)) {}
  ~WorkspaceLease() { reset(); }
  WorkspaceLease(const WorkspaceLease&) = delete;
  WorkspaceLease& operator=(const WorkspaceLease&) = delete;
  WorkspaceLease(WorkspaceLease&& other) noexcept
      : ws_(other.ws_), span_(other.span_) {
    other.ws_ = nullptr;
    other.span_ = {};
  }
  WorkspaceLease& operator=(WorkspaceLease&& other) noexcept {
    if (this != &other) {
      reset();
      ws_ = other.ws_;
      span_ = other.span_;
      other.ws_ = nullptr;
      other.span_ = {};
    }
    return *this;
  }

  std::span<float> span() const { return span_; }
  float* data() const { return span_.data(); }
  float& operator[](std::size_t i) const { return span_[i]; }

 private:
  void reset() {
    if (ws_ != nullptr) ws_->release(span_);
    ws_ = nullptr;
    span_ = {};
  }

  Workspace* ws_;
  std::span<float> span_;
};

/// Per-thread workspace used by the kernels themselves.
Workspace& tls_workspace();

/// C = A * B  (A: m x k, B: k x n). Blocked + parallel.
MatrixF matmul(const MatrixF& a, const MatrixF& b);

/// C = A * B^T (A: m x k, B: n x k). Attention computes S = Q * K^T; keeping
/// the transpose inside the kernel avoids materializing K^T at the call
/// site (internally B is transposed once into the workspace so the inner
/// loops stream unit-stride). Blocked + parallel.
MatrixF matmul_nt(const MatrixF& a, const MatrixF& b);

MatrixF transpose(const MatrixF& a);

/// Allocation-free variants: `out` must already have the result shape.
void matmul_into(const MatrixF& a, const MatrixF& b, MatrixF& out);
void matmul_nt_into(const MatrixF& a, const MatrixF& b, MatrixF& out);
void transpose_into(const MatrixF& a, MatrixF& out);

/// out = A * B^T + broadcast bias row (bias length = B rows). Fused so the
/// Linear layer initializes the accumulator with the bias instead of making
/// a second pass over the output.
void matmul_nt_bias_into(const MatrixF& a, const MatrixF& b,
                         std::span<const float> bias, MatrixF& out);

/// Original scalar reference kernels (the oracles' oracle).
MatrixF matmul_naive(const MatrixF& a, const MatrixF& b);
MatrixF matmul_nt_naive(const MatrixF& a, const MatrixF& b);

// ----------------------------------------------------------------------
// Packed-weight GEMM. A Linear weight is constant across every batch it
// serves, so the serving engine packs it ONCE (Engine::compile) into a
// panel-major layout the microkernel streams unit-stride, instead of
// re-transposing or re-walking the row-major weight per batch:
//
//   W (out x in, row-major)  --pack-->  panel 0 | panel 1 | ... | panel P-1
//
//   each panel = kPanel (=32) consecutive output columns, stored k-major:
//   panel row kk holds W[j0..j0+31][kk] contiguously, so the inner loop
//   broadcasts one A element and multiply-accumulates it against 32
//   contiguous weights. The last panel is zero-padded to kPanel lanes
//   (padded lanes are computed and discarded; zero weights keep them
//   finite).
//
// Panels store either binary32 (the default) or binary16 elements:
//
//  * Dtype::kFp32 — the microkernel accumulates every output element with
//    a single float accumulator in ascending-k order with the multiply
//    rounded before the add (SWAT_NO_FP_CONTRACT pins that even on FMA
//    ISAs) — the exact arithmetic of matmul_nt_naive's dot() — so
//    gemm_packed output is bit-identical to the scalar oracle for every
//    shape, thread count, tile partition, AND host ISA (-march=native and
//    portable builds produce the same bits).
//  * Dtype::kFp16 — pack_weight_nt rounds each weight once (RNE) to
//    binary16 at pack time, halving the panel bytes the microkernel
//    streams; the kernel widens each panel back to float before the tile
//    loop and keeps every accumulator fp32 in the same ascending-k order.
//    Outputs are deterministic — bit-identical across SWAT_THREADS,
//    arrival orders and runs (the tile grid is static, see parallel_for_2d)
//    — but NOT bit-equal to the fp32 oracle (the weights were rounded) and
//    not pinned across ISAs: having given up oracle parity, the fp16 tile
//    drops the no-contract pin and lets FMA ISAs contract (fewer
//    roundings, strictly tighter error). Accuracy is gated by the
//    precision-fidelity test against the calibration budget, not by
//    bit-equality.
//
// Fused epilogues (bias seed, GELU, residual add) touch each output
// element once while it is still in a register instead of re-streaming the
// output matrix per pass.
struct PackedWeight {
  /// Output columns per packed panel (the microkernel's register width:
  /// 32 lanes x 6 rows of accumulators = 12 independent FMA chains on
  /// 512-bit SIMD, enough to hide the FMA latency).
  static constexpr std::int64_t kPanel = 32;

  // Panel storage skips value-initialization (DefaultInitAllocator) so
  // resize() leaves pages untouched and the parallel pack fill performs
  // the first write of every element — on Linux that first touch binds
  // each page to the writing thread's NUMA node, which is what makes a
  // per-replica pack land on the replica's node under partitioned
  // placement. pack_weight_nt writes every element (values and padding)
  // exactly once, so nothing is ever read uninitialized.
  template <typename T>
  using Buffer = std::vector<T, DefaultInitAllocator<T>>;

  std::int64_t in_features = 0;   ///< k (depth of the reduction)
  std::int64_t out_features = 0;  ///< n (logical output columns)
  Dtype dtype = Dtype::kFp32;     ///< element storage type of the panels
  Buffer<float> data;             ///< fp32 panels (empty when dtype=fp16)
  Buffer<std::uint16_t> data_f16;  ///< fp16 panels (same layout)

  std::int64_t panels() const {
    return (out_features + kPanel - 1) / kPanel;
  }
  /// Logical element count (padded lanes included) — identical for every
  /// dtype, so capacity accounting that predates the dtype knob stays
  /// meaningful. Multiply by dtype_bytes(dtype) for the real footprint.
  std::size_t floats() const {
    return dtype == Dtype::kFp16 ? data_f16.size() : data.size();
  }
  /// Actual resident panel bytes (the quantity the cost model prices).
  std::size_t bytes() const { return floats() * dtype_bytes(dtype); }
  bool empty() const { return data.empty() && data_f16.empty(); }

  /// Padded element count for a given logical shape — what floats() will
  /// report after packing. Exposed so the cost model can price the weight
  /// stream from geometry alone, without holding a pack.
  static constexpr std::size_t padded_elements(std::int64_t out_features,
                                               std::int64_t in_features) {
    const std::int64_t panels = (out_features + kPanel - 1) / kPanel;
    return static_cast<std::size_t>(panels * in_features * kPanel);
  }
};

/// Pack `w` (out_features x in_features, the Linear weight layout) into
/// panel-major form, converting to `dtype` (RNE for fp16) element by
/// element. Reuses the destination vector's capacity, so repacking after a
/// weight mutation does not allocate once the shape has been seen.
void pack_weight_nt(const MatrixF& w, PackedWeight& packed,
                    Dtype dtype = Dtype::kFp32);

/// RAII: while alive on the constructing thread, pack_weight_nt fills
/// panels under a node-striped first-touch schedule instead of the ambient
/// pool's parallel fill — panel p belongs to stripe p % node_sets.size(),
/// and each stripe's panels are written by the CALLING thread while it is
/// pinned to that stripe's CpuSet, so on Linux the pack's pages land
/// round-robin across the given NUMA nodes (the server's
/// SharedPackPlacement::kInterleaved). Every element is still written
/// exactly once and each panel's contents are computed by the same code as
/// the parallel fill, so the packed bits are identical to an unstriped
/// pack — only page placement changes. The caller's affinity is restored
/// when the pack returns. Nesting stacks (innermost wins); a single-entry
/// set degenerates to a pinned serial fill.
class ScopedPackStriping {
 public:
  explicit ScopedPackStriping(std::vector<CpuSet> node_sets);
  ~ScopedPackStriping();
  ScopedPackStriping(const ScopedPackStriping&) = delete;
  ScopedPackStriping& operator=(const ScopedPackStriping&) = delete;

 private:
  std::vector<CpuSet> node_sets_;
  const std::vector<CpuSet>* prev_;
};

/// True when two packs are bit-identical: same shape, dtype, and panel
/// bytes (padding lanes included). The per-node pack replicas built under
/// SharedPackPlacement::kReplicatedPerNode are asserted identical to the
/// first pack with exactly this predicate.
bool packed_weights_equal(const PackedWeight& a, const PackedWeight& b);

/// out = A * W^T [+ bias row]. A is m x in_features; out must be
/// m x out_features and may not alias A. `bias` (length out_features, or
/// empty) seeds the accumulators, exactly like matmul_nt_bias_into.
/// Bit-identical to matmul_nt_naive when bias is empty and the pack is
/// fp32; fp16 packs are deterministic but fidelity-gated (see above).
/// Parallelized over a 2D (row tile x column panel) grid via
/// parallel_for_2d.
void gemm_packed_into(ConstMatrixView a, const PackedWeight& w,
                      std::span<const float> bias, MatrixView out);

/// out = gelu(A * W^T + bias): the FFN-expand epilogue. Bit-identical to
/// gemm_packed_into followed by gelu_into, without the extra pass.
void gemm_packed_gelu_into(ConstMatrixView a, const PackedWeight& w,
                           std::span<const float> bias, MatrixView out);

/// out = A * W^T + bias + residual: the FFN-contract epilogue (residual is
/// m x out_features). Bit-identical to gemm_packed_into followed by
/// add_rows_into, without the extra pass. `residual` may alias `a` but not
/// `out`.
void gemm_packed_residual_into(ConstMatrixView a, const PackedWeight& w,
                               std::span<const float> bias,
                               ConstMatrixView residual, MatrixView out);

namespace detail {

/// Raw strided GEMM: C[m x n] = A[m x k] * B[k x n] (+ optional broadcast
/// init row), row-major with leading dimensions lda/ldb/ldc. When
/// `parallel` is set the m dimension is split over the thread pool.
/// Exposed for kernels that operate on sub-views (e.g. sliding-chunk
/// tiles slicing rows out of Q and columns out of K^T).
void gemm(const float* a, std::int64_t lda, const float* b, std::int64_t ldb,
          float* c, std::int64_t ldc, std::int64_t m, std::int64_t n,
          std::int64_t k, const float* init_row, bool parallel);

/// Raw blocked transpose: T[cols x rows] = A[rows x cols]^T.
void transpose_raw(const float* a, std::int64_t lda, float* t,
                   std::int64_t ldt, std::int64_t rows, std::int64_t cols);

}  // namespace detail

// ----------------------------------------------------------------------
// Plan-driven elementwise / row-wise kernels. These are the layers of the
// compiled execution plan that are neither GEMMs nor attention: they read
// and write through non-owning MatrixViews so the Engine can run them over
// pre-bound arena buffers with zero allocation, and each has a deliberately
// scalar `*_naive` oracle the tests compare against bit-for-bit.
// All three are deterministic for any thread count (strictly per-element /
// per-row work, no cross-element reductions beyond a single row).

/// Row-wise layer normalization: for each row, subtract the mean, divide by
/// sqrt(var + eps) (both accumulated in double, in index order), then apply
/// the per-feature affine. `out` must have x's shape and may alias x
/// row-for-row (in-place). gamma/beta length must equal x.cols().
void layer_norm_into(ConstMatrixView x, std::span<const float> gamma,
                     std::span<const float> beta, float eps, MatrixView out);

/// Scalar oracle for layer_norm_into (allocates its result).
MatrixF layer_norm_naive(const MatrixF& x, std::span<const float> gamma,
                         std::span<const float> beta, float eps);

/// GELU activation, tanh approximation — the exact expression the encoder
/// has always used, exposed at the tensor layer so the planned and the
/// allocating paths share one definition.
float gelu(float x);

/// out[i, j] = gelu(x[i, j]); `out` may alias x (in-place).
void gelu_into(ConstMatrixView x, MatrixView out);

/// Scalar oracle for gelu_into (allocates its result).
MatrixF gelu_naive(const MatrixF& x);

/// out[i, j] = a[i, j] + b[i, j]; `out` may alias a or b (this is the
/// residual-add of the encoder, usually run in place as a += b).
void add_rows_into(ConstMatrixView a, ConstMatrixView b, MatrixView out);

/// Scalar oracle for add_rows_into (allocates its result).
MatrixF add_rows_naive(const MatrixF& a, const MatrixF& b);

/// Numerically-stable row softmax: subtracts the row max before
/// exponentiation. This is the reference semantics for all accuracy
/// comparisons.
void row_softmax_stable(MatrixF& m);

/// "Naive" row softmax exactly as written in the paper's Eq. 1: exp without
/// max subtraction, then divide by the row sum of exponentials. SWAT's fused
/// datapath implements this form; keeping both lets the tests quantify when
/// the two diverge (large positive scores overflow fp16 exp). Exponentials
/// and the row sum are evaluated in double so large-magnitude logits (up to
/// ~709) don't overflow the accumulator and trip the sum > 0 invariant.
void row_softmax_naive(MatrixF& m);

/// Dot product of two equal-length spans in float.
float dot(std::span<const float> a, std::span<const float> b);

/// y += alpha * x.
void axpy(float alpha, std::span<const float> x, std::span<float> y);

/// Max absolute difference between two same-shaped matrices.
float max_abs_diff(const MatrixF& a, const MatrixF& b);

/// Frobenius-norm relative error ||a-b||_F / ||b||_F (b is the reference).
double relative_error(const MatrixF& a, const MatrixF& b);

/// Mean cosine similarity between corresponding rows of a and b.
double mean_row_cosine(const MatrixF& a, const MatrixF& b);

}  // namespace swat
