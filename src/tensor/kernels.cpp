#include "tensor/kernels.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace swat {

MatrixF matmul(const MatrixF& a, const MatrixF& b) {
  SWAT_EXPECTS(a.cols() == b.rows());
  MatrixF c(a.rows(), b.cols());
  for (std::int64_t i = 0; i < a.rows(); ++i) {
    for (std::int64_t k = 0; k < a.cols(); ++k) {
      const float aik = a(i, k);
      if (aik == 0.0f) continue;
      auto brow = b.row(k);
      auto crow = c.row(i);
      for (std::int64_t j = 0; j < b.cols(); ++j) {
        crow[static_cast<std::size_t>(j)] +=
            aik * brow[static_cast<std::size_t>(j)];
      }
    }
  }
  return c;
}

MatrixF matmul_nt(const MatrixF& a, const MatrixF& b) {
  SWAT_EXPECTS(a.cols() == b.cols());
  MatrixF c(a.rows(), b.rows());
  for (std::int64_t i = 0; i < a.rows(); ++i) {
    for (std::int64_t j = 0; j < b.rows(); ++j) {
      c(i, j) = dot(a.row(i), b.row(j));
    }
  }
  return c;
}

MatrixF transpose(const MatrixF& a) {
  MatrixF t(a.cols(), a.rows());
  for (std::int64_t i = 0; i < a.rows(); ++i)
    for (std::int64_t j = 0; j < a.cols(); ++j) t(j, i) = a(i, j);
  return t;
}

void row_softmax_stable(MatrixF& m) {
  for (std::int64_t i = 0; i < m.rows(); ++i) {
    auto r = m.row(i);
    const float mx = *std::max_element(r.begin(), r.end());
    float sum = 0.0f;
    for (float& v : r) {
      v = std::exp(v - mx);
      sum += v;
    }
    SWAT_ENSURES(sum > 0.0f);
    for (float& v : r) v /= sum;
  }
}

void row_softmax_naive(MatrixF& m) {
  for (std::int64_t i = 0; i < m.rows(); ++i) {
    auto r = m.row(i);
    float sum = 0.0f;
    for (float& v : r) {
      v = std::exp(v);
      sum += v;
    }
    SWAT_ENSURES(sum > 0.0f);
    for (float& v : r) v /= sum;
  }
}

float dot(std::span<const float> a, std::span<const float> b) {
  SWAT_EXPECTS(a.size() == b.size());
  float s = 0.0f;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

void axpy(float alpha, std::span<const float> x, std::span<float> y) {
  SWAT_EXPECTS(x.size() == y.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

float max_abs_diff(const MatrixF& a, const MatrixF& b) {
  SWAT_EXPECTS(a.rows() == b.rows() && a.cols() == b.cols());
  float mx = 0.0f;
  auto fa = a.flat();
  auto fb = b.flat();
  for (std::size_t i = 0; i < fa.size(); ++i) {
    mx = std::max(mx, std::abs(fa[i] - fb[i]));
  }
  return mx;
}

double relative_error(const MatrixF& a, const MatrixF& b) {
  SWAT_EXPECTS(a.rows() == b.rows() && a.cols() == b.cols());
  double num = 0.0;
  double den = 0.0;
  auto fa = a.flat();
  auto fb = b.flat();
  for (std::size_t i = 0; i < fa.size(); ++i) {
    const double d = static_cast<double>(fa[i]) - fb[i];
    num += d * d;
    den += static_cast<double>(fb[i]) * fb[i];
  }
  if (den == 0.0) return num == 0.0 ? 0.0 : std::numeric_limits<double>::infinity();
  return std::sqrt(num / den);
}

double mean_row_cosine(const MatrixF& a, const MatrixF& b) {
  SWAT_EXPECTS(a.rows() == b.rows() && a.cols() == b.cols());
  double acc = 0.0;
  std::int64_t counted = 0;
  for (std::int64_t i = 0; i < a.rows(); ++i) {
    auto ra = a.row(i);
    auto rb = b.row(i);
    double ab = 0.0, aa = 0.0, bb = 0.0;
    for (std::size_t j = 0; j < ra.size(); ++j) {
      ab += static_cast<double>(ra[j]) * rb[j];
      aa += static_cast<double>(ra[j]) * ra[j];
      bb += static_cast<double>(rb[j]) * rb[j];
    }
    if (aa == 0.0 || bb == 0.0) continue;
    acc += ab / std::sqrt(aa * bb);
    ++counted;
  }
  return counted == 0 ? 0.0 : acc / static_cast<double>(counted);
}

}  // namespace swat
