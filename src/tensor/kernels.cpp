#include "tensor/kernels.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <numbers>
#include <optional>

#include "common/fp16.hpp"
#include "common/thread_pool.hpp"

namespace swat {

// ----------------------------------------------------------- workspace ----

std::span<float> Workspace::take(std::size_t n) {
  for (Slab& s : slabs_) {
    if (!s.in_use && s.capacity >= n) {
      s.in_use = true;
      return {s.data.get(), n};
    }
  }
  // Miss: every free slab is too small. Drop them before allocating so a
  // workload with growing shapes retains ~the high-water sizes actually in
  // flight, not one slab per historical size.
  std::erase_if(slabs_, [](const Slab& s) { return !s.in_use; });
  Slab slab;
  slab.capacity = std::max<std::size_t>(n, 1);
  slab.data = std::make_unique<float[]>(slab.capacity);
  slab.in_use = true;
  slabs_.push_back(std::move(slab));
  return {slabs_.back().data.get(), n};
}

void Workspace::release(std::span<float> s) {
  for (Slab& slab : slabs_) {
    if (slab.data.get() == s.data()) {
      SWAT_EXPECTS(slab.in_use);
      slab.in_use = false;
      return;
    }
  }
  SWAT_EXPECTS(false && "released span not owned by this workspace");
}

std::size_t Workspace::capacity_floats() const {
  std::size_t total = 0;
  for (const Slab& s : slabs_) total += s.capacity;
  return total;
}

Workspace& tls_workspace() {
  thread_local Workspace ws;
  return ws;
}

// --------------------------------------------------------- blocked GEMM ----

namespace detail {

namespace {

// Row-panel and depth-panel sizes. kDepthBlock rows of B (each up to the
// full n wide) form the streaming panel; 256 rows x 512 cols x 4 B = 512 KiB
// fits comfortably in L2 for the shapes this repository runs.
constexpr std::int64_t kRowBlock = 64;
constexpr std::int64_t kDepthBlock = 256;

// Serial GEMM over rows [i0, i1). The k dimension is unrolled by 4 so each
// C row is loaded/stored once per four B rows, and the j loop is a pure
// independent-lane FMA loop the compiler vectorizes. The per-element
// reduction order is fixed (k ascending in the same groups regardless of
// blocking), so results do not depend on the row partition.
void gemm_rows(const float* a, std::int64_t lda, const float* b,
               std::int64_t ldb, float* c, std::int64_t ldc, std::int64_t i0,
               std::int64_t i1, std::int64_t n, std::int64_t k,
               const float* init_row) {
  for (std::int64_t i = i0; i < i1; ++i) {
    float* crow = c + i * ldc;
    if (init_row != nullptr) {
      std::copy(init_row, init_row + n, crow);
    } else {
      std::fill(crow, crow + n, 0.0f);
    }
  }
  for (std::int64_t kb = 0; kb < k; kb += kDepthBlock) {
    const std::int64_t kend = std::min(kb + kDepthBlock, k);
    // Two C rows per pass share the four streamed B rows, halving B
    // bandwidth per flop; the k-unroll of 4 amortizes each C-row
    // load/store over four FMA groups. (A 4-row variant was tried and
    // regressed ~4x: indexing the row pointers through arrays defeats
    // GCC's aliasing analysis and the loop stops vectorizing.) The
    // per-element reduction order (k ascending within a row, the four
    // products summed left to right) is the same in every loop variant,
    // so results are independent of which pass a row lands in and of the
    // thread partition.
    std::int64_t i = i0;
    for (; i + 2 <= i1; i += 2) {
      const float* arow0 = a + i * lda;
      const float* arow1 = arow0 + lda;
      float* crow0 = c + i * ldc;
      float* crow1 = crow0 + ldc;
      std::int64_t kk = kb;
      for (; kk + 4 <= kend; kk += 4) {
        const float a00 = arow0[kk], a01 = arow0[kk + 1];
        const float a02 = arow0[kk + 2], a03 = arow0[kk + 3];
        const float a10 = arow1[kk], a11 = arow1[kk + 1];
        const float a12 = arow1[kk + 2], a13 = arow1[kk + 3];
        const float* b0 = b + kk * ldb;
        const float* b1 = b0 + ldb;
        const float* b2 = b1 + ldb;
        const float* b3 = b2 + ldb;
        for (std::int64_t j = 0; j < n; ++j) {
          const float b0j = b0[j], b1j = b1[j], b2j = b2[j], b3j = b3[j];
          crow0[j] += a00 * b0j + a01 * b1j + a02 * b2j + a03 * b3j;
          crow1[j] += a10 * b0j + a11 * b1j + a12 * b2j + a13 * b3j;
        }
      }
      for (; kk < kend; ++kk) {
        const float a0k = arow0[kk];
        const float a1k = arow1[kk];
        const float* brow = b + kk * ldb;
        for (std::int64_t j = 0; j < n; ++j) {
          crow0[j] += a0k * brow[j];
          crow1[j] += a1k * brow[j];
        }
      }
    }
    for (; i < i1; ++i) {
      const float* arow = a + i * lda;
      float* crow = c + i * ldc;
      std::int64_t kk = kb;
      for (; kk + 4 <= kend; kk += 4) {
        const float a0 = arow[kk];
        const float a1 = arow[kk + 1];
        const float a2 = arow[kk + 2];
        const float a3 = arow[kk + 3];
        const float* b0 = b + kk * ldb;
        const float* b1 = b0 + ldb;
        const float* b2 = b1 + ldb;
        const float* b3 = b2 + ldb;
        for (std::int64_t j = 0; j < n; ++j) {
          crow[j] += a0 * b0[j] + a1 * b1[j] + a2 * b2[j] + a3 * b3[j];
        }
      }
      for (; kk < kend; ++kk) {
        const float ak = arow[kk];
        const float* brow = b + kk * ldb;
        for (std::int64_t j = 0; j < n; ++j) crow[j] += ak * brow[j];
      }
    }
  }
}

}  // namespace

void gemm(const float* a, std::int64_t lda, const float* b, std::int64_t ldb,
          float* c, std::int64_t ldc, std::int64_t m, std::int64_t n,
          std::int64_t k, const float* init_row, bool parallel) {
  if (m <= 0 || n <= 0) return;
  if (!parallel) {
    gemm_rows(a, lda, b, ldb, c, ldc, 0, m, n, k, init_row);
    return;
  }
  parallel_for(0, m, kRowBlock,
               [&](std::int64_t i0, std::int64_t i1) {
                 gemm_rows(a, lda, b, ldb, c, ldc, i0, i1, n, k, init_row);
               });
}

void transpose_raw(const float* a, std::int64_t lda, float* t,
                   std::int64_t ldt, std::int64_t rows, std::int64_t cols) {
  constexpr std::int64_t kTile = 32;
  for (std::int64_t ib = 0; ib < rows; ib += kTile) {
    const std::int64_t iend = std::min(ib + kTile, rows);
    for (std::int64_t jb = 0; jb < cols; jb += kTile) {
      const std::int64_t jend = std::min(jb + kTile, cols);
      for (std::int64_t i = ib; i < iend; ++i) {
        for (std::int64_t j = jb; j < jend; ++j) {
          t[j * ldt + i] = a[i * lda + j];
        }
      }
    }
  }
}

}  // namespace detail

// ----------------------------------------------------------- public API ----

void matmul_into(const MatrixF& a, const MatrixF& b, MatrixF& out) {
  SWAT_EXPECTS(a.cols() == b.rows());
  SWAT_EXPECTS(out.rows() == a.rows() && out.cols() == b.cols());
  // Aliasing only matters between live storage: empty matrices share the
  // null (or stale) pointer and must not trip the check.
  SWAT_EXPECTS(out.size() == 0 || a.size() == 0 || out.data() != a.data());
  SWAT_EXPECTS(out.size() == 0 || b.size() == 0 || out.data() != b.data());
  detail::gemm(a.data(), a.cols(), b.data(), b.cols(), out.data(), out.cols(),
               a.rows(), b.cols(), a.cols(), nullptr, /*parallel=*/true);
}

MatrixF matmul(const MatrixF& a, const MatrixF& b) {
  SWAT_EXPECTS(a.cols() == b.rows());
  MatrixF c(a.rows(), b.cols());
  matmul_into(a, b, c);
  return c;
}

namespace {

void matmul_nt_impl(const MatrixF& a, const MatrixF& b,
                    std::span<const float> bias, MatrixF& out) {
  SWAT_EXPECTS(a.cols() == b.cols());
  SWAT_EXPECTS(out.rows() == a.rows() && out.cols() == b.rows());
  SWAT_EXPECTS(out.size() == 0 || a.size() == 0 || out.data() != a.data());
  SWAT_EXPECTS(out.size() == 0 || b.size() == 0 || out.data() != b.data());
  const std::int64_t k = a.cols();
  const std::int64_t n = b.rows();
  // Transpose B once (O(nk), negligible against the O(mnk) GEMM) so the
  // inner loops stream unit-stride instead of walking one dot product per
  // output element.
  WorkspaceLease bt(tls_workspace(), static_cast<std::size_t>(k * n));
  detail::transpose_raw(b.data(), k, bt.data(), n, n, k);
  detail::gemm(a.data(), k, bt.data(), n, out.data(), n, a.rows(), n, k,
               bias.empty() ? nullptr : bias.data(), /*parallel=*/true);
}

}  // namespace

void matmul_nt_into(const MatrixF& a, const MatrixF& b, MatrixF& out) {
  matmul_nt_impl(a, b, {}, out);
}

void matmul_nt_bias_into(const MatrixF& a, const MatrixF& b,
                         std::span<const float> bias, MatrixF& out) {
  SWAT_EXPECTS(bias.size() == static_cast<std::size_t>(b.rows()));
  matmul_nt_impl(a, b, bias, out);
}

MatrixF matmul_nt(const MatrixF& a, const MatrixF& b) {
  SWAT_EXPECTS(a.cols() == b.cols());
  MatrixF c(a.rows(), b.rows());
  matmul_nt_into(a, b, c);
  return c;
}

void transpose_into(const MatrixF& a, MatrixF& out) {
  SWAT_EXPECTS(out.rows() == a.cols() && out.cols() == a.rows());
  SWAT_EXPECTS(out.size() == 0 || a.size() == 0 || out.data() != a.data());
  detail::transpose_raw(a.data(), a.cols(), out.data(), a.rows(), a.rows(),
                        a.cols());
}

MatrixF transpose(const MatrixF& a) {
  MatrixF t(a.cols(), a.rows());
  transpose_into(a, t);
  return t;
}

// ---------------------------------------------------- packed-weight GEMM ----

namespace {

/// The striping schedule ScopedPackStriping installed on this thread, if
/// any. Thread-local so one replica pool's interleaved pack cannot leak
/// into a concurrent pack on another thread.
thread_local const std::vector<CpuSet>* tls_pack_striping = nullptr;

}  // namespace

ScopedPackStriping::ScopedPackStriping(std::vector<CpuSet> node_sets)
    : node_sets_(std::move(node_sets)), prev_(tls_pack_striping) {
  SWAT_EXPECTS(!node_sets_.empty());
  tls_pack_striping = &node_sets_;
}

ScopedPackStriping::~ScopedPackStriping() { tls_pack_striping = prev_; }

bool packed_weights_equal(const PackedWeight& a, const PackedWeight& b) {
  if (a.in_features != b.in_features || a.out_features != b.out_features ||
      a.dtype != b.dtype || a.data.size() != b.data.size() ||
      a.data_f16.size() != b.data_f16.size()) {
    return false;
  }
  if (!a.data.empty() &&
      std::memcmp(a.data.data(), b.data.data(),
                  a.data.size() * sizeof(float)) != 0) {
    return false;
  }
  if (!a.data_f16.empty() &&
      std::memcmp(a.data_f16.data(), b.data_f16.data(),
                  a.data_f16.size() * sizeof(std::uint16_t)) != 0) {
    return false;
  }
  return true;
}

void pack_weight_nt(const MatrixF& w, PackedWeight& packed, Dtype dtype) {
  packed.in_features = w.cols();
  packed.out_features = w.rows();
  packed.dtype = dtype;
  const std::int64_t k = packed.in_features;
  const std::int64_t panels = packed.panels();
  const std::size_t total =
      static_cast<std::size_t>(panels * k * PackedWeight::kPanel);
  // resize (default-init, DefaultInitAllocator — pages stay untouched)
  // rather than assign: the panel loop below writes EVERY element of the
  // live pack, padding lanes included, so the parallel fill is both the
  // complete initialization and the first touch of each page. Under
  // partitioned placement the pack runs on the replica's pinned pool, so
  // first-touch binds the pack's pages to that replica's NUMA node.
  // Capacity is retained across repacks; the other-dtype vector is
  // cleared (capacity kept) so floats()/bytes() report only the live
  // pack.
  if (dtype == Dtype::kFp16) {
    packed.data_f16.resize(total);
    packed.data.clear();
  } else {
    packed.data.resize(total);
    packed.data_f16.clear();
  }
  // One panel's fill — shared verbatim by the parallel and the striped
  // schedules, so a panel's bits never depend on which schedule (or
  // thread) wrote it.
  const auto fill_panel = [&](std::int64_t p) {
    const std::size_t base =
        static_cast<std::size_t>(p * k * PackedWeight::kPanel);
    const std::int64_t j0 = p * PackedWeight::kPanel;
    const std::int64_t width =
        std::min(PackedWeight::kPanel, packed.out_features - j0);
    for (std::int64_t kk = 0; kk < k; ++kk) {
      for (std::int64_t l = 0; l < width; ++l) {
        const float v = w(j0 + l, kk);
        const std::size_t at =
            base + static_cast<std::size_t>(kk * PackedWeight::kPanel + l);
        if (dtype == Dtype::kFp16) {
          // One RNE rounding per weight, once per pack — the only place
          // the fp16 path loses precision relative to fp32.
          packed.data_f16[at] = f32_to_f16_bits(v);
        } else {
          packed.data[at] = v;
        }
      }
      // Zero the padded lanes of the last panel explicitly — resize no
      // longer does it, and the microkernel reads all kPanel lanes.
      for (std::int64_t l = width; l < PackedWeight::kPanel; ++l) {
        const std::size_t at =
            base + static_cast<std::size_t>(kk * PackedWeight::kPanel + l);
        if (dtype == Dtype::kFp16) {
          packed.data_f16[at] = 0;
        } else {
          packed.data[at] = 0.0f;
        }
      }
    }
  };
  if (tls_pack_striping != nullptr) {
    // Node-striped serial fill (ScopedPackStriping): panel p belongs to
    // stripe p % nstripes, and the calling thread pins itself to each
    // stripe's CpuSet before writing that stripe's panels, so first-touch
    // lands the pack's pages round-robin across the stripes' NUMA nodes.
    // Every panel is still written exactly once; only WHERE the writing
    // thread runs — hence where pages bind — differs from the parallel
    // schedule.
    const std::vector<CpuSet>& stripes = *tls_pack_striping;
    const auto nstripes = static_cast<std::int64_t>(stripes.size());
    const CpuSet saved = current_thread_affinity();
    for (std::int64_t s = 0; s < nstripes; ++s) {
      pin_current_thread(stripes[static_cast<std::size_t>(s)]);
      for (std::int64_t p = s; p < panels; p += nstripes) fill_panel(p);
    }
    if (!saved.empty()) pin_current_thread(saved);
    return;
  }
  // Parallel over whole panels: panels are disjoint slabs, and each
  // element (values and the last panel's zero padding alike) is written
  // exactly once by exactly one thread, so the result is bit-identical
  // for any thread count or chunk partition.
  parallel_for(0, panels, 1, [&](std::int64_t p0, std::int64_t p1) {
    for (std::int64_t p = p0; p < p1; ++p) fill_panel(p);
  });
}

namespace {

enum class PackedEpilogue { kNone, kGelu, kResidualAdd };

constexpr std::int64_t kPanel = PackedWeight::kPanel;
// Rows per register tile: 6 rows x 32 lanes = 12 independent 512-bit
// multiply-accumulate chains (or 24 256-bit ones) — enough to hide the
// arithmetic latency without exhausting the architectural registers.
// Measured on the encoder's projection/FFN shapes this tile runs
// 1.7-2.6x the blocked row-major GEMM with -march=native (where the
// blocked kernel contracts to FMA but this one, pinned un-contracted for
// cross-ISA bit-stability, still wins on register reuse alone).
constexpr std::int64_t kPackedRowTile = 6;
// 2D fan-out grain: row tiles x panel groups. 60 rows (10 full register
// tiles) x 8 panels (256 columns) keeps a tile's A rows and packed panels
// cache-resident while exposing enough tiles that the pool load-balances
// ragged shapes.
constexpr std::int64_t kPackedRowGrain = 60;
constexpr std::int64_t kPackedPanelGrain = 8;

/// Apply the epilogue to one accumulator and store it. The accumulator
/// already holds bias + sum_k a*w in ascending-k order; GELU and the
/// residual add see exactly the value a separate pass would have loaded,
/// so the fused epilogues are bit-identical to the unfused sequence.
inline float packed_finish(float acc, PackedEpilogue ep, float residual) {
  switch (ep) {
    case PackedEpilogue::kNone:
      return acc;
    case PackedEpilogue::kGelu:
      return gelu(acc);
    case PackedEpilogue::kResidualAdd:
      return acc + residual;
  }
  return acc;  // unreachable
}

/// Register-tiled microkernel: ROWS query rows against one packed panel.
/// Each of the ROWS x kPanel accumulators is a single float walked in
/// ascending k — the exact reduction order of matmul_nt_naive's dot() —
/// so results are bit-identical to the scalar oracle and independent of
/// the tile partition, the row tile size, and the thread count. The k
/// loop is unrolled by 4 as *separate* accumulate statements (never
/// pairwise sums), which trims loop overhead without touching the
/// reduction order.
template <int ROWS>
SWAT_NO_FP_CONTRACT void gemm_packed_tile(
    const float* a, std::int64_t lda, const float* panel, std::int64_t k,
    const float* seed, PackedEpilogue ep, ConstMatrixView residual,
    MatrixView out, std::int64_t i, std::int64_t j0, std::int64_t width) {
  SWAT_NO_FP_CONTRACT_BODY
  float acc[ROWS][kPanel];
  const float* ar[ROWS];
  for (int r = 0; r < ROWS; ++r) {
    ar[r] = a + (i + r) * lda;
    for (std::int64_t l = 0; l < kPanel; ++l) acc[r][l] = seed[l];
  }
  std::int64_t kk = 0;
  for (; kk + 4 <= k; kk += 4) {
    const float* bp0 = panel + kk * kPanel;
    for (int u = 0; u < 4; ++u) {
      const float* bp = bp0 + u * kPanel;
      for (int r = 0; r < ROWS; ++r) {
        const float av = ar[r][kk + u];
        for (std::int64_t l = 0; l < kPanel; ++l) acc[r][l] += av * bp[l];
      }
    }
  }
  for (; kk < k; ++kk) {
    const float* bp = panel + kk * kPanel;
    for (int r = 0; r < ROWS; ++r) {
      const float av = ar[r][kk];
      for (std::int64_t l = 0; l < kPanel; ++l) acc[r][l] += av * bp[l];
    }
  }
  for (int r = 0; r < ROWS; ++r) {
    for (std::int64_t l = 0; l < width; ++l) {
      out(i + r, j0 + l) = packed_finish(
          acc[r][l], ep,
          ep == PackedEpilogue::kResidualAdd ? residual(i + r, j0 + l)
                                             : 0.0f);
    }
  }
}

/// The fp16 variant of gemm_packed_tile: identical loop structure and
/// accumulation order (single fp32 accumulator per element, ascending k),
/// but WITHOUT the SWAT_NO_FP_CONTRACT pin. A deliberate near-duplicate
/// rather than a shared body: GCC refuses to inline across functions with
/// differing `optimize` attributes, and the whole point of the fp16 path
/// is to let -march=native contract the multiply-add into FMAs — the pack
/// already rounded the weights, so oracle bit-parity is gone and fewer
/// roundings is strictly more accurate. The panel pointer it receives is
/// the widened fp32 scratch copy of an fp16 panel, so results depend only
/// on the pack contents — never on thread count or tile partition.
template <int ROWS>
void gemm_packed_tile_contract(const float* a, std::int64_t lda,
                               const float* panel, std::int64_t k,
                               const float* seed, PackedEpilogue ep,
                               ConstMatrixView residual, MatrixView out,
                               std::int64_t i, std::int64_t j0,
                               std::int64_t width) {
  float acc[ROWS][kPanel];
  const float* ar[ROWS];
  for (int r = 0; r < ROWS; ++r) {
    ar[r] = a + (i + r) * lda;
    for (std::int64_t l = 0; l < kPanel; ++l) acc[r][l] = seed[l];
  }
  std::int64_t kk = 0;
  for (; kk + 4 <= k; kk += 4) {
    const float* bp0 = panel + kk * kPanel;
    for (int u = 0; u < 4; ++u) {
      const float* bp = bp0 + u * kPanel;
      for (int r = 0; r < ROWS; ++r) {
        const float av = ar[r][kk + u];
        for (std::int64_t l = 0; l < kPanel; ++l) acc[r][l] += av * bp[l];
      }
    }
  }
  for (; kk < k; ++kk) {
    const float* bp = panel + kk * kPanel;
    for (int r = 0; r < ROWS; ++r) {
      const float av = ar[r][kk];
      for (std::int64_t l = 0; l < kPanel; ++l) acc[r][l] += av * bp[l];
    }
  }
  for (int r = 0; r < ROWS; ++r) {
    for (std::int64_t l = 0; l < width; ++l) {
      out(i + r, j0 + l) = packed_finish(
          acc[r][l], ep,
          ep == PackedEpilogue::kResidualAdd ? residual(i + r, j0 + l)
                                             : 0.0f);
    }
  }
}

/// Serial packed-GEMM over rows [i0, i1) and panels [p0, p1): full
/// kPackedRowTile-row register tiles, then single-row tiles for the
/// remainder (same per-element arithmetic, so the split point does not
/// affect results). For fp16 packs, each panel is widened once into a
/// per-thread scratch buffer (k x kPanel floats, amortized over all the
/// task's row tiles) and the contraction-allowed tile runs on the widened
/// copy — the decode is the only extra work, and the streamed bytes per
/// panel halve.
void gemm_packed_rows(ConstMatrixView a, const PackedWeight& w,
                      const float* bias, PackedEpilogue ep,
                      ConstMatrixView residual, MatrixView out,
                      std::int64_t i0, std::int64_t i1, std::int64_t p0,
                      std::int64_t p1) {
  const std::int64_t k = w.in_features;
  const std::int64_t n = w.out_features;
  const float* adata = a.data();
  const std::int64_t lda = a.stride();
  const bool half = w.dtype == Dtype::kFp16;
  // Scratch for one widened panel; leased per task, so after warmup the
  // per-thread workspace serves every subsequent call allocation-free.
  // The fp32 path takes no lease at all.
  std::optional<WorkspaceLease> widened;
  if (half) {
    widened.emplace(tls_workspace(), static_cast<std::size_t>(k * kPanel));
  }
  for (std::int64_t p = p0; p < p1; ++p) {
    const float* panel;
    if (half) {
      f16_bits_to_f32_batch(
          w.data_f16.data() + static_cast<std::size_t>(p * k * kPanel),
          widened->data(), static_cast<std::size_t>(k * kPanel));
      panel = widened->data();
    } else {
      panel = w.data.data() + static_cast<std::size_t>(p * k * kPanel);
    }
    const std::int64_t j0 = p * kPanel;
    const std::int64_t width = std::min(kPanel, n - j0);
    // Padded lanes seed with 0 and accumulate against zero weights; they
    // stay finite and are never stored.
    float seed[kPanel];
    for (std::int64_t l = 0; l < kPanel; ++l) {
      seed[l] = (bias != nullptr && l < width) ? bias[j0 + l] : 0.0f;
    }
    std::int64_t i = i0;
    if (half) {
      for (; i + kPackedRowTile <= i1; i += kPackedRowTile) {
        gemm_packed_tile_contract<kPackedRowTile>(
            adata, lda, panel, k, seed, ep, residual, out, i, j0, width);
      }
      for (; i < i1; ++i) {
        gemm_packed_tile_contract<1>(adata, lda, panel, k, seed, ep,
                                     residual, out, i, j0, width);
      }
    } else {
      for (; i + kPackedRowTile <= i1; i += kPackedRowTile) {
        gemm_packed_tile<kPackedRowTile>(adata, lda, panel, k, seed, ep,
                                         residual, out, i, j0, width);
      }
      for (; i < i1; ++i) {
        gemm_packed_tile<1>(adata, lda, panel, k, seed, ep, residual, out, i,
                            j0, width);
      }
    }
  }
}

void gemm_packed_impl(ConstMatrixView a, const PackedWeight& w,
                      std::span<const float> bias, PackedEpilogue ep,
                      ConstMatrixView residual, MatrixView out) {
  SWAT_EXPECTS(a.cols() == w.in_features);
  SWAT_EXPECTS(out.rows() == a.rows() && out.cols() == w.out_features);
  SWAT_EXPECTS(bias.empty() ||
               bias.size() == static_cast<std::size_t>(w.out_features));
  SWAT_EXPECTS(out.size() == 0 || a.size() == 0 || out.data() != a.data());
  if (ep == PackedEpilogue::kResidualAdd) {
    SWAT_EXPECTS(residual.rows() == out.rows() &&
                 residual.cols() == out.cols());
    // The epilogue reads residual(i, j) while out(i, j) may still hold
    // stale data — aliasing the two would fold garbage into the result.
    SWAT_EXPECTS(out.size() == 0 || residual.size() == 0 ||
                 out.data() != residual.data());
  }
  const std::int64_t m = a.rows();
  if (m == 0 || w.out_features == 0) return;  // no output elements exist
  // k == 0 still initializes every element from the bias seed (or zero):
  // the microkernel's k loop is simply empty.
  const float* bias_ptr = bias.empty() ? nullptr : bias.data();
  parallel_for_2d(m, kPackedRowGrain, w.panels(), kPackedPanelGrain,
                  [&](std::int64_t i0, std::int64_t i1, std::int64_t panel0,
                      std::int64_t panel1) {
                    gemm_packed_rows(a, w, bias_ptr, ep, residual, out, i0,
                                     i1, panel0, panel1);
                  });
}

}  // namespace

void gemm_packed_into(ConstMatrixView a, const PackedWeight& w,
                      std::span<const float> bias, MatrixView out) {
  gemm_packed_impl(a, w, bias, PackedEpilogue::kNone, {}, out);
}

void gemm_packed_gelu_into(ConstMatrixView a, const PackedWeight& w,
                           std::span<const float> bias, MatrixView out) {
  gemm_packed_impl(a, w, bias, PackedEpilogue::kGelu, {}, out);
}

void gemm_packed_residual_into(ConstMatrixView a, const PackedWeight& w,
                               std::span<const float> bias,
                               ConstMatrixView residual, MatrixView out) {
  gemm_packed_impl(a, w, bias, PackedEpilogue::kResidualAdd, residual, out);
}

// ------------------------------------------------- naive seed kernels ----

MatrixF matmul_naive(const MatrixF& a, const MatrixF& b) {
  SWAT_EXPECTS(a.cols() == b.rows());
  MatrixF c(a.rows(), b.cols());
  for (std::int64_t i = 0; i < a.rows(); ++i) {
    for (std::int64_t k = 0; k < a.cols(); ++k) {
      const float aik = a(i, k);
      if (aik == 0.0f) continue;
      auto brow = b.row(k);
      auto crow = c.row(i);
      for (std::int64_t j = 0; j < b.cols(); ++j) {
        crow[static_cast<std::size_t>(j)] +=
            aik * brow[static_cast<std::size_t>(j)];
      }
    }
  }
  return c;
}

MatrixF matmul_nt_naive(const MatrixF& a, const MatrixF& b) {
  SWAT_EXPECTS(a.cols() == b.cols());
  MatrixF c(a.rows(), b.rows());
  for (std::int64_t i = 0; i < a.rows(); ++i) {
    for (std::int64_t j = 0; j < b.rows(); ++j) {
      c(i, j) = dot(a.row(i), b.row(j));
    }
  }
  return c;
}

// ------------------------------------------- plan-driven layer kernels ----

namespace {

/// Minimum elements per chunk for the elementwise fan-outs — coarse enough
/// that a chunk amortizes the fork-join, matching the encoder's historical
/// grain so the partition (and thus nothing, since the kernels are
/// per-element) is unchanged.
constexpr std::int64_t kElemGrain = 1 << 14;

}  // namespace

void layer_norm_into(ConstMatrixView x, std::span<const float> gamma,
                     std::span<const float> beta, float eps, MatrixView out) {
  SWAT_EXPECTS(out.rows() == x.rows() && out.cols() == x.cols());
  SWAT_EXPECTS(gamma.size() == static_cast<std::size_t>(x.cols()));
  SWAT_EXPECTS(beta.size() == static_cast<std::size_t>(x.cols()));
  SWAT_EXPECTS(eps > 0.0f);
  // Mean and variance accumulate in double, in index order — the exact
  // arithmetic of the original LayerNorm::forward, so the planned path is
  // bit-identical to it. Rows are independent, so the row fan-out cannot
  // change results. In-place (out aliasing x row-for-row) is safe: each
  // output element is written only after every read of its own index.
  parallel_for(0, x.rows(), 8, [&](std::int64_t r0, std::int64_t r1) {
    for (std::int64_t i = r0; i < r1; ++i) {
      auto in = x.row(i);
      auto o = out.row(i);
      double mean = 0.0;
      for (float v : in) mean += v;
      mean /= static_cast<double>(in.size());
      double var = 0.0;
      for (float v : in) {
        const double d = v - mean;
        var += d * d;
      }
      var /= static_cast<double>(in.size());
      const double inv = 1.0 / std::sqrt(var + eps);
      for (std::size_t j = 0; j < in.size(); ++j) {
        o[j] = static_cast<float>((in[j] - mean) * inv) * gamma[j] + beta[j];
      }
    }
  });
}

MatrixF layer_norm_naive(const MatrixF& x, std::span<const float> gamma,
                         std::span<const float> beta, float eps) {
  SWAT_EXPECTS(gamma.size() == static_cast<std::size_t>(x.cols()));
  SWAT_EXPECTS(beta.size() == static_cast<std::size_t>(x.cols()));
  SWAT_EXPECTS(eps > 0.0f);
  MatrixF y(x.rows(), x.cols());
  for (std::int64_t i = 0; i < x.rows(); ++i) {
    auto in = x.row(i);
    auto o = y.row(i);
    double mean = 0.0;
    for (float v : in) mean += v;
    mean /= static_cast<double>(in.size());
    double var = 0.0;
    for (float v : in) {
      const double d = v - mean;
      var += d * d;
    }
    var /= static_cast<double>(in.size());
    const double inv = 1.0 / std::sqrt(var + eps);
    for (std::size_t j = 0; j < in.size(); ++j) {
      o[j] = static_cast<float>((in[j] - mean) * inv) * gamma[j] + beta[j];
    }
  }
  return y;
}

// No-contract so the polynomial rounds identically wherever it is called
// from — the fused GEMM epilogue (itself a no-contract context), the
// gelu_into pass, and the scalar oracle — on FMA and non-FMA ISAs alike.
SWAT_NO_FP_CONTRACT
float gelu(float x) {
  SWAT_NO_FP_CONTRACT_BODY
  const float c = std::sqrt(2.0f / std::numbers::pi_v<float>);
  return 0.5f * x * (1.0f + std::tanh(c * (x + 0.044715f * x * x * x)));
}

void gelu_into(ConstMatrixView x, MatrixView out) {
  SWAT_EXPECTS(out.rows() == x.rows() && out.cols() == x.cols());
  if (x.contiguous() && out.contiguous()) {
    const float* in = x.data();
    float* o = out.data();
    parallel_for(0, x.size(), kElemGrain,
                 [&](std::int64_t b, std::int64_t e) {
                   for (std::int64_t i = b; i < e; ++i) o[i] = gelu(in[i]);
                 });
    return;
  }
  parallel_for(0, x.rows(), 8, [&](std::int64_t r0, std::int64_t r1) {
    for (std::int64_t i = r0; i < r1; ++i) {
      auto in = x.row(i);
      auto o = out.row(i);
      for (std::size_t j = 0; j < in.size(); ++j) o[j] = gelu(in[j]);
    }
  });
}

MatrixF gelu_naive(const MatrixF& x) {
  MatrixF y(x.rows(), x.cols());
  auto in = x.flat();
  auto o = y.flat();
  for (std::size_t i = 0; i < in.size(); ++i) o[i] = gelu(in[i]);
  return y;
}

void add_rows_into(ConstMatrixView a, ConstMatrixView b, MatrixView out) {
  SWAT_EXPECTS(a.rows() == b.rows() && a.cols() == b.cols());
  SWAT_EXPECTS(out.rows() == a.rows() && out.cols() == a.cols());
  if (a.contiguous() && b.contiguous() && out.contiguous()) {
    const float* pa = a.data();
    const float* pb = b.data();
    float* o = out.data();
    parallel_for(0, a.size(), kElemGrain,
                 [&](std::int64_t i0, std::int64_t i1) {
                   for (std::int64_t i = i0; i < i1; ++i) o[i] = pa[i] + pb[i];
                 });
    return;
  }
  parallel_for(0, a.rows(), 8, [&](std::int64_t r0, std::int64_t r1) {
    for (std::int64_t i = r0; i < r1; ++i) {
      auto ra = a.row(i);
      auto rb = b.row(i);
      auto o = out.row(i);
      for (std::size_t j = 0; j < ra.size(); ++j) o[j] = ra[j] + rb[j];
    }
  });
}

MatrixF add_rows_naive(const MatrixF& a, const MatrixF& b) {
  SWAT_EXPECTS(a.rows() == b.rows() && a.cols() == b.cols());
  MatrixF y(a.rows(), a.cols());
  auto fa = a.flat();
  auto fb = b.flat();
  auto o = y.flat();
  for (std::size_t i = 0; i < fa.size(); ++i) o[i] = fa[i] + fb[i];
  return y;
}

// -------------------------------------------------------------- softmax ----

void row_softmax_stable(MatrixF& m) {
  parallel_for(0, m.rows(), 8, [&](std::int64_t r0, std::int64_t r1) {
    for (std::int64_t i = r0; i < r1; ++i) {
      auto r = m.row(i);
      const float mx = *std::max_element(r.begin(), r.end());
      float sum = 0.0f;
      for (float& v : r) {
        v = std::exp(v - mx);
        sum += v;
      }
      SWAT_ENSURES(sum > 0.0f);
      for (float& v : r) v /= sum;
    }
  });
}

void row_softmax_naive(MatrixF& m) {
  std::vector<double> e(static_cast<std::size_t>(m.cols()));
  for (std::int64_t i = 0; i < m.rows(); ++i) {
    auto r = m.row(i);
    double sum = 0.0;
    for (std::size_t j = 0; j < r.size(); ++j) {
      e[j] = std::exp(static_cast<double>(r[j]));
      sum += e[j];
    }
    SWAT_ENSURES(sum > 0.0);
    for (std::size_t j = 0; j < r.size(); ++j) {
      r[j] = static_cast<float>(e[j] / sum);
    }
  }
}

SWAT_NO_FP_CONTRACT
float dot(std::span<const float> a, std::span<const float> b) {
  SWAT_NO_FP_CONTRACT_BODY
  SWAT_EXPECTS(a.size() == b.size());
  float s = 0.0f;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

SWAT_NO_FP_CONTRACT
void axpy(float alpha, std::span<const float> x, std::span<float> y) {
  SWAT_NO_FP_CONTRACT_BODY
  SWAT_EXPECTS(x.size() == y.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

float max_abs_diff(const MatrixF& a, const MatrixF& b) {
  SWAT_EXPECTS(a.rows() == b.rows() && a.cols() == b.cols());
  float mx = 0.0f;
  auto fa = a.flat();
  auto fb = b.flat();
  for (std::size_t i = 0; i < fa.size(); ++i) {
    mx = std::max(mx, std::abs(fa[i] - fb[i]));
  }
  return mx;
}

double relative_error(const MatrixF& a, const MatrixF& b) {
  SWAT_EXPECTS(a.rows() == b.rows() && a.cols() == b.cols());
  double num = 0.0;
  double den = 0.0;
  auto fa = a.flat();
  auto fb = b.flat();
  for (std::size_t i = 0; i < fa.size(); ++i) {
    const double d = static_cast<double>(fa[i]) - fb[i];
    num += d * d;
    den += static_cast<double>(fb[i]) * fb[i];
  }
  if (den == 0.0) return num == 0.0 ? 0.0 : std::numeric_limits<double>::infinity();
  return std::sqrt(num / den);
}

double mean_row_cosine(const MatrixF& a, const MatrixF& b) {
  SWAT_EXPECTS(a.rows() == b.rows() && a.cols() == b.cols());
  double acc = 0.0;
  std::int64_t counted = 0;
  for (std::int64_t i = 0; i < a.rows(); ++i) {
    auto ra = a.row(i);
    auto rb = b.row(i);
    double ab = 0.0, aa = 0.0, bb = 0.0;
    for (std::size_t j = 0; j < ra.size(); ++j) {
      ab += static_cast<double>(ra[j]) * rb[j];
      aa += static_cast<double>(ra[j]) * ra[j];
      bb += static_cast<double>(rb[j]) * rb[j];
    }
    if (aa == 0.0 || bb == 0.0) continue;
    acc += ab / std::sqrt(aa * bb);
    ++counted;
  }
  return counted == 0 ? 0.0 : acc / static_cast<double>(counted);
}

}  // namespace swat
