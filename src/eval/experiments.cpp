#include "eval/experiments.hpp"

#include "baselines/butterfly.hpp"
#include "baselines/gpu_model.hpp"
#include "eval/calibration.hpp"
#include "swat/analytic.hpp"
#include "swat/power_model.hpp"
#include "swat/stage_latency.hpp"

namespace swat::eval {

std::vector<std::int64_t> fig_lengths() {
  return {512, 1024, 2048, 4096, 8192, 16384};
}

std::vector<std::int64_t> speedup_lengths() {
  return {1024, 2048, 4096, 8192, 16384};
}

std::vector<Fig1Row> fig1_breakdown(const attn::LayerShape& base,
                                    attn::AttentionVariant variant) {
  std::vector<Fig1Row> rows;
  for (std::int64_t n = 128; n <= 16384; n *= 2) {
    attn::LayerShape shape = base;
    shape.seq_len = n;
    const attn::LayerCost c = attn::analyze_layer(shape, variant);
    Fig1Row r;
    r.seq_len = n;
    r.linear_flops_share = c.linear_flops / c.total_flops();
    r.attention_flops_share = c.attention_flops / c.total_flops();
    r.ffn_flops_share = c.ffn_flops / c.total_flops();
    r.linear_mops_share = c.linear_mops / c.total_mops();
    r.attention_mops_share = c.attention_mops / c.total_mops();
    r.ffn_mops_share = c.ffn_mops / c.total_mops();
    rows.push_back(r);
  }
  return rows;
}

std::vector<Fig3Row> fig3_exec_mem() {
  const baselines::GpuModel gpu;
  const AnalyticModel swat16(SwatConfig::longformer_512(Dtype::kFp16));
  const AnalyticModel swat32(SwatConfig::longformer_512(Dtype::kFp32));

  std::vector<Fig3Row> rows;
  for (std::int64_t n : fig_lengths()) {
    const auto dense =
        gpu.estimate(baselines::GpuKernel::kDense, n);
    const auto chunks =
        gpu.estimate(baselines::GpuKernel::kSlidingChunks, n);
    Fig3Row r;
    r.seq_len = n;
    r.gpu_dense = dense.latency;
    r.gpu_chunks = chunks.latency;
    r.swat_fp16 = swat16.head_time(n);
    r.swat_fp32 = swat32.head_time(n);
    r.mem_gpu_dense = dense.peak_memory;
    r.mem_gpu_chunks = chunks.peak_memory;
    // SWAT's working set is the HBM-resident Q/K/V/Z stream (linear in n)
    // plus the fixed on-chip K/V buffers.
    r.mem_swat_fp16 = swat16.head_traffic(n) + swat16.onchip_working_set();
    r.mem_swat_fp32 = swat32.head_traffic(n) + swat32.onchip_working_set();
    rows.push_back(r);
  }
  return rows;
}

std::vector<Table1Entry> table1_stages(const SwatConfig& cfg) {
  const StageLatencies s = stage_latencies(cfg);
  return {
      {"LOAD", s.load},       {"QK", s.qk},
      {"SV", s.sv},           {"ZRED1", s.zred1},
      {"ZRED2", s.zred2},     {"ROWSUM1", s.rowsum1},
      {"ROWSUM2", s.rowsum2}, {"DIV&OUT", s.div_out},
  };
}

std::vector<Fig8Row> fig8_speedups() {
  const AnalyticModel swat(SwatConfig::longformer_512(Dtype::kFp16));
  const baselines::ButterflyModel btf1(baselines::ButterflyConfig::btf(1));
  const baselines::ButterflyModel btf2(baselines::ButterflyConfig::btf(2));

  std::vector<Fig8Row> rows;
  for (std::int64_t n : speedup_lengths()) {
    const Seconds t_swat =
        swat.model_time(n, calib::kModelHeads, calib::kModelLayers);
    Fig8Row r;
    r.seq_len = n;
    r.speedup_vs_btf1 = btf1.project(n).total / t_swat;
    r.speedup_vs_btf2 = btf2.project(n).total / t_swat;
    rows.push_back(r);
  }
  return rows;
}

std::vector<Fig9Row> fig9_energy_efficiency() {
  const SwatConfig cfg16 = SwatConfig::longformer_512(Dtype::kFp16);
  const SwatConfig cfg32 = SwatConfig::longformer_512(Dtype::kFp32);
  const AnalyticModel swat16(cfg16);
  const AnalyticModel swat32(cfg32);
  const baselines::ButterflyModel btf1(baselines::ButterflyConfig::btf(1));
  const baselines::ButterflyModel btf2(baselines::ButterflyConfig::btf(2));
  const baselines::GpuModel gpu;

  std::vector<Fig9Row> rows;
  for (std::int64_t n : speedup_lengths()) {
    Fig9Row r;
    r.seq_len = n;

    // Model-level comparison against Butterfly (both run the full L-layer
    // model; SWAT runs every layer as window attention).
    const Joules e16_model = swat_model_energy(cfg16, n, calib::kModelHeads,
                                               calib::kModelLayers);
    r.fp16_vs_btf1 = btf1.model_energy(n) / e16_model;
    r.fp16_vs_btf2 = btf2.model_energy(n) / e16_model;

    // Per-head comparison against the GPU kernels (the Fig. 3 unit).
    const Joules e16 = swat_head_energy(cfg16, n);
    const Joules e32 = swat_head_energy(cfg32, n);
    const Joules gpu_dense =
        gpu.estimate(baselines::GpuKernel::kDense, n).energy;
    const Joules gpu_chunks =
        gpu.estimate(baselines::GpuKernel::kSlidingChunks, n).energy;
    r.fp16_vs_gpu_dense = gpu_dense / e16;
    r.fp16_vs_gpu_chunks = gpu_chunks / e16;
    r.fp32_vs_gpu_dense = gpu_dense / e32;
    r.fp32_vs_gpu_chunks = gpu_chunks / e32;
    rows.push_back(r);
  }
  return rows;
}

std::vector<PublishedAccuracyRow> table3_published() {
  return {
      {"Longformer", 15.26, 3.03, 0.17, 1.61, 5.02},
      {"Bigbird", 13.87, 8.16, 1.34, 2.03, 6.35},
      {"BTF-1", 6.26, 2.85, 0.01, 2.40, 3.01},
      {"BTF-2", 8.95, 2.14, 1.05, 2.42, 3.64},
  };
}

std::vector<PublishedImagenetRow> table4_published() {
  return {
      {"ViL-Tiny", 6.7, 76.7},   {"Pixelfly-M-S", 5.9, 72.6},
      {"ViL-Small", 24.6, 82.4}, {"Pixelfly-V-S", 16.9, 77.5},
      {"Pixelfly-M-B", 17.4, 76.3}, {"Pixelfly-V-B", 28.2, 78.6},
      {"ViL-Med", 39.7, 83.5},
  };
}

}  // namespace swat::eval
