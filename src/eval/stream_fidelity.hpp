// Stream-fidelity harness for half-precision streamed attention tiles.
//
// The fp16 stream (EncoderConfig::stream_dtype = Dtype::kFp16) trades
// oracle bit-parity for halved K/V tile bytes in the fused attention
// kernel: the per-thread transposed K tile and V band absorb one binary16
// rounding per tile, while scores, the exp/denominator pass and the Z
// accumulator stay fp32 in ascending order. Outputs stay deterministic
// (bit-identical across SWAT_THREADS, arrival orders, replica counts and
// batch compositions) but differ from the fp32 fused oracle by a bounded
// rounding perturbation. This harness measures that perturbation the same
// way precision_fidelity.* measures pack rounding — cosine and Frobenius
// relative error against the fp32 reference — and compares it to the
// calibrated budget (calib::kFp16StreamHeadRelErrBudget and friends),
// which tests/test_stream_precision enforces as a gate.
//
// Two comparisons, mirroring precision_fidelity's teacher-forced /
// free-running split:
//   * per-head (kernel-level): fused_window_attention_batch_into with
//     stream_dtype = kFp16 vs kFp32 on identical random Q/K/V, judged
//     head slice by head slice against the single-row amplification bound
//     u * kFp16StreamAmplification;
//   * end-to-end (free-running): the compiled fp16-streaming Engine runs
//     the whole stack and its divergence from the fp32-streaming Encoder
//     oracle is judged against layers x the per-layer budget.
#pragma once

#include <cstdint>
#include <vector>

#include "model/encoder.hpp"

namespace swat::eval {

/// One head's kernel-level comparison (fp16 streamed tiles vs the fp32
/// fused path, identical inputs).
struct HeadStreamPrecision {
  double cosine = 0.0;     ///< mean row cosine vs the fp32 head output
  double rel_error = 0.0;  ///< Frobenius relative error, fp32 as reference
};

struct StreamFidelityResult {
  std::vector<HeadStreamPrecision> per_head;  ///< kernel-level, one per head
  double worst_head_rel_error = 0.0;
  double worst_head_cosine = 1.0;
  /// Free-running fp16-streaming Engine::run output vs the fp32-streaming
  /// Encoder::forward oracle on the same input.
  double end_to_end_rel_error = 0.0;
  double end_to_end_cosine = 1.0;
  /// The calibrated budgets the measurements are judged against
  /// (calib::kFp16StreamHeadRelErrBudget;
  /// layers x kFp16StreamEndToEndRelErrPerLayer).
  double head_budget = 0.0;
  double end_to_end_budget = 0.0;
  /// Every head and the end-to-end run fit their rel-error budget AND the
  /// cosine floor derived from it (calib::fp16_cosine_floor).
  bool within_budget = false;
};

/// Run the fused kernel over random-normal Q/K/V of `seq_len` tokens with
/// fp32 and fp16 streamed tiles and score each head slice, then build two
/// encoders from `cfg` differing ONLY in stream_dtype (fp32 reference,
/// fp16 method; same weight_seed, so the comparison isolates tile
/// rounding), run both over a random-normal input, and score end-to-end
/// fidelity against the calibrated budget. `cfg.backend` must be
/// kFusedStreaming (the only backend with a stream_dtype knob);
/// `cfg.stream_dtype` is overwritten on both sides.
StreamFidelityResult stream_fidelity(model::EncoderConfig cfg,
                                     std::int64_t seq_len,
                                     std::uint64_t input_seed);

}  // namespace swat::eval
