#include "eval/precision_fidelity.hpp"

#include <algorithm>
#include <array>

#include "common/rng.hpp"
#include "eval/calibration.hpp"
#include "runtime/engine.hpp"
#include "tensor/kernels.hpp"

namespace swat::eval {

PrecisionFidelityResult precision_fidelity(model::EncoderConfig cfg,
                                           std::int64_t seq_len,
                                           std::uint64_t input_seed) {
  model::EncoderConfig ref_cfg = cfg;
  ref_cfg.pack_dtype = Dtype::kFp32;
  model::EncoderConfig half_cfg = cfg;
  half_cfg.pack_dtype = Dtype::kFp16;

  // Same weight_seed on both sides: pack_dtype consumes no Rng draws, so
  // the fp32 master weights are bit-identical and every measured delta is
  // panel rounding, nothing else.
  const model::Encoder reference(ref_cfg);
  const model::Encoder method(half_cfg);

  Rng rng(input_seed);
  const MatrixF input = random_normal(seq_len, cfg.d_model, rng);

  PrecisionFidelityResult result;
  result.layer_budget = calib::kFp16LayerRelErrBudget;
  result.end_to_end_budget =
      static_cast<double>(cfg.layers) * calib::kFp16EndToEndRelErrPerLayer;

  // Teacher-forced sweep: both layers see the fp32 reference trajectory,
  // so each comparison isolates one layer's pack rounding.
  result.per_layer.reserve(static_cast<std::size_t>(cfg.layers));
  MatrixF x = input;
  for (int i = 0; i < cfg.layers; ++i) {
    const MatrixF y_ref = reference.layer(i).forward(x);
    const MatrixF y_half = method.layer(i).forward(x);
    LayerPrecision layer;
    layer.cosine = mean_row_cosine(y_half, y_ref);
    layer.rel_error = relative_error(y_half, y_ref);
    result.worst_layer_rel_error =
        std::max(result.worst_layer_rel_error, layer.rel_error);
    result.worst_layer_cosine =
        std::min(result.worst_layer_cosine, layer.cosine);
    result.per_layer.push_back(layer);
    x = y_ref;
  }

  // Free-running end to end: the compiled fp16 engine (the path serving
  // actually runs) against the fp32 oracle.
  Engine engine = Engine::compile(half_cfg, seq_len);
  const std::array<std::int64_t, 2> offsets{0, seq_len};
  const MatrixF& out_half = engine.run(input, offsets);
  const MatrixF out_ref = reference.forward(input);
  result.end_to_end_rel_error = relative_error(out_half, out_ref);
  result.end_to_end_cosine = mean_row_cosine(out_half, out_ref);

  result.within_budget =
      result.worst_layer_rel_error <= result.layer_budget &&
      result.worst_layer_cosine >=
          calib::fp16_cosine_floor(result.layer_budget) &&
      result.end_to_end_rel_error <= result.end_to_end_budget &&
      result.end_to_end_cosine >=
          calib::fp16_cosine_floor(result.end_to_end_budget);
  return result;
}

}  // namespace swat::eval
