// Calibration constants — the single place where numbers that stand in for
// measured hardware live (DESIGN.md §5 "Calibration policy").
//
// Every constant states (a) what physical quantity it models and (b) which
// paper datum anchors it. Derived quantities (pipeline II, speedups, energy
// ratios) are computed by the models from these constants and checked by
// tests against the paper's reported values; shape properties (scaling
// exponents, crossovers, monotonicity) are asserted independently so a
// constant edit cannot silently break the reproduction.
#pragma once

#include "common/units.hpp"

namespace swat::calib {

// ---------------------------------------------------------------------------
// Clocking
// ---------------------------------------------------------------------------

/// SWAT kernel clock on the U55C. The paper reports cycle counts only; a
/// 300 MHz Vitis HLS kernel clock is the routine result for this device
/// class and makes the FP32 16k-token latency land at the ~15 ms scale of
/// paper Fig. 3 (16384 rows x 264 cycles / 300 MHz = 14.4 ms).
inline constexpr Hertz kSwatClock = Hertz::mega(300.0);

// ---------------------------------------------------------------------------
// HLS stage-latency fit (paper Table 1; H = 64, 2w = 512, FP16)
// ---------------------------------------------------------------------------
// Stage latencies follow II * trip_count + depth. The II values are stated
// in the paper (FP16 MAC II = 3; FP32's 264-cycle QK stage over H = 64
// implies II = 4). The additive depths below are fitted to reproduce the
// published Table 1 exactly and are asserted in tests/test_stage_latency.

inline constexpr std::uint64_t kLoadDepth = 2;         ///< LOAD = H + 2 = 66
inline constexpr std::uint64_t kLoadRandomDepth = 3;   ///< 3H + 3 = 195 (§4.1)
inline constexpr std::uint64_t kQkDepthFp16 = 9;       ///< 3H + 9  = 201
inline constexpr std::uint64_t kQkDepthFp32 = 8;       ///< 4H + 8  = 264
inline constexpr std::uint64_t kSvDepth = 5;           ///< II*H + 5 = 197
inline constexpr std::uint64_t kRedDepth = 3;          ///< II*H + 3 = 195
inline constexpr std::uint64_t kZred2Depth = 2;        ///< H + 2   = 66
inline constexpr std::uint64_t kDivInitiationInterval = 2;  ///< §4 "2-cycle"
inline constexpr std::uint64_t kDivDepth = 51;         ///< 2H + 51 = 179

// ---------------------------------------------------------------------------
// FPGA power model (Xilinx Power Estimator methodology, §5.3)
// ---------------------------------------------------------------------------
// Unit dynamic powers at the reference clock and the toggle rates of a
// busy SWAT pipeline. Anchor: the energy-efficiency ratios of Fig. 9
// (11.4x over BTF-1 and 21.9x over BTF-2 at 16k; ~4.2x minimum over the
// dense GPU at 8k in FP32) pin the absolute SWAT power levels near 27 W
// (FP16, 512 cores) and 49 W (FP32).

inline constexpr double kStaticWatts = 5.7;
inline constexpr double kDspMilliwatts = 7.5;
inline constexpr double kLutMilliwatts = 0.05;
inline constexpr double kFfMilliwatts = 0.015;
inline constexpr double kBramMilliwatts = 8.0;
inline constexpr double kHbmWattsPerGbps = 0.012;

inline constexpr double kSwatDspToggle = 0.6;
inline constexpr double kSwatLutToggle = 0.4;
inline constexpr double kSwatFfToggle = 0.4;
inline constexpr double kSwatBramToggle = 0.5;

/// Butterfly's engines serialize (the ATTN-BTF engine runs while FFT-BTF
/// engines sit idle and vice versa), so its fleet-average toggle is far
/// lower than SWAT's fully-pipelined datapath. Calibrated so the Fig. 9
/// energy ratios land given the Fig. 8 speedups (=> ~14 W average).
inline constexpr double kButterflyToggle = 0.08;

// ---------------------------------------------------------------------------
// AMD MI210 GPU model (paper §5.4, Fig. 3)
// ---------------------------------------------------------------------------

/// Board power the paper uses for the GPU energy comparison ("MI210, which
/// has a power consumption of 300 watts").
inline constexpr Watts kGpuBoardPower{300.0};

/// Effective sustained FP32 throughput of the dense attention kernel chain
/// (rocBLAS GEMMs + MIOpen softmax). The MI210 peaks at 22.6 TFLOPS FP32
/// vector; attention sustains a fraction of that. Anchored so the FP32
/// energy-efficiency minimum vs the dense GPU lands at ~4.2x at 8k tokens
/// (paper §5.4), giving ~3.5 TFLOPS (15% of peak).
inline constexpr double kGpuDenseEffFlops = 3.47e12;

/// Latency floor for the single-batch, single-head kernel sequence: below
/// ~4k tokens the GPU is under-utilized and latency stops shrinking
/// (paper: "execution time begins to rise sharply" only past 4k). Anchored
/// by the ~20x FP32 energy-efficiency ratio at 1k tokens.
inline constexpr Seconds kGpuDenseFloor = Seconds::milli(2.94);

/// Sliding-chunks effective throughput. The chunked kernels are small and
/// launch-bound, sustaining far less than the dense GEMM; anchored so the
/// chunks curve stays "similar to the dense method" (paper §1/Fig. 3)
/// through 16k: t_chunks(16k) ~ 14 ms.
inline constexpr double kGpuChunksEffFlops = 0.397e12;

/// Extra launch/ramp floor for the chunked kernel sequence (more, smaller
/// launches than dense at short lengths).
inline constexpr Seconds kGpuChunksFloor = Seconds::milli(3.38);

/// HBM2e bandwidth of the MI210 (1.6 TB/s); the dense kernel also has a
/// bandwidth-bound leg from streaming the N^2 score matrix.
inline constexpr double kGpuBandwidthBytesPerSec = 1.6e12;

/// Per-kernel launch overhead; multiplies the number of kernel launches in
/// the chunked implementation ("overhead for increased frequency of small
/// kernel launches", §1).
inline constexpr Seconds kGpuLaunchOverhead = Seconds::micro(8.0);

// ---------------------------------------------------------------------------
// Butterfly accelerator model (paper §5.1/§5.3, Figs. 8 and 9)
// ---------------------------------------------------------------------------
// The paper projects Butterfly's performance by optimally splitting fabric
// between the quadratic ATTN-BTF engine and the N log N FFT-BTF engine.
// With full fabric, one head of softmax attention costs
//   kButterflyAttnSecPerToken2 * N^2            seconds,
// and one head-equivalent FFT mixing layer costs
//   kButterflyFftSecPerTokenLog * N * log2(N)   seconds.
// Anchors: SWAT speedup 6.7x over BTF-1 and 12.2x over BTF-2 at N = 4096
// (paper §5.3); the implied full-fabric ATTN-BTF throughput is ~46 GFLOPS,
// consistent with a general-purpose fp16 attention engine.

inline constexpr double kButterflyAttnSecPerToken2 = 5.57e-9;
inline constexpr double kButterflyFftSecPerTokenLog = 1.75e-8;

/// Layers in the evaluated LRA-scale model; BTF-k replaces the last k FFT
/// layers with softmax attention layers.
inline constexpr int kModelLayers = 8;

/// Heads per layer (Longformer-base geometry: d_model 768 = 12 x 64).
inline constexpr int kModelHeads = 12;

// ---------------------------------------------------------------------------
// Host serving: weight streaming and the fp16 pack fidelity budget
// ---------------------------------------------------------------------------

/// Sustained host memory bandwidth the packed-GEMM weight stream competes
/// for — the stand-in for one commodity DDR4-3200 channel (25.6 GB/s).
/// Not a paper datum (the host serves where the paper's GPU does); used by
/// BatchCostModel to price the per-batch weight sweep so dispatch sees the
/// pack_dtype bandwidth change.
inline constexpr double kHostWeightStreamBytesPerSec = 25.6e9;

/// Unit roundoff of binary16 (2^-11): the one rounding each packed weight
/// absorbs when pack_dtype = fp16. Anchor: the paper's datapath is FP16
/// (§4, Table 2) with 11-bit significands; the host pack models exactly
/// that storage precision while keeping fp32 accumulation.
inline constexpr double kFp16UnitRoundoff = 0x1p-11;

/// Worst-case amplification of the per-weight roundoff through one GEMM
/// reduction: |y~ - y| <= u * sum|w x| <= u * sqrt(k) * ||w|| ||x|| with
/// signed cancellation, so the relative Frobenius error of a layer is
/// bounded by u * sqrt(k_max). The deepest reduction in the stack is the
/// FFN contraction (k = ffn_mult * d_model = 3072, sqrt = 55.4); 64 rounds
/// that up to a clean power of two. Measured per-layer errors sit well
/// under this bound (LayerNorm renormalizes), which is what makes it a
/// budget rather than a fit.
inline constexpr double kFp16GemmAmplification = 64.0;

/// Per-layer relative-error budget for an fp16-packed encoder layer
/// evaluated on the fp32 reference trajectory (teacher-forced, so layer
/// errors do not compound): u * amplification = 2^-11 * 64 = 1/32.
inline constexpr double kFp16LayerRelErrBudget =
    kFp16UnitRoundoff * kFp16GemmAmplification;

/// End-to-end (free-running) relative-error budget per layer of depth:
/// divergence compounds roughly additively because post-norm LayerNorm
/// re-normalizes every block output, so an L-layer stack gets L times the
/// per-layer budget. The precision-fidelity test multiplies by the actual
/// layer count of the model under test.
inline constexpr double kFp16EndToEndRelErrPerLayer = kFp16LayerRelErrBudget;

/// Cosine floor derived from a relative-error budget e: two unit-scale
/// vectors within relative distance e have cosine >= 1 - e^2 / 2. Applied
/// to the mean row cosine in the fidelity gate.
constexpr double fp16_cosine_floor(double rel_err_budget) {
  return 1.0 - 0.5 * rel_err_budget * rel_err_budget;
}

// ---------------------------------------------------------------------------
// Streamed-tile precision: the fp16 K/V tile fidelity budget
// ---------------------------------------------------------------------------

/// Worst-case amplification of the binary16 tile roundoff through one
/// fused-attention row (stream_dtype = kFp16; scores and Z stay fp32, so
/// the only roundings are the once-per-tile K and V narrowing). Three
/// factors compound: the QK reduction over head_dim = 64 once-rounded K
/// elements (u * sqrt(64) = 8u with signed cancellation), the exp stage
/// turning that absolute score error into a relative weight error
/// (d(exp s)/exp s = ds — at most a few u for unit-normal operands with
/// the 1/sqrt(h) scaling folded into Q), and the S'V convex combination
/// over once-rounded V rows (one more u; convexity does not amplify).
/// 64 rounds the product up to a clean power of two, mirroring
/// kFp16GemmAmplification; measured per-head errors sit well under it,
/// which is what makes it a budget rather than a fit.
inline constexpr double kFp16StreamAmplification = 64.0;

/// Per-head relative-error budget for the fp16 streamed-tile kernel vs the
/// fp32 fused oracle on identical inputs: u * amplification = 2^-11 * 64
/// = 1/32.
inline constexpr double kFp16StreamHeadRelErrBudget =
    kFp16UnitRoundoff * kFp16StreamAmplification;

/// End-to-end (free-running) relative-error budget per layer of depth for
/// an fp16-streaming encoder vs the fp32-streaming oracle: post-norm
/// LayerNorm re-normalizes every block output, so divergence compounds
/// roughly additively — same argument as kFp16EndToEndRelErrPerLayer. The
/// stream-fidelity gate multiplies by the layer count of the model under
/// test.
inline constexpr double kFp16StreamEndToEndRelErrPerLayer =
    kFp16StreamHeadRelErrBudget;

}  // namespace swat::calib
