// Precision-fidelity harness for half-precision packed weights.
//
// The fp16 pack (EncoderConfig::pack_dtype = Dtype::kFp16) trades oracle
// bit-parity for halved weight-stream bytes: every packed panel absorbs one
// binary16 rounding at pack time, and the packed GEMM widens panels back to
// fp32 on load, keeping every accumulator fp32. Outputs stay deterministic
// (bit-identical across SWAT_THREADS, arrival orders, and runs) but differ
// from the fp32 pack by a bounded rounding perturbation. This harness
// measures that perturbation the same way attention/fidelity.* measures
// mixing fidelity — cosine and Frobenius relative error against the fp32
// reference — and compares it to the calibrated budget
// (calib::kFp16LayerRelErrBudget and friends), which the precision test
// enforces as a gate.
//
// Two comparisons, mirroring the teacher-forced/free-running split that
// attention/fidelity.* documents:
//   * per-layer (teacher-forced): each fp16-packed layer is evaluated on
//     the fp32 reference trajectory, so layer errors do not compound and
//     the worst layer is judged against the single-GEMM amplification
//     bound u * sqrt(k_max);
//   * end-to-end (free-running): the compiled fp16 Engine runs the whole
//     stack and its divergence is judged against layers x the per-layer
//     budget (post-norm LayerNorm re-normalizes every block, so divergence
//     compounds roughly additively).
#pragma once

#include <cstdint>
#include <vector>

#include "model/encoder.hpp"

namespace swat::eval {

/// One layer's teacher-forced comparison (fp16-packed layer vs fp32 layer,
/// both evaluated on the fp32 trajectory).
struct LayerPrecision {
  double cosine = 0.0;     ///< mean row cosine vs the fp32 layer output
  double rel_error = 0.0;  ///< Frobenius relative error, fp32 as reference
};

struct PrecisionFidelityResult {
  std::vector<LayerPrecision> per_layer;  ///< teacher-forced, one per layer
  double worst_layer_rel_error = 0.0;
  double worst_layer_cosine = 1.0;
  /// Free-running fp16 Engine::run output vs the fp32 Encoder::forward
  /// oracle on the same input.
  double end_to_end_rel_error = 0.0;
  double end_to_end_cosine = 1.0;
  /// The calibrated budgets the measurements are judged against
  /// (calib::kFp16LayerRelErrBudget; layers x kFp16EndToEndRelErrPerLayer).
  double layer_budget = 0.0;
  double end_to_end_budget = 0.0;
  /// Every layer and the end-to-end run fit their rel-error budget AND the
  /// cosine floor derived from it (calib::fp16_cosine_floor).
  bool within_budget = false;
};

/// Build two encoders from `cfg` differing ONLY in pack_dtype (fp32
/// reference, fp16 method; same weight_seed, so the fp32 master weights are
/// bit-identical and the comparison isolates panel rounding), run both over
/// a random-normal input of `seq_len` tokens, and score per-layer and
/// end-to-end fidelity against the calibrated budget. `cfg.pack_dtype` is
/// overwritten on both sides; every other field is used as given.
PrecisionFidelityResult precision_fidelity(model::EncoderConfig cfg,
                                           std::int64_t seq_len,
                                           std::uint64_t input_seed);

}  // namespace swat::eval
