// Minimal fixed-width table renderer for the bench binaries (every bench
// prints the same rows/series the corresponding paper table or figure
// reports) plus CSV dumping for plotting.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace swat::eval {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Append one row; must match the header count.
  void add_row(std::vector<std::string> cells);

  /// Formatting helpers.
  static std::string num(double v, int precision = 2);
  static std::string pct(double fraction, int precision = 1);
  static std::string times(double ratio, int precision = 1);  ///< "6.7x"
  static std::string ms(double seconds, int precision = 2);
  static std::string mb(double bytes, int precision = 1);

  /// Render with aligned columns and a header rule.
  void print(std::ostream& os) const;

  /// Comma-separated dump (headers + rows).
  void print_csv(std::ostream& os) const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace swat::eval
