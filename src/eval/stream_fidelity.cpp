#include "eval/stream_fidelity.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "attention/fused.hpp"
#include "common/rng.hpp"
#include "eval/calibration.hpp"
#include "runtime/engine.hpp"
#include "tensor/kernels.hpp"

namespace swat::eval {

StreamFidelityResult stream_fidelity(model::EncoderConfig cfg,
                                     std::int64_t seq_len,
                                     std::uint64_t input_seed) {
  SWAT_EXPECTS(cfg.backend == model::AttentionBackend::kFusedStreaming);
  cfg.stream_dtype = Dtype::kFp32;
  cfg.validate();

  StreamFidelityResult result;
  result.head_budget = calib::kFp16StreamHeadRelErrBudget;
  result.end_to_end_budget =
      static_cast<double>(cfg.layers) * calib::kFp16StreamEndToEndRelErrPerLayer;

  const std::int64_t h = cfg.d_model / cfg.num_heads;
  const float scale = 1.0f / std::sqrt(static_cast<float>(h));
  const std::array<std::int64_t, 2> offsets{0, seq_len};

  // Kernel-level sweep: identical random-normal Q/K/V through the fp32 and
  // fp16 streamed-tile paths, judged head slice by head slice — every
  // measured delta is tile rounding, nothing else.
  {
    Rng rng(input_seed);
    const MatrixF q = random_normal(seq_len, cfg.d_model, rng);
    const MatrixF k = random_normal(seq_len, cfg.d_model, rng);
    const MatrixF v = random_normal(seq_len, cfg.d_model, rng);
    MatrixF out_ref(seq_len, cfg.d_model, 0.0f);
    MatrixF out_half(seq_len, cfg.d_model, 0.0f);
    attn::fused_window_attention_batch_into(
        q, k, v, offsets, cfg.num_heads, cfg.swat.window_before(),
        cfg.swat.window_after(), scale, out_ref, Dtype::kFp32);
    attn::fused_window_attention_batch_into(
        q, k, v, offsets, cfg.num_heads, cfg.swat.window_before(),
        cfg.swat.window_after(), scale, out_half, Dtype::kFp16);

    result.per_head.reserve(static_cast<std::size_t>(cfg.num_heads));
    MatrixF slice_ref(seq_len, h);
    MatrixF slice_half(seq_len, h);
    for (std::int64_t head = 0; head < cfg.num_heads; ++head) {
      const std::int64_t base = head * h;
      for (std::int64_t i = 0; i < seq_len; ++i) {
        for (std::int64_t d = 0; d < h; ++d) {
          slice_ref(i, d) = out_ref(i, base + d);
          slice_half(i, d) = out_half(i, base + d);
        }
      }
      HeadStreamPrecision one;
      one.cosine = mean_row_cosine(slice_half, slice_ref);
      one.rel_error = relative_error(slice_half, slice_ref);
      result.worst_head_rel_error =
          std::max(result.worst_head_rel_error, one.rel_error);
      result.worst_head_cosine =
          std::min(result.worst_head_cosine, one.cosine);
      result.per_head.push_back(one);
    }
  }

  // Free-running end to end: two encoders differing ONLY in stream_dtype
  // (same weight_seed, so the fp32 master weights and packs are
  // bit-identical). The compiled fp16-streaming engine — the path serving
  // actually runs — against the fp32-streaming oracle.
  {
    model::EncoderConfig half_cfg = cfg;
    half_cfg.stream_dtype = Dtype::kFp16;
    const model::Encoder reference(cfg);
    Rng rng(input_seed + 1);
    const MatrixF input = random_normal(seq_len, cfg.d_model, rng);
    Engine engine = Engine::compile(half_cfg, seq_len);
    const MatrixF& out_half = engine.run(input, offsets);
    const MatrixF out_ref = reference.forward(input);
    result.end_to_end_rel_error = relative_error(out_half, out_ref);
    result.end_to_end_cosine = mean_row_cosine(out_half, out_ref);
  }

  result.within_budget =
      result.worst_head_rel_error <= result.head_budget &&
      result.worst_head_cosine >=
          calib::fp16_cosine_floor(result.head_budget) &&
      result.end_to_end_rel_error <= result.end_to_end_budget &&
      result.end_to_end_cosine >=
          calib::fp16_cosine_floor(result.end_to_end_budget);
  return result;
}

}  // namespace swat::eval
