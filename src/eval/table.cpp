#include "eval/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/contracts.hpp"

namespace swat::eval {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  SWAT_EXPECTS(!headers_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  SWAT_EXPECTS(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::pct(double fraction, int precision) {
  return num(fraction * 100.0, precision) + "%";
}

std::string Table::times(double ratio, int precision) {
  return num(ratio, precision) + "x";
}

std::string Table::ms(double seconds, int precision) {
  return num(seconds * 1e3, precision) + " ms";
}

std::string Table::mb(double bytes, int precision) {
  return num(bytes / (1024.0 * 1024.0), precision) + " MB";
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << " " << std::setw(static_cast<int>(width[c])) << row[c] << " |";
    }
    os << "\n";
  };
  print_row(headers_);
  os << "|";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(width[c] + 2, '-') << "|";
  }
  os << "\n";
  for (const auto& row : rows_) print_row(row);
}

void Table::print_csv(std::ostream& os) const {
  auto csv_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ",";
      os << row[c];
    }
    os << "\n";
  };
  csv_row(headers_);
  for (const auto& row : rows_) csv_row(row);
}

}  // namespace swat::eval
