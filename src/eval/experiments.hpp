// Experiment drivers: one function per paper table/figure, shared by the
// bench binaries (which print them) and the test suite (which asserts the
// anchored values and shape properties). See DESIGN.md §4 for the index.
#pragma once

#include <cstdint>
#include <vector>

#include "attention/flops.hpp"
#include "common/units.hpp"
#include "swat/config.hpp"

namespace swat::eval {

/// Standard sweep of input lengths used across the evaluation figures.
std::vector<std::int64_t> fig_lengths();        ///< 512 .. 16384 (Fig. 3)
std::vector<std::int64_t> speedup_lengths();    ///< 1024 .. 16384 (Figs. 8/9)

// ---- Fig. 1: FLOPs / MOPs breakdown ---------------------------------------
struct Fig1Row {
  std::int64_t seq_len = 0;
  double linear_flops_share = 0.0;
  double attention_flops_share = 0.0;
  double ffn_flops_share = 0.0;
  double linear_mops_share = 0.0;
  double attention_mops_share = 0.0;
  double ffn_mops_share = 0.0;
};
std::vector<Fig1Row> fig1_breakdown(const attn::LayerShape& base,
                                    attn::AttentionVariant variant);

// ---- Fig. 3: execution time and memory per attention ----------------------
struct Fig3Row {
  std::int64_t seq_len = 0;
  Seconds gpu_dense;
  Seconds gpu_chunks;
  Seconds swat_fp16;
  Seconds swat_fp32;
  Bytes mem_gpu_dense;
  Bytes mem_gpu_chunks;
  Bytes mem_swat_fp16;
  Bytes mem_swat_fp32;
};
std::vector<Fig3Row> fig3_exec_mem();

// ---- Table 1: pipeline stage timing ----------------------------------------
struct Table1Entry {
  const char* stage = "";
  Cycles cycles;
};
std::vector<Table1Entry> table1_stages(const SwatConfig& cfg);

// ---- Fig. 8: speedup over Butterfly ----------------------------------------
struct Fig8Row {
  std::int64_t seq_len = 0;
  double speedup_vs_btf1 = 0.0;
  double speedup_vs_btf2 = 0.0;
};
std::vector<Fig8Row> fig8_speedups();

// ---- Fig. 9: energy efficiency ---------------------------------------------
struct Fig9Row {
  std::int64_t seq_len = 0;
  double fp16_vs_btf1 = 0.0;
  double fp16_vs_btf2 = 0.0;
  double fp16_vs_gpu_dense = 0.0;
  double fp16_vs_gpu_chunks = 0.0;
  double fp32_vs_gpu_dense = 0.0;
  double fp32_vs_gpu_chunks = 0.0;
};
std::vector<Fig9Row> fig9_energy_efficiency();

// ---- Tables 3 / 4: published accuracy numbers ------------------------------
struct PublishedAccuracyRow {
  const char* model = "";
  double image = 0.0;
  double pathfinder = 0.0;
  double text = 0.0;
  double listops = 0.0;
  double avg = 0.0;
};
/// Table 3 as published (accuracy gain over full-FFT Butterfly, percent).
std::vector<PublishedAccuracyRow> table3_published();

struct PublishedImagenetRow {
  const char* model = "";
  double params_m = 0.0;
  double top1 = 0.0;
};
/// Table 4 as published (ImageNet-1K top-1).
std::vector<PublishedImagenetRow> table4_published();

}  // namespace swat::eval
