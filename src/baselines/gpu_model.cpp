#include "baselines/gpu_model.hpp"

#include <algorithm>

#include "common/contracts.hpp"
#include "eval/calibration.hpp"

namespace swat::baselines {

GpuModel::GpuModel(GpuModelConfig cfg) : cfg_(cfg) {
  SWAT_EXPECTS(cfg.head_dim > 0);
  SWAT_EXPECTS(cfg.window_radius > 0);
}

double GpuModel::executed_flops(GpuKernel kernel, std::int64_t seq_len) const {
  const double n = static_cast<double>(seq_len);
  const double h = static_cast<double>(cfg_.head_dim);
  if (kernel == GpuKernel::kDense) {
    // QK GEMM (2 n^2 h) + softmax (~5 n^2) + SV GEMM (2 n^2 h).
    return n * n * (4.0 * h + 5.0);
  }
  // Sliding chunks: (n/w - 1) overlapping (2w x 2w) tiles for QK and SV,
  // every tile element executed (the redundancy of paper Fig. 2b), plus the
  // same softmax volume on the tiles.
  const double w = static_cast<double>(cfg_.window_radius);
  const double tiles = std::max(1.0, n / w - 1.0);
  const double tile_elems = tiles * (2.0 * w) * (2.0 * w);
  return tile_elems * (4.0 * h + 5.0);
}

GpuEstimate GpuModel::estimate(GpuKernel kernel, std::int64_t seq_len) const {
  SWAT_EXPECTS(seq_len > 0);
  const double n = static_cast<double>(seq_len);
  const double h = static_cast<double>(cfg_.head_dim);
  const double w = static_cast<double>(cfg_.window_radius);
  constexpr double kFp32 = 4.0;

  GpuEstimate e;
  e.flops = executed_flops(kernel, seq_len);

  if (kernel == GpuKernel::kDense) {
    const double compute = e.flops / calib::kGpuDenseEffFlops;
    // The unfused kernel chain writes and re-reads the N^2 score matrix
    // twice (S out of the GEMM, S in/out of softmax, S' into the SV GEMM).
    const double score_bytes = 4.0 * n * n * kFp32;
    const double mem = score_bytes / calib::kGpuBandwidthBytesPerSec;
    e.latency = Seconds{std::max({compute, mem,
                                  calib::kGpuDenseFloor.value})};
    // Peak live memory: the fp32 score matrix dominates (Fig. 3 right).
    e.peak_memory =
        Bytes{static_cast<std::uint64_t>(n * n * kFp32 + 4.0 * n * h * kFp32)};
  } else {
    const double tiles = std::max(1.0, n / w - 1.0);
    const double compute = e.flops / calib::kGpuChunksEffFlops;
    const double launches = 3.0 * tiles;  // QK, softmax, SV per tile
    const double floor = std::max(calib::kGpuChunksFloor.value,
                                  launches * calib::kGpuLaunchOverhead.value);
    e.latency = Seconds{floor + compute};
    const double tile_bytes = tiles * (2.0 * w) * (2.0 * w) * kFp32;
    e.peak_memory =
        Bytes{static_cast<std::uint64_t>(tile_bytes + 4.0 * n * h * kFp32)};
  }

  e.energy = energy(calib::kGpuBoardPower, e.latency);
  return e;
}

}  // namespace swat::baselines
