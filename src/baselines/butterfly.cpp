#include "baselines/butterfly.hpp"

#include <cmath>

#include "common/contracts.hpp"
#include "eval/calibration.hpp"
#include "hw/power.hpp"

namespace swat::baselines {

ButterflyConfig ButterflyConfig::btf(int softmax_layers) {
  ButterflyConfig c;
  c.layers = calib::kModelLayers;
  c.heads = calib::kModelHeads;
  c.softmax_layers = softmax_layers;
  return c;
}

ButterflyModel::ButterflyModel(ButterflyConfig cfg) : cfg_(cfg) {
  SWAT_EXPECTS(cfg.layers >= 1);
  SWAT_EXPECTS(cfg.softmax_layers >= 0 && cfg.softmax_layers <= cfg.layers);
  SWAT_EXPECTS(cfg.heads >= 1);
}

Seconds ButterflyModel::attn_layer_full_fabric(std::int64_t seq_len) const {
  SWAT_EXPECTS(seq_len > 0);
  const double n = static_cast<double>(seq_len);
  return Seconds{static_cast<double>(cfg_.heads) *
                 calib::kButterflyAttnSecPerToken2 * n * n};
}

Seconds ButterflyModel::fft_layer_full_fabric(std::int64_t seq_len) const {
  SWAT_EXPECTS(seq_len > 0);
  const double n = static_cast<double>(seq_len);
  return Seconds{static_cast<double>(cfg_.heads) *
                 calib::kButterflyFftSecPerTokenLog * n * std::log2(n)};
}

ButterflyProjection ButterflyModel::project(std::int64_t seq_len) const {
  const double a = attn_layer_full_fabric(seq_len).value *
                   static_cast<double>(cfg_.softmax_layers);
  const double f = fft_layer_full_fabric(seq_len).value *
                   static_cast<double>(cfg_.layers - cfg_.softmax_layers);

  ButterflyProjection p;
  if (a == 0.0) {
    // Pure FFT model: all fabric to the FFT engines.
    p.attn_fraction = 0.0;
    p.fft_time = Seconds{f};
    p.attn_time = Seconds{0.0};
    p.total = p.fft_time;
    return p;
  }
  if (f == 0.0) {
    p.attn_fraction = 1.0;
    p.attn_time = Seconds{a};
    p.fft_time = Seconds{0.0};
    p.total = p.attn_time;
    return p;
  }
  // T(r) = a/r + f/(1-r); dT/dr = 0 at r* = sqrt(a)/(sqrt(a)+sqrt(f)).
  const double sa = std::sqrt(a);
  const double sf = std::sqrt(f);
  p.attn_fraction = sa / (sa + sf);
  p.attn_time = Seconds{a / p.attn_fraction};
  p.fft_time = Seconds{f / (1.0 - p.attn_fraction)};
  p.total = Seconds{(sa + sf) * (sa + sf)};
  SWAT_ENSURES(std::abs(p.total.value -
                        (p.attn_time.value + p.fft_time.value)) <
               1e-9 * p.total.value + 1e-15);
  return p;
}

hw::ResourceVector ButterflyModel::resources() const {
  // Published Table 2 Butterfly row (FP16, 120-BE) scaled by the VCU128
  // totals: DSP 32%, LUT 79%, FF 63%, BRAM 49%.
  const hw::ResourceVector total = hw::DeviceCatalog::vcu128().total;
  return hw::ResourceVector{
      .dsp = static_cast<std::int64_t>(0.32 * static_cast<double>(total.dsp)),
      .lut = static_cast<std::int64_t>(0.79 * static_cast<double>(total.lut)),
      .ff = static_cast<std::int64_t>(0.63 * static_cast<double>(total.ff)),
      .bram =
          static_cast<std::int64_t>(0.49 * static_cast<double>(total.bram)),
      .uram = 0};
}

Watts ButterflyModel::power() const {
  hw::PowerCoefficients coeff;
  coeff.static_power = Watts{calib::kStaticWatts};
  coeff.reference_clock = calib::kSwatClock;
  coeff.dsp_mw = calib::kDspMilliwatts;
  coeff.lut_mw = calib::kLutMilliwatts;
  coeff.ff_mw = calib::kFfMilliwatts;
  coeff.bram_mw = calib::kBramMilliwatts;
  coeff.hbm_w_per_gbps = calib::kHbmWattsPerGbps;

  hw::Activity act;
  // Engines serialize: while the ATTN-BTF engine grinds through a softmax
  // layer the FFT engines idle (and vice versa), so the fleet-average
  // toggle rate is low. Calibrated against the paper's Fig. 9 energy
  // ratios (see eval/calibration.hpp).
  act.dsp_toggle = calib::kButterflyToggle;
  act.lut_toggle = calib::kButterflyToggle;
  act.ff_toggle = calib::kButterflyToggle;
  act.bram_toggle = calib::kButterflyToggle;
  act.hbm_gbps = 1.0;

  return hw::estimate_power(coeff, resources(), calib::kSwatClock, act);
}

Joules ButterflyModel::model_energy(std::int64_t seq_len) const {
  return energy(power(), project(seq_len).total);
}

}  // namespace swat::baselines
