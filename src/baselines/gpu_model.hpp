// AMD MI210 GPU performance/energy model (paper §5.4, Figs. 3 and 9).
//
// Roofline-style analytic model of the two GPU implementations the paper
// measures with rocBLAS/MIOpen:
//   * dense      — full N x N attention (QK GEMM, softmax, SV GEMM);
//   * chunks     — the sliding-chunks kernel sequence (per-tile GEMMs with
//                  ~50% redundant work and many small launches).
//
// Latency = max(compute leg, bandwidth leg, under-utilization floor)
//           (+ launch overhead for the chunked kernel sequence).
// The three behaviours the paper's comparison rests on are reproduced and
// tested: a flat latency floor below ~4k tokens (single-batch
// under-utilization), quadratic dense growth beyond it, and sliding-chunks
// tracking dense in *time* while using linearly-scaling *memory*.
//
// All quantities are per single attention head (the paper's Fig. 3 unit);
// energy uses the 300 W board power the paper quotes.
#pragma once

#include <cstdint>

#include "common/units.hpp"

namespace swat::baselines {

enum class GpuKernel {
  kDense,
  kSlidingChunks,
};

struct GpuModelConfig {
  std::int64_t head_dim = 64;
  std::int64_t window_radius = 256;  ///< w for the chunked kernel (2w = 512)
};

struct GpuEstimate {
  Seconds latency;
  Bytes peak_memory;   ///< live working set (the Fig. 3 right panel)
  Joules energy;       ///< latency x 300 W
  double flops = 0.0;  ///< executed floating-point operations
};

class GpuModel {
 public:
  explicit GpuModel(GpuModelConfig cfg = {});

  /// Estimate one attention head of length `seq_len`.
  GpuEstimate estimate(GpuKernel kernel, std::int64_t seq_len) const;

  /// Executed FLOPs of each kernel (dense executes the full N^2; chunks
  /// executes the redundant tile volume).
  double executed_flops(GpuKernel kernel, std::int64_t seq_len) const;

 private:
  GpuModelConfig cfg_;
};

}  // namespace swat::baselines
