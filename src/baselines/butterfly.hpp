// Butterfly accelerator model (paper §5.1/§5.3 — the FPGA baseline).
//
// The Butterfly accelerator [Fan et al., MICRO-55] has two engine types:
//   * FFT-BTF  — butterfly/FFT mixing engine, O(N log N) per layer;
//   * ATTN-BTF — standard softmax attention engine, O(N^2) per layer.
// BTF-k denotes the accuracy-driven hybrid with the last k layers running
// real softmax attention (paper Table 3 / §5.2).
//
// The paper *projects* Butterfly performance "by computing the optimal
// ratio of resource distribution for FFT-BTF and ATTN-BTF engines at
// different input lengths" (§5.3). We implement that projection: with a
// fraction r of the fabric on ATTN-BTF engines, the serialized model time
// is  T(r) = A / r + F / (1 - r)  where A and F are the full-fabric
// attention / FFT workloads; the optimum is r* = sqrt(A)/(sqrt(A)+sqrt(F))
// giving T* = (sqrt(A) + sqrt(F))^2.
//
// Anchors (eval/calibration.hpp): SWAT speedups 6.7x (BTF-1) and 12.2x
// (BTF-2) at N = 4096; the published Table 2 resource row drives power.
#pragma once

#include <cstdint>

#include "common/units.hpp"
#include "hw/resource.hpp"

namespace swat::baselines {

struct ButterflyConfig {
  int layers = 8;          ///< model depth (calib::kModelLayers)
  int softmax_layers = 1;  ///< k in BTF-k
  int heads = 12;

  static ButterflyConfig btf(int softmax_layers);
};

struct ButterflyProjection {
  Seconds total;          ///< optimal-split model latency
  double attn_fraction;   ///< r*: fabric share given to ATTN-BTF engines
  Seconds attn_time;      ///< time in softmax-attention layers at r*
  Seconds fft_time;       ///< time in FFT layers at r*
};

class ButterflyModel {
 public:
  explicit ButterflyModel(ButterflyConfig cfg = {});

  const ButterflyConfig& config() const { return cfg_; }

  /// Full-fabric single-layer times.
  Seconds attn_layer_full_fabric(std::int64_t seq_len) const;
  Seconds fft_layer_full_fabric(std::int64_t seq_len) const;

  /// Optimal-resource-split projection for the whole model.
  ButterflyProjection project(std::int64_t seq_len) const;

  /// Resources on the VCU128 (published Table 2 row: FP16, 120-BE).
  hw::ResourceVector resources() const;

  /// Average board power (engines serialize; see calibration notes).
  Watts power() const;

  /// Energy for one forward pass of the model.
  Joules model_energy(std::int64_t seq_len) const;

 private:
  ButterflyConfig cfg_;
};

}  // namespace swat::baselines
