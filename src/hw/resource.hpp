// FPGA resource accounting.
//
// ResourceVector counts the four fabric resource classes the paper's
// Table 2 reports (DSP slices, LUTs, flip-flops, BRAM blocks; URAM tracked
// too for completeness). DeviceCatalog provides the totals of the two
// boards in the evaluation — Alveo U55C (SWAT) and VCU128 (Butterfly) —
// which the paper notes have the same logical resource counts (§5.3 fn. 3).
#pragma once

#include <cstdint>
#include <string>

#include "common/contracts.hpp"

namespace swat::hw {

struct ResourceVector {
  std::int64_t dsp = 0;
  std::int64_t lut = 0;
  std::int64_t ff = 0;
  std::int64_t bram = 0;  ///< 36 Kb blocks
  std::int64_t uram = 0;

  friend ResourceVector operator+(ResourceVector a, const ResourceVector& b) {
    a.dsp += b.dsp;
    a.lut += b.lut;
    a.ff += b.ff;
    a.bram += b.bram;
    a.uram += b.uram;
    return a;
  }
  ResourceVector& operator+=(const ResourceVector& b) {
    return *this = *this + b;
  }
  friend ResourceVector operator*(ResourceVector a, std::int64_t k) {
    a.dsp *= k;
    a.lut *= k;
    a.ff *= k;
    a.bram *= k;
    a.uram *= k;
    return a;
  }
  friend ResourceVector operator*(std::int64_t k, ResourceVector a) {
    return a * k;
  }
  friend bool operator==(const ResourceVector&, const ResourceVector&) =
      default;

  bool fits_in(const ResourceVector& budget) const {
    return dsp <= budget.dsp && lut <= budget.lut && ff <= budget.ff &&
           bram <= budget.bram && uram <= budget.uram;
  }
};

/// Fractional utilization of `used` against `total` per resource class.
struct Utilization {
  double dsp = 0.0;
  double lut = 0.0;
  double ff = 0.0;
  double bram = 0.0;
  double uram = 0.0;

  /// The binding (maximum) utilization across classes.
  double max_fraction() const;
};

struct DeviceCatalog {
  std::string name;
  ResourceVector total;

  Utilization utilization(const ResourceVector& used) const;

  /// Xilinx Alveo U55C (XCU55C): the SWAT board.
  static DeviceCatalog u55c();
  /// Xilinx VCU128 (XCVU37P): the Butterfly board; same logical totals.
  static DeviceCatalog vcu128();
};

}  // namespace swat::hw
