// Coarse-grained pipeline model.
//
// SWAT executes one query row per pipeline "beat": LOAD -> QK -> SV ->
// {Z-reduction || Row-sum} -> DIV&OUT (paper Fig. 6). Each stage has a fixed
// latency from the HLS report (paper Table 1); the throughput of the whole
// pipeline is set by the slowest stage (the initiation interval of the row
// pipeline), and the fill latency is the longest stage-path sum.
//
// PipelineModel captures an arbitrary DAG of stages (parallel branches are
// expressed by `parallel_group` ids) and answers: row II, fill latency,
// total cycles for N rows, and per-stage utilization. The stage-level
// TimingSimulator (src/swat/timing_sim) advances the same structure cycle
// by cycle and is cross-checked against the closed forms here.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/contracts.hpp"
#include "common/units.hpp"

namespace swat::hw {

struct PipelineStage {
  std::string name;
  Cycles latency{0};
  /// Stages sharing a parallel_group run concurrently at the same depth
  /// (e.g. Z-reduction and Row-sum); -1 means a dedicated sequential slot.
  int parallel_group = -1;
};

class PipelineModel {
 public:
  explicit PipelineModel(std::vector<PipelineStage> stages);

  const std::vector<PipelineStage>& stages() const { return stages_; }

  /// Initiation interval of the row pipeline: the slowest stage bounds how
  /// often a new row can enter.
  Cycles row_initiation_interval() const;

  /// Fill (drain) latency: the sum over sequential depths of the longest
  /// stage at each depth.
  Cycles fill_latency() const;

  /// Total cycles to stream `rows` rows: fill + (rows - 1) * II.
  Cycles total_cycles(std::int64_t rows) const;

  /// Utilization of stage s in steady state: latency(s) / II.
  double stage_utilization(std::size_t s) const;

  /// Number of sequential depths (parallel branches count once).
  std::int64_t depth() const;

 private:
  std::vector<PipelineStage> stages_;
  /// stage index lists per sequential depth.
  std::vector<std::vector<std::size_t>> depths_;
};

}  // namespace swat::hw
