// ReplacementFifo is header-only (class template); this translation unit
// exists to give the target a compiled symbol and to host an explicit
// instantiation that keeps the template continuously compiled.
#include "hw/fifo.hpp"

#include <vector>

namespace swat::hw {

template class ReplacementFifo<std::int64_t>;
template class ReplacementFifo<std::vector<float>>;

}  // namespace swat::hw
