// Fixed-length FIFO replacement buffer — the K/V management structure of
// paper Fig. 4b.
//
// SWAT keeps the 2w live K (and V) rows in a ring of fixed capacity with a
// single moving pointer marking "next to evict". When the window slides by
// one row, exactly one slot is refreshed; every datum is loaded exactly once
// (the 100% off-chip transfer-efficiency claim, tested in tests/test_fifo
// and end-to-end via the functional simulator's traffic counters).
//
// The template parameterizes the payload so the same structure backs the
// timing model (payload = row index only) and the functional model
// (payload = the fp16 row data).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/contracts.hpp"

namespace swat::hw {

template <typename Payload>
class ReplacementFifo {
 public:
  explicit ReplacementFifo(std::int64_t capacity)
      : slots_(static_cast<std::size_t>(capacity)) {
    SWAT_EXPECTS(capacity > 0);
  }

  std::int64_t capacity() const {
    return static_cast<std::int64_t>(slots_.size());
  }

  std::int64_t occupied() const { return occupied_; }
  bool full() const { return occupied_ == capacity(); }

  /// The slot index that the next push will (over)write — the paper's
  /// "next to evict" pointer.
  std::int64_t evict_pointer() const { return pointer_; }

  /// Insert a new payload tagged with its sequence row index, evicting the
  /// oldest entry if full. Returns the slot written, i.e. the attention core
  /// whose K/V buffer is refreshed this iteration.
  std::int64_t push(std::int64_t row, Payload payload) {
    const std::int64_t slot = pointer_;
    auto& s = slots_[static_cast<std::size_t>(slot)];
    if (!s.valid) {
      s.valid = true;
      ++occupied_;
    } else {
      ++evictions_;
    }
    s.row = row;
    s.payload = std::move(payload);
    pointer_ = (pointer_ + 1) % capacity();
    ++pushes_;
    return slot;
  }

  /// Slot contents; nullopt while the slot has not been filled yet
  /// (pipeline warm-up at the start of the sequence).
  struct Entry {
    std::int64_t row = -1;
    Payload payload{};
  };
  std::optional<Entry> slot(std::int64_t s) const {
    SWAT_EXPECTS(s >= 0 && s < capacity());
    const auto& e = slots_[static_cast<std::size_t>(s)];
    if (!e.valid) return std::nullopt;
    return Entry{e.row, e.payload};
  }

  /// Find the slot currently holding sequence row `row`, if resident.
  /// With the modulo replacement policy row r lives in slot r % capacity
  /// while resident, which the functional simulator relies on; this scan is
  /// the independent check used by the tests.
  std::optional<std::int64_t> find_row(std::int64_t row) const {
    for (std::int64_t s = 0; s < capacity(); ++s) {
      const auto& e = slots_[static_cast<std::size_t>(s)];
      if (e.valid && e.row == row) return s;
    }
    return std::nullopt;
  }

  std::int64_t pushes() const { return pushes_; }
  std::int64_t evictions() const { return evictions_; }

 private:
  struct Slot {
    bool valid = false;
    std::int64_t row = -1;
    Payload payload{};
  };
  std::vector<Slot> slots_;
  std::int64_t pointer_ = 0;
  std::int64_t occupied_ = 0;
  std::int64_t pushes_ = 0;
  std::int64_t evictions_ = 0;
};

}  // namespace swat::hw
