// Block-RAM model.
//
// SWAT stores one K row and one V row per attention core in a BRAM block
// (paper §4, LOAD stage: "Each K/V buffer uses one BRAM block, storing a
// full row of K or V of size H"). The model tracks capacity in bits, the
// dual-port access constraint, and read/write counts for the power model's
// toggle-rate estimate.
#pragma once

#include <cstdint>

#include "common/contracts.hpp"

namespace swat::hw {

/// One 36 Kb UltraScale+ BRAM block (two independent ports).
class BramBlock {
 public:
  static constexpr std::int64_t kBitsPerBlock = 36 * 1024;
  static constexpr int kPorts = 2;

  BramBlock() = default;

  /// Reserve `bits` of storage; returns false (and reserves nothing) if the
  /// block would overflow.
  bool reserve(std::int64_t bits) {
    SWAT_EXPECTS(bits >= 0);
    if (used_bits_ + bits > kBitsPerBlock) return false;
    used_bits_ += bits;
    return true;
  }

  std::int64_t used_bits() const { return used_bits_; }
  std::int64_t free_bits() const { return kBitsPerBlock - used_bits_; }

  void record_read(std::int64_t count = 1) { reads_ += count; }
  void record_write(std::int64_t count = 1) { writes_ += count; }
  std::int64_t reads() const { return reads_; }
  std::int64_t writes() const { return writes_; }

 private:
  std::int64_t used_bits_ = 0;
  std::int64_t reads_ = 0;
  std::int64_t writes_ = 0;
};

/// How many BRAM blocks a buffer of `rows` x `bits_per_row` needs, given
/// that a block serves at most `kPorts` concurrent accesses — SWAT sizes
/// one K row + one V row (H elements each) into a single block, which the
/// resource model and tests verify fits for H = 64 at both precisions.
std::int64_t brams_for_buffer(std::int64_t rows, std::int64_t bits_per_row);

}  // namespace swat::hw
