#include "hw/power.hpp"

namespace swat::hw {

Watts estimate_power(const PowerCoefficients& coeff,
                     const ResourceVector& used, Hertz clock,
                     const Activity& activity) {
  SWAT_EXPECTS(clock.hz > 0.0);
  SWAT_EXPECTS(coeff.reference_clock.hz > 0.0);
  const double fscale = clock.hz / coeff.reference_clock.hz;
  double dynamic_mw = 0.0;
  dynamic_mw += static_cast<double>(used.dsp) * coeff.dsp_mw *
                activity.dsp_toggle;
  dynamic_mw += static_cast<double>(used.lut) * coeff.lut_mw *
                activity.lut_toggle;
  dynamic_mw +=
      static_cast<double>(used.ff) * coeff.ff_mw * activity.ff_toggle;
  dynamic_mw += static_cast<double>(used.bram) * coeff.bram_mw *
                activity.bram_toggle;
  const double hbm_w = activity.hbm_gbps * coeff.hbm_w_per_gbps;
  return Watts{coeff.static_power.value + dynamic_mw * 1e-3 * fscale + hbm_w};
}

}  // namespace swat::hw
