#include "hw/resource.hpp"

#include <algorithm>

namespace swat::hw {

double Utilization::max_fraction() const {
  return std::max({dsp, lut, ff, bram, uram});
}

Utilization DeviceCatalog::utilization(const ResourceVector& used) const {
  SWAT_EXPECTS(total.dsp > 0 && total.lut > 0 && total.ff > 0 &&
               total.bram > 0);
  Utilization u;
  u.dsp = static_cast<double>(used.dsp) / static_cast<double>(total.dsp);
  u.lut = static_cast<double>(used.lut) / static_cast<double>(total.lut);
  u.ff = static_cast<double>(used.ff) / static_cast<double>(total.ff);
  u.bram = static_cast<double>(used.bram) / static_cast<double>(total.bram);
  u.uram = total.uram > 0 ? static_cast<double>(used.uram) /
                                static_cast<double>(total.uram)
                          : 0.0;
  return u;
}

DeviceCatalog DeviceCatalog::u55c() {
  // XCU55C: 1,304k LUTs, 2,607k FFs, 9,024 DSP48E2, 2,016 x 36Kb BRAM,
  // 960 URAM (Xilinx DS963).
  return DeviceCatalog{"Alveo U55C",
                       ResourceVector{.dsp = 9024,
                                      .lut = 1303680,
                                      .ff = 2607360,
                                      .bram = 2016,
                                      .uram = 960}};
}

DeviceCatalog DeviceCatalog::vcu128() {
  // XCVU37P on VCU128: identical logical totals to the U55C fabric
  // (paper §5.3 footnote: "same number of logical resources").
  return DeviceCatalog{"VCU128",
                       ResourceVector{.dsp = 9024,
                                      .lut = 1303680,
                                      .ff = 2607360,
                                      .bram = 2016,
                                      .uram = 960}};
}

}  // namespace swat::hw
