// Generic FPGA power model in the style of the Xilinx Power Estimator.
//
// XPE computes board power as static power plus per-resource dynamic power
// scaled by clock frequency and toggle rate. The paper evaluates SWAT's
// power "using the Xilinx Power Estimator" (§5.3); we reproduce the same
// methodology. Unit energies are supplied by the caller (see
// eval/calibration.hpp for the values used by the SWAT and Butterfly
// models and the paper data that anchors them).
#pragma once

#include "common/units.hpp"
#include "hw/resource.hpp"

namespace swat::hw {

/// Dynamic power per active resource at 100% toggle rate and the reference
/// frequency below, plus device static power.
struct PowerCoefficients {
  Watts static_power{10.0};
  Hertz reference_clock = Hertz::mega(300.0);
  double dsp_mw = 1.7;        ///< per DSP slice
  double lut_mw = 0.012;      ///< per LUT
  double ff_mw = 0.0035;      ///< per flip-flop
  double bram_mw = 4.5;       ///< per active 36 Kb block
  double hbm_w_per_gbps = 0.012;  ///< HBM PHY+stack per GB/s of traffic
};

/// Activity of the design: toggle rate per resource class (0..1) and the
/// achieved off-chip bandwidth.
struct Activity {
  double dsp_toggle = 0.5;
  double lut_toggle = 0.25;
  double ff_toggle = 0.25;
  double bram_toggle = 0.5;
  double hbm_gbps = 0.0;
};

/// Total board power for `used` resources clocked at `clock` with the given
/// activity factors.
Watts estimate_power(const PowerCoefficients& coeff, const ResourceVector& used,
                     Hertz clock, const Activity& activity);

}  // namespace swat::hw
