// Off-chip memory (HBM / DRAM) traffic model.
//
// The functional simulator routes every off-chip load and store through an
// HbmChannel so that the paper's central dataflow claim — each input element
// is transferred exactly once (§3.2: "ensuring data is loaded exactly once
// and achieving 100% off-chip memory transfer efficiency") — is *measured*,
// not assumed. The channel also converts traffic to transfer cycles for the
// timing model and to energy for the power model.
#pragma once

#include <cstdint>

#include "common/contracts.hpp"
#include "common/units.hpp"

namespace swat::hw {

struct HbmSpec {
  double bandwidth_gbps = 460.0;  ///< U55C HBM2: 460 GB/s aggregate
  double pj_per_byte = 7.0;       ///< HBM2 access energy (~7 pJ/byte)
};

class HbmChannel {
 public:
  explicit HbmChannel(HbmSpec spec = {}) : spec_(spec) {
    SWAT_EXPECTS(spec.bandwidth_gbps > 0.0);
  }

  void record_read(Bytes b) { read_ += b; }
  void record_write(Bytes b) { written_ += b; }

  Bytes bytes_read() const { return read_; }
  Bytes bytes_written() const { return written_; }
  Bytes total_traffic() const { return read_ + written_; }

  /// Minimum transfer time for the accumulated traffic at full bandwidth.
  Seconds transfer_time() const {
    return Seconds{static_cast<double>(total_traffic().count) /
                   (spec_.bandwidth_gbps * 1e9)};
  }

  /// DRAM access energy for the accumulated traffic.
  Joules access_energy() const {
    return Joules{static_cast<double>(total_traffic().count) *
                  spec_.pj_per_byte * 1e-12};
  }

  const HbmSpec& spec() const { return spec_; }

 private:
  HbmSpec spec_;
  Bytes read_;
  Bytes written_;
};

}  // namespace swat::hw
