#include "hw/pipeline.hpp"

#include <algorithm>

namespace swat::hw {

PipelineModel::PipelineModel(std::vector<PipelineStage> stages)
    : stages_(std::move(stages)) {
  SWAT_EXPECTS(!stages_.empty());
  // Build sequential depth slots: consecutive stages with the same
  // non-negative parallel_group share one slot.
  int last_group = -2;
  for (std::size_t i = 0; i < stages_.size(); ++i) {
    const int g = stages_[i].parallel_group;
    const bool join_previous = g >= 0 && g == last_group;
    if (join_previous) {
      depths_.back().push_back(i);
    } else {
      depths_.push_back({i});
    }
    last_group = g;
  }
}

Cycles PipelineModel::row_initiation_interval() const {
  Cycles ii{0};
  for (const auto& s : stages_) ii = std::max(ii, s.latency);
  return ii;
}

Cycles PipelineModel::fill_latency() const {
  Cycles fill{0};
  for (const auto& depth : depths_) {
    Cycles longest{0};
    for (std::size_t idx : depth) {
      longest = std::max(longest, stages_[idx].latency);
    }
    fill += longest;
  }
  return fill;
}

Cycles PipelineModel::total_cycles(std::int64_t rows) const {
  SWAT_EXPECTS(rows > 0);
  return fill_latency() +
         row_initiation_interval() * static_cast<std::uint64_t>(rows - 1);
}

double PipelineModel::stage_utilization(std::size_t s) const {
  SWAT_EXPECTS(s < stages_.size());
  const auto ii = row_initiation_interval();
  SWAT_ENSURES(ii.count > 0);
  return static_cast<double>(stages_[s].latency.count) /
         static_cast<double>(ii.count);
}

std::int64_t PipelineModel::depth() const {
  return static_cast<std::int64_t>(depths_.size());
}

}  // namespace swat::hw
