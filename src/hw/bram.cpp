#include "hw/bram.hpp"

namespace swat::hw {

std::int64_t brams_for_buffer(std::int64_t rows, std::int64_t bits_per_row) {
  SWAT_EXPECTS(rows > 0 && bits_per_row > 0);
  const std::int64_t total = rows * bits_per_row;
  return (total + BramBlock::kBitsPerBlock - 1) / BramBlock::kBitsPerBlock;
}

}  // namespace swat::hw
