// HbmChannel is fully inline; the translation unit anchors the target.
#include "hw/hbm.hpp"
