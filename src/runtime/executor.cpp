#include "runtime/executor.hpp"

#include <cstring>
#include <utility>

#include "attention/flops.hpp"
#include "common/fault_injection.hpp"

namespace swat {

namespace {

/// Analytic model cost of one request (all layers) from the encoder
/// geometry — a pure function of the request length, so the batched and
/// sequential paths trivially agree on it.
double request_model_flops(const model::EncoderConfig& cfg,
                           std::int64_t seq_len) {
  attn::LayerShape shape;
  shape.seq_len = seq_len;
  shape.d_model = cfg.d_model;
  shape.num_heads = cfg.num_heads;
  shape.ffn_mult = cfg.ffn_mult;
  const bool dense = cfg.backend == model::AttentionBackend::kDenseReference;
  const attn::LayerCost cost = attn::analyze_layer(
      shape,
      dense ? attn::AttentionVariant::kDense : attn::AttentionVariant::kWindow,
      cfg.swat.window_cores);
  return cost.total_flops() * static_cast<double>(cfg.layers);
}

}  // namespace

PlanCache::PlanCache(const Engine& engine, std::int64_t bucket_width,
                     std::int64_t max_batch_tokens)
    : engine_(engine),
      bucket_width_(bucket_width),
      max_batch_tokens_(max_batch_tokens) {
  SWAT_EXPECTS(bucket_width >= 1);
  SWAT_EXPECTS(max_batch_tokens >= 1);
}

ExecutionPlan& PlanCache::acquire(std::int64_t rows,
                                  ExecutionPlan& transient) {
  SWAT_EXPECTS(rows >= 1);
  if (rows > max_batch_tokens_) {
    // Oversized singleton: a throwaway plan, never cached.
    transient = engine_.make_plan(rows);
    return transient;
  }
  const std::int64_t shape_class = (rows + bucket_width_ - 1) / bucket_width_;
  std::lock_guard lock(mutex_);
  const auto it = plans_.find(shape_class);
  if (it != plans_.end()) return it->second;
  // Compile once for the class's high-water row count (every batch the
  // batcher can emit in this class has rows <= shape_class * bucket_width).
  return plans_
      .emplace(shape_class, engine_.make_plan(shape_class * bucket_width_))
      .first->second;
}

std::size_t PlanCache::plan_count() const {
  std::lock_guard lock(mutex_);
  return plans_.size();
}

std::size_t PlanCache::plan_arena_floats() const {
  std::lock_guard lock(mutex_);
  std::size_t total = 0;
  for (const auto& [key, plan] : plans_) total += plan.arena_floats();
  return total;
}

BatchExecutor::BatchExecutor(model::EncoderConfig cfg, BatchingOptions batching,
                             ThreadPool* pool)
    : engine_(std::move(cfg), pool),
      batching_((batching.validate(), batching)),
      cache_(engine_, batching.bucket_width, batching.max_batch_tokens) {}

BatchExecutor::BatchExecutor(model::EncoderConfig cfg, BatchingOptions batching,
                             const BatchExecutor& pack_prototype,
                             ThreadPool* pool)
    : engine_(std::move(cfg), pack_prototype.engine_, pool),
      batching_((batching.validate(), batching)),
      cache_(engine_, batching.bucket_width, batching.max_batch_tokens) {}

std::vector<RequestResult> BatchExecutor::execute(
    const BatchPlanEntry& entry,
    std::span<const InferenceRequest* const> inputs) {
  const std::int64_t n = entry.requests();
  SWAT_EXPECTS(n >= 1);
  SWAT_EXPECTS(static_cast<std::int64_t>(inputs.size()) == n);
  SWAT_EXPECTS(static_cast<std::int64_t>(entry.offsets.size()) == n + 1);
  // Resilience hook: a kThrow here is a batch-level executor failure (the
  // serving front-end must fail exactly this batch's tickets and keep
  // serving); a kDelay is a wedged executor (what the watchdog detects).
  SWAT_FAULT_POINT("executor.execute");
  const std::int64_t d_model = encoder().config().d_model;
  const std::int64_t rows = entry.rows();
  const std::vector<std::int64_t>& offsets = entry.offsets;

  std::vector<RequestResult> results(static_cast<std::size_t>(n));
  std::lock_guard lock(run_mutex_);

  // Pack: each request's rows are contiguous row-major, so one memcpy per
  // request moves its whole block into the reused staging matrix.
  packed_.reshape(rows, d_model);
  for (std::int64_t i = 0; i < n; ++i) {
    const InferenceRequest& req = *inputs[static_cast<std::size_t>(i)];
    SWAT_EXPECTS(req.input.cols() == d_model);
    SWAT_EXPECTS(req.input.rows() ==
                 offsets[static_cast<std::size_t>(i) + 1] -
                     offsets[static_cast<std::size_t>(i)]);
    std::memcpy(packed_.row(offsets[static_cast<std::size_t>(i)]).data(),
                req.input.data(),
                static_cast<std::size_t>(req.input.size()) * sizeof(float));
  }

  seg_stats_.assign(static_cast<std::size_t>(n), {});
  ExecutionPlan transient;
  ExecutionPlan& plan = cache_.acquire(rows, transient);
  const MatrixF& out = engine_.run(plan, packed_, offsets, seg_stats_);

  // Unpack into per-request results and counters.
  for (std::int64_t i = 0; i < n; ++i) {
    const InferenceRequest& req = *inputs[static_cast<std::size_t>(i)];
    RequestResult& res = results[static_cast<std::size_t>(i)];
    res.id = req.id;
    res.output = MatrixF(req.input.rows(), d_model);
    std::memcpy(res.output.data(),
                out.row(offsets[static_cast<std::size_t>(i)]).data(),
                static_cast<std::size_t>(res.output.size()) * sizeof(float));

    const model::AttentionStats& st = seg_stats_[static_cast<std::size_t>(i)];
    res.counters.tokens = req.input.rows();
    res.counters.swat_offchip_traffic = st.swat_offchip_traffic;
    res.counters.swat_core_loads = st.swat_core_loads;
    res.counters.heads_run = st.heads_run;
    res.counters.model_flops =
        request_model_flops(encoder().config(), req.input.rows());
  }
  return results;
}

}  // namespace swat
