#include "runtime/engine.hpp"

namespace swat {

// EncoderConfig::validate runs inside the Encoder constructor, before any
// weights are built, so a bad geometry fails here with a real message.
// Weights are packed here, eagerly: an Engine exists to serve, and packing
// at construction (rather than lazily on the first forward) keeps the
// first request as allocation-free as the thousandth.
Engine::Engine(model::EncoderConfig cfg)
    : encoder_(std::move(cfg)),
      packed_weight_floats_(encoder_.pack_weights()) {}

Engine Engine::compile(model::EncoderConfig cfg, std::int64_t max_tokens) {
  Engine engine(std::move(cfg));
  engine.plan_ = engine.make_plan(max_tokens);
  return engine;
}

ExecutionPlan Engine::make_plan(std::int64_t max_tokens) const {
  SWAT_EXPECTS(max_tokens >= 1);
  ExecutionPlan plan;
  plan.max_tokens_ = max_tokens;
  plan.d_model_ = encoder_.config().d_model;
  plan.ffn_mult_ = encoder_.config().ffn_mult;
  plan.arena_.bind(encoder_.config(), max_tokens);
  plan.bound_floats_ = plan.arena_.capacity_floats();
  return plan;
}

const MatrixF& Engine::run(const MatrixF& packed,
                           std::span<const std::int64_t> offsets,
                           std::span<model::AttentionStats> stats) {
  return run(plan_, packed, offsets, stats);
}

const MatrixF& Engine::run(ExecutionPlan& plan, const MatrixF& packed,
                           std::span<const std::int64_t> offsets,
                           std::span<model::AttentionStats> stats) const {
  SWAT_EXPECTS(plan.max_tokens_ >= 1 &&
               "plan was not compiled (use Engine::compile / make_plan)");
  SWAT_EXPECTS(plan.d_model_ == encoder_.config().d_model &&
               plan.ffn_mult_ == encoder_.config().ffn_mult &&
               "plan was minted for a different encoder geometry");
  SWAT_EXPECTS(packed.rows() <= plan.max_tokens_ &&
               "packed batch exceeds the plan's compiled high-water shape");
  return encoder_.forward_batch_into(packed, offsets, stats, plan.arena_);
}

}  // namespace swat
