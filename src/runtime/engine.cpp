#include "runtime/engine.hpp"

#include <stdexcept>
#include <string>

#include "common/dtype.hpp"

namespace swat {

// EncoderConfig::validate runs inside the Encoder constructor, before any
// weights are built, so a bad geometry fails here with a real message.
// Weights are packed here, eagerly: an Engine exists to serve, and packing
// at construction (rather than lazily on the first forward) keeps the
// first request as allocation-free as the thousandth.
Engine::Engine(model::EncoderConfig cfg, ThreadPool* pool)
    : encoder_(std::move(cfg)), pool_(pool) {
  // Pack on this engine's pool: with a pinned per-replica pool the pack
  // fill is the first touch of every panel page, binding the private
  // PackedWeight to the replica's NUMA node.
  ScopedPoolBinding bind(pool_);
  packed_weight_floats_ = encoder_.pack_weights();
}

Engine::Engine(model::EncoderConfig cfg, const Engine& pack_prototype,
               ThreadPool* pool)
    : encoder_(std::move(cfg)), pool_(pool) {
  const model::EncoderConfig& mine = encoder_.config();
  const model::EncoderConfig& theirs = pack_prototype.encoder_.config();
  // Sharing panels is only sound when the weights are bit-identical —
  // which they are exactly when the shape and the seed that generated
  // them agree. Anything else would silently serve the prototype's model.
  if (mine.d_model != theirs.d_model || mine.num_heads != theirs.num_heads ||
      mine.ffn_mult != theirs.ffn_mult || mine.layers != theirs.layers ||
      mine.weight_seed != theirs.weight_seed) {
    throw std::invalid_argument(
        "Engine: shared weight pack requires an identical model "
        "(d_model/num_heads/ffn_mult/layers/weight_seed must all match the "
        "prototype engine)");
  }
  // Same shape and seed but different panel precision is equally unsound:
  // the replica would silently stream panels rounded differently than its
  // configuration promises (fp16 replica reading fp32 panels, or worse).
  if (mine.pack_dtype != theirs.pack_dtype) {
    throw std::invalid_argument(
        std::string("Engine: shared weight pack requires matching "
                    "pack_dtype (this engine wants ") +
        std::string(dtype_name(mine.pack_dtype)) +
        ", the prototype packed " +
        std::string(dtype_name(theirs.pack_dtype)) +
        ") — repack the prototype or align ServerOptions::pack_dtype");
  }
  encoder_.share_packs_with(pack_prototype.encoder_);
  packed_weight_floats_ = 0;  // footprint lives on the prototype
}

Engine Engine::compile(model::EncoderConfig cfg, std::int64_t max_tokens) {
  Engine engine(std::move(cfg));
  engine.plan_ = engine.make_plan(max_tokens);
  return engine;
}

ExecutionPlan Engine::make_plan(std::int64_t max_tokens) const {
  SWAT_EXPECTS(max_tokens >= 1);
  ExecutionPlan plan;
  plan.max_tokens_ = max_tokens;
  plan.d_model_ = encoder_.config().d_model;
  plan.ffn_mult_ = encoder_.config().ffn_mult;
  plan.arena_.bind(encoder_.config(), max_tokens);
  plan.bound_floats_ = plan.arena_.capacity_floats();
  return plan;
}

const MatrixF& Engine::run(const MatrixF& packed,
                           std::span<const std::int64_t> offsets,
                           std::span<model::AttentionStats> stats) {
  return run(plan_, packed, offsets, stats);
}

const MatrixF& Engine::run(ExecutionPlan& plan, const MatrixF& packed,
                           std::span<const std::int64_t> offsets,
                           std::span<model::AttentionStats> stats) const {
  SWAT_EXPECTS(plan.max_tokens_ >= 1 &&
               "plan was not compiled (use Engine::compile / make_plan)");
  SWAT_EXPECTS(plan.d_model_ == encoder_.config().d_model &&
               plan.ffn_mult_ == encoder_.config().ffn_mult &&
               "plan was minted for a different encoder geometry");
  SWAT_EXPECTS(packed.rows() <= plan.max_tokens_ &&
               "packed batch exceeds the plan's compiled high-water shape");
  // Route every kernel fan-out of this run to the engine's pool (no-op
  // binding when pool_ is null): how one replica's work stays on that
  // replica's pinned core group without any kernel call site knowing.
  ScopedPoolBinding bind(pool_);
  return encoder_.forward_batch_into(packed, offsets, stats, plan.arena_);
}

}  // namespace swat
