#include "runtime/batcher.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

#include "common/contracts.hpp"
#include "common/fault_injection.hpp"
#include "runtime/cost_model.hpp"

namespace swat {

void BatchingOptions::validate() const {
  const auto fail = [](const std::string& what) {
    throw std::invalid_argument("BatchingOptions: " + what);
  };
  if (max_batch_requests < 1) {
    fail("max_batch_requests must be >= 1, got " +
         std::to_string(max_batch_requests));
  }
  if (max_batch_tokens < 1) {
    fail("max_batch_tokens must be >= 1, got " +
         std::to_string(max_batch_tokens) +
         " — a batch must be able to hold at least one token");
  }
  if (bucket_width < 1) {
    fail("bucket_width must be >= 1, got " + std::to_string(bucket_width));
  }
  if (max_batch_latency.value < 0.0) {
    fail("max_batch_latency must be >= 0 seconds (0 disables the budget), "
         "got " +
         std::to_string(max_batch_latency.value));
  }
}

BatchFormer::BatchFormer(BatchingOptions opt, const BatchCostModel* cost_model)
    : opt_(opt), cost_model_(cost_model) {
  opt_.validate();
}

void BatchFormer::cut(Bucket& bucket) {
  SWAT_ENSURES(!bucket.batch.request_indices.empty());
  pending_requests_ -= bucket.batch.requests();
  pending_tokens_ -= bucket.batch.rows();
  ready_.push_back(std::move(bucket.batch));
  bucket.batch = BatchPlanEntry{};
  bucket.predicted = Seconds{0.0};
}

std::size_t BatchFormer::push(std::size_t request_index, std::int64_t length,
                              Priority priority) {
  SWAT_EXPECTS(length >= 1);
  SWAT_FAULT_POINT("batcher.push");
  const std::int64_t length_class =
      (length + opt_.bucket_width - 1) / opt_.bucket_width;
  Bucket& bucket =
      buckets_[{static_cast<std::uint8_t>(priority), length_class}];
  std::size_t cuts = 0;

  // The request does not fit the open batch: cut it and start fresh. An
  // oversized request (length > max_batch_tokens) lands in an empty batch
  // and is cut as a singleton by the full_tokens check below.
  if (!bucket.batch.request_indices.empty() &&
      bucket.batch.rows() + length > opt_.max_batch_tokens) {
    cut(bucket);
    ++cuts;
  }

  bucket.batch.priority = priority;  // after the cut: a cut resets the batch
  if (bucket.batch.offsets.empty()) bucket.batch.offsets.push_back(0);
  bucket.batch.request_indices.push_back(request_index);
  bucket.batch.offsets.push_back(bucket.batch.rows() + length);
  ++pending_requests_;
  pending_tokens_ += length;
  if (cost_model_) bucket.predicted += cost_model_->request_seconds(length);

  // Cut the moment the batch cannot (or should not) grow further. The
  // budget check runs after insertion, so a budget below one request's
  // predicted cost still forms singleton batches — never starvation.
  const bool full_requests =
      bucket.batch.requests() >= opt_.max_batch_requests;
  const bool full_tokens = bucket.batch.rows() >= opt_.max_batch_tokens;
  const bool over_budget = cost_model_ != nullptr &&
                           opt_.max_batch_latency.value > 0.0 &&
                           bucket.predicted >= opt_.max_batch_latency;
  if (full_requests || full_tokens || over_budget) {
    cut(bucket);
    ++cuts;
  }
  return cuts;
}

std::size_t BatchFormer::flush() {
  std::size_t cuts = 0;
  for (auto& [key, bucket] : buckets_) {
    if (!bucket.batch.request_indices.empty()) {
      cut(bucket);
      ++cuts;
    }
  }
  return cuts;
}

BatchPlanEntry BatchFormer::pop_ready() {
  SWAT_EXPECTS(!ready_.empty());
  BatchPlanEntry entry = std::move(ready_.front());
  ready_.pop_front();
  return entry;
}

std::vector<BatchPlanEntry> plan_batches(std::span<const std::int64_t> lengths,
                                         const BatchingOptions& opt) {
  opt.validate();
  for (const std::int64_t len : lengths) SWAT_EXPECTS(len >= 1);

  // Length class k holds lengths in ((k-1) * bucket_width, k * bucket_width].
  std::vector<std::int64_t> keys;
  keys.reserve(lengths.size());
  for (const std::int64_t len : lengths) {
    keys.push_back((len + opt.bucket_width - 1) / opt.bucket_width);
  }
  // One stable sort by class visits requests in (ascending class,
  // submission order) — O(N log N) for any length distribution.
  std::vector<std::size_t> order(lengths.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return keys[a] < keys[b];
                   });

  // Feed the sorted order through the incremental former, flushing at each
  // class boundary — at most one bucket is ever open, and the emitted
  // batches match the historical greedy sweep batch for batch.
  BatchFormer former(opt);
  std::vector<BatchPlanEntry> plan;
  const auto drain = [&] {
    while (former.has_ready()) plan.push_back(former.pop_ready());
  };
  std::int64_t prev_key = 0;  // no real class is 0 (lengths are >= 1)
  for (const std::size_t i : order) {
    if (keys[i] != prev_key) former.flush();
    prev_key = keys[i];
    former.push(i, lengths[i]);
    drain();
  }
  former.flush();
  drain();
  return plan;
}

}  // namespace swat
