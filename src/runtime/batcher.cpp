#include "runtime/batcher.hpp"

#include <algorithm>

#include "common/contracts.hpp"

namespace swat {

void BatchingOptions::validate() const {
  SWAT_EXPECTS(max_batch_requests >= 1);
  SWAT_EXPECTS(max_batch_tokens >= 1);
  SWAT_EXPECTS(bucket_width >= 1);
}

std::vector<BatchPlanEntry> plan_batches(std::span<const std::int64_t> lengths,
                                         const BatchingOptions& opt) {
  opt.validate();
  for (const std::int64_t len : lengths) SWAT_EXPECTS(len >= 1);

  // Length class k holds lengths in ((k-1) * bucket_width, k * bucket_width].
  std::vector<std::int64_t> keys;
  keys.reserve(lengths.size());
  for (const std::int64_t len : lengths) {
    keys.push_back((len + opt.bucket_width - 1) / opt.bucket_width);
  }
  // One stable sort by class visits requests in (ascending class,
  // submission order) — O(N log N) for any length distribution.
  std::vector<std::size_t> order(lengths.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return keys[a] < keys[b];
                   });

  std::vector<BatchPlanEntry> plan;
  BatchPlanEntry batch;
  batch.offsets.push_back(0);
  const auto flush = [&] {
    if (!batch.request_indices.empty()) {
      plan.push_back(std::move(batch));
      batch = BatchPlanEntry{};
      batch.offsets.push_back(0);
    }
  };
  std::int64_t current_key = 0;
  for (const std::size_t i : order) {
    const std::int64_t len = lengths[i];
    if (!batch.request_indices.empty() &&
        (keys[i] != current_key ||
         batch.requests() >= opt.max_batch_requests ||
         batch.rows() + len > opt.max_batch_tokens)) {
      flush();
    }
    current_key = keys[i];
    batch.request_indices.push_back(i);
    batch.offsets.push_back(batch.rows() + len);
  }
  flush();
  return plan;
}

}  // namespace swat
