// BatchCostModel — the paper's hardware latency model repackaged as a
// serving-layer signal.
//
// The stage-latency pipeline model (swat/stage_latency.hpp, paper Table 1)
// and its closed form (swat/analytic.hpp) predict how long the accelerator
// takes to serve a head of a given length. The continuous batcher needs
// exactly that number to decide *when to stop waiting and cut a batch*: a
// batch whose predicted service time already exceeds the latency budget
// should run now, not wait for more arrivals it would make even later.
// This adapter maps encoder requests and formed batches onto the analytic
// model so the hw model drives the serving layer.
#pragma once

#include <cstdint>

#include "model/encoder.hpp"
#include "runtime/batcher.hpp"
#include "swat/analytic.hpp"

namespace swat {

class BatchCostModel {
 public:
  /// Validates `cfg` (EncoderConfig::validate) and builds the closed-form
  /// pipeline model for its SWAT configuration.
  explicit BatchCostModel(const model::EncoderConfig& cfg);

  /// Predicted accelerator time to serve one request of `seq_len` tokens:
  /// AnalyticModel::model_time over the encoder's heads x layers (heads
  /// stream through the row pipeline back to back; §5.3's "total attention
  /// time is proportional to the execution time of a single head").
  Seconds request_seconds(std::int64_t seq_len) const;

  /// Predicted time for a formed batch: the sum over its member requests.
  /// Batch members share no attention work — packing wins host-side GEMM
  /// width and task parallelism, not accelerator cycles — so the pipeline
  /// occupancy of a batch is additive in its members.
  Seconds batch_seconds(const BatchPlanEntry& entry) const;

  /// The dispatch-side load estimate for a formed batch: what the replica
  /// pool charges a replica's backlog when the batch is placed on it, and
  /// credits back when the batch retires. batch_seconds plus the per-batch
  /// weight sweep (weight_stream_seconds) plus the batch's attention
  /// activation sweep (kv_stream_seconds) — every executed batch streams
  /// the whole packed weight set once and each sequence's K/V band tiles
  /// once per layer, so both the pack_dtype and stream_dtype knobs change
  /// what dispatch charges per batch. Named separately so "predict the
  /// cost of placing this batch" has one spelling at the dispatch call
  /// sites (Server's replica pool, work stealing, watchdog thresholds).
  Seconds predict(const BatchPlanEntry& entry) const {
    return batch_seconds(entry) + weight_stream_seconds() +
           kv_stream_seconds(entry);
  }

  /// Bytes of packed weights one executed batch streams from memory: one
  /// full sweep of every layer's panels, priced from the encoder geometry
  /// via PackedWeight::padded_elements x dtype_bytes(pack_dtype) — exactly
  /// Engine::packed_weight_bytes() for a non-sharing engine of the same
  /// config (tests assert the identity).
  Bytes weight_stream_bytes() const { return weight_stream_bytes_; }

  /// The weight sweep converted to time against the calibrated host
  /// stream bandwidth (calib::kHostWeightStreamBytesPerSec).
  Seconds weight_stream_seconds() const { return weight_stream_seconds_; }

  /// Bytes of K/V band tiles the fused attention path streams for one
  /// executed batch: per sequence, attn::fused_window_kv_stream_bytes
  /// (every row's clipped band read from both K and V, per head) times the
  /// layer count, at dtype_bytes(stream_dtype) per element — the
  /// activation-side twin of weight_stream_bytes, so stream_dtype = kFp16
  /// halves what dispatch charges for the attention sweep.
  Bytes kv_stream_bytes(const BatchPlanEntry& entry) const;

  /// The batch's K/V sweep converted to time against the same calibrated
  /// host stream bandwidth the weight sweep is priced at.
  Seconds kv_stream_seconds(const BatchPlanEntry& entry) const;

  /// Deadline slack for a request that has already waited `waited` of its
  /// `deadline`: deadline - waited - request_seconds(seq_len). A
  /// non-positive slack means the request cannot meet its deadline even if
  /// it ran this instant — the shedding signal that fails a hopeless
  /// ticket (DeadlineExceeded) BEFORE compute is spent on it.
  Seconds deadline_slack(std::int64_t seq_len, Seconds deadline,
                         Seconds waited) const;

  const AnalyticModel& analytic() const { return analytic_; }

 private:
  AnalyticModel analytic_;
  int num_heads_;
  int layers_;
  std::int64_t head_dim_;
  std::int64_t window_before_;
  std::int64_t window_after_;
  Dtype stream_dtype_;
  Bytes weight_stream_bytes_;
  Seconds weight_stream_seconds_;
};

}  // namespace swat
