// Serving-side observability types: SLO classes, per-class counters, and
// the server health snapshot.
//
// Under overload a server must decide WHICH work to drop and WHEN a
// request is already hopeless — and it must be able to show its work.
// This header is the vocabulary for both decisions:
//
//   * Priority — the SLO class a request is admitted under. kInteractive
//     is drained first by the scheduler; kBulk rides along and is the
//     class shed under OverflowPolicy::kShedBulk. Aging guarantees bulk is
//     never starved entirely (ServerOptions::bulk_aging_interval).
//   * DeadlineExceeded — the exception a ticket resolves with when the
//     cost model predicts (or observation confirms) the request cannot
//     meet its deadline, thrown BEFORE compute is spent on it.
//   * ClassStats / ServerStats — cumulative counters per class plus queue
//     depth and oldest-pending age; Server::stats() snapshots them.
//     Conservation, per class: every submitted ticket lands in exactly one
//     outcome bin, so at every snapshot
//       submitted == served + shed + deadline_shed + failed + (in flight)
//     `admitted` counts the subset that entered the admission queue
//     (deadline sheds happen on both sides of it: at submit when the
//     prediction alone exceeds the deadline, at claim when waiting
//     consumed the slack), and deadline_missed is a subset of served.
//   * ServerHealth / HealthState — the watchdog's view: kStalled while a
//     batch has overrun the cost-model stall threshold, kFailed once the
//     scheduler died (every ticket was cleanly rejected, never hung),
//     kShutdown after admission closed.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>

#include "common/units.hpp"

namespace swat {

/// The SLO class a request is admitted under.
enum class Priority : std::uint8_t {
  kInteractive = 0,  ///< latency-sensitive; drained first, never shed first
  kBulk = 1,         ///< throughput traffic; shed at the overload watermark
};

inline constexpr std::size_t kPriorityClasses = 2;

constexpr const char* to_string(Priority p) {
  return p == Priority::kInteractive ? "interactive" : "bulk";
}

/// What a ticket resolves with when its request cannot (or did not) meet
/// its deadline and was failed before compute was spent on it.
class DeadlineExceeded : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Cumulative per-class counters. Every submitted ticket lands in exactly
/// one of: shed, deadline_shed, failed, or served (see the conservation
/// identity in the header comment).
struct ClassStats {
  std::int64_t submitted = 0;  ///< submit() calls for this class
  std::int64_t admitted = 0;   ///< entered the admission queue
  std::int64_t served = 0;     ///< resolved with a result
  /// Rejected at admission: queue full (kReject), over the bulk shed
  /// watermark (kShedBulk), malformed input, or server shut down.
  std::int64_t shed = 0;
  /// Failed with DeadlineExceeded before compute was spent: the cost
  /// model predicted the deadline unmeetable at submit (prediction alone
  /// exceeds it — never admitted) or at claim (queueing ate the slack).
  std::int64_t deadline_shed = 0;
  /// Served, but the result arrived after the request's deadline — an SLO
  /// violation that still returned an answer (a subset of served).
  std::int64_t deadline_missed = 0;
  /// Rejected after admission: the batch's executor failed (the exception
  /// is on the ticket) or the scheduler discarded the backlog on failure.
  std::int64_t failed = 0;
};

/// Snapshot of the server's cumulative serving ledger (Server::stats()).
struct ServerStats {
  ClassStats per_class[kPriorityClasses];
  std::size_t queue_depth = 0;       ///< admitted, not yet claimed
  Seconds oldest_pending_age{};      ///< oldest admitted-but-unresolved
  std::int64_t batches = 0;          ///< batches successfully executed
  std::int64_t watchdog_stalls = 0;  ///< distinct stall episodes flagged

  const ClassStats& of(Priority p) const {
    return per_class[static_cast<std::size_t>(p)];
  }
  ClassStats& of(Priority p) {
    return per_class[static_cast<std::size_t>(p)];
  }
};

enum class HealthState : std::uint8_t {
  kHealthy,   ///< scheduler live, no overrunning batch
  kStalled,   ///< the executing batch has overrun the watchdog threshold
  kFailed,    ///< the scheduler died; all pending tickets were rejected
  kShutdown,  ///< admission closed (shutdown() or destruction)
};

constexpr const char* to_string(HealthState s) {
  switch (s) {
    case HealthState::kHealthy: return "healthy";
    case HealthState::kStalled: return "stalled";
    case HealthState::kFailed: return "failed";
    case HealthState::kShutdown: return "shutdown";
  }
  return "?";
}

/// The watchdog's liveness snapshot (Server::health()).
struct ServerHealth {
  HealthState state = HealthState::kHealthy;
  std::int64_t watchdog_stalls = 0;  ///< distinct stall episodes so far
  /// Age of the currently executing batch (zero when none is executing).
  Seconds current_batch_age{};
  Seconds oldest_pending_age{};
  std::size_t queue_depth = 0;

  bool ok() const { return state == HealthState::kHealthy; }
};

}  // namespace swat
