// Serving-side observability types: SLO classes, per-class counters, and
// the server health snapshot.
//
// Under overload a server must decide WHICH work to drop and WHEN a
// request is already hopeless — and it must be able to show its work.
// This header is the vocabulary for both decisions:
//
//   * Priority — the SLO class a request is admitted under. kInteractive
//     is drained first by the scheduler; kBulk rides along and is the
//     class shed under OverflowPolicy::kShedBulk. Aging guarantees bulk is
//     never starved entirely (ServerOptions::bulk_aging_interval).
//   * DeadlineExceeded — the exception a ticket resolves with when the
//     cost model predicts (or observation confirms) the request cannot
//     meet its deadline, thrown BEFORE compute is spent on it.
//   * ClassStats / ServerStats — cumulative counters per class plus queue
//     depth and oldest-pending age; Server::stats() snapshots them.
//     Conservation, per class: every submitted ticket lands in exactly one
//     outcome bin, so at every snapshot
//       submitted == served + shed + deadline_shed + failed + (in flight)
//     `admitted` counts the subset that entered the admission queue
//     (deadline sheds happen on both sides of it: at submit when the
//     prediction alone exceeds the deadline, at claim when waiting
//     consumed the slack), and deadline_missed is a subset of served.
//   * ReplicaClassStats / ReplicaStats — the replica pool's half of the
//     ledger: per-replica, per-class outcome counters obeying their own
//     conservation identity (dispatched == served + failed + executing),
//     and summing to the front-end totals for everything that reached a
//     replica. ServerStats::replicas holds one per engine replica.
//   * ServerHealth / HealthState — the watchdog's view: kStalled while a
//     batch has overrun the cost-model stall threshold OR the pool is
//     degraded (a replica was quarantined but survivors keep serving),
//     kFailed once the scheduler died or every replica died (every ticket
//     was cleanly rejected, never hung), kShutdown after admission closed.
//     ReplicaHealth is the per-replica entry in ServerHealth::replicas.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/units.hpp"

namespace swat {

/// The SLO class a request is admitted under.
enum class Priority : std::uint8_t {
  kInteractive = 0,  ///< latency-sensitive; drained first, never shed first
  kBulk = 1,         ///< throughput traffic; shed at the overload watermark
};

inline constexpr std::size_t kPriorityClasses = 2;

constexpr const char* to_string(Priority p) {
  return p == Priority::kInteractive ? "interactive" : "bulk";
}

/// What a ticket resolves with when its request cannot (or did not) meet
/// its deadline and was failed before compute was spent on it.
class DeadlineExceeded : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Cumulative per-class counters. Every submitted ticket lands in exactly
/// one of: shed, deadline_shed, failed, or served (see the conservation
/// identity in the header comment).
struct ClassStats {
  std::int64_t submitted = 0;  ///< submit() calls for this class
  std::int64_t admitted = 0;   ///< entered the admission queue
  std::int64_t served = 0;     ///< resolved with a result
  /// Rejected at admission: queue full (kReject), over the bulk shed
  /// watermark (kShedBulk), malformed input, or server shut down.
  std::int64_t shed = 0;
  /// Failed with DeadlineExceeded before compute was spent: the cost
  /// model predicted the deadline unmeetable at submit (prediction alone
  /// exceeds it — never admitted) or at claim (queueing ate the slack).
  std::int64_t deadline_shed = 0;
  /// Served, but the result arrived after the request's deadline — an SLO
  /// violation that still returned an answer (a subset of served).
  std::int64_t deadline_missed = 0;
  /// Rejected after admission: the batch's executor failed (the exception
  /// is on the ticket) or the scheduler discarded the backlog on failure.
  std::int64_t failed = 0;
};

/// Per-class outcome counters for a single engine replica. Every request
/// dispatched to a replica lands in exactly one bin, so at every snapshot
///   dispatched == served + failed + (executing right now)
/// and, summed over replicas, served/deadline_missed equal the front-end
/// class counters (front-end `failed` may exceed the replica sum: requests
/// rejected before reaching a replica — scheduler death, total pool
/// failure — are charged to the front end only).
struct ReplicaClassStats {
  std::int64_t dispatched = 0;       ///< claimed off the replica's queue
  std::int64_t served = 0;           ///< resolved with a result
  std::int64_t deadline_missed = 0;  ///< served past deadline (⊆ served)
  std::int64_t failed = 0;           ///< batch execution or replica death
};

/// One engine replica's slice of the serving ledger
/// (ServerStats::replicas[i]).
struct ReplicaStats {
  ReplicaClassStats per_class[kPriorityClasses];
  std::int64_t batches = 0;          ///< batches this replica executed
  std::int64_t batches_stolen = 0;   ///< batches claimed from another queue
  std::int64_t watchdog_stalls = 0;  ///< stall episodes on this replica
  /// The CPUs this replica is pinned to, in canonical cpulist form
  /// ("0-3,8"); empty under shared placement (no per-replica pinning).
  std::string core_group;
  /// Threads successfully pinned to core_group: the replica pool's
  /// workers plus the replica's own worker thread. 0 under shared
  /// placement and on hosts without affinity support.
  int pinned_threads = 0;
  /// NUMA node whose memory holds the packed weights this replica
  /// streams: its own group's node for a private (or per-node replicated)
  /// pack under partitioned placement, the prototype's node for a shared
  /// first-touch pack (so a far-node replica visibly reports a remote
  /// pack), and -1 when the pack is not node-attributed — shared
  /// placement, or kInterleaved (pages round-robin across nodes by
  /// design).
  int pack_node = -1;
  /// True once the replica died (its worker thread exited on an injected
  /// or real failure); a quarantined replica takes no further batches.
  bool quarantined = false;

  const ReplicaClassStats& of(Priority p) const {
    return per_class[static_cast<std::size_t>(p)];
  }
  ReplicaClassStats& of(Priority p) {
    return per_class[static_cast<std::size_t>(p)];
  }
  std::int64_t dispatched() const {
    return per_class[0].dispatched + per_class[1].dispatched;
  }
  std::int64_t served() const {
    return per_class[0].served + per_class[1].served;
  }
  std::int64_t failed() const {
    return per_class[0].failed + per_class[1].failed;
  }
  /// Requests claimed by this replica and not yet resolved either way.
  std::int64_t in_flight() const {
    return dispatched() - served() - failed();
  }
};

/// Snapshot of the server's cumulative serving ledger (Server::stats()).
struct ServerStats {
  ClassStats per_class[kPriorityClasses];
  std::vector<ReplicaStats> replicas;  ///< one entry per engine replica
  std::size_t queue_depth = 0;       ///< admitted, not yet claimed
  Seconds oldest_pending_age{};      ///< oldest admitted-but-unresolved
  std::int64_t batches = 0;          ///< batches successfully executed
  std::int64_t watchdog_stalls = 0;  ///< distinct stall episodes flagged

  const ClassStats& of(Priority p) const {
    return per_class[static_cast<std::size_t>(p)];
  }
  ClassStats& of(Priority p) {
    return per_class[static_cast<std::size_t>(p)];
  }
};

enum class HealthState : std::uint8_t {
  kHealthy,   ///< scheduler live, no overrunning batch
  kStalled,   ///< the executing batch has overrun the watchdog threshold
  kFailed,    ///< the scheduler died; all pending tickets were rejected
  kShutdown,  ///< admission closed (shutdown() or destruction)
};

constexpr const char* to_string(HealthState s) {
  switch (s) {
    case HealthState::kHealthy: return "healthy";
    case HealthState::kStalled: return "stalled";
    case HealthState::kFailed: return "failed";
    case HealthState::kShutdown: return "shutdown";
  }
  return "?";
}

/// One replica's liveness entry in ServerHealth::replicas. kFailed means
/// this replica is quarantined (the pool may still be serving); kStalled
/// means its current batch has overrun the watchdog threshold.
struct ReplicaHealth {
  HealthState state = HealthState::kHealthy;
  /// Age of the batch this replica is executing (zero when idle).
  Seconds current_batch_age{};
  std::int64_t watchdog_stalls = 0;  ///< stall episodes on this replica

  bool ok() const { return state == HealthState::kHealthy; }
};

/// The watchdog's liveness snapshot (Server::health()). The top-level
/// state is the pool roll-up: kFailed only when serving stopped entirely
/// (scheduler death or every replica dead); a quarantined replica or an
/// overrunning batch degrades the pool to kStalled while survivors serve.
struct ServerHealth {
  HealthState state = HealthState::kHealthy;
  std::vector<ReplicaHealth> replicas;  ///< one entry per engine replica
  std::int64_t watchdog_stalls = 0;  ///< distinct stall episodes so far
  /// Age of the oldest currently executing batch (zero when all idle).
  Seconds current_batch_age{};
  Seconds oldest_pending_age{};
  std::size_t queue_depth = 0;

  bool ok() const { return state == HealthState::kHealthy; }
};

}  // namespace swat
