// Length-bucketed batch planning for the serving runtime.
//
// Variable-length requests are grouped into buckets of similar length
// (bucket key = ceil(len / bucket_width)) before being packed, so the
// per-(sequence, head) attention tasks inside one fork-join batch have
// comparable cost: the straggler task that decides the batch's wall time is
// then barely longer than the average task. Within a bucket submission
// order is preserved, and batches are cut greedily at max_batch_requests /
// max_batch_tokens — and, when a BatchCostModel is attached, at a
// predicted-latency budget, so the paper's hardware model decides when a
// batch has grown expensive enough to stop waiting for more arrivals.
//
// Two forms of the same policy:
//   * plan_batches — the offline planner: a pure function of the length
//     vector and the options (no cost model, no clocks, no thread count),
//     deterministic for any thread count, which is what lets the
//     synchronous runtime guarantee bit-identical outputs regardless of
//     SWAT_THREADS.
//   * BatchFormer — the incremental form the continuous-batching server
//     feeds one request at a time: per-bucket pending queues, batches cut
//     the moment a cap or the latency budget is hit, a flush() to cut
//     everything pending when the scheduler decides to stop waiting.
//     plan_batches is implemented on top of BatchFormer, so both paths cut
//     batches by exactly one rule set.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <span>
#include <utility>
#include <vector>

#include "common/units.hpp"
#include "runtime/stats.hpp"

namespace swat {

class BatchCostModel;

struct BatchingOptions {
  /// Most requests packed into one batch.
  std::int64_t max_batch_requests = 8;
  /// Most total tokens packed into one batch. A single request longer than
  /// this still forms its own (singleton) batch — requests are never split.
  std::int64_t max_batch_tokens = 1 << 14;
  /// Bucket granularity: requests with equal ceil(len / bucket_width) are
  /// candidates for the same batch.
  std::int64_t bucket_width = 64;
  /// Predicted-latency budget per batch: a batch is cut as soon as its
  /// predicted service time (BatchCostModel over the paper's stage-latency
  /// pipeline) reaches this. Zero disables the budget. Only consulted where
  /// a cost model is attached (BatchFormer in the async server) — the
  /// offline plan_batches stays a pure function of the lengths. A budget
  /// smaller than a single request's predicted cost still forms singleton
  /// batches: the budget stops a batch from growing, never from existing.
  Seconds max_batch_latency{0.0};

  /// Rejects inconsistent options with actionable messages
  /// (std::invalid_argument), mirroring model::EncoderConfig::validate.
  void validate() const;
};

/// One planned packed batch.
struct BatchPlanEntry {
  /// Indices into the submitted request span, in submission order.
  std::vector<std::size_t> request_indices;
  /// Packed row offsets, one per request plus a trailing total:
  /// request_indices[i]'s rows occupy [offsets[i], offsets[i+1]).
  std::vector<std::int64_t> offsets;
  /// The SLO class every member was admitted under — batches are
  /// class-pure (a bulk request never widens an interactive batch's
  /// straggler time). Always kInteractive from the offline planner.
  Priority priority = Priority::kInteractive;

  /// Number of requests in the entry; 0 for a default-constructed entry.
  std::int64_t requests() const {
    return static_cast<std::int64_t>(request_indices.size());
  }
  /// Total packed rows; 0 for a default-constructed (empty) entry rather
  /// than a dereference of offsets.back() on an empty vector.
  std::int64_t rows() const { return offsets.empty() ? 0 : offsets.back(); }
};

/// Incremental, stateful batch former — the continuous-batching core.
///
/// Requests are admitted one at a time with push(); each open bucket keeps
/// its own pending partial batch. A batch moves to the ready queue the
/// moment admission-time state decides it is full:
///   * adding the request would exceed max_batch_tokens (the open batch is
///     cut first; the request starts a fresh one — oversized requests
///     therefore always get their own singleton batch);
///   * the batch reaches max_batch_requests or max_batch_tokens exactly;
///   * with a cost model attached, the batch's predicted service time
///     reaches max_batch_latency (checked after insertion, so a budget
///     below one request's predicted cost still yields singleton batches —
///     the budget never starves a request).
/// flush() cuts every pending partial batch (ascending length class) —
/// what the scheduler calls when the arrival queue goes momentarily empty
/// and waiting longer would only add latency.
///
/// Determinism: the batches formed are a pure function of the sequence of
/// push()/flush() calls and the options — no clocks, no thread count. The
/// executor guarantees per-request outputs are bit-identical to a solo run
/// for ANY formed batch, so scheduling policy affects latency only, never
/// results. The same contract is what makes the replica pool sound: a cut
/// batch is a closed unit of work whose result does not depend on WHICH
/// engine replica executes it (or whether it was stolen), so the server's
/// dispatcher is free to place each ready batch by cost
/// (BatchCostModel::predict) alone.
class BatchFormer {
 public:
  /// `cost_model`, when non-null, must outlive the former; it prices
  /// requests for the max_batch_latency budget. Null means the budget is
  /// inert (the offline planner's configuration).
  explicit BatchFormer(BatchingOptions opt,
                       const BatchCostModel* cost_model = nullptr);

  /// Admit one request (length >= 1) under `priority` — buckets are keyed
  /// by (class, length class), so batches stay class-pure. Returns how
  /// many batches this push moved to the ready queue (0, 1, or 2 — a
  /// token-cap cut plus an immediately-full fresh batch).
  std::size_t push(std::size_t request_index, std::int64_t length,
                   Priority priority = Priority::kInteractive);

  /// Cut every pending partial batch — interactive classes first, then
  /// bulk, ascending length class within each. Returns how many batches
  /// moved to the ready queue.
  std::size_t flush();

  bool has_ready() const { return !ready_.empty(); }
  /// Pop the oldest ready batch (FIFO in cut order). Precondition:
  /// has_ready().
  BatchPlanEntry pop_ready();

  /// Requests admitted but not yet part of a ready batch.
  std::int64_t pending_requests() const { return pending_requests_; }
  /// Tokens admitted but not yet part of a ready batch.
  std::int64_t pending_tokens() const { return pending_tokens_; }

  const BatchingOptions& options() const { return opt_; }

 private:
  struct Bucket {
    BatchPlanEntry batch;
    Seconds predicted;  ///< cost-model price of the open batch
  };

  void cut(Bucket& bucket);

  BatchingOptions opt_;
  const BatchCostModel* cost_model_;
  /// (SLO class, length class) -> open batch; map order puts interactive
  /// ahead of bulk on flush.
  std::map<std::pair<std::uint8_t, std::int64_t>, Bucket> buckets_;
  std::deque<BatchPlanEntry> ready_;
  std::int64_t pending_requests_ = 0;
  std::int64_t pending_tokens_ = 0;
};

/// Plan the packed batches for a submission of per-request sequence
/// lengths (all must be >= 1). Buckets are visited in ascending length
/// class; within a bucket, requests keep submission order. A pure function
/// of the length vector and the options (the latency budget is not
/// consulted — no cost model is attached).
std::vector<BatchPlanEntry> plan_batches(std::span<const std::int64_t> lengths,
                                         const BatchingOptions& opt);

}  // namespace swat
