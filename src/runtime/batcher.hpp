// Length-bucketed batch planning for the serving runtime.
//
// Variable-length requests are grouped into buckets of similar length
// (bucket key = ceil(len / bucket_width)) before being packed, so the
// per-(sequence, head) attention tasks inside one fork-join batch have
// comparable cost: the straggler task that decides the batch's wall time is
// then barely longer than the average task. Within a bucket submission
// order is preserved, and batches are cut greedily at max_batch_requests /
// max_batch_tokens.
//
// The plan is a pure function of the length vector and the options —
// deterministic for any thread count, which is what lets the runtime
// guarantee bit-identical outputs regardless of SWAT_THREADS.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace swat {

struct BatchingOptions {
  /// Most requests packed into one batch.
  std::int64_t max_batch_requests = 8;
  /// Most total tokens packed into one batch. A single request longer than
  /// this still forms its own (singleton) batch — requests are never split.
  std::int64_t max_batch_tokens = 1 << 14;
  /// Bucket granularity: requests with equal ceil(len / bucket_width) are
  /// candidates for the same batch.
  std::int64_t bucket_width = 64;

  void validate() const;
};

/// One planned packed batch.
struct BatchPlanEntry {
  /// Indices into the submitted request span, in submission order.
  std::vector<std::size_t> request_indices;
  /// Packed row offsets, one per request plus a trailing total:
  /// request_indices[i]'s rows occupy [offsets[i], offsets[i+1]).
  std::vector<std::int64_t> offsets;

  std::int64_t requests() const {
    return static_cast<std::int64_t>(request_indices.size());
  }
  std::int64_t rows() const { return offsets.back(); }
};

/// Plan the packed batches for a submission of per-request sequence
/// lengths (all must be >= 1). Buckets are visited in ascending length
/// class; within a bucket, requests keep submission order.
std::vector<BatchPlanEntry> plan_batches(std::span<const std::int64_t> lengths,
                                         const BatchingOptions& opt);

}  // namespace swat
