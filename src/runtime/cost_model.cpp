#include "runtime/cost_model.hpp"

#include "eval/calibration.hpp"
#include "tensor/kernels.hpp"

namespace swat {

namespace {

/// One full sweep of the stack's packed panels, from geometry alone: per
/// layer, four d_model x d_model projections plus the two FFN halves —
/// the same shapes Engine packs, padded the same way.
Bytes packed_sweep_bytes(const model::EncoderConfig& cfg) {
  const std::int64_t d = cfg.d_model;
  const std::int64_t h = cfg.d_model * cfg.ffn_mult;
  const std::size_t per_layer = 4 * PackedWeight::padded_elements(d, d) +
                                PackedWeight::padded_elements(h, d) +
                                PackedWeight::padded_elements(d, h);
  return Bytes{static_cast<std::uint64_t>(per_layer) *
               static_cast<std::uint64_t>(cfg.layers) *
               dtype_bytes(cfg.pack_dtype)};
}

}  // namespace

BatchCostModel::BatchCostModel(const model::EncoderConfig& cfg)
    : analytic_((cfg.validate(), cfg.swat)),
      num_heads_(static_cast<int>(cfg.num_heads)),
      layers_(cfg.layers),
      weight_stream_bytes_(packed_sweep_bytes(cfg)),
      weight_stream_seconds_(static_cast<double>(weight_stream_bytes_.count) /
                             calib::kHostWeightStreamBytesPerSec) {}

Seconds BatchCostModel::request_seconds(std::int64_t seq_len) const {
  SWAT_EXPECTS(seq_len >= 1);
  return analytic_.model_time(seq_len, num_heads_, layers_);
}

Seconds BatchCostModel::batch_seconds(const BatchPlanEntry& entry) const {
  Seconds total;
  for (std::size_t i = 0; i + 1 < entry.offsets.size(); ++i) {
    total += request_seconds(entry.offsets[i + 1] - entry.offsets[i]);
  }
  return total;
}

Seconds BatchCostModel::deadline_slack(std::int64_t seq_len, Seconds deadline,
                                       Seconds waited) const {
  return Seconds{deadline.value - waited.value -
                 request_seconds(seq_len).value};
}

}  // namespace swat
