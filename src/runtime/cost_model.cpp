#include "runtime/cost_model.hpp"

namespace swat {

BatchCostModel::BatchCostModel(const model::EncoderConfig& cfg)
    : analytic_((cfg.validate(), cfg.swat)),
      num_heads_(static_cast<int>(cfg.num_heads)),
      layers_(cfg.layers) {}

Seconds BatchCostModel::request_seconds(std::int64_t seq_len) const {
  SWAT_EXPECTS(seq_len >= 1);
  return analytic_.model_time(seq_len, num_heads_, layers_);
}

Seconds BatchCostModel::batch_seconds(const BatchPlanEntry& entry) const {
  Seconds total;
  for (std::size_t i = 0; i + 1 < entry.offsets.size(); ++i) {
    total += request_seconds(entry.offsets[i + 1] - entry.offsets[i]);
  }
  return total;
}

Seconds BatchCostModel::deadline_slack(std::int64_t seq_len, Seconds deadline,
                                       Seconds waited) const {
  return Seconds{deadline.value - waited.value -
                 request_seconds(seq_len).value};
}

}  // namespace swat
