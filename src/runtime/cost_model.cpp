#include "runtime/cost_model.hpp"

#include "attention/fused.hpp"
#include "eval/calibration.hpp"
#include "tensor/kernels.hpp"

namespace swat {

namespace {

/// One full sweep of the stack's packed panels, from geometry alone: per
/// layer, four d_model x d_model projections plus the two FFN halves —
/// the same shapes Engine packs, padded the same way.
Bytes packed_sweep_bytes(const model::EncoderConfig& cfg) {
  const std::int64_t d = cfg.d_model;
  const std::int64_t h = cfg.d_model * cfg.ffn_mult;
  const std::size_t per_layer = 4 * PackedWeight::padded_elements(d, d) +
                                PackedWeight::padded_elements(h, d) +
                                PackedWeight::padded_elements(d, h);
  return Bytes{static_cast<std::uint64_t>(per_layer) *
               static_cast<std::uint64_t>(cfg.layers) *
               dtype_bytes(cfg.pack_dtype)};
}

}  // namespace

BatchCostModel::BatchCostModel(const model::EncoderConfig& cfg)
    : analytic_((cfg.validate(), cfg.swat)),
      num_heads_(static_cast<int>(cfg.num_heads)),
      layers_(cfg.layers),
      head_dim_(cfg.d_model / cfg.num_heads),
      window_before_(cfg.swat.window_before()),
      window_after_(cfg.swat.window_after()),
      stream_dtype_(cfg.stream_dtype),
      weight_stream_bytes_(packed_sweep_bytes(cfg)),
      weight_stream_seconds_(static_cast<double>(weight_stream_bytes_.count) /
                             calib::kHostWeightStreamBytesPerSec) {}

Bytes BatchCostModel::kv_stream_bytes(const BatchPlanEntry& entry) const {
  std::int64_t per_layer = 0;
  for (std::size_t i = 0; i + 1 < entry.offsets.size(); ++i) {
    per_layer += attn::fused_window_kv_stream_bytes(
        entry.offsets[i + 1] - entry.offsets[i], num_heads_, head_dim_,
        window_before_, window_after_, stream_dtype_);
  }
  return Bytes{static_cast<std::uint64_t>(per_layer) *
               static_cast<std::uint64_t>(layers_)};
}

Seconds BatchCostModel::kv_stream_seconds(const BatchPlanEntry& entry) const {
  return Seconds{static_cast<double>(kv_stream_bytes(entry).count) /
                 calib::kHostWeightStreamBytesPerSec};
}

Seconds BatchCostModel::request_seconds(std::int64_t seq_len) const {
  SWAT_EXPECTS(seq_len >= 1);
  return analytic_.model_time(seq_len, num_heads_, layers_);
}

Seconds BatchCostModel::batch_seconds(const BatchPlanEntry& entry) const {
  Seconds total;
  for (std::size_t i = 0; i + 1 < entry.offsets.size(); ++i) {
    total += request_seconds(entry.offsets[i + 1] - entry.offsets[i]);
  }
  return total;
}

Seconds BatchCostModel::deadline_slack(std::int64_t seq_len, Seconds deadline,
                                       Seconds waited) const {
  return Seconds{deadline.value - waited.value -
                 request_seconds(seq_len).value};
}

}  // namespace swat
