#include "runtime/runtime.hpp"

#include <utility>

#include "common/contracts.hpp"

namespace swat {

Runtime::Runtime(model::EncoderConfig cfg, BatchingOptions batching)
    : executor_(std::move(cfg), batching) {}

std::vector<RequestResult> Runtime::run(
    std::span<const InferenceRequest> requests) {
  const std::int64_t d_model = encoder().config().d_model;
  std::vector<std::int64_t> lengths;
  lengths.reserve(requests.size());
  for (const InferenceRequest& req : requests) {
    SWAT_EXPECTS(req.input.cols() == d_model);
    SWAT_EXPECTS(req.input.rows() >= 1);
    lengths.push_back(req.input.rows());
  }

  std::vector<RequestResult> results(requests.size());
  const std::vector<BatchPlanEntry> plan =
      plan_batches(lengths, executor_.batching());

  std::vector<const InferenceRequest*> inputs;
  for (std::size_t b = 0; b < plan.size(); ++b) {
    const BatchPlanEntry& batch = plan[b];
    inputs.clear();
    for (const std::size_t ri : batch.request_indices) {
      inputs.push_back(&requests[ri]);
    }
    std::vector<RequestResult> served = executor_.execute(batch, inputs);
    for (std::size_t i = 0; i < served.size(); ++i) {
      served[i].counters.batch_index = static_cast<std::int64_t>(b);
      results[batch.request_indices[i]] = std::move(served[i]);
    }
    ++totals_.batches;
    // Every executed batch streams the whole resident pack once — the
    // same per-batch pricing the async server takes from its cost model
    // (Runtime's executor never shares a pack, so the engine's resident
    // bytes ARE the sweep).
    totals_.weight_stream_bytes += Bytes{executor_.packed_weight_bytes()};
  }

  // Totals accumulate in submission order — the order a caller naturally
  // sums RequestCounters in — so the documented "totals equal the
  // field-wise sum of every RequestCounters" identity is exact even for
  // the non-associative double (model_flops), not merely within a ULP.
  for (const RequestResult& res : results) {
    totals_.accumulate(res.counters);
  }
  return results;
}

RequestResult Runtime::run_one(const InferenceRequest& request) {
  std::vector<RequestResult> results = run({&request, 1});
  return std::move(results.front());
}

}  // namespace swat
