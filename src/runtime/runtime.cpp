#include "runtime/runtime.hpp"

#include <algorithm>
#include <cstring>

#include "attention/flops.hpp"

namespace swat {

namespace {

/// Analytic model cost of one request (all layers) from the encoder
/// geometry — a pure function of the request length, so the batched and
/// sequential paths trivially agree on it.
double request_model_flops(const model::EncoderConfig& cfg,
                           std::int64_t seq_len) {
  attn::LayerShape shape;
  shape.seq_len = seq_len;
  shape.d_model = cfg.d_model;
  shape.num_heads = cfg.num_heads;
  shape.ffn_mult = cfg.ffn_mult;
  const bool dense = cfg.backend == model::AttentionBackend::kDenseReference;
  const attn::LayerCost cost = attn::analyze_layer(
      shape,
      dense ? attn::AttentionVariant::kDense : attn::AttentionVariant::kWindow,
      cfg.swat.window_cores);
  return cost.total_flops() * static_cast<double>(cfg.layers);
}

}  // namespace

Runtime::Runtime(model::EncoderConfig cfg, BatchingOptions batching)
    : engine_(std::move(cfg)), batching_(batching) {
  batching_.validate();
}

std::size_t Runtime::plan_arena_floats() const {
  std::size_t total = 0;
  for (const auto& [key, plan] : plans_) total += plan.arena_floats();
  return total;
}

ExecutionPlan& Runtime::plan_for_rows(std::int64_t rows) {
  SWAT_EXPECTS(rows >= 1);
  const std::int64_t width = batching_.bucket_width;
  const std::int64_t shape_class = (rows + width - 1) / width;
  const auto it = plans_.find(shape_class);
  if (it != plans_.end()) return it->second;
  // Compile once for the class's high-water row count (every batch the
  // batcher can emit in this class has rows <= shape_class * width).
  return plans_.emplace(shape_class, engine_.make_plan(shape_class * width))
      .first->second;
}

std::vector<RequestResult> Runtime::run(
    std::span<const InferenceRequest> requests) {
  const std::int64_t d_model = encoder().config().d_model;
  std::vector<std::int64_t> lengths;
  lengths.reserve(requests.size());
  for (const InferenceRequest& req : requests) {
    SWAT_EXPECTS(req.input.cols() == d_model);
    SWAT_EXPECTS(req.input.rows() >= 1);
    lengths.push_back(req.input.rows());
  }

  std::vector<RequestResult> results(requests.size());
  const std::vector<BatchPlanEntry> plan = plan_batches(lengths, batching_);

  for (std::size_t b = 0; b < plan.size(); ++b) {
    const BatchPlanEntry& batch = plan[b];
    const std::int64_t rows = batch.rows();

    // Pack: each request's rows are contiguous row-major, so one memcpy per
    // request moves its whole block into the reused staging matrix.
    packed_.reshape(rows, d_model);
    const std::vector<std::int64_t>& offsets = batch.offsets;
    for (std::int64_t i = 0; i < batch.requests(); ++i) {
      const InferenceRequest& req =
          requests[batch.request_indices[static_cast<std::size_t>(i)]];
      std::memcpy(packed_.row(offsets[static_cast<std::size_t>(i)]).data(),
                  req.input.data(),
                  static_cast<std::size_t>(req.input.size()) * sizeof(float));
    }

    seg_stats_.assign(static_cast<std::size_t>(batch.requests()), {});
    // Batches within the token cap go through the cached per-class plans
    // (a bounded set: at most ceil(max_batch_tokens / bucket_width)
    // classes). An oversized singleton — a request longer than
    // max_batch_tokens always forms its own batch — gets a throwaway plan
    // instead, so one huge one-off document cannot pin a proportionally
    // huge arena in the cache for the Runtime's lifetime.
    ExecutionPlan transient;
    ExecutionPlan& plan = rows > batching_.max_batch_tokens
                              ? (transient = engine_.make_plan(rows))
                              : plan_for_rows(rows);
    const MatrixF& out = engine_.run(plan, packed_, offsets, seg_stats_);

    // Unpack into per-request results and counters.
    for (std::int64_t i = 0; i < batch.requests(); ++i) {
      const std::size_t ri = batch.request_indices[static_cast<std::size_t>(i)];
      const InferenceRequest& req = requests[ri];
      RequestResult& res = results[ri];
      res.id = req.id;
      res.output = MatrixF(req.input.rows(), d_model);
      std::memcpy(res.output.data(),
                  out.row(offsets[static_cast<std::size_t>(i)]).data(),
                  static_cast<std::size_t>(res.output.size()) * sizeof(float));

      const model::AttentionStats& st =
          seg_stats_[static_cast<std::size_t>(i)];
      res.counters.tokens = req.input.rows();
      res.counters.batch_index = static_cast<std::int64_t>(b);
      res.counters.swat_offchip_traffic = st.swat_offchip_traffic;
      res.counters.swat_core_loads = st.swat_core_loads;
      res.counters.heads_run = st.heads_run;
      res.counters.model_flops =
          request_model_flops(encoder().config(), req.input.rows());
    }
    ++totals_.batches;
  }

  // Totals accumulate in submission order — the order a caller naturally
  // sums RequestCounters in — so the documented "totals equal the
  // field-wise sum of every RequestCounters" identity is exact even for
  // the non-associative double (model_flops), not merely within a ULP.
  for (const RequestResult& res : results) {
    ++totals_.requests;
    totals_.tokens += res.counters.tokens;
    totals_.swat_offchip_traffic += res.counters.swat_offchip_traffic;
    totals_.swat_core_loads += res.counters.swat_core_loads;
    totals_.heads_run += res.counters.heads_run;
    totals_.model_flops += res.counters.model_flops;
  }
  return results;
}

RequestResult Runtime::run_one(const InferenceRequest& request) {
  std::vector<RequestResult> results = run({&request, 1});
  return std::move(results.front());
}

}  // namespace swat
