// swat::Engine / swat::ExecutionPlan — the compiled, zero-allocation
// execution path for the encoder stack.
//
// Production inference separates *plan* from *execute*: shapes are resolved
// once, buffers are bound once, and the per-request path only computes.
// Here that split is:
//
//   Engine::compile(cfg, max_tokens)
//     validates the config (EncoderConfig::validate), builds the weights,
//     packs every Linear weight once into the panel-major layout the
//     packed GEMM microkernel streams (weights are engine-wide constants,
//     shared by every plan — packed_weight_floats() reports the
//     footprint), walks the encoder geometry once, and sizes every
//     intermediate a packed batch of up to max_tokens rows needs — Q/K/V
//     projections, the per-head concat staging, LN outputs, the GELU
//     hidden buffer, residual outputs, and the two ping-pong layer-I/O
//     buffers — binding them into a persistent activation arena
//     (ExecutionPlan).
//
//   Engine::run(packed, offsets[, stats])
//     executes the whole stack through the allocation-free *_into paths
//     (Linear/LayerNorm/MHA/EncoderLayer), returning a reference into the
//     plan's arena. No layer materializes a fresh matrix.
//
// Guarantees (asserted by tests/test_engine.cpp and tests/test_runtime.cpp):
//   * outputs and per-sequence counters are bit-identical to
//     Encoder::forward / forward_batch for any SWAT_THREADS and any batch
//     composition;
//   * with a host attention backend and a pure-window config, a warmed
//     plan's steady state performs ZERO heap allocations (a global
//     operator-new counter asserts this, single-threaded — with workers the
//     only allocation is the pool's O(1) fork-join bookkeeping, independent
//     of batch size). The SWAT-simulator backend allocates inside the
//     simulator by design (it is a value-level model), and pattern-
//     augmented window configs allocate their per-length AttentionPattern.
#pragma once

#include <cstdint>
#include <span>

#include "common/dtype.hpp"
#include "common/thread_pool.hpp"
#include "model/encoder.hpp"

namespace swat {

/// The compiled artifact: a persistent activation arena bound to one
/// high-water packed-batch shape. Plans are cheap to mint from an Engine
/// (one per bucket shape in the serving runtime) and independent — two
/// plans never share buffers. Runs against one Engine must still be
/// serialized, though: the encoder underneath keeps mutable per-call
/// state (attention counters — weight packs are immutable after
/// construction), the same
/// not-concurrently-callable contract as MultiHeadAttention::forward.
class ExecutionPlan {
 public:
  ExecutionPlan() = default;

  /// Largest packed row count this plan's arena was bound for. Running a
  /// bigger batch through it is a contract violation (the arena would have
  /// to grow, silently breaking the zero-allocation promise).
  std::int64_t max_tokens() const { return max_tokens_; }

  /// Total floats bound into the arena at compile time — the plan's answer
  /// to "what does serving this shape cost in activation memory". Fixed at
  /// make_plan(); running smaller batches reshapes the buffers logically
  /// but never shrinks (or grows) the bound capacity.
  std::size_t arena_floats() const { return bound_floats_; }

 private:
  friend class Engine;
  std::int64_t max_tokens_ = 0;
  std::size_t bound_floats_ = 0;
  // The geometry the arena was shaped for; Engine::run checks it so a plan
  // minted by a differently-shaped engine fails loudly instead of silently
  // regrowing the arena (which would void the zero-allocation guarantee).
  std::int64_t d_model_ = 0;
  std::int64_t ffn_mult_ = 0;
  model::EncoderArena arena_;
};

class Engine {
 public:
  /// An engine with weights but no default plan — for callers that size
  /// plans themselves (the serving runtime mints one per bucket shape).
  /// Validates `cfg` like compile(). When `pool` is non-null, every
  /// parallel fan-out this engine issues — weight packing at construction
  /// and every kernel inside run() — dispatches to that pool instead of
  /// the process-wide one (via ScopedPoolBinding; results are
  /// bit-identical either way). Partitioned placement hands each replica
  /// engine its replica's pinned pool, so packing's first-touch lands the
  /// private PackedWeight pages on the replica's NUMA node. The pool must
  /// outlive the engine; nullptr keeps today's global-pool behavior.
  explicit Engine(model::EncoderConfig cfg, ThreadPool* pool = nullptr);

  /// An engine that builds its own weights but adopts `pack_prototype`'s
  /// packed panel-major weight pack instead of packing a private copy —
  /// the replica pool's shared read-only pack
  /// (ServerOptions::share_weight_pack). Requires `cfg` to produce weights
  /// bit-identical to the prototype's (same d_model / num_heads / ffn_mult
  /// / layers / weight_seed; throws std::invalid_argument otherwise), so
  /// sharing panels cannot change results. packed_weight_floats() reports
  /// 0 for a sharing engine — the footprint is attributed to the
  /// prototype, which must outlive every run() on this engine. `pool` is
  /// the same knob as the packing constructor's; note a sharing engine
  /// reads the PROTOTYPE's pack, so under partitioned placement sharing
  /// trades one replica-local copy per replica for cross-node reads of
  /// the single prototype pack (the share_weight_pack memory-vs-locality
  /// tradeoff, documented in docs/ARCHITECTURE.md).
  Engine(model::EncoderConfig cfg, const Engine& pack_prototype,
         ThreadPool* pool = nullptr);

  /// Compile an engine: validate `cfg`, build the encoder weights, and
  /// bind the default plan for packed batches of up to `max_tokens` rows.
  static Engine compile(model::EncoderConfig cfg, std::int64_t max_tokens);

  /// Mint an additional plan (same geometry, different high-water shape) —
  /// the serving runtime compiles one per bucket shape.
  ExecutionPlan make_plan(std::int64_t max_tokens) const;

  /// Execute a packed ragged batch through the default plan. `offsets` and
  /// `stats` follow the Encoder::forward_batch contract (stats: one slot
  /// per sequence or empty). The returned reference points into the plan's
  /// arena and is valid until the next run() on the same plan.
  const MatrixF& run(const MatrixF& packed,
                     std::span<const std::int64_t> offsets,
                     std::span<model::AttentionStats> stats = {});

  /// Execute through a caller-held plan. The plan must have been minted by
  /// an engine with the same activation geometry (d_model, ffn_mult) —
  /// enforced, since a mismatched arena would silently reallocate.
  const MatrixF& run(ExecutionPlan& plan, const MatrixF& packed,
                     std::span<const std::int64_t> offsets,
                     std::span<model::AttentionStats> stats = {}) const;

  const model::Encoder& encoder() const { return encoder_; }
  const ExecutionPlan& plan() const { return plan_; }

  /// Total logical elements held by the panel-major packed weights (packed
  /// eagerly at construction, shared by every plan this engine mints —
  /// weight memory is per-engine, activation memory per-plan). Dtype-
  /// independent: an fp16 pack reports the same element count as fp32;
  /// packed_weight_bytes() is the footprint that shrinks.
  std::size_t packed_weight_floats() const { return packed_weight_floats_; }

  /// Resident bytes of the packed weights — packed_weight_floats() times
  /// dtype_bytes(pack_dtype). 0 for a pack-sharing engine, like floats():
  /// the footprint is attributed to the prototype.
  std::size_t packed_weight_bytes() const {
    return packed_weight_floats_ *
           dtype_bytes(encoder_.config().pack_dtype);
  }

 private:
  model::Encoder encoder_;
  ExecutionPlan plan_;          ///< default plan, bound at compile()
  std::size_t packed_weight_floats_ = 0;
  ThreadPool* pool_ = nullptr;  ///< bound around pack + run; null = global
};

}  // namespace swat
