// swat::Server — the asynchronous continuous-batching serving front-end,
// with SLO classes, deadline-aware shedding, and a stall watchdog.
//
// Real serving traffic does not arrive as one request list: requests show
// up one at a time, concurrently, and each caller wants its own answer as
// soon as possible. Server is the admission side of that workload:
//
//   submit(request) ──▶ class-aware AdmissionQueue ──▶ scheduler thread
//     │ interactive lane drained first,                  │ deadline shed
//     │ bulk aged in (never starved),                    │ BatchFormer
//     │ kShedBulk sheds bulk at the                      │   (class-pure
//     │ watermark under overload                         │    batches; caps
//     │                                                  │    + latency
//     │                                                  │    budget cuts)
//     ▼                                                  ▼
//   Ticket (std::future) ◀── promise fulfilled ◀── BatchExecutor::execute
//                                                    ▲ watchdog watches
//
// submit() is thread-safe and returns a per-request Ticket (a
// std::future<RequestResult>) immediately; a background scheduler thread
// pops admitted requests — interactive first, bulk aged in every
// bulk_aging_interval pops so it is never starved — and feeds them to an
// incremental BatchFormer. A batch is cut when max_batch_requests /
// max_batch_tokens is hit or when the batch's predicted service time
// (BatchCostModel over the paper's stage-latency pipeline model) reaches
// the max_batch_latency budget. When the arrival queue goes momentarily
// empty, pending partial batches are cut immediately (work conservation).
//
// Overload and failure semantics (docs/ARCHITECTURE.md "Overload &
// failure semantics"):
//   * Backpressure / shedding: the admission queue is bounded
//     (queue_capacity). At the bound, OverflowPolicy::kBlock parks the
//     submitter, kReject fails the ticket, and kShedBulk — the overload
//     policy — rejects BULK once occupancy reaches shed_watermark while
//     interactive keeps admitting up to full capacity; nothing blocks.
//   * Deadlines: a request may carry a deadline (or inherit
//     default_deadline). A ticket whose deadline the cost model predicts
//     unmeetable is failed with DeadlineExceeded BEFORE compute is spent:
//     at submit when the predicted service time alone exceeds it, and at
//     claim when waiting has consumed the slack. A request served past
//     its deadline still returns its result and is counted
//     deadline_missed.
//   * Watchdog: when watchdog_multiplier > 0, a watchdog thread flags the
//     scheduler stalled once the executing batch overruns
//     watchdog_grace + watchdog_multiplier * predicted — surfaced through
//     health() (kStalled while overrunning, sticky stall counter in
//     stats()).
//   * Failure isolation: an executor failure fails exactly that batch's
//     tickets and the server keeps serving; a scheduler-fatal failure
//     closes admission, cleanly rejects every in-flight and queued
//     ticket (drain() returns, nothing hangs), and health() reports
//     kFailed. Injected faults (common/fault_injection.hpp) prove both
//     paths in tests/test_resilience.cpp.
//
// Determinism contract: WHICH batch a request lands in depends on arrival
// timing (that is the point of continuous batching); WHAT the request's
// output and counters are does not. The shared BatchExecutor guarantees
// every member of every formed batch is bit-identical to a solo
// Encoder::forward run, for any SWAT_THREADS, arrival order, SLO class
// mix, and batch cut (tests/test_server.cpp) — scheduling policy decides
// which requests are served and when, never what a served request's
// output is. Timing-dependent fields (batch_index, queue_delay,
// turnaround) are explicitly excluded from that guarantee.
//
// Shutdown: shutdown() (and the destructor) closes admission, lets the
// scheduler finish everything already admitted, and joins the threads —
// every ticket is always completed or rejected, never leaked or hung.
//
// submit_many partial-reject semantics: a burst is admitted strictly in
// order, one ticket per request, and each ticket resolves exactly once.
// Under kReject / kShedBulk admission the queue can fill (or cross the
// shed watermark) partway through the burst, so EARLIER tickets may serve
// while LATER ones reject — there is no all-or-nothing transaction, by
// design: shedding exists to keep absorbing what still fits.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/concurrent_queue.hpp"
#include "runtime/cost_model.hpp"
#include "runtime/executor.hpp"
#include "runtime/stats.hpp"

namespace swat {

struct ServerOptions {
  BatchingOptions batching;
  /// Bound on requests admitted but not yet claimed by the scheduler.
  std::size_t queue_capacity = 1024;
  /// What submit() does when the admission queue is full: park the caller
  /// (kBlock, backpressure), fail the ticket (kReject, load shedding), or
  /// shed by class (kShedBulk: bulk rejected at shed_watermark,
  /// interactive only at full capacity, nothing ever blocks).
  OverflowPolicy admission = OverflowPolicy::kBlock;
  /// Longest an admitted request may sit in a pending partial batch while
  /// the arrival queue stays busy. The queue-empty flush already bounds the
  /// wait in light traffic; under sustained load the queue never empties,
  /// and without this cap a request in a sparse length class could wait
  /// unboundedly for bucket-mates that never come. Zero disables.
  Seconds max_batch_wait{0.010};
  /// kShedBulk only: the fraction of queue_capacity at which bulk is
  /// shed. The headroom above it is reserved for interactive admission.
  double shed_watermark = 0.75;
  /// Serve one waiting bulk request after this many consecutive
  /// interactive pops — the aging knob that keeps priority admission from
  /// starving bulk entirely.
  std::size_t bulk_aging_interval = 4;
  /// Deadline applied to requests that do not carry their own
  /// (InferenceRequest::deadline == 0). Zero means no default.
  Seconds default_deadline{0.0};
  /// Stall threshold multiplier: the watchdog flags the scheduler stalled
  /// once the executing batch's age exceeds watchdog_grace +
  /// watchdog_multiplier * predicted service time (BatchCostModel). Zero
  /// disables the watchdog; when enabled it must be >= 1 (a threshold
  /// below the prediction itself would flag every healthy batch).
  double watchdog_multiplier = 0.0;
  /// Absolute floor added to the stall threshold, absorbing host
  /// scheduling noise the accelerator-time prediction knows nothing about.
  Seconds watchdog_grace{0.25};

  /// Rejects inconsistent options with actionable messages
  /// (std::invalid_argument).
  void validate() const;
};

class Server {
 public:
  /// A per-request claim ticket: resolves to the request's result, or
  /// rethrows the rejection/failure that prevented serving it
  /// (DeadlineExceeded, FaultInjectedError, std::runtime_error shed...).
  using Ticket = std::future<RequestResult>;

  /// Validates `cfg` (via the engine) and `opt`, compiles the weights, and
  /// starts the scheduler (and, if enabled, watchdog) threads.
  explicit Server(model::EncoderConfig cfg, ServerOptions opt = {});
  ~Server();  // shutdown()
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Admit one request under its SLO class. Thread-safe. The ticket always
  /// resolves: with the result once its batch ran, or with an exception if
  /// the request was malformed, shed at admission, predicted (or observed)
  /// to miss its deadline, failed by its batch's executor, or submitted
  /// after shutdown.
  Ticket submit(InferenceRequest request);

  /// Admit a burst. Equivalent to submit() in order; with kReject or
  /// kShedBulk admission, earlier tickets in the burst may serve while
  /// later ones reject (see the partial-reject semantics above). Every
  /// returned ticket resolves exactly once.
  std::vector<Ticket> submit_many(std::vector<InferenceRequest> requests);

  /// Block until every request admitted so far has resolved — served,
  /// shed, or rejected. New submissions during drain() extend the wait;
  /// a concurrent shutdown() (or scheduler failure) that discards queued
  /// requests resolves their tickets with clean rejections, so drain()
  /// returns instead of waiting on work that will never run.
  void drain();

  /// Stop admission, serve everything already admitted, join the
  /// scheduler and watchdog. Idempotent and thread-safe. After shutdown,
  /// submit() returns rejected tickets.
  void shutdown();

  /// Snapshot of the cumulative totals over everything served so far.
  /// Unlike the synchronous Runtime, batches complete in scheduler order,
  /// so model_flops (a non-associative double sum) may differ from a
  /// caller's own summation order by rounding; all integer fields are
  /// exact. Only SERVED requests are accumulated — shed and failed
  /// tickets are ledgered in stats() instead.
  RuntimeTotals totals() const;

  /// Snapshot of the serving ledger: per-class
  /// submitted/admitted/served/shed/deadline counters, queue depth,
  /// oldest-pending age, batches, watchdog stall episodes. The identities
  /// it obeys are documented on ClassStats (runtime/stats.hpp).
  ServerStats stats() const;

  /// The watchdog's liveness snapshot: kHealthy / kStalled (executing
  /// batch overran the stall threshold) / kFailed (scheduler died, all
  /// tickets cleanly rejected) / kShutdown, plus the executing batch's
  /// age and the admission backlog.
  ServerHealth health() const;

  std::size_t plan_count() const { return executor_.plan_count(); }
  std::size_t plan_arena_floats() const {
    return executor_.plan_arena_floats();
  }
  const model::Encoder& encoder() const { return executor_.encoder(); }
  const ServerOptions& options() const { return opt_; }

 private:
  struct Pending {
    InferenceRequest request;
    std::promise<RequestResult> promise;
    std::chrono::steady_clock::time_point admitted;
    Seconds deadline{};     ///< effective deadline (0 = none)
    std::uint64_t seq = 0;  ///< admission sequence (oldest-pending ledger)
  };

  void scheduler_loop();
  // `inflight` is ordered by claim index so its begin() is the oldest
  // claimed request — what the max_batch_wait age cut is measured against.
  void run_batch(BatchPlanEntry entry,
                 std::map<std::size_t, Pending>& inflight);
  /// The scheduler died: close admission, cleanly reject every in-flight
  /// and still-queued ticket with `error`, mark health kFailed. Nothing
  /// hangs; drain() returns.
  void scheduler_failed(std::exception_ptr error,
                        std::map<std::size_t, Pending>& inflight) noexcept;
  void watchdog_loop();
  void exec_begin(Seconds predicted);
  void exec_end();

  ServerOptions opt_;
  BatchExecutor executor_;
  /// Prices requests for the latency budget, deadline slack, and the
  /// watchdog stall threshold.
  std::unique_ptr<BatchCostModel> cost_model_;
  AdmissionQueue<Pending, kPriorityClasses> queue_;

  mutable std::mutex state_mutex_;  ///< guards the ledger below
  std::condition_variable drained_cv_;
  RuntimeTotals totals_;
  ClassStats class_stats_[kPriorityClasses];
  std::size_t admitted_ = 0;
  std::size_t completed_ = 0;
  std::uint64_t next_seq_ = 0;
  /// Admission time of every admitted-but-unresolved request, keyed by
  /// admission sequence — begin() is the oldest (stats/health age).
  std::map<std::uint64_t, std::chrono::steady_clock::time_point>
      outstanding_;
  bool failed_ = false;  ///< scheduler died; health() reports kFailed

  // Watchdog: the scheduler stamps the executing batch here; the watchdog
  // thread compares its age against the cost-model stall threshold.
  mutable std::mutex watch_mutex_;
  std::condition_variable watch_cv_;
  bool watch_stop_ = false;
  bool exec_active_ = false;
  bool stall_flagged_ = false;  ///< this episode already counted
  std::chrono::steady_clock::time_point exec_start_;
  Seconds exec_predicted_{};
  std::atomic<bool> stalled_now_{false};
  std::atomic<std::int64_t> watchdog_stalls_{0};

  std::mutex shutdown_mutex_;  ///< serializes shutdown()/~Server
  std::thread scheduler_;
  std::thread watchdog_;
};

}  // namespace swat
