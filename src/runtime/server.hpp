// swat::Server — the asynchronous continuous-batching serving front-end,
// with SLO classes, deadline-aware shedding, a stall watchdog, and a
// sharded engine-replica pool behind one admission queue.
//
// Real serving traffic does not arrive as one request list: requests show
// up one at a time, concurrently, and each caller wants its own answer as
// soon as possible. Server is the admission side of that workload:
//
//   submit(request) ──▶ class-aware AdmissionQueue ──▶ scheduler thread
//     │ interactive lane drained first,                  │ deadline shed
//     │ bulk aged in (never starved),                    │ BatchFormer
//     │ kShedBulk sheds bulk at the                      │   (class-pure
//     │ watermark under overload                         │    batches; caps
//     │                                                  │    + latency
//     │                                                  │    budget cuts)
//     ▼                                                  ▼
//   Ticket (std::future)                      cost-model dispatch: place
//     ▲                                       each cut batch on the
//     │ promise fulfilled                     least-loaded live replica
//     │                                                  │
//     │   ┌─ replica 0: BatchExecutor+Engine ◀───────────┤
//     └───┤  replica 1: BatchExecutor+Engine ◀───────────┤
//         └─ replica N: BatchExecutor+Engine ◀── steal ──┘
//              ▲ per-replica watchdog slots
//
// submit() is thread-safe and returns a per-request Ticket (a
// std::future<RequestResult>) immediately; a background scheduler thread
// pops admitted requests — interactive first, bulk aged in every
// bulk_aging_interval pops so it is never starved — and feeds them to an
// incremental BatchFormer. A batch is cut when max_batch_requests /
// max_batch_tokens is hit or when the batch's predicted service time
// (BatchCostModel over the paper's stage-latency pipeline model) reaches
// the max_batch_latency budget. When the arrival queue goes momentarily
// empty, pending partial batches are cut immediately (work conservation).
//
// Replica pool (num_replicas > 1): each cut batch is placed on the live
// replica with the smallest cost-model backlog (BatchCostModel::predict
// seconds queued + executing; ties go to the lowest index). Each replica
// owns a BatchExecutor + Engine — its own packed-weight copy, or, with
// share_weight_pack, a read-only pack shared from replica 0 — and a
// worker thread that claims from its local queue, or STEALS the newest
// queued batch from the most-backlogged live replica when its own queue
// runs dry. Dispatch claim-ahead is bounded by replica_queue_depth: at
// the default 0 the scheduler only claims from the admission queue when a
// replica is fully idle, which preserves the single-engine claim order
// (interactive-first pops, watermark backpressure) exactly; small depths
// pipeline batch formation with execution and give stealing something to
// steal. Because every formed batch's outputs are a pure function of the
// batch (see the determinism contract below) and replicas are built from
// the same config/seed, WHICH replica executes a batch — or whether it
// was stolen — can never change any result bit.
//
// Overload and failure semantics (docs/ARCHITECTURE.md "Overload &
// failure semantics"):
//   * Backpressure / shedding: the admission queue is bounded
//     (queue_capacity). At the bound, OverflowPolicy::kBlock parks the
//     submitter, kReject fails the ticket, and kShedBulk — the overload
//     policy — rejects BULK once occupancy reaches shed_watermark while
//     interactive keeps admitting up to full capacity; nothing blocks.
//     Admission is pool-wide: one front-end queue, however many replicas.
//   * Deadlines: a request may carry a deadline (or inherit
//     default_deadline). A ticket whose deadline the cost model predicts
//     unmeetable is failed with DeadlineExceeded BEFORE compute is spent:
//     at submit when the predicted service time alone exceeds it, and at
//     claim when waiting has consumed the slack. A request served past
//     its deadline still returns its result and is counted
//     deadline_missed.
//   * Watchdog: when watchdog_multiplier > 0, a watchdog thread scans
//     every replica's executing-batch slot and flags a replica stalled
//     once its batch overruns watchdog_grace + watchdog_multiplier *
//     predicted — surfaced per replica through health().replicas[i] and
//     stats().replicas[i], and rolled up in the top-level counters. Two
//     simultaneously wedged replicas are two stall episodes.
//   * Failure isolation, batch level: an executor failure fails exactly
//     that batch's tickets and the replica keeps serving.
//   * Failure isolation, replica level: a replica death (the
//     "replica.execute" fault crossing, or any escape from the claim
//     path) rejects only the batch that replica had claimed, QUARANTINES
//     the replica (ReplicaStats::quarantined, per-replica health
//     kFailed), redistributes its queued batches to survivors, and the
//     pool keeps serving — top-level health degrades to kStalled, not
//     kFailed. Only when the LAST replica dies (or the scheduler itself
//     dies, e.g. the "dispatch.place" crossing) does the server close
//     admission, cleanly reject every in-flight and queued ticket
//     (drain() returns, nothing hangs), and report kFailed.
//
// Determinism contract: WHICH batch a request lands in — and which
// replica runs it — depends on arrival timing (that is the point of
// continuous batching); WHAT the request's output and counters are does
// not. Every replica's BatchExecutor guarantees every member of every
// formed batch is bit-identical to a solo Encoder::forward run, for any
// SWAT_THREADS, arrival order, SLO class mix, replica count, and batch
// cut (tests/test_server.cpp, tests/test_replica_pool.cpp) — scheduling
// policy decides which requests are served and when, never what a served
// request's output is. Timing-dependent fields (batch_index, queue_delay,
// turnaround) are explicitly excluded from that guarantee.
//
// Shutdown: shutdown() (and the destructor) closes admission, lets the
// scheduler finish everything already admitted, lets every replica drain
// its queue, and joins all threads — every ticket is always completed or
// rejected, never leaked or hung.
//
// submit_many partial-reject semantics: a burst is admitted strictly in
// order, one ticket per request, and each ticket resolves exactly once.
// Under kReject / kShedBulk admission the queue can fill (or cross the
// shed watermark) partway through the burst, so EARLIER tickets may serve
// while LATER ones reject — there is no all-or-nothing transaction, by
// design: shedding exists to keep absorbing what still fits.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "common/concurrent_queue.hpp"
#include "common/dtype.hpp"
#include "common/topology.hpp"
#include "runtime/cost_model.hpp"
#include "runtime/executor.hpp"
#include "runtime/stats.hpp"

namespace swat {

/// Where replica compute runs (ServerOptions::placement).
enum class PlacementPolicy {
  /// Every replica's kernels fan out on the process-wide ThreadPool —
  /// exactly the pre-placement behavior, bit- and behavior-identical.
  kShared,
  /// Carve the allowed cpuset (topology discovery ∩ process affinity ∩
  /// SWAT_CPUSET) into one contiguous, locality-ordered core group per
  /// replica; each replica gets its own ThreadPool pinned to its group,
  /// packs its weights on it (first-touch NUMA placement), and runs its
  /// batches on it. Falls back to kShared when there are fewer allowed
  /// CPUs than replicas. Results are bit-identical to kShared — the pool
  /// partition never changes any reduction order.
  kPartitioned,
};

/// Where the SHARED weight pack's pages land under partitioned placement
/// (ServerOptions::shared_pack_placement; requires share_weight_pack and
/// placement = kPartitioned for the non-default policies). Every policy
/// produces bit-identical packed panels — only page placement (hence
/// memory bandwidth locality) differs.
enum class SharedPackPlacement {
  /// The pack is first-touched wherever replica 0's pinned pool packs it
  /// — all of it on replica 0's NUMA node, read cross-node by far
  /// replicas. The default; bit- and behavior-identical to history.
  kFirstTouch,
  /// First-touch the shared pack's panels round-robin across the
  /// partition's NUMA nodes (a node-striped serial fill, see
  /// ScopedPackStriping in tensor/kernels.hpp): every replica reads a
  /// mix of local and remote pages, spreading the pack's stream over all
  /// nodes' memory controllers instead of saturating one. Downgrades to
  /// kFirstTouch with a one-time warning on single-node hosts.
  kInterleaved,
  /// Build one read-only pack per NUMA node from the same fp32 master
  /// weights (panels asserted bit-identical) and route every replica to
  /// its node-local copy: N_nodes x the pack bytes for fully local
  /// streams — the footprint/locality point between one shared pack and
  /// N private ones. ReplicaStats::pack_node reports each replica's copy.
  kReplicatedPerNode,
};

struct ServerOptions {
  BatchingOptions batching;
  /// Bound on requests admitted but not yet claimed by the scheduler.
  std::size_t queue_capacity = 1024;
  /// What submit() does when the admission queue is full: park the caller
  /// (kBlock, backpressure), fail the ticket (kReject, load shedding), or
  /// shed by class (kShedBulk: bulk rejected at shed_watermark,
  /// interactive only at full capacity, nothing ever blocks).
  OverflowPolicy admission = OverflowPolicy::kBlock;
  /// Longest an admitted request may sit in a pending partial batch while
  /// the arrival queue stays busy. The queue-empty flush already bounds the
  /// wait in light traffic; under sustained load the queue never empties,
  /// and without this cap a request in a sparse length class could wait
  /// unboundedly for bucket-mates that never come. Zero disables.
  Seconds max_batch_wait{0.010};
  /// kShedBulk only: the fraction of queue_capacity at which bulk is
  /// shed. The headroom above it is reserved for interactive admission.
  double shed_watermark = 0.75;
  /// Serve one waiting bulk request after this many consecutive
  /// interactive pops — the aging knob that keeps priority admission from
  /// starving bulk entirely.
  std::size_t bulk_aging_interval = 4;
  /// Deadline applied to requests that do not carry their own
  /// (InferenceRequest::deadline == 0). Zero means no default.
  Seconds default_deadline{0.0};
  /// Stall threshold multiplier: the watchdog flags a replica stalled
  /// once its executing batch's age exceeds watchdog_grace +
  /// watchdog_multiplier * predicted service time (BatchCostModel). Zero
  /// disables the watchdog; when enabled it must be >= 1 (a threshold
  /// below the prediction itself would flag every healthy batch).
  double watchdog_multiplier = 0.0;
  /// Absolute floor added to the stall threshold, absorbing host
  /// scheduling noise the accelerator-time prediction knows nothing about.
  Seconds watchdog_grace{0.25};
  /// Engine replicas behind the pool. 1 (the default) is bit- and
  /// behavior-compatible with the single-engine server; N > 1 executes up
  /// to N batches concurrently, each on its own BatchExecutor + Engine.
  std::size_t num_replicas = 1;
  /// When true, replicas 1..N-1 adopt replica 0's packed panel-major
  /// weight pack read-only instead of packing private copies — weight
  /// memory stays 1x instead of Nx (packed_weight_floats() shows the
  /// difference). Results are bit-identical either way: replicas are
  /// built from the same config and weight_seed, so the shared panels
  /// hold exactly the floats the private ones would.
  bool share_weight_pack = false;
  /// Batches the dispatcher may queue on one replica beyond the batch it
  /// is executing. At the default 0 the scheduler claims from the
  /// admission queue only when a replica is fully idle — requests wait in
  /// the class-aware admission queue, preserving the single-engine
  /// interactive-first claim order and watermark backpressure exactly.
  /// Depths >= 1 pipeline batch formation with execution (higher
  /// throughput under load) and are what gives work stealing something
  /// to steal; the cost is that a claimed-ahead request can no longer be
  /// reordered by class or shed at admission.
  std::size_t replica_queue_depth = 0;
  /// Execution placement of the replica pool. kShared (default) keeps
  /// every replica on the process-wide thread pool; kPartitioned gives
  /// each replica a pinned per-core-group pool and replica-local weight
  /// packs (see PlacementPolicy). Interacts with share_weight_pack: a
  /// shared pack under kPartitioned lives on replica 0's NUMA node and
  /// is read cross-node by the others — the memory-vs-locality tradeoff
  /// (docs/ARCHITECTURE.md "Placement & affinity").
  PlacementPolicy placement = PlacementPolicy::kShared;
  /// Storage dtype of the packed panel-major weights. Unset (nullopt)
  /// inherits EncoderConfig::pack_dtype; set, it overrides the config for
  /// every replica (and the cost model) before any engine packs, so the
  /// server-level knob and the model-level knob can never disagree within
  /// one pool. Dtype::kFp16 halves resident pack bytes (and the shared
  /// pack under share_weight_pack serves N replicas from one half-size
  /// copy); outputs stay deterministic but are no longer bit-equal to the
  /// fp32 pack — gated by the precision-fidelity budget instead
  /// (eval/calibration.hpp).
  std::optional<Dtype> pack_dtype;
  /// Streamed K/V tile dtype of the fused attention kernel. Unset
  /// (nullopt) inherits EncoderConfig::stream_dtype; set, it overrides
  /// the config for every replica (and the cost model's activation-stream
  /// pricing) exactly like pack_dtype. Dtype::kFp16 halves the attention
  /// activation bytes each batch streams; outputs stay deterministic
  /// (bit-identical across threads, arrival orders, and replicas) but are
  /// no longer bit-equal to the fp32 stream — gated by the
  /// stream-fidelity budget instead (eval/stream_fidelity.hpp). Requires
  /// the kFusedStreaming backend (EncoderConfig::validate rejects the
  /// rest).
  std::optional<Dtype> stream_dtype;
  /// NUMA page placement of the shared weight pack (see
  /// SharedPackPlacement). The non-default policies require
  /// share_weight_pack (there is no shared pack to place otherwise) and
  /// placement = kPartitioned (the pool must own pinned core groups to
  /// attribute nodes); validate() rejects the combinations that don't.
  SharedPackPlacement shared_pack_placement = SharedPackPlacement::kFirstTouch;

  /// Rejects inconsistent options with actionable messages
  /// (std::invalid_argument).
  void validate() const;
};

class Server {
 public:
  /// A per-request claim ticket: resolves to the request's result, or
  /// rethrows the rejection/failure that prevented serving it
  /// (DeadlineExceeded, FaultInjectedError, std::runtime_error shed...).
  using Ticket = std::future<RequestResult>;

  /// Validates `cfg` (via the engines) and `opt`, compiles the weights
  /// (one pack per replica, or one shared pack with share_weight_pack),
  /// and starts the replica workers, scheduler, and (if enabled) watchdog
  /// threads.
  explicit Server(model::EncoderConfig cfg, ServerOptions opt = {});
  ~Server();  // shutdown()
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Admit one request under its SLO class. Thread-safe. The ticket always
  /// resolves: with the result once its batch ran, or with an exception if
  /// the request was malformed, shed at admission, predicted (or observed)
  /// to miss its deadline, failed by its batch's executor or replica, or
  /// submitted after shutdown.
  Ticket submit(InferenceRequest request);

  /// Admit a burst. Equivalent to submit() in order; with kReject or
  /// kShedBulk admission, earlier tickets in the burst may serve while
  /// later ones reject (see the partial-reject semantics above). Every
  /// returned ticket resolves exactly once.
  std::vector<Ticket> submit_many(std::vector<InferenceRequest> requests);

  /// Block until every request admitted so far has resolved — served,
  /// shed, or rejected. New submissions during drain() extend the wait;
  /// a concurrent shutdown() (or scheduler/pool failure) that discards
  /// queued requests resolves their tickets with clean rejections, so
  /// drain() returns instead of waiting on work that will never run.
  void drain();

  /// Stop admission, serve everything already admitted (scheduler first,
  /// then every replica's queue), join all threads. Idempotent and
  /// thread-safe. After shutdown, submit() returns rejected tickets.
  void shutdown();

  /// Snapshot of the cumulative totals over everything served so far.
  /// Unlike the synchronous Runtime, batches complete in scheduler order,
  /// so model_flops (a non-associative double sum) may differ from a
  /// caller's own summation order by rounding; all integer fields are
  /// exact. Only SERVED requests are accumulated — shed and failed
  /// tickets are ledgered in stats() instead.
  RuntimeTotals totals() const;

  /// Snapshot of the serving ledger: per-class
  /// submitted/admitted/served/shed/deadline counters, per-replica
  /// dispatch/serve/steal/quarantine counters (stats().replicas[i]),
  /// queue depth, oldest-pending age, batches, watchdog stall episodes.
  /// The identities it obeys are documented on ClassStats and
  /// ReplicaClassStats (runtime/stats.hpp): per replica,
  /// dispatched == served + failed + executing-now, and replica
  /// served/deadline_missed sums match the front-end class counters.
  ServerStats stats() const;

  /// The watchdog's liveness snapshot, per replica and rolled up:
  /// kHealthy / kStalled (an executing batch overran the stall threshold,
  /// or a replica is quarantined while the pool keeps serving) / kFailed
  /// (serving stopped: scheduler died or every replica died — all
  /// tickets cleanly rejected) / kShutdown, plus per-replica executing
  /// batch ages (health().replicas[i]) and the admission backlog.
  ServerHealth health() const;

  /// Compiled plans across all replica plan caches (sums over replicas).
  std::size_t plan_count() const;
  std::size_t plan_arena_floats() const;
  /// Packed-weight floats held across replicas: N private packs sum to
  /// N x the single-engine footprint; with share_weight_pack the shared
  /// pack is counted once (sharing replicas report 0).
  std::size_t packed_weight_floats() const;
  /// Resident packed-weight bytes across replicas (floats x
  /// dtype_bytes(pack_dtype)): the footprint ServerOptions::pack_dtype =
  /// Dtype::kFp16 halves, and share_weight_pack divides by N.
  std::size_t packed_weight_bytes() const;
  const model::Encoder& encoder() const;
  const ServerOptions& options() const { return opt_; }

 private:
  struct Pending {
    InferenceRequest request;
    std::promise<RequestResult> promise;
    std::chrono::steady_clock::time_point admitted;
    Seconds deadline{};     ///< effective deadline (0 = none)
    std::uint64_t seq = 0;  ///< admission sequence (oldest-pending ledger)
  };

  /// A cut batch bound to its member tickets — the unit the dispatcher
  /// places, a replica queue holds, and a worker claims or steals.
  struct ReadyBatch {
    BatchPlanEntry entry;
    std::vector<Pending> members;  ///< one per entry.request_indices slot
    Seconds predicted{};           ///< cost-model dispatch price
    bool stolen = false;           ///< claimed off another replica's queue
  };

  /// One engine replica. Fields are grouped by the lock that guards them;
  /// the three domains are never held together.
  struct Replica {
    // Immutable after construction. `pool` is declared before `executor`
    // so destruction tears the executor down first — an engine never
    // outlives the pool its runs are bound to. Null pool / empty
    // core_group = shared placement.
    std::unique_ptr<ThreadPool> pool;  ///< pinned pool (kPartitioned only)
    CpuSet core_group;                 ///< the CPUs `pool` pins to
    std::unique_ptr<BatchExecutor> executor;
    std::thread worker;
    /// This replica's worker thread pinning itself at the top of
    /// replica_loop (0 or 1). stats() adds the pool's own
    /// pinned_workers() count on top when mirroring into ReplicaStats,
    /// so late-arriving pin confirmations are never undercounted.
    std::atomic<int> pinned_threads{0};

    // --- guarded by pool_mutex_ ---
    std::deque<ReadyBatch> queue;  ///< dispatched, not yet claimed
    double backlog_seconds = 0.0;  ///< predicted seconds queued + executing
    bool executing = false;        ///< worker holds a claimed batch
    bool dead = false;             ///< quarantined; takes no more batches

    // --- guarded by watch_mutex_ (the watchdog's per-replica slot) ---
    bool exec_active = false;
    bool stall_flagged = false;  ///< this episode already counted
    std::chrono::steady_clock::time_point exec_start;
    Seconds exec_predicted{};

    // --- lock-free mirrors for health()/stats() ---
    std::atomic<bool> stalled_now{false};
    std::atomic<std::int64_t> stalls{0};
  };

  void scheduler_loop();
  /// Park until some live replica has dispatch room (or the pool died) —
  /// the claim gate that keeps requests in the class-aware admission
  /// queue instead of claimed-ahead FIFO replica queues.
  void wait_for_dispatch_room();
  /// pool_mutex_ held: can `r` accept a dispatched batch right now?
  bool replica_has_room(const Replica& r) const;
  /// Price the batch, extract its members from `inflight`, and place it
  /// on the least-backlogged live replica with room (blocking until one
  /// exists). Throws — scheduler-fatal — on the "dispatch.place" crossing
  /// or when every replica is dead; members are back in `inflight` so
  /// scheduler_failed rejects them.
  void dispatch_batch(BatchPlanEntry entry,
                      std::map<std::size_t, Pending>& inflight);
  /// Replica worker body: claim (or steal) and execute until the pool
  /// stops and no work remains, or this replica dies.
  void replica_loop(std::size_t r);
  /// Claim the next batch for replica `r`: own queue first, else steal
  /// the newest queued batch from the most-backlogged live replica, else
  /// wait. Empty optional once pool_stop_ is set and no work remains.
  std::optional<ReadyBatch> next_batch(std::size_t r);
  /// Execute a claimed batch on replica `r` and resolve its tickets.
  /// Executor failures are contained here (fail the batch, replica keeps
  /// serving); nothing escapes short of replica death.
  void run_on_replica(std::size_t r, ReadyBatch& batch);
  /// Credit the batch's predicted seconds back to `r`'s backlog and mark
  /// it idle; wakes the dispatcher (room) and drain().
  void retire_batch(std::size_t r, const ReadyBatch& batch);
  /// Replica `r` died claiming/running `batch`: reject exactly that
  /// batch's tickets, quarantine the replica, redistribute its queued
  /// batches to survivors — or, if it was the last live replica, close
  /// admission and reject everything still pending.
  void replica_failed(std::size_t r, ReadyBatch batch,
                      std::exception_ptr error) noexcept;
  /// The scheduler died: close admission, cleanly reject every in-flight
  /// and still-queued ticket with `error`, mark health kFailed. Nothing
  /// hangs; drain() returns.
  void scheduler_failed(std::exception_ptr error,
                        std::map<std::size_t, Pending>& inflight) noexcept;
  void watchdog_loop();
  void exec_begin(std::size_t r, Seconds predicted);
  void exec_end(std::size_t r);

  ServerOptions opt_;
  /// Prices requests for the latency budget, deadline slack, dispatch
  /// placement, and the watchdog stall threshold.
  std::unique_ptr<BatchCostModel> cost_model_;
  AdmissionQueue<Pending, kPriorityClasses> queue_;
  /// The engine replicas. The vector itself is immutable after
  /// construction (workers index into it); per-replica fields follow the
  /// lock domains documented on Replica.
  std::vector<std::unique_ptr<Replica>> replicas_;

  mutable std::mutex state_mutex_;  ///< guards the ledger below
  std::condition_variable drained_cv_;
  RuntimeTotals totals_;
  ClassStats class_stats_[kPriorityClasses];
  std::vector<ReplicaStats> replica_stats_;  ///< one per replica
  std::size_t admitted_ = 0;
  std::size_t completed_ = 0;
  std::uint64_t next_seq_ = 0;
  /// Admission time of every admitted-but-unresolved request, keyed by
  /// admission sequence — begin() is the oldest (stats/health age).
  std::map<std::uint64_t, std::chrono::steady_clock::time_point>
      outstanding_;
  bool failed_ = false;  ///< serving stopped; health() reports kFailed

  /// Pool domain: replica queues/backlogs/liveness and the dispatcher's
  /// room wait. Never held together with state_mutex_ or watch_mutex_.
  mutable std::mutex pool_mutex_;
  std::condition_variable pool_cv_;
  std::size_t live_replicas_ = 0;
  bool pool_stop_ = false;

  // Watchdog: workers stamp their executing batch into their replica's
  // slot; the watchdog thread compares each slot's age against the
  // cost-model stall threshold.
  mutable std::mutex watch_mutex_;
  std::condition_variable watch_cv_;
  bool watch_stop_ = false;
  std::atomic<std::int64_t> watchdog_stalls_{0};

  std::mutex shutdown_mutex_;  ///< serializes shutdown()/~Server
  std::thread scheduler_;
  std::thread watchdog_;
};

}  // namespace swat
