// swat::Server — the asynchronous continuous-batching serving front-end.
//
// Real serving traffic does not arrive as one request list: requests show
// up one at a time, concurrently, and each caller wants its own answer as
// soon as possible. Server is the admission side of that workload:
//
//   submit(request) ──▶ bounded ConcurrentQueue ──▶ scheduler thread
//                                                     │ BatchFormer
//                                                     │   (caps + latency
//                                                     │    budget cuts)
//                                                     ▼
//                                            BatchExecutor::execute
//                                                     │
//   Ticket (std::future) ◀── promise fulfilled ◀──────┘
//
// submit() is thread-safe and returns a per-request Ticket (a
// std::future<RequestResult>) immediately; a background scheduler thread
// pops admitted requests, feeds them to an incremental BatchFormer, and
// cuts a batch when max_batch_requests / max_batch_tokens is hit or when
// the batch's predicted service time (BatchCostModel over the paper's
// stage-latency pipeline model) reaches the max_batch_latency budget — the
// hardware model decides when to stop waiting for more arrivals. When the
// arrival queue goes momentarily empty, pending partial batches are cut
// immediately (work conservation: waiting longer would only add latency).
//
// Backpressure: the admission queue is bounded (queue_capacity). At the
// bound, OverflowPolicy::kBlock parks the submitter until the scheduler
// frees a slot; kReject fails the ticket immediately with
// std::runtime_error — load shedding for callers that prefer an error over
// waiting.
//
// Determinism contract: WHICH batch a request lands in depends on arrival
// timing (that is the point of continuous batching); WHAT the request's
// output and counters are does not. The shared BatchExecutor guarantees
// every member of every formed batch is bit-identical to a solo
// Encoder::forward run, for any SWAT_THREADS, arrival order, and batch cut
// (tests/test_server.cpp). Timing-dependent fields (batch_index,
// queue_delay) are explicitly excluded from that guarantee.
//
// Shutdown: shutdown() (and the destructor) closes admission, lets the
// scheduler finish everything already admitted, and joins the thread —
// every ticket is always completed or rejected, never leaked or hung.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/concurrent_queue.hpp"
#include "runtime/cost_model.hpp"
#include "runtime/executor.hpp"

namespace swat {

struct ServerOptions {
  BatchingOptions batching;
  /// Bound on requests admitted but not yet claimed by the scheduler.
  std::size_t queue_capacity = 1024;
  /// What submit() does when the admission queue is full: park the caller
  /// (kBlock, backpressure) or fail the ticket (kReject, load shedding).
  OverflowPolicy admission = OverflowPolicy::kBlock;
  /// Longest an admitted request may sit in a pending partial batch while
  /// the arrival queue stays busy. The queue-empty flush already bounds the
  /// wait in light traffic; under sustained load the queue never empties,
  /// and without this cap a request in a sparse length class could wait
  /// unboundedly for bucket-mates that never come. Zero disables.
  Seconds max_batch_wait{0.010};

  /// Rejects inconsistent options with actionable messages
  /// (std::invalid_argument).
  void validate() const;
};

class Server {
 public:
  /// A per-request claim ticket: resolves to the request's result, or
  /// rethrows the rejection/failure that prevented serving it.
  using Ticket = std::future<RequestResult>;

  /// Validates `cfg` (via the engine) and `opt`, compiles the weights, and
  /// starts the scheduler thread.
  explicit Server(model::EncoderConfig cfg, ServerOptions opt = {});
  ~Server();  // shutdown()
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Admit one request. Thread-safe. The ticket always resolves: with the
  /// result once its batch ran, or with an exception if the request was
  /// malformed, the queue rejected it (kReject at capacity), or the server
  /// was already shut down.
  Ticket submit(InferenceRequest request);

  /// Admit a burst. Equivalent to submit() in order; with kReject
  /// admission, later tickets may be rejected while earlier ones serve.
  std::vector<Ticket> submit_many(std::vector<InferenceRequest> requests);

  /// Block until every request admitted so far has been served (its ticket
  /// resolved). New submissions during drain() extend the wait.
  void drain();

  /// Stop admission, serve everything already admitted, join the
  /// scheduler. Idempotent and thread-safe. After shutdown, submit()
  /// returns rejected tickets.
  void shutdown();

  /// Snapshot of the cumulative totals over everything served so far.
  /// Unlike the synchronous Runtime, batches complete in scheduler order,
  /// so model_flops (a non-associative double sum) may differ from a
  /// caller's own summation order by rounding; all integer fields are
  /// exact.
  RuntimeTotals totals() const;

  std::size_t plan_count() const { return executor_.plan_count(); }
  std::size_t plan_arena_floats() const {
    return executor_.plan_arena_floats();
  }
  const model::Encoder& encoder() const { return executor_.encoder(); }
  const ServerOptions& options() const { return opt_; }

 private:
  struct Pending {
    InferenceRequest request;
    std::promise<RequestResult> promise;
    std::chrono::steady_clock::time_point admitted;
  };

  void scheduler_loop();
  // `inflight` is ordered by admission index so its begin() is the oldest
  // pending request — what the max_batch_wait age cut is measured against.
  void run_batch(BatchPlanEntry entry,
                 std::map<std::size_t, Pending>& inflight);

  ServerOptions opt_;
  BatchExecutor executor_;
  /// Prices requests for the latency budget; null when the budget is off.
  std::unique_ptr<BatchCostModel> cost_model_;
  ConcurrentQueue<Pending> queue_;

  mutable std::mutex state_mutex_;  ///< guards totals_/admitted_/completed_
  std::condition_variable drained_cv_;
  RuntimeTotals totals_;
  std::size_t admitted_ = 0;
  std::size_t completed_ = 0;

  std::mutex shutdown_mutex_;  ///< serializes shutdown()/~Server
  std::thread scheduler_;
};

}  // namespace swat
