// The shared serving core: request/result types, the mutex-guarded
// ExecutionPlan cache, and BatchExecutor — the pack/run/unpack engine both
// serving front-ends drive:
//
//   * swat::Runtime (runtime.hpp)  — synchronous: plan all batches for one
//     call, execute them inline, return everything at once;
//   * swat::Server  (server.hpp)   — asynchronous: a scheduler thread cuts
//     batches continuously with BatchFormer and executes them here.
//
// Both paths therefore share one definition of "execute a formed batch",
// and the determinism guarantee lives exactly here: for ANY formed batch,
// each member request's output and counters are bit-identical to running
// that request alone through Encoder::forward (the engine/encoder kernels
// fix every reduction order and never cross an offsets boundary). Batch
// composition — however a scheduler decided to cut — affects latency only,
// never results.
//
// Thread safety: execution is serialized on an internal mutex (the encoder
// underneath keeps mutable per-call state — attention counters; the
// panel-major weight packs are built eagerly at Engine construction, so
// they are immutable by the time any request runs), and plan compilation
// is guarded by the PlanCache's own mutex, so concurrent submitters can
// never race a lazy compile.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <span>
#include <vector>

#include "runtime/batcher.hpp"
#include "runtime/engine.hpp"
#include "runtime/stats.hpp"

namespace swat {

/// Per-request accounting, separable from the batch it was served in.
struct RequestCounters {
  std::int64_t tokens = 0;
  /// Index of the packed batch that served this request — within the run()
  /// call for the synchronous runtime, within the server's lifetime for the
  /// async path. Introspection for tests and the serving examples.
  std::int64_t batch_index = -1;
  /// Time the request spent admitted-but-unserved before its batch started
  /// executing. Stamped by the async server; zero on the synchronous path.
  Seconds queue_delay;
  /// Admission-to-completion wall time (queueing + batch formation + batch
  /// execution). Stamped by the async server; zero on the synchronous
  /// path. Timing-dependent, like queue_delay — excluded from the
  /// determinism contract. What the request's deadline is judged against.
  Seconds turnaround;

  // Attention counters measured by the model (SWAT backend only for the
  // traffic/load fields), summed over layers.
  Bytes swat_offchip_traffic;
  std::int64_t swat_core_loads = 0;
  std::int64_t heads_run = 0;

  /// Analytic per-request model cost (linear + attention + FFN FLOPs for
  /// this request's length; attention/flops.hpp), so throughput benches can
  /// report FLOP/s without touching measured counters.
  double model_flops = 0.0;
};

struct InferenceRequest {
  std::uint64_t id = 0;
  MatrixF input;  ///< seq_len x d_model token embeddings, seq_len >= 1
  /// SLO class (runtime/stats.hpp): interactive is drained first and never
  /// shed first; bulk is the class kShedBulk rejects at the watermark.
  Priority priority = Priority::kInteractive;
  /// Completion deadline measured from admission; zero means none (any
  /// ServerOptions::default_deadline applies instead). A request the cost
  /// model predicts cannot meet its deadline is failed with
  /// DeadlineExceeded before compute is spent on it.
  Seconds deadline{0.0};
};

struct RequestResult {
  std::uint64_t id = 0;
  MatrixF output;  ///< seq_len x d_model encoder output
  RequestCounters counters;
};

/// Cumulative totals over everything a serving front-end has served.
struct RuntimeTotals {
  std::int64_t requests = 0;
  std::int64_t tokens = 0;
  std::int64_t batches = 0;
  /// Packed-weight bytes streamed from memory by the GEMMs, priced as one
  /// full weight sweep per executed batch (every layer streams its whole
  /// pack once per batch regardless of batch size — the quantity the
  /// pack_dtype knob halves). Counted per batch like `batches`, so the
  /// accumulate() identity below is untouched.
  Bytes weight_stream_bytes;
  Bytes swat_offchip_traffic;
  std::int64_t swat_core_loads = 0;
  std::int64_t heads_run = 0;
  double model_flops = 0.0;

  /// Fold one served request in — the single definition of the "totals
  /// equal the field-wise sum of every RequestCounters" identity both
  /// front-ends document (batches is counted per batch, not here).
  void accumulate(const RequestCounters& counters) {
    ++requests;
    tokens += counters.tokens;
    swat_offchip_traffic += counters.swat_offchip_traffic;
    swat_core_loads += counters.swat_core_loads;
    heads_run += counters.heads_run;
    model_flops += counters.model_flops;
  }
};

/// Mutex-guarded cache of compiled ExecutionPlans, keyed by the batch's
/// shape class ceil(rows / bucket_width) and compiled for that class's
/// high-water row count, so every batch the batcher can emit in the class
/// fits, and repeated traffic reuses the arena. One max-class plan could
/// serve every smaller batch too (reshape retains capacity), but per-class
/// plans keep each arena right-sized to its traffic and are independent —
/// the prerequisite for running different-shape batches concurrently. The
/// cache is bounded: batches beyond max_batch_tokens (oversized singletons)
/// compile into caller-provided transient storage and are never cached, so
/// one huge one-off document cannot pin a proportionally huge arena for the
/// cache's lifetime. All entry points take the internal mutex — concurrent
/// submitters never race a lazy compile.
class PlanCache {
 public:
  /// `engine` must outlive the cache.
  PlanCache(const Engine& engine, std::int64_t bucket_width,
            std::int64_t max_batch_tokens);

  /// The plan serving a packed batch of `rows` rows. Cached per shape
  /// class; oversized batches compile into `transient` instead. References
  /// into the cache stay valid for the cache's lifetime (node-based map).
  ExecutionPlan& acquire(std::int64_t rows, ExecutionPlan& transient);

  /// Compiled plans currently cached (one per bucket shape class served so
  /// far) and their total bound arena footprint — stable across repeated
  /// identical workloads, which tests assert to prove plans are reused
  /// rather than recompiled.
  std::size_t plan_count() const;
  std::size_t plan_arena_floats() const;

 private:
  const Engine& engine_;
  const std::int64_t bucket_width_;
  const std::int64_t max_batch_tokens_;
  mutable std::mutex mutex_;
  std::map<std::int64_t, ExecutionPlan> plans_;  ///< shape class -> plan
};

/// Executes formed batches: pack the member requests into one ragged
/// matrix, run it through the shape class's cached ExecutionPlan, unpack
/// per-request outputs and counters.
class BatchExecutor {
 public:
  /// Validates the config (via Engine) and the batching options. `pool`
  /// is forwarded to the Engine: non-null routes weight packing and every
  /// batch's kernels onto that pool (the per-replica pinned pool under
  /// partitioned placement; results bit-identical either way). The pool
  /// must outlive the executor; nullptr = the process-wide pool.
  BatchExecutor(model::EncoderConfig cfg, BatchingOptions batching,
                ThreadPool* pool = nullptr);

  /// An executor whose engine adopts `pack_prototype`'s packed weight pack
  /// instead of building a private copy (the replica pool's opt-in shared
  /// read-only pack; see Engine's prototype constructor for the identity
  /// requirements). The prototype must outlive this executor;
  /// packed_weight_floats() reports 0 here, the footprint being the
  /// prototype's. `pool` as above — but note execution reads the
  /// prototype's pack, wherever its pages live.
  BatchExecutor(model::EncoderConfig cfg, BatchingOptions batching,
                const BatchExecutor& pack_prototype,
                ThreadPool* pool = nullptr);

  /// Execute one formed batch. `inputs[i]` is the request packed at entry
  /// slot i (rows [entry.offsets[i], entry.offsets[i+1]) — its row count
  /// must match). Returns one result per slot with id, output, and
  /// counters filled; `batch_index` and `queue_delay` are left to the
  /// serving front-end, which owns their meaning. Safe to call from
  /// multiple threads (serialized internally).
  std::vector<RequestResult> execute(
      const BatchPlanEntry& entry,
      std::span<const InferenceRequest* const> inputs);

  const Engine& engine() const { return engine_; }
  const model::Encoder& encoder() const { return engine_.encoder(); }
  const BatchingOptions& batching() const { return batching_; }
  std::size_t plan_count() const { return cache_.plan_count(); }
  std::size_t plan_arena_floats() const { return cache_.plan_arena_floats(); }
  /// Packed-weight footprint of the engine (per-engine, shared by every
  /// cached plan — see Engine::packed_weight_floats).
  std::size_t packed_weight_floats() const {
    return engine_.packed_weight_floats();
  }
  /// Resident packed-weight bytes (floats x dtype_bytes(pack_dtype); 0 for
  /// a pack-sharing executor — see Engine::packed_weight_bytes).
  std::size_t packed_weight_bytes() const {
    return engine_.packed_weight_bytes();
  }

 private:
  Engine engine_;
  BatchingOptions batching_;
  PlanCache cache_;

  // Per-batch staging reused across execute() calls (guarded by
  // run_mutex_); reshape() retains the backing capacity, so serving stops
  // allocating staging once the high-water batch shape has been seen.
  std::mutex run_mutex_;
  MatrixF packed_;
  std::vector<model::AttentionStats> seg_stats_;
};

}  // namespace swat
