// swat::Runtime — batched multi-request inference driver.
//
// The entry points elsewhere in this repository process one sequence at a
// time; this subsystem is the serving layer that turns the batched encoder
// path into a multi-user workload driver:
//
//   1. N variable-length encoder requests are length-bucketed
//      (runtime/batcher.hpp) so the attention tasks of one batch have
//      comparable cost;
//   2. each bucket is packed into a single ragged batch matrix (no padding
//      — offsets mark the sequence boundaries);
//   3. batches run through the compiled execution plan (runtime/engine.hpp):
//      the runtime lazily compiles one ExecutionPlan per bucket *shape
//      class* (ceil(rows / bucket_width)) and reuses it across run() calls,
//      so the encoder stack executes entirely inside persistent arenas —
//      position-independent layers as single GEMMs over all packed rows,
//      attention fanned out over (sequence, head) tasks, no per-layer
//      matrix ever allocated;
//   4. outputs are unpacked and returned in submission order, each with its
//      own separable counters.
//
// Guarantees (asserted by tests/test_runtime.cpp):
//   * every request's output is bit-identical to running it alone through
//     Encoder::forward, for any SWAT_THREADS and any batch composition;
//   * per-request counters are identical to a sequential run, and their
//     sum equals the runtime's cumulative totals — the paper eval tables
//     reconcile whether traffic is accounted per request or per batch;
//   * with a host attention backend, the compiled path is allocation-free
//     in steady state: after one warmup run over the workload's bucket
//     shapes, Engine::run performs zero heap allocations (asserted with a
//     global operator-new counter, single-threaded) and the plan set stops
//     growing. The serving wrapper itself still allocates the returned
//     per-request outputs and O(batch) bookkeeping — results the caller
//     keeps — never activation staging. The SWAT-simulator backend
//     allocates per-head core state inside the simulator by design — it is
//     a value-level model, not a serving hot path.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "runtime/batcher.hpp"
#include "runtime/engine.hpp"

namespace swat {

/// Per-request accounting, separable from the batch it was served in.
struct RequestCounters {
  std::int64_t tokens = 0;
  /// Index of the packed batch (within the run() call) that served this
  /// request — introspection for tests and the serving example.
  std::int64_t batch_index = -1;

  // Attention counters measured by the model (SWAT backend only for the
  // traffic/load fields), summed over layers.
  Bytes swat_offchip_traffic;
  std::int64_t swat_core_loads = 0;
  std::int64_t heads_run = 0;

  /// Analytic per-request model cost (linear + attention + FFN FLOPs for
  /// this request's length; attention/flops.hpp), so throughput benches can
  /// report FLOP/s without touching measured counters.
  double model_flops = 0.0;
};

struct InferenceRequest {
  std::uint64_t id = 0;
  MatrixF input;  ///< seq_len x d_model token embeddings, seq_len >= 1
};

struct RequestResult {
  std::uint64_t id = 0;
  MatrixF output;  ///< seq_len x d_model encoder output
  RequestCounters counters;
};

/// Cumulative totals over everything a Runtime has served.
struct RuntimeTotals {
  std::int64_t requests = 0;
  std::int64_t tokens = 0;
  std::int64_t batches = 0;
  Bytes swat_offchip_traffic;
  std::int64_t swat_core_loads = 0;
  std::int64_t heads_run = 0;
  double model_flops = 0.0;
};

class Runtime {
 public:
  explicit Runtime(model::EncoderConfig cfg, BatchingOptions batching = {});

  /// Serve a set of requests: bucket, pack, run, unpack. Results come back
  /// in submission order. Deterministic: outputs and counters are
  /// bit-identical for any thread count.
  std::vector<RequestResult> run(std::span<const InferenceRequest> requests);

  /// The sequential oracle: serve one request as a batch of one. Output is
  /// bit-identical to encoder().forward(request.input).
  RequestResult run_one(const InferenceRequest& request);

  const model::Encoder& encoder() const { return engine_.encoder(); }
  const Engine& engine() const { return engine_; }
  const BatchingOptions& batching() const { return batching_; }

  /// Cumulative totals across all run()/run_one() calls. Always equals the
  /// field-wise sum of every RequestCounters this runtime has returned.
  const RuntimeTotals& totals() const { return totals_; }

  /// Compiled plans currently cached (one per bucket shape class served so
  /// far) and their total bound arena footprint — stable across repeated
  /// identical workloads, which tests/test_runtime.cpp asserts to prove
  /// plans are reused rather than recompiled.
  std::size_t plan_count() const { return plans_.size(); }
  std::size_t plan_arena_floats() const;

 private:
  /// The plan serving a packed batch of `rows` rows: plans are keyed by
  /// the batch's shape class ceil(rows / bucket_width) and compiled for
  /// that class's high-water row count, so every batch the batcher can
  /// emit in the class fits, and repeated traffic reuses the arena.
  /// One max-class plan could serve every smaller batch too (reshape
  /// retains capacity), but per-class plans keep each arena right-sized to
  /// its traffic and are independent — the prerequisite for running
  /// different-shape batches concurrently when async batching lands. The
  /// cache is bounded: batches beyond max_batch_tokens (oversized
  /// singletons) run through a throwaway plan and are never cached.
  ExecutionPlan& plan_for_rows(std::int64_t rows);

  Engine engine_;
  BatchingOptions batching_;
  RuntimeTotals totals_;
  std::map<std::int64_t, ExecutionPlan> plans_;  ///< shape class -> plan

  // Per-batch staging reused across run() calls; reshape() retains the
  // backing capacity, so serving stops allocating staging once the
  // high-water batch shape has been seen.
  MatrixF packed_;
  std::vector<model::AttentionStats> seg_stats_;
};

}  // namespace swat
