// swat::Runtime — the synchronous batched inference driver.
//
// The entry points elsewhere in this repository process one sequence at a
// time; this is the call-at-a-time serving layer over the shared core in
// runtime/executor.hpp: a caller hands over a full request list, blocks,
// and gets all results back at once. (The asynchronous, continuously
// batching front-end over the same core is runtime/server.hpp.)
//
//   1. N variable-length encoder requests are length-bucketed and cut into
//      batches by the same BatchFormer rules the async server uses
//      (runtime/batcher.hpp) — here fed offline via plan_batches, a pure
//      function of the length vector;
//   2. each batch is packed into a single ragged batch matrix (no padding
//      — offsets mark the sequence boundaries) and executed by the shared
//      BatchExecutor through the mutex-guarded per-bucket-shape-class
//      ExecutionPlan cache (runtime/engine.hpp): the encoder stack runs
//      entirely inside persistent arenas — position-independent layers as
//      single GEMMs over all packed rows, attention fanned out over
//      (sequence, head) tasks, no per-layer matrix ever allocated;
//   3. outputs are unpacked and returned in submission order, each with its
//      own separable counters.
//
// Guarantees (asserted by tests/test_runtime.cpp):
//   * every request's output is bit-identical to running it alone through
//     Encoder::forward, for any SWAT_THREADS and any batch composition;
//   * per-request counters are identical to a sequential run, and their
//     sum equals the runtime's cumulative totals — the paper eval tables
//     reconcile whether traffic is accounted per request or per batch;
//   * with a host attention backend, the compiled path is allocation-free
//     in steady state: after one warmup run over the workload's bucket
//     shapes, Engine::run performs zero heap allocations (asserted with a
//     global operator-new counter, single-threaded) and the plan set stops
//     growing. The serving wrapper itself still allocates the returned
//     per-request outputs and O(batch) bookkeeping — results the caller
//     keeps — never activation staging. The SWAT-simulator backend
//     allocates per-head core state inside the simulator by design — it is
//     a value-level model, not a serving hot path.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "runtime/batcher.hpp"
#include "runtime/executor.hpp"

namespace swat {

class Runtime {
 public:
  explicit Runtime(model::EncoderConfig cfg, BatchingOptions batching = {});

  /// Serve a set of requests: bucket, pack, run, unpack. Results come back
  /// in submission order. Deterministic: outputs and counters are
  /// bit-identical for any thread count.
  std::vector<RequestResult> run(std::span<const InferenceRequest> requests);

  /// The sequential oracle: serve one request as a batch of one. Output is
  /// bit-identical to encoder().forward(request.input).
  RequestResult run_one(const InferenceRequest& request);

  const model::Encoder& encoder() const { return executor_.encoder(); }
  const Engine& engine() const { return executor_.engine(); }
  const BatchingOptions& batching() const { return executor_.batching(); }

  /// Cumulative totals across all run()/run_one() calls. Always equals the
  /// field-wise sum of every RequestCounters this runtime has returned.
  const RuntimeTotals& totals() const { return totals_; }

  /// Plan-cache introspection (see PlanCache) — stable across repeated
  /// identical workloads, which tests/test_runtime.cpp asserts to prove
  /// plans are reused rather than recompiled.
  std::size_t plan_count() const { return executor_.plan_count(); }
  std::size_t plan_arena_floats() const {
    return executor_.plan_arena_floats();
  }
  std::size_t packed_weight_floats() const {
    return executor_.packed_weight_floats();
  }

 private:
  BatchExecutor executor_;
  RuntimeTotals totals_;
};

}  // namespace swat
