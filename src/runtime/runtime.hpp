// swat::Runtime — batched multi-request inference driver.
//
// The entry points elsewhere in this repository process one sequence at a
// time; this subsystem is the serving layer that turns the batched encoder
// path into a multi-user workload driver:
//
//   1. N variable-length encoder requests are length-bucketed
//      (runtime/batcher.hpp) so the attention tasks of one batch have
//      comparable cost;
//   2. each bucket is packed into a single ragged batch matrix (no padding
//      — offsets mark the sequence boundaries);
//   3. batches run through Encoder::forward_batch, where the
//      position-independent layers execute as single GEMMs over all packed
//      rows and attention fans out over (sequence, head) tasks on the
//      shared ThreadPool;
//   4. outputs are unpacked and returned in submission order, each with its
//      own separable counters.
//
// Guarantees (asserted by tests/test_runtime.cpp):
//   * every request's output is bit-identical to running it alone through
//     Encoder::forward, for any SWAT_THREADS and any batch composition;
//   * per-request counters are identical to a sequential run, and their
//     sum equals the runtime's cumulative totals — the paper eval tables
//     reconcile whether traffic is accounted per request or per batch;
//   * with a host attention backend, serving after a warmup run at the
//     high-water batch shape allocates no packed-activation staging
//     (Matrix::reshape + per-worker Workspace arenas reuse capacity across
//     requests). The SWAT-simulator backend allocates per-head core state
//     inside the simulator by design — it is a value-level model, not a
//     serving hot path.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "model/encoder.hpp"
#include "runtime/batcher.hpp"

namespace swat {

/// Per-request accounting, separable from the batch it was served in.
struct RequestCounters {
  std::int64_t tokens = 0;
  /// Index of the packed batch (within the run() call) that served this
  /// request — introspection for tests and the serving example.
  std::int64_t batch_index = -1;

  // Attention counters measured by the model (SWAT backend only for the
  // traffic/load fields), summed over layers.
  Bytes swat_offchip_traffic;
  std::int64_t swat_core_loads = 0;
  std::int64_t heads_run = 0;

  /// Analytic per-request model cost (linear + attention + FFN FLOPs for
  /// this request's length; attention/flops.hpp), so throughput benches can
  /// report FLOP/s without touching measured counters.
  double model_flops = 0.0;
};

struct InferenceRequest {
  std::uint64_t id = 0;
  MatrixF input;  ///< seq_len x d_model token embeddings, seq_len >= 1
};

struct RequestResult {
  std::uint64_t id = 0;
  MatrixF output;  ///< seq_len x d_model encoder output
  RequestCounters counters;
};

/// Cumulative totals over everything a Runtime has served.
struct RuntimeTotals {
  std::int64_t requests = 0;
  std::int64_t tokens = 0;
  std::int64_t batches = 0;
  Bytes swat_offchip_traffic;
  std::int64_t swat_core_loads = 0;
  std::int64_t heads_run = 0;
  double model_flops = 0.0;
};

class Runtime {
 public:
  explicit Runtime(model::EncoderConfig cfg, BatchingOptions batching = {});

  /// Serve a set of requests: bucket, pack, run, unpack. Results come back
  /// in submission order. Deterministic: outputs and counters are
  /// bit-identical for any thread count.
  std::vector<RequestResult> run(std::span<const InferenceRequest> requests);

  /// The sequential oracle: serve one request as a batch of one. Output is
  /// bit-identical to encoder().forward(request.input).
  RequestResult run_one(const InferenceRequest& request);

  const model::Encoder& encoder() const { return encoder_; }
  const BatchingOptions& batching() const { return batching_; }

  /// Cumulative totals across all run()/run_one() calls. Always equals the
  /// field-wise sum of every RequestCounters this runtime has returned.
  const RuntimeTotals& totals() const { return totals_; }

 private:
  model::Encoder encoder_;
  BatchingOptions batching_;
  RuntimeTotals totals_;

  // Per-batch staging reused across run() calls; reshape() retains the
  // backing capacity, so serving stops allocating staging once the
  // high-water batch shape has been seen.
  MatrixF packed_;
  std::vector<model::AttentionStats> seg_stats_;
};

}  // namespace swat
