#include "runtime/server.hpp"

#include <stdexcept>
#include <string>
#include <utility>

#include "common/contracts.hpp"

namespace swat {

void ServerOptions::validate() const {
  batching.validate();
  if (queue_capacity < 1) {
    throw std::invalid_argument(
        "ServerOptions: queue_capacity must be >= 1, got " +
        std::to_string(queue_capacity) +
        " — the admission queue must be able to hold at least one request");
  }
  if (max_batch_wait.value < 0.0) {
    throw std::invalid_argument(
        "ServerOptions: max_batch_wait must be >= 0 seconds (0 disables "
        "the age cut), got " +
        std::to_string(max_batch_wait.value));
  }
}

Server::Server(model::EncoderConfig cfg, ServerOptions opt)
    : opt_((opt.validate(), opt)),
      executor_(cfg, opt.batching),
      cost_model_(opt.batching.max_batch_latency.value > 0.0
                      ? std::make_unique<BatchCostModel>(cfg)
                      : nullptr),
      queue_(opt.queue_capacity, opt.admission) {
  scheduler_ = std::thread([this] { scheduler_loop(); });
}

Server::~Server() { shutdown(); }

Server::Ticket Server::submit(InferenceRequest request) {
  std::promise<RequestResult> promise;
  Ticket ticket = promise.get_future();

  // Malformed inputs fail their own ticket instead of poisoning the
  // scheduler thread rows deep into a forward pass.
  const std::int64_t d_model = encoder().config().d_model;
  if (request.input.rows() < 1 || request.input.cols() != d_model) {
    promise.set_exception(std::make_exception_ptr(std::invalid_argument(
        "Server::submit: input must be seq_len x d_model with seq_len >= 1 "
        "(got " +
        std::to_string(request.input.rows()) + " x " +
        std::to_string(request.input.cols()) + ", d_model " +
        std::to_string(d_model) + ")")));
    return ticket;
  }

  Pending pending{std::move(request), std::move(promise),
                  std::chrono::steady_clock::now()};
  // Count the admission BEFORE the push: the scheduler may serve the
  // request (bumping completed_) before we regain the lock, and drain()
  // must never observe completed_ > admitted_.
  {
    std::lock_guard lock(state_mutex_);
    ++admitted_;
  }
  if (!queue_.push(pending)) {
    // Rejected (queue full under kReject, or the server is shut down).
    // push() moves from `pending` only on success, so the promise is ours.
    {
      std::lock_guard lock(state_mutex_);
      --admitted_;
    }
    drained_cv_.notify_all();
    pending.promise.set_exception(std::make_exception_ptr(std::runtime_error(
        queue_.closed()
            ? "Server::submit: server is shut down"
            : "Server::submit: admission queue full (capacity " +
                  std::to_string(opt_.queue_capacity) +
                  ", policy kReject) — request shed")));
  }
  return ticket;
}

std::vector<Server::Ticket> Server::submit_many(
    std::vector<InferenceRequest> requests) {
  std::vector<Ticket> tickets;
  tickets.reserve(requests.size());
  for (InferenceRequest& req : requests) {
    tickets.push_back(submit(std::move(req)));
  }
  return tickets;
}

void Server::drain() {
  std::unique_lock lock(state_mutex_);
  drained_cv_.wait(lock, [&] { return completed_ == admitted_; });
}

void Server::shutdown() {
  std::lock_guard lock(shutdown_mutex_);
  queue_.close();
  if (scheduler_.joinable()) scheduler_.join();
}

RuntimeTotals Server::totals() const {
  std::lock_guard lock(state_mutex_);
  return totals_;
}

void Server::scheduler_loop() {
  BatchFormer former(opt_.batching, cost_model_.get());
  std::map<std::size_t, Pending> inflight;
  std::size_t next_index = 0;

  const auto run_ready = [&] {
    while (former.has_ready()) run_batch(former.pop_ready(), inflight);
  };

  for (;;) {
    std::optional<Pending> pending;
    if (former.pending_requests() == 0) {
      pending = queue_.pop();  // idle: park until work arrives or close
      if (!pending) break;     // closed and fully drained
    } else {
      pending = queue_.try_pop();
    }
    if (pending) {
      const std::int64_t length = pending->request.input.rows();
      const std::size_t index = next_index++;
      inflight.emplace(index, std::move(*pending));
      former.push(index, length);
      // Age cut: under sustained load the queue never goes empty, so the
      // flush below never fires — without a wait bound, a request in a
      // sparse length class could pend forever for bucket-mates that never
      // come. inflight is ordered by admission index, so begin() is the
      // oldest request still waiting (pending or in a just-cut batch —
      // a spurious flush of the latter is harmless).
      if (opt_.max_batch_wait.value > 0.0 && former.pending_requests() > 0 &&
          !inflight.empty()) {
        const double waited =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          inflight.begin()->second.admitted)
                .count();
        if (waited >= opt_.max_batch_wait.value) former.flush();
      }
    } else {
      // The arrival queue went momentarily empty while batches are open:
      // stop waiting and cut now. Work conservation — a scheduler that
      // idles on a partial batch only adds queue latency, never width.
      former.flush();
    }
    run_ready();
  }
  // close() raced a final flush at most: cut and serve whatever remains so
  // every admitted ticket resolves.
  former.flush();
  run_ready();
  SWAT_ENSURES(inflight.empty());
}

void Server::run_batch(BatchPlanEntry entry,
                       std::map<std::size_t, Pending>& inflight) {
  const std::size_t n = entry.request_indices.size();
  const auto start = std::chrono::steady_clock::now();

  std::vector<Pending> members;
  std::vector<const InferenceRequest*> inputs;
  members.reserve(n);
  inputs.reserve(n);
  for (const std::size_t index : entry.request_indices) {
    const auto it = inflight.find(index);
    SWAT_ENSURES(it != inflight.end());
    members.push_back(std::move(it->second));
    inflight.erase(it);
  }
  for (const Pending& member : members) inputs.push_back(&member.request);

  try {
    std::vector<RequestResult> results = executor_.execute(entry, inputs);
    std::int64_t batch_index = 0;
    {
      std::lock_guard lock(state_mutex_);
      batch_index = totals_.batches++;
      for (const RequestResult& res : results) {
        totals_.accumulate(res.counters);
      }
    }
    for (std::size_t i = 0; i < n; ++i) {
      results[i].counters.batch_index = batch_index;
      results[i].counters.queue_delay =
          Seconds{std::chrono::duration<double>(start - members[i].admitted)
                      .count()};
      members[i].promise.set_value(std::move(results[i]));
    }
  } catch (...) {
    // A failed batch fails every member ticket — completed-or-rejected,
    // never hung.
    for (Pending& member : members) {
      member.promise.set_exception(std::current_exception());
    }
  }
  {
    std::lock_guard lock(state_mutex_);
    completed_ += n;
  }
  drained_cv_.notify_all();
}

}  // namespace swat
