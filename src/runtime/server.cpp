#include "runtime/server.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

#include "common/contracts.hpp"

namespace swat {

namespace {

double seconds_between(std::chrono::steady_clock::time_point from,
                       std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

std::string ms_string(double seconds) {
  return std::to_string(seconds * 1e3) + " ms";
}

/// ServerOptions::shed_watermark is a fraction of queue_capacity; the
/// AdmissionQueue wants absolute slots in [1, capacity].
std::size_t shed_watermark_slots(const ServerOptions& opt) {
  const auto slots = static_cast<std::size_t>(
      opt.shed_watermark * static_cast<double>(opt.queue_capacity));
  return std::clamp<std::size_t>(slots, 1, opt.queue_capacity);
}

}  // namespace

void ServerOptions::validate() const {
  batching.validate();
  if (queue_capacity < 1) {
    throw std::invalid_argument(
        "ServerOptions: queue_capacity must be >= 1, got " +
        std::to_string(queue_capacity) +
        " — the admission queue must be able to hold at least one request");
  }
  if (max_batch_wait.value < 0.0) {
    throw std::invalid_argument(
        "ServerOptions: max_batch_wait must be >= 0 seconds (0 disables "
        "the age cut), got " +
        std::to_string(max_batch_wait.value));
  }
  if (!(shed_watermark > 0.0) || shed_watermark > 1.0) {
    throw std::invalid_argument(
        "ServerOptions: shed_watermark must be in (0, 1] — it is the "
        "fraction of queue_capacity at which kShedBulk sheds the bulk "
        "lane — got " +
        std::to_string(shed_watermark));
  }
  if (bulk_aging_interval < 1) {
    throw std::invalid_argument(
        "ServerOptions: bulk_aging_interval must be >= 1 (serve one "
        "waiting bulk request after this many consecutive interactive "
        "pops), got " +
        std::to_string(bulk_aging_interval));
  }
  if (default_deadline.value < 0.0) {
    throw std::invalid_argument(
        "ServerOptions: default_deadline must be >= 0 seconds (0 means "
        "no default deadline), got " +
        std::to_string(default_deadline.value));
  }
  if (watchdog_multiplier != 0.0 && watchdog_multiplier < 1.0) {
    throw std::invalid_argument(
        "ServerOptions: watchdog_multiplier must be 0 (watchdog disabled) "
        "or >= 1 — a stall threshold below the predicted service time "
        "itself would flag every healthy batch — got " +
        std::to_string(watchdog_multiplier));
  }
  if (watchdog_grace.value < 0.0) {
    throw std::invalid_argument(
        "ServerOptions: watchdog_grace must be >= 0 seconds (the absolute "
        "floor added to the stall threshold), got " +
        std::to_string(watchdog_grace.value));
  }
}

Server::Server(model::EncoderConfig cfg, ServerOptions opt)
    : opt_((opt.validate(), opt)),
      executor_(cfg, opt.batching),
      cost_model_(std::make_unique<BatchCostModel>(cfg)),
      queue_(opt.queue_capacity, opt.admission, shed_watermark_slots(opt),
             opt.bulk_aging_interval) {
  if (opt_.watchdog_multiplier > 0.0) {
    watchdog_ = std::thread([this] { watchdog_loop(); });
  }
  scheduler_ = std::thread([this] { scheduler_loop(); });
}

Server::~Server() { shutdown(); }

Server::Ticket Server::submit(InferenceRequest request) {
  const std::size_t lane = static_cast<std::size_t>(request.priority);
  SWAT_EXPECTS(lane < kPriorityClasses);
  std::promise<RequestResult> promise;
  Ticket ticket = promise.get_future();
  {
    std::lock_guard lock(state_mutex_);
    ++class_stats_[lane].submitted;
  }

  // Malformed inputs fail their own ticket instead of poisoning the
  // scheduler thread rows deep into a forward pass.
  const std::int64_t d_model = encoder().config().d_model;
  if (request.input.rows() < 1 || request.input.cols() != d_model) {
    {
      std::lock_guard lock(state_mutex_);
      ++class_stats_[lane].shed;
    }
    promise.set_exception(std::make_exception_ptr(std::invalid_argument(
        "Server::submit: input must be seq_len x d_model with seq_len >= 1 "
        "(got " +
        std::to_string(request.input.rows()) + " x " +
        std::to_string(request.input.cols()) + ", d_model " +
        std::to_string(d_model) + ")")));
    return ticket;
  }

  // A request whose deadline the cost model says is unmeetable even if it
  // ran this instant is hopeless: fail it now, before it occupies a queue
  // slot, let alone compute.
  const Seconds deadline = request.deadline.value > 0.0
                               ? request.deadline
                               : opt_.default_deadline;
  if (deadline.value > 0.0) {
    const Seconds predicted =
        cost_model_->request_seconds(request.input.rows());
    if (predicted.value > deadline.value) {
      {
        std::lock_guard lock(state_mutex_);
        ++class_stats_[lane].deadline_shed;
      }
      promise.set_exception(std::make_exception_ptr(DeadlineExceeded(
          "Server::submit: predicted service time " +
          ms_string(predicted.value) + " alone exceeds the deadline " +
          ms_string(deadline.value) + " — shed at admission, no compute "
          "spent")));
      return ticket;
    }
  }

  Pending pending{std::move(request), std::move(promise),
                  std::chrono::steady_clock::now(), deadline, 0};
  // Ledger the admission BEFORE the push: the scheduler may serve the
  // request (bumping completed_) before we regain the lock, and drain()
  // must never observe completed_ > admitted_.
  {
    std::lock_guard lock(state_mutex_);
    pending.seq = next_seq_++;
    ++admitted_;
    ++class_stats_[lane].admitted;
    outstanding_.emplace(pending.seq, pending.admitted);
  }

  using Admission = AdmissionQueue<Pending, kPriorityClasses>::Admission;
  Admission admission = Admission::kClosed;
  std::exception_ptr push_error;
  try {
    admission = queue_.push(pending, lane);
  } catch (...) {
    // A fault injected at the "queue.push" crossing: the push never
    // happened, so resolve the ticket as a shed with the injected error.
    push_error = std::current_exception();
  }
  if (admission != Admission::kAdmitted) {
    // push() moves from `pending` only on admission, so the promise is
    // still ours to reject.
    {
      std::lock_guard lock(state_mutex_);
      --admitted_;
      --class_stats_[lane].admitted;
      ++class_stats_[lane].shed;
      outstanding_.erase(pending.seq);
    }
    drained_cv_.notify_all();
    if (!push_error) {
      std::string what;
      switch (admission) {
        case Admission::kClosed:
          what = "Server::submit: server is shut down";
          break;
        case Admission::kShed:
          what = "Server::submit: bulk admission shed at the overload "
                 "watermark (" +
                 std::to_string(shed_watermark_slots(opt_)) + " of capacity " +
                 std::to_string(opt_.queue_capacity) +
                 ", policy kShedBulk) — headroom reserved for interactive";
          break;
        default:
          what = "Server::submit: admission queue full (capacity " +
                 std::to_string(opt_.queue_capacity) + ", policy " +
                 (opt_.admission == OverflowPolicy::kShedBulk ? "kShedBulk"
                                                              : "kReject") +
                 ") — request shed";
          break;
      }
      push_error = std::make_exception_ptr(std::runtime_error(what));
    }
    pending.promise.set_exception(push_error);
  }
  return ticket;
}

std::vector<Server::Ticket> Server::submit_many(
    std::vector<InferenceRequest> requests) {
  std::vector<Ticket> tickets;
  tickets.reserve(requests.size());
  for (InferenceRequest& req : requests) {
    tickets.push_back(submit(std::move(req)));
  }
  return tickets;
}

void Server::drain() {
  std::unique_lock lock(state_mutex_);
  drained_cv_.wait(lock, [&] { return completed_ == admitted_; });
}

void Server::shutdown() {
  std::lock_guard lock(shutdown_mutex_);
  queue_.close();
  if (scheduler_.joinable()) scheduler_.join();
  {
    std::lock_guard watch_lock(watch_mutex_);
    watch_stop_ = true;
  }
  watch_cv_.notify_all();
  if (watchdog_.joinable()) watchdog_.join();
}

RuntimeTotals Server::totals() const {
  std::lock_guard lock(state_mutex_);
  return totals_;
}

ServerStats Server::stats() const {
  ServerStats stats;
  const auto now = std::chrono::steady_clock::now();
  {
    std::lock_guard lock(state_mutex_);
    for (std::size_t i = 0; i < kPriorityClasses; ++i) {
      stats.per_class[i] = class_stats_[i];
    }
    stats.batches = totals_.batches;
    if (!outstanding_.empty()) {
      stats.oldest_pending_age =
          Seconds{seconds_between(outstanding_.begin()->second, now)};
    }
  }
  stats.queue_depth = queue_.size();
  stats.watchdog_stalls = watchdog_stalls_.load(std::memory_order_relaxed);
  return stats;
}

ServerHealth Server::health() const {
  ServerHealth health;
  const auto now = std::chrono::steady_clock::now();
  bool failed = false;
  {
    std::lock_guard lock(state_mutex_);
    failed = failed_;
    if (!outstanding_.empty()) {
      health.oldest_pending_age =
          Seconds{seconds_between(outstanding_.begin()->second, now)};
    }
  }
  {
    std::lock_guard lock(watch_mutex_);
    if (exec_active_) {
      health.current_batch_age = Seconds{seconds_between(exec_start_, now)};
    }
  }
  health.queue_depth = queue_.size();
  health.watchdog_stalls = watchdog_stalls_.load(std::memory_order_relaxed);
  health.state = failed ? HealthState::kFailed
                 : queue_.closed()
                     ? HealthState::kShutdown
                     : stalled_now_.load(std::memory_order_relaxed)
                           ? HealthState::kStalled
                           : HealthState::kHealthy;
  return health;
}

void Server::scheduler_loop() {
  BatchFormer former(opt_.batching, cost_model_.get());
  std::map<std::size_t, Pending> inflight;
  std::size_t next_index = 0;

  const auto run_ready = [&] {
    while (former.has_ready()) run_batch(former.pop_ready(), inflight);
  };

  try {
    for (;;) {
      std::optional<std::pair<Pending, std::size_t>> claimed;
      if (former.pending_requests() == 0) {
        claimed = queue_.pop();  // idle: park until work arrives or close
        if (!claimed) break;     // closed and fully drained
      } else {
        claimed = queue_.try_pop();
      }
      if (claimed) {
        Pending pending = std::move(claimed->first);
        // Claim-time deadline check: queueing may have consumed the slack
        // the submit-time check still saw. Shed before any compute.
        if (pending.deadline.value > 0.0) {
          const Seconds waited{seconds_between(
              pending.admitted, std::chrono::steady_clock::now())};
          const Seconds slack = cost_model_->deadline_slack(
              pending.request.input.rows(), pending.deadline, waited);
          if (slack.value <= 0.0) {
            const std::size_t lane =
                static_cast<std::size_t>(pending.request.priority);
            pending.promise.set_exception(std::make_exception_ptr(
                DeadlineExceeded("Server: deadline exceeded before "
                                 "execution (deadline " +
                                 ms_string(pending.deadline.value) +
                                 ", waited " + ms_string(waited.value) +
                                 ") — shed, no compute spent")));
            {
              std::lock_guard lock(state_mutex_);
              ++class_stats_[lane].deadline_shed;
              outstanding_.erase(pending.seq);
              ++completed_;
            }
            drained_cv_.notify_all();
            continue;
          }
        }
        const Priority priority = pending.request.priority;
        const std::int64_t length = pending.request.input.rows();
        const std::size_t index = next_index++;
        inflight.emplace(index, std::move(pending));
        former.push(index, length, priority);
        // Age cut: under sustained load the queue never goes empty, so the
        // flush below never fires — without a wait bound, a request in a
        // sparse length class could pend forever for bucket-mates that
        // never come. inflight is ordered by claim index, so begin() is
        // the oldest request still waiting (pending or in a just-cut batch
        // — a spurious flush of the latter is harmless).
        if (opt_.max_batch_wait.value > 0.0 &&
            former.pending_requests() > 0 && !inflight.empty()) {
          const double waited =
              seconds_between(inflight.begin()->second.admitted,
                              std::chrono::steady_clock::now());
          if (waited >= opt_.max_batch_wait.value) former.flush();
        }
      } else {
        // The arrival queue went momentarily empty while batches are open:
        // stop waiting and cut now. Work conservation — a scheduler that
        // idles on a partial batch only adds queue latency, never width.
        former.flush();
      }
      run_ready();
    }
    // close() raced a final flush at most: cut and serve whatever remains
    // so every admitted ticket resolves.
    former.flush();
    run_ready();
    SWAT_ENSURES(inflight.empty());
  } catch (...) {
    // The scheduler itself died (e.g. an injected fault at the
    // "queue.pop" or "batcher.push" crossing) — this thread is about to
    // exit, so anything admitted would hang forever. Reject everything
    // cleanly instead. Batch-level executor failures never reach here:
    // run_batch contains them.
    scheduler_failed(std::current_exception(), inflight);
  }
}

void Server::run_batch(BatchPlanEntry entry,
                       std::map<std::size_t, Pending>& inflight) {
  const std::size_t n = entry.request_indices.size();
  const std::size_t lane = static_cast<std::size_t>(entry.priority);
  const auto start = std::chrono::steady_clock::now();

  std::vector<Pending> members;
  std::vector<const InferenceRequest*> inputs;
  members.reserve(n);
  inputs.reserve(n);
  for (const std::size_t index : entry.request_indices) {
    const auto it = inflight.find(index);
    SWAT_ENSURES(it != inflight.end());
    members.push_back(std::move(it->second));
    inflight.erase(it);
  }
  for (const Pending& member : members) inputs.push_back(&member.request);

  // Stamp the executing batch for the watchdog: it flags a stall once the
  // batch's age exceeds grace + multiplier * this prediction.
  exec_begin(cost_model_->batch_seconds(entry));
  try {
    std::vector<RequestResult> results = executor_.execute(entry, inputs);
    exec_end();
    const auto finish = std::chrono::steady_clock::now();
    std::int64_t batch_index = 0;
    {
      std::lock_guard lock(state_mutex_);
      batch_index = totals_.batches++;
      for (const RequestResult& res : results) {
        totals_.accumulate(res.counters);
      }
    }
    std::int64_t missed = 0;
    for (std::size_t i = 0; i < n; ++i) {
      results[i].counters.batch_index = batch_index;
      results[i].counters.queue_delay =
          Seconds{seconds_between(members[i].admitted, start)};
      const Seconds turnaround{seconds_between(members[i].admitted, finish)};
      results[i].counters.turnaround = turnaround;
      // Served late is still served — the SLO violation is ledgered, the
      // caller still gets the answer.
      if (members[i].deadline.value > 0.0 &&
          turnaround.value > members[i].deadline.value) {
        ++missed;
      }
      members[i].promise.set_value(std::move(results[i]));
    }
    {
      std::lock_guard lock(state_mutex_);
      class_stats_[lane].served += static_cast<std::int64_t>(n);
      class_stats_[lane].deadline_missed += missed;
      for (const Pending& member : members) outstanding_.erase(member.seq);
      completed_ += n;
    }
  } catch (...) {
    exec_end();
    // A failed batch fails every member ticket and ONLY them — the server
    // keeps serving. Completed-or-rejected, never hung.
    for (Pending& member : members) {
      member.promise.set_exception(std::current_exception());
    }
    {
      std::lock_guard lock(state_mutex_);
      class_stats_[lane].failed += static_cast<std::int64_t>(n);
      for (const Pending& member : members) outstanding_.erase(member.seq);
      completed_ += n;
    }
  }
  drained_cv_.notify_all();
}

void Server::scheduler_failed(std::exception_ptr error,
                              std::map<std::size_t, Pending>& inflight)
    noexcept {
  // Close FIRST: push() checks closed_ under the queue mutex, so once
  // discard() has run nothing can land in the queue behind the dead
  // scheduler — a racing submit either beat the discard (rejected below)
  // or sees kClosed and rejects its own ticket.
  queue_.close();
  std::vector<std::pair<Pending, std::size_t>> queued = queue_.discard();
  for (auto& [index, pending] : inflight) {
    pending.promise.set_exception(error);
  }
  for (auto& [pending, lane] : queued) {
    pending.promise.set_exception(error);
  }
  {
    std::lock_guard lock(state_mutex_);
    failed_ = true;
    for (auto& [index, pending] : inflight) {
      ++class_stats_[static_cast<std::size_t>(pending.request.priority)]
            .failed;
      outstanding_.erase(pending.seq);
      ++completed_;
    }
    for (auto& [pending, lane] : queued) {
      ++class_stats_[lane].failed;
      outstanding_.erase(pending.seq);
      ++completed_;
    }
  }
  inflight.clear();
  drained_cv_.notify_all();
}

void Server::exec_begin(Seconds predicted) {
  {
    std::lock_guard lock(watch_mutex_);
    exec_active_ = true;
    stall_flagged_ = false;
    exec_start_ = std::chrono::steady_clock::now();
    exec_predicted_ = predicted;
  }
}

void Server::exec_end() {
  {
    std::lock_guard lock(watch_mutex_);
    exec_active_ = false;
    stall_flagged_ = false;
  }
  stalled_now_.store(false, std::memory_order_relaxed);
}

void Server::watchdog_loop() {
  // Poll a few times per grace period; the floor keeps a zero/small grace
  // from busy-spinning.
  const auto poll = std::chrono::duration<double>(
      std::max(0.001, opt_.watchdog_grace.value * 0.25));
  std::unique_lock lock(watch_mutex_);
  for (;;) {
    watch_cv_.wait_for(lock, poll, [&] { return watch_stop_; });
    if (watch_stop_) return;
    if (!exec_active_ || stall_flagged_) continue;
    const double age =
        seconds_between(exec_start_, std::chrono::steady_clock::now());
    // The prediction is ACCELERATOR-model time — far below host wall time
    // — so the grace floor dominates the threshold by design; the
    // multiplier term only matters for genuinely enormous batches.
    const double threshold = opt_.watchdog_grace.value +
                             opt_.watchdog_multiplier * exec_predicted_.value;
    if (age > threshold) {
      stall_flagged_ = true;  // one stall episode, one count
      stalled_now_.store(true, std::memory_order_relaxed);
      watchdog_stalls_.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

}  // namespace swat
