#include "runtime/server.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <utility>

#include "common/contracts.hpp"
#include "common/fault_injection.hpp"
#include "tensor/kernels.hpp"

namespace swat {

namespace {

double seconds_between(std::chrono::steady_clock::time_point from,
                       std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

std::string ms_string(double seconds) {
  return std::to_string(seconds * 1e3) + " ms";
}

/// ServerOptions::shed_watermark is a fraction of queue_capacity; the
/// AdmissionQueue wants absolute slots in [1, capacity].
std::size_t shed_watermark_slots(const ServerOptions& opt) {
  const auto slots = static_cast<std::size_t>(
      opt.shed_watermark * static_cast<double>(opt.queue_capacity));
  return std::clamp<std::size_t>(slots, 1, opt.queue_capacity);
}

/// Applies the ServerOptions dtype overrides — pack_dtype and
/// stream_dtype — to the config BEFORE anything reads it (cost model and
/// replicas alike), so the server-level knobs and the model-level knobs
/// can never disagree within one pool. Mutates the ctor's by-value cfg in
/// place and returns it; called from the member init list after opt_ is
/// initialized (declaration order guarantees it).
model::EncoderConfig& apply_dtype_overrides(model::EncoderConfig& cfg,
                                            const ServerOptions& opt) {
  if (opt.pack_dtype) cfg.pack_dtype = *opt.pack_dtype;
  if (opt.stream_dtype) cfg.stream_dtype = *opt.stream_dtype;
  return cfg;
}

}  // namespace

void ServerOptions::validate() const {
  batching.validate();
  if (queue_capacity < 1) {
    throw std::invalid_argument(
        "ServerOptions: queue_capacity must be >= 1, got " +
        std::to_string(queue_capacity) +
        " — the admission queue must be able to hold at least one request");
  }
  if (max_batch_wait.value < 0.0) {
    throw std::invalid_argument(
        "ServerOptions: max_batch_wait must be >= 0 seconds (0 disables "
        "the age cut), got " +
        std::to_string(max_batch_wait.value));
  }
  if (!(shed_watermark > 0.0) || shed_watermark > 1.0) {
    throw std::invalid_argument(
        "ServerOptions: shed_watermark must be in (0, 1] — it is the "
        "fraction of queue_capacity at which kShedBulk sheds the bulk "
        "lane — got " +
        std::to_string(shed_watermark));
  }
  if (bulk_aging_interval < 1) {
    throw std::invalid_argument(
        "ServerOptions: bulk_aging_interval must be >= 1 (serve one "
        "waiting bulk request after this many consecutive interactive "
        "pops), got " +
        std::to_string(bulk_aging_interval));
  }
  if (default_deadline.value < 0.0) {
    throw std::invalid_argument(
        "ServerOptions: default_deadline must be >= 0 seconds (0 means "
        "no default deadline), got " +
        std::to_string(default_deadline.value));
  }
  if (watchdog_multiplier != 0.0 && watchdog_multiplier < 1.0) {
    throw std::invalid_argument(
        "ServerOptions: watchdog_multiplier must be 0 (watchdog disabled) "
        "or >= 1 — a stall threshold below the predicted service time "
        "itself would flag every healthy batch — got " +
        std::to_string(watchdog_multiplier));
  }
  if (watchdog_grace.value < 0.0) {
    throw std::invalid_argument(
        "ServerOptions: watchdog_grace must be >= 0 seconds (the absolute "
        "floor added to the stall threshold), got " +
        std::to_string(watchdog_grace.value));
  }
  if (num_replicas < 1 || num_replicas > 256) {
    throw std::invalid_argument(
        "ServerOptions: num_replicas must be in [1, 256] — the pool needs "
        "at least one engine replica, and more replicas than any host this "
        "serves has core groups is a configuration error — got " +
        std::to_string(num_replicas));
  }
  if (replica_queue_depth > 64) {
    throw std::invalid_argument(
        "ServerOptions: replica_queue_depth must be <= 64 — 0 dispatches "
        "only to idle replicas (the single-engine claim order), small "
        "depths pipeline dispatch with execution; claiming dozens of "
        "batches ahead per replica would just defeat class-aware "
        "admission — got " +
        std::to_string(replica_queue_depth));
  }
  if (pack_dtype && *pack_dtype != Dtype::kFp32 &&
      *pack_dtype != Dtype::kFp16) {
    throw std::invalid_argument(
        "ServerOptions: pack_dtype must be Dtype::kFp32 or Dtype::kFp16 "
        "(or unset to inherit EncoderConfig::pack_dtype), got enum value " +
        std::to_string(static_cast<int>(*pack_dtype)) +
        " — the packed GEMM streams fp32 or fp16 panels only");
  }
  if (stream_dtype && *stream_dtype != Dtype::kFp32 &&
      *stream_dtype != Dtype::kFp16) {
    throw std::invalid_argument(
        "ServerOptions: stream_dtype must be Dtype::kFp32 or Dtype::kFp16 "
        "(or unset to inherit EncoderConfig::stream_dtype), got enum "
        "value " +
        std::to_string(static_cast<int>(*stream_dtype)) +
        " — the fused attention kernel streams fp32 or fp16 K/V tiles "
        "only");
  }
  if (shared_pack_placement != SharedPackPlacement::kFirstTouch &&
      !share_weight_pack) {
    throw std::invalid_argument(
        "ServerOptions: shared_pack_placement = kInterleaved / "
        "kReplicatedPerNode places the SHARED weight pack, but "
        "share_weight_pack is false so every replica packs privately (a "
        "private pack is already node-local under kPartitioned) — set "
        "share_weight_pack = true or keep shared_pack_placement = "
        "kFirstTouch");
  }
  if (shared_pack_placement != SharedPackPlacement::kFirstTouch &&
      placement != PlacementPolicy::kPartitioned) {
    throw std::invalid_argument(
        "ServerOptions: shared_pack_placement = kInterleaved / "
        "kReplicatedPerNode requires placement = "
        "PlacementPolicy::kPartitioned — without pinned per-replica core "
        "groups there are no NUMA node sets to stripe or replicate the "
        "pack across — got kShared");
  }
}

Server::Server(model::EncoderConfig cfg, ServerOptions opt)
    : opt_((opt.validate(), opt)),
      cost_model_(
          std::make_unique<BatchCostModel>(apply_dtype_overrides(cfg, opt_))),
      queue_(opt.queue_capacity, opt.admission, shed_watermark_slots(opt),
             opt.bulk_aging_interval) {
  // Partitioned placement: carve the allowed cpuset (online ∩ process
  // affinity ∩ SWAT_CPUSET) into one locality-ordered core group per
  // replica. An empty partition (more replicas than allowed CPUs) means
  // the host cannot give every replica at least one core — fall back
  // wholesale to shared placement rather than oversubscribe.
  std::vector<CpuSet> groups;
  Topology topo;
  if (opt_.placement == PlacementPolicy::kPartitioned) {
    topo = discover_topology();
    groups = topo.partition(opt_.num_replicas);
  }
  // Resolve the shared-pack placement against the host: the non-default
  // policies need a real partition spanning 2+ NUMA nodes. A single-node
  // host (or a partition fallback to shared pools) downgrades to
  // kFirstTouch — on one node every policy places pages identically, so
  // this is a warning, not an error (validate() stays host-independent).
  SharedPackPlacement pack_placement = opt_.shared_pack_placement;
  if (pack_placement != SharedPackPlacement::kFirstTouch &&
      (groups.empty() || topo.node_count < 2)) {
    static std::atomic<bool> warned{false};
    if (!warned.exchange(true)) {
      std::fprintf(
          stderr,
          "swat: warning: shared_pack_placement = %s needs a partitioned "
          "pool spanning 2+ NUMA nodes (host has %d node(s)%s) — using "
          "kFirstTouch\n",
          pack_placement == SharedPackPlacement::kInterleaved
              ? "kInterleaved"
              : "kReplicatedPerNode",
          topo.node_count, groups.empty() ? ", partition fell back" : "");
    }
    pack_placement = SharedPackPlacement::kFirstTouch;
  }
  // The NUMA node sets the interleaved pack stripes across, and the node
  // each replica's group belongs to (node of its first CPU — groups are
  // contiguous slices of the node-major locality order, so the first CPU
  // is the group's primary node).
  std::vector<CpuSet> node_sets;
  if (pack_placement == SharedPackPlacement::kInterleaved) {
    for (int n = 0; n < topo.node_count; ++n) {
      CpuSet cpus = topo.node_cpus(n);
      if (!cpus.empty()) node_sets.push_back(std::move(cpus));
    }
  }
  replica_stats_.resize(opt_.num_replicas);
  const int node0 =
      groups.empty() ? -1 : topo.node_of(groups[0].cpus().front());
  std::map<int, std::size_t> node_prototype;  ///< node -> pack owner replica
  replicas_.reserve(opt_.num_replicas);
  for (std::size_t r = 0; r < opt_.num_replicas; ++r) {
    auto replica = std::make_unique<Replica>();
    if (!groups.empty()) {
      replica->core_group = groups[r];
      // The pool never needs more threads than its group has CPUs, nor
      // more than the global SWAT_THREADS budget.
      replica->pool = std::make_unique<ThreadPool>(
          std::min(replica->core_group.count(), swat::num_threads()),
          replica->core_group);
    }
    const int node =
        groups.empty() ? -1 : topo.node_of(groups[r].cpus().front());
    // First-touch: pin the constructing thread to the replica's group for
    // the executor build so the inline share of the pack fill (and the
    // serial parts — plan arenas bind lazily, but weights pack eagerly)
    // first-touches pages on the replica's node too. Restored after.
    const CpuSet saved = replica->pool != nullptr
                             ? current_thread_affinity()
                             : CpuSet{};
    const bool repinned =
        replica->pool != nullptr && pin_current_thread(replica->core_group);
    if (r == 0 || !opt_.share_weight_pack) {
      if (r == 0 && opt_.share_weight_pack &&
          pack_placement == SharedPackPlacement::kInterleaved) {
        // Interleaved: the prototype's pack fill runs node-striped on
        // this thread (ScopedPackStriping), first-touching panels
        // round-robin across the partition's nodes. Panel bits are
        // unchanged — only page placement moves.
        ScopedPackStriping striping(node_sets);
        replica->executor = std::make_unique<BatchExecutor>(
            cfg, opt_.batching, replica->pool.get());
      } else {
        replica->executor = std::make_unique<BatchExecutor>(
            cfg, opt_.batching, replica->pool.get());
      }
      replica_stats_[r].pack_node =
          opt_.share_weight_pack &&
                  pack_placement == SharedPackPlacement::kInterleaved
              ? -1
              : node;
      if (opt_.share_weight_pack) node_prototype[node] = r;
    } else if (pack_placement == SharedPackPlacement::kReplicatedPerNode &&
               node_prototype.find(node) == node_prototype.end()) {
      // First replica on a new node becomes that node's pack owner: it
      // packs a fresh copy from the same fp32 masters while pinned to its
      // own group, so first-touch lands the whole copy node-local. The
      // copy must be — and is asserted — bit-identical to replica 0's.
      replica->executor = std::make_unique<BatchExecutor>(
          cfg, opt_.batching, replica->pool.get());
      SWAT_ENSURES(replica->executor->encoder().packs_equal(
          replicas_.front()->executor->encoder()));
      node_prototype[node] = r;
      replica_stats_[r].pack_node = node;
    } else {
      // Stream a read-only shared pack: the node-local owner's under
      // kReplicatedPerNode, replica 0's otherwise.
      const std::size_t owner =
          pack_placement == SharedPackPlacement::kReplicatedPerNode
              ? node_prototype.at(node)
              : 0;
      replica->executor = std::make_unique<BatchExecutor>(
          cfg, opt_.batching, *replicas_[owner]->executor,
          replica->pool.get());
      replica_stats_[r].pack_node =
          pack_placement == SharedPackPlacement::kInterleaved
              ? -1
              : (pack_placement == SharedPackPlacement::kReplicatedPerNode
                     ? node
                     : node0);
    }
    if (repinned && !saved.empty()) pin_current_thread(saved);
    replicas_.push_back(std::move(replica));
  }
  live_replicas_ = opt_.num_replicas;
  for (std::size_t r = 0; r < opt_.num_replicas; ++r) {
    replicas_[r]->worker = std::thread([this, r] { replica_loop(r); });
  }
  if (opt_.watchdog_multiplier > 0.0) {
    watchdog_ = std::thread([this] { watchdog_loop(); });
  }
  scheduler_ = std::thread([this] { scheduler_loop(); });
}

Server::~Server() { shutdown(); }

Server::Ticket Server::submit(InferenceRequest request) {
  const std::size_t lane = static_cast<std::size_t>(request.priority);
  SWAT_EXPECTS(lane < kPriorityClasses);
  std::promise<RequestResult> promise;
  Ticket ticket = promise.get_future();
  {
    std::lock_guard lock(state_mutex_);
    ++class_stats_[lane].submitted;
  }

  // Malformed inputs fail their own ticket instead of poisoning the
  // scheduler thread rows deep into a forward pass.
  const std::int64_t d_model = encoder().config().d_model;
  if (request.input.rows() < 1 || request.input.cols() != d_model) {
    {
      std::lock_guard lock(state_mutex_);
      ++class_stats_[lane].shed;
    }
    promise.set_exception(std::make_exception_ptr(std::invalid_argument(
        "Server::submit: input must be seq_len x d_model with seq_len >= 1 "
        "(got " +
        std::to_string(request.input.rows()) + " x " +
        std::to_string(request.input.cols()) + ", d_model " +
        std::to_string(d_model) + ")")));
    return ticket;
  }

  // A request whose deadline the cost model says is unmeetable even if it
  // ran this instant is hopeless: fail it now, before it occupies a queue
  // slot, let alone compute.
  const Seconds deadline = request.deadline.value > 0.0
                               ? request.deadline
                               : opt_.default_deadline;
  if (deadline.value > 0.0) {
    const Seconds predicted =
        cost_model_->request_seconds(request.input.rows());
    if (predicted.value > deadline.value) {
      {
        std::lock_guard lock(state_mutex_);
        ++class_stats_[lane].deadline_shed;
      }
      promise.set_exception(std::make_exception_ptr(DeadlineExceeded(
          "Server::submit: predicted service time " +
          ms_string(predicted.value) + " alone exceeds the deadline " +
          ms_string(deadline.value) + " — shed at admission, no compute "
          "spent")));
      return ticket;
    }
  }

  Pending pending{std::move(request), std::move(promise),
                  std::chrono::steady_clock::now(), deadline, 0};
  // Ledger the admission BEFORE the push: the scheduler may serve the
  // request (bumping completed_) before we regain the lock, and drain()
  // must never observe completed_ > admitted_.
  {
    std::lock_guard lock(state_mutex_);
    pending.seq = next_seq_++;
    ++admitted_;
    ++class_stats_[lane].admitted;
    outstanding_.emplace(pending.seq, pending.admitted);
  }

  using Admission = AdmissionQueue<Pending, kPriorityClasses>::Admission;
  Admission admission = Admission::kClosed;
  std::exception_ptr push_error;
  try {
    admission = queue_.push(pending, lane);
  } catch (...) {
    // A fault injected at the "queue.push" crossing: the push never
    // happened, so resolve the ticket as a shed with the injected error.
    push_error = std::current_exception();
  }
  if (admission != Admission::kAdmitted) {
    // push() moves from `pending` only on admission, so the promise is
    // still ours to reject.
    {
      std::lock_guard lock(state_mutex_);
      --admitted_;
      --class_stats_[lane].admitted;
      ++class_stats_[lane].shed;
      outstanding_.erase(pending.seq);
    }
    drained_cv_.notify_all();
    if (!push_error) {
      std::string what;
      switch (admission) {
        case Admission::kClosed:
          what = "Server::submit: server is shut down";
          break;
        case Admission::kShed:
          what = "Server::submit: bulk admission shed at the overload "
                 "watermark (" +
                 std::to_string(shed_watermark_slots(opt_)) + " of capacity " +
                 std::to_string(opt_.queue_capacity) +
                 ", policy kShedBulk) — headroom reserved for interactive";
          break;
        default:
          what = "Server::submit: admission queue full (capacity " +
                 std::to_string(opt_.queue_capacity) + ", policy " +
                 (opt_.admission == OverflowPolicy::kShedBulk ? "kShedBulk"
                                                              : "kReject") +
                 ") — request shed";
          break;
      }
      push_error = std::make_exception_ptr(std::runtime_error(what));
    }
    pending.promise.set_exception(push_error);
  }
  return ticket;
}

std::vector<Server::Ticket> Server::submit_many(
    std::vector<InferenceRequest> requests) {
  std::vector<Ticket> tickets;
  tickets.reserve(requests.size());
  for (InferenceRequest& req : requests) {
    tickets.push_back(submit(std::move(req)));
  }
  return tickets;
}

void Server::drain() {
  std::unique_lock lock(state_mutex_);
  drained_cv_.wait(lock, [&] { return completed_ == admitted_; });
}

void Server::shutdown() {
  std::lock_guard lock(shutdown_mutex_);
  queue_.close();
  // Order matters: the scheduler drains the admission queue and places
  // every remaining batch first; only then may the workers be told to
  // exit once their queues run dry — every admitted ticket resolves.
  if (scheduler_.joinable()) scheduler_.join();
  {
    std::lock_guard pool_lock(pool_mutex_);
    pool_stop_ = true;
  }
  pool_cv_.notify_all();
  for (auto& replica : replicas_) {
    if (replica->worker.joinable()) replica->worker.join();
  }
  {
    std::lock_guard watch_lock(watch_mutex_);
    watch_stop_ = true;
  }
  watch_cv_.notify_all();
  if (watchdog_.joinable()) watchdog_.join();
}

RuntimeTotals Server::totals() const {
  std::lock_guard lock(state_mutex_);
  return totals_;
}

ServerStats Server::stats() const {
  ServerStats stats;
  const auto now = std::chrono::steady_clock::now();
  {
    std::lock_guard lock(state_mutex_);
    for (std::size_t i = 0; i < kPriorityClasses; ++i) {
      stats.per_class[i] = class_stats_[i];
    }
    stats.replicas = replica_stats_;
    stats.batches = totals_.batches;
    if (!outstanding_.empty()) {
      stats.oldest_pending_age =
          Seconds{seconds_between(outstanding_.begin()->second, now)};
    }
  }
  // The stall counters live on the replicas as atomics (the watchdog
  // bumps them without the ledger lock); overlay them onto the snapshot.
  // Placement fields ride the same overlay: core_group is immutable
  // after construction, pinned_threads is an atomic the pool and the
  // worker bump as their pin calls land.
  for (std::size_t r = 0; r < replicas_.size(); ++r) {
    stats.replicas[r].watchdog_stalls =
        replicas_[r]->stalls.load(std::memory_order_relaxed);
    stats.replicas[r].core_group = replicas_[r]->core_group.to_string();
    stats.replicas[r].pinned_threads =
        replicas_[r]->pinned_threads.load(std::memory_order_relaxed) +
        (replicas_[r]->pool != nullptr
             ? replicas_[r]->pool->pinned_workers()
             : 0);
  }
  stats.queue_depth = queue_.size();
  stats.watchdog_stalls = watchdog_stalls_.load(std::memory_order_relaxed);
  return stats;
}

ServerHealth Server::health() const {
  ServerHealth health;
  const auto now = std::chrono::steady_clock::now();
  bool failed = false;
  {
    std::lock_guard lock(state_mutex_);
    failed = failed_;
    if (!outstanding_.empty()) {
      health.oldest_pending_age =
          Seconds{seconds_between(outstanding_.begin()->second, now)};
    }
  }
  health.replicas.resize(replicas_.size());
  {
    std::lock_guard lock(watch_mutex_);
    for (std::size_t r = 0; r < replicas_.size(); ++r) {
      if (!replicas_[r]->exec_active) continue;
      const Seconds age{seconds_between(replicas_[r]->exec_start, now)};
      health.replicas[r].current_batch_age = age;
      health.current_batch_age =
          Seconds{std::max(health.current_batch_age.value, age.value)};
    }
  }
  bool degraded = false;
  {
    std::lock_guard lock(pool_mutex_);
    for (std::size_t r = 0; r < replicas_.size(); ++r) {
      if (replicas_[r]->dead) {
        health.replicas[r].state = HealthState::kFailed;
        degraded = true;
      }
    }
  }
  for (std::size_t r = 0; r < replicas_.size(); ++r) {
    health.replicas[r].watchdog_stalls =
        replicas_[r]->stalls.load(std::memory_order_relaxed);
    if (health.replicas[r].state == HealthState::kHealthy &&
        replicas_[r]->stalled_now.load(std::memory_order_relaxed)) {
      health.replicas[r].state = HealthState::kStalled;
      degraded = true;
    }
  }
  health.queue_depth = queue_.size();
  health.watchdog_stalls = watchdog_stalls_.load(std::memory_order_relaxed);
  // A dead or stalled replica degrades the pool (kStalled) while the
  // survivors keep serving; kFailed is reserved for serving having
  // stopped entirely.
  health.state = failed ? HealthState::kFailed
                 : queue_.closed()
                     ? HealthState::kShutdown
                     : degraded ? HealthState::kStalled
                                : HealthState::kHealthy;
  return health;
}

std::size_t Server::plan_count() const {
  std::size_t total = 0;
  for (const auto& replica : replicas_) {
    total += replica->executor->plan_count();
  }
  return total;
}

std::size_t Server::plan_arena_floats() const {
  std::size_t total = 0;
  for (const auto& replica : replicas_) {
    total += replica->executor->plan_arena_floats();
  }
  return total;
}

std::size_t Server::packed_weight_floats() const {
  std::size_t total = 0;
  for (const auto& replica : replicas_) {
    total += replica->executor->packed_weight_floats();
  }
  return total;
}

std::size_t Server::packed_weight_bytes() const {
  std::size_t total = 0;
  for (const auto& replica : replicas_) {
    total += replica->executor->packed_weight_bytes();
  }
  return total;
}

const model::Encoder& Server::encoder() const {
  return replicas_.front()->executor->encoder();
}

void Server::scheduler_loop() {
  BatchFormer former(opt_.batching, cost_model_.get());
  std::map<std::size_t, Pending> inflight;
  std::size_t next_index = 0;

  const auto dispatch_ready = [&] {
    while (former.has_ready()) dispatch_batch(former.pop_ready(), inflight);
  };

  try {
    for (;;) {
      std::optional<std::pair<Pending, std::size_t>> claimed;
      if (former.pending_requests() == 0) {
        // Idle: park until work arrives — but only claim when the pool
        // can actually take a batch. Claiming ahead of replica capacity
        // would drain the class-aware admission queue into FIFO replica
        // queues, silently erasing the interactive-first claim order and
        // the watermark backpressure kShedBulk watches.
        wait_for_dispatch_room();
        claimed = queue_.pop();  // park until work arrives or close
        if (!claimed) break;     // closed and fully drained
      } else {
        claimed = queue_.try_pop();
      }
      if (claimed) {
        Pending pending = std::move(claimed->first);
        // Claim-time deadline check: queueing may have consumed the slack
        // the submit-time check still saw. Shed before any compute.
        if (pending.deadline.value > 0.0) {
          const Seconds waited{seconds_between(
              pending.admitted, std::chrono::steady_clock::now())};
          const Seconds slack = cost_model_->deadline_slack(
              pending.request.input.rows(), pending.deadline, waited);
          if (slack.value <= 0.0) {
            const std::size_t lane =
                static_cast<std::size_t>(pending.request.priority);
            pending.promise.set_exception(std::make_exception_ptr(
                DeadlineExceeded("Server: deadline exceeded before "
                                 "execution (deadline " +
                                 ms_string(pending.deadline.value) +
                                 ", waited " + ms_string(waited.value) +
                                 ") — shed, no compute spent")));
            {
              std::lock_guard lock(state_mutex_);
              ++class_stats_[lane].deadline_shed;
              outstanding_.erase(pending.seq);
              ++completed_;
            }
            drained_cv_.notify_all();
            continue;
          }
        }
        const Priority priority = pending.request.priority;
        const std::int64_t length = pending.request.input.rows();
        const std::size_t index = next_index++;
        inflight.emplace(index, std::move(pending));
        former.push(index, length, priority);
        // Age cut: under sustained load the queue never goes empty, so the
        // flush below never fires — without a wait bound, a request in a
        // sparse length class could pend forever for bucket-mates that
        // never come. inflight is ordered by claim index, so begin() is
        // the oldest request still waiting (pending or in a just-cut batch
        // — a spurious flush of the latter is harmless).
        if (opt_.max_batch_wait.value > 0.0 &&
            former.pending_requests() > 0 && !inflight.empty()) {
          const double waited =
              seconds_between(inflight.begin()->second.admitted,
                              std::chrono::steady_clock::now());
          if (waited >= opt_.max_batch_wait.value) former.flush();
        }
      } else {
        // The arrival queue went momentarily empty while batches are open:
        // stop waiting and cut now. Work conservation — a scheduler that
        // idles on a partial batch only adds queue latency, never width.
        former.flush();
      }
      dispatch_ready();
    }
    // close() raced a final flush at most: cut and place whatever remains
    // so every admitted ticket resolves.
    former.flush();
    dispatch_ready();
    SWAT_ENSURES(inflight.empty());
  } catch (...) {
    // The scheduler itself died (e.g. an injected fault at the
    // "queue.pop", "batcher.push", or "dispatch.place" crossing, or the
    // last replica dying under it) — this thread is about to exit, so
    // anything admitted would hang forever. Reject everything cleanly
    // instead. Batch-level executor failures never reach here:
    // run_on_replica contains them on the worker threads.
    scheduler_failed(std::current_exception(), inflight);
  }
}

bool Server::replica_has_room(const Replica& r) const {
  if (r.dead) return false;
  if (!r.executing && r.queue.empty()) return true;
  return r.queue.size() < opt_.replica_queue_depth;
}

void Server::wait_for_dispatch_room() {
  std::unique_lock lock(pool_mutex_);
  pool_cv_.wait(lock, [&] {
    if (live_replicas_ == 0) return true;  // dispatch_batch will report it
    for (const auto& replica : replicas_) {
      if (replica_has_room(*replica)) return true;
    }
    return false;
  });
}

void Server::dispatch_batch(BatchPlanEntry entry,
                            std::map<std::size_t, Pending>& inflight) {
  // Resilience hook: a throw at this crossing is scheduler-fatal (the
  // dispatcher itself broke, not one replica) — the batch's members are
  // still in `inflight`, so scheduler_failed rejects them cleanly.
  SWAT_FAULT_POINT("dispatch.place");
  ReadyBatch batch;
  batch.predicted = cost_model_->predict(entry);
  batch.members.reserve(entry.request_indices.size());
  for (const std::size_t index : entry.request_indices) {
    const auto it = inflight.find(index);
    SWAT_ENSURES(it != inflight.end());
    batch.members.push_back(std::move(it->second));
    inflight.erase(it);
  }
  batch.entry = std::move(entry);
  {
    std::unique_lock lock(pool_mutex_);
    pool_cv_.wait(lock, [&] {
      if (live_replicas_ == 0) return true;
      for (const auto& replica : replicas_) {
        if (replica_has_room(*replica)) return true;
      }
      return false;
    });
    if (live_replicas_ == 0) {
      // Total pool failure. Put the members back so scheduler_failed (in
      // our caller's catch) rejects every one of them.
      lock.unlock();
      for (std::size_t i = 0; i < batch.members.size(); ++i) {
        inflight.emplace(batch.entry.request_indices[i],
                         std::move(batch.members[i]));
      }
      throw std::runtime_error(
          "Server: every engine replica has failed — the pool cannot "
          "execute further batches");
    }
    // Cost-model placement: the live replica with the smallest predicted
    // backlog that has room; ties go to the lowest index.
    Replica* target = nullptr;
    for (const auto& replica : replicas_) {
      if (!replica_has_room(*replica)) continue;
      if (!target || replica->backlog_seconds < target->backlog_seconds) {
        target = replica.get();
      }
    }
    SWAT_ENSURES(target != nullptr);
    target->backlog_seconds += batch.predicted.value;
    target->queue.push_back(std::move(batch));
  }
  pool_cv_.notify_all();
}

void Server::replica_loop(std::size_t r) {
  // Partitioned placement: the worker itself joins the replica's core
  // group — it is the caller thread of every parallel_for the replica's
  // engine issues, so leaving it roaming would leak one thread's worth
  // of compute off the partition.
  Replica& self = *replicas_[r];
  if (self.pool != nullptr && pin_current_thread(self.core_group)) {
    self.pinned_threads.fetch_add(1, std::memory_order_relaxed);
  }
  for (;;) {
    std::optional<ReadyBatch> batch = next_batch(r);
    if (!batch) return;
    {
      // Ledger the claim before the execution attempt: a replica dying
      // with this batch in hand must still satisfy the per-replica
      // conservation law (dispatched == served + failed + executing).
      std::lock_guard lock(state_mutex_);
      ReplicaStats& mine = replica_stats_[r];
      mine.of(batch->entry.priority).dispatched += batch->entry.requests();
      if (batch->stolen) ++mine.batches_stolen;
    }
    try {
      // Resilience hook: a throw HERE — unlike one inside
      // BatchExecutor::execute, which run_on_replica contains as a
      // batch-level failure — kills the replica itself: quarantine, not
      // batch retry, is the recovery.
      SWAT_FAULT_POINT("replica.execute");
      run_on_replica(r, *batch);
    } catch (...) {
      replica_failed(r, std::move(*batch), std::current_exception());
      return;
    }
  }
}

std::optional<Server::ReadyBatch> Server::next_batch(std::size_t r) {
  std::unique_lock lock(pool_mutex_);
  Replica& self = *replicas_[r];
  for (;;) {
    if (self.dead) return std::nullopt;
    if (!self.queue.empty()) {
      ReadyBatch batch = std::move(self.queue.front());
      self.queue.pop_front();
      self.executing = true;
      lock.unlock();
      pool_cv_.notify_all();  // the dispatcher may have room now
      return batch;
    }
    // Own queue dry: steal the NEWEST queued batch from the most
    // backlogged live replica — newest so the victim keeps the batch it
    // would start next (better locality with its executing work), most
    // backlogged so stealing levels the cost-model load.
    Replica* victim = nullptr;
    for (const auto& other : replicas_) {
      if (other.get() == &self || other->dead || other->queue.empty()) {
        continue;
      }
      if (!victim || other->backlog_seconds > victim->backlog_seconds) {
        victim = other.get();
      }
    }
    if (victim) {
      ReadyBatch batch = std::move(victim->queue.back());
      victim->queue.pop_back();
      victim->backlog_seconds =
          std::max(0.0, victim->backlog_seconds - batch.predicted.value);
      self.backlog_seconds += batch.predicted.value;
      batch.stolen = true;
      self.executing = true;
      lock.unlock();
      pool_cv_.notify_all();
      return batch;
    }
    if (pool_stop_) return std::nullopt;
    pool_cv_.wait(lock);
  }
}

void Server::run_on_replica(std::size_t r, ReadyBatch& batch) {
  const BatchPlanEntry& entry = batch.entry;
  std::vector<Pending>& members = batch.members;
  const std::size_t n = members.size();
  const std::size_t lane = static_cast<std::size_t>(entry.priority);
  const auto start = std::chrono::steady_clock::now();

  std::vector<const InferenceRequest*> inputs;
  inputs.reserve(n);
  for (const Pending& member : members) inputs.push_back(&member.request);

  // Stamp this replica's watchdog slot: it flags a stall once the batch's
  // age exceeds grace + multiplier * this prediction.
  exec_begin(r, batch.predicted);
  try {
    std::vector<RequestResult> results =
        replicas_[r]->executor->execute(entry, inputs);
    exec_end(r);
    const auto finish = std::chrono::steady_clock::now();
    std::int64_t batch_index = 0;
    {
      std::lock_guard lock(state_mutex_);
      batch_index = totals_.batches++;
      totals_.weight_stream_bytes += cost_model_->weight_stream_bytes();
      for (const RequestResult& res : results) {
        totals_.accumulate(res.counters);
      }
    }
    std::int64_t missed = 0;
    for (std::size_t i = 0; i < n; ++i) {
      results[i].counters.batch_index = batch_index;
      results[i].counters.queue_delay =
          Seconds{seconds_between(members[i].admitted, start)};
      const Seconds turnaround{seconds_between(members[i].admitted, finish)};
      results[i].counters.turnaround = turnaround;
      // Served late is still served — the SLO violation is ledgered, the
      // caller still gets the answer.
      if (members[i].deadline.value > 0.0 &&
          turnaround.value > members[i].deadline.value) {
        ++missed;
      }
      members[i].promise.set_value(std::move(results[i]));
    }
    {
      std::lock_guard lock(state_mutex_);
      class_stats_[lane].served += static_cast<std::int64_t>(n);
      class_stats_[lane].deadline_missed += missed;
      ReplicaClassStats& mine = replica_stats_[r].per_class[lane];
      mine.served += static_cast<std::int64_t>(n);
      mine.deadline_missed += missed;
      ++replica_stats_[r].batches;
      for (const Pending& member : members) outstanding_.erase(member.seq);
      completed_ += n;
    }
  } catch (...) {
    exec_end(r);
    // A failed batch fails every member ticket and ONLY them — the
    // replica keeps serving. Completed-or-rejected, never hung.
    for (Pending& member : members) {
      member.promise.set_exception(std::current_exception());
    }
    {
      std::lock_guard lock(state_mutex_);
      class_stats_[lane].failed += static_cast<std::int64_t>(n);
      replica_stats_[r].per_class[lane].failed +=
          static_cast<std::int64_t>(n);
      for (const Pending& member : members) outstanding_.erase(member.seq);
      completed_ += n;
    }
  }
  retire_batch(r, batch);
  drained_cv_.notify_all();
}

void Server::retire_batch(std::size_t r, const ReadyBatch& batch) {
  {
    std::lock_guard lock(pool_mutex_);
    Replica& self = *replicas_[r];
    self.executing = false;
    self.backlog_seconds =
        std::max(0.0, self.backlog_seconds - batch.predicted.value);
  }
  pool_cv_.notify_all();
}

void Server::replica_failed(std::size_t r, ReadyBatch batch,
                            std::exception_ptr error) noexcept {
  exec_end(r);
  const std::size_t lane = static_cast<std::size_t>(batch.entry.priority);
  // Reject exactly the batch this replica had claimed. run_on_replica may
  // already have resolved the members on an unexpected late throw, so
  // tolerate already-satisfied promises.
  std::int64_t rejected = 0;
  for (Pending& member : batch.members) {
    try {
      member.promise.set_exception(error);
      ++rejected;
    } catch (const std::future_error&) {
    }
  }
  std::deque<ReadyBatch> orphaned;
  std::size_t live = 0;
  {
    std::lock_guard lock(pool_mutex_);
    Replica& self = *replicas_[r];
    self.dead = true;
    self.executing = false;
    self.backlog_seconds = 0.0;
    orphaned.swap(self.queue);
    live = --live_replicas_;
  }
  {
    std::lock_guard lock(state_mutex_);
    replica_stats_[r].quarantined = true;
    if (rejected > 0) {
      replica_stats_[r].per_class[lane].failed += rejected;
      class_stats_[lane].failed += rejected;
      for (const Pending& member : batch.members) {
        outstanding_.erase(member.seq);
      }
      completed_ += static_cast<std::size_t>(rejected);
    }
  }
  if (live > 0 && !orphaned.empty()) {
    // Survivors inherit the dead replica's queued batches (placement by
    // backlog again; room limits do not apply — this is already-claimed
    // work, not new claim-ahead).
    std::lock_guard lock(pool_mutex_);
    if (live_replicas_ > 0) {
      for (ReadyBatch& orphan : orphaned) {
        Replica* target = nullptr;
        for (const auto& replica : replicas_) {
          if (replica->dead) continue;
          if (!target || replica->backlog_seconds < target->backlog_seconds) {
            target = replica.get();
          }
        }
        target->backlog_seconds += orphan.predicted.value;
        target->queue.push_back(std::move(orphan));
      }
      orphaned.clear();
    }
  }
  if (live == 0 || !orphaned.empty()) {
    // The last replica died (or the rest died while we redistributed):
    // serving has stopped. Close admission and cleanly reject everything
    // still pending — queued batches, then the admission backlog.
    queue_.close();
    std::vector<std::pair<Pending, std::size_t>> queued = queue_.discard();
    std::lock_guard lock(state_mutex_);
    failed_ = true;
    for (ReadyBatch& orphan : orphaned) {
      const std::size_t orphan_lane =
          static_cast<std::size_t>(orphan.entry.priority);
      for (Pending& member : orphan.members) {
        try {
          member.promise.set_exception(error);
        } catch (const std::future_error&) {
        }
        ++class_stats_[orphan_lane].failed;
        outstanding_.erase(member.seq);
        ++completed_;
      }
    }
    for (auto& [pending, pending_lane] : queued) {
      try {
        pending.promise.set_exception(error);
      } catch (const std::future_error&) {
      }
      ++class_stats_[pending_lane].failed;
      outstanding_.erase(pending.seq);
      ++completed_;
    }
  }
  pool_cv_.notify_all();
  drained_cv_.notify_all();
}

void Server::scheduler_failed(std::exception_ptr error,
                              std::map<std::size_t, Pending>& inflight)
    noexcept {
  // Close FIRST: push() checks closed_ under the queue mutex, so once
  // discard() has run nothing can land in the queue behind the dead
  // scheduler — a racing submit either beat the discard (rejected below)
  // or sees kClosed and rejects its own ticket. Batches already placed on
  // replica queues are unaffected: the workers drain and resolve them.
  queue_.close();
  std::vector<std::pair<Pending, std::size_t>> queued = queue_.discard();
  for (auto& [index, pending] : inflight) {
    pending.promise.set_exception(error);
  }
  for (auto& [pending, lane] : queued) {
    pending.promise.set_exception(error);
  }
  {
    std::lock_guard lock(state_mutex_);
    failed_ = true;
    for (auto& [index, pending] : inflight) {
      ++class_stats_[static_cast<std::size_t>(pending.request.priority)]
            .failed;
      outstanding_.erase(pending.seq);
      ++completed_;
    }
    for (auto& [pending, lane] : queued) {
      ++class_stats_[lane].failed;
      outstanding_.erase(pending.seq);
      ++completed_;
    }
  }
  inflight.clear();
  drained_cv_.notify_all();
}

void Server::exec_begin(std::size_t r, Seconds predicted) {
  {
    std::lock_guard lock(watch_mutex_);
    Replica& self = *replicas_[r];
    self.exec_active = true;
    self.stall_flagged = false;
    self.exec_start = std::chrono::steady_clock::now();
    self.exec_predicted = predicted;
  }
}

void Server::exec_end(std::size_t r) {
  {
    std::lock_guard lock(watch_mutex_);
    replicas_[r]->exec_active = false;
    replicas_[r]->stall_flagged = false;
  }
  replicas_[r]->stalled_now.store(false, std::memory_order_relaxed);
}

void Server::watchdog_loop() {
  // Poll a few times per grace period; the floor keeps a zero/small grace
  // from busy-spinning.
  const auto poll = std::chrono::duration<double>(
      std::max(0.001, opt_.watchdog_grace.value * 0.25));
  std::unique_lock lock(watch_mutex_);
  for (;;) {
    watch_cv_.wait_for(lock, poll, [&] { return watch_stop_; });
    if (watch_stop_) return;
    const auto now = std::chrono::steady_clock::now();
    // One scan covers every replica's slot: two simultaneously wedged
    // replicas are two distinct stall episodes, each counted once.
    for (const auto& replica : replicas_) {
      Replica& rep = *replica;
      if (!rep.exec_active || rep.stall_flagged) continue;
      const double age = seconds_between(rep.exec_start, now);
      // The prediction is ACCELERATOR-model time — far below host wall
      // time — so the grace floor dominates the threshold by design; the
      // multiplier term only matters for genuinely enormous batches.
      const double threshold =
          opt_.watchdog_grace.value +
          opt_.watchdog_multiplier * rep.exec_predicted.value;
      if (age > threshold) {
        rep.stall_flagged = true;  // one stall episode, one count
        rep.stalled_now.store(true, std::memory_order_relaxed);
        rep.stalls.fetch_add(1, std::memory_order_relaxed);
        watchdog_stalls_.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
}

}  // namespace swat
