// Transformer encoder stack (post-LN, GELU FFN) with a pluggable attention
// backend — the host model that SWAT accelerates.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "model/attention_layer.hpp"
#include "model/layer_norm.hpp"
#include "model/linear.hpp"

namespace swat::model {

struct EncoderConfig {
  std::int64_t d_model = 768;
  std::int64_t num_heads = 12;
  std::int64_t ffn_mult = 4;
  int layers = 8;
  AttentionBackend backend = AttentionBackend::kWindowExact;
  SwatConfig swat;  ///< attention pattern + datapath parameters
  std::uint64_t weight_seed = 1;
  /// Element type of the packed weight panels every Linear in the stack
  /// streams (master weights stay fp32; fp16 rounds once at pack time).
  /// kFp32 (the default) keeps full oracle bit-parity; kFp16 halves the
  /// streamed weight bytes and is gated by the precision-fidelity budget.
  Dtype pack_dtype = Dtype::kFp32;
  /// Element type of the K/V tiles the fused attention kernel streams
  /// (kFusedStreaming only). kFp32 (the default) keeps full oracle
  /// bit-parity; kFp16 narrows the per-thread transposed K tile and V band
  /// to binary16 once per tile — halving the attention activation bytes —
  /// while scores and Z accumulate in fp32 ascending order, so outputs
  /// stay bit-deterministic and are gated by the stream-fidelity budget
  /// (eval/stream_fidelity) instead of bit-parity.
  Dtype stream_dtype = Dtype::kFp32;

  /// Longformer-base geometry on the paper's standard SWAT build.
  static EncoderConfig longformer_base(AttentionBackend backend);

  /// Reject inconsistent geometries with actionable messages
  /// (std::invalid_argument): positive d_model/num_heads with
  /// d_model % num_heads == 0, ffn_mult >= 1, layers >= 1, known
  /// pack_dtype/stream_dtype (fp16 streaming requires the fused backend),
  /// and swat.head_dim == d_model / num_heads (plus
  /// SwatConfig::validate()), so a bad config fails at
  /// construction/compile time, not rows deep into a forward pass. Called
  /// by Encoder and Engine::compile.
  void validate() const;
};

/// Per-layer activation scratch for the plan-driven encoder path. One
/// instance is shared by every layer of a stack (layers run serially and
/// each overwrites all of it); each buffer reshapes in place per batch, so
/// once bound at the high-water shape the path stops allocating.
struct EncoderLayerScratch {
  MhaWorkspace mha;
  MatrixF attn_out;    ///< attention block output, then +residual (n x d)
  MatrixF norm1_out;   ///< post-norm1 activations, FFN input (n x d)
  MatrixF ffn_hidden;  ///< GELU hidden (n x ffn_mult*d) — the largest buffer
  MatrixF ffn_out;     ///< FFN output, then +residual (n x d)

  void bind(const EncoderConfig& cfg, std::int64_t max_tokens);
  std::size_t capacity_floats() const;
};

/// The full activation arena of a compiled plan: the shared layer scratch
/// plus the two ping-pong buffers layer outputs alternate between (layer L
/// reads one, writes the other — no per-layer matrix is ever returned).
struct EncoderArena {
  EncoderLayerScratch scratch;
  MatrixF ping;
  MatrixF pong;

  void bind(const EncoderConfig& cfg, std::int64_t max_tokens);
  std::size_t capacity_floats() const;
};

/// One encoder layer: X + MHA -> LN -> + FFN -> LN (post-norm).
class EncoderLayer {
 public:
  EncoderLayer(const EncoderConfig& cfg, Rng& rng);

  MatrixF forward(const MatrixF& x) const;

  /// Batched forward over a packed ragged batch (see
  /// MultiHeadAttention::forward_batch for the offsets convention and the
  /// bit-identity guarantee). Per-sequence attention counters are added
  /// into `stats` when non-empty.
  MatrixF forward_batch(const MatrixF& x,
                        std::span<const std::int64_t> offsets,
                        std::span<AttentionStats> stats) const;

  /// Plan-driven forward_batch: bit-identical output and counters, but all
  /// intermediates live in `scratch` and the result lands in `out`
  /// (reshaped in place). `out` must not alias `x` or a scratch buffer.
  void forward_batch_into(const MatrixF& x,
                          std::span<const std::int64_t> offsets,
                          std::span<AttentionStats> stats,
                          EncoderLayerScratch& scratch, MatrixF& out) const;

  const MultiHeadAttention& attention() const { return mha_; }
  std::int64_t parameters() const;

  /// Pack every Linear weight in the layer panel-major (idempotent);
  /// returns the packed floats. See Encoder::pack_weights.
  std::size_t pack_weights() const;

  /// Adopt `proto`'s packed panels for every Linear in the layer. See
  /// Encoder::share_packs_with.
  void share_packs_with(const EncoderLayer& proto);

  /// True when every Linear's packed panels in the layer are bit-identical
  /// to `other`'s. See Encoder::packs_equal.
  bool packs_equal(const EncoderLayer& other) const;

 private:
  MultiHeadAttention mha_;
  LayerNorm norm1_;
  Linear ffn1_;
  Linear ffn2_;
  LayerNorm norm2_;
};

/// The full stack.
class Encoder {
 public:
  explicit Encoder(EncoderConfig cfg);

  /// Forward over token embeddings X (seq_len x d_model).
  MatrixF forward(const MatrixF& x) const;

  /// Batched forward: `packed` stacks the token embeddings of
  /// `offsets.size() - 1` independent sequences, sequence s occupying rows
  /// [offsets[s], offsets[s+1]). Position-independent layers (projections,
  /// FFN, LayerNorm, residuals, GELU) run over all packed rows at once;
  /// attention fans out over (sequence, head) tasks and never crosses a
  /// sequence boundary. Sequence s's output rows are bit-identical to
  /// forward() on that sequence alone, for any thread count and any batch
  /// composition — the property the serving runtime's tests assert.
  ///
  /// `per_sequence_stats` (empty, or one slot per sequence — zeroed here)
  /// receives each sequence's attention counters summed over layers, so
  /// per-request traffic stays separable from the batch total.
  MatrixF forward_batch(
      const MatrixF& packed, std::span<const std::int64_t> offsets,
      std::span<AttentionStats> per_sequence_stats = {}) const;

  /// Plan-driven batched forward: the same contract and bit-identical
  /// outputs/counters as forward_batch, but every intermediate lives in
  /// the caller's arena — layer outputs ping-pong between arena.ping and
  /// arena.pong and the returned reference points at whichever holds the
  /// final layer's output (valid until the arena is next written). The
  /// allocating forward_batch delegates here with a throwaway arena; the
  /// compiled Engine passes a persistent one, which is what makes its
  /// steady state allocation-free.
  const MatrixF& forward_batch_into(
      const MatrixF& packed, std::span<const std::int64_t> offsets,
      std::span<AttentionStats> per_sequence_stats,
      EncoderArena& arena) const;

  const EncoderConfig& config() const { return cfg_; }
  std::int64_t parameters() const;

  /// Pack every Linear weight in the stack into the panel-major layout the
  /// packed GEMM streams (idempotent — weights already packed are not
  /// repacked). Returns the total packed floats. Engine::compile calls
  /// this so the serving hot path never packs lazily; the allocating
  /// Encoder paths pack on first forward instead.
  std::size_t pack_weights() const;

  /// Adopt `proto`'s packed panel-major weights across the whole stack —
  /// the replica pool's shared read-only pack. `proto` must have the same
  /// layer geometry (same EncoderConfig shape); numerically this is only
  /// meaningful when the weights are identical too (same weight_seed),
  /// which Engine's prototype constructor enforces. Packs `proto` first if
  /// needed. Mutating weights on either encoder afterwards detaches that
  /// layer into a private pack (copy-on-write) — shared panels are never
  /// written through.
  void share_packs_with(const Encoder& proto);

  /// True when every packed panel in the stack is bit-identical to
  /// `other`'s, layer for layer (packing lazily as needed). The identity
  /// the per-node replicated packs are asserted against: two encoders
  /// built from the same config and weight_seed must compare equal no
  /// matter which thread, pool, or striping schedule packed them.
  bool packs_equal(const Encoder& other) const;

  const EncoderLayer& layer(int i) const {
    SWAT_EXPECTS(i >= 0 && i < static_cast<int>(layers_.size()));
    return *layers_[static_cast<std::size_t>(i)];
  }

  /// Total SWAT off-chip traffic accumulated over the most recent forward
  /// (zero for host backends).
  Bytes last_swat_traffic() const;

 private:
  EncoderConfig cfg_;
  std::vector<std::unique_ptr<EncoderLayer>> layers_;
};

/// GELU activation (tanh approximation), exposed for tests.
float gelu(float x);

}  // namespace swat::model
