#include "model/layer_norm.hpp"

#include "common/contracts.hpp"
#include "tensor/kernels.hpp"

namespace swat::model {

LayerNorm::LayerNorm(std::int64_t features, float eps)
    : gamma_(static_cast<std::size_t>(features), 1.0f),
      beta_(static_cast<std::size_t>(features), 0.0f), eps_(eps) {
  SWAT_EXPECTS(features > 0);
  SWAT_EXPECTS(eps > 0.0f);
}

MatrixF LayerNorm::forward(const MatrixF& x) const {
  MatrixF y;
  forward_into(x, y);
  return y;
}

void LayerNorm::forward_into(const MatrixF& x, MatrixF& out) const {
  SWAT_EXPECTS(x.cols() == static_cast<std::int64_t>(gamma_.size()));
  out.reshape(x.rows(), x.cols());
  layer_norm_into(x, gamma_, beta_, eps_, out);
}

}  // namespace swat::model
