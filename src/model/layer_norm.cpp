#include "model/layer_norm.hpp"

#include <cmath>

#include "common/contracts.hpp"

namespace swat::model {

LayerNorm::LayerNorm(std::int64_t features, float eps)
    : gamma_(static_cast<std::size_t>(features), 1.0f),
      beta_(static_cast<std::size_t>(features), 0.0f), eps_(eps) {
  SWAT_EXPECTS(features > 0);
  SWAT_EXPECTS(eps > 0.0f);
}

MatrixF LayerNorm::forward(const MatrixF& x) const {
  SWAT_EXPECTS(x.cols() == static_cast<std::int64_t>(gamma_.size()));
  MatrixF y(x.rows(), x.cols());
  for (std::int64_t i = 0; i < x.rows(); ++i) {
    auto in = x.row(i);
    auto out = y.row(i);
    double mean = 0.0;
    for (float v : in) mean += v;
    mean /= static_cast<double>(in.size());
    double var = 0.0;
    for (float v : in) {
      const double d = v - mean;
      var += d * d;
    }
    var /= static_cast<double>(in.size());
    const double inv = 1.0 / std::sqrt(var + eps_);
    for (std::size_t j = 0; j < in.size(); ++j) {
      out[j] = static_cast<float>((in[j] - mean) * inv) * gamma_[j] +
               beta_[j];
    }
  }
  return y;
}

}  // namespace swat::model
