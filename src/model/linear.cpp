#include "model/linear.hpp"

#include <cmath>

#include "tensor/kernels.hpp"

namespace swat::model {

Linear::Linear(std::int64_t in_features, std::int64_t out_features, Rng& rng)
    : weight_(out_features, in_features),
      bias_(static_cast<std::size_t>(out_features), 0.0f) {
  SWAT_EXPECTS(in_features > 0 && out_features > 0);
  const double bound =
      std::sqrt(6.0 / static_cast<double>(in_features + out_features));
  for (float& w : weight_.flat()) {
    w = static_cast<float>(rng.uniform(-bound, bound));
  }
}

MatrixF Linear::forward(const MatrixF& x) const {
  SWAT_EXPECTS(x.cols() == in_features());
  MatrixF y = matmul_nt(x, weight_);
  for (std::int64_t i = 0; i < y.rows(); ++i) {
    auto row = y.row(i);
    for (std::int64_t j = 0; j < y.cols(); ++j) {
      row[static_cast<std::size_t>(j)] += bias_[static_cast<std::size_t>(j)];
    }
  }
  return y;
}

}  // namespace swat::model
