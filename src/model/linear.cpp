#include "model/linear.hpp"

#include <cmath>

#include "tensor/kernels.hpp"

namespace swat::model {

Linear::Linear(std::int64_t in_features, std::int64_t out_features, Rng& rng,
               Dtype pack_dtype)
    : weight_(out_features, in_features),
      bias_(static_cast<std::size_t>(out_features), 0.0f),
      pack_dtype_(pack_dtype) {
  SWAT_EXPECTS(in_features > 0 && out_features > 0);
  const double bound =
      std::sqrt(6.0 / static_cast<double>(in_features + out_features));
  for (float& w : weight_.flat()) {
    w = static_cast<float>(rng.uniform(-bound, bound));
  }
}

MatrixF Linear::forward(const MatrixF& x) const {
  MatrixF y;
  forward_into(x, y);
  return y;
}

const PackedWeight& Linear::packed_weight() const {
  if (packed_dirty_ || !packed_) {
    // Detach-on-write: always build into a fresh pack. If the previous
    // pack is shared with another Linear (share_pack_with), that copy
    // stays valid and untouched — only this layer moves to the new one.
    auto fresh = std::make_shared<PackedWeight>();
    pack_weight_nt(weight_, *fresh, pack_dtype_);
    packed_ = std::move(fresh);
    packed_dirty_ = false;
  }
  return *packed_;
}

void Linear::share_pack_with(const Linear& proto) {
  SWAT_EXPECTS(&proto != this);
  SWAT_EXPECTS(proto.in_features() == in_features() &&
               proto.out_features() == out_features());
  SWAT_EXPECTS(proto.pack_dtype() == pack_dtype_ &&
               "shared weight pack dtype must match the adopting layer");
  proto.packed_weight();  // ensure the prototype's pack exists and is fresh
  packed_ = proto.packed_;
  packed_dirty_ = false;
}

void Linear::forward_into(const MatrixF& x, MatrixF& y) const {
  SWAT_EXPECTS(x.cols() == in_features());
  SWAT_EXPECTS(&y != &x);
  y.reshape(x.rows(), out_features());
  // The packed-panel GEMM streams the pre-packed weights unit-stride and
  // seeds the accumulators with the bias, so the bias add costs no extra
  // pass over y.
  gemm_packed_into(x, packed_weight(), bias_, y);
}

void Linear::forward_gelu_into(const MatrixF& x, MatrixF& y) const {
  SWAT_EXPECTS(x.cols() == in_features());
  SWAT_EXPECTS(&y != &x);
  y.reshape(x.rows(), out_features());
  gemm_packed_gelu_into(x, packed_weight(), bias_, y);
}

void Linear::forward_residual_into(const MatrixF& x, const MatrixF& residual,
                                   MatrixF& y) const {
  SWAT_EXPECTS(x.cols() == in_features());
  SWAT_EXPECTS(&y != &x && &y != &residual);
  y.reshape(x.rows(), out_features());
  gemm_packed_residual_into(x, packed_weight(), bias_, residual, y);
}

}  // namespace swat::model
