#include "model/linear.hpp"

#include <cmath>

#include "tensor/kernels.hpp"

namespace swat::model {

Linear::Linear(std::int64_t in_features, std::int64_t out_features, Rng& rng)
    : weight_(out_features, in_features),
      bias_(static_cast<std::size_t>(out_features), 0.0f) {
  SWAT_EXPECTS(in_features > 0 && out_features > 0);
  const double bound =
      std::sqrt(6.0 / static_cast<double>(in_features + out_features));
  for (float& w : weight_.flat()) {
    w = static_cast<float>(rng.uniform(-bound, bound));
  }
}

MatrixF Linear::forward(const MatrixF& x) const {
  MatrixF y;
  forward_into(x, y);
  return y;
}

void Linear::forward_into(const MatrixF& x, MatrixF& y) const {
  SWAT_EXPECTS(x.cols() == in_features());
  SWAT_EXPECTS(&y != &x);
  if (weight_t_dirty_) {
    weight_t_ = transpose(weight_);
    weight_t_dirty_ = false;
  }
  y.reshape(x.rows(), out_features());
  // The GEMM streams the cached W^T unit-stride and seeds the accumulator
  // rows with the bias, so the bias add costs no extra pass over y.
  detail::gemm(x.data(), in_features(), weight_t_.data(), out_features(),
               y.data(), out_features(), x.rows(), out_features(),
               in_features(), bias_.data(), /*parallel=*/true);
}

}  // namespace swat::model
