// Dense (fully-connected) layer for the host-side transformer model.
//
// The model stack exists so the accelerator can be exercised in situ: a
// real encoder layer produces the Q/K/V tensors SWAT consumes, rather than
// synthetic ones. Weights are float32 (the host model is the reference;
// quantization to the accelerator's datapath happens at the attention
// boundary, exactly as in the paper's system where linear layers run
// elsewhere).
#pragma once

#include <memory>

#include "common/dtype.hpp"
#include "common/rng.hpp"
#include "tensor/kernels.hpp"
#include "tensor/matrix.hpp"

namespace swat::model {

class Linear {
 public:
  /// Construct with Xavier/Glorot-uniform weights and zero bias.
  /// `pack_dtype` selects the element type of the packed panels the GEMM
  /// microkernel streams (the master weights stay fp32 — fp16 rounding
  /// happens once at pack time, see tensor/kernels.hpp).
  Linear(std::int64_t in_features, std::int64_t out_features, Rng& rng,
         Dtype pack_dtype = Dtype::kFp32);

  /// Y = X W^T + b for X: batch x in_features.
  MatrixF forward(const MatrixF& x) const;

  /// Allocation-free forward for the compiled execution plan: `y` is
  /// reshaped to batch x out_features in place (capacity retained), so
  /// repeated calls at or below y's high-water shape never allocate.
  /// Bit-identical to forward(). `y` must not alias `x`.
  void forward_into(const MatrixF& x, MatrixF& y) const;

  /// y = gelu(X W^T + b): the FFN-expand step with the activation fused
  /// into the GEMM epilogue, so the hidden buffer is written once instead
  /// of written-read-rewritten. Bit-identical to forward_into followed by
  /// gelu_into.
  void forward_gelu_into(const MatrixF& x, MatrixF& y) const;

  /// y = X W^T + b + residual: the FFN-contract step with the residual add
  /// fused into the GEMM epilogue. `residual` must be batch x out_features
  /// and may alias `x`'s storage only if it IS x (it is read per element
  /// before y's write). Bit-identical to forward_into + add_rows_into.
  void forward_residual_into(const MatrixF& x, const MatrixF& residual,
                             MatrixF& y) const;

  std::int64_t in_features() const { return weight_.cols(); }
  std::int64_t out_features() const { return weight_.rows(); }

  /// Mutable access invalidates the packed panel-major weights the GEMM
  /// microkernel streams; the pack rebuilds lazily on the next forward()
  /// (or eagerly via packed_weight(), which Engine::compile uses so the
  /// serving steady state never packs).
  MatrixF& weight() {
    packed_dirty_ = true;
    return weight_;
  }
  const MatrixF& weight() const { return weight_; }
  std::vector<float>& bias() { return bias_; }
  const std::vector<float>& bias() const { return bias_; }

  /// The panel-major packed weights (packing them first if stale). Exposed
  /// so the engine can pack every layer at compile time and introspect the
  /// packed footprint.
  const PackedWeight& packed_weight() const;

  /// Adopt `proto`'s packed panels instead of building our own — the
  /// replica pool's opt-in shared read-only pack. Preconditions: identical
  /// in/out features and pack dtype (a replica streaming panels of a
  /// different precision than it was configured for would silently change
  /// its numerics). The shared pack is immutable by construction:
  /// weight() mutation on either side detaches into a fresh private pack
  /// on the next packed_weight() (copy-on-write), never writes through the
  /// shared pointer. Packs `proto` first if it was still stale.
  void share_pack_with(const Linear& proto);

  /// True when this layer streams another layer's pack (introspection for
  /// footprint accounting and tests).
  bool pack_is_shared() const { return packed_ && packed_.use_count() > 1; }

  /// True when this layer's packed panels are bit-identical to `other`'s
  /// (packing either side first if stale; packed_weights_equal in
  /// tensor/kernels.hpp) — how per-node pack replicas assert identity
  /// under SharedPackPlacement::kReplicatedPerNode.
  bool pack_equals(const Linear& other) const {
    return packed_weights_equal(packed_weight(), other.packed_weight());
  }

  /// The element type this layer packs (and expects shared packs) in.
  Dtype pack_dtype() const { return pack_dtype_; }

  /// Parameter count (weights + biases).
  std::int64_t parameters() const {
    return weight_.size() + static_cast<std::int64_t>(bias_.size());
  }

 private:
  MatrixF weight_;  // out x in
  std::vector<float> bias_;
  // Panel-major pack of W^T streamed by gemm_packed (tensor/kernels.hpp) so
  // forward() neither re-transposes nor re-walks the row-major weight per
  // call. Held behind a shared_ptr-to-const so engine replicas can adopt
  // one read-only pack (share_pack_with); mutation always detaches into a
  // freshly built pack rather than writing through the shared pointer.
  // Rebuilt lazily after weight() mutation; forward() stays logically
  // const but is therefore not safe to call concurrently on one Linear
  // instance.
  mutable std::shared_ptr<const PackedWeight> packed_;
  mutable bool packed_dirty_ = true;
  Dtype pack_dtype_ = Dtype::kFp32;
};

}  // namespace swat::model
