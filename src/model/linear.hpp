// Dense (fully-connected) layer for the host-side transformer model.
//
// The model stack exists so the accelerator can be exercised in situ: a
// real encoder layer produces the Q/K/V tensors SWAT consumes, rather than
// synthetic ones. Weights are float32 (the host model is the reference;
// quantization to the accelerator's datapath happens at the attention
// boundary, exactly as in the paper's system where linear layers run
// elsewhere).
#pragma once

#include "common/rng.hpp"
#include "tensor/matrix.hpp"

namespace swat::model {

class Linear {
 public:
  /// Construct with Xavier/Glorot-uniform weights and zero bias.
  Linear(std::int64_t in_features, std::int64_t out_features, Rng& rng);

  /// Y = X W^T + b for X: batch x in_features.
  MatrixF forward(const MatrixF& x) const;

  /// Allocation-free forward for the compiled execution plan: `y` is
  /// reshaped to batch x out_features in place (capacity retained), so
  /// repeated calls at or below y's high-water shape never allocate.
  /// Bit-identical to forward(). `y` must not alias `x`.
  void forward_into(const MatrixF& x, MatrixF& y) const;

  std::int64_t in_features() const { return weight_.cols(); }
  std::int64_t out_features() const { return weight_.rows(); }

  /// Mutable access invalidates the cached transposed weights the GEMM
  /// streams; the cache rebuilds lazily on the next forward().
  MatrixF& weight() {
    weight_t_dirty_ = true;
    return weight_;
  }
  const MatrixF& weight() const { return weight_; }
  std::vector<float>& bias() { return bias_; }
  const std::vector<float>& bias() const { return bias_; }

  /// Parameter count (weights + biases).
  std::int64_t parameters() const {
    return weight_.size() + static_cast<std::int64_t>(bias_.size());
  }

 private:
  MatrixF weight_;  // out x in
  std::vector<float> bias_;
  // W^T cached so forward() doesn't re-transpose the constant weights per
  // call (for single-token decode the transpose costs as much as the GEMM).
  // Rebuilt lazily after weight() mutation; forward() stays logically const
  // but is therefore not safe to call concurrently on one Linear instance.
  mutable MatrixF weight_t_;  // in x out
  mutable bool weight_t_dirty_ = true;
};

}  // namespace swat::model
