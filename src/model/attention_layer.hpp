// Multi-head attention layer with a pluggable attention backend.
//
// The backend selects where the core attention computation runs:
//   * kDenseReference — host float32 dense softmax attention (oracle);
//   * kWindowExact    — host float32 exact banded attention (the algorithm
//                       SWAT implements, no hardware effects);
//   * kFusedStreaming — host float32 fused streaming attention in the
//                       paper's Eq. 1 operation order (QK -> exp -> SV in
//                       one pass, division deferred): the serving kernel.
//                       Computes directly over the packed projections —
//                       no per-head Q/K/V staging copies, no score matrix,
//                       O(window x head_dim) per-thread scratch. Pure
//                       sliding-window configs only (global/random cores
//                       and dilation are rejected at validation). Eq. 1
//                       skips the softmax max subtraction, so scaled
//                       logits must stay inside float exp range (see
//                       attention/fused.hpp); kWindowExact is the
//                       numerically-armored fallback;
//   * kSwatSimulator  — the SWAT functional simulator: each head is
//                       scheduled onto the accelerator model, including the
//                       fp16 datapath rounding and the off-chip traffic
//                       accounting.
//
// Comparing backends layer-for-layer is how the repository demonstrates
// end-to-end what replacing the GPU attention kernel with SWAT does to a
// real model's activations.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "attention/reference.hpp"
#include "model/linear.hpp"
#include "swat/config.hpp"
#include "swat/functional_sim.hpp"

namespace swat::model {

enum class AttentionBackend {
  kDenseReference,
  kWindowExact,
  kFusedStreaming,
  kSwatSimulator,
};

struct AttentionStats {
  Bytes swat_offchip_traffic;       ///< accumulated across heads (SWAT only)
  std::int64_t swat_core_loads = 0;
  std::int64_t heads_run = 0;

  AttentionStats& operator+=(const AttentionStats& o) {
    swat_offchip_traffic += o.swat_offchip_traffic;
    swat_core_loads += o.swat_core_loads;
    heads_run += o.heads_run;
    return *this;
  }
};

/// Reusable staging for one batched attention call, owned by the caller
/// (in practice: the compiled ExecutionPlan's arena). Every matrix is
/// reshaped in place per call — Matrix::reshape retains capacity, so a
/// workspace cycled at or below its high-water batch shape never
/// reallocates.
struct MhaWorkspace {
  MatrixF q;       ///< packed Q projection (rows x d_model)
  MatrixF k;       ///< packed K projection (rows x d_model)
  MatrixF v;       ///< packed V projection (rows x d_model)
  MatrixF concat;  ///< per-head outputs scattered back (rows x d_model)

  // SWAT-simulator staging: one entry per (sequence, head) task. The
  // simulator itself still allocates per-head core state internally (it is
  // a value-level model, not a serving hot path), so only the host
  // backends are allocation-free.
  std::vector<attn::HeadInput> sim_inputs;
  std::vector<FunctionalResult> sim_results;

  /// Grow every buffer to the high-water shape for `max_tokens` packed
  /// rows so subsequent calls at or below it never reallocate.
  void bind(std::int64_t max_tokens, std::int64_t d_model);

  /// Total floats currently held (introspection for plan sizing/tests).
  std::size_t capacity_floats() const;
};

class MultiHeadAttention {
 public:
  /// `swat_cfg.head_dim` must equal d_model / num_heads when the SWAT
  /// backend is selected; for the window backends the band is taken from
  /// swat_cfg's window parameters so all three backends agree on the
  /// pattern. `pack_dtype` is forwarded to all four projection Linears
  /// (the packed-panel storage type; master weights stay fp32).
  /// `stream_dtype` selects the fused kernel's streamed K/V tile precision
  /// (kFusedStreaming only — the other backends require kFp32); see
  /// attention/fused.hpp for the fp16 tile contract.
  MultiHeadAttention(std::int64_t d_model, std::int64_t num_heads,
                     AttentionBackend backend, SwatConfig swat_cfg, Rng& rng,
                     Dtype pack_dtype = Dtype::kFp32,
                     Dtype stream_dtype = Dtype::kFp32);

  /// Y = W_o . concat_heads(attend(W_q X, W_k X, W_v X)).
  MatrixF forward(const MatrixF& x) const;

  /// Batched forward over a packed ragged batch: `x` stacks the rows of
  /// `offsets.size() - 1` independent sequences, sequence s occupying rows
  /// [offsets[s], offsets[s+1]). The Q/K/V and output projections run as
  /// single GEMMs over all packed rows; attention fans the
  /// (sequence, head) tasks out over the thread pool, so a batch exposes
  /// sequences * heads -way parallelism where forward() exposes heads-way.
  ///
  /// Sequence s's output rows are bit-identical to forward() on that
  /// sequence alone, for any thread count and any batch composition (every
  /// kernel computes each output row with a fixed reduction order, and
  /// attention never crosses an offsets boundary).
  ///
  /// Per-sequence counters are *added* into `stats`. Contract:
  /// `stats.size()` must be exactly `offsets.size() - 1` (one slot per
  /// sequence) or 0 (skip per-sequence accounting) — anything else is a
  /// precondition violation (std::invalid_argument), asserted here rather
  /// than silently mis-attributing counters. last_stats() gets the batch
  /// total. Like forward(), not safe to call concurrently on one instance.
  MatrixF forward_batch(const MatrixF& x,
                        std::span<const std::int64_t> offsets,
                        std::span<AttentionStats> stats) const;

  /// Plan-driven forward_batch: identical contract and bit-identical
  /// output/counters, but all batch-level staging lives in `ws` and the
  /// result lands in `out` (reshaped in place; must alias neither x nor a
  /// workspace buffer). With a host backend and a pure-window config the
  /// call is allocation-free once ws, out, and the per-thread staging have
  /// seen the batch's high-water shape.
  void forward_batch_into(const MatrixF& x,
                          std::span<const std::int64_t> offsets,
                          std::span<AttentionStats> stats, MhaWorkspace& ws,
                          MatrixF& out) const;

  /// Statistics from the most recent forward()/forward_batch() (SWAT
  /// backend only; summed over the batch for forward_batch).
  const AttentionStats& last_stats() const { return stats_; }

  /// Pack all four projection weights panel-major (idempotent) and return
  /// the total packed floats — Engine::compile calls this so serving never
  /// packs lazily on the hot path.
  std::size_t pack_weights() const;

  /// Adopt `proto`'s packed projection panels (shared read-only pack for
  /// engine replicas). Projections must have identical shapes; see
  /// Linear::share_pack_with for the copy-on-write mutation contract.
  void share_packs_with(const MultiHeadAttention& proto);

  /// True when all four projections' packed panels are bit-identical to
  /// `other`'s (Linear::pack_equals).
  bool packs_equal(const MultiHeadAttention& other) const;

  AttentionBackend backend() const { return backend_; }
  Dtype stream_dtype() const { return stream_dtype_; }
  std::int64_t num_heads() const { return num_heads_; }
  std::int64_t head_dim() const { return d_model_ / num_heads_; }
  std::int64_t parameters() const;

 private:
  /// Host-side backends only (dense / window-exact); the SWAT backend goes
  /// through FunctionalSimulator::run_heads_into so the per-head fan-out
  /// and the stats live in one place per backend. `z` is the caller's
  /// (thread-local) staging matrix, reshaped in place.
  void attend_one_head_into(const attn::HeadInput& head, MatrixF& z) const;

  std::int64_t d_model_;
  std::int64_t num_heads_;
  AttentionBackend backend_;
  Dtype stream_dtype_;
  SwatConfig swat_cfg_;
  std::optional<FunctionalSimulator> sim_;
  Linear wq_;
  Linear wk_;
  Linear wv_;
  Linear wo_;
  mutable AttentionStats stats_;
};

}  // namespace swat::model
