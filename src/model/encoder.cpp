#include "model/encoder.hpp"

#include <string>

#include "tensor/kernels.hpp"

namespace swat::model {

EncoderConfig EncoderConfig::longformer_base(AttentionBackend backend) {
  EncoderConfig cfg;
  cfg.d_model = 768;
  cfg.num_heads = 12;
  cfg.ffn_mult = 4;
  cfg.layers = 8;
  cfg.backend = backend;
  cfg.swat = SwatConfig::longformer_512();
  return cfg;
}

void EncoderConfig::validate() const {
  const auto fail = [](const std::string& what) {
    throw std::invalid_argument("EncoderConfig: " + what);
  };
  if (d_model < 1) {
    fail("d_model must be >= 1, got " + std::to_string(d_model));
  }
  if (num_heads < 1) {
    fail("num_heads must be >= 1, got " + std::to_string(num_heads));
  }
  if (d_model % num_heads != 0) {
    fail("d_model (" + std::to_string(d_model) +
         ") must be divisible by num_heads (" + std::to_string(num_heads) +
         ") — every head needs an equal slice of the model width");
  }
  if (ffn_mult < 1) {
    fail("ffn_mult must be >= 1, got " + std::to_string(ffn_mult) +
         " — the FFN hidden width is ffn_mult * d_model");
  }
  if (layers < 1) {
    fail("layers must be >= 1, got " + std::to_string(layers));
  }
  if (pack_dtype != Dtype::kFp32 && pack_dtype != Dtype::kFp16) {
    fail("pack_dtype must be Dtype::kFp32 or Dtype::kFp16, got enum value " +
         std::to_string(static_cast<int>(pack_dtype)) +
         " — the packed GEMM streams fp32 or fp16 panels only");
  }
  if (stream_dtype != Dtype::kFp32 && stream_dtype != Dtype::kFp16) {
    fail("stream_dtype must be Dtype::kFp32 or Dtype::kFp16, got enum "
         "value " + std::to_string(static_cast<int>(stream_dtype)) +
         " — the fused attention kernel streams fp32 or fp16 K/V tiles "
         "only");
  }
  if (stream_dtype == Dtype::kFp16 &&
      backend != AttentionBackend::kFusedStreaming) {
    fail("stream_dtype = Dtype::kFp16 requires backend = kFusedStreaming — "
         "only the fused streaming kernel has a half-precision tile path; "
         "pick that backend or keep stream_dtype = Dtype::kFp32");
  }
  if (swat.head_dim != d_model / num_heads) {
    fail("swat.head_dim (" + std::to_string(swat.head_dim) +
         ") must equal d_model / num_heads (" +
         std::to_string(d_model / num_heads) +
         ") — the attention cores are sized per head slice");
  }
  if (backend == AttentionBackend::kFusedStreaming &&
      (swat.global_cores != 0 || swat.random_cores != 0 ||
       swat.window_dilation != 1)) {
    fail("the fused streaming backend computes the pure sliding-window "
         "pattern only (got global_cores=" + std::to_string(swat.global_cores) +
         ", random_cores=" + std::to_string(swat.random_cores) +
         ", window_dilation=" + std::to_string(swat.window_dilation) +
         ") — pattern-augmented configs need kWindowExact or kSwatSimulator");
  }
  swat.validate();  // core partition / dilation / clock consistency
}

float gelu(float x) { return swat::gelu(x); }

void EncoderLayerScratch::bind(const EncoderConfig& cfg,
                               std::int64_t max_tokens) {
  SWAT_EXPECTS(max_tokens >= 0);
  mha.bind(max_tokens, cfg.d_model);
  attn_out.reshape(max_tokens, cfg.d_model);
  norm1_out.reshape(max_tokens, cfg.d_model);
  ffn_hidden.reshape(max_tokens, cfg.d_model * cfg.ffn_mult);
  ffn_out.reshape(max_tokens, cfg.d_model);
}

std::size_t EncoderLayerScratch::capacity_floats() const {
  return mha.capacity_floats() +
         static_cast<std::size_t>(attn_out.size() + norm1_out.size() +
                                  ffn_hidden.size() + ffn_out.size());
}

void EncoderArena::bind(const EncoderConfig& cfg, std::int64_t max_tokens) {
  scratch.bind(cfg, max_tokens);
  ping.reshape(max_tokens, cfg.d_model);
  pong.reshape(max_tokens, cfg.d_model);
}

std::size_t EncoderArena::capacity_floats() const {
  return scratch.capacity_floats() +
         static_cast<std::size_t>(ping.size() + pong.size());
}

EncoderLayer::EncoderLayer(const EncoderConfig& cfg, Rng& rng)
    : mha_(cfg.d_model, cfg.num_heads, cfg.backend, cfg.swat, rng,
           cfg.pack_dtype, cfg.stream_dtype),
      norm1_(cfg.d_model),
      ffn1_(cfg.d_model, cfg.d_model * cfg.ffn_mult, rng, cfg.pack_dtype),
      ffn2_(cfg.d_model * cfg.ffn_mult, cfg.d_model, rng, cfg.pack_dtype),
      norm2_(cfg.d_model) {}

MatrixF EncoderLayer::forward(const MatrixF& x) const {
  if (x.rows() == 0) return x;  // empty in, empty out (see MHA::forward)
  const std::int64_t offsets[2] = {0, x.rows()};
  return forward_batch(x, offsets, {});
}

MatrixF EncoderLayer::forward_batch(const MatrixF& x,
                                    std::span<const std::int64_t> offsets,
                                    std::span<AttentionStats> stats) const {
  EncoderLayerScratch scratch;
  MatrixF out;
  forward_batch_into(x, offsets, stats, scratch, out);
  return out;
}

void EncoderLayer::forward_batch_into(const MatrixF& x,
                                      std::span<const std::int64_t> offsets,
                                      std::span<AttentionStats> stats,
                                      EncoderLayerScratch& s,
                                      MatrixF& out) const {
  SWAT_EXPECTS(&out != &x);
  // Attention block with residual, post-norm. Attention is the only
  // sequence-aware stage; everything below operates row-wise or
  // element-wise on the packed matrix and so is batch-agnostic.
  mha_.forward_batch_into(x, offsets, stats, s.mha, s.attn_out);
  add_rows_into(s.attn_out, x, s.attn_out);
  norm1_.forward_into(s.attn_out, s.norm1_out);

  // FFN block with residual, post-norm. Both halves run with their
  // elementwise tail fused into the GEMM epilogue: the hidden buffer
  // (n x ffn_mult*d_model, the layer's largest activation) is written once
  // already GELU'd instead of written-read-rewritten, and the contract GEMM
  // adds the residual while each output element is still in a register.
  // Bit-identical to the unfused forward_into + gelu_into/add_rows_into
  // sequence this replaced.
  ffn1_.forward_gelu_into(s.norm1_out, s.ffn_hidden);
  ffn2_.forward_residual_into(s.ffn_hidden, s.norm1_out, s.ffn_out);
  norm2_.forward_into(s.ffn_out, out);
}

std::int64_t EncoderLayer::parameters() const {
  return mha_.parameters() + norm1_.parameters() + ffn1_.parameters() +
         ffn2_.parameters() + norm2_.parameters();
}

std::size_t EncoderLayer::pack_weights() const {
  return mha_.pack_weights() + ffn1_.packed_weight().floats() +
         ffn2_.packed_weight().floats();
}

void EncoderLayer::share_packs_with(const EncoderLayer& proto) {
  mha_.share_packs_with(proto.mha_);
  ffn1_.share_pack_with(proto.ffn1_);
  ffn2_.share_pack_with(proto.ffn2_);
}

bool EncoderLayer::packs_equal(const EncoderLayer& other) const {
  return mha_.packs_equal(other.mha_) && ffn1_.pack_equals(other.ffn1_) &&
         ffn2_.pack_equals(other.ffn2_);
}

Encoder::Encoder(EncoderConfig cfg) : cfg_(std::move(cfg)) {
  cfg_.validate();
  Rng rng(cfg_.weight_seed);
  for (int l = 0; l < cfg_.layers; ++l) {
    layers_.push_back(std::make_unique<EncoderLayer>(cfg_, rng));
  }
}

MatrixF Encoder::forward(const MatrixF& x) const {
  SWAT_EXPECTS(x.cols() == cfg_.d_model);
  if (x.rows() == 0) return x;  // empty in, empty out
  const std::int64_t offsets[2] = {0, x.rows()};
  return forward_batch(x, offsets, {});
}

MatrixF Encoder::forward_batch(
    const MatrixF& packed, std::span<const std::int64_t> offsets,
    std::span<AttentionStats> per_sequence_stats) const {
  EncoderArena arena;
  const MatrixF& out =
      forward_batch_into(packed, offsets, per_sequence_stats, arena);
  // The result lives in one of the throwaway arena's ping-pong buffers;
  // move it out instead of copying.
  return &out == &arena.ping ? std::move(arena.ping) : std::move(arena.pong);
}

const MatrixF& Encoder::forward_batch_into(
    const MatrixF& packed, std::span<const std::int64_t> offsets,
    std::span<AttentionStats> per_sequence_stats, EncoderArena& arena) const {
  SWAT_EXPECTS(packed.cols() == cfg_.d_model);
  SWAT_EXPECTS(&packed != &arena.ping && &packed != &arena.pong);
  for (AttentionStats& s : per_sequence_stats) s = AttentionStats{};
  // Layers are sequentially dependent, so the sweep itself stays serial;
  // the parallelism lives inside each layer (per-sequence-per-head
  // attention tasks, GEMM row blocks over all packed rows, elementwise
  // passes). Layer L reads the previous layer's output from one ping-pong
  // buffer and writes the other; no layer output is ever materialized into
  // a fresh matrix.
  const MatrixF* in = &packed;
  MatrixF* out = &arena.ping;
  for (const auto& layer : layers_) {
    layer->forward_batch_into(*in, offsets, per_sequence_stats,
                              arena.scratch, *out);
    in = out;
    out = (out == &arena.ping) ? &arena.pong : &arena.ping;
  }
  return *in;
}

std::int64_t Encoder::parameters() const {
  std::int64_t p = 0;
  for (const auto& layer : layers_) p += layer->parameters();
  return p;
}

std::size_t Encoder::pack_weights() const {
  std::size_t floats = 0;
  for (const auto& layer : layers_) floats += layer->pack_weights();
  return floats;
}

void Encoder::share_packs_with(const Encoder& proto) {
  SWAT_EXPECTS(layers_.size() == proto.layers_.size());
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    layers_[l]->share_packs_with(*proto.layers_[l]);
  }
}

bool Encoder::packs_equal(const Encoder& other) const {
  if (layers_.size() != other.layers_.size()) return false;
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    if (!layers_[l]->packs_equal(*other.layers_[l])) return false;
  }
  return true;
}

Bytes Encoder::last_swat_traffic() const {
  Bytes total;
  for (const auto& layer : layers_) {
    total += layer->attention().last_stats().swat_offchip_traffic;
  }
  return total;
}

}  // namespace swat::model
