#include "model/encoder.hpp"

#include <cmath>
#include <numbers>

#include "common/thread_pool.hpp"

namespace swat::model {

namespace {

constexpr std::int64_t kElemGrain = 1 << 14;

/// out[i] += add[i] over the whole matrix, fanned out over the pool.
void residual_add(MatrixF& out, const MatrixF& add) {
  auto a = out.flat();
  auto in = add.flat();
  parallel_for(0, static_cast<std::int64_t>(a.size()), kElemGrain,
               [&](std::int64_t b, std::int64_t e) {
                 for (std::int64_t i = b; i < e; ++i) {
                   a[static_cast<std::size_t>(i)] +=
                       in[static_cast<std::size_t>(i)];
                 }
               });
}

}  // namespace

EncoderConfig EncoderConfig::longformer_base(AttentionBackend backend) {
  EncoderConfig cfg;
  cfg.d_model = 768;
  cfg.num_heads = 12;
  cfg.ffn_mult = 4;
  cfg.layers = 8;
  cfg.backend = backend;
  cfg.swat = SwatConfig::longformer_512();
  return cfg;
}

float gelu(float x) {
  const float c = std::sqrt(2.0f / std::numbers::pi_v<float>);
  return 0.5f * x * (1.0f + std::tanh(c * (x + 0.044715f * x * x * x)));
}

EncoderLayer::EncoderLayer(const EncoderConfig& cfg, Rng& rng)
    : mha_(cfg.d_model, cfg.num_heads, cfg.backend, cfg.swat, rng),
      norm1_(cfg.d_model),
      ffn1_(cfg.d_model, cfg.d_model * cfg.ffn_mult, rng),
      ffn2_(cfg.d_model * cfg.ffn_mult, cfg.d_model, rng),
      norm2_(cfg.d_model) {}

MatrixF EncoderLayer::forward(const MatrixF& x) const {
  if (x.rows() == 0) return x;  // empty in, empty out (see MHA::forward)
  const std::int64_t offsets[2] = {0, x.rows()};
  return forward_batch(x, offsets, {});
}

MatrixF EncoderLayer::forward_batch(const MatrixF& x,
                                    std::span<const std::int64_t> offsets,
                                    std::span<AttentionStats> stats) const {
  // Attention block with residual, post-norm. Attention is the only
  // sequence-aware stage; everything below operates row-wise or
  // element-wise on the packed matrix and so is batch-agnostic.
  MatrixF attn_out = mha_.forward_batch(x, offsets, stats);
  residual_add(attn_out, x);
  const MatrixF h = norm1_.forward(attn_out);

  // FFN block with residual, post-norm. The GELU is the largest elementwise
  // pass in the layer (n x 4*d_model activations), so it fans out too.
  MatrixF f = ffn1_.forward(h);
  {
    auto fv = f.flat();
    parallel_for(0, static_cast<std::int64_t>(fv.size()), kElemGrain,
                 [&](std::int64_t b, std::int64_t e) {
                   for (std::int64_t i = b; i < e; ++i) {
                     auto& v = fv[static_cast<std::size_t>(i)];
                     v = gelu(v);
                   }
                 });
  }
  MatrixF f2 = ffn2_.forward(f);
  residual_add(f2, h);
  return norm2_.forward(f2);
}

std::int64_t EncoderLayer::parameters() const {
  return mha_.parameters() + norm1_.parameters() + ffn1_.parameters() +
         ffn2_.parameters() + norm2_.parameters();
}

Encoder::Encoder(EncoderConfig cfg) : cfg_(std::move(cfg)) {
  SWAT_EXPECTS(cfg_.layers >= 1);
  Rng rng(cfg_.weight_seed);
  for (int l = 0; l < cfg_.layers; ++l) {
    layers_.push_back(std::make_unique<EncoderLayer>(cfg_, rng));
  }
}

MatrixF Encoder::forward(const MatrixF& x) const {
  SWAT_EXPECTS(x.cols() == cfg_.d_model);
  if (x.rows() == 0) return x;  // empty in, empty out
  const std::int64_t offsets[2] = {0, x.rows()};
  return forward_batch(x, offsets, {});
}

MatrixF Encoder::forward_batch(
    const MatrixF& packed, std::span<const std::int64_t> offsets,
    std::span<AttentionStats> per_sequence_stats) const {
  SWAT_EXPECTS(packed.cols() == cfg_.d_model);
  for (AttentionStats& s : per_sequence_stats) s = AttentionStats{};
  // Layers are sequentially dependent, so the sweep itself stays serial;
  // the parallelism lives inside each layer (per-sequence-per-head
  // attention tasks, GEMM row blocks over all packed rows, elementwise
  // passes).
  MatrixF h = packed;
  for (const auto& layer : layers_) {
    h = layer->forward_batch(h, offsets, per_sequence_stats);
  }
  return h;
}

std::int64_t Encoder::parameters() const {
  std::int64_t p = 0;
  for (const auto& layer : layers_) p += layer->parameters();
  return p;
}

Bytes Encoder::last_swat_traffic() const {
  Bytes total;
  for (const auto& layer : layers_) {
    total += layer->attention().last_stats().swat_offchip_traffic;
  }
  return total;
}

}  // namespace swat::model
