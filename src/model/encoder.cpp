#include "model/encoder.hpp"

#include <cmath>
#include <numbers>

namespace swat::model {

EncoderConfig EncoderConfig::longformer_base(AttentionBackend backend) {
  EncoderConfig cfg;
  cfg.d_model = 768;
  cfg.num_heads = 12;
  cfg.ffn_mult = 4;
  cfg.layers = 8;
  cfg.backend = backend;
  cfg.swat = SwatConfig::longformer_512();
  return cfg;
}

float gelu(float x) {
  const float c = std::sqrt(2.0f / std::numbers::pi_v<float>);
  return 0.5f * x * (1.0f + std::tanh(c * (x + 0.044715f * x * x * x)));
}

EncoderLayer::EncoderLayer(const EncoderConfig& cfg, Rng& rng)
    : mha_(cfg.d_model, cfg.num_heads, cfg.backend, cfg.swat, rng),
      norm1_(cfg.d_model),
      ffn1_(cfg.d_model, cfg.d_model * cfg.ffn_mult, rng),
      ffn2_(cfg.d_model * cfg.ffn_mult, cfg.d_model, rng),
      norm2_(cfg.d_model) {}

MatrixF EncoderLayer::forward(const MatrixF& x) const {
  // Attention block with residual, post-norm.
  MatrixF attn_out = mha_.forward(x);
  {
    auto a = attn_out.flat();
    auto in = x.flat();
    for (std::size_t i = 0; i < a.size(); ++i) a[i] += in[i];
  }
  const MatrixF h = norm1_.forward(attn_out);

  // FFN block with residual, post-norm.
  MatrixF f = ffn1_.forward(h);
  for (float& v : f.flat()) v = gelu(v);
  MatrixF f2 = ffn2_.forward(f);
  {
    auto a = f2.flat();
    auto in = h.flat();
    for (std::size_t i = 0; i < a.size(); ++i) a[i] += in[i];
  }
  return norm2_.forward(f2);
}

std::int64_t EncoderLayer::parameters() const {
  return mha_.parameters() + norm1_.parameters() + ffn1_.parameters() +
         ffn2_.parameters() + norm2_.parameters();
}

Encoder::Encoder(EncoderConfig cfg) : cfg_(std::move(cfg)) {
  SWAT_EXPECTS(cfg_.layers >= 1);
  Rng rng(cfg_.weight_seed);
  for (int l = 0; l < cfg_.layers; ++l) {
    layers_.push_back(std::make_unique<EncoderLayer>(cfg_, rng));
  }
}

MatrixF Encoder::forward(const MatrixF& x) const {
  SWAT_EXPECTS(x.cols() == cfg_.d_model);
  MatrixF h = x;
  for (const auto& layer : layers_) {
    h = layer->forward(h);
  }
  return h;
}

std::int64_t Encoder::parameters() const {
  std::int64_t p = 0;
  for (const auto& layer : layers_) p += layer->parameters();
  return p;
}

Bytes Encoder::last_swat_traffic() const {
  Bytes total;
  for (const auto& layer : layers_) {
    total += layer->attention().last_stats().swat_offchip_traffic;
  }
  return total;
}

}  // namespace swat::model
