#include "model/attention_layer.hpp"

#include <cmath>

#include "attention/fused.hpp"
#include "attention/window.hpp"
#include "common/thread_pool.hpp"
#include "tensor/kernels.hpp"

namespace swat::model {

void MhaWorkspace::bind(std::int64_t max_tokens, std::int64_t d_model) {
  SWAT_EXPECTS(max_tokens >= 0 && d_model >= 1);
  q.reshape(max_tokens, d_model);
  k.reshape(max_tokens, d_model);
  v.reshape(max_tokens, d_model);
  concat.reshape(max_tokens, d_model);
}

std::size_t MhaWorkspace::capacity_floats() const {
  std::size_t total = static_cast<std::size_t>(q.size() + k.size() +
                                               v.size() + concat.size());
  for (const attn::HeadInput& in : sim_inputs) {
    total += static_cast<std::size_t>(in.q.size() + in.k.size() +
                                      in.v.size());
  }
  for (const FunctionalResult& res : sim_results) {
    total += static_cast<std::size_t>(res.z.size());
  }
  return total;
}

MultiHeadAttention::MultiHeadAttention(std::int64_t d_model,
                                       std::int64_t num_heads,
                                       AttentionBackend backend,
                                       SwatConfig swat_cfg, Rng& rng,
                                       Dtype pack_dtype, Dtype stream_dtype)
    : d_model_(d_model), num_heads_(num_heads), backend_(backend),
      stream_dtype_(stream_dtype), swat_cfg_(std::move(swat_cfg)),
      wq_(d_model, d_model, rng, pack_dtype),
      wk_(d_model, d_model, rng, pack_dtype),
      wv_(d_model, d_model, rng, pack_dtype),
      wo_(d_model, d_model, rng, pack_dtype) {
  SWAT_EXPECTS(d_model > 0 && num_heads > 0);
  SWAT_EXPECTS(d_model % num_heads == 0);
  swat_cfg_.validate();
  SWAT_EXPECTS(swat_cfg_.head_dim == d_model / num_heads);
  // The fused streaming kernel computes the pure sliding-window pattern
  // only; a pattern-augmented config must pick a backend that honors it.
  SWAT_EXPECTS(backend_ != AttentionBackend::kFusedStreaming ||
               (swat_cfg_.global_cores == 0 && swat_cfg_.random_cores == 0 &&
                swat_cfg_.window_dilation == 1));
  // Only the fused streaming kernel has a streamed-tile dtype knob; the
  // other backends compute in fp32 and must say so.
  SWAT_EXPECTS(stream_dtype_ == Dtype::kFp32 ||
               backend_ == AttentionBackend::kFusedStreaming);
  if (backend_ == AttentionBackend::kSwatSimulator) {
    sim_.emplace(swat_cfg_);
  }
}

std::int64_t MultiHeadAttention::parameters() const {
  return wq_.parameters() + wk_.parameters() + wv_.parameters() +
         wo_.parameters();
}

std::size_t MultiHeadAttention::pack_weights() const {
  return wq_.packed_weight().floats() + wk_.packed_weight().floats() +
         wv_.packed_weight().floats() + wo_.packed_weight().floats();
}

void MultiHeadAttention::share_packs_with(const MultiHeadAttention& proto) {
  wq_.share_pack_with(proto.wq_);
  wk_.share_pack_with(proto.wk_);
  wv_.share_pack_with(proto.wv_);
  wo_.share_pack_with(proto.wo_);
}

bool MultiHeadAttention::packs_equal(const MultiHeadAttention& other) const {
  return wq_.pack_equals(other.wq_) && wk_.pack_equals(other.wk_) &&
         wv_.pack_equals(other.wv_) && wo_.pack_equals(other.wo_);
}

void MultiHeadAttention::attend_one_head_into(const attn::HeadInput& head,
                                              MatrixF& z) const {
  switch (backend_) {
    case AttentionBackend::kDenseReference:
      attn::dense_attention_into(head, z);
      return;
    case AttentionBackend::kWindowExact: {
      // The exact algorithm SWAT realizes, float32 on the host. For the
      // pattern-augmented configs (global/random) fall back to the masked
      // oracle so all backends agree on the attended set. Pattern
      // construction allocates, which is why the strict zero-allocation
      // guarantee covers pure-window configs (the serving setup) only.
      if (swat_cfg_.global_cores == 0 && swat_cfg_.random_cores == 0 &&
          swat_cfg_.window_dilation == 1) {
        attn::band_attention_into(head, swat_cfg_.window_before(),
                                  swat_cfg_.window_after(), z);
        return;
      }
      const attn::AttentionPattern pattern(
          swat_cfg_.pattern_spec(head.seq_len()));
      attn::masked_attention_into(head, pattern, z);
      return;
    }
    case AttentionBackend::kFusedStreaming:
    case AttentionBackend::kSwatSimulator:
      break;  // handled batch-wise in forward_batch_into
  }
  SWAT_ENSURES(false);
}

MatrixF MultiHeadAttention::forward(const MatrixF& x) const {
  SWAT_EXPECTS(x.cols() == d_model_);
  if (x.rows() == 0) {
    // Nothing to attend. forward_batch requires non-empty sequences, so
    // preserve the historical single-sequence behaviour here.
    stats_ = AttentionStats{};
    if (backend_ != AttentionBackend::kSwatSimulator) {
      stats_.heads_run = num_heads_;
    }
    return MatrixF(0, d_model_);
  }
  const std::int64_t offsets[2] = {0, x.rows()};
  return forward_batch(x, offsets, {});
}

namespace {

/// Per-thread staging buffers for one (sequence, head) attention task.
/// Reusing one HeadInput (and one attend-output matrix) per worker keeps
/// the batched hot path allocation-free after warmup (Matrix::reshape
/// retains capacity). Safe because each task runs entirely on one thread
/// and the attention kernels do not retain references past their return.
attn::HeadInput& tls_head_staging() {
  thread_local attn::HeadInput in;
  return in;
}

MatrixF& tls_head_output() {
  thread_local MatrixF z;
  return z;
}

}  // namespace

MatrixF MultiHeadAttention::forward_batch(
    const MatrixF& x, std::span<const std::int64_t> offsets,
    std::span<AttentionStats> stats) const {
  MhaWorkspace ws;
  MatrixF out;
  forward_batch_into(x, offsets, stats, ws, out);
  return out;
}

void MultiHeadAttention::forward_batch_into(
    const MatrixF& x, std::span<const std::int64_t> offsets,
    std::span<AttentionStats> stats, MhaWorkspace& ws, MatrixF& out) const {
  SWAT_EXPECTS(x.cols() == d_model_);
  SWAT_EXPECTS(offsets.size() >= 2);
  const std::int64_t nseq = static_cast<std::int64_t>(offsets.size()) - 1;
  SWAT_EXPECTS(offsets.front() == 0 && offsets.back() == x.rows());
  for (std::int64_t s = 0; s < nseq; ++s) {
    SWAT_EXPECTS(offsets[static_cast<std::size_t>(s)] <
                 offsets[static_cast<std::size_t>(s + 1)]);
  }
  // The stats contract: exactly one slot per sequence, or none at all.
  // Anything else would silently mis-attribute per-request counters.
  SWAT_EXPECTS(stats.empty() ||
               static_cast<std::int64_t>(stats.size()) == nseq);
  const std::int64_t h = head_dim();
  stats_ = AttentionStats{};

  // Projections run over the whole packed batch: one GEMM spanning every
  // sequence's rows instead of one GEMM per sequence, so the row-block
  // fan-out sees nseq-times more rows. Each output row depends only on its
  // own input row, so packed rows are bit-identical to per-sequence calls.
  wq_.forward_into(x, ws.q);
  wk_.forward_into(x, ws.k);
  wv_.forward_into(x, ws.v);
  const MatrixF& q = ws.q;
  const MatrixF& k = ws.k;
  const MatrixF& v = ws.v;

  // The 1/sqrt(h) scaling folds into Q (the convention the attention
  // kernels in this repository assume).
  const float scale = 1.0f / std::sqrt(static_cast<float>(h));
  const std::int64_t tasks = nseq * num_heads_;
  const auto seg_of = [&](std::int64_t task) { return task / num_heads_; };
  const auto head_of = [&](std::int64_t task) { return task % num_heads_; };

  const auto slice_task = [&](std::int64_t task, attn::HeadInput& in) {
    const std::int64_t row0 = offsets[static_cast<std::size_t>(seg_of(task))];
    const std::int64_t n =
        offsets[static_cast<std::size_t>(seg_of(task) + 1)] - row0;
    const std::int64_t base = head_of(task) * h;
    in.q.reshape(n, h);
    in.k.reshape(n, h);
    in.v.reshape(n, h);
    for (std::int64_t i = 0; i < n; ++i) {
      for (std::int64_t d = 0; d < h; ++d) {
        in.q(i, d) = q(row0 + i, base + d) * scale;
        in.k(i, d) = k(row0 + i, base + d);
        in.v(i, d) = v(row0 + i, base + d);
      }
    }
  };

  ws.concat.reshape(x.rows(), d_model_);
  MatrixF& concat = ws.concat;
  const auto scatter = [&](std::int64_t task, const MatrixF& z) {
    const std::int64_t row0 = offsets[static_cast<std::size_t>(seg_of(task))];
    const std::int64_t base = head_of(task) * h;
    for (std::int64_t i = 0; i < z.rows(); ++i) {
      for (std::int64_t d = 0; d < h; ++d) {
        concat(row0 + i, base + d) = z(i, d);
      }
    }
  };

  if (backend_ == AttentionBackend::kSwatSimulator) {
    // The simulator allocates per-head core state internally anyway, so the
    // batch path stages every task's input up front and reuses the
    // run_heads fan-out. Counters reduce per sequence in head order — the
    // same association order as a serial per-sequence run, so totals are
    // thread-count- and batch-composition-invariant.
    ws.sim_inputs.resize(static_cast<std::size_t>(tasks));
    parallel_for(0, tasks, 1, [&](std::int64_t t0, std::int64_t t1) {
      for (std::int64_t t = t0; t < t1; ++t) {
        slice_task(t, ws.sim_inputs[static_cast<std::size_t>(t)]);
      }
    });
    ws.sim_results.resize(static_cast<std::size_t>(tasks));
    sim_->run_heads_into(ws.sim_inputs, ws.sim_results);
    for (std::int64_t t = 0; t < tasks; ++t) {
      const FunctionalResult& res = ws.sim_results[static_cast<std::size_t>(t)];
      scatter(t, res.z);
      AttentionStats one;
      one.swat_offchip_traffic = res.total_read() + res.z_bytes_written;
      one.swat_core_loads = res.window_core_loads + res.global_core_loads +
                            res.random_core_loads;
      one.heads_run = 1;
      if (!stats.empty()) stats[static_cast<std::size_t>(seg_of(t))] += one;
      stats_ += one;
    }
  } else {
    if (backend_ == AttentionBackend::kFusedStreaming) {
      // The serving kernel: no per-head staging, no score matrix. Every
      // (sequence, head) task streams QK -> exp -> SV (Eq. 1) directly
      // over its contiguous head slice of the packed projections and
      // writes the head output in place into concat; the per-thread
      // scratch is O(window x head_dim).
      attn::fused_window_attention_batch_into(
          q, k, v, offsets, num_heads_, swat_cfg_.window_before(),
          swat_cfg_.window_after(), scale, concat, stream_dtype_);
    } else {
      // Host backends: each (sequence, head) task slices into the
      // worker's thread-local staging, attends into the worker's
      // thread-local output, and scatters into its disjoint block of the
      // packed concat matrix.
      parallel_for(0, tasks, 1, [&](std::int64_t t0, std::int64_t t1) {
        for (std::int64_t t = t0; t < t1; ++t) {
          attn::HeadInput& in = tls_head_staging();
          slice_task(t, in);
          MatrixF& z = tls_head_output();
          attend_one_head_into(in, z);
          scatter(t, z);
        }
      });
    }
    for (std::int64_t s = 0; s < nseq; ++s) {
      AttentionStats one;
      one.heads_run = num_heads_;
      if (!stats.empty()) stats[static_cast<std::size_t>(s)] += one;
      stats_ += one;
    }
  }
  wo_.forward_into(concat, out);
}

}  // namespace swat::model
