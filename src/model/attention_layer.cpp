#include "model/attention_layer.hpp"

#include <cmath>
#include <vector>

#include "attention/window.hpp"
#include "common/thread_pool.hpp"
#include "tensor/kernels.hpp"

namespace swat::model {

MultiHeadAttention::MultiHeadAttention(std::int64_t d_model,
                                       std::int64_t num_heads,
                                       AttentionBackend backend,
                                       SwatConfig swat_cfg, Rng& rng)
    : d_model_(d_model), num_heads_(num_heads), backend_(backend),
      swat_cfg_(std::move(swat_cfg)), wq_(d_model, d_model, rng),
      wk_(d_model, d_model, rng), wv_(d_model, d_model, rng),
      wo_(d_model, d_model, rng) {
  SWAT_EXPECTS(d_model > 0 && num_heads > 0);
  SWAT_EXPECTS(d_model % num_heads == 0);
  swat_cfg_.validate();
  SWAT_EXPECTS(swat_cfg_.head_dim == d_model / num_heads);
  if (backend_ == AttentionBackend::kSwatSimulator) {
    sim_.emplace(swat_cfg_);
  }
}

std::int64_t MultiHeadAttention::parameters() const {
  return wq_.parameters() + wk_.parameters() + wv_.parameters() +
         wo_.parameters();
}

MatrixF MultiHeadAttention::attend_one_head(
    const attn::HeadInput& head) const {
  switch (backend_) {
    case AttentionBackend::kDenseReference:
      return attn::dense_attention(head);
    case AttentionBackend::kWindowExact: {
      // The exact algorithm SWAT realizes, float32 on the host. For the
      // pattern-augmented configs (global/random) fall back to the masked
      // oracle so all backends agree on the attended set.
      if (swat_cfg_.global_cores == 0 && swat_cfg_.random_cores == 0 &&
          swat_cfg_.window_dilation == 1) {
        return attn::band_attention(head, swat_cfg_.window_before(),
                                    swat_cfg_.window_after());
      }
      const attn::AttentionPattern pattern(
          swat_cfg_.pattern_spec(head.seq_len()));
      return attn::masked_attention(head, pattern);
    }
    case AttentionBackend::kSwatSimulator:
      break;  // handled via FunctionalSimulator::run_heads in forward()
  }
  SWAT_ENSURES(false);
  return {};
}

MatrixF MultiHeadAttention::forward(const MatrixF& x) const {
  SWAT_EXPECTS(x.cols() == d_model_);
  const std::int64_t n = x.rows();
  const std::int64_t h = head_dim();
  stats_ = AttentionStats{};

  const MatrixF q = wq_.forward(x);
  const MatrixF k = wk_.forward(x);
  const MatrixF v = wv_.forward(x);

  // Per-head slices; the 1/sqrt(h) scaling folds into Q (the convention the
  // attention kernels in this repository assume). Slicing fans out over the
  // thread pool (each head fills its own HeadInput).
  const float scale = 1.0f / std::sqrt(static_cast<float>(h));
  std::vector<attn::HeadInput> inputs(static_cast<std::size_t>(num_heads_));
  parallel_for(0, num_heads_, 1, [&](std::int64_t h0, std::int64_t h1) {
    for (std::int64_t head = h0; head < h1; ++head) {
      attn::HeadInput& in = inputs[static_cast<std::size_t>(head)];
      in.q = MatrixF(n, h);
      in.k = MatrixF(n, h);
      in.v = MatrixF(n, h);
      const std::int64_t base = head * h;
      for (std::int64_t i = 0; i < n; ++i) {
        for (std::int64_t d = 0; d < h; ++d) {
          in.q(i, d) = q(i, base + d) * scale;
          in.k(i, d) = k(i, base + d);
          in.v(i, d) = v(i, base + d);
        }
      }
    }
  });

  // Heads are independent; both backends fan the per-head work out over
  // the pool. Stats reduce in head order afterwards, so the totals match a
  // serial run.
  MatrixF concat(n, d_model_);
  const auto scatter = [&](std::int64_t head, const MatrixF& z) {
    const std::int64_t base = head * h;
    for (std::int64_t i = 0; i < n; ++i) {
      for (std::int64_t d = 0; d < h; ++d) {
        concat(i, base + d) = z(i, d);
      }
    }
  };
  if (backend_ == AttentionBackend::kSwatSimulator) {
    const std::vector<FunctionalResult> results = sim_->run_heads(inputs);
    for (std::int64_t head = 0; head < num_heads_; ++head) {
      const FunctionalResult& res = results[static_cast<std::size_t>(head)];
      scatter(head, res.z);
      stats_.swat_offchip_traffic += res.total_read() + res.z_bytes_written;
      stats_.swat_core_loads += res.window_core_loads +
                                res.global_core_loads +
                                res.random_core_loads;
      ++stats_.heads_run;
    }
  } else {
    parallel_for(0, num_heads_, 1, [&](std::int64_t h0, std::int64_t h1) {
      for (std::int64_t head = h0; head < h1; ++head) {
        scatter(head, attend_one_head(inputs[static_cast<std::size_t>(head)]));
      }
    });
    stats_.heads_run = num_heads_;
  }
  return wo_.forward(concat);
}

}  // namespace swat::model
