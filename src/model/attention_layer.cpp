#include "model/attention_layer.hpp"

#include <cmath>
#include <vector>

#include "attention/window.hpp"
#include "common/thread_pool.hpp"
#include "tensor/kernels.hpp"

namespace swat::model {

MultiHeadAttention::MultiHeadAttention(std::int64_t d_model,
                                       std::int64_t num_heads,
                                       AttentionBackend backend,
                                       SwatConfig swat_cfg, Rng& rng)
    : d_model_(d_model), num_heads_(num_heads), backend_(backend),
      swat_cfg_(std::move(swat_cfg)), wq_(d_model, d_model, rng),
      wk_(d_model, d_model, rng), wv_(d_model, d_model, rng),
      wo_(d_model, d_model, rng) {
  SWAT_EXPECTS(d_model > 0 && num_heads > 0);
  SWAT_EXPECTS(d_model % num_heads == 0);
  swat_cfg_.validate();
  SWAT_EXPECTS(swat_cfg_.head_dim == d_model / num_heads);
  if (backend_ == AttentionBackend::kSwatSimulator) {
    sim_.emplace(swat_cfg_);
  }
}

std::int64_t MultiHeadAttention::parameters() const {
  return wq_.parameters() + wk_.parameters() + wv_.parameters() +
         wo_.parameters();
}

MatrixF MultiHeadAttention::attend_one_head(
    const attn::HeadInput& head) const {
  switch (backend_) {
    case AttentionBackend::kDenseReference:
      return attn::dense_attention(head);
    case AttentionBackend::kWindowExact: {
      // The exact algorithm SWAT realizes, float32 on the host. For the
      // pattern-augmented configs (global/random) fall back to the masked
      // oracle so all backends agree on the attended set.
      if (swat_cfg_.global_cores == 0 && swat_cfg_.random_cores == 0 &&
          swat_cfg_.window_dilation == 1) {
        return attn::band_attention(head, swat_cfg_.window_before(),
                                    swat_cfg_.window_after());
      }
      const attn::AttentionPattern pattern(
          swat_cfg_.pattern_spec(head.seq_len()));
      return attn::masked_attention(head, pattern);
    }
    case AttentionBackend::kSwatSimulator:
      break;  // handled via FunctionalSimulator::run_heads in forward()
  }
  SWAT_ENSURES(false);
  return {};
}

MatrixF MultiHeadAttention::forward(const MatrixF& x) const {
  SWAT_EXPECTS(x.cols() == d_model_);
  if (x.rows() == 0) {
    // Nothing to attend. forward_batch requires non-empty sequences, so
    // preserve the historical single-sequence behaviour here.
    stats_ = AttentionStats{};
    if (backend_ != AttentionBackend::kSwatSimulator) {
      stats_.heads_run = num_heads_;
    }
    return MatrixF(0, d_model_);
  }
  const std::int64_t offsets[2] = {0, x.rows()};
  return forward_batch(x, offsets, {});
}

namespace {

/// Per-thread staging buffers for one (sequence, head) attention task.
/// Reusing one HeadInput per worker keeps the batched hot path
/// allocation-free after warmup (Matrix::reshape retains capacity). Safe
/// because each task runs entirely on one thread and the attention kernels
/// do not retain references past their return.
attn::HeadInput& tls_head_staging() {
  thread_local attn::HeadInput in;
  return in;
}

}  // namespace

MatrixF MultiHeadAttention::forward_batch(
    const MatrixF& x, std::span<const std::int64_t> offsets,
    std::span<AttentionStats> stats) const {
  SWAT_EXPECTS(x.cols() == d_model_);
  SWAT_EXPECTS(offsets.size() >= 2);
  const std::int64_t nseq = static_cast<std::int64_t>(offsets.size()) - 1;
  SWAT_EXPECTS(offsets.front() == 0 && offsets.back() == x.rows());
  for (std::int64_t s = 0; s < nseq; ++s) {
    SWAT_EXPECTS(offsets[static_cast<std::size_t>(s)] <
                 offsets[static_cast<std::size_t>(s + 1)]);
  }
  SWAT_EXPECTS(stats.empty() ||
               static_cast<std::int64_t>(stats.size()) == nseq);
  const std::int64_t h = head_dim();
  stats_ = AttentionStats{};

  // Projections run over the whole packed batch: one GEMM spanning every
  // sequence's rows instead of one GEMM per sequence, so the row-block
  // fan-out sees nseq-times more rows. Each output row depends only on its
  // own input row, so packed rows are bit-identical to per-sequence calls.
  const MatrixF q = wq_.forward(x);
  const MatrixF k = wk_.forward(x);
  const MatrixF v = wv_.forward(x);

  // The 1/sqrt(h) scaling folds into Q (the convention the attention
  // kernels in this repository assume).
  const float scale = 1.0f / std::sqrt(static_cast<float>(h));
  const std::int64_t tasks = nseq * num_heads_;
  const auto seg_of = [&](std::int64_t task) { return task / num_heads_; };
  const auto head_of = [&](std::int64_t task) { return task % num_heads_; };

  const auto slice_task = [&](std::int64_t task, attn::HeadInput& in) {
    const std::int64_t row0 = offsets[static_cast<std::size_t>(seg_of(task))];
    const std::int64_t n =
        offsets[static_cast<std::size_t>(seg_of(task) + 1)] - row0;
    const std::int64_t base = head_of(task) * h;
    in.q.reshape(n, h);
    in.k.reshape(n, h);
    in.v.reshape(n, h);
    for (std::int64_t i = 0; i < n; ++i) {
      for (std::int64_t d = 0; d < h; ++d) {
        in.q(i, d) = q(row0 + i, base + d) * scale;
        in.k(i, d) = k(row0 + i, base + d);
        in.v(i, d) = v(row0 + i, base + d);
      }
    }
  };

  MatrixF concat(x.rows(), d_model_);
  const auto scatter = [&](std::int64_t task, const MatrixF& z) {
    const std::int64_t row0 = offsets[static_cast<std::size_t>(seg_of(task))];
    const std::int64_t base = head_of(task) * h;
    for (std::int64_t i = 0; i < z.rows(); ++i) {
      for (std::int64_t d = 0; d < h; ++d) {
        concat(row0 + i, base + d) = z(i, d);
      }
    }
  };

  if (backend_ == AttentionBackend::kSwatSimulator) {
    // The simulator allocates per-head core state internally anyway, so the
    // batch path stages every task's input up front and reuses the
    // run_heads fan-out. Counters reduce per sequence in head order — the
    // same association order as a serial per-sequence run, so totals are
    // thread-count- and batch-composition-invariant.
    std::vector<attn::HeadInput> inputs(static_cast<std::size_t>(tasks));
    parallel_for(0, tasks, 1, [&](std::int64_t t0, std::int64_t t1) {
      for (std::int64_t t = t0; t < t1; ++t) {
        slice_task(t, inputs[static_cast<std::size_t>(t)]);
      }
    });
    std::vector<FunctionalResult> results(static_cast<std::size_t>(tasks));
    sim_->run_heads_into(inputs, results);
    for (std::int64_t t = 0; t < tasks; ++t) {
      const FunctionalResult& res = results[static_cast<std::size_t>(t)];
      scatter(t, res.z);
      AttentionStats one;
      one.swat_offchip_traffic = res.total_read() + res.z_bytes_written;
      one.swat_core_loads = res.window_core_loads + res.global_core_loads +
                            res.random_core_loads;
      one.heads_run = 1;
      if (!stats.empty()) stats[static_cast<std::size_t>(seg_of(t))] += one;
      stats_ += one;
    }
  } else {
    // Host backends: each (sequence, head) task slices into the worker's
    // thread-local staging, attends, and scatters into its disjoint block
    // of the packed concat matrix.
    parallel_for(0, tasks, 1, [&](std::int64_t t0, std::int64_t t1) {
      for (std::int64_t t = t0; t < t1; ++t) {
        attn::HeadInput& in = tls_head_staging();
        slice_task(t, in);
        scatter(t, attend_one_head(in));
      }
    });
    for (std::int64_t s = 0; s < nseq; ++s) {
      AttentionStats one;
      one.heads_run = num_heads_;
      if (!stats.empty()) stats[static_cast<std::size_t>(s)] += one;
      stats_ += one;
    }
  }
  return wo_.forward(concat);
}

}  // namespace swat::model
