// Row-wise layer normalization with learnable affine parameters.
#pragma once

#include "tensor/matrix.hpp"

namespace swat::model {

class LayerNorm {
 public:
  explicit LayerNorm(std::int64_t features, float eps = 1e-5f);

  /// Normalize each row of x to zero mean / unit variance, then apply the
  /// per-feature affine (gamma, beta).
  MatrixF forward(const MatrixF& x) const;

  /// Allocation-free forward for the compiled execution plan: `out` is
  /// reshaped in place (capacity retained) and may alias `x` (row-wise
  /// in-place). Bit-identical to forward().
  void forward_into(const MatrixF& x, MatrixF& out) const;

  std::vector<float>& gamma() { return gamma_; }
  std::vector<float>& beta() { return beta_; }

  std::int64_t parameters() const {
    return static_cast<std::int64_t>(gamma_.size() + beta_.size());
  }

 private:
  std::vector<float> gamma_;
  std::vector<float> beta_;
  float eps_;
};

}  // namespace swat::model
