#!/usr/bin/env python3
"""Documentation consistency checks (run by the CI docs job).

1. Every relative markdown link in README.md, docs/*.md and
   examples/README.md must resolve to an existing file or directory.
2. Every src/<subsystem>/ directory must be mentioned in
   docs/ARCHITECTURE.md — the architecture map may not silently go stale
   when a subsystem is added.

Exits non-zero with one line per violation.
"""

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

# [text](target) — excluding images is unnecessary; they must resolve too.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def doc_files():
    files = [REPO / "README.md", REPO / "examples" / "README.md"]
    files += sorted((REPO / "docs").glob("*.md"))
    return [f for f in files if f.exists()]


def check_links(errors):
    for doc in doc_files():
        for target in LINK_RE.findall(doc.read_text(encoding="utf-8")):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            path = target.split("#", 1)[0]
            if not path:
                continue
            resolved = (doc.parent / path).resolve()
            if not resolved.exists():
                errors.append(
                    f"{doc.relative_to(REPO)}: broken link -> {target}")


def check_architecture_mentions(errors):
    arch = REPO / "docs" / "ARCHITECTURE.md"
    if not arch.exists():
        errors.append("docs/ARCHITECTURE.md is missing")
        return
    text = arch.read_text(encoding="utf-8")
    for sub in sorted(p.name for p in (REPO / "src").iterdir() if p.is_dir()):
        if f"src/{sub}" not in text:
            errors.append(
                f"docs/ARCHITECTURE.md: subsystem src/{sub}/ is not mentioned")


def main():
    errors = []
    check_links(errors)
    check_architecture_mentions(errors)
    for e in errors:
        print(f"error: {e}", file=sys.stderr)
    if not errors:
        print(f"docs OK: {len(doc_files())} files checked, "
              "all links resolve, architecture map covers src/")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
