#!/usr/bin/env python3
"""Documentation consistency checks (run by the CI docs job).

1. Every relative markdown link in README.md, docs/*.md and
   examples/README.md must resolve to an existing file or directory.
2. Every src/<subsystem>/ directory must be mentioned in
   docs/ARCHITECTURE.md — the architecture map may not silently go stale
   when a subsystem is added.
3. The public API of the serving front-end (src/runtime/server.hpp: every
   top-level type and every public method of Server) must be mentioned in
   docs/ARCHITECTURE.md — doc drift on the new subsystem fails CI like a
   missing subsystem does.
4. The public API of the kernel layer (src/tensor/kernels.hpp: every
   top-level type and every free function declared at namespace scope,
   excluding namespace detail) must be mentioned in docs/ARCHITECTURE.md —
   the packed-GEMM/fusion surface is the serving hot path and its docs may
   not go stale either.
5. The overload/observability surface — src/runtime/stats.hpp (SLO
   classes, per-class counters, health snapshot) and
   src/common/fault_injection.hpp (every top-level type and every public
   method of FaultInjector) — must be mentioned in docs/ARCHITECTURE.md:
   the failure semantics are a documented contract, same as the serving
   API itself.
6. The compiled-engine surface (src/runtime/engine.hpp: every top-level
   type and every public method of Engine and ExecutionPlan) must be
   mentioned in docs/ARCHITECTURE.md — the plan/execute split and the
   packed-weight footprint accessors (the precision knob's observable
   surface) are documented contracts too.
7. The placement/topology surface (src/common/topology.hpp: top-level
   types, free functions, CpuSet's public methods; plus the server's
   placement/shared_pack_placement/stream_dtype knobs, Topology's
   node_cpus/node_of helpers, and the per-replica
   core_group/pinned_threads/pack_node stats fields) must be mentioned in
   docs/ARCHITECTURE.md — replica placement is a behavioral contract
   (kShared stays bit-identical, kPartitioned matches solo oracles) and
   its docs may not drift.
8. The fused attention surface (src/attention/fused.hpp: every top-level
   type and every free function declared at namespace scope) must be
   mentioned in docs/ARCHITECTURE.md — the streamed-tile kernel and its
   kv-stream pricing helper are the serving hot path's attention
   contract.

Exits non-zero with one line per violation.
"""

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

# [text](target) — excluding images is unnecessary; they must resolve too.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def doc_files():
    files = [REPO / "README.md", REPO / "examples" / "README.md"]
    files += sorted((REPO / "docs").glob("*.md"))
    return [f for f in files if f.exists()]


def check_links(errors):
    for doc in doc_files():
        for target in LINK_RE.findall(doc.read_text(encoding="utf-8")):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            path = target.split("#", 1)[0]
            if not path:
                continue
            resolved = (doc.parent / path).resolve()
            if not resolved.exists():
                errors.append(
                    f"{doc.relative_to(REPO)}: broken link -> {target}")


def check_architecture_mentions(errors):
    arch = REPO / "docs" / "ARCHITECTURE.md"
    if not arch.exists():
        errors.append("docs/ARCHITECTURE.md is missing")
        return
    text = arch.read_text(encoding="utf-8")
    for sub in sorted(p.name for p in (REPO / "src").iterdir() if p.is_dir()):
        if f"src/{sub}" not in text:
            errors.append(
                f"docs/ARCHITECTURE.md: subsystem src/{sub}/ is not mentioned")


TYPE_RE = re.compile(r"^(?:class|struct|enum class)\s+(\w+)", re.MULTILINE)
METHOD_RE = re.compile(r"^\s+(?:[\w:<>&*~,\s]+\s)?(\w+)\(")
CPP_KEYWORDS = {"if", "while", "for", "switch", "return", "sizeof",
                "static_cast", "operator"}


def class_public_methods(text, class_name):
    """Public method names of `class_name` in a header's text."""
    names = set()
    in_class, public = False, False
    depth = 0
    for line in text.splitlines():
        if re.match(rf"^class {class_name}\b", line):
            in_class = True  # class access defaults to private
            public = False
        if not in_class:
            continue
        if re.match(r"^\s*public:", line):
            public = True
        elif re.match(r"^\s*(private|protected):", line):
            public = False
        elif public and depth == 1:
            # Braces are counted AFTER matching, so declaration lines sit
            # at depth 1 while the lines of an inline method body sit at
            # depth >= 2 — a call inside a body is not a declaration.
            m = METHOD_RE.match(line)
            if m:
                name = m.group(1)
                if name not in CPP_KEYWORDS and not name.startswith("~") \
                        and name != class_name:
                    names.add(name)
        depth += line.count("{") - line.count("}")
        if depth <= 0 and "};" in line and in_class:
            break
    return names


def server_public_api(header):
    """Top-level type names + public method names of class Server."""
    text = header.read_text(encoding="utf-8")
    names = set(TYPE_RE.findall(text))
    names |= class_public_methods(text, "Server")
    return sorted(names)


# A free-function declaration at column 0: return type then name(. Multi-line
# parameter lists are fine — the name and '(' sit on the first line.
FREE_FUNC_RE = re.compile(r"^(?:[\w:<>,&*\s]+?[\s&*])(\w+)\(")


def kernels_public_api(header):
    """Top-level type names + namespace-scope free functions of kernels.hpp.

    Tracks brace depth so class members and the contents of namespace
    detail (implementation surface, not public API) are excluded. The
    header's own style — declarations start at column 0, type names on the
    same line as the '(' — is what makes this regex approach sound.
    """
    text = header.read_text(encoding="utf-8")
    names = set(TYPE_RE.findall(text))

    depth = 0           # brace depth, 0 = file scope
    detail_depth = None  # depth at which `namespace detail {` opened
    for line in text.splitlines():
        stripped = line.split("//", 1)[0]
        opens_detail = re.match(r"^namespace\s+detail\b", stripped)
        at_namespace_scope = (
            depth <= 1 and detail_depth is None and not opens_detail)
        if at_namespace_scope and not line.startswith((" ", "\t", "}", "#")):
            m = FREE_FUNC_RE.match(stripped)
            if m and m.group(1) not in CPP_KEYWORDS:
                names.add(m.group(1))
        if opens_detail:
            detail_depth = depth
        depth += stripped.count("{") - stripped.count("}")
        if detail_depth is not None and depth <= detail_depth:
            detail_depth = None
    return sorted(names)


def check_kernels_api_mentions(errors):
    header = REPO / "src" / "tensor" / "kernels.hpp"
    arch = REPO / "docs" / "ARCHITECTURE.md"
    if not header.exists():
        errors.append("src/tensor/kernels.hpp is missing")
        return
    if not arch.exists():
        return  # reported by check_architecture_mentions
    text = arch.read_text(encoding="utf-8")
    for name in kernels_public_api(header):
        if not re.search(rf"\b{re.escape(name)}\b", text):
            errors.append(
                "docs/ARCHITECTURE.md: kernels.hpp public API "
                f"`{name}` is not documented")


def check_resilience_api_mentions(errors):
    """stats.hpp and fault_injection.hpp public APIs must be documented."""
    arch = REPO / "docs" / "ARCHITECTURE.md"
    if not arch.exists():
        return  # reported by check_architecture_mentions
    text = arch.read_text(encoding="utf-8")

    stats = REPO / "src" / "runtime" / "stats.hpp"
    if not stats.exists():
        errors.append("src/runtime/stats.hpp is missing")
    else:
        # Same shape as kernels.hpp: top-level types + column-0 free
        # functions (to_string overloads and friends).
        for name in kernels_public_api(stats):
            if not re.search(rf"\b{re.escape(name)}\b", text):
                errors.append(
                    "docs/ARCHITECTURE.md: stats.hpp public API "
                    f"`{name}` is not documented")

    fault = REPO / "src" / "common" / "fault_injection.hpp"
    if not fault.exists():
        errors.append("src/common/fault_injection.hpp is missing")
    else:
        fault_text = fault.read_text(encoding="utf-8")
        names = set(TYPE_RE.findall(fault_text))
        names |= class_public_methods(fault_text, "FaultInjector")
        for name in sorted(names):
            if not re.search(rf"\b{re.escape(name)}\b", text):
                errors.append(
                    "docs/ARCHITECTURE.md: fault_injection.hpp public API "
                    f"`{name}` is not documented")


def check_engine_api_mentions(errors):
    """engine.hpp top-level types + Engine/ExecutionPlan public methods."""
    header = REPO / "src" / "runtime" / "engine.hpp"
    arch = REPO / "docs" / "ARCHITECTURE.md"
    if not header.exists():
        errors.append("src/runtime/engine.hpp is missing")
        return
    if not arch.exists():
        return  # reported by check_architecture_mentions
    text = arch.read_text(encoding="utf-8")
    header_text = header.read_text(encoding="utf-8")
    names = set(TYPE_RE.findall(header_text))
    names |= class_public_methods(header_text, "Engine")
    names |= class_public_methods(header_text, "ExecutionPlan")
    for name in sorted(names):
        if not re.search(rf"\b{re.escape(name)}\b", text):
            errors.append(
                "docs/ARCHITECTURE.md: engine.hpp public API "
                f"`{name}` is not documented")


def check_topology_api_mentions(errors):
    """topology.hpp types, free functions and CpuSet methods, plus the
    placement surface the server exposes on top of them (the ServerOptions
    field and the ReplicaStats fields), must be documented."""
    header = REPO / "src" / "common" / "topology.hpp"
    arch = REPO / "docs" / "ARCHITECTURE.md"
    if not header.exists():
        errors.append("src/common/topology.hpp is missing")
        return
    if not arch.exists():
        return  # reported by check_architecture_mentions
    text = arch.read_text(encoding="utf-8")
    header_text = header.read_text(encoding="utf-8")
    # Top-level types + column-0 free functions (discover_topology,
    # pin_current_thread, ...), same shape as kernels.hpp.
    names = set(kernels_public_api(header))
    names |= class_public_methods(header_text, "CpuSet")
    # Placement knobs live in server.hpp/stats.hpp as plain fields (and
    # node_cpus/node_of as Topology struct methods), which the type/method
    # scrapers don't see — pin them by name.
    names |= {"placement", "core_group", "pinned_threads",
              "stream_dtype", "shared_pack_placement", "pack_node",
              "node_cpus", "node_of"}
    for name in sorted(names):
        if not re.search(rf"\b{re.escape(name)}\b", text):
            errors.append(
                "docs/ARCHITECTURE.md: placement/topology API "
                f"`{name}` is not documented")


def check_fused_api_mentions(errors):
    """fused.hpp top-level types + namespace-scope free functions must be
    documented — same scrape shape as kernels.hpp (declarations start at
    column 0, names on the same line as the '(')."""
    header = REPO / "src" / "attention" / "fused.hpp"
    arch = REPO / "docs" / "ARCHITECTURE.md"
    if not header.exists():
        errors.append("src/attention/fused.hpp is missing")
        return
    if not arch.exists():
        return  # reported by check_architecture_mentions
    text = arch.read_text(encoding="utf-8")
    for name in kernels_public_api(header):
        if not re.search(rf"\b{re.escape(name)}\b", text):
            errors.append(
                "docs/ARCHITECTURE.md: fused.hpp public API "
                f"`{name}` is not documented")


def check_server_api_mentions(errors):
    header = REPO / "src" / "runtime" / "server.hpp"
    arch = REPO / "docs" / "ARCHITECTURE.md"
    if not header.exists():
        errors.append("src/runtime/server.hpp is missing")
        return
    if not arch.exists():
        return  # reported by check_architecture_mentions
    text = arch.read_text(encoding="utf-8")
    for name in server_public_api(header):
        # Word-bounded: 'submit' must not pass on the strength of
        # 'submitters', nor 'drain' on 'drained'.
        if not re.search(rf"\b{re.escape(name)}\b", text):
            errors.append(
                "docs/ARCHITECTURE.md: server.hpp public API "
                f"`{name}` is not documented")


def main():
    errors = []
    check_links(errors)
    check_architecture_mentions(errors)
    check_server_api_mentions(errors)
    check_kernels_api_mentions(errors)
    check_resilience_api_mentions(errors)
    check_engine_api_mentions(errors)
    check_topology_api_mentions(errors)
    check_fused_api_mentions(errors)
    for e in errors:
        print(f"error: {e}", file=sys.stderr)
    if not errors:
        print(f"docs OK: {len(doc_files())} files checked, "
              "all links resolve, architecture map covers src/, "
              "server, kernel, engine, stats, fault-injection, "
              "placement/topology and fused-attention APIs documented")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
