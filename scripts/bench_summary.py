#!/usr/bin/env python3
"""Merge BENCH_*.json artifacts into one markdown trajectory table.

Every bench in this repository emits a machine-readable JSON file
(BENCH_kernels.json, BENCH_runtime.json, BENCH_server.json, ...). Each file
follows the same loose shape: top-level scalars describing the workload,
plus one or more arrays of flat objects (the measurement arms). This tool
renders them all into a single report so the CI "Show bench results" step
(and anyone comparing artifacts across PRs) reads one table instead of raw
JSON:

  * a headline table — one row per bench file with its throughput-style
    metrics (any numeric field matching *_per_s / *speedup* / *_ms), so the
    perf trajectory of the repo is visible at a glance;
  * per-bench sections — the top-level scalars, then each measurement
    array as a markdown table.

Usage: bench_summary.py [BENCH_a.json ...]   (default: BENCH_*.json in cwd)
Exits non-zero if any named file is missing or unparsable; a run with no
bench files at all is an error too (the step exists so the trajectory
cannot silently go empty).
"""

import json
import sys
from pathlib import Path

# gflops covers the kernel microbench's per-arm throughput columns
# (gflops_naive / gflops_blocked_*), so the packed-GEMM and fused-attention
# arms land in the headline table alongside their speedups. _gbps is the
# effective weight-stream bandwidth column (weight_bytes / kernel time) the
# packed-GEMM arms report — the number the fp16 pack halves the demand for.
HEADLINE_MARKERS = ("_per_s", "speedup", "_ms", "_rps", "_tps", "gflops",
                    "_gbps")


def is_number(value):
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def fmt(value):
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4g}"
    return str(value)


def table(headers, rows):
    lines = ["| " + " | ".join(headers) + " |",
             "|" + "|".join("---" for _ in headers) + "|"]
    for row in rows:
        lines.append("| " + " | ".join(row) + " |")
    return "\n".join(lines)


def arm_label(arm):
    """A human row label from an arm's non-numeric fields (mode, threads...)."""
    parts = []
    for key, value in arm.items():
        if not is_number(value):
            parts.append(f"{key}={value}")
        elif key in ("threads", "intensity_rel", "batch_size", "replicas"):
            parts.append(f"{key}={fmt(value)}")
    return ", ".join(parts) if parts else "-"


def headline_rows(name, data):
    """(bench, arm, metric, value) rows for throughput-style numbers."""
    rows = []
    arrays = {k: v for k, v in data.items()
              if isinstance(v, list) and v and all(
                  isinstance(e, dict) for e in v)}
    for arr in arrays.values():
        for arm in arr:
            for key, value in arm.items():
                if is_number(value) and any(
                        m in key for m in HEADLINE_MARKERS):
                    rows.append((name, arm_label(arm), key, fmt(value)))
    for key, value in data.items():
        if is_number(value) and any(m in key for m in HEADLINE_MARKERS):
            rows.append((name, "-", key, fmt(value)))
    return rows


def placement_rows(name, data):
    """(bench, placement, replicas, speedup) rows: best goodput_speedup per
    placement policy, so shared vs partitioned scaling is one glance. Arms
    from bench files that predate the placement field group under "-"."""
    best = {}
    for value in data.values():
        if not (isinstance(value, list) and value
                and all(isinstance(e, dict) for e in value)):
            continue
        for arm in value:
            speedup = arm.get("goodput_speedup")
            if not is_number(speedup):
                continue
            placement = arm.get("placement", "-")
            prev = best.get(placement)
            if prev is None or speedup > prev[0]:
                best[placement] = (speedup, arm.get("replicas", "-"))
    return [(name, placement, fmt(replicas), fmt(speedup))
            for placement, (speedup, replicas) in sorted(best.items())]


def render(files):
    benches = []
    for path in files:
        with path.open(encoding="utf-8") as fh:
            benches.append((path.name, json.load(fh)))

    out = ["# Bench trajectory", ""]
    headline = []
    for name, data in benches:
        headline += headline_rows(name, data)
    if headline:
        out.append(table(("bench", "arm", "metric", "value"),
                         [list(r) for r in headline]))
        out.append("")

    placement = []
    for name, data in benches:
        placement += placement_rows(name, data)
    if placement:
        out.append("## Replica scaling by placement (best goodput_speedup)")
        out.append("")
        out.append(table(("bench", "placement", "replicas", "speedup"),
                         [list(r) for r in placement]))
        out.append("")

    for name, data in benches:
        out.append(f"## {name}")
        out.append("")
        scalars = [(k, fmt(v)) for k, v in data.items()
                   if not isinstance(v, (list, dict))]
        if scalars:
            out.append(table(("field", "value"), [list(s) for s in scalars]))
            out.append("")
        for key, value in data.items():
            if (isinstance(value, list) and value
                    and all(isinstance(e, dict) for e in value)):
                cols = []
                for entry in value:
                    for col in entry:
                        if col not in cols:
                            cols.append(col)
                rows = [[fmt(entry.get(c, "")) for c in cols]
                        for entry in value]
                out.append(f"### {key}")
                out.append("")
                out.append(table(cols, rows))
                out.append("")
    return "\n".join(out)


def main(argv):
    if len(argv) > 1:
        files = [Path(a) for a in argv[1:]]
        missing = [f for f in files if not f.exists()]
        if missing:
            for f in missing:
                print(f"error: no such bench artifact: {f}", file=sys.stderr)
            return 1
    else:
        files = sorted(Path.cwd().glob("BENCH_*.json"))
    if not files:
        print("error: no BENCH_*.json artifacts found", file=sys.stderr)
        return 1
    try:
        print(render(files))
    except (json.JSONDecodeError, OSError) as err:
        print(f"error: {err}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
