// BigBird on SWAT: the parameterized design of paper §4.1 / Fig. 7.
//
// Configures the 192-window + 192-random + 128-global core split (the
// paper's BigBird build), validates the functional output against the
// masked-attention oracle, and shows the LOAD-stage latency increase that
// the pipeline absorbs, plus the dual-pipeline variant.
#include <iostream>

#include "attention/reference.hpp"
#include "eval/table.hpp"
#include "swat/analytic.hpp"
#include "swat/functional_sim.hpp"
#include "swat/resource_model.hpp"
#include "swat/stage_latency.hpp"
#include "tensor/kernels.hpp"

int main() {
  using swat::eval::Table;
  const swat::SwatConfig cfg = swat::SwatConfig::bigbird_512();
  std::cout << "BigBird-configured SWAT: " << cfg.summary() << "\n\n";

  // --- The static pattern the cores realize.
  const std::int64_t seq_len = 2048;
  const swat::attn::AttentionPattern pattern(cfg.pattern_spec(seq_len));
  std::cout << "Pattern for " << seq_len << " tokens:\n"
            << "  attended pairs : " << pattern.nnz() << "\n"
            << "  mask density   : " << pattern.density() * 100.0 << "%\n"
            << "  global tokens  : " << pattern.global_tokens().size()
            << "\n\n";

  // --- Functional validation against the masked oracle.
  swat::Rng rng(11);
  const auto head = swat::attn::random_head_input(seq_len, cfg.head_dim, rng);
  const auto res = swat::FunctionalSimulator(cfg).run(head);
  const auto oracle = swat::attn::masked_attention(head, pattern);
  std::cout << "Functional check vs masked fp32 oracle: max |err| = "
            << swat::max_abs_diff(res.z, oracle) << "\n";
  std::cout << "K/V loads — window: " << res.window_core_loads
            << " (once per row), global: " << res.global_core_loads
            << " (pre-loaded), random: " << res.random_core_loads
            << " (refreshed per row)\n\n";

  // --- §4.1: LOAD grows 66 -> 195 cycles, II stays 201.
  const auto window_lat =
      swat::stage_latencies(swat::SwatConfig::longformer_512());
  const auto bigbird_lat = swat::stage_latencies(cfg);
  Table t({"design", "LOAD (cycles)", "pipeline II (cycles)"});
  t.add_row({"pure window", std::to_string(window_lat.load.count),
             std::to_string(
                 swat::row_interval(swat::SwatConfig::longformer_512())
                     .count)});
  t.add_row({"BigBird", std::to_string(bigbird_lat.load.count),
             std::to_string(swat::row_interval(cfg).count)});
  t.print(std::cout);
  std::cout << "\nThe dynamic K/V gathering of random-attention cores "
               "triples the LOAD stage,\nbut the QK stage (201 cycles) still "
               "bounds the pipeline: zero throughput cost.\n\n";

  // --- Dual-pipeline build (Table 2 row 3): two heads in flight.
  const swat::SwatConfig dual = swat::SwatConfig::bigbird_dual_512();
  const swat::AnalyticModel single_model(cfg);
  const swat::AnalyticModel dual_model(dual);
  const auto u1 = swat::table2_utilization(cfg);
  const auto u2 = swat::table2_utilization(dual);
  Table d({"design", "12x8 heads @ 4096", "DSP", "LUT", "BRAM"});
  d.add_row({"1 pipeline",
             Table::ms(single_model.model_time(4096, 12, 8).value),
             std::to_string(u1.dsp_pct) + "%",
             std::to_string(u1.lut_pct) + "%",
             std::to_string(u1.bram_pct) + "%"});
  d.add_row({"2 pipelines", Table::ms(dual_model.model_time(4096, 12, 8).value),
             std::to_string(u2.dsp_pct) + "%",
             std::to_string(u2.lut_pct) + "%",
             std::to_string(u2.bram_pct) + "%"});
  d.print(std::cout);
  std::cout << "\nDoubling pipelines halves model latency at 2x the fabric —\n"
               "the scaling knob Table 2's third row demonstrates.\n";
  return 0;
}
