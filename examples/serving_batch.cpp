// Batched multi-request serving through swat::Runtime.
//
// Eight users submit encoder requests of different lengths at once. The
// runtime length-buckets them, packs each bucket into one ragged batch (no
// padding), runs the batches through the encoder with every attention head
// routed through the SWAT functional simulator, and hands back per-request
// outputs and counters — bit-identical to serving each request alone, but
// with the position-independent layers running as whole-batch GEMMs and
// the attention (request, head) tasks fanned out over the thread pool.
//
//   $ ./serving_batch
//
// What to look at:
//   * requests land in batches by length class (the "batch" column);
//   * per-request off-chip traffic is separable — the totals row is the
//     exact sum of the per-request rows, so accelerator accounting
//     reconciles no matter how requests were packed;
//   * the spot check proves a batched output is bit-identical to the
//     sequential Encoder::forward path.
#include <iostream>
#include <vector>

#include "eval/table.hpp"
#include "model/encoder.hpp"
#include "runtime/runtime.hpp"

int main() {
  using swat::eval::Table;
  using namespace swat::model;

  // A compact geometry so the value-level simulator serves 8 requests in
  // seconds: d_model 64, 2 heads of dim 32, 32-core SWAT band.
  EncoderConfig cfg;
  cfg.d_model = 64;
  cfg.num_heads = 2;
  cfg.ffn_mult = 2;
  cfg.layers = 2;
  cfg.backend = AttentionBackend::kSwatSimulator;
  cfg.swat = swat::SwatConfig();
  cfg.swat.head_dim = 32;
  cfg.swat.window_cores = 32;
  cfg.weight_seed = 7;

  swat::BatchingOptions batching;
  batching.max_batch_requests = 8;
  batching.bucket_width = 64;

  swat::Runtime runtime(cfg, batching);
  std::cout << "Serving runtime: " << cfg.layers << "-layer encoder, "
            << cfg.num_heads << " heads -> " << cfg.swat.summary() << "\n"
            << "Batching: <= " << batching.max_batch_requests
            << " requests / batch, bucket width " << batching.bucket_width
            << " tokens\n\n";

  // Eight concurrent users, ragged lengths. Lengths 33..64 share one
  // length class, 65..128 the next — watch the batch column.
  const std::vector<std::int64_t> lengths = {48, 112, 64, 33, 96, 128, 40, 80};
  swat::Rng rng(42);
  std::vector<swat::InferenceRequest> requests;
  for (std::size_t u = 0; u < lengths.size(); ++u) {
    swat::InferenceRequest req;
    req.id = 100 + u;
    req.input = swat::random_normal(lengths[u], cfg.d_model, rng);
    requests.push_back(std::move(req));
  }

  const std::vector<swat::RequestResult> results = runtime.run(requests);

  Table t({"request", "tokens", "batch", "SWAT traffic", "core loads",
           "model MFLOP"});
  swat::Bytes traffic_sum;
  for (const swat::RequestResult& r : results) {
    t.add_row({std::to_string(r.id), std::to_string(r.counters.tokens),
               std::to_string(r.counters.batch_index),
               Table::mb(static_cast<double>(
                   r.counters.swat_offchip_traffic.count)),
               std::to_string(r.counters.swat_core_loads),
               Table::num(r.counters.model_flops / 1e6)});
    traffic_sum += r.counters.swat_offchip_traffic;
  }
  t.print(std::cout);

  const swat::RuntimeTotals& totals = runtime.totals();
  std::cout << "\nTotals: " << totals.requests << " requests, "
            << totals.tokens << " tokens in " << totals.batches
            << " batches; traffic " << Table::mb(static_cast<double>(
                                            totals.swat_offchip_traffic.count))
            << " (sum of rows: "
            << Table::mb(static_cast<double>(traffic_sum.count))
            << " -- reconciles exactly)\n\n";

  // Spot check: the batched output of request 0 is bit-identical to the
  // sequential per-request path.
  const Encoder oracle(cfg);
  const swat::MatrixF solo = oracle.forward(requests[0].input);
  std::cout << "Bit-identity vs sequential Encoder::forward: "
            << (results[0].output == solo ? "EXACT" : "MISMATCH") << "\n";
  return results[0].output == solo ? 0 : 1;
}
