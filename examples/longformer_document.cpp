// Long-document inference walkthrough — the workload the paper's intro
// motivates (document-level processing with long context).
//
// Simulates a full Longformer-base attention stack (12 heads x 8 layers)
// over a 4096-token document on SWAT, validating one head functionally and
// costing the whole model with the analytic stack, side by side with the
// GPU baselines.
#include <iostream>

#include "attention/window.hpp"
#include "baselines/gpu_model.hpp"
#include "eval/calibration.hpp"
#include "eval/table.hpp"
#include "swat/analytic.hpp"
#include "swat/functional_sim.hpp"
#include "swat/power_model.hpp"
#include "tensor/kernels.hpp"

int main() {
  using swat::eval::Table;
  const std::int64_t seq_len = 4096;  // the standard Longformer context
  const int heads = swat::calib::kModelHeads;
  const int layers = swat::calib::kModelLayers;
  const swat::SwatConfig cfg = swat::SwatConfig::longformer_512();

  std::cout << "Longformer document inference on SWAT\n"
            << "  document length : " << seq_len << " tokens\n"
            << "  model           : " << layers << " layers x " << heads
            << " heads (H = 64)\n"
            << "  accelerator     : " << cfg.summary() << "\n\n";

  // --- Functional spot-check: run layer 0 / head 0 through the simulator.
  swat::Rng rng(7);
  const auto head0 = swat::attn::random_head_input(seq_len, cfg.head_dim, rng);
  const auto res = swat::FunctionalSimulator(cfg).run(head0);
  const auto oracle = swat::attn::band_attention(head0, cfg.window_before(),
                                                 cfg.window_after());
  std::cout << "Head 0 functional check: max |err| vs fp32 oracle = "
            << swat::max_abs_diff(res.z, oracle) << "\n\n";

  // --- Whole-model cost: SWAT vs the GPU kernels.
  const swat::AnalyticModel model(cfg);
  const swat::baselines::GpuModel gpu;
  const double heads_total = static_cast<double>(heads) * layers;

  const swat::Seconds t_swat = model.model_time(seq_len, heads, layers);
  const swat::Joules e_swat =
      swat::swat_model_energy(cfg, seq_len, heads, layers);
  const auto dense = gpu.estimate(swat::baselines::GpuKernel::kDense, seq_len);
  const auto chunks =
      gpu.estimate(swat::baselines::GpuKernel::kSlidingChunks, seq_len);

  Table t({"platform", "attention time (full model)", "energy"});
  t.add_row({"SWAT FP16 (this work)", Table::ms(t_swat.value),
             Table::num(e_swat.value, 3) + " J"});
  t.add_row({"MI210 dense", Table::ms(dense.latency.value * heads_total),
             Table::num(dense.energy.value * heads_total, 3) + " J"});
  t.add_row({"MI210 sliding-chunks",
             Table::ms(chunks.latency.value * heads_total),
             Table::num(chunks.energy.value * heads_total, 3) + " J"});
  t.print(std::cout);

  std::cout << "\nPer-head traffic through HBM: "
            << static_cast<double>(model.head_traffic(seq_len).count) / 1024.0
            << " KiB (Q, K, V, Z each exactly once)\n"
            << "Achieved bandwidth: " << model.achieved_gbps(seq_len)
            << " GB/s of 460 GB/s available -> the design is compute-bound,\n"
            << "which is why performance scales with attention cores.\n";
  return 0;
}
