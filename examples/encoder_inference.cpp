// End-to-end encoder inference with SWAT as the attention backend.
//
// Builds a small transformer encoder twice — once with exact host window
// attention, once with every attention head routed through the SWAT
// functional simulator — runs the same token embeddings through both, and
// reports (a) how close the accelerated activations stay to the host
// reference, and (b) what the attention workload costs on the accelerator
// (scheduler timeline, traffic, energy).
#include <iostream>

#include "eval/table.hpp"
#include "model/encoder.hpp"
#include "swat/power_model.hpp"
#include "swat/scheduler.hpp"
#include "tensor/kernels.hpp"

int main() {
  using swat::eval::Table;
  using namespace swat::model;

  // A compact geometry so the dense host oracle runs in seconds: d_model
  // 128, 4 heads of dim 32, 128-core SWAT band, 512-token input.
  EncoderConfig host_cfg;
  host_cfg.d_model = 128;
  host_cfg.num_heads = 4;
  host_cfg.ffn_mult = 4;
  host_cfg.layers = 4;
  host_cfg.backend = AttentionBackend::kWindowExact;
  host_cfg.swat = swat::SwatConfig();
  host_cfg.swat.head_dim = 32;
  host_cfg.swat.window_cores = 128;
  host_cfg.weight_seed = 11;

  EncoderConfig accel_cfg = host_cfg;
  accel_cfg.backend = AttentionBackend::kSwatSimulator;

  const Encoder host(host_cfg);
  const Encoder accel(accel_cfg);
  std::cout << "Encoder: " << host_cfg.layers << " layers, d_model "
            << host_cfg.d_model << ", " << host_cfg.num_heads
            << " heads; parameters: " << host.parameters() << "\n"
            << "Attention hardware: " << accel_cfg.swat.summary() << "\n\n";

  const std::int64_t seq_len = 512;
  swat::Rng rng(3);
  const swat::MatrixF x = swat::random_normal(seq_len, host_cfg.d_model, rng);

  const swat::MatrixF y_host = host.forward(x);
  const swat::MatrixF y_accel = accel.forward(x);

  std::cout << "Activation fidelity after " << host_cfg.layers
            << " layers (fp16 datapath vs fp32 host):\n"
            << "  mean row cosine : "
            << swat::mean_row_cosine(y_accel, y_host) << "\n"
            << "  max |err|       : " << swat::max_abs_diff(y_accel, y_host)
            << "\n  rel. Frobenius  : "
            << swat::relative_error(y_accel, y_host) << "\n\n";

  std::cout << "SWAT off-chip traffic for the whole forward pass: "
            << accel.last_swat_traffic().mebibytes() << " MiB\n\n";

  // Cost the attention workload on the accelerator with the scheduler.
  swat::Workload w;
  w.seq_len = seq_len;
  w.heads = static_cast<int>(host_cfg.num_heads);
  w.layers = host_cfg.layers;
  const swat::HeadScheduler sched(accel_cfg.swat);
  const auto serial =
      sched.schedule(w, swat::HeadScheduling::kSerialDrain);
  const auto b2b = sched.schedule(w, swat::HeadScheduling::kBackToBack);

  Table t({"schedule", "makespan (cycles)", "wall @300MHz",
           "QK utilization"});
  t.add_row({"serial drain", std::to_string(serial.makespan.count),
             Table::ms(serial.wall_time(accel_cfg.swat.clock).value),
             Table::pct(serial.bottleneck_utilization)});
  t.add_row({"back-to-back", std::to_string(b2b.makespan.count),
             Table::ms(b2b.wall_time(accel_cfg.swat.clock).value),
             Table::pct(b2b.bottleneck_utilization)});
  t.print(std::cout);

  std::cout << "\nEnergy for the attention workload: "
            << swat::energy(swat::swat_power(accel_cfg.swat),
                            b2b.wall_time(accel_cfg.swat.clock))
                   .millijoules()
            << " mJ at " << swat::swat_power(accel_cfg.swat).value
            << " W board power.\n";
  return 0;
}
