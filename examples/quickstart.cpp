// Quickstart: run one attention head through the SWAT functional simulator,
// check it against the exact reference, and print latency/energy estimates.
//
//   $ ./quickstart
//
// This is the 5-minute tour of the public API:
//   SwatConfig            - design-time parameters (paper Fig. 7)
//   FunctionalSimulator   - value-level model (bit-faithful fp16 datapath)
//   TimingSimulator       - cycle-level pipeline model (paper Table 1)
//   AnalyticModel         - closed-form latency/traffic
//   swat_power            - XPE-style power estimate
#include <iostream>

#include "attention/window.hpp"
#include "swat/analytic.hpp"
#include "swat/functional_sim.hpp"
#include "swat/power_model.hpp"
#include "swat/timing_sim.hpp"
#include "tensor/kernels.hpp"

int main() {
  // 1. Pick the paper's standard design: 512 attention cores, FP16, H = 64.
  const swat::SwatConfig cfg = swat::SwatConfig::longformer_512();
  std::cout << "Configuration: " << cfg.summary() << "\n\n";

  // 2. Make a synthetic attention head (Q pre-scaled by 1/sqrt(H), as in a
  //    trained transformer).
  const std::int64_t seq_len = 1024;
  swat::Rng rng(2024);
  const swat::attn::HeadInput head =
      swat::attn::random_head_input(seq_len, cfg.head_dim, rng);

  // 3. Run the functional simulator: the output is what the FPGA datapath
  //    would produce, fp16 rounding and all.
  const swat::FunctionalSimulator sim(cfg);
  const auto result = sim.run(head);

  // 4. Compare against the exact (fp32) windowed-attention oracle.
  const swat::MatrixF oracle = swat::attn::band_attention(
      head, cfg.window_before(), cfg.window_after());
  std::cout << "Functional check vs fp32 oracle:\n"
            << "  max |error|     : " << swat::max_abs_diff(result.z, oracle)
            << "\n  rel. Frobenius  : "
            << swat::relative_error(result.z, oracle) << "\n";

  // 5. The dataflow claim: every input element crossed the HBM bus once.
  std::cout << "\nOff-chip traffic (one head, " << seq_len << " tokens):\n"
            << "  Q read          : " << result.q_bytes_read.count << " B\n"
            << "  K+V read        : " << result.kv_bytes_read.count << " B\n"
            << "  Z written       : " << result.z_bytes_written.count
            << " B\n  K/V rows loaded : " << result.window_core_loads
            << " (= seq_len; each row exactly once)\n";

  // 6. Latency and energy from the timing stack.
  const swat::TimingSimulator timing(cfg);
  const auto t = timing.run(seq_len);
  const swat::AnalyticModel model(cfg);
  std::cout << "\nTiming (cycle-level simulation):\n"
            << "  pipeline II     : " << t.row_interval.count << " cycles\n"
            << "  total           : " << t.total.count << " cycles = "
            << t.wall_time(cfg.clock).milliseconds() << " ms @ "
            << cfg.clock.hz / 1e6 << " MHz\n"
            << "  closed form     : " << model.head_cycles(seq_len).count
            << " cycles (must match)\n";
  std::cout << "\nPower / energy:\n"
            << "  board power     : " << swat::swat_power(cfg).value << " W\n"
            << "  energy per head : "
            << swat::swat_head_energy(cfg, seq_len).millijoules() << " mJ\n";
  return 0;
}
