// Quickstart: compile an execution plan for a small encoder, serve a packed
// batch through it, check bit-identity against the allocating path, then
// drop one head into the SWAT functional simulator and print latency/energy
// estimates.
//
//   $ ./quickstart
//
// This is the 5-minute tour of the public API:
//   EncoderConfig + Engine   - compiled zero-allocation serving path
//   ExecutionPlan            - the pre-bound activation arena
//   SwatConfig               - design-time parameters (paper Fig. 7)
//   FunctionalSimulator      - value-level model (bit-faithful fp16 datapath)
//   TimingSimulator          - cycle-level pipeline model (paper Table 1)
//   AnalyticModel            - closed-form latency/traffic
//   swat_power               - XPE-style power estimate
#include <iostream>
#include <vector>

#include "attention/window.hpp"
#include "runtime/engine.hpp"
#include "swat/analytic.hpp"
#include "swat/functional_sim.hpp"
#include "swat/power_model.hpp"
#include "swat/timing_sim.hpp"
#include "tensor/kernels.hpp"

int main() {
  // 1. Compile an engine: a compact encoder with exact-window attention
  //    (the algorithm SWAT implements), plans bound for batches of up to
  //    256 packed tokens. Validation happens here — a bad geometry fails
  //    with an actionable message before any weight is built.
  swat::model::EncoderConfig cfg;
  cfg.d_model = 128;
  cfg.num_heads = 2;
  cfg.ffn_mult = 4;
  cfg.layers = 2;
  cfg.backend = swat::model::AttentionBackend::kWindowExact;
  cfg.swat.head_dim = 64;
  cfg.swat.window_cores = 64;
  swat::Engine engine = swat::Engine::compile(cfg, /*max_tokens=*/256);
  std::cout << "Compiled plan: " << engine.plan().max_tokens()
            << " tokens high-water, "
            << engine.plan().arena_floats() * sizeof(float) / 1024
            << " KiB activation arena\n\n";

  // 2. Pack two ragged requests (96 + 64 tokens) into one batch — offsets
  //    mark the boundary, no padding rows exist.
  swat::Rng rng(2024);
  const swat::MatrixF packed = swat::random_normal(160, cfg.d_model, rng);
  const std::vector<std::int64_t> offsets = {0, 96, 160};

  // 3. Run through the plan. Every intermediate lives in the pre-bound
  //    arena; after this warmup run the steady state allocates nothing.
  const swat::MatrixF& out = engine.run(packed, offsets);

  // 4. The compiled path is bit-identical to the allocating reference path
  //    — not "close", identical.
  const swat::MatrixF oracle =
      engine.encoder().forward_batch(packed, offsets, {});
  std::cout << "Compiled vs allocating path: max |diff| = "
            << swat::max_abs_diff(out, oracle) << " (must be 0)\n\n";

  // 5. Under the attention layers sits the accelerator. Run one head
  //    through the functional simulator on the paper's standard design:
  //    512 attention cores, FP16, H = 64.
  const swat::SwatConfig acc = swat::SwatConfig::longformer_512();
  std::cout << "Accelerator: " << acc.summary() << "\n";
  const std::int64_t seq_len = 1024;
  const swat::attn::HeadInput head =
      swat::attn::random_head_input(seq_len, acc.head_dim, rng);
  const swat::FunctionalSimulator sim(acc);
  const auto result = sim.run(head);

  // 6. Compare against the exact (fp32) windowed-attention oracle.
  const swat::MatrixF exact = swat::attn::band_attention(
      head, acc.window_before(), acc.window_after());
  std::cout << "Functional check vs fp32 oracle:\n"
            << "  max |error|     : " << swat::max_abs_diff(result.z, exact)
            << "\n  rel. Frobenius  : "
            << swat::relative_error(result.z, exact) << "\n";

  // 7. The dataflow claim: every input element crossed the HBM bus once.
  std::cout << "\nOff-chip traffic (one head, " << seq_len << " tokens):\n"
            << "  Q read          : " << result.q_bytes_read.count << " B\n"
            << "  K+V read        : " << result.kv_bytes_read.count << " B\n"
            << "  Z written       : " << result.z_bytes_written.count
            << " B\n  K/V rows loaded : " << result.window_core_loads
            << " (= seq_len; each row exactly once)\n";

  // 8. Latency and energy from the timing stack.
  const swat::TimingSimulator timing(acc);
  const auto t = timing.run(seq_len);
  const swat::AnalyticModel model(acc);
  std::cout << "\nTiming (cycle-level simulation):\n"
            << "  pipeline II     : " << t.row_interval.count << " cycles\n"
            << "  total           : " << t.total.count << " cycles = "
            << t.wall_time(acc.clock).milliseconds() << " ms @ "
            << acc.clock.hz / 1e6 << " MHz\n"
            << "  closed form     : " << model.head_cycles(seq_len).count
            << " cycles (must match)\n";
  std::cout << "\nPower / energy:\n"
            << "  board power     : " << swat::swat_power(acc).value << " W\n"
            << "  energy per head : "
            << swat::swat_head_energy(acc, seq_len).millijoules() << " mJ\n";
  return 0;
}
