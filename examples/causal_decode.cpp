// Autoregressive decoding with a causal sliding window on SWAT — the
// FIFO-as-rolling-KV-cache scenario (Mistral-style local attention).
//
// Shows (a) that token-by-token decode produces exactly the batch causal
// result, (b) per-token latency (decode pays the pipeline fill, not the
// II), and (c) the traffic asymmetry against a GPU-style off-chip KV
// cache, which re-reads the whole window every generated token.
#include <iostream>

#include "attention/window.hpp"
#include "eval/table.hpp"
#include "swat/decode_sim.hpp"
#include "tensor/kernels.hpp"

int main() {
  using swat::eval::Table;
  const swat::SwatConfig cfg = swat::SwatConfig::causal_512();
  std::cout << "Causal decode on SWAT: " << cfg.summary() << "\n"
            << "window: each token attends the previous "
            << cfg.window_cores << " tokens (inclusive)\n\n";

  const std::int64_t tokens = 2048;
  swat::Rng rng(21);
  const auto head = swat::attn::random_head_input(tokens, cfg.head_dim, rng);

  const swat::DecodeSimulator sim(cfg);
  const swat::DecodeResult res = sim.run(head);

  // Functional check against the exact causal-band oracle.
  const swat::MatrixF oracle =
      swat::attn::band_attention(head, cfg.window_cores - 1, 0);
  std::cout << "Functional check vs fp32 causal oracle: max |err| = "
            << swat::max_abs_diff(res.z, oracle) << "\n\n";

  Table t({"metric", "value"});
  t.add_row({"per-token latency", std::to_string(res.per_token.count) +
                                      " cycles = " +
                                      Table::num(res.per_token.count /
                                                     (cfg.clock.hz / 1e6),
                                                 2) +
                                      " us"});
  t.add_row({"throughput (1 head)",
             Table::num(res.tokens_per_second / 1e3, 1) + "k tokens/s"});
  t.add_row({"HBM traffic per token",
             std::to_string(res.kv_bytes_per_token.count) + " B (new K+V row only)"});
  t.add_row({"on-chip rolling cache",
             Table::num(static_cast<double>(res.cache_bytes.count) / 1024.0,
                        0) +
                 " KiB (512 BRAM-resident K/V rows)"});
  t.print(std::cout);

  // GPU-style off-chip KV cache comparison: every step streams the whole
  // window from memory.
  const double gpu_bytes_per_token =
      2.0 * static_cast<double>(cfg.window_cores) *
      static_cast<double>(cfg.head_dim) * 2.0;
  std::cout << "\nAn off-chip KV cache would stream "
            << Table::num(gpu_bytes_per_token / 1024.0, 0)
            << " KiB per token for the same window — "
            << Table::times(gpu_bytes_per_token /
                            static_cast<double>(res.kv_bytes_per_token.count),
                            0)
            << " more HBM traffic than SWAT's input-stationary buffers.\n";
  return 0;
}
