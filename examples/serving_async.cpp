// Asynchronous continuous-batching serving through swat::Server.
//
// Where examples/serving_batch.cpp hands the runtime a finished request
// list, this example serves traffic the way it actually arrives: one
// request at a time, from a caller that wants its ticket back immediately.
// A background scheduler thread forms batches continuously and cuts them
// when the caps are hit, when the arrival queue goes empty — or when the
// paper's stage-latency model (Table 1) predicts the batch is already
// `max_batch_latency` expensive, so the hardware model itself decides when
// to stop waiting for more arrivals.
//
//   $ ./serving_async
//
// What to look at:
//   * the cost model's predicted per-request service time, and the batch
//     budget derived from it (~3 requests' worth here);
//   * the "batch" column: a burst submitted back-to-back is grouped up to
//     the budget, then cut — a lone straggler ships as a singleton rather
//     than waiting;
//   * "queue ms": the admission-to-execution wait each ticket absorbed;
//   * the spot check: async results are bit-identical to the sequential
//     Encoder::forward path — batching policy affects latency, never
//     results.
#include <chrono>
#include <iostream>
#include <thread>
#include <vector>

#include "eval/table.hpp"
#include "model/encoder.hpp"
#include "runtime/server.hpp"

int main() {
  using swat::eval::Table;
  using namespace swat::model;

  // A compact geometry: d_model 64, 2 heads of dim 32, 32-core SWAT band.
  EncoderConfig cfg;
  cfg.d_model = 64;
  cfg.num_heads = 2;
  cfg.ffn_mult = 2;
  cfg.layers = 2;
  cfg.backend = AttentionBackend::kFusedStreaming;
  cfg.swat = swat::SwatConfig();
  cfg.swat.head_dim = 32;
  cfg.swat.window_cores = 32;
  cfg.weight_seed = 7;

  // Price requests with the paper's pipeline model and budget each batch
  // at ~3 requests of predicted accelerator time.
  const swat::BatchCostModel cost(cfg);
  const swat::Seconds per_request = cost.request_seconds(64);

  swat::ServerOptions opt;
  opt.batching.max_batch_requests = 8;
  opt.batching.bucket_width = 64;
  opt.batching.max_batch_latency = swat::Seconds{per_request.value * 3.0};

  swat::Server server(cfg, opt);
  std::cout << "Async serving: " << cfg.layers << "-layer encoder, "
            << cfg.num_heads << " heads -> " << cfg.swat.summary() << "\n"
            << "Cost model: a 64-token request is predicted to cost "
            << per_request.microseconds() << " us on the accelerator;\n"
            << "batch budget " << opt.batching.max_batch_latency.microseconds()
            << " us (~3 requests), caps <= "
            << opt.batching.max_batch_requests << " requests / batch\n\n";

  // Eight users, arriving as a burst of six and then two stragglers.
  const std::vector<std::int64_t> lengths = {48, 112, 64, 33, 96, 128, 40, 80};
  swat::Rng rng(42);
  std::vector<swat::InferenceRequest> requests;
  for (std::size_t u = 0; u < lengths.size(); ++u) {
    swat::InferenceRequest req;
    req.id = 100 + u;
    req.input = swat::random_normal(lengths[u], cfg.d_model, rng);
    requests.push_back(std::move(req));
  }

  std::vector<swat::Server::Ticket> tickets(requests.size());
  for (std::size_t u = 0; u < requests.size(); ++u) {
    if (u == 6) {
      // The stragglers arrive a beat later — watch them land in fresh
      // batches instead of holding the burst hostage (or vice versa).
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    tickets[u] = server.submit(requests[u]);  // submit copies its argument
  }
  server.drain();

  Table t({"request", "tokens", "batch", "queue ms", "SWAT traffic",
           "model MFLOP"});
  std::vector<swat::RequestResult> results;
  for (swat::Server::Ticket& ticket : tickets) {
    results.push_back(ticket.get());
  }
  for (const swat::RequestResult& r : results) {
    t.add_row({std::to_string(r.id), std::to_string(r.counters.tokens),
               std::to_string(r.counters.batch_index),
               Table::num(r.counters.queue_delay.milliseconds()),
               Table::mb(static_cast<double>(
                   r.counters.swat_offchip_traffic.count)),
               Table::num(r.counters.model_flops / 1e6)});
  }
  t.print(std::cout);

  const swat::RuntimeTotals totals = server.totals();
  std::cout << "\nTotals: " << totals.requests << " requests, "
            << totals.tokens << " tokens in " << totals.batches
            << " batches (continuously cut — composition depends on arrival "
               "timing, results never do)\n\n";

  // Spot check: every async output is bit-identical to the sequential
  // per-request path.
  const Encoder oracle(cfg);
  bool exact = true;
  for (std::size_t u = 0; u < requests.size(); ++u) {
    exact = exact && (results[u].output == oracle.forward(requests[u].input));
  }
  std::cout << "Bit-identity vs sequential Encoder::forward (all "
            << requests.size() << " requests): "
            << (exact ? "EXACT" : "MISMATCH") << "\n";
  return exact ? 0 : 1;
}
