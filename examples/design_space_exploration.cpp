// Design-space exploration with the SWAT models: sweep window width, head
// dimension, precision and pipeline count, and report latency, resources
// and energy — the workflow an adopter would run before synthesizing a
// variant for their own model.
#include <iostream>

#include "eval/table.hpp"
#include "hw/resource.hpp"
#include "swat/analytic.hpp"
#include "swat/power_model.hpp"
#include "swat/resource_model.hpp"
#include "swat/stage_latency.hpp"

namespace {

void sweep_window_width() {
  using swat::eval::Table;
  std::cout << "=== Sweep 1: window width (FP16, H = 64, N = 8192) ===\n\n";
  Table t({"2w (cores)", "II (cyc)", "head time", "DSP%", "LUT%", "BRAM%",
           "power (W)", "energy/head (mJ)"});
  for (std::int64_t cores : {128, 256, 512, 1024}) {
    swat::SwatConfig cfg = swat::SwatConfig::longformer_512();
    cfg.window_cores = cores;
    const swat::AnalyticModel model(cfg);
    const auto u = swat::table2_utilization(cfg);
    t.add_row({std::to_string(cores),
               std::to_string(swat::row_interval(cfg).count),
               Table::ms(model.head_time(8192).value),
               std::to_string(u.dsp_pct), std::to_string(u.lut_pct),
               std::to_string(u.bram_pct),
               Table::num(swat::swat_power(cfg).value, 1),
               Table::num(swat::swat_head_energy(cfg, 8192).millijoules(),
                          1)});
  }
  t.print(std::cout);
  std::cout << "\nNote: wider windows cost fabric (cores) but not latency —\n"
               "the pipeline II is set by the QK stage (3H+9), not by 2w.\n"
               "Latency is the same; *accuracy* is what 2w buys.\n\n";
}

void sweep_head_dim() {
  using swat::eval::Table;
  std::cout << "=== Sweep 2: head dimension (FP16, 512 cores, N = 8192) "
               "===\n\n";
  Table t({"H", "II (cyc)", "head time", "time x heads for d_model=768"});
  for (std::int64_t h : {32, 64, 128}) {
    swat::SwatConfig cfg = swat::SwatConfig::longformer_512();
    cfg.head_dim = h;
    const swat::AnalyticModel model(cfg);
    const int heads = static_cast<int>(768 / h);
    t.add_row({std::to_string(h),
               std::to_string(swat::row_interval(cfg).count),
               Table::ms(model.head_time(8192).value),
               Table::ms(model.model_time(8192, heads, 1).value)});
  }
  t.print(std::cout);
  std::cout << "\nNote: II scales with 3H+9, but fewer/wider heads trade off\n"
               "almost evenly at fixed d_model — H = 64 (the paper's choice)\n"
               "balances the reduction tree against MAC depth.\n\n";
}

void sweep_precision_and_pipelines() {
  using swat::eval::Table;
  std::cout << "=== Sweep 3: precision x pipelines (512 cores, N = 16384, "
               "12x8 heads) ===\n\n";
  struct Variant {
    const char* name;
    swat::SwatConfig cfg;
  };
  swat::SwatConfig fp16_dual = swat::SwatConfig::longformer_512();
  fp16_dual.pipelines = 2;
  const Variant variants[] = {
      {"FP16 x1", swat::SwatConfig::longformer_512()},
      {"FP16 x2", fp16_dual},
      {"FP32 x1", swat::SwatConfig::longformer_512(swat::Dtype::kFp32)},
  };
  Table t({"variant", "model time", "power (W)", "model energy (J)", "DSP%",
           "fits U55C"});
  for (const auto& v : variants) {
    const swat::AnalyticModel model(v.cfg);
    const auto used = swat::estimate_resources(v.cfg).total();
    const bool fits = used.fits_in(swat::hw::DeviceCatalog::u55c().total);
    t.add_row({v.name, Table::ms(model.model_time(16384, 12, 8).value),
               Table::num(swat::swat_power(v.cfg).value, 1),
               Table::num(
                   swat::swat_model_energy(v.cfg, 16384, 12, 8).value, 2),
               std::to_string(swat::table2_utilization(v.cfg).dsp_pct),
               fits ? "yes" : "NO"});
  }
  t.print(std::cout);
  std::cout << "\nNote: the FP16 dual-pipeline build halves latency within\n"
               "the U55C budget; FP32 costs ~2.6x the DSPs and ~31% more\n"
               "cycles — the efficiency argument for fp16 inference.\n";
}

}  // namespace

int main() {
  sweep_window_width();
  sweep_head_dim();
  sweep_precision_and_pipelines();
  return 0;
}
