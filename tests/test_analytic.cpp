// Tests for the closed-form performance model.
#include <gtest/gtest.h>

#include "swat/analytic.hpp"

namespace swat {
namespace {

TEST(Analytic, HeadCyclesClosedForm) {
  const AnalyticModel m(SwatConfig::longformer_512());
  EXPECT_EQ(m.head_cycles(1).count, 904u);
  EXPECT_EQ(m.head_cycles(2).count, 904u + 201u);
  EXPECT_EQ(m.head_cycles(16384).count, 904u + 16383u * 201u);
}

TEST(Analytic, HeadTimeAt300MHz) {
  const AnalyticModel m(SwatConfig::longformer_512());
  EXPECT_NEAR(m.head_time(16384).milliseconds(), 10.98, 0.05);
  const AnalyticModel m32(SwatConfig::longformer_512(Dtype::kFp32));
  EXPECT_NEAR(m32.head_time(16384).milliseconds(), 14.42, 0.05);
}

TEST(Analytic, ModelTimeScalesWithHeadsAndLayers) {
  const AnalyticModel m(SwatConfig::longformer_512());
  const Seconds one = m.model_time(1024, 1, 1);
  EXPECT_DOUBLE_EQ(m.model_time(1024, 12, 1).value, 12.0 * one.value);
  EXPECT_DOUBLE_EQ(m.model_time(1024, 12, 8).value, 96.0 * one.value);
  EXPECT_DOUBLE_EQ(one.value, m.head_time(1024).value);
}

TEST(Analytic, DualPipelineHalvesModelTime) {
  const AnalyticModel single(SwatConfig::bigbird_512());
  const AnalyticModel dual(SwatConfig::bigbird_dual_512());
  EXPECT_NEAR(dual.model_time(2048, 12, 8).value,
              single.model_time(2048, 12, 8).value / 2.0, 1e-12);
}

TEST(Analytic, TrafficIsLinearAndExactlyOnce) {
  const AnalyticModel m(SwatConfig::longformer_512());
  // 4 streams (Q, K, V, Z) x n x H x 2 bytes.
  EXPECT_EQ(m.head_traffic(4096).count,
            4ull * 4096ull * 64ull * 2ull);
  EXPECT_EQ(m.head_traffic(8192).count, 2 * m.head_traffic(4096).count);
}

TEST(Analytic, RandomCoresAddRereadTraffic) {
  const AnalyticModel bigbird(SwatConfig::bigbird_512());
  const AnalyticModel window(SwatConfig::longformer_512());
  EXPECT_GT(bigbird.head_traffic(4096).count,
            window.head_traffic(4096).count);
}

TEST(Analytic, AchievedBandwidthFarBelowHbm) {
  const AnalyticModel m(SwatConfig::longformer_512());
  // ~0.76 GB/s per head pipeline vs 460 GB/s available.
  EXPECT_LT(m.achieved_gbps(8192), 5.0);
  EXPECT_GT(m.achieved_gbps(8192), 0.1);
}

TEST(Analytic, OnchipWorkingSetIndependentOfSequenceLength) {
  const AnalyticModel m(SwatConfig::longformer_512());
  // 512 cores x (K+V) x 64 x 2B = 128 KiB.
  EXPECT_EQ(m.onchip_working_set().count, 512ull * 2 * 64 * 2);
  const AnalyticModel dual(SwatConfig::bigbird_dual_512());
  EXPECT_EQ(dual.onchip_working_set().count, 2ull * 512 * 2 * 64 * 2);
}

TEST(Analytic, InputValidation) {
  const AnalyticModel m(SwatConfig::longformer_512());
  EXPECT_THROW(m.head_cycles(0), std::invalid_argument);
  EXPECT_THROW(m.model_time(128, 0, 1), std::invalid_argument);
}

}  // namespace
}  // namespace swat
