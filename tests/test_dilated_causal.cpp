// Tests for the dilated and causal window extensions (Longformer's dilated
// sliding window and Mistral-style causal local attention) across the
// pattern, config and functional-simulator layers.
#include <gtest/gtest.h>

#include <set>

#include "attention/reference.hpp"
#include "attention/window.hpp"
#include "swat/functional_sim.hpp"
#include "swat/stage_latency.hpp"
#include "test_util.hpp"

namespace swat {
namespace {

// ---------------------------------------------------------------------------
// Pattern layer
// ---------------------------------------------------------------------------

TEST(DilatedPattern, AttendsEveryDthToken) {
  attn::PatternSpec s;
  s.seq_len = 128;
  s.window_before = 3;
  s.window_after = 3;
  s.window_dilation = 4;
  const attn::AttentionPattern p(s);
  const auto& row = p.row(64);
  ASSERT_EQ(row.size(), 7u);
  for (std::int64_t j = 0; j < 7; ++j) {
    EXPECT_EQ(row[static_cast<std::size_t>(j)].col, 64 + (j - 3) * 4);
  }
  EXPECT_TRUE(p.attends(64, 64));
  EXPECT_TRUE(p.attends(64, 60));
  EXPECT_FALSE(p.attends(64, 63));
  EXPECT_FALSE(p.attends(64, 62));
}

TEST(DilatedPattern, WidensReceptiveFieldAtSameBudget) {
  attn::PatternSpec dense_band;
  dense_band.seq_len = 256;
  dense_band.window_before = 8;
  dense_band.window_after = 8;
  attn::PatternSpec dilated = dense_band;
  dilated.window_dilation = 4;
  const attn::AttentionPattern pd(dense_band);
  const attn::AttentionPattern pl(dilated);
  // Same attended-token count per interior row...
  EXPECT_EQ(pd.row(128).size(), pl.row(128).size());
  // ...but 4x the reach.
  EXPECT_EQ(pd.row(128).front().col, 120);
  EXPECT_EQ(pl.row(128).front().col, 96);
}

TEST(DilatedPattern, ClipsAtBoundaries) {
  attn::PatternSpec s;
  s.seq_len = 32;
  s.window_before = 4;
  s.window_after = 4;
  s.window_dilation = 8;
  const attn::AttentionPattern p(s);
  // Row 0: only non-negative steps survive -> cols {0, 8, 16, 24}.
  const auto& row = p.row(0);
  ASSERT_EQ(row.size(), 4u);
  EXPECT_EQ(row.back().col, 24);
}

TEST(DilatedPattern, InvalidDilationThrows) {
  attn::PatternSpec s;
  s.seq_len = 16;
  s.window_before = 1;
  s.window_after = 1;
  s.window_dilation = 0;
  EXPECT_THROW(attn::AttentionPattern{s}, std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Config layer
// ---------------------------------------------------------------------------

TEST(CausalConfig, BandEntirelyAtOrBeforeDiagonal) {
  const SwatConfig c = SwatConfig::causal_512();
  EXPECT_EQ(c.window_before(), 511);
  EXPECT_EQ(c.window_after(), 0);
  EXPECT_EQ(c.window_steps(), 512);
  const auto spec = c.pattern_spec(2048);
  const attn::AttentionPattern p(spec);
  for (std::int64_t i : {0L, 700L, 2047L}) {
    for (const auto& t : p.row(i)) {
      EXPECT_LE(t.col, i) << "row " << i;
    }
  }
}

TEST(DilatedConfig, StepsAndValidation) {
  SwatConfig c = SwatConfig::longformer_512();
  c.window_dilation = 4;
  EXPECT_EQ(c.window_steps(), 128);
  EXPECT_EQ(c.window_before(), 64);
  EXPECT_EQ(c.window_after(), 63);
  EXPECT_NO_THROW(c.validate());
  c.window_dilation = 3;  // 512 % 3 != 0
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(DilatedConfig, TimingUnchanged) {
  // Dilation re-wires the LOAD crossbar but leaves stage latencies alone.
  SwatConfig c = SwatConfig::longformer_512();
  c.window_dilation = 4;
  EXPECT_EQ(row_interval(c).count, 201u);
}

// ---------------------------------------------------------------------------
// Functional simulator
// ---------------------------------------------------------------------------

SwatConfig small_cfg() {
  SwatConfig c;
  c.head_dim = 8;
  c.window_cores = 16;
  return c;
}

TEST(CausalSim, MatchesCausalBandOracle) {
  Rng rng(1);
  SwatConfig cfg = small_cfg();
  cfg.band_split = BandSplit::kCausal;
  const attn::HeadInput in = attn::random_head_input(96, 8, rng);
  const MatrixF hw = FunctionalSimulator(cfg).run(in).z;
  const MatrixF oracle = attn::band_attention(in, 15, 0);
  swat::testing::expect_matrix_near(hw, oracle, 0.03f,
                                    "causal sim vs band oracle");
}

TEST(CausalSim, FutureTokensCannotInfluenceOutput) {
  Rng rng(2);
  SwatConfig cfg = small_cfg();
  cfg.band_split = BandSplit::kCausal;
  attn::HeadInput in = attn::random_head_input(64, 8, rng);
  const MatrixF before = FunctionalSimulator(cfg).run(in).z;
  // Perturb the tail of K and V; rows < 40 must be bit-identical.
  for (std::int64_t r = 40; r < 64; ++r) {
    for (std::int64_t d = 0; d < 8; ++d) {
      in.k(r, d) += 5.0f;
      in.v(r, d) -= 3.0f;
    }
  }
  const MatrixF after = FunctionalSimulator(cfg).run(in).z;
  for (std::int64_t i = 0; i < 40; ++i) {
    for (std::int64_t d = 0; d < 8; ++d) {
      EXPECT_EQ(before(i, d), after(i, d)) << i << "," << d;
    }
  }
}

TEST(DilatedSim, MatchesMaskedOracle) {
  Rng rng(3);
  for (std::int64_t dilation : {2, 4}) {
    SwatConfig cfg = small_cfg();
    cfg.window_dilation = dilation;
    const attn::HeadInput in = attn::random_head_input(128, 8, rng);
    const auto res = FunctionalSimulator(cfg).run(in);
    const attn::AttentionPattern pattern(cfg.pattern_spec(128));
    const MatrixF oracle = attn::masked_attention(in, pattern);
    swat::testing::expect_matrix_near(res.z, oracle, 0.03f,
                                      "dilated sim vs masked oracle");
    EXPECT_EQ(res.attended_pairs, pattern.nnz());
  }
}

TEST(DilatedSim, LoadsEachRowExactlyOnce) {
  Rng rng(4);
  SwatConfig cfg = small_cfg();
  cfg.window_dilation = 4;
  const std::int64_t n = 200;
  const attn::HeadInput in = attn::random_head_input(n, 8, rng);
  const auto res = FunctionalSimulator(cfg).run(in);
  EXPECT_EQ(res.window_core_loads, n);
  EXPECT_EQ(res.kv_bytes_read.count, 2ull * n * 8 * 2);
}

TEST(DilatedCausalSim, ComposedModesAgreeWithOracle) {
  Rng rng(5);
  SwatConfig cfg = small_cfg();
  cfg.window_dilation = 2;
  cfg.band_split = BandSplit::kCausal;
  const attn::HeadInput in = attn::random_head_input(96, 8, rng);
  const auto res = FunctionalSimulator(cfg).run(in);
  const attn::AttentionPattern pattern(cfg.pattern_spec(96));
  swat::testing::expect_matrix_near(res.z,
                                    attn::masked_attention(in, pattern),
                                    0.03f, "dilated causal");
  // Causal + dilation 2: row i attends {i, i-2, ..., i-14}.
  EXPECT_TRUE(pattern.attends(50, 50));
  EXPECT_TRUE(pattern.attends(50, 36));
  EXPECT_FALSE(pattern.attends(50, 49));
  EXPECT_FALSE(pattern.attends(50, 52));
}

TEST(DilatedSim, BigbirdWithDilationStillWorks) {
  Rng rng(6);
  SwatConfig cfg = small_cfg();
  cfg.window_dilation = 2;
  cfg.global_cores = 4;
  cfg.random_cores = 4;
  const attn::HeadInput in = attn::random_head_input(120, 8, rng);
  const auto res = FunctionalSimulator(cfg).run(in);
  const attn::AttentionPattern pattern(cfg.pattern_spec(120));
  swat::testing::expect_matrix_near(res.z,
                                    attn::masked_attention(in, pattern),
                                    0.04f, "dilated bigbird");
}

}  // namespace
}  // namespace swat
