// Tests for the host transformer stack and its SWAT attention backend.
#include <gtest/gtest.h>

#include <cmath>

#include "model/encoder.hpp"
#include "tensor/kernels.hpp"
#include "test_util.hpp"

namespace swat::model {
namespace {

/// Small geometry so the dense-reference oracle stays fast: d_model 32,
/// 4 heads of dim 8, 16-core SWAT band.
EncoderConfig small_config(AttentionBackend backend) {
  EncoderConfig cfg;
  cfg.d_model = 32;
  cfg.num_heads = 4;
  cfg.ffn_mult = 2;
  cfg.layers = 2;
  cfg.backend = backend;
  cfg.swat = SwatConfig();
  cfg.swat.head_dim = 8;
  cfg.swat.window_cores = 16;
  return cfg;
}

TEST(Linear, ForwardMatchesManualComputation) {
  Rng rng(1);
  Linear lin(3, 2, rng);
  lin.weight()(0, 0) = 1.0f;
  lin.weight()(0, 1) = 2.0f;
  lin.weight()(0, 2) = 3.0f;
  lin.weight()(1, 0) = -1.0f;
  lin.weight()(1, 1) = 0.5f;
  lin.weight()(1, 2) = 0.0f;
  lin.bias() = {10.0f, -10.0f};
  MatrixF x(1, 3);
  x(0, 0) = 1.0f;
  x(0, 1) = 1.0f;
  x(0, 2) = 1.0f;
  const MatrixF y = lin.forward(x);
  EXPECT_FLOAT_EQ(y(0, 0), 16.0f);
  EXPECT_FLOAT_EQ(y(0, 1), -10.5f);
}

TEST(Linear, XavierInitBounded) {
  Rng rng(2);
  Linear lin(100, 100, rng);
  const double bound = std::sqrt(6.0 / 200.0);
  for (float w : lin.weight().flat()) {
    EXPECT_LE(std::abs(w), bound + 1e-6);
  }
  EXPECT_EQ(lin.parameters(), 100 * 100 + 100);
}

TEST(LayerNorm, NormalizesRows) {
  Rng rng(3);
  LayerNorm ln(16);
  const MatrixF x = random_normal(8, 16, rng, 5.0);
  const MatrixF y = ln.forward(x);
  for (std::int64_t i = 0; i < y.rows(); ++i) {
    double mean = 0.0, var = 0.0;
    for (float v : y.row(i)) mean += v;
    mean /= 16.0;
    for (float v : y.row(i)) var += (v - mean) * (v - mean);
    var /= 16.0;
    EXPECT_NEAR(mean, 0.0, 1e-5);
    EXPECT_NEAR(var, 1.0, 1e-3);
  }
}

TEST(LayerNorm, AffineParametersApply) {
  LayerNorm ln(4);
  ln.gamma() = {2.0f, 2.0f, 2.0f, 2.0f};
  ln.beta() = {1.0f, 1.0f, 1.0f, 1.0f};
  MatrixF x(1, 4);
  x(0, 0) = -1.0f;
  x(0, 1) = 0.0f;
  x(0, 2) = 0.0f;
  x(0, 3) = 1.0f;
  const MatrixF y = ln.forward(x);
  // Mean 0, var 0.5 -> normalized {-sqrt2, 0, 0, sqrt2}; x2 + 1.
  EXPECT_NEAR(y(0, 0), 1.0f - 2.0f * std::sqrt(2.0f), 1e-4f);
  EXPECT_NEAR(y(0, 1), 1.0f, 1e-5f);
  EXPECT_NEAR(y(0, 3), 1.0f + 2.0f * std::sqrt(2.0f), 1e-4f);
}

TEST(Gelu, KnownValues) {
  EXPECT_NEAR(gelu(0.0f), 0.0f, 1e-7f);
  EXPECT_NEAR(gelu(1.0f), 0.8412f, 1e-3f);
  EXPECT_NEAR(gelu(-1.0f), -0.1588f, 1e-3f);
  EXPECT_GT(gelu(10.0f), 9.99f);  // ~identity for large x
  EXPECT_NEAR(gelu(-10.0f), 0.0f, 1e-4f);
}

TEST(Mha, BackendsAgreeWhenWindowCoversSequence) {
  // With seq_len <= window_after + 1 every row's band covers the whole
  // sequence, so window attention == dense attention; all three backends
  // must produce the same layer output (SWAT within fp16).
  Rng rng(4);
  const std::int64_t n = 8;  // band is [i-8, i+7] for the 16-core config
  const MatrixF x = random_normal(n, 32, rng);
  const EncoderConfig base = small_config(AttentionBackend::kDenseReference);

  Rng wrng1(99), wrng2(99), wrng3(99);
  MultiHeadAttention dense(32, 4, AttentionBackend::kDenseReference,
                           base.swat, wrng1);
  MultiHeadAttention window(32, 4, AttentionBackend::kWindowExact, base.swat,
                            wrng2);
  MultiHeadAttention sim(32, 4, AttentionBackend::kSwatSimulator, base.swat,
                         wrng3);

  const MatrixF yd = dense.forward(x);
  const MatrixF yw = window.forward(x);
  const MatrixF ys = sim.forward(x);
  swat::testing::expect_matrix_near(yw, yd, 1e-4f, "window vs dense");
  swat::testing::expect_matrix_near(ys, yd, 0.15f, "swat sim vs dense");
}

TEST(Mha, SwatBackendTracksWindowBackend) {
  Rng rng(5);
  const MatrixF x = random_normal(64, 32, rng);
  const EncoderConfig base = small_config(AttentionBackend::kWindowExact);
  Rng wrng1(7), wrng2(7);
  MultiHeadAttention window(32, 4, AttentionBackend::kWindowExact, base.swat,
                            wrng1);
  MultiHeadAttention sim(32, 4, AttentionBackend::kSwatSimulator, base.swat,
                         wrng2);
  const MatrixF yw = window.forward(x);
  const MatrixF ys = sim.forward(x);
  // The only difference is the fp16 datapath.
  swat::testing::expect_matrix_near(ys, yw, 0.15f, "swat vs window layer");
  EXPECT_GT(mean_row_cosine(ys, yw), 0.999);
}

TEST(Mha, StatsTrackTrafficAndHeads) {
  Rng rng(6);
  const std::int64_t n = 48;
  const MatrixF x = random_normal(n, 32, rng);
  const EncoderConfig base = small_config(AttentionBackend::kSwatSimulator);
  Rng wrng(8);
  MultiHeadAttention sim(32, 4, AttentionBackend::kSwatSimulator, base.swat,
                         wrng);
  (void)sim.forward(x);
  const AttentionStats& s = sim.last_stats();
  EXPECT_EQ(s.heads_run, 4);
  // 4 heads x (Q + K + V + Z) x n x 8 dims x 2 bytes.
  EXPECT_EQ(s.swat_offchip_traffic.count, 4ull * 4 * n * 8 * 2);
  EXPECT_EQ(s.swat_core_loads, 4 * n);
}

TEST(Mha, RejectsMismatchedHeadDim) {
  Rng rng(9);
  SwatConfig bad;
  bad.head_dim = 16;  // d_model/heads = 8
  bad.window_cores = 16;
  EXPECT_THROW(MultiHeadAttention(32, 4, AttentionBackend::kWindowExact, bad,
                                  rng),
               std::invalid_argument);
}

TEST(Encoder, ForwardShapesAndDeterminism) {
  const EncoderConfig cfg = small_config(AttentionBackend::kWindowExact);
  const Encoder enc(cfg);
  Rng rng(10);
  const MatrixF x = random_normal(40, 32, rng);
  const MatrixF y1 = enc.forward(x);
  const MatrixF y2 = enc.forward(x);
  EXPECT_EQ(y1.rows(), 40);
  EXPECT_EQ(y1.cols(), 32);
  swat::testing::expect_matrix_equal(y1, y2, "determinism");
}

TEST(Encoder, EmptyInputYieldsEmptyOutput) {
  // The batched path requires non-empty sequences; the single-sequence
  // wrappers must keep accepting zero-row inputs (empty in, empty out).
  const EncoderConfig cfg = small_config(AttentionBackend::kWindowExact);
  const Encoder enc(cfg);
  const MatrixF y = enc.forward(MatrixF(0, cfg.d_model));
  EXPECT_EQ(y.rows(), 0);
  EXPECT_EQ(y.cols(), cfg.d_model);
}

TEST(Encoder, ParameterCount) {
  const EncoderConfig cfg = small_config(AttentionBackend::kWindowExact);
  const Encoder enc(cfg);
  // Per layer: 4 x (32x32 + 32) attention + ffn (32x64 + 64) + (64x32 + 32)
  // + 2 x layernorm (2 x 32).
  const std::int64_t mha = 4 * (32 * 32 + 32);
  const std::int64_t ffn = (32 * 64 + 64) + (64 * 32 + 32);
  const std::int64_t norms = 2 * 64;
  EXPECT_EQ(enc.parameters(), 2 * (mha + ffn + norms));
}

TEST(Encoder, SwatBackendStaysCloseToHostBackendOverDepth) {
  EncoderConfig host_cfg = small_config(AttentionBackend::kWindowExact);
  EncoderConfig swat_cfg = small_config(AttentionBackend::kSwatSimulator);
  host_cfg.weight_seed = swat_cfg.weight_seed = 42;
  const Encoder host(host_cfg);
  const Encoder accel(swat_cfg);
  Rng rng(11);
  const MatrixF x = random_normal(64, 32, rng);
  const MatrixF yh = host.forward(x);
  const MatrixF ya = accel.forward(x);
  // fp16 error compounds over layers but layer norms keep it bounded.
  EXPECT_GT(mean_row_cosine(ya, yh), 0.99);
  EXPECT_GT(accel.last_swat_traffic().count, 0u);
  EXPECT_EQ(host.last_swat_traffic().count, 0u);
}

TEST(Encoder, LongformerBaseFactory) {
  const EncoderConfig cfg =
      EncoderConfig::longformer_base(AttentionBackend::kWindowExact);
  EXPECT_EQ(cfg.d_model, 768);
  EXPECT_EQ(cfg.num_heads, 12);
  EXPECT_EQ(cfg.layers, 8);
  EXPECT_EQ(cfg.swat.head_dim, 64);
  EXPECT_EQ(cfg.swat.window_cores, 512);
}

}  // namespace
}  // namespace swat::model
