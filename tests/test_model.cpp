// Tests for the host transformer stack and its SWAT attention backend.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "model/encoder.hpp"
#include "tensor/kernels.hpp"
#include "test_util.hpp"

namespace swat::model {
namespace {

/// Small geometry so the dense-reference oracle stays fast: d_model 32,
/// 4 heads of dim 8, 16-core SWAT band.
EncoderConfig small_config(AttentionBackend backend) {
  EncoderConfig cfg;
  cfg.d_model = 32;
  cfg.num_heads = 4;
  cfg.ffn_mult = 2;
  cfg.layers = 2;
  cfg.backend = backend;
  cfg.swat = SwatConfig();
  cfg.swat.head_dim = 8;
  cfg.swat.window_cores = 16;
  return cfg;
}

TEST(Linear, ForwardMatchesManualComputation) {
  Rng rng(1);
  Linear lin(3, 2, rng);
  lin.weight()(0, 0) = 1.0f;
  lin.weight()(0, 1) = 2.0f;
  lin.weight()(0, 2) = 3.0f;
  lin.weight()(1, 0) = -1.0f;
  lin.weight()(1, 1) = 0.5f;
  lin.weight()(1, 2) = 0.0f;
  lin.bias() = {10.0f, -10.0f};
  MatrixF x(1, 3);
  x(0, 0) = 1.0f;
  x(0, 1) = 1.0f;
  x(0, 2) = 1.0f;
  const MatrixF y = lin.forward(x);
  EXPECT_FLOAT_EQ(y(0, 0), 16.0f);
  EXPECT_FLOAT_EQ(y(0, 1), -10.5f);
}

TEST(Linear, XavierInitBounded) {
  Rng rng(2);
  Linear lin(100, 100, rng);
  const double bound = std::sqrt(6.0 / 200.0);
  for (float w : lin.weight().flat()) {
    EXPECT_LE(std::abs(w), bound + 1e-6);
  }
  EXPECT_EQ(lin.parameters(), 100 * 100 + 100);
}

TEST(LayerNorm, NormalizesRows) {
  Rng rng(3);
  LayerNorm ln(16);
  const MatrixF x = random_normal(8, 16, rng, 5.0);
  const MatrixF y = ln.forward(x);
  for (std::int64_t i = 0; i < y.rows(); ++i) {
    double mean = 0.0, var = 0.0;
    for (float v : y.row(i)) mean += v;
    mean /= 16.0;
    for (float v : y.row(i)) var += (v - mean) * (v - mean);
    var /= 16.0;
    EXPECT_NEAR(mean, 0.0, 1e-5);
    EXPECT_NEAR(var, 1.0, 1e-3);
  }
}

TEST(LayerNorm, AffineParametersApply) {
  LayerNorm ln(4);
  ln.gamma() = {2.0f, 2.0f, 2.0f, 2.0f};
  ln.beta() = {1.0f, 1.0f, 1.0f, 1.0f};
  MatrixF x(1, 4);
  x(0, 0) = -1.0f;
  x(0, 1) = 0.0f;
  x(0, 2) = 0.0f;
  x(0, 3) = 1.0f;
  const MatrixF y = ln.forward(x);
  // Mean 0, var 0.5 -> normalized {-sqrt2, 0, 0, sqrt2}; x2 + 1.
  EXPECT_NEAR(y(0, 0), 1.0f - 2.0f * std::sqrt(2.0f), 1e-4f);
  EXPECT_NEAR(y(0, 1), 1.0f, 1e-5f);
  EXPECT_NEAR(y(0, 3), 1.0f + 2.0f * std::sqrt(2.0f), 1e-4f);
}

TEST(Gelu, KnownValues) {
  EXPECT_NEAR(gelu(0.0f), 0.0f, 1e-7f);
  EXPECT_NEAR(gelu(1.0f), 0.8412f, 1e-3f);
  EXPECT_NEAR(gelu(-1.0f), -0.1588f, 1e-3f);
  EXPECT_GT(gelu(10.0f), 9.99f);  // ~identity for large x
  EXPECT_NEAR(gelu(-10.0f), 0.0f, 1e-4f);
}

TEST(Mha, BackendsAgreeWhenWindowCoversSequence) {
  // With seq_len <= window_after + 1 every row's band covers the whole
  // sequence, so window attention == dense attention; all three backends
  // must produce the same layer output (SWAT within fp16).
  Rng rng(4);
  const std::int64_t n = 8;  // band is [i-8, i+7] for the 16-core config
  const MatrixF x = random_normal(n, 32, rng);
  const EncoderConfig base = small_config(AttentionBackend::kDenseReference);

  Rng wrng1(99), wrng2(99), wrng3(99);
  MultiHeadAttention dense(32, 4, AttentionBackend::kDenseReference,
                           base.swat, wrng1);
  MultiHeadAttention window(32, 4, AttentionBackend::kWindowExact, base.swat,
                            wrng2);
  MultiHeadAttention sim(32, 4, AttentionBackend::kSwatSimulator, base.swat,
                         wrng3);

  const MatrixF yd = dense.forward(x);
  const MatrixF yw = window.forward(x);
  const MatrixF ys = sim.forward(x);
  swat::testing::expect_matrix_near(yw, yd, 1e-4f, "window vs dense");
  swat::testing::expect_matrix_near(ys, yd, 0.15f, "swat sim vs dense");
}

TEST(Mha, SwatBackendTracksWindowBackend) {
  Rng rng(5);
  const MatrixF x = random_normal(64, 32, rng);
  const EncoderConfig base = small_config(AttentionBackend::kWindowExact);
  Rng wrng1(7), wrng2(7);
  MultiHeadAttention window(32, 4, AttentionBackend::kWindowExact, base.swat,
                            wrng1);
  MultiHeadAttention sim(32, 4, AttentionBackend::kSwatSimulator, base.swat,
                         wrng2);
  const MatrixF yw = window.forward(x);
  const MatrixF ys = sim.forward(x);
  // The only difference is the fp16 datapath.
  swat::testing::expect_matrix_near(ys, yw, 0.15f, "swat vs window layer");
  EXPECT_GT(mean_row_cosine(ys, yw), 0.999);
}

TEST(Mha, StatsTrackTrafficAndHeads) {
  Rng rng(6);
  const std::int64_t n = 48;
  const MatrixF x = random_normal(n, 32, rng);
  const EncoderConfig base = small_config(AttentionBackend::kSwatSimulator);
  Rng wrng(8);
  MultiHeadAttention sim(32, 4, AttentionBackend::kSwatSimulator, base.swat,
                         wrng);
  (void)sim.forward(x);
  const AttentionStats& s = sim.last_stats();
  EXPECT_EQ(s.heads_run, 4);
  // 4 heads x (Q + K + V + Z) x n x 8 dims x 2 bytes.
  EXPECT_EQ(s.swat_offchip_traffic.count, 4ull * 4 * n * 8 * 2);
  EXPECT_EQ(s.swat_core_loads, 4 * n);
}

TEST(Mha, StatsSpanMustMatchSequenceCountOrBeEmpty) {
  // The documented contract: stats.size() == offsets.size() - 1, or 0.
  // Anything else would silently mis-attribute per-request counters, so it
  // must throw instead.
  Rng rng(31);
  const EncoderConfig base = small_config(AttentionBackend::kWindowExact);
  Rng wrng(12);
  MultiHeadAttention mha(32, 4, AttentionBackend::kWindowExact, base.swat,
                         wrng);
  const MatrixF x = random_normal(24, 32, rng);
  const std::vector<std::int64_t> offsets = {0, 10, 24};  // two sequences

  std::vector<AttentionStats> too_few(1), too_many(3), just_right(2);
  EXPECT_THROW(mha.forward_batch(x, offsets, too_few),
               std::invalid_argument);
  EXPECT_THROW(mha.forward_batch(x, offsets, too_many),
               std::invalid_argument);
  EXPECT_NO_THROW(mha.forward_batch(x, offsets, just_right));
  EXPECT_NO_THROW(mha.forward_batch(x, offsets, {}));
  EXPECT_EQ(just_right[0].heads_run, 4);
  EXPECT_EQ(just_right[1].heads_run, 4);
}

TEST(Linear, ForwardIntoMatchesForwardBitExact) {
  Rng rng(32);
  Linear lin(24, 40, rng);
  const MatrixF x = random_normal(13, 24, rng);
  const MatrixF want = lin.forward(x);
  MatrixF got;
  lin.forward_into(x, got);
  swat::testing::expect_matrix_equal(got, want, "forward_into vs forward");
  // Reuse at a smaller shape must still be exact (stale capacity retained).
  const MatrixF x2 = random_normal(5, 24, rng);
  const MatrixF want2 = lin.forward(x2);
  lin.forward_into(x2, got);
  swat::testing::expect_matrix_equal(got, want2, "forward_into reuse");
}

TEST(LayerNorm, ForwardIntoMatchesForwardAndWorksInPlace) {
  Rng rng(33);
  LayerNorm ln(16);
  ln.gamma() = std::vector<float>(16, 1.5f);
  ln.beta() = std::vector<float>(16, -0.25f);
  const MatrixF x = random_normal(7, 16, rng, 3.0);
  const MatrixF want = ln.forward(x);
  MatrixF got;
  ln.forward_into(x, got);
  swat::testing::expect_matrix_equal(got, want, "forward_into vs forward");
  MatrixF inplace = x;
  ln.forward_into(inplace, inplace);
  swat::testing::expect_matrix_equal(inplace, want, "in-place forward_into");
}

// ------------------------------------------- EncoderConfig::validate ----

TEST(EncoderConfigValidate, AcceptsTheStandardGeometries) {
  EXPECT_NO_THROW(small_config(AttentionBackend::kWindowExact).validate());
  EXPECT_NO_THROW(
      EncoderConfig::longformer_base(AttentionBackend::kWindowExact)
          .validate());
}

TEST(EncoderConfigValidate, RejectsIndivisibleHeads) {
  EncoderConfig cfg = small_config(AttentionBackend::kWindowExact);
  cfg.num_heads = 5;  // 32 % 5 != 0
  try {
    cfg.validate();
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("divisible by num_heads"),
              std::string::npos)
        << e.what();
  }
}

TEST(EncoderConfigValidate, RejectsNonPositiveDims) {
  EncoderConfig cfg = small_config(AttentionBackend::kWindowExact);
  cfg.d_model = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = small_config(AttentionBackend::kWindowExact);
  cfg.num_heads = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(EncoderConfigValidate, RejectsBadFfnMult) {
  EncoderConfig cfg = small_config(AttentionBackend::kWindowExact);
  cfg.ffn_mult = 0;
  try {
    cfg.validate();
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("ffn_mult"), std::string::npos);
  }
}

TEST(EncoderConfigValidate, RejectsZeroLayers) {
  EncoderConfig cfg = small_config(AttentionBackend::kWindowExact);
  cfg.layers = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  EXPECT_THROW(Encoder{cfg}, std::invalid_argument);  // ctor path too
}

TEST(EncoderConfigValidate, RejectsSwatHeadDimDrift) {
  EncoderConfig cfg = small_config(AttentionBackend::kWindowExact);
  cfg.swat.head_dim = 16;  // d_model / num_heads == 8
  try {
    cfg.validate();
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("head_dim"), std::string::npos)
        << e.what();
  }
}

TEST(Mha, RejectsMismatchedHeadDim) {
  Rng rng(9);
  SwatConfig bad;
  bad.head_dim = 16;  // d_model/heads = 8
  bad.window_cores = 16;
  EXPECT_THROW(MultiHeadAttention(32, 4, AttentionBackend::kWindowExact, bad,
                                  rng),
               std::invalid_argument);
}

TEST(Encoder, ForwardShapesAndDeterminism) {
  const EncoderConfig cfg = small_config(AttentionBackend::kWindowExact);
  const Encoder enc(cfg);
  Rng rng(10);
  const MatrixF x = random_normal(40, 32, rng);
  const MatrixF y1 = enc.forward(x);
  const MatrixF y2 = enc.forward(x);
  EXPECT_EQ(y1.rows(), 40);
  EXPECT_EQ(y1.cols(), 32);
  swat::testing::expect_matrix_equal(y1, y2, "determinism");
}

TEST(Encoder, EmptyInputYieldsEmptyOutput) {
  // The batched path requires non-empty sequences; the single-sequence
  // wrappers must keep accepting zero-row inputs (empty in, empty out).
  const EncoderConfig cfg = small_config(AttentionBackend::kWindowExact);
  const Encoder enc(cfg);
  const MatrixF y = enc.forward(MatrixF(0, cfg.d_model));
  EXPECT_EQ(y.rows(), 0);
  EXPECT_EQ(y.cols(), cfg.d_model);
}

TEST(Encoder, ParameterCount) {
  const EncoderConfig cfg = small_config(AttentionBackend::kWindowExact);
  const Encoder enc(cfg);
  // Per layer: 4 x (32x32 + 32) attention + ffn (32x64 + 64) + (64x32 + 32)
  // + 2 x layernorm (2 x 32).
  const std::int64_t mha = 4 * (32 * 32 + 32);
  const std::int64_t ffn = (32 * 64 + 64) + (64 * 32 + 32);
  const std::int64_t norms = 2 * 64;
  EXPECT_EQ(enc.parameters(), 2 * (mha + ffn + norms));
}

TEST(Encoder, SwatBackendStaysCloseToHostBackendOverDepth) {
  EncoderConfig host_cfg = small_config(AttentionBackend::kWindowExact);
  EncoderConfig swat_cfg = small_config(AttentionBackend::kSwatSimulator);
  host_cfg.weight_seed = swat_cfg.weight_seed = 42;
  const Encoder host(host_cfg);
  const Encoder accel(swat_cfg);
  Rng rng(11);
  const MatrixF x = random_normal(64, 32, rng);
  const MatrixF yh = host.forward(x);
  const MatrixF ya = accel.forward(x);
  // fp16 error compounds over layers but layer norms keep it bounded.
  EXPECT_GT(mean_row_cosine(ya, yh), 0.99);
  EXPECT_GT(accel.last_swat_traffic().count, 0u);
  EXPECT_EQ(host.last_swat_traffic().count, 0u);
}

TEST(Encoder, LongformerBaseFactory) {
  const EncoderConfig cfg =
      EncoderConfig::longformer_base(AttentionBackend::kWindowExact);
  EXPECT_EQ(cfg.d_model, 768);
  EXPECT_EQ(cfg.num_heads, 12);
  EXPECT_EQ(cfg.layers, 8);
  EXPECT_EQ(cfg.swat.head_dim, 64);
  EXPECT_EQ(cfg.swat.window_cores, 512);
}

}  // namespace
}  // namespace swat::model
