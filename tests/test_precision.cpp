// Tests for the half-precision packed-weight path (EncoderConfig::
// pack_dtype = Dtype::kFp16) and its calibrated fidelity gate.
//
// The load-bearing guarantees under test:
//   * FIDELITY: the fp16 pack's deviation from the fp32 oracle fits the
//     budget derived in eval/calibration.hpp — per-layer (teacher-forced)
//     against u * sqrt(k_max), end-to-end (free-running) against layers x
//     that budget, with the matching cosine floors. This is the gate that
//     lets serving flip the knob without re-deriving accuracy claims.
//   * DETERMINISM: fp16-packed outputs are bit-identical across runs,
//     across SWAT_THREADS, and across batch compositions — the same
//     structural guarantee the fp32 path has; only oracle bit-parity is
//     given up.
//   * REGRESSION: the fp32 default stays bit-identical to the allocating
//     Encoder oracle — the fp16 path rides beside it, never through it.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "common/thread_pool.hpp"
#include "eval/calibration.hpp"
#include "eval/precision_fidelity.hpp"
#include "runtime/cost_model.hpp"
#include "runtime/engine.hpp"
#include "runtime/runtime.hpp"
#include "tensor/kernels.hpp"
#include "test_util.hpp"

namespace swat {
namespace {

using model::AttentionBackend;
using model::EncoderConfig;

using swat::testing::expect_matrix_equal;
using swat::testing::ThreadCountGuard;

/// The compact geometry the runtime tests standardize on, with a deeper
/// FFN (ffn_mult 4) so the longest reduction the budget bounds is
/// exercised at a meaningful depth.
EncoderConfig small_config(Dtype pack_dtype = Dtype::kFp32) {
  EncoderConfig cfg;
  cfg.d_model = 64;
  cfg.num_heads = 2;
  cfg.ffn_mult = 4;
  cfg.layers = 2;
  cfg.backend = AttentionBackend::kWindowExact;
  cfg.swat = SwatConfig();
  cfg.swat.head_dim = 32;
  cfg.swat.window_cores = 32;
  cfg.weight_seed = 5;
  cfg.pack_dtype = pack_dtype;
  return cfg;
}

std::pair<MatrixF, std::vector<std::int64_t>> make_packed(
    const EncoderConfig& cfg, const std::vector<std::int64_t>& lengths,
    std::uint64_t seed = 99) {
  Rng rng(seed);
  std::vector<std::int64_t> offsets = {0};
  std::int64_t rows = 0;
  for (const std::int64_t len : lengths) offsets.push_back(rows += len);
  MatrixF packed = random_normal(rows, cfg.d_model, rng);
  return {std::move(packed), std::move(offsets)};
}

// ------------------------------------------------------- fidelity gate ----

TEST(PrecisionFidelity, Fp16PackFitsTheCalibratedBudget) {
  const auto result =
      eval::precision_fidelity(small_config(), /*seq_len=*/96,
                               /*input_seed=*/11);
  ASSERT_EQ(result.per_layer.size(), 2u);
  // The budgets come straight from calibration.
  EXPECT_DOUBLE_EQ(result.layer_budget, calib::kFp16LayerRelErrBudget);
  EXPECT_DOUBLE_EQ(result.end_to_end_budget,
                   2.0 * calib::kFp16EndToEndRelErrPerLayer);
  // The pack genuinely rounds (a zero error would mean the fp16 path is
  // silently serving fp32 panels) ...
  EXPECT_GT(result.worst_layer_rel_error, 0.0);
  EXPECT_GT(result.end_to_end_rel_error, 0.0);
  // ... and the rounding fits the budget with the cosine floors. This is
  // THE gate: loosening calibration or breaking the widen-on-load path
  // fails here, not in production.
  EXPECT_LE(result.worst_layer_rel_error, result.layer_budget);
  EXPECT_GE(result.worst_layer_cosine,
            calib::fp16_cosine_floor(result.layer_budget));
  EXPECT_LE(result.end_to_end_rel_error, result.end_to_end_budget);
  EXPECT_GE(result.end_to_end_cosine,
            calib::fp16_cosine_floor(result.end_to_end_budget));
  EXPECT_TRUE(result.within_budget);
}

TEST(PrecisionFidelity, BudgetDerivationIsSelfConsistent) {
  // 2^-11 unit roundoff x 64 amplification = 1/32; the cosine floor is
  // second order in the budget, so it sits just below 1.
  EXPECT_DOUBLE_EQ(calib::kFp16LayerRelErrBudget, 1.0 / 32.0);
  EXPECT_GT(calib::fp16_cosine_floor(calib::kFp16LayerRelErrBudget),
            0.999);
  EXPECT_LT(calib::fp16_cosine_floor(calib::kFp16LayerRelErrBudget), 1.0);
}

// ------------------------------------------------- packed-weight dtype ----

TEST(PackedWeightF16, PackStoresHalfPanelsWithFullElementCount) {
  Rng rng(3);
  const MatrixF w = random_normal(70, 33, rng);  // forces row+k padding
  PackedWeight f32;
  pack_weight_nt(w, f32);
  PackedWeight f16;
  pack_weight_nt(w, f16, Dtype::kFp16);
  EXPECT_EQ(f32.dtype, Dtype::kFp32);
  EXPECT_EQ(f16.dtype, Dtype::kFp16);
  // Same logical layout, half the bytes.
  EXPECT_EQ(f16.floats(), f32.floats());
  EXPECT_EQ(f16.floats(), PackedWeight::padded_elements(70, 33));
  EXPECT_EQ(f16.bytes() * 2, f32.bytes());
  EXPECT_TRUE(f16.data.empty());
  EXPECT_TRUE(f32.data_f16.empty());
  // Every fp16 panel element is the RNE rounding of the fp32 one.
  for (std::size_t i = 0; i < f32.data.size(); ++i) {
    ASSERT_EQ(f16.data_f16[i], f32_to_f16_bits(f32.data[i])) << "i=" << i;
  }
}

TEST(PackedWeightF16, GemmTracksTheRoundedOracleWithinBudget) {
  Rng rng(4);
  const std::int64_t m = 37, k = 96, n = 50;
  const MatrixF a = random_normal(m, k, rng);
  const MatrixF w = random_normal(n, k, rng);
  // Oracle: the same GEMM against master weights rounded through fp16 —
  // what fp32 accumulation over half-stored panels should produce, up to
  // contraction (the fp16 tile allows FMA; same ascending-k order).
  MatrixF w_rounded(n, k);
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = 0; j < k; ++j) {
      w_rounded(i, j) = f16_bits_to_f32(f32_to_f16_bits(w(i, j)));
    }
  }
  PackedWeight pf16, pref;
  pack_weight_nt(w, pf16, Dtype::kFp16);
  pack_weight_nt(w_rounded, pref);
  const std::vector<float> bias(static_cast<std::size_t>(n), 0.25f);
  MatrixF y16(m, n), yref(m, n);
  gemm_packed_into(a, pf16, bias, y16);
  gemm_packed_into(a, pref, bias, yref);
  // FMA keeps partial products at full precision, so the contracted tile
  // sits within a few float ulps of the non-contracted oracle.
  EXPECT_LT(relative_error(y16, yref), 1e-6);
  // And genuinely differs from the unrounded fp32 pack (the knob is live).
  MatrixF y32(m, n);
  gemm_packed_into(a, pref, bias, y32);
  pack_weight_nt(w, pref);
  gemm_packed_into(a, pref, bias, y32);
  EXPECT_GT(relative_error(y16, y32), 0.0);
  EXPECT_LT(relative_error(y16, y32), calib::kFp16LayerRelErrBudget);
}

TEST(PackedWeightF16, GemmIsBitIdenticalAcrossThreadCounts) {
  Rng rng(6);
  const std::int64_t m = 130, k = 64, n = 70;  // multiple row/panel tiles
  const MatrixF a = random_normal(m, k, rng);
  const MatrixF w = random_normal(n, k, rng);
  PackedWeight packed;
  pack_weight_nt(w, packed, Dtype::kFp16);
  const std::vector<float> bias(static_cast<std::size_t>(n), -0.5f);
  MatrixF solo(m, n), wide(m, n);
  {
    ThreadCountGuard guard(1);
    gemm_packed_into(a, packed, bias, solo);
  }
  {
    ThreadCountGuard guard(4);
    gemm_packed_into(a, packed, bias, wide);
  }
  expect_matrix_equal(wide, solo, "fp16 gemm across thread counts");
}

// ------------------------------------------------- engine determinism ----

TEST(PrecisionEngine, Fp16RunIsBitIdenticalRunToRun) {
  const EncoderConfig cfg = small_config(Dtype::kFp16);
  auto [packed, offsets] = make_packed(cfg, {33, 17, 48});
  Engine engine = Engine::compile(cfg, 128);
  const MatrixF first = engine.run(packed, offsets);
  for (int round = 0; round < 3; ++round) {
    const MatrixF& again = engine.run(packed, offsets);
    expect_matrix_equal(again, first, "fp16 engine run-to-run");
  }
  // A second engine built from the same config reproduces it too.
  Engine rebuilt = Engine::compile(cfg, 128);
  expect_matrix_equal(rebuilt.run(packed, offsets), first,
                      "fp16 engine rebuild");
}

TEST(PrecisionEngine, Fp16RunIsThreadCountInvariant) {
  const EncoderConfig cfg = small_config(Dtype::kFp16);
  auto [packed, offsets] = make_packed(cfg, {40, 24});
  Engine engine = Engine::compile(cfg, 128);
  MatrixF solo, wide;
  {
    ThreadCountGuard guard(1);
    solo = engine.run(packed, offsets);
  }
  {
    ThreadCountGuard guard(4);
    wide = engine.run(packed, offsets);
  }
  expect_matrix_equal(wide, solo, "fp16 engine across thread counts");
}

TEST(PrecisionEngine, Fp16BatchCompositionCannotChangeResults) {
  const EncoderConfig cfg = small_config(Dtype::kFp16);
  auto [packed, offsets] = make_packed(cfg, {21, 35});
  Engine engine = Engine::compile(cfg, 128);
  const MatrixF batched = engine.run(packed, offsets);
  // Each sequence run alone must reproduce its batched rows bit for bit.
  for (std::size_t s = 0; s + 1 < offsets.size(); ++s) {
    const std::int64_t lo = offsets[s], hi = offsets[s + 1];
    MatrixF alone(hi - lo, cfg.d_model);
    for (std::int64_t i = lo; i < hi; ++i) {
      for (std::int64_t j = 0; j < cfg.d_model; ++j) {
        alone(i - lo, j) = packed(i, j);
      }
    }
    const std::vector<std::int64_t> solo_offsets = {0, hi - lo};
    const MatrixF& out = engine.run(alone, solo_offsets);
    for (std::int64_t i = 0; i < out.rows(); ++i) {
      for (std::int64_t j = 0; j < out.cols(); ++j) {
        ASSERT_EQ(out(i, j), batched(lo + i, j))
            << "sequence " << s << " row " << i << " col " << j;
      }
    }
  }
}

TEST(PrecisionEngine, Fp32DefaultStaysBitIdenticalToTheOracle) {
  // The regression that proves the fp16 path rides BESIDE the fp32 path:
  // a default-dtype engine still matches the allocating encoder bit for
  // bit, and an fp16 engine from the same weights measurably differs.
  const EncoderConfig cfg = small_config();
  ASSERT_EQ(cfg.pack_dtype, Dtype::kFp32);
  auto [packed, offsets] = make_packed(cfg, {29, 43});
  Engine engine = Engine::compile(cfg, 128);
  const model::Encoder oracle(cfg);
  expect_matrix_equal(engine.run(packed, offsets),
                      oracle.forward_batch(packed, offsets),
                      "fp32 default vs oracle");
  Engine half = Engine::compile(small_config(Dtype::kFp16), 128);
  EXPECT_GT(max_abs_diff(half.run(packed, offsets),
                         oracle.forward_batch(packed, offsets)),
            0.0f);
}

// ------------------------------------------------- footprint and cost ----

TEST(PrecisionFootprint, Fp16HalvesPackedWeightBytesNotFloats) {
  Engine f32(small_config());
  Engine f16(small_config(Dtype::kFp16));
  EXPECT_EQ(f16.packed_weight_floats(), f32.packed_weight_floats());
  EXPECT_EQ(f16.packed_weight_bytes() * 2, f32.packed_weight_bytes());
  EXPECT_EQ(f32.packed_weight_bytes(), f32.packed_weight_floats() * 4);
}

TEST(PrecisionFootprint, CostModelSweepMatchesEngineResidentBytes) {
  for (const Dtype dtype : {Dtype::kFp32, Dtype::kFp16}) {
    const EncoderConfig cfg = small_config(dtype);
    const BatchCostModel model(cfg);
    const Engine engine(cfg);
    // The cost model prices the sweep from geometry alone; a non-sharing
    // engine's resident pack IS one sweep. The identity keeps dispatch
    // honest about what the dtype knob changes.
    EXPECT_EQ(model.weight_stream_bytes().count,
              static_cast<std::uint64_t>(engine.packed_weight_bytes()))
        << dtype_name(dtype);
    EXPECT_GT(model.weight_stream_seconds().value, 0.0);
  }
}

TEST(PrecisionFootprint, RuntimeChargesOneWeightSweepPerBatch) {
  const EncoderConfig cfg = small_config(Dtype::kFp16);
  BatchingOptions batching;
  batching.max_batch_tokens = 64;
  batching.bucket_width = 32;
  Runtime runtime(cfg, batching);
  std::vector<InferenceRequest> requests;
  Rng rng(17);
  for (int i = 0; i < 3; ++i) {
    InferenceRequest req;
    req.id = static_cast<std::uint64_t>(i);
    req.input = random_normal(40, cfg.d_model, rng);
    requests.push_back(std::move(req));
  }
  runtime.run(requests);
  const RuntimeTotals totals = runtime.totals();
  ASSERT_GT(totals.batches, 0);
  EXPECT_EQ(totals.weight_stream_bytes.count,
            static_cast<std::uint64_t>(totals.batches) *
                BatchCostModel(cfg).weight_stream_bytes().count);
}

// ------------------------------------------------------ config guards ----

TEST(PrecisionConfig, EnginePrototypeDtypeMismatchIsRejected) {
  const Engine prototype(small_config(Dtype::kFp16));
  try {
    Engine replica(small_config(Dtype::kFp32), prototype);
    FAIL() << "dtype-mismatched shared pack was accepted";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("pack_dtype"), std::string::npos) << what;
  }
}

TEST(PrecisionConfig, MatchingDtypeSharedPackStaysBitIdentical) {
  const EncoderConfig cfg = small_config(Dtype::kFp16);
  const Engine prototype(cfg);
  Engine replica(cfg, prototype);
  EXPECT_EQ(replica.packed_weight_floats(), 0u);
  EXPECT_EQ(replica.packed_weight_bytes(), 0u);
  auto [packed, offsets] = make_packed(cfg, {26, 30});
  Engine solo = Engine::compile(cfg, 64);
  ExecutionPlan plan = replica.make_plan(64);
  expect_matrix_equal(replica.run(plan, packed, offsets),
                      solo.run(packed, offsets),
                      "shared fp16 pack vs private pack");
}

TEST(PrecisionConfig, EncoderConfigRejectsUnknownPackDtype) {
  EncoderConfig cfg = small_config();
  cfg.pack_dtype = static_cast<Dtype>(42);
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

}  // namespace
}  // namespace swat
