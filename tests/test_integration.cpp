// End-to-end integration tests across library layers.
#include <gtest/gtest.h>

#include "attention/sliding_chunks.hpp"
#include "attention/window.hpp"
#include "baselines/gpu_model.hpp"
#include "swat/analytic.hpp"
#include "swat/functional_sim.hpp"
#include "swat/power_model.hpp"
#include "swat/timing_sim.hpp"
#include "test_util.hpp"

namespace swat {
namespace {

TEST(Integration, ThreeImplementationsOneAnswer) {
  // Exact window attention, sliding chunks, and the SWAT functional
  // simulator all compute the same mathematical object (up to the band
  // convention and datapath precision).
  Rng rng(1);
  const std::int64_t n = 128;
  const attn::HeadInput in = attn::random_head_input(n, 8, rng);

  // Symmetric-band pair: exact vs chunks.
  const MatrixF exact = attn::window_attention(in, 8);
  const auto chunks = attn::sliding_chunks_attention(in, 8);
  swat::testing::expect_matrix_near(chunks.z, exact, 2e-5f,
                                    "chunks vs exact");

  // Hardware band pair: fp32 simulator vs band oracle.
  SwatConfig cfg;
  cfg.dtype = Dtype::kFp32;
  cfg.head_dim = 8;
  cfg.window_cores = 16;
  const MatrixF hw = FunctionalSimulator(cfg).run(in).z;
  swat::testing::expect_matrix_near(hw, attn::band_attention(in, 8, 7), 1e-4f,
                                    "sim vs band oracle");
}

TEST(Integration, MultiHeadAttentionLayerThroughTheSimulator) {
  // Run a 4-head layer head by head (how the hardware schedules heads) and
  // check each against its oracle.
  Rng rng(2);
  SwatConfig cfg;
  cfg.head_dim = 16;
  cfg.window_cores = 32;
  const FunctionalSimulator sim(cfg);
  for (int head = 0; head < 4; ++head) {
    const attn::HeadInput in = attn::random_head_input(96, 16, rng);
    const auto res = sim.run(in);
    swat::testing::expect_matrix_near(res.z,
                                      attn::band_attention(in, 16, 15),
                                      0.04f, "per-head output");
  }
}

TEST(Integration, TimingAndTrafficConsistency) {
  // The functional simulator's measured traffic must equal the analytic
  // model's closed form for the pure window configuration.
  Rng rng(3);
  SwatConfig cfg;
  cfg.head_dim = 8;
  cfg.window_cores = 16;
  const std::int64_t n = 192;
  const attn::HeadInput in = attn::random_head_input(n, 8, rng);
  const auto res = FunctionalSimulator(cfg).run(in);
  const AnalyticModel model(cfg);
  EXPECT_EQ(res.total_read().count + res.z_bytes_written.count,
            model.head_traffic(n).count);
}

TEST(Integration, LatencyEnergyRollupForALongDocument) {
  // A "document-scale" sanity check tying latency, power and energy
  // together: 16k tokens, 12 heads x 8 layers, FP16.
  const SwatConfig cfg = SwatConfig::longformer_512();
  const AnalyticModel model(cfg);
  const Seconds t = model.model_time(16384, 12, 8);
  const Joules e = swat_model_energy(cfg, 16384, 12, 8);
  // 96 heads x ~11 ms ~ 1.05 s.
  EXPECT_NEAR(t.value, 1.05, 0.05);
  // Energy = power x time, and power is in the calibrated band.
  EXPECT_NEAR(e.value / t.value, swat_power(cfg).value, 1e-9);
}

TEST(Integration, TimingSimAgreesWithAnalyticOnBigBird) {
  const SwatConfig cfg = SwatConfig::bigbird_512();
  EXPECT_EQ(TimingSimulator(cfg).run(4096).total.count,
            AnalyticModel(cfg).head_cycles(4096).count);
}

TEST(Integration, SwatBeatsGpuBeyond8kInLatency) {
  // The scalability crossover of Fig. 3: by 16k+ SWAT FP16 outruns both
  // GPU kernels.
  const AnalyticModel swat(SwatConfig::longformer_512());
  const baselines::GpuModel gpu;
  const double t_swat = swat.head_time(16384).value;
  EXPECT_LT(t_swat,
            gpu.estimate(baselines::GpuKernel::kDense, 16384).latency.value);
  EXPECT_LT(t_swat, gpu.estimate(baselines::GpuKernel::kSlidingChunks, 16384)
                        .latency.value);
}

TEST(Integration, DeterministicEndToEnd) {
  Rng rng1(7);
  Rng rng2(7);
  SwatConfig cfg;
  cfg.head_dim = 8;
  cfg.window_cores = 16;
  cfg.global_cores = 8;
  cfg.random_cores = 8;
  const attn::HeadInput a = attn::random_head_input(64, 8, rng1);
  const attn::HeadInput b = attn::random_head_input(64, 8, rng2);
  swat::testing::expect_matrix_equal(FunctionalSimulator(cfg).run(a).z,
                                     FunctionalSimulator(cfg).run(b).z,
                                     "determinism");
}

}  // namespace
}  // namespace swat
