// Tests for the functional (value-level) accelerator simulator — the key
// cross-validation layer of the reproduction.
#include <gtest/gtest.h>

#include "attention/fused.hpp"
#include "attention/window.hpp"
#include "swat/functional_sim.hpp"
#include "test_util.hpp"

namespace swat {
namespace {

/// A small SWAT config (16 cores, H = 8) so oracles stay fast.
SwatConfig small_window_config(Dtype dtype = Dtype::kFp16) {
  SwatConfig c;
  c.dtype = dtype;
  c.head_dim = 8;
  c.window_cores = 16;
  return c;
}

TEST(FunctionalSim, BitExactAgainstIndependentFp16Kernel) {
  // The simulator (attention cores + FIFO + reduction trees) and the host
  // kernel attn::fused_window_attention_fp16 are two independent
  // implementations of the same datapath spec; they must agree bit for bit.
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    for (std::int64_t n : {24, 64, 100}) {
      Rng rng(seed);
      const attn::HeadInput in = attn::random_head_input(n, 8, rng);
      const FunctionalSimulator sim(small_window_config());
      const MatrixF hw = sim.run(in).z;
      const MatrixF host = attn::fused_window_attention_fp16(in, 8);
      swat::testing::expect_matrix_equal(hw, host, "sim vs host fp16");
    }
  }
}

TEST(FunctionalSim, MatchesFp32BandOracleWithinHalfPrecision) {
  Rng rng(4);
  const attn::HeadInput in = attn::random_head_input(128, 8, rng);
  const FunctionalSimulator sim(small_window_config());
  const MatrixF hw = sim.run(in).z;
  const MatrixF oracle = attn::band_attention(in, 8, 7);
  swat::testing::expect_matrix_near(hw, oracle, 0.03f, "sim vs fp32 oracle");
}

TEST(FunctionalSim, Fp32ConfigMatchesOracleTightly) {
  Rng rng(5);
  const attn::HeadInput in = attn::random_head_input(128, 8, rng);
  const FunctionalSimulator sim(small_window_config(Dtype::kFp32));
  const MatrixF hw = sim.run(in).z;
  const MatrixF oracle = attn::band_attention(in, 8, 7);
  swat::testing::expect_matrix_near(hw, oracle, 1e-4f, "fp32 sim vs oracle");
}

TEST(FunctionalSim, EveryInputElementLoadedExactlyOnce) {
  // Paper §3.2: "ensuring data is loaded exactly once and achieving 100%
  // off-chip memory transfer efficiency." Measured, not assumed.
  Rng rng(6);
  const std::int64_t n = 256;
  const attn::HeadInput in = attn::random_head_input(n, 8, rng);
  const FunctionalSimulator sim(small_window_config());
  const auto res = sim.run(in);
  const std::uint64_t bytes = 2;  // fp16
  EXPECT_EQ(res.q_bytes_read.count, static_cast<std::uint64_t>(n) * 8 * bytes);
  EXPECT_EQ(res.kv_bytes_read.count,
            2 * static_cast<std::uint64_t>(n) * 8 * bytes);
  EXPECT_EQ(res.z_bytes_written.count,
            static_cast<std::uint64_t>(n) * 8 * bytes);
  EXPECT_EQ(res.window_core_loads, n);  // each K/V row enters a core once
  EXPECT_EQ(res.random_core_loads, 0);
  EXPECT_EQ(res.fifo_evictions, n - 16);  // all but the resident band
}

TEST(FunctionalSim, AttendedPairsMatchPatternNnz) {
  Rng rng(7);
  const std::int64_t n = 120;
  const attn::HeadInput in = attn::random_head_input(n, 8, rng);
  const SwatConfig cfg = small_window_config();
  const FunctionalSimulator sim(cfg);
  const auto res = sim.run(in);
  const attn::AttentionPattern pattern(cfg.pattern_spec(n));
  EXPECT_EQ(res.attended_pairs, pattern.nnz());
}

SwatConfig small_bigbird_config() {
  SwatConfig c;
  c.dtype = Dtype::kFp16;
  c.head_dim = 8;
  c.window_cores = 16;
  c.global_cores = 4;
  c.random_cores = 4;
  return c;
}

TEST(FunctionalSim, BigbirdMatchesMaskedOracle) {
  Rng rng(8);
  const std::int64_t n = 96;
  const attn::HeadInput in = attn::random_head_input(n, 8, rng);
  const SwatConfig cfg = small_bigbird_config();
  const FunctionalSimulator sim(cfg);
  const MatrixF hw = sim.run(in).z;
  const attn::AttentionPattern pattern(cfg.pattern_spec(n));
  const MatrixF oracle = attn::masked_attention(in, pattern);
  swat::testing::expect_matrix_near(hw, oracle, 0.04f,
                                    "bigbird sim vs masked oracle");
}

TEST(FunctionalSim, BigbirdLoadAccounting) {
  Rng rng(9);
  const std::int64_t n = 96;
  const attn::HeadInput in = attn::random_head_input(n, 8, rng);
  const SwatConfig cfg = small_bigbird_config();
  const auto res = FunctionalSimulator(cfg).run(in);
  // Globals preloaded once.
  EXPECT_EQ(res.global_core_loads, 4);
  // Window rows streamed once each.
  EXPECT_EQ(res.window_core_loads, n);
  // Random cores reload per row (up to 4 per row; deduped when a random
  // token falls inside the band or the global set).
  EXPECT_GT(res.random_core_loads, 0);
  EXPECT_LE(res.random_core_loads, 4 * n);
}

TEST(FunctionalSim, Fp32TrafficUsesFourByteWords) {
  Rng rng(10);
  const std::int64_t n = 64;
  const attn::HeadInput in = attn::random_head_input(n, 8, rng);
  const auto res = FunctionalSimulator(small_window_config(Dtype::kFp32))
                       .run(in);
  EXPECT_EQ(res.q_bytes_read.count, static_cast<std::uint64_t>(n) * 8 * 4);
}

TEST(FunctionalSim, ShortSequenceSmallerThanCoreArray) {
  Rng rng(11);
  const attn::HeadInput in = attn::random_head_input(10, 8, rng);
  const FunctionalSimulator sim(small_window_config());
  const MatrixF hw = sim.run(in).z;
  // Band covers the whole sequence: equals full dense attention (up to
  // fp16) because every row attends everything within [i-8, i+7].
  const MatrixF oracle = attn::band_attention(in, 8, 7);
  swat::testing::expect_matrix_near(hw, oracle, 0.03f, "short sequence");
  EXPECT_EQ(sim.run(in).fifo_evictions, 0);
}

TEST(FunctionalSim, HeadDimMismatchThrows) {
  Rng rng(12);
  const attn::HeadInput in = attn::random_head_input(32, 16, rng);
  const FunctionalSimulator sim(small_window_config());  // H = 8
  EXPECT_THROW(sim.run(in), std::invalid_argument);
}

TEST(FunctionalSim, ExpLutOptionChangesOutputSlightly) {
  Rng rng(13);
  const attn::HeadInput in = attn::random_head_input(64, 8, rng);
  FunctionalOptions lut;
  lut.exp_lut_segments = 32;
  const MatrixF exact = FunctionalSimulator(small_window_config()).run(in).z;
  const MatrixF approx =
      FunctionalSimulator(small_window_config(), lut).run(in).z;
  const float diff = max_abs_diff(exact, approx);
  EXPECT_GT(diff, 0.0f);   // the LUT is visible...
  EXPECT_LT(diff, 0.05f);  // ...but small
}

TEST(FunctionalSim, StandardLongformerConfigSmokeTest) {
  // Full 512-core, H = 64 configuration on a short-but-real sequence.
  Rng rng(14);
  const std::int64_t n = 640;
  const attn::HeadInput in = attn::random_head_input(n, 64, rng);
  const SwatConfig cfg = SwatConfig::longformer_512();
  const auto res = FunctionalSimulator(cfg).run(in);
  const MatrixF oracle = attn::band_attention(in, 256, 255);
  swat::testing::expect_matrix_near(res.z, oracle, 0.05f,
                                    "512-core config vs oracle");
  EXPECT_EQ(res.window_core_loads, n);
}

}  // namespace
}  // namespace swat
