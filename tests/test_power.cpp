// Tests for the generic XPE-style power model.
#include <gtest/gtest.h>

#include "hw/power.hpp"

namespace swat::hw {
namespace {

PowerCoefficients coeff() {
  PowerCoefficients c;
  c.static_power = Watts{5.0};
  c.reference_clock = Hertz::mega(300.0);
  c.dsp_mw = 2.0;
  c.lut_mw = 0.01;
  c.ff_mw = 0.005;
  c.bram_mw = 4.0;
  c.hbm_w_per_gbps = 0.01;
  return c;
}

TEST(Power, StaticOnlyWhenIdle) {
  const ResourceVector used{.dsp = 100, .lut = 1000, .ff = 1000, .bram = 10,
                            .uram = 0};
  Activity idle;
  idle.dsp_toggle = idle.lut_toggle = idle.ff_toggle = idle.bram_toggle = 0.0;
  idle.hbm_gbps = 0.0;
  const Watts p = estimate_power(coeff(), used, Hertz::mega(300.0), idle);
  EXPECT_DOUBLE_EQ(p.value, 5.0);
}

TEST(Power, DynamicScalesWithResources) {
  Activity act;
  act.dsp_toggle = 1.0;
  act.lut_toggle = act.ff_toggle = act.bram_toggle = 0.0;
  act.hbm_gbps = 0.0;
  const ResourceVector one{.dsp = 1000, .lut = 0, .ff = 0, .bram = 0,
                           .uram = 0};
  const ResourceVector two{.dsp = 2000, .lut = 0, .ff = 0, .bram = 0,
                           .uram = 0};
  const double p1 =
      estimate_power(coeff(), one, Hertz::mega(300.0), act).value - 5.0;
  const double p2 =
      estimate_power(coeff(), two, Hertz::mega(300.0), act).value - 5.0;
  EXPECT_NEAR(p2, 2.0 * p1, 1e-12);
  EXPECT_NEAR(p1, 2.0, 1e-12);  // 1000 DSP x 2 mW
}

TEST(Power, DynamicScalesWithFrequency) {
  Activity act;
  act.dsp_toggle = 1.0;
  act.lut_toggle = act.ff_toggle = act.bram_toggle = 0.0;
  const ResourceVector used{.dsp = 1000, .lut = 0, .ff = 0, .bram = 0,
                            .uram = 0};
  const double at300 =
      estimate_power(coeff(), used, Hertz::mega(300.0), act).value - 5.0;
  const double at150 =
      estimate_power(coeff(), used, Hertz::mega(150.0), act).value - 5.0;
  EXPECT_NEAR(at150, at300 / 2.0, 1e-12);
}

TEST(Power, ToggleRateScalesLinearly) {
  const ResourceVector used{.dsp = 0, .lut = 100000, .ff = 0, .bram = 0,
                            .uram = 0};
  Activity half;
  half.lut_toggle = 0.5;
  half.dsp_toggle = half.ff_toggle = half.bram_toggle = 0.0;
  Activity full = half;
  full.lut_toggle = 1.0;
  const double ph =
      estimate_power(coeff(), used, Hertz::mega(300.0), half).value - 5.0;
  const double pf =
      estimate_power(coeff(), used, Hertz::mega(300.0), full).value - 5.0;
  EXPECT_NEAR(pf, 2.0 * ph, 1e-12);
}

TEST(Power, HbmTermIndependentOfClock) {
  Activity act;
  act.dsp_toggle = act.lut_toggle = act.ff_toggle = act.bram_toggle = 0.0;
  act.hbm_gbps = 100.0;
  const ResourceVector none{};
  const double a =
      estimate_power(coeff(), none, Hertz::mega(300.0), act).value;
  const double b =
      estimate_power(coeff(), none, Hertz::mega(100.0), act).value;
  EXPECT_DOUBLE_EQ(a, b);
  EXPECT_NEAR(a, 5.0 + 1.0, 1e-12);
}

TEST(Power, InvalidClockThrows) {
  Activity act;
  EXPECT_THROW(estimate_power(coeff(), ResourceVector{}, Hertz{0.0}, act),
               std::invalid_argument);
}

}  // namespace
}  // namespace swat::hw
