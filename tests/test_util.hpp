// Shared helpers for the test suite.
#pragma once

#include <gtest/gtest.h>

#include "attention/reference.hpp"
#include "common/thread_pool.hpp"
#include "tensor/kernels.hpp"

namespace swat::testing {

/// Sets the pool's thread count for one scope and restores the ambient
/// value on exit, so tests don't leak pool configuration into each other.
class ThreadCountGuard {
 public:
  explicit ThreadCountGuard(int n) : saved_(num_threads()) {
    set_num_threads(n);
  }
  ~ThreadCountGuard() { set_num_threads(saved_); }
  ThreadCountGuard(const ThreadCountGuard&) = delete;
  ThreadCountGuard& operator=(const ThreadCountGuard&) = delete;

 private:
  int saved_;
};

/// Assert two matrices agree element-wise within `tol`.
inline void expect_matrix_near(const MatrixF& actual, const MatrixF& expected,
                               float tol, const char* what = "") {
  ASSERT_EQ(actual.rows(), expected.rows()) << what;
  ASSERT_EQ(actual.cols(), expected.cols()) << what;
  const float diff = max_abs_diff(actual, expected);
  EXPECT_LE(diff, tol) << what << " max |diff| = " << diff;
}

/// Assert two matrices are bit-identical.
inline void expect_matrix_equal(const MatrixF& actual,
                                const MatrixF& expected,
                                const char* what = "") {
  ASSERT_EQ(actual.rows(), expected.rows()) << what;
  ASSERT_EQ(actual.cols(), expected.cols()) << what;
  for (std::int64_t i = 0; i < actual.rows(); ++i) {
    for (std::int64_t j = 0; j < actual.cols(); ++j) {
      ASSERT_EQ(actual(i, j), expected(i, j))
          << what << " mismatch at (" << i << ", " << j << ")";
    }
  }
}

}  // namespace swat::testing
