// Tests for the dense host kernels (the oracles' oracle).
#include <gtest/gtest.h>

#include <cmath>

#include "tensor/kernels.hpp"
#include "test_util.hpp"

namespace swat {
namespace {

TEST(Matmul, SmallKnown) {
  MatrixF a(2, 3);
  MatrixF b(3, 2);
  float va = 1.0f;
  for (float& v : a.flat()) v = va++;
  float vb = 1.0f;
  for (float& v : b.flat()) v = vb++;
  const MatrixF c = matmul(a, b);
  // a = [1 2 3; 4 5 6], b = [1 2; 3 4; 5 6] -> c = [22 28; 49 64]
  EXPECT_FLOAT_EQ(c(0, 0), 22.0f);
  EXPECT_FLOAT_EQ(c(0, 1), 28.0f);
  EXPECT_FLOAT_EQ(c(1, 0), 49.0f);
  EXPECT_FLOAT_EQ(c(1, 1), 64.0f);
}

TEST(Matmul, ShapeMismatchThrows) {
  MatrixF a(2, 3);
  MatrixF b(2, 3);
  EXPECT_THROW(matmul(a, b), std::invalid_argument);
}

TEST(Matmul, NtEquivalentToExplicitTranspose) {
  Rng rng(5);
  const MatrixF a = random_normal(7, 5, rng);
  const MatrixF b = random_normal(9, 5, rng);
  const MatrixF direct = matmul_nt(a, b);
  const MatrixF via_t = matmul(a, transpose(b));
  swat::testing::expect_matrix_near(direct, via_t, 1e-5f, "nt vs transpose");
}

TEST(Transpose, Involution) {
  Rng rng(6);
  const MatrixF a = random_normal(4, 9, rng);
  swat::testing::expect_matrix_equal(transpose(transpose(a)), a);
}

TEST(Softmax, RowsSumToOne) {
  Rng rng(7);
  MatrixF m = random_normal(20, 33, rng, 3.0);
  row_softmax_stable(m);
  for (std::int64_t i = 0; i < m.rows(); ++i) {
    float sum = 0.0f;
    for (float v : m.row(i)) {
      EXPECT_GE(v, 0.0f);
      sum += v;
    }
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
  }
}

TEST(Softmax, StableMatchesNaiveOnSmallScores) {
  Rng rng(8);
  MatrixF a = random_normal(10, 16, rng, 1.0);
  MatrixF b = a;
  row_softmax_stable(a);
  row_softmax_naive(b);
  swat::testing::expect_matrix_near(a, b, 1e-6f, "stable vs naive");
}

TEST(Softmax, StableSurvivesLargeScores) {
  MatrixF m(1, 3);
  m(0, 0) = 200.0f;  // exp(200) overflows float
  m(0, 1) = 199.0f;
  m(0, 2) = 100.0f;
  row_softmax_stable(m);
  EXPECT_NEAR(m(0, 0), 1.0f / (1.0f + std::exp(-1.0f)), 1e-5f);
  EXPECT_NEAR(m(0, 1), std::exp(-1.0f) / (1.0f + std::exp(-1.0f)), 1e-5f);
  EXPECT_NEAR(m(0, 2), 0.0f, 1e-6f);
}

TEST(Softmax, ShiftInvariance) {
  Rng rng(9);
  MatrixF a = random_normal(5, 8, rng);
  MatrixF b = a;
  for (float& v : b.flat()) v += 10.0f;  // same shift to every row
  row_softmax_stable(a);
  row_softmax_stable(b);
  swat::testing::expect_matrix_near(a, b, 1e-5f, "shift invariance");
}

TEST(DotAxpy, Basics) {
  const std::vector<float> x{1.0f, 2.0f, 3.0f};
  const std::vector<float> y{4.0f, 5.0f, 6.0f};
  EXPECT_FLOAT_EQ(dot(x, y), 32.0f);
  std::vector<float> acc{1.0f, 1.0f, 1.0f};
  axpy(2.0f, x, acc);
  EXPECT_FLOAT_EQ(acc[0], 3.0f);
  EXPECT_FLOAT_EQ(acc[2], 7.0f);
}

TEST(ErrorMetrics, MaxAbsDiffAndRelError) {
  MatrixF a(1, 2);
  MatrixF b(1, 2);
  a(0, 0) = 1.0f;
  a(0, 1) = 2.0f;
  b(0, 0) = 1.5f;
  b(0, 1) = 2.0f;
  EXPECT_FLOAT_EQ(max_abs_diff(a, b), 0.5f);
  EXPECT_NEAR(relative_error(a, b), 0.5 / std::sqrt(1.5 * 1.5 + 4.0), 1e-6);
  EXPECT_DOUBLE_EQ(relative_error(b, b), 0.0);
}

// ------------------------------------- plan-driven layer kernels ----

TEST(LayerNormInto, MatchesNaiveOracleBitExact) {
  Rng rng(21);
  const MatrixF x = random_normal(17, 24, rng, 3.0);
  std::vector<float> gamma(24), beta(24);
  for (std::size_t j = 0; j < 24; ++j) {
    gamma[j] = 0.5f + 0.1f * static_cast<float>(j);
    beta[j] = -1.0f + 0.05f * static_cast<float>(j);
  }
  const float eps = 1e-5f;
  const MatrixF want = layer_norm_naive(x, gamma, beta, eps);
  MatrixF got(17, 24);
  layer_norm_into(x, gamma, beta, eps, got);
  swat::testing::expect_matrix_equal(got, want, "layer_norm_into vs naive");
}

TEST(LayerNormInto, InPlaceAliasingMatchesOutOfPlace) {
  Rng rng(22);
  const MatrixF x = random_normal(9, 16, rng, 2.0);
  std::vector<float> gamma(16, 1.0f), beta(16, 0.0f);
  const MatrixF want = layer_norm_naive(x, gamma, beta, 1e-5f);
  MatrixF inplace = x;
  layer_norm_into(inplace, gamma, beta, 1e-5f, inplace);
  swat::testing::expect_matrix_equal(inplace, want, "in-place layer_norm");
}

TEST(LayerNormInto, RejectsMismatchedAffineLength) {
  MatrixF x(2, 4);
  MatrixF out(2, 4);
  std::vector<float> gamma(3, 1.0f), beta(4, 0.0f);
  EXPECT_THROW(layer_norm_into(x, gamma, beta, 1e-5f, out),
               std::invalid_argument);
}

TEST(GeluInto, MatchesNaiveOracleBitExactIncludingInPlace) {
  Rng rng(23);
  const MatrixF x = random_normal(13, 31, rng, 4.0);
  const MatrixF want = gelu_naive(x);
  MatrixF got(13, 31);
  gelu_into(x, got);
  swat::testing::expect_matrix_equal(got, want, "gelu_into vs naive");
  MatrixF inplace = x;
  gelu_into(inplace, inplace);
  swat::testing::expect_matrix_equal(inplace, want, "in-place gelu");
}

TEST(AddRowsInto, MatchesNaiveOracleAndAliasing) {
  Rng rng(24);
  const MatrixF a = random_normal(11, 19, rng);
  const MatrixF b = random_normal(11, 19, rng);
  const MatrixF want = add_rows_naive(a, b);
  MatrixF got(11, 19);
  add_rows_into(a, b, got);
  swat::testing::expect_matrix_equal(got, want, "add_rows_into vs naive");
  // The residual-add form: out aliases the first operand.
  MatrixF acc = a;
  add_rows_into(acc, b, acc);
  swat::testing::expect_matrix_equal(acc, want, "in-place residual add");
}

TEST(AddRowsInto, RejectsShapeMismatch) {
  MatrixF a(2, 3), b(3, 2), out(2, 3);
  EXPECT_THROW(add_rows_into(a, b, out), std::invalid_argument);
}

TEST(PlanKernels, StridedViewsTouchOnlyTheViewedBlock) {
  // A non-contiguous view (stride > cols): rows 2..5, columns 1..3 of an
  // 8 x 6 matrix. The kernel must write exactly the viewed block and leave
  // every other element untouched.
  Rng rng(25);
  MatrixF big = random_normal(8, 6, rng);
  const MatrixF before = big;
  const MatrixView mid(big.data() + 2 * 6 + 1, 4, 3, 6);
  ASSERT_FALSE(mid.contiguous());
  MatrixF sub(4, 3);
  for (std::int64_t i = 0; i < 4; ++i) {
    for (std::int64_t j = 0; j < 3; ++j) sub(i, j) = big(i + 2, j + 1);
  }
  gelu_into(static_cast<ConstMatrixView>(mid), mid);
  const MatrixF want = gelu_naive(sub);
  for (std::int64_t i = 0; i < 8; ++i) {
    for (std::int64_t j = 0; j < 6; ++j) {
      const bool viewed = i >= 2 && i < 6 && j >= 1 && j < 4;
      ASSERT_EQ(big(i, j), viewed ? want(i - 2, j - 1) : before(i, j))
          << "(" << i << ", " << j << ")";
    }
  }
}

TEST(ErrorMetrics, RowCosine) {
  MatrixF a(2, 2);
  a(0, 0) = 1.0f;
  a(0, 1) = 0.0f;
  a(1, 0) = 0.0f;
  a(1, 1) = 2.0f;
  MatrixF b = a;
  EXPECT_NEAR(mean_row_cosine(a, b), 1.0, 1e-9);
  // Orthogonal rows -> cosine 0.
  MatrixF c(1, 2);
  c(0, 0) = 1.0f;
  MatrixF d(1, 2);
  d(0, 1) = 1.0f;
  EXPECT_NEAR(mean_row_cosine(c, d), 0.0, 1e-9);
}

}  // namespace
}  // namespace swat
