// Tests for SwatConfig (design-time parameters, paper Fig. 7).
#include <gtest/gtest.h>

#include "swat/config.hpp"

namespace swat {
namespace {

TEST(Config, LongformerFactory) {
  const SwatConfig c = SwatConfig::longformer_512();
  EXPECT_EQ(c.dtype, Dtype::kFp16);
  EXPECT_EQ(c.head_dim, 64);
  EXPECT_EQ(c.window_cores, 512);
  EXPECT_EQ(c.global_cores, 0);
  EXPECT_EQ(c.random_cores, 0);
  EXPECT_EQ(c.cores_per_pipeline(), 512);
  EXPECT_EQ(c.pipelines, 1);
  EXPECT_NO_THROW(c.validate());
}

TEST(Config, BigbirdFactoryMatchesPaperSplit) {
  // Paper Table 2: 192 window + 192 random + 128 global = 512 tokens/row.
  const SwatConfig c = SwatConfig::bigbird_512();
  EXPECT_EQ(c.window_cores, 192);
  EXPECT_EQ(c.random_cores, 192);
  EXPECT_EQ(c.global_cores, 128);
  EXPECT_EQ(c.cores_per_pipeline(), 512);
  EXPECT_NO_THROW(c.validate());
}

TEST(Config, DualPipelineFactory) {
  const SwatConfig c = SwatConfig::bigbird_dual_512();
  EXPECT_EQ(c.pipelines, 2);
  EXPECT_EQ(c.cores_per_pipeline(), 512);
}

TEST(Config, WindowReachSplitsBand) {
  const SwatConfig c = SwatConfig::longformer_512();
  EXPECT_EQ(c.window_before(), 256);
  EXPECT_EQ(c.window_after(), 255);
  EXPECT_EQ(c.window_before() + c.window_after() + 1, 512);
}

TEST(Config, PatternSpecMatchesCores) {
  const SwatConfig c = SwatConfig::bigbird_512();
  const attn::PatternSpec s = c.pattern_spec(4096);
  EXPECT_EQ(s.seq_len, 4096);
  EXPECT_EQ(s.band_tokens(), 192);
  EXPECT_EQ(s.num_global_tokens, 128);
  EXPECT_EQ(s.num_random_tokens, 192);
  EXPECT_FALSE(s.symmetric_global);  // hardware-facing spec
}

TEST(Config, PatternSpecClampsToShortSequences) {
  const SwatConfig c = SwatConfig::bigbird_512();
  const attn::PatternSpec s = c.pattern_spec(64);
  EXPECT_EQ(s.num_global_tokens, 64);
  EXPECT_EQ(s.num_random_tokens, 64);
}

TEST(Config, ValidationRejectsBadShapes) {
  SwatConfig c = SwatConfig::longformer_512();
  c.window_cores = 0;
  EXPECT_THROW(c.validate(), std::invalid_argument);

  c = SwatConfig::longformer_512();
  c.window_cores = 500;  // not a multiple of head_dim
  EXPECT_THROW(c.validate(), std::invalid_argument);

  c = SwatConfig::longformer_512();
  c.pipelines = 0;
  EXPECT_THROW(c.validate(), std::invalid_argument);

  c = SwatConfig::longformer_512();
  c.head_dim = 0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(Config, SummaryMentionsKeyParameters) {
  const std::string s = SwatConfig::bigbird_512().summary();
  EXPECT_NE(s.find("fp16"), std::string::npos);
  EXPECT_NE(s.find("512"), std::string::npos);
  EXPECT_NE(s.find("192"), std::string::npos);
}

TEST(Config, DefaultClockFromCalibration) {
  const SwatConfig c;
  EXPECT_DOUBLE_EQ(c.clock.hz, 300e6);
}

}  // namespace
}  // namespace swat
