// Tests for the strong unit types.
#include <gtest/gtest.h>

#include "common/units.hpp"

namespace swat {
namespace {

TEST(Units, CyclesArithmetic) {
  EXPECT_EQ((Cycles{3} + Cycles{4}).count, 7u);
  EXPECT_EQ((Cycles{3} * 5).count, 15u);
  EXPECT_EQ((5 * Cycles{3}).count, 15u);
  Cycles c{10};
  c += Cycles{2};
  EXPECT_EQ(c.count, 12u);
  EXPECT_LT(Cycles{1}, Cycles{2});
}

TEST(Units, CyclesToSeconds) {
  // 300 cycles at 300 MHz is exactly one microsecond.
  const Seconds t = to_seconds(Cycles{300}, Hertz::mega(300.0));
  EXPECT_DOUBLE_EQ(t.microseconds(), 1.0);
  EXPECT_DOUBLE_EQ(t.milliseconds(), 1e-3);
}

TEST(Units, SecondsArithmetic) {
  const Seconds a = Seconds::milli(2.0);
  const Seconds b = Seconds::micro(500.0);
  EXPECT_DOUBLE_EQ((a + b).value, 2.5e-3);
  EXPECT_DOUBLE_EQ((a * 3.0).value, 6e-3);
  EXPECT_DOUBLE_EQ(a / b, 4.0);
}

TEST(Units, EnergyIsPowerTimesTime) {
  const Joules e = energy(Watts{300.0}, Seconds::milli(10.0));
  EXPECT_DOUBLE_EQ(e.value, 3.0);
  EXPECT_DOUBLE_EQ(e.millijoules(), 3000.0);
  EXPECT_DOUBLE_EQ(Joules{6.0} / Joules{3.0}, 2.0);
}

TEST(Units, BytesHelpers) {
  EXPECT_EQ(Bytes::kibi(2).count, 2048u);
  EXPECT_EQ(Bytes::mebi(1).count, 1048576u);
  EXPECT_DOUBLE_EQ(Bytes::mebi(3).mebibytes(), 3.0);
  EXPECT_EQ((Bytes{100} + Bytes{28}).count, 128u);
  EXPECT_EQ((Bytes{3} * 4).count, 12u);
}

TEST(Units, WattsAccumulate) {
  Watts p{1.5};
  p += Watts{2.5};
  EXPECT_DOUBLE_EQ(p.value, 4.0);
  EXPECT_DOUBLE_EQ((Watts{1.0} + Watts{2.0}).value, 3.0);
}

}  // namespace
}  // namespace swat
