// Tests for the cycle-level timing simulator.
#include <gtest/gtest.h>

#include "swat/analytic.hpp"
#include "swat/timing_sim.hpp"

namespace swat {
namespace {

TEST(TimingSim, MatchesAnalyticClosedForm) {
  for (const auto& cfg : {SwatConfig::longformer_512(),
                          SwatConfig::bigbird_512(),
                          SwatConfig::longformer_512(Dtype::kFp32)}) {
    const TimingSimulator sim(cfg);
    const AnalyticModel model(cfg);
    for (std::int64_t n : {1, 2, 16, 100, 1024, 4096}) {
      EXPECT_EQ(sim.run(n).total.count, model.head_cycles(n).count)
          << cfg.summary() << " n=" << n;
    }
  }
}

TEST(TimingSim, SteadyStateIntervalIsPipelineIi) {
  const TimingSimulator sim(SwatConfig::longformer_512());
  const auto res = sim.run(256);
  EXPECT_EQ(res.row_interval.count, 201u);
  const TimingSimulator sim32(SwatConfig::longformer_512(Dtype::kFp32));
  EXPECT_EQ(sim32.run(256).row_interval.count, 264u);
}

TEST(TimingSim, FillMatchesLongestPath) {
  const auto res = TimingSimulator(SwatConfig::longformer_512()).run(8);
  EXPECT_EQ(res.fill.count, 904u);
}

TEST(TimingSim, HbmNeverLimitsTheDefaultDesign) {
  // Per-row traffic is tiny relative to HBM bandwidth (paper's design
  // premise); the simulator verifies rather than assumes it.
  for (const auto& cfg : {SwatConfig::longformer_512(),
                          SwatConfig::bigbird_512()}) {
    EXPECT_FALSE(TimingSimulator(cfg).run(2048).hbm_limited)
        << cfg.summary();
  }
}

TEST(TimingSim, ArtificiallySlowMemoryDoesLimit) {
  hw::HbmSpec slow;
  slow.bandwidth_gbps = 0.001;  // 1 MB/s
  const TimingSimulator sim(SwatConfig::longformer_512(), slow);
  const auto res = sim.run(64);
  EXPECT_TRUE(res.hbm_limited);
  // Total time stretches beyond the compute-bound closed form.
  const AnalyticModel model(SwatConfig::longformer_512());
  EXPECT_GT(res.total.count, model.head_cycles(64).count);
}

TEST(TimingSim, QkStageIsTheBottleneck) {
  const auto res = TimingSimulator(SwatConfig::longformer_512()).run(512);
  // Find QK utilization: it should be the highest of all stages (~1.0).
  double qk_util = 0.0;
  double max_other = 0.0;
  for (std::size_t s = 0; s < res.stage_names.size(); ++s) {
    if (res.stage_names[s] == "QK") {
      qk_util = res.utilization(s);
    } else {
      max_other = std::max(max_other, res.utilization(s));
    }
  }
  EXPECT_GT(qk_util, 0.95);
  EXPECT_GE(qk_util, max_other);
}

TEST(TimingSim, LinearScalingInSequenceLength) {
  const TimingSimulator sim(SwatConfig::longformer_512());
  const auto t1 = sim.run(1024).total.count;
  const auto t2 = sim.run(2048).total.count;
  const auto t4 = sim.run(4096).total.count;
  // Doubling n roughly doubles cycles (fill amortizes away).
  EXPECT_NEAR(static_cast<double>(t2) / t1, 2.0, 0.01);
  EXPECT_NEAR(static_cast<double>(t4) / t2, 2.0, 0.005);
}

TEST(TimingSim, WallTimeConversion) {
  const auto res = TimingSimulator(SwatConfig::longformer_512()).run(16384);
  const Seconds t = res.wall_time(Hertz::mega(300.0));
  // 16384 rows x 201 cycles ~ 3.29 M cycles ~ 11.0 ms at 300 MHz.
  EXPECT_NEAR(t.milliseconds(), 11.0, 0.2);
}

TEST(TimingSim, RejectsZeroRows) {
  EXPECT_THROW(TimingSimulator(SwatConfig::longformer_512()).run(0),
               std::invalid_argument);
}

}  // namespace
}  // namespace swat
