// Tests for the FLOPs/MOPs analyzer (paper Fig. 1).
#include <gtest/gtest.h>

#include "attention/flops.hpp"

namespace swat::attn {
namespace {

TEST(Flops, DenseAttentionShareGrowsWithLength) {
  const LayerShape base;
  double prev = 0.0;
  for (std::int64_t n = 128; n <= 16384; n *= 2) {
    LayerShape s = base;
    s.seq_len = n;
    const LayerCost c = analyze_layer(s, AttentionVariant::kDense);
    const double share = c.attention_flops_share();
    EXPECT_GT(share, prev) << "n=" << n;
    prev = share;
  }
  // At 16k the attention dominates (paper Fig. 1 shows ~0.8+).
  EXPECT_GT(prev, 0.7);
}

TEST(Flops, DenseAttentionShareSmallAtShortLength) {
  LayerShape s;
  s.seq_len = 128;
  const LayerCost c = analyze_layer(s, AttentionVariant::kDense);
  EXPECT_LT(c.attention_flops_share(), 0.1);
}

TEST(Flops, WindowVariantCapsAttentionShare) {
  LayerShape s;
  s.seq_len = 16384;
  const LayerCost dense = analyze_layer(s, AttentionVariant::kDense);
  const LayerCost win = analyze_layer(s, AttentionVariant::kWindow, 512);
  EXPECT_LT(win.attention_flops, dense.attention_flops / 10.0);
  // Window attention FLOPs grow linearly: share converges to a constant.
  LayerShape s2 = s;
  s2.seq_len = 8192;
  const LayerCost win2 = analyze_layer(s2, AttentionVariant::kWindow, 512);
  EXPECT_NEAR(win.attention_flops_share(), win2.attention_flops_share(),
              0.02);
}

TEST(Flops, WindowEqualsDenseWhenBandCoversSequence) {
  LayerShape s;
  s.seq_len = 256;
  const LayerCost dense = analyze_layer(s, AttentionVariant::kDense);
  const LayerCost win = analyze_layer(s, AttentionVariant::kWindow, 512);
  EXPECT_DOUBLE_EQ(win.attention_flops, dense.attention_flops);
}

TEST(Mops, AttentionMemoryDominatesAtLongLength) {
  LayerShape s;
  s.seq_len = 16384;
  const LayerCost c = analyze_layer(s, AttentionVariant::kDense);
  EXPECT_GT(c.attention_mops_share(), 0.9);
}

TEST(Mops, LinearAndFfnDominateAtShortLength) {
  LayerShape s;
  s.seq_len = 128;
  const LayerCost c = analyze_layer(s, AttentionVariant::kDense);
  EXPECT_GT(c.linear_mops + c.ffn_mops, c.attention_mops);
}

TEST(Flops, LinearAndFfnScaleLinearlyWithN) {
  LayerShape a;
  a.seq_len = 1024;
  LayerShape b;
  b.seq_len = 2048;
  const LayerCost ca = analyze_layer(a, AttentionVariant::kDense);
  const LayerCost cb = analyze_layer(b, AttentionVariant::kDense);
  EXPECT_NEAR(cb.linear_flops / ca.linear_flops, 2.0, 1e-9);
  EXPECT_NEAR(cb.ffn_flops / ca.ffn_flops, 2.0, 1e-9);
  EXPECT_NEAR(cb.attention_flops / ca.attention_flops, 4.0, 1e-9);
}

TEST(Flops, KnownFormulaValues) {
  LayerShape s;
  s.seq_len = 1024;
  s.d_model = 768;
  s.num_heads = 12;
  s.ffn_mult = 4;
  const LayerCost c = analyze_layer(s, AttentionVariant::kDense);
  EXPECT_DOUBLE_EQ(c.linear_flops, 4.0 * 2.0 * 1024.0 * 768.0 * 768.0);
  EXPECT_DOUBLE_EQ(c.ffn_flops, 2.0 * 2.0 * 1024.0 * 768.0 * 4.0 * 768.0);
  const double qk_sv = 4.0 * 1024.0 * 1024.0 * 768.0;
  const double sm = 5.0 * 1024.0 * 1024.0 * 12.0;
  EXPECT_DOUBLE_EQ(c.attention_flops, qk_sv + sm);
}

TEST(Flops, InvalidShapesThrow) {
  LayerShape s;
  s.d_model = 770;  // not divisible by heads
  s.num_heads = 12;
  EXPECT_THROW(analyze_layer(s, AttentionVariant::kDense),
               std::invalid_argument);
}

}  // namespace
}  // namespace swat::attn
