// Tests for the kernel-fused attention (paper Eq. 1) in all three variants.
#include <gtest/gtest.h>

#include <cmath>

#include "attention/fused.hpp"
#include "attention/window.hpp"
#include "test_util.hpp"

namespace swat::attn {
namespace {

TEST(FusedNaive, EqualsTwoPassWindowAttention) {
  // With 1/sqrt(d)-scaled logits the naive (no max subtraction) fusion is
  // numerically safe and must match the stable two-pass implementation.
  Rng rng(1);
  for (std::int64_t w : {2, 8, 24}) {
    const HeadInput in = random_head_input(96, 16, rng);
    swat::testing::expect_matrix_near(fused_window_attention(in, w),
                                      window_attention(in, w), 5e-5f,
                                      "fused vs two-pass");
  }
}

TEST(FusedOnline, EqualsTwoPassEvenWithLargeScores) {
  // The online (running max) variant survives score magnitudes that break
  // the naive fusion in float.
  Rng rng(2);
  HeadInput in = random_head_input(32, 8, rng);
  for (float& v : in.q.flat()) v *= 60.0f;  // scores ~ O(100)
  swat::testing::expect_matrix_near(fused_window_attention_online(in, 8),
                                    window_attention(in, 8), 1e-4f,
                                    "online vs two-pass");
}

TEST(FusedNaive, DenominatorFactorsOut) {
  // Eq. 1's core claim: postponing the division is exact in real
  // arithmetic. Verify on one row computed by hand.
  HeadInput in;
  in.q = MatrixF(1, 2);
  in.k = MatrixF(1, 2);
  in.v = MatrixF(1, 2);
  in.q(0, 0) = 0.5f;
  in.q(0, 1) = -0.25f;
  in.k(0, 0) = 1.0f;
  in.k(0, 1) = 2.0f;
  in.v(0, 0) = 3.0f;
  in.v(0, 1) = -1.0f;
  const MatrixF z = fused_window_attention(in, 1);
  // Single attended token -> softmax weight is exactly 1.
  EXPECT_NEAR(z(0, 0), 3.0f, 1e-6f);
  EXPECT_NEAR(z(0, 1), -1.0f, 1e-6f);
}

TEST(FusedFp16, MatchesFp32OracleWithinHalfPrecision) {
  Rng rng(3);
  for (std::int64_t n : {64, 128}) {
    const HeadInput in = random_head_input(n, 16, rng);
    const MatrixF fp16 = fused_window_attention_fp16(in, 8);
    const MatrixF oracle = band_attention(in, 8, 7);
    // fp16 has ~3 decimal digits; the banded softmax keeps values O(1).
    swat::testing::expect_matrix_near(fp16, oracle, 0.03f,
                                      "fp16 kernel vs fp32 band oracle");
  }
}

TEST(FusedFp16, OutputsAreRepresentableInFp16) {
  Rng rng(4);
  const HeadInput in = random_head_input(64, 8, rng);
  const MatrixF z = fused_window_attention_fp16(in, 4);
  for (float v : z.flat()) {
    EXPECT_EQ(v, Half(v).to_float()) << "value not fp16-representable";
  }
}

TEST(FusedFp16, DeterministicAcrossCalls) {
  Rng rng(5);
  const HeadInput in = random_head_input(48, 8, rng);
  swat::testing::expect_matrix_equal(fused_window_attention_fp16(in, 6),
                                     fused_window_attention_fp16(in, 6));
}

TEST(FusedFp16, WiderAccumulatorIsAtLeastAsAccurate) {
  Rng rng(6);
  const HeadInput in = random_head_input(128, 32, rng);
  const MatrixF oracle = band_attention(in, 16, 15);
  Fp16KernelOptions narrow;
  narrow.fp16_accumulate = true;
  Fp16KernelOptions wide;
  wide.fp16_accumulate = false;
  const float err_narrow =
      max_abs_diff(fused_window_attention_fp16(in, 16, narrow), oracle);
  const float err_wide =
      max_abs_diff(fused_window_attention_fp16(in, 16, wide), oracle);
  EXPECT_LE(err_wide, err_narrow * 1.5f + 1e-4f);
}

TEST(FusedFp16, ExpLutDegradesGracefully) {
  Rng rng(7);
  const HeadInput in = random_head_input(96, 16, rng);
  const MatrixF exact = fused_window_attention_fp16(in, 8);
  Fp16KernelOptions lut_small;
  lut_small.exp_lut_segments = 16;
  Fp16KernelOptions lut_large;
  lut_large.exp_lut_segments = 512;
  const float err_small =
      max_abs_diff(fused_window_attention_fp16(in, 8, lut_small), exact);
  const float err_large =
      max_abs_diff(fused_window_attention_fp16(in, 8, lut_large), exact);
  EXPECT_LT(err_large, err_small + 1e-6f);
  EXPECT_LT(err_large, 0.01f);
}

TEST(FusedFp16, RequiresPositiveRadius) {
  Rng rng(8);
  const HeadInput in = random_head_input(16, 4, rng);
  EXPECT_THROW(fused_window_attention_fp16(in, 0), std::invalid_argument);
}

}  // namespace
}  // namespace swat::attn
