// Tests for the MI210 GPU baseline model (paper §5.4 / Fig. 3 behaviours).
#include <gtest/gtest.h>

#include "baselines/gpu_model.hpp"

namespace swat::baselines {
namespace {

TEST(GpuDense, FloorBelow4k) {
  // Single-batch under-utilization: latency is flat at short lengths
  // ("At short input length ... underutilization of the GPU", §5.4).
  const GpuModel gpu;
  const auto t512 = gpu.estimate(GpuKernel::kDense, 512).latency;
  const auto t1k = gpu.estimate(GpuKernel::kDense, 1024).latency;
  const auto t2k = gpu.estimate(GpuKernel::kDense, 2048).latency;
  EXPECT_DOUBLE_EQ(t512.value, t1k.value);
  EXPECT_DOUBLE_EQ(t1k.value, t2k.value);
}

TEST(GpuDense, QuadraticGrowthBeyond8k) {
  // "as the input length reaches 4k, the GPU's execution time begins to
  // rise sharply."
  const GpuModel gpu;
  const double t8k = gpu.estimate(GpuKernel::kDense, 8192).latency.value;
  const double t16k = gpu.estimate(GpuKernel::kDense, 16384).latency.value;
  EXPECT_NEAR(t16k / t8k, 4.0, 0.05);
  // And 16k lands at the ~20 ms scale of Fig. 3.
  EXPECT_GT(t16k, 0.015);
  EXPECT_LT(t16k, 0.025);
}

TEST(GpuDense, MemoryIsQuadraticAndHitsGigabyteAt16k) {
  // Fig. 3 right panel: ~1 GB per attention at 16k (the fp32 N^2 scores).
  const GpuModel gpu;
  const auto m16k = gpu.estimate(GpuKernel::kDense, 16384).peak_memory;
  EXPECT_GT(m16k.mebibytes(), 950.0);
  EXPECT_LT(m16k.mebibytes(), 1100.0);
  const auto m8k = gpu.estimate(GpuKernel::kDense, 8192).peak_memory;
  // Quadratic up to the (small) linear Q/K/V/Z term.
  EXPECT_NEAR(m16k.mebibytes() / m8k.mebibytes(), 4.0, 0.1);
}

TEST(GpuChunks, MemoryIsLinear) {
  // "the sliding chunks approach significantly reduces memory usage."
  const GpuModel gpu;
  const auto m8k = gpu.estimate(GpuKernel::kSlidingChunks, 8192).peak_memory;
  const auto m16k =
      gpu.estimate(GpuKernel::kSlidingChunks, 16384).peak_memory;
  EXPECT_NEAR(m16k.mebibytes() / m8k.mebibytes(), 2.0, 0.1);
  // Far below dense at 16k.
  const auto dense = gpu.estimate(GpuKernel::kDense, 16384).peak_memory;
  EXPECT_LT(m16k.mebibytes(), dense.mebibytes() / 8.0);
}

TEST(GpuChunks, TimeTracksDense) {
  // "the computational time remains similar to the dense method" — within
  // ~2x across the measured range.
  const GpuModel gpu;
  for (std::int64_t n : {512, 1024, 2048, 4096, 8192, 16384}) {
    const double dense = gpu.estimate(GpuKernel::kDense, n).latency.value;
    const double chunks =
        gpu.estimate(GpuKernel::kSlidingChunks, n).latency.value;
    EXPECT_GT(chunks, 0.4 * dense) << "n=" << n;
    EXPECT_LT(chunks, 2.5 * dense) << "n=" << n;
  }
}

TEST(GpuChunks, ExecutedFlopsCarryRedundancy) {
  // Chunks execute ~2x the useful band FLOPs (50% redundancy) but far less
  // than dense at long n.
  const GpuModel gpu;
  const double dense = gpu.executed_flops(GpuKernel::kDense, 16384);
  const double chunks =
      gpu.executed_flops(GpuKernel::kSlidingChunks, 16384);
  EXPECT_LT(chunks, dense / 10.0);
  // Useful band volume: n * 2w * (4h+5).
  const double useful = 16384.0 * 512.0 * (4.0 * 64.0 + 5.0);
  EXPECT_NEAR(chunks / useful, 2.0, 0.1);
}

TEST(GpuModel, EnergyIs300WattsTimesLatency) {
  const GpuModel gpu;
  const auto e = gpu.estimate(GpuKernel::kDense, 8192);
  EXPECT_NEAR(e.energy.value, 300.0 * e.latency.value, 1e-12);
}

TEST(GpuModel, DenseLatencyAnchorAt8k) {
  // Calibration anchor: ~5 ms at 8k (sets the 4.2x FP32 energy-efficiency
  // minimum of Fig. 9).
  const GpuModel gpu;
  EXPECT_NEAR(gpu.estimate(GpuKernel::kDense, 8192).latency.milliseconds(),
              5.05, 0.3);
}

TEST(GpuModel, InvalidInputsThrow) {
  const GpuModel gpu;
  EXPECT_THROW(gpu.estimate(GpuKernel::kDense, 0), std::invalid_argument);
  GpuModelConfig bad;
  bad.head_dim = 0;
  EXPECT_THROW(GpuModel{bad}, std::invalid_argument);
}

}  // namespace
}  // namespace swat::baselines
