// Tests for the execution-placement layer (src/common/topology,
// ServerOptions::placement) and the SWAT_THREADS/SWAT_CPUSET hardening:
//
//   * CpuSet cpulist parsing round-trips and rejects malformed input;
//   * topology discovery reads a synthetic sysfs fixture tree (SMT
//     siblings, two NUMA nodes) and orders CPUs node-major/core-major;
//   * partition() math: even splits, remainders, and the
//     replicas-beyond-cores fallback-to-shared signal (empty result);
//   * parse_thread_count clamps junk/zero/negative/overflow with a
//     warning instead of letting them flow through;
//   * pinned per-replica pools + ScopedPoolBinding route every free
//     parallel_for without changing a single result bit: kPartitioned
//     serving is bit-identical to the solo sequential oracle across
//     replica counts, thread counts, and arrival orders;
//   * the chaos harness (PR 7) holds its conservation laws under
//     partitioned placement too;
//   * a warmed engine bound to a pinned pool still performs ZERO
//     steady-state heap allocations (global operator-new counter).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <future>
#include <mutex>
#include <new>
#include <random>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/fault_injection.hpp"
#include "common/thread_pool.hpp"
#include "common/topology.hpp"
#include "runtime/runtime.hpp"
#include "runtime/server.hpp"
#include "tensor/kernels.hpp"
#include "test_util.hpp"

// ------------------------------------------------ global alloc counter ----
// Same counter as tests/test_runtime.cpp: every global operator new in
// this binary bumps it, so the steady-state test below can assert a
// warmed engine on a PINNED pool allocates exactly nothing per run.

namespace {

std::atomic<std::size_t> g_alloc_count{0};

void* counted_alloc(std::size_t n) {
  ++g_alloc_count;
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}

void* counted_alloc_aligned(std::size_t n, std::align_val_t al) {
  ++g_alloc_count;
  const std::size_t align = static_cast<std::size_t>(al);
  if (void* p = std::aligned_alloc(align, (n + align - 1) / align * align)) {
    return p;
  }
  throw std::bad_alloc();
}

}  // namespace

void* operator new(std::size_t n) { return counted_alloc(n); }
void* operator new[](std::size_t n) { return counted_alloc(n); }
void* operator new(std::size_t n, std::align_val_t al) {
  return counted_alloc_aligned(n, al);
}
void* operator new[](std::size_t n, std::align_val_t al) {
  return counted_alloc_aligned(n, al);
}
// The nothrow forms must be replaced too — libstdc++'s temporary buffers
// (e.g. stable_sort) allocate through them, and mixing the default nothrow
// new with our malloc-backed delete trips ASan's alloc-dealloc matching.
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  ++g_alloc_count;
  return std::malloc(n ? n : 1);
}
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  ++g_alloc_count;
  return std::malloc(n ? n : 1);
}
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace swat {
namespace {

namespace fs = std::filesystem;

using model::AttentionBackend;
using model::EncoderConfig;

using swat::testing::ThreadCountGuard;

/// The compact encoder geometry the runtime tests standardize on.
EncoderConfig small_config() {
  EncoderConfig cfg;
  cfg.d_model = 64;
  cfg.num_heads = 2;
  cfg.ffn_mult = 2;
  cfg.layers = 2;
  cfg.backend = AttentionBackend::kWindowExact;
  cfg.swat = SwatConfig();
  cfg.swat.head_dim = 32;
  cfg.swat.window_cores = 32;
  cfg.weight_seed = 5;
  return cfg;
}

std::vector<InferenceRequest> make_requests(
    const EncoderConfig& cfg, const std::vector<std::int64_t>& lengths) {
  Rng rng(99);
  std::vector<InferenceRequest> reqs;
  for (std::size_t i = 0; i < lengths.size(); ++i) {
    InferenceRequest req;
    req.id = 1000 + i;
    req.input = random_normal(lengths[i], cfg.d_model, rng);
    reqs.push_back(std::move(req));
  }
  return reqs;
}

InferenceRequest make_request(std::uint64_t id, std::int64_t len,
                              Priority priority = Priority::kInteractive,
                              Seconds deadline = Seconds{0.0}) {
  Rng rng(static_cast<std::uint64_t>(id) + 7);
  InferenceRequest req;
  req.id = id;
  req.input = random_normal(len, 64, rng);
  req.priority = priority;
  req.deadline = deadline;
  return req;
}

// --------------------------------------------------------- CpuSet parse ----

TEST(CpuSet, ParsesAndRoundTripsCanonicalForm) {
  const CpuSet set = CpuSet::parse("0-3,8");
  EXPECT_EQ(set.count(), 5);
  EXPECT_TRUE(set.contains(0));
  EXPECT_TRUE(set.contains(3));
  EXPECT_TRUE(set.contains(8));
  EXPECT_FALSE(set.contains(4));
  EXPECT_EQ(set.to_string(), "0-3,8");
  EXPECT_EQ(CpuSet::parse("2").to_string(), "2");
  // Whitespace around items and ranges is tolerated; duplicates and
  // overlapping ranges collapse (the set is sorted-unique).
  EXPECT_EQ(CpuSet::parse(" 0 , 2 - 4 ").to_string(), "0,2-4");
  EXPECT_EQ(CpuSet::parse("1,1,0-2").to_string(), "0-2");
  // Adjacent singletons merge into a range on the way back out.
  EXPECT_EQ(CpuSet::parse("5,7,6").to_string(), "5-7");
  EXPECT_TRUE(CpuSet{}.empty());
  EXPECT_EQ(CpuSet{}.to_string(), "");
}

TEST(CpuSet, RejectsMalformedCpulists) {
  EXPECT_THROW(CpuSet::parse(""), std::invalid_argument);
  EXPECT_THROW(CpuSet::parse("1,,2"), std::invalid_argument);
  EXPECT_THROW(CpuSet::parse("abc"), std::invalid_argument);
  EXPECT_THROW(CpuSet::parse("3-1"), std::invalid_argument);
  EXPECT_THROW(CpuSet::parse("-1"), std::invalid_argument);
  EXPECT_THROW(CpuSet::parse("5-"), std::invalid_argument);
  EXPECT_THROW(CpuSet::parse("1.5"), std::invalid_argument);
  // The kMaxCpus rail rejects absurd ids instead of allocating for them.
  EXPECT_THROW(CpuSet::parse(std::to_string(CpuSet::kMaxCpus)),
               std::invalid_argument);
  EXPECT_NO_THROW(CpuSet::parse(std::to_string(CpuSet::kMaxCpus - 1)));
}

TEST(CpuSet, IntersectAndAdd) {
  CpuSet a = CpuSet::parse("0-5");
  const CpuSet b = CpuSet::parse("4-9");
  EXPECT_EQ(a.intersect(b).to_string(), "4-5");
  EXPECT_TRUE(a.intersect(CpuSet{}).empty());
  a.add(4);  // duplicate add is a no-op
  EXPECT_EQ(a.count(), 6);
  EXPECT_EQ(a.cpus().size(), 6u);
  EXPECT_TRUE(std::is_sorted(a.cpus().begin(), a.cpus().end()));
}

// -------------------------------------------------- SWAT_THREADS parser ----

TEST(ParseThreadCount, NullAndValidInputs) {
  std::string warning = "stale";
  EXPECT_EQ(parse_thread_count(nullptr, 7, &warning), 7);
  EXPECT_TRUE(warning.empty());  // cleared, and null is not a warning
  EXPECT_EQ(parse_thread_count("4", 7, &warning), 4);
  EXPECT_TRUE(warning.empty());
  EXPECT_EQ(parse_thread_count(" 8 ", 7, &warning), 8);  // whitespace ok
  EXPECT_TRUE(warning.empty());
  EXPECT_EQ(parse_thread_count("1", 7, nullptr), 1);  // warning optional
}

TEST(ParseThreadCount, NonNumericFallsBackWithWarning) {
  std::string warning;
  EXPECT_EQ(parse_thread_count("abc", 7, &warning), 7);
  EXPECT_FALSE(warning.empty());
  EXPECT_EQ(parse_thread_count("4x", 7, &warning), 7);  // trailing junk
  EXPECT_FALSE(warning.empty());
  EXPECT_EQ(parse_thread_count("", 7, &warning), 7);
  EXPECT_FALSE(warning.empty());
}

TEST(ParseThreadCount, ZeroAndNegativeClampToOne) {
  std::string warning;
  EXPECT_EQ(parse_thread_count("0", 7, &warning), 1);
  EXPECT_FALSE(warning.empty());
  EXPECT_EQ(parse_thread_count("-3", 7, &warning), 1);
  EXPECT_FALSE(warning.empty());
}

TEST(ParseThreadCount, OverflowClampsToRail) {
  std::string warning;
  // Larger than any long: strtol reports ERANGE.
  EXPECT_EQ(parse_thread_count("99999999999999999999", 7, &warning), 1024);
  EXPECT_FALSE(warning.empty());
  // In-range but absurd: the 1024-thread rail still applies.
  EXPECT_EQ(parse_thread_count("2000", 7, &warning), 1024);
  EXPECT_FALSE(warning.empty());
  EXPECT_EQ(parse_thread_count("1024", 7, &warning), 1024);
  EXPECT_TRUE(warning.empty());  // the rail itself is a valid request
}

// ------------------------------------------------- topology fixture tree ----

/// A synthetic /sys/devices/system/cpu tree under the test temp dir.
class SysfsFixture {
 public:
  explicit SysfsFixture(const std::string& name)
      : root_(fs::path(::testing::TempDir()) / name) {
    fs::remove_all(root_);
    fs::create_directories(root_);
  }
  ~SysfsFixture() {
    std::error_code ec;
    fs::remove_all(root_, ec);
  }

  void write(const fs::path& rel, const std::string& text) {
    fs::create_directories((root_ / rel).parent_path());
    std::ofstream out(root_ / rel);
    out << text << "\n";
  }

  void add_cpu(int cpu, int core, int node) {
    const fs::path dir = "cpu" + std::to_string(cpu);
    write(dir / "topology" / "core_id", std::to_string(core));
    fs::create_directories(root_ / dir / ("node" + std::to_string(node)));
  }

  std::string path() const { return root_.string(); }

 private:
  fs::path root_;
};

/// 8 logical CPUs, 2 NUMA nodes, SMT pairs: node 0 holds cpus {0,2} on
/// core 0 and {1,3} on core 1; node 1 mirrors with cpus {4,6} and {5,7}.
SysfsFixture make_smt_fixture(const std::string& name) {
  SysfsFixture fix(name);
  fix.write("online", "0-7");
  fix.add_cpu(0, 0, 0);
  fix.add_cpu(2, 0, 0);
  fix.add_cpu(1, 1, 0);
  fix.add_cpu(3, 1, 0);
  fix.add_cpu(4, 0, 1);
  fix.add_cpu(6, 0, 1);
  fix.add_cpu(5, 1, 1);
  fix.add_cpu(7, 1, 1);
  return fix;
}

TEST(Topology, FixtureTreeYieldsLocalityOrder) {
  const SysfsFixture fix = make_smt_fixture("swat_topo_order");
  const Topology topo = discover_topology_at(fix.path(), 1, nullptr);
  EXPECT_EQ(topo.allowed.to_string(), "0-7");
  EXPECT_EQ(topo.node_count, 2);
  EXPECT_EQ(topo.core_count(), 4);
  ASSERT_EQ(topo.cpus.size(), 8u);
  // Node-major, core-major: SMT siblings adjacent, nodes contiguous.
  const std::vector<int> expected = {0, 2, 1, 3, 4, 6, 5, 7};
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(topo.cpus[i].cpu, expected[i]) << "slot " << i;
  }
  EXPECT_EQ(topo.cpus[0].node, 0);
  EXPECT_EQ(topo.cpus[7].node, 1);
}

TEST(Topology, PartitionMathEvenRemainderAndFallback) {
  const SysfsFixture fix = make_smt_fixture("swat_topo_partition");
  const Topology topo = discover_topology_at(fix.path(), 1, nullptr);

  // Even split: two groups of four, each one whole NUMA node.
  const std::vector<CpuSet> halves = topo.partition(2);
  ASSERT_EQ(halves.size(), 2u);
  EXPECT_EQ(halves[0].to_string(), "0-3");
  EXPECT_EQ(halves[1].to_string(), "4-7");

  // Remainder: 8 over 3 = 3+3+2, carved off the locality order
  // [0,2,1,3 | 4,6,5,7] — the first groups take the extra CPU.
  const std::vector<CpuSet> thirds = topo.partition(3);
  ASSERT_EQ(thirds.size(), 3u);
  EXPECT_EQ(thirds[0].to_string(), "0-2");
  EXPECT_EQ(thirds[1].to_string(), "3-4,6");
  EXPECT_EQ(thirds[2].to_string(), "5,7");
  int total = 0;
  for (const CpuSet& g : thirds) total += g.count();
  EXPECT_EQ(total, 8);

  // One group per CPU still works; one MORE than the CPUs cannot give
  // every group a core — the empty result is the fall-back-to-shared
  // signal the server acts on.
  EXPECT_EQ(topo.partition(8).size(), 8u);
  EXPECT_TRUE(topo.partition(9).empty());
  EXPECT_THROW(topo.partition(0), std::invalid_argument);
}

TEST(Topology, CpusetOverrideNarrowsButNeverEmpties) {
  const SysfsFixture fix = make_smt_fixture("swat_topo_cpuset");
  // A well-formed override intersects.
  const Topology narrowed =
      discover_topology_at(fix.path(), 1, "1,3-5");
  EXPECT_EQ(narrowed.allowed.to_string(), "1,3-5");
  EXPECT_EQ(narrowed.cpus.size(), 4u);
  // Disjoint and malformed overrides are ignored (with a warning), never
  // allowed to leave serving with zero CPUs.
  EXPECT_EQ(discover_topology_at(fix.path(), 1, "100-200")
                .allowed.to_string(),
            "0-7");
  EXPECT_EQ(discover_topology_at(fix.path(), 1, "not-a-cpulist")
                .allowed.to_string(),
            "0-7");
}

TEST(Topology, MissingSysfsFallsBackToFlatSingleNode) {
  const fs::path missing =
      fs::path(::testing::TempDir()) / "swat_topo_nonexistent";
  std::error_code ec;
  fs::remove_all(missing, ec);
  const Topology topo = discover_topology_at(missing.string(), 6, nullptr);
  EXPECT_EQ(topo.allowed.to_string(), "0-5");
  EXPECT_EQ(topo.node_count, 1);
  EXPECT_EQ(topo.core_count(), 6);  // per-cpu fallback: every cpu its own core
  EXPECT_FALSE(topo.partition(6).empty());
  EXPECT_TRUE(topo.partition(7).empty());
  // A degenerate fallback width still yields one CPU, never zero.
  EXPECT_EQ(discover_topology_at(missing.string(), 0, nullptr).allowed.count(),
            1);
}

TEST(Topology, RealDiscoveryRespectsProcessAffinity) {
  const Topology topo = discover_topology();
  EXPECT_GE(topo.allowed.count(), 1);
  EXPECT_GE(topo.node_count, 1);
  EXPECT_GE(topo.core_count(), 1);
#if defined(__linux__)
  // The partitioner may only hand out CPUs this process can run on — the
  // property that keeps a taskset-restricted CI job honest.
  const CpuSet mask = current_thread_affinity();
  ASSERT_FALSE(mask.empty());
  for (const TopologyCpu& c : topo.cpus) {
    EXPECT_TRUE(mask.contains(c.cpu)) << "cpu " << c.cpu;
  }
#endif
}

// -------------------------------------------- pinned pools and bindings ----

TEST(PinnedPool, WorkersPinToTheGroup) {
  const CpuSet allowed = current_thread_affinity();
  CpuSet group;
  if (!allowed.empty()) group.add(allowed.cpus().front());
  ThreadPool pool(2, group);
  EXPECT_EQ(pool.affinity(), group);
  EXPECT_EQ(pool.num_threads(), 2);
  std::atomic<std::int64_t> covered{0};
  parallel_for(pool, 0, 1000, 1, [&](std::int64_t b, std::int64_t e) {
    covered.fetch_add(e - b);
  });
  EXPECT_EQ(covered.load(), 1000);
#if defined(__linux__)
  if (!group.empty()) {
    // One worker (the caller is not the pool's to pin), pinned to an
    // allowed CPU — the affinity call must have stuck. The worker bumps
    // the counter on its own schedule, so give it a bounded moment.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (pool.pinned_workers() != 1 &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::yield();
    }
    EXPECT_EQ(pool.pinned_workers(), 1);
  }
#else
  EXPECT_EQ(pool.pinned_workers(), 0);  // documented no-op off Linux
#endif
  // An unpinned pool reports zero regardless of platform.
  ThreadPool plain(3);
  EXPECT_TRUE(plain.affinity().empty());
  EXPECT_EQ(plain.pinned_workers(), 0);
}

TEST(PoolBinding, CurrentPoolFollowsBindingsAndNests) {
  EXPECT_EQ(&current_pool(), &ThreadPool::instance());
  ThreadPool solo(1);
  ThreadPool duo(2);
  {
    ScopedPoolBinding bind(&solo);
    EXPECT_EQ(&current_pool(), &solo);
    {
      ScopedPoolBinding noop(nullptr);  // keeps the current routing
      EXPECT_EQ(&current_pool(), &solo);
    }
    {
      ScopedPoolBinding nested(&duo);
      EXPECT_EQ(&current_pool(), &duo);
    }
    EXPECT_EQ(&current_pool(), &solo);  // restored
  }
  EXPECT_EQ(&current_pool(), &ThreadPool::instance());
}

TEST(PoolBinding, FreeParallelForRoutesToTheBoundPool) {
  // Global pool: 4 threads. Bound pool: 1 thread. If the free
  // parallel_for routes through the binding, every chunk runs inline on
  // the calling thread — deterministically observable, unlike "how many
  // workers happened to wake".
  ThreadCountGuard guard(4);
  ThreadPool solo(1);
  std::mutex mutex;
  std::set<std::thread::id> ids;
  {
    ScopedPoolBinding bind(&solo);
    parallel_for(0, 4096, 1, [&](std::int64_t, std::int64_t) {
      std::lock_guard lock(mutex);
      ids.insert(std::this_thread::get_id());
    });
  }
  EXPECT_EQ(ids.size(), 1u);
  EXPECT_EQ(*ids.begin(), std::this_thread::get_id());
  // parallel_for_2d routes the same way.
  ids.clear();
  {
    ScopedPoolBinding bind(&solo);
    parallel_for_2d(64, 1, 64, 1,
                    [&](std::int64_t, std::int64_t, std::int64_t,
                        std::int64_t) {
                      std::lock_guard lock(mutex);
                      ids.insert(std::this_thread::get_id());
                    });
  }
  EXPECT_EQ(ids.size(), 1u);
  EXPECT_EQ(*ids.begin(), std::this_thread::get_id());
}

// ----------------------------------------------- parallel first-touch pack ----

TEST(PackWeight, ParallelPackBitIdenticalAcrossThreadCounts) {
  Rng rng(31);
  // Ragged shape: 70 output columns = two full panels + a 6-wide tail,
  // so the padding path is exercised.
  const MatrixF w = random_normal(70, 48, rng);
  PackedWeight p1, p4;
  {
    ThreadCountGuard guard(1);
    pack_weight_nt(w, p1);
  }
  {
    ThreadCountGuard guard(4);
    pack_weight_nt(w, p4);
  }
  ASSERT_EQ(p1.data.size(), p4.data.size());
  ASSERT_FALSE(p1.data.empty());
  EXPECT_EQ(std::memcmp(p1.data.data(), p4.data.data(),
                        p1.data.size() * sizeof(float)),
            0);
  // The default-init buffer relies on the pack writing its own padding:
  // every lane beyond the 6-wide tail must be exactly zero.
  const std::int64_t last = p1.panels() - 1;
  for (std::int64_t kk = 0; kk < p1.in_features; ++kk) {
    for (std::int64_t l = 70 % PackedWeight::kPanel; l < PackedWeight::kPanel;
         ++l) {
      ASSERT_EQ(p4.data[static_cast<std::size_t>(
                    (last * p1.in_features + kk) * PackedWeight::kPanel + l)],
                0.0f)
          << "padding lane " << l << " k " << kk;
    }
  }
  // fp16 packs are deterministic across thread counts too.
  PackedWeight h1, h4;
  {
    ThreadCountGuard guard(1);
    pack_weight_nt(w, h1, Dtype::kFp16);
  }
  {
    ThreadCountGuard guard(4);
    pack_weight_nt(w, h4, Dtype::kFp16);
  }
  ASSERT_EQ(h1.data_f16.size(), h4.data_f16.size());
  EXPECT_EQ(std::memcmp(h1.data_f16.data(), h4.data_f16.data(),
                        h1.data_f16.size() * sizeof(std::uint16_t)),
            0);
  EXPECT_TRUE(h1.data.empty());  // other-dtype vector cleared
}

TEST(PackWeight, RepackAcrossDtypesMatchesFreshPack) {
  ThreadCountGuard guard(4);
  Rng rng(32);
  const MatrixF w = random_normal(33, 16, rng);
  PackedWeight reused;
  pack_weight_nt(w, reused, Dtype::kFp32);
  pack_weight_nt(w, reused, Dtype::kFp16);
  pack_weight_nt(w, reused, Dtype::kFp32);  // stale fp16 lanes must not leak
  PackedWeight fresh;
  pack_weight_nt(w, fresh, Dtype::kFp32);
  ASSERT_EQ(reused.data.size(), fresh.data.size());
  EXPECT_EQ(std::memcmp(reused.data.data(), fresh.data.data(),
                        fresh.data.size() * sizeof(float)),
            0);
  EXPECT_TRUE(reused.data_f16.empty());
}

// --------------------------------------------- partitioned serving oracle ----

/// Every test starts and ends with the injector in its pristine no-op
/// state, so an armed point can never leak into an unrelated test.
class PlacementTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultInjector::global().reset(); }
  void TearDown() override { FaultInjector::global().reset(); }
};

/// The acceptance bar: kPartitioned output is bit-identical to the solo
/// sequential oracle across num_replicas {1,2,4} x SWAT_THREADS {1,4} x
/// arrival orders — pinning and per-replica pools move work, never bits.
TEST_F(PlacementTest, PartitionedBitIdentityAcrossReplicasOrdersAndThreads) {
  const EncoderConfig cfg = small_config();
  const std::vector<std::int64_t> lengths = {5, 63, 64, 65, 1, 40, 128, 64,
                                             17, 33, 80, 64};
  std::vector<InferenceRequest> reqs = make_requests(cfg, lengths);

  Runtime sequential(cfg);
  std::vector<RequestResult> oracle;
  for (const InferenceRequest& req : reqs) {
    oracle.push_back(sequential.run_one(req));
  }

  std::vector<std::vector<std::size_t>> orders;
  std::vector<std::size_t> base(reqs.size());
  for (std::size_t i = 0; i < base.size(); ++i) base[i] = i;
  orders.push_back(base);
  orders.emplace_back(base.rbegin(), base.rend());
  std::mt19937_64 shuffle_rng(7);
  std::shuffle(base.begin(), base.end(), shuffle_rng);
  orders.push_back(base);

  for (const int threads : {1, 4}) {
    ThreadCountGuard guard(threads);
    for (const std::size_t replicas : {1u, 2u, 4u}) {
      for (const std::vector<std::size_t>& order : orders) {
        ServerOptions opt;
        opt.num_replicas = replicas;
        opt.placement = PlacementPolicy::kPartitioned;
        opt.replica_queue_depth = replicas > 1 ? 1 : 0;
        Server server(cfg, opt);
        std::vector<Server::Ticket> tickets(reqs.size());
        for (const std::size_t i : order) {
          tickets[i] = server.submit(reqs[i]);
        }
        for (std::size_t i = 0; i < reqs.size(); ++i) {
          const RequestResult got = tickets[i].get();
          EXPECT_EQ(got.id, reqs[i].id);
          testing::expect_matrix_equal(got.output, oracle[i].output,
                                       "partitioned pool vs solo oracle");
          EXPECT_EQ(got.counters.tokens, oracle[i].counters.tokens);
          EXPECT_EQ(got.counters.heads_run, oracle[i].counters.heads_run);
          EXPECT_EQ(got.counters.model_flops, oracle[i].counters.model_flops);
        }
        server.drain();
        const ServerStats stats = server.stats();
        ASSERT_EQ(stats.replicas.size(), replicas);
        std::int64_t served = 0;
        for (const ReplicaStats& rep : stats.replicas) served += rep.served();
        EXPECT_EQ(served, static_cast<std::int64_t>(reqs.size()));
      }
    }
  }
}

TEST_F(PlacementTest, PartitionedStatsExposeCoreGroups) {
  const EncoderConfig cfg = small_config();
  constexpr std::size_t kReplicas = 2;
  ServerOptions opt;
  opt.num_replicas = kReplicas;
  opt.placement = PlacementPolicy::kPartitioned;
  Server server(cfg, opt);
  std::vector<Server::Ticket> tickets =
      server.submit_many(make_requests(cfg, {16, 32, 64}));
  for (Server::Ticket& t : tickets) t.get();
  server.drain();
  const ServerStats stats = server.stats();
  ASSERT_EQ(stats.replicas.size(), kReplicas);

  // What the server should have partitioned: same discovery, same thread.
  const std::vector<CpuSet> groups =
      discover_topology().partition(kReplicas);
  if (groups.empty()) {
    // Fewer allowed CPUs than replicas: wholesale shared fallback.
    for (const ReplicaStats& rep : stats.replicas) {
      EXPECT_TRUE(rep.core_group.empty());
      EXPECT_EQ(rep.pinned_threads, 0);
    }
  } else {
    for (std::size_t r = 0; r < kReplicas; ++r) {
      EXPECT_EQ(stats.replicas[r].core_group, groups[r].to_string());
#if defined(__linux__)
      // At minimum the replica's own worker thread pinned itself.
      EXPECT_GE(stats.replicas[r].pinned_threads, 1);
#endif
    }
  }
}

TEST_F(PlacementTest, SharedPlacementLeavesStatsUnpinned) {
  const EncoderConfig cfg = small_config();
  ServerOptions opt;
  opt.num_replicas = 2;  // placement defaults to kShared
  Server server(cfg, opt);
  std::vector<Server::Ticket> tickets =
      server.submit_many(make_requests(cfg, {16, 32}));
  for (Server::Ticket& t : tickets) t.get();
  server.drain();
  for (const ReplicaStats& rep : server.stats().replicas) {
    EXPECT_TRUE(rep.core_group.empty());
    EXPECT_EQ(rep.pinned_threads, 0);
  }
}

/// The PR 7 chaos harness under partitioned placement: every ticket
/// resolves, drain() returns, and the per-replica conservation law holds
/// with pinned pools in the mix.
TEST_F(PlacementTest, ChaosConservationHoldsUnderPartitionedPlacement) {
  const char* const points[] = {"queue.push",      "queue.pop",
                                "batcher.push",    "executor.execute",
                                "replica.execute", "dispatch.place"};
  const EncoderConfig cfg = small_config();

  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    std::mt19937_64 rng(seed);
    const auto pick = [&](std::int64_t lo, std::int64_t hi) {
      return static_cast<std::int64_t>(
          std::uniform_int_distribution<std::int64_t>(lo, hi)(rng));
    };

    FaultInjector::global().reset();
    ServerOptions opt;
    opt.placement = PlacementPolicy::kPartitioned;
    opt.num_replicas = static_cast<std::size_t>(1 << pick(0, 2));  // 1/2/4
    opt.replica_queue_depth = static_cast<std::size_t>(pick(0, 2));
    opt.queue_capacity = static_cast<std::size_t>(pick(8, 64));
    opt.admission = pick(0, 1) == 0 ? OverflowPolicy::kBlock
                                    : OverflowPolicy::kShedBulk;
    opt.batching.max_batch_requests = pick(1, 6);
    opt.share_weight_pack = pick(0, 1) == 1;

    for (const char* point : points) {
      if (pick(0, 2) != 0) continue;  // ~1/3 of points armed per seed
      FaultAction action;
      const std::int64_t kind = pick(0, 2);
      action.kind = kind == 0   ? FaultKind::kThrow
                    : kind == 1 ? FaultKind::kDelay
                                : FaultKind::kWake;
      action.delay = Seconds{static_cast<double>(pick(1, 20)) * 1e-3};
      action.skip = static_cast<int>(pick(0, 5));
      action.count = static_cast<int>(pick(1, 3));
      FaultInjector::global().arm(point, action);
    }

    {
      Server server(cfg, opt);
      const int submitters = static_cast<int>(pick(2, 3));
      const int per_thread = static_cast<int>(pick(5, 8));
      std::vector<std::vector<Server::Ticket>> tickets(
          static_cast<std::size_t>(submitters));
      std::vector<std::thread> threads;
      for (int t = 0; t < submitters; ++t) {
        const std::uint64_t thread_seed =
            seed * 1000 + static_cast<std::uint64_t>(t);
        threads.emplace_back([&, t, thread_seed] {
          std::mt19937_64 local(thread_seed);
          const auto local_pick = [&](std::int64_t lo, std::int64_t hi) {
            return static_cast<std::int64_t>(
                std::uniform_int_distribution<std::int64_t>(lo, hi)(local));
          };
          for (int k = 0; k < per_thread; ++k) {
            const Priority priority = local_pick(0, 2) == 0
                                          ? Priority::kBulk
                                          : Priority::kInteractive;
            tickets[static_cast<std::size_t>(t)].push_back(server.submit(
                make_request(thread_seed * 100 + static_cast<std::uint64_t>(k),
                             8 + 8 * local_pick(0, 4), priority)));
          }
        });
      }
      for (std::thread& thread : threads) thread.join();

      auto drained = std::async(std::launch::async, [&] { server.drain(); });
      ASSERT_EQ(drained.wait_for(std::chrono::seconds(15)),
                std::future_status::ready)
          << "drain() hung";

      std::int64_t resolved = 0;
      for (auto& lane : tickets) {
        for (Server::Ticket& ticket : lane) {
          ASSERT_EQ(ticket.wait_for(std::chrono::seconds(0)),
                    std::future_status::ready)
              << "a ticket never resolved";
          try {
            ticket.get();
          } catch (const std::exception&) {
          }
          ++resolved;
        }
      }
      EXPECT_EQ(resolved, submitters * per_thread);

      const ServerStats stats = server.stats();
      for (std::size_t r = 0; r < stats.replicas.size(); ++r) {
        const ReplicaStats& rep = stats.replicas[r];
        EXPECT_EQ(rep.in_flight(), 0) << "replica " << r << " drained";
        EXPECT_EQ(rep.dispatched(), rep.served() + rep.failed())
            << "replica " << r << " conservation";
      }
    }
    FaultInjector::global().reset();
  }
}

// -------------------------------------------------- zero-alloc steady state ----

/// The zero-allocation guarantee survives placement: a warmed engine
/// whose fan-outs are bound to a PINNED single-thread pool performs no
/// heap allocation per run (same counter methodology as
/// tests/test_runtime.cpp — single-threaded so the pool's O(1) fork-join
/// bookkeeping is excluded).
TEST(PlacementSteadyState, PinnedBoundEngineRunAllocatesNothing) {
  ASSERT_GT(g_alloc_count.load(), 0u);

  const CpuSet allowed = current_thread_affinity();
  CpuSet group;
  if (!allowed.empty()) group.add(allowed.cpus().front());
  ThreadPool pool(1, group);

  const EncoderConfig cfg = small_config();
  Engine engine(cfg, &pool);
  ExecutionPlan plan = engine.make_plan(200);

  const std::vector<std::vector<std::int64_t>> shapes = {
      {31, 64, 17, 50}, {5}, {64, 64, 64}, {200}};
  std::vector<std::pair<MatrixF, std::vector<std::int64_t>>> batches;
  Rng rng(123);
  for (const auto& lengths : shapes) {
    std::vector<std::int64_t> offsets = {0};
    std::int64_t rows = 0;
    for (const std::int64_t len : lengths) offsets.push_back(rows += len);
    batches.emplace_back(random_normal(rows, cfg.d_model, rng),
                         std::move(offsets));
  }
  std::vector<model::AttentionStats> stats(8);

  // Warmup binds thread-local staging/workspace at their high-water sizes.
  for (auto& [packed, offsets] : batches) {
    engine.run(plan, packed, offsets,
               std::span<model::AttentionStats>(stats.data(),
                                                offsets.size() - 1));
  }

  const std::size_t before = g_alloc_count.load();
  for (auto& [packed, offsets] : batches) {
    engine.run(plan, packed, offsets,
               std::span<model::AttentionStats>(stats.data(),
                                                offsets.size() - 1));
  }
  EXPECT_EQ(g_alloc_count.load(), before)
      << "a warmed pinned-pool run allocated";
}

}  // namespace
}  // namespace swat
