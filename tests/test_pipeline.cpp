// Tests for the coarse-grained pipeline model.
#include <gtest/gtest.h>

#include "hw/pipeline.hpp"

namespace swat::hw {
namespace {

PipelineModel linear_3stage() {
  return PipelineModel({
      {"A", Cycles{10}, -1},
      {"B", Cycles{30}, -1},
      {"C", Cycles{20}, -1},
  });
}

TEST(Pipeline, IiIsSlowestStage) {
  EXPECT_EQ(linear_3stage().row_initiation_interval().count, 30u);
}

TEST(Pipeline, FillIsSumOfStageLatencies) {
  EXPECT_EQ(linear_3stage().fill_latency().count, 60u);
  EXPECT_EQ(linear_3stage().depth(), 3);
}

TEST(Pipeline, TotalCyclesClosedForm) {
  const auto p = linear_3stage();
  EXPECT_EQ(p.total_cycles(1).count, 60u);
  EXPECT_EQ(p.total_cycles(10).count, 60u + 9u * 30u);
  EXPECT_THROW(p.total_cycles(0), std::invalid_argument);
}

TEST(Pipeline, ParallelGroupCountsOnceAtMaxLatency) {
  const PipelineModel p({
      {"A", Cycles{10}, -1},
      {"B1", Cycles{25}, 0},
      {"B2", Cycles{15}, 0},
      {"C", Cycles{20}, -1},
  });
  EXPECT_EQ(p.depth(), 3);
  EXPECT_EQ(p.fill_latency().count, 10u + 25u + 20u);
  EXPECT_EQ(p.row_initiation_interval().count, 25u);
}

TEST(Pipeline, TwoSeparateParallelGroups) {
  const PipelineModel p({
      {"A", Cycles{5}, -1},
      {"B1", Cycles{9}, 0},
      {"B2", Cycles{7}, 0},
      {"C1", Cycles{4}, 1},
      {"C2", Cycles{11}, 1},
  });
  EXPECT_EQ(p.depth(), 3);
  EXPECT_EQ(p.fill_latency().count, 5u + 9u + 11u);
}

TEST(Pipeline, StageUtilization) {
  const auto p = linear_3stage();
  EXPECT_DOUBLE_EQ(p.stage_utilization(0), 10.0 / 30.0);
  EXPECT_DOUBLE_EQ(p.stage_utilization(1), 1.0);
  EXPECT_DOUBLE_EQ(p.stage_utilization(2), 20.0 / 30.0);
  EXPECT_THROW(p.stage_utilization(3), std::invalid_argument);
}

TEST(Pipeline, EmptyThrows) {
  EXPECT_THROW(PipelineModel({}), std::invalid_argument);
}

}  // namespace
}  // namespace swat::hw
