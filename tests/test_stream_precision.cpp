// Tests for the half-precision streamed attention tiles (ISSUE 10):
//
//   * the stream-fidelity gate: fp16 streamed K/V tiles
//     (EncoderConfig::stream_dtype = kFp16) diverge from the fp32 fused
//     oracle by a real but budgeted rounding error, per head and end to
//     end (eval/stream_fidelity vs the calibrated budgets);
//   * determinism: the fp16 stream stays bit-identical across thread
//     counts, run-to-run, arrival orders and replica counts — rounding
//     narrows the tiles once, it never reorders a reduction;
//   * the fp32 default is bit-identical to the allocating Encoder oracle
//     (the regression guard that the new tail parameter changed nothing);
//   * fused_window_kv_stream_bytes' closed form against the brute-force
//     band sum, and BatchCostModel's kv-stream pricing built on it;
//   * ServerOptions/EncoderConfig validation for the stream_dtype and
//     shared_pack_placement knobs;
//   * the shared-pack NUMA placement policies: every arm bit-identical to
//     kFirstTouch, the per-node replicated footprint accounted as
//     N_nodes x the single pack, ReplicaStats::pack_node attribution, and
//     ScopedPackStriping's striped fill bit-identical to the parallel one;
//   * the zero-steady-state-allocation guarantee with fp16 tiles on a
//     pinned pool (global operator-new counter, as tests/test_placement).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <random>
#include <set>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "attention/fused.hpp"
#include "common/thread_pool.hpp"
#include "common/topology.hpp"
#include "eval/calibration.hpp"
#include "eval/stream_fidelity.hpp"
#include "runtime/engine.hpp"
#include "runtime/runtime.hpp"
#include "runtime/server.hpp"
#include "tensor/kernels.hpp"
#include "test_util.hpp"

// ------------------------------------------------ global alloc counter ----
// Same counter as tests/test_placement.cpp: every global operator new in
// this binary bumps it, so the steady-state test below can assert a warmed
// fp16-streaming engine on a pinned pool allocates exactly nothing per run.

namespace {

std::atomic<std::size_t> g_alloc_count{0};

void* counted_alloc(std::size_t n) {
  ++g_alloc_count;
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}

void* counted_alloc_aligned(std::size_t n, std::align_val_t al) {
  ++g_alloc_count;
  const std::size_t align = static_cast<std::size_t>(al);
  if (void* p = std::aligned_alloc(align, (n + align - 1) / align * align)) {
    return p;
  }
  throw std::bad_alloc();
}

}  // namespace

void* operator new(std::size_t n) { return counted_alloc(n); }
void* operator new[](std::size_t n) { return counted_alloc(n); }
void* operator new(std::size_t n, std::align_val_t al) {
  return counted_alloc_aligned(n, al);
}
void* operator new[](std::size_t n, std::align_val_t al) {
  return counted_alloc_aligned(n, al);
}
// The nothrow forms must be replaced too — libstdc++'s temporary buffers
// (e.g. stable_sort) allocate through them, and mixing the default nothrow
// new with our malloc-backed delete trips ASan's alloc-dealloc matching.
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  ++g_alloc_count;
  return std::malloc(n ? n : 1);
}
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  ++g_alloc_count;
  return std::malloc(n ? n : 1);
}
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace swat {
namespace {

using model::AttentionBackend;
using model::EncoderConfig;

using swat::testing::ThreadCountGuard;

/// The compact fused-streaming geometry these tests standardize on — the
/// runtime tests' small_config pointed at the serving backend, with the
/// streamed-tile dtype as the knob under test.
EncoderConfig stream_config(Dtype stream_dtype = Dtype::kFp32) {
  EncoderConfig cfg;
  cfg.d_model = 64;
  cfg.num_heads = 2;
  cfg.ffn_mult = 2;
  cfg.layers = 2;
  cfg.backend = AttentionBackend::kFusedStreaming;
  cfg.swat = SwatConfig();
  cfg.swat.head_dim = 32;
  cfg.swat.window_cores = 32;
  cfg.weight_seed = 5;
  cfg.stream_dtype = stream_dtype;
  return cfg;
}

/// A packed ragged batch (embeddings + offsets) for the engine-level tests.
struct PackedBatch {
  MatrixF packed;
  std::vector<std::int64_t> offsets;
};

PackedBatch make_batch(const EncoderConfig& cfg,
                       const std::vector<std::int64_t>& lengths,
                       std::uint64_t seed = 123) {
  PackedBatch b;
  b.offsets = {0};
  std::int64_t rows = 0;
  for (const std::int64_t len : lengths) b.offsets.push_back(rows += len);
  Rng rng(seed);
  b.packed = random_normal(rows, cfg.d_model, rng);
  return b;
}

std::vector<InferenceRequest> make_requests(
    const EncoderConfig& cfg, const std::vector<std::int64_t>& lengths) {
  Rng rng(99);
  std::vector<InferenceRequest> reqs;
  for (std::size_t i = 0; i < lengths.size(); ++i) {
    InferenceRequest req;
    req.id = 2000 + i;
    req.input = random_normal(lengths[i], cfg.d_model, rng);
    reqs.push_back(std::move(req));
  }
  return reqs;
}

// -------------------------------------------------- stream-fidelity gate ----

/// The acceptance gate: fp16 streamed tiles perturb every head by a REAL
/// rounding error (the test is not vacuous) that fits the calibrated
/// budget, per head and end to end — at whatever SWAT_THREADS the CI
/// matrix runs this binary under.
TEST(StreamFidelity, Fp16TilesFitTheCalibratedBudget) {
  const EncoderConfig cfg = stream_config();
  const eval::StreamFidelityResult res = eval::stream_fidelity(cfg, 96, 11);

  ASSERT_EQ(res.per_head.size(), static_cast<std::size_t>(cfg.num_heads));
  EXPECT_DOUBLE_EQ(res.head_budget, calib::kFp16StreamHeadRelErrBudget);
  EXPECT_DOUBLE_EQ(res.end_to_end_budget,
                   cfg.layers * calib::kFp16StreamEndToEndRelErrPerLayer);

  // fp16 tiles genuinely round — a zero error would mean the knob is dead.
  EXPECT_GT(res.worst_head_rel_error, 0.0);
  EXPECT_GT(res.end_to_end_rel_error, 0.0);

  // ...and the rounding fits the calibrated budget on both axes.
  EXPECT_LE(res.worst_head_rel_error, res.head_budget);
  EXPECT_GE(res.worst_head_cosine, calib::fp16_cosine_floor(res.head_budget));
  EXPECT_LE(res.end_to_end_rel_error, res.end_to_end_budget);
  EXPECT_GE(res.end_to_end_cosine,
            calib::fp16_cosine_floor(res.end_to_end_budget));
  EXPECT_TRUE(res.within_budget);

  for (const eval::HeadStreamPrecision& head : res.per_head) {
    EXPECT_GE(head.rel_error, 0.0);
    EXPECT_LE(head.rel_error, res.worst_head_rel_error);
    EXPECT_GE(head.cosine, res.worst_head_cosine);
    EXPECT_LE(head.cosine, 1.0 + 1e-12);
  }
}

TEST(StreamFidelity, BudgetDerivation) {
  // u * amplification: 2^-11 * 64 = 1/32 per head, and the end-to-end
  // budget accrues one head budget per layer.
  EXPECT_DOUBLE_EQ(calib::kFp16StreamHeadRelErrBudget, 1.0 / 32.0);
  EXPECT_DOUBLE_EQ(calib::kFp16StreamHeadRelErrBudget,
                   calib::kFp16UnitRoundoff * calib::kFp16StreamAmplification);
  EXPECT_DOUBLE_EQ(calib::kFp16StreamEndToEndRelErrPerLayer,
                   calib::kFp16StreamHeadRelErrBudget);
  // Small-angle identity the cosine floors are derived from.
  const double e = calib::kFp16StreamHeadRelErrBudget;
  EXPECT_DOUBLE_EQ(calib::fp16_cosine_floor(e), 1.0 - e * e / 2.0);
}

// ----------------------------------------------------- determinism ----

/// fp16 tiles never change a reduction order: the compiled fp16-streaming
/// engine is bit-identical run-to-run and across thread counts.
TEST(StreamDeterminism, Fp16EngineBitIdenticalAcrossThreadCounts) {
  const EncoderConfig cfg = stream_config(Dtype::kFp16);
  const PackedBatch batch = make_batch(cfg, {5, 63, 64, 1, 40});

  MatrixF ref;
  {
    ThreadCountGuard guard(1);
    Engine engine = Engine::compile(cfg, batch.packed.rows());
    ref = engine.run(batch.packed, batch.offsets);
    // Run-to-run on the same engine/plan: bit-identical.
    const MatrixF& again = engine.run(batch.packed, batch.offsets);
    testing::expect_matrix_equal(again, ref, "fp16 stream run-to-run");
  }
  for (const int threads : {2, 4}) {
    ThreadCountGuard guard(threads);
    Engine engine = Engine::compile(cfg, batch.packed.rows());
    testing::expect_matrix_equal(engine.run(batch.packed, batch.offsets), ref,
                                 "fp16 stream across thread counts");
  }
}

/// The regression guard for the new tail parameter: the fp32 default is
/// bit-identical to the allocating Encoder oracle, and the fp16 stream
/// actually differs from it (the knob is observable, not cosmetic).
TEST(StreamDeterminism, Fp32DefaultMatchesOracleAndFp16Diverges) {
  EXPECT_EQ(EncoderConfig{}.stream_dtype, Dtype::kFp32);

  const EncoderConfig cfg = stream_config();
  const PackedBatch batch = make_batch(cfg, {31, 64, 17});
  const model::Encoder oracle(cfg);
  const MatrixF expected = oracle.forward_batch(batch.packed, batch.offsets);

  ThreadCountGuard guard(4);
  Engine fp32 = Engine::compile(cfg, batch.packed.rows());
  testing::expect_matrix_equal(fp32.run(batch.packed, batch.offsets),
                               expected, "fp32 stream default vs oracle");

  Engine fp16 = Engine::compile(stream_config(Dtype::kFp16),
                                batch.packed.rows());
  const MatrixF& half = fp16.run(batch.packed, batch.offsets);
  ASSERT_EQ(half.rows(), expected.rows());
  ASSERT_EQ(half.cols(), expected.cols());
  bool any_diff = false;
  for (std::int64_t i = 0; i < half.rows() && !any_diff; ++i) {
    for (std::int64_t j = 0; j < half.cols() && !any_diff; ++j) {
      any_diff = half(i, j) != expected(i, j);
    }
  }
  EXPECT_TRUE(any_diff) << "fp16 tiles produced bit-equal output — the "
                           "stream_dtype knob is not reaching the kernel";
}

/// Server-level determinism matrix: ServerOptions::stream_dtype = kFp16
/// (overriding an fp32 config, exercising the override plumbing) serves
/// bit-identically to the solo fp16 sequential oracle across SWAT_THREADS
/// {1,4} x three arrival orders x replica counts {1,2} under partitioned
/// placement.
TEST(StreamServing, Fp16BitIdenticalAcrossThreadsOrdersAndReplicas) {
  const EncoderConfig cfg = stream_config();  // fp32; the OPTION overrides
  const std::vector<std::int64_t> lengths = {5, 63, 64, 65, 1, 40, 17, 33};
  std::vector<InferenceRequest> reqs = make_requests(cfg, lengths);

  Runtime sequential(stream_config(Dtype::kFp16));
  std::vector<RequestResult> oracle;
  for (const InferenceRequest& req : reqs) {
    oracle.push_back(sequential.run_one(req));
  }

  std::vector<std::vector<std::size_t>> orders;
  std::vector<std::size_t> base(reqs.size());
  for (std::size_t i = 0; i < base.size(); ++i) base[i] = i;
  orders.push_back(base);
  orders.emplace_back(base.rbegin(), base.rend());
  std::mt19937_64 shuffle_rng(7);
  std::shuffle(base.begin(), base.end(), shuffle_rng);
  orders.push_back(base);

  for (const int threads : {1, 4}) {
    ThreadCountGuard guard(threads);
    for (const std::size_t replicas : {1u, 2u}) {
      for (const std::vector<std::size_t>& order : orders) {
        ServerOptions opt;
        opt.stream_dtype = Dtype::kFp16;
        opt.num_replicas = replicas;
        opt.placement = PlacementPolicy::kPartitioned;
        opt.replica_queue_depth = replicas > 1 ? 1 : 0;
        Server server(cfg, opt);
        std::vector<Server::Ticket> tickets(reqs.size());
        for (const std::size_t i : order) {
          tickets[i] = server.submit(reqs[i]);
        }
        for (std::size_t i = 0; i < reqs.size(); ++i) {
          const RequestResult got = tickets[i].get();
          EXPECT_EQ(got.id, reqs[i].id);
          testing::expect_matrix_equal(got.output, oracle[i].output,
                                       "fp16 stream server vs solo oracle");
        }
        server.drain();
      }
    }
  }
}

// ------------------------------------------- kv-stream bytes & pricing ----

TEST(FusedKvStreamBytes, ClosedFormMatchesBruteForceBandSum) {
  const auto brute_band_sum = [](std::int64_t n, std::int64_t wb,
                                 std::int64_t wa) {
    std::int64_t sum = 0;
    for (std::int64_t i = 0; i < n; ++i) {
      const std::int64_t lo = std::max<std::int64_t>(0, i - wb);
      const std::int64_t hi = std::min<std::int64_t>(n - 1, i + wa);
      sum += hi - lo + 1;
    }
    return sum;
  };

  // Hand-checked anchors first: a single row with no reach streams exactly
  // its own K and V row; n=3 with radius 1 attends 2+3+2 = 7 positions.
  EXPECT_EQ(attn::fused_window_kv_stream_bytes(1, 1, 1, 0, 0, Dtype::kFp32),
            2 * 1 * 1 * 1 * 4);
  EXPECT_EQ(attn::fused_window_kv_stream_bytes(3, 1, 1, 1, 1, Dtype::kFp32),
            2 * 1 * 1 * 7 * 4);

  const struct { std::int64_t n, wb, wa; } shapes[] = {
      {1, 0, 0}, {3, 1, 1}, {8, 2, 1}, {64, 16, 15},
      {128, 16, 15}, {5, 100, 100}, {40, 0, 7}, {17, 31, 0},
  };
  for (const auto& s : shapes) {
    const std::int64_t band = brute_band_sum(s.n, s.wb, s.wa);
    for (const std::int64_t heads : {1, 2, 12}) {
      for (const std::int64_t h : {1, 32, 64}) {
        const std::int64_t fp32 = attn::fused_window_kv_stream_bytes(
            s.n, heads, h, s.wb, s.wa, Dtype::kFp32);
        const std::int64_t fp16 = attn::fused_window_kv_stream_bytes(
            s.n, heads, h, s.wb, s.wa, Dtype::kFp16);
        EXPECT_EQ(fp32, 2 * heads * h * band * 4)
            << "n=" << s.n << " wb=" << s.wb << " wa=" << s.wa;
        EXPECT_EQ(fp16 * 2, fp32) << "fp16 must stream exactly half";
      }
    }
  }
}

/// BatchCostModel's activation-stream pricing: the kv sweep is the kernel
/// closed form summed per sequence, times the layer count, converted at
/// the calibrated host stream bandwidth — and predict() is exactly the
/// three-term sum the dispatch sites charge.
TEST(CostModel, KvStreamPricingFollowsTheKernelClosedForm) {
  const EncoderConfig cfg = stream_config();
  const BatchCostModel fp32_model(cfg);
  const BatchCostModel fp16_model(stream_config(Dtype::kFp16));

  BatchPlanEntry entry;
  entry.request_indices = {0, 1};
  entry.offsets = {0, 5, 68};  // lengths 5 and 63

  std::uint64_t expected = 0;
  for (const std::int64_t len : {5, 63}) {
    expected += static_cast<std::uint64_t>(attn::fused_window_kv_stream_bytes(
        len, cfg.num_heads, cfg.swat.head_dim, cfg.swat.window_before(),
        cfg.swat.window_after(), Dtype::kFp32));
  }
  expected *= static_cast<std::uint64_t>(cfg.layers);

  EXPECT_EQ(fp32_model.kv_stream_bytes(entry).count, expected);
  EXPECT_EQ(fp16_model.kv_stream_bytes(entry).count, expected / 2);
  EXPECT_DOUBLE_EQ(fp32_model.kv_stream_seconds(entry).value,
                   static_cast<double>(expected) /
                       calib::kHostWeightStreamBytesPerSec);
  EXPECT_DOUBLE_EQ(fp32_model.predict(entry).value,
                   fp32_model.batch_seconds(entry).value +
                       fp32_model.weight_stream_seconds().value +
                       fp32_model.kv_stream_seconds(entry).value);
  // The knob prices what it streams: a cheaper kv sweep, nothing else.
  EXPECT_LT(fp16_model.predict(entry).value, fp32_model.predict(entry).value);
  EXPECT_DOUBLE_EQ(fp16_model.batch_seconds(entry).value,
                   fp32_model.batch_seconds(entry).value);
}

// ------------------------------------------------------- validation ----

TEST(StreamOptionsValidation, EncoderConfigRejectsBadStreamDtypes) {
  EncoderConfig bad = stream_config();
  bad.stream_dtype = static_cast<Dtype>(42);
  try {
    bad.validate();
    FAIL() << "unknown stream_dtype accepted";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("stream_dtype"), std::string::npos);
  }

  EncoderConfig wrong_backend = stream_config(Dtype::kFp16);
  wrong_backend.backend = AttentionBackend::kWindowExact;
  try {
    wrong_backend.validate();
    FAIL() << "fp16 stream on a non-fused backend accepted";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("kFusedStreaming"),
              std::string::npos);
  }
  // The same geometry with the fused backend is valid.
  EXPECT_NO_THROW(stream_config(Dtype::kFp16).validate());
}

TEST(StreamOptionsValidation, ServerOptionsRejectBadKnobCombinations) {
  {
    ServerOptions opt;
    opt.stream_dtype = static_cast<Dtype>(42);
    try {
      opt.validate();
      FAIL() << "unknown ServerOptions::stream_dtype accepted";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find("stream_dtype"),
                std::string::npos);
    }
  }
  {
    // A NUMA pack policy without a shared pack: nothing to place.
    ServerOptions opt;
    opt.placement = PlacementPolicy::kPartitioned;
    opt.shared_pack_placement = SharedPackPlacement::kReplicatedPerNode;
    try {
      opt.validate();
      FAIL() << "kReplicatedPerNode without share_weight_pack accepted";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find("share_weight_pack"),
                std::string::npos);
    }
  }
  {
    // ...and without pinned core groups: no node sets to stripe across.
    ServerOptions opt;
    opt.share_weight_pack = true;
    opt.shared_pack_placement = SharedPackPlacement::kInterleaved;
    try {
      opt.validate();
      FAIL() << "kInterleaved under kShared placement accepted";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find("kPartitioned"),
                std::string::npos);
    }
  }
  {
    // The consistent combination is accepted (host fit is resolved at
    // construction, not here — validate() stays host-independent).
    ServerOptions opt;
    opt.num_replicas = 2;
    opt.share_weight_pack = true;
    opt.placement = PlacementPolicy::kPartitioned;
    opt.shared_pack_placement = SharedPackPlacement::kInterleaved;
    opt.stream_dtype = Dtype::kFp16;
    EXPECT_NO_THROW(opt.validate());
  }
}

// --------------------------------------------- shared-pack NUMA placement ----

/// Every shared-pack placement arm serves bit-identical outputs — page
/// placement moves bytes, never bits — and the footprint/locality ledger
/// matches the policy: the shared pack counted once under kFirstTouch and
/// kInterleaved, one pack per distinct NUMA node under kReplicatedPerNode
/// (downgrading to the single shared pack on single-node hosts), with
/// ReplicaStats::pack_node attributing each replica's copy.
TEST(SharedPackPlacementPolicy, ArmsBitIdenticalAndFootprintAccounted) {
  const EncoderConfig cfg = stream_config();
  constexpr std::size_t kReplicas = 2;
  const std::vector<std::int64_t> lengths = {16, 32, 64, 5};
  std::vector<InferenceRequest> reqs = make_requests(cfg, lengths);

  Runtime sequential(cfg);
  std::vector<RequestResult> oracle;
  for (const InferenceRequest& req : reqs) {
    oracle.push_back(sequential.run_one(req));
  }

  // What the server will see: same discovery, same process affinity.
  const Topology topo = discover_topology();
  const std::vector<CpuSet> groups = topo.partition(kReplicas);
  const bool active = !groups.empty() && topo.node_count >= 2;
  const int node0 =
      groups.empty() ? -1 : topo.node_of(groups[0].cpus().front());
  std::set<int> distinct_nodes;
  for (const CpuSet& g : groups) {
    distinct_nodes.insert(topo.node_of(g.cpus().front()));
  }

  const std::size_t single_pack_bytes =
      Engine::compile(cfg, 8).packed_weight_bytes();
  ASSERT_GT(single_pack_bytes, 0u);

  for (const SharedPackPlacement policy :
       {SharedPackPlacement::kFirstTouch, SharedPackPlacement::kInterleaved,
        SharedPackPlacement::kReplicatedPerNode}) {
    SCOPED_TRACE("policy " + std::to_string(static_cast<int>(policy)));
    ServerOptions opt;
    opt.num_replicas = kReplicas;
    opt.placement = PlacementPolicy::kPartitioned;
    opt.share_weight_pack = true;
    opt.shared_pack_placement = policy;
    opt.replica_queue_depth = 1;
    Server server(cfg, opt);

    std::vector<Server::Ticket> tickets = server.submit_many(reqs);
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      const RequestResult got = tickets[i].get();
      testing::expect_matrix_equal(got.output, oracle[i].output,
                                   "pack placement arm vs solo oracle");
    }
    server.drain();

    // Footprint ledger: one shared pack, except one pack per distinct
    // node under an ACTIVE kReplicatedPerNode.
    const std::size_t expected_packs =
        policy == SharedPackPlacement::kReplicatedPerNode && active
            ? distinct_nodes.size()
            : 1;
    EXPECT_EQ(server.packed_weight_bytes(),
              expected_packs * single_pack_bytes);

    // Locality ledger: pack_node per the policy actually in effect
    // (single-node hosts and partition fallbacks downgrade to
    // kFirstTouch).
    const ServerStats stats = server.stats();
    ASSERT_EQ(stats.replicas.size(), kReplicas);
    for (std::size_t r = 0; r < kReplicas; ++r) {
      const int expected_node =
          policy == SharedPackPlacement::kInterleaved && active ? -1
          : policy == SharedPackPlacement::kReplicatedPerNode && active
              ? topo.node_of(groups[r].cpus().front())
              : node0;
      EXPECT_EQ(stats.replicas[r].pack_node, expected_node)
          << "replica " << r;
    }
  }
}

/// The striped first-touch schedule ScopedPackStriping selects packs the
/// exact same bits as the parallel fill — only the touching thread (hence
/// the page's node) differs — for both pack dtypes, and the caller's
/// affinity comes back.
TEST(PackStriping, StripedFillBitIdenticalToParallelFill) {
  Rng rng(31);
  // Ragged shape: 70 output columns = two full panels + a 6-wide tail, so
  // the padding path is exercised under the striped schedule too.
  const MatrixF w = random_normal(70, 48, rng);

  const CpuSet before = current_thread_affinity();
  std::vector<CpuSet> stripes;
  if (before.count() >= 2) {
    // Two stripes carved from the caller's own allowed set stand in for
    // two NUMA node cpusets.
    CpuSet a, b;
    const std::vector<int> cpus = before.cpus();
    for (std::size_t i = 0; i < cpus.size(); ++i) {
      (i % 2 == 0 ? a : b).add(cpus[i]);
    }
    stripes = {a, b};
  } else {
    stripes = {before};  // single-CPU (or unqueryable) host: one stripe
  }

  ThreadCountGuard guard(4);
  PackedWeight parallel_pack, striped_pack;
  pack_weight_nt(w, parallel_pack);
  {
    ScopedPackStriping striping(stripes);
    pack_weight_nt(w, striped_pack);
  }
  EXPECT_TRUE(packed_weights_equal(parallel_pack, striped_pack));
  EXPECT_EQ(current_thread_affinity().to_string(), before.to_string());

  PackedWeight parallel_f16, striped_f16;
  pack_weight_nt(w, parallel_f16, Dtype::kFp16);
  {
    ScopedPackStriping striping(stripes);
    pack_weight_nt(w, striped_f16, Dtype::kFp16);
  }
  EXPECT_TRUE(packed_weights_equal(parallel_f16, striped_f16));

  // packed_weights_equal is a bit compare, not a shape compare.
  PackedWeight other;
  pack_weight_nt(random_normal(70, 48, rng), other);
  EXPECT_FALSE(packed_weights_equal(parallel_pack, other));
  EXPECT_FALSE(packed_weights_equal(parallel_pack, parallel_f16));
}

/// The identity the per-node replicated packs are asserted against: two
/// encoders built from the same config/seed compare pack-equal no matter
/// which schedule packed them; a different seed does not.
TEST(PackStriping, EncodersSameSeedComparePackEqual) {
  const model::Encoder a(stream_config());
  const model::Encoder b(stream_config());
  EXPECT_TRUE(a.packs_equal(b));

  EncoderConfig other_cfg = stream_config();
  other_cfg.weight_seed = 6;
  const model::Encoder c(other_cfg);
  EXPECT_FALSE(a.packs_equal(c));
}

// -------------------------------------------------- zero-alloc steady state ----

/// The zero-allocation guarantee survives the fp16 tile path: a warmed
/// fp16-streaming engine bound to a PINNED single-thread pool performs no
/// heap allocation per run — the u16 staging leases from the same
/// thread-local float arena the fp32 path uses (same counter methodology
/// as tests/test_placement.cpp).
TEST(StreamSteadyState, Fp16PinnedEngineRunAllocatesNothing) {
  ASSERT_GT(g_alloc_count.load(), 0u);

  const CpuSet allowed = current_thread_affinity();
  CpuSet group;
  if (!allowed.empty()) group.add(allowed.cpus().front());
  ThreadPool pool(1, group);

  const EncoderConfig cfg = stream_config(Dtype::kFp16);
  Engine engine(cfg, &pool);
  ExecutionPlan plan = engine.make_plan(200);

  const std::vector<std::vector<std::int64_t>> shapes = {
      {31, 64, 17, 50}, {5}, {64, 64, 64}, {200}};
  std::vector<std::pair<MatrixF, std::vector<std::int64_t>>> batches;
  Rng rng(123);
  for (const auto& lengths : shapes) {
    std::vector<std::int64_t> offsets = {0};
    std::int64_t rows = 0;
    for (const std::int64_t len : lengths) offsets.push_back(rows += len);
    batches.emplace_back(random_normal(rows, cfg.d_model, rng),
                         std::move(offsets));
  }
  std::vector<model::AttentionStats> stats(8);

  // Warmup binds thread-local staging/workspace at their high-water sizes.
  for (auto& [packed, offsets] : batches) {
    engine.run(plan, packed, offsets,
               std::span<model::AttentionStats>(stats.data(),
                                                offsets.size() - 1));
  }

  const std::size_t before = g_alloc_count.load();
  for (auto& [packed, offsets] : batches) {
    engine.run(plan, packed, offsets,
               std::span<model::AttentionStats>(stats.data(),
                                                offsets.size() - 1));
  }
  EXPECT_EQ(g_alloc_count.load(), before)
      << "a warmed fp16-stream pinned-pool run allocated";
}

}  // namespace
}  // namespace swat
