// Tests for the mixing-fidelity proxy (Tables 3/4 substitute).
#include <gtest/gtest.h>

#include "attention/fidelity.hpp"

namespace swat::attn {
namespace {

FidelityConfig small_cfg(InputStructure s) {
  FidelityConfig cfg;
  cfg.seq_len = 256;
  cfg.dim = 32;
  cfg.window_radius = 24;
  cfg.bigbird_random = 16;
  cfg.bigbird_global = 8;
  // Text correlates over long spans (beyond the window); image patches
  // over short local neighbourhoods.
  cfg.corr_len = s == InputStructure::kText1d ? 24.0 : 4.0;
  cfg.structure = s;
  return cfg;
}

TEST(Schedules, Construction) {
  const auto uni = schedule_uniform(MixerKind::kWindow, 4);
  ASSERT_EQ(uni.size(), 4u);
  for (auto k : uni) EXPECT_EQ(k, MixerKind::kWindow);

  const auto btf1 = schedule_btf(4, 1);
  EXPECT_EQ(btf1[0], MixerKind::kFnet);
  EXPECT_EQ(btf1[2], MixerKind::kFnet);
  EXPECT_EQ(btf1[3], MixerKind::kDense);

  const auto btf2 = schedule_btf(4, 2);
  EXPECT_EQ(btf2[1], MixerKind::kFnet);
  EXPECT_EQ(btf2[2], MixerKind::kDense);
  EXPECT_EQ(btf2[3], MixerKind::kDense);

  EXPECT_THROW(schedule_btf(4, 5), std::invalid_argument);
}

TEST(MixerNames, Exist) {
  EXPECT_EQ(mixer_name(MixerKind::kDense), "dense-softmax");
  EXPECT_EQ(mixer_name(MixerKind::kWindow), "window");
  EXPECT_EQ(mixer_name(MixerKind::kBigBird), "bigbird");
  EXPECT_EQ(mixer_name(MixerKind::kFnet), "full-fft");
}

TEST(MixingLayer, PreservesShapeAndNormalizes) {
  const FidelityConfig cfg = small_cfg(InputStructure::kText1d);
  Rng rng(1);
  const MatrixF x = random_normal(cfg.seq_len, cfg.dim, rng);
  const MatrixF y = apply_mixing_layer(x, MixerKind::kWindow, cfg);
  EXPECT_EQ(y.rows(), x.rows());
  EXPECT_EQ(y.cols(), x.cols());
  // Layer-norm: each row ~ zero mean, unit variance.
  for (std::int64_t i = 0; i < y.rows(); i += 37) {
    double mean = 0.0, var = 0.0;
    for (float v : y.row(i)) mean += v;
    mean /= static_cast<double>(y.cols());
    for (float v : y.row(i)) var += (v - mean) * (v - mean);
    var /= static_cast<double>(y.cols());
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 1e-2);
  }
}

TEST(Fidelity, DenseStackIsPerfect) {
  const FidelityConfig cfg = small_cfg(InputStructure::kText1d);
  const auto r =
      mixing_fidelity(schedule_uniform(MixerKind::kDense, 3), cfg);
  EXPECT_NEAR(r.mean_cosine, 1.0, 1e-9);
  EXPECT_NEAR(r.rel_error, 0.0, 1e-9);
}

TEST(Fidelity, WindowTracksDenseFarBetterThanFft) {
  // The core of the paper's Table 3: data-dependent local attention
  // approximates full attention much better than fixed FFT mixing.
  for (auto s : {InputStructure::kText1d, InputStructure::kVision2d}) {
    const FidelityConfig cfg = small_cfg(s);
    const auto window =
        mixing_fidelity(schedule_uniform(MixerKind::kWindow, 3), cfg);
    const auto fft =
        mixing_fidelity(schedule_uniform(MixerKind::kFnet, 3), cfg);
    EXPECT_GT(window.mean_cosine, fft.mean_cosine + 0.1)
        << "structure=" << static_cast<int>(s);
    EXPECT_GT(window.mean_cosine, 0.8);
  }
}

TEST(Fidelity, HybridBtfBeatsFullFft) {
  const FidelityConfig cfg = small_cfg(InputStructure::kText1d);
  const auto fft = mixing_fidelity(schedule_uniform(MixerKind::kFnet, 4), cfg);
  const auto btf1 = mixing_fidelity(schedule_btf(4, 1), cfg);
  const auto btf2 = mixing_fidelity(schedule_btf(4, 2), cfg);
  EXPECT_GT(btf1.mean_cosine, fft.mean_cosine);
  EXPECT_GT(btf2.mean_cosine, btf1.mean_cosine);
}

TEST(Fidelity, WindowBeatsHybrids) {
  // Table 3's ordering: Longformer/BigBird > BTF-2 > BTF-1 on average.
  const FidelityConfig cfg = small_cfg(InputStructure::kText1d);
  const auto window =
      mixing_fidelity(schedule_uniform(MixerKind::kWindow, 4), cfg);
  const auto bigbird =
      mixing_fidelity(schedule_uniform(MixerKind::kBigBird, 4), cfg);
  const auto btf2 = mixing_fidelity(schedule_btf(4, 2), cfg);
  EXPECT_GT(window.mean_cosine, btf2.mean_cosine);
  EXPECT_GT(bigbird.mean_cosine, btf2.mean_cosine);
}

TEST(Fidelity, BigBirdAtLeastMatchesPureWindow) {
  // Random + global tokens add coverage of distant context.
  const FidelityConfig cfg = small_cfg(InputStructure::kText1d);
  const auto window =
      mixing_fidelity(schedule_uniform(MixerKind::kWindow, 3), cfg);
  const auto bigbird =
      mixing_fidelity(schedule_uniform(MixerKind::kBigBird, 3), cfg);
  EXPECT_GE(bigbird.mean_cosine, window.mean_cosine - 0.02);
}

TEST(Fidelity, VisionGapIsLargerThanTextGap) {
  // Paper Table 3: the advantage of window-based models over full-FFT is
  // largest on the vision tasks (Image +15.26 vs Text +0.17).
  const auto text_cfg = small_cfg(InputStructure::kText1d);
  const auto vis_cfg = small_cfg(InputStructure::kVision2d);
  const auto text_gap =
      mixing_fidelity(schedule_uniform(MixerKind::kWindow, 3), text_cfg)
          .mean_cosine -
      mixing_fidelity(schedule_uniform(MixerKind::kFnet, 3), text_cfg)
          .mean_cosine;
  const auto vis_gap =
      mixing_fidelity(schedule_uniform(MixerKind::kWindow, 3), vis_cfg)
          .mean_cosine -
      mixing_fidelity(schedule_uniform(MixerKind::kFnet, 3), vis_cfg)
          .mean_cosine;
  EXPECT_GT(vis_gap, text_gap);
}

TEST(Fidelity, DeterministicBySeed) {
  const FidelityConfig cfg = small_cfg(InputStructure::kText1d);
  const auto a = mixing_fidelity(schedule_btf(3, 1), cfg);
  const auto b = mixing_fidelity(schedule_btf(3, 1), cfg);
  EXPECT_DOUBLE_EQ(a.mean_cosine, b.mean_cosine);
  EXPECT_DOUBLE_EQ(a.rel_error, b.rel_error);
}

}  // namespace
}  // namespace swat::attn
