// Tests for the table renderer used by every bench binary.
#include <gtest/gtest.h>

#include <sstream>

#include "eval/table.hpp"

namespace swat::eval {
namespace {

TEST(Table, Formatters) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(3.14159, 4), "3.1416");
  EXPECT_EQ(Table::pct(0.3333, 1), "33.3%");
  EXPECT_EQ(Table::pct(1.0, 0), "100%");
  EXPECT_EQ(Table::times(6.7), "6.7x");
  EXPECT_EQ(Table::ms(0.01234), "12.34 ms");
  EXPECT_EQ(Table::mb(1048576.0), "1.0 MB");
}

TEST(Table, PrintAlignsColumns) {
  Table t({"a", "long-header"});
  t.add_row({"xxxxxx", "1"});
  t.add_row({"y", "22"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  // 2 header-ish lines + 2 rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
  // Every line has the same length (aligned columns).
  std::istringstream is(out);
  std::string line;
  std::size_t len = 0;
  while (std::getline(is, line)) {
    if (len == 0) len = line.size();
    EXPECT_EQ(line.size(), len) << line;
  }
  EXPECT_NE(out.find("long-header"), std::string::npos);
  EXPECT_NE(out.find("xxxxxx"), std::string::npos);
}

TEST(Table, CsvOutput) {
  Table t({"n", "value"});
  t.add_row({"1", "2.5"});
  t.add_row({"2", "3.5"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "n,value\n1,2.5\n2,3.5\n");
}

TEST(Table, RowArityChecked) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
  EXPECT_THROW(Table({}), std::invalid_argument);
  t.add_row({"1", "2"});
  EXPECT_EQ(t.rows(), 1u);
}

}  // namespace
}  // namespace swat::eval
